package wfs

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/atom"
	"repro/internal/program"
	"repro/internal/term"
)

// DumpState renders the current database as store-independent fact
// references together with the epoch it belongs to, as one consistent
// pair under the read lock. The result is the payload of a durability
// checkpoint: Restore(src, opts, facts, epoch) over a dump taken from a
// system loaded from src rebuilds an equivalent system.
//
// Only database (EDB) facts are dumped — derived state is recomputed on
// restore, never persisted — and database facts are always over plain
// constants (labelled nulls exist only in chase results), so the string
// rendering is lossless.
func (s *System) DumpState() (facts []FactRef, epoch uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	facts = make([]FactRef, len(s.db))
	for i, a := range s.db {
		p := s.store.PredOf(a)
		args := s.store.Args(a)
		fr := FactRef{Pred: s.store.PredName(p)}
		if len(args) > 0 {
			fr.Args = make([]string, len(args))
			for j, t := range args {
				fr.Args[j] = s.store.Terms.Name(t)
			}
		}
		facts[i] = fr
	}
	return facts, s.epoch
}

// Restore rebuilds a System from checkpoint state: it compiles src (rules,
// constraints, and embedded queries) under opts exactly like
// LoadWithOptions, then REPLACES the database with the given facts — the
// facts compiled from src are discarded, since a checkpoint's fact list is
// the complete database, source facts included — and sets the mutation
// epoch. Predicates appearing only in facts are created at the fact's
// arity; an arity clash with the compiled schema reports a corrupt
// checkpoint rather than silently misloading.
//
// Restore plus an in-order replay of the deltas committed after the
// checkpoint (System.Apply bumps the epoch by one per batch, matching the
// epochs a CommitHook observed) reproduces the pre-crash system state.
func Restore(src string, opts Options, facts []FactRef, epoch uint64) (*System, error) {
	st := atom.NewStore(term.NewStore())
	prog, _, queries, err := program.CompileText(src, st)
	if err != nil {
		return nil, fmt.Errorf("wfs: restore: %w", err)
	}
	db := make(program.Database, 0, len(facts))
	for _, f := range facts {
		p, err := st.Pred(f.Pred, len(f.Args))
		if err != nil {
			return nil, fmt.Errorf("wfs: restore %s: %w", f.Pred, err)
		}
		ts := make([]term.ID, len(f.Args))
		for i, arg := range f.Args {
			ts[i] = st.Terms.Const(arg)
		}
		db = append(db, st.Atom(p, ts))
	}
	// Mirror LoadWithOptions: analyze the restored program+database and
	// re-derive the certified depth (the certificate is data-independent,
	// but diagnostics depend on the restored EDB signature).
	rep := analysis.Analyze(prog, db, queries)
	opts.CertifiedDepth = 0
	if !opts.NoCertify && rep.Certificate != nil {
		opts.CertifiedDepth = rep.Certificate.DepthBound
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &System{store: st, prog: prog, db: db, queries: queries, opts: opts, epoch: epoch, analysis: rep}, nil
}
