package wfs

import (
	"strings"
	"testing"
)

func TestLoadCSVRoundTrip(t *testing.T) {
	sys, err := Load(`employee(X, Y) -> person(X).`)
	if err != nil {
		t.Fatal(err)
	}
	csv := "ada, research\nbabbage, engineering\nada, research\n"
	n, err := sys.LoadCSV("employee", strings.NewReader(csv))
	if err != nil {
		t.Fatalf("LoadCSV: %v", err)
	}
	if n != 3 {
		t.Errorf("loaded %d records, want 3", n)
	}
	// Duplicate rows intern to the same atom but still append to the DB.
	if got := sys.NumFacts(); got != 3 {
		t.Errorf("NumFacts = %d, want 3", got)
	}

	// The loaded facts drive derivations.
	for _, atom := range []string{"employee(ada,research)", "person(ada)", "person(babbage)"} {
		tv, err := sys.TruthOf(atom)
		if err != nil {
			t.Fatalf("TruthOf(%s): %v", atom, err)
		}
		if tv != True {
			t.Errorf("TruthOf(%s) = %v, want true", atom, tv)
		}
	}
	vars, rows, err := sys.Select("? employee(X, D).")
	if err != nil {
		t.Fatal(err)
	}
	if len(vars) != 2 || len(rows) != 2 {
		t.Errorf("Select: vars %v rows %v, want 2 vars, 2 distinct rows", vars, rows)
	}
}

func TestLoadCSVBumpsEpoch(t *testing.T) {
	sys, err := Load(`p(X) -> q(X).`)
	if err != nil {
		t.Fatal(err)
	}
	// Answer once so the engine is built, then ensure the load drops it.
	if tv, err := sys.TruthOf("q(a)"); err != nil || tv != False {
		t.Fatalf("q(a) before load: %v, %v", tv, err)
	}
	e0 := sys.Epoch()
	if _, err := sys.LoadCSV("p", strings.NewReader("a\n")); err != nil {
		t.Fatal(err)
	}
	if sys.Epoch() == e0 {
		t.Errorf("epoch unchanged by LoadCSV")
	}
	if tv, _ := sys.TruthOf("q(a)"); tv != True {
		t.Errorf("q(a) after load = %v, want true", tv)
	}

	// An empty load adds nothing and must not invalidate.
	e1 := sys.Epoch()
	n, err := sys.LoadCSV("p", strings.NewReader(""))
	if err != nil || n != 0 {
		t.Fatalf("empty load: n=%d err=%v", n, err)
	}
	if sys.Epoch() != e1 {
		t.Errorf("empty load bumped epoch")
	}
}

func TestLoadCSVMalformedRow(t *testing.T) {
	sys, err := Load(`r(a, b).`)
	if err != nil {
		t.Fatal(err)
	}
	// A bare quote mid-field is a CSV syntax error.
	facts, epoch := sys.FactsEpoch()
	_, err = sys.LoadCSV("r", strings.NewReader("x, y\nbad\"field, z\n"))
	if err == nil {
		t.Fatalf("malformed CSV accepted")
	}
	if !strings.Contains(err.Error(), "csv for r") {
		t.Errorf("error %q does not name the predicate", err)
	}
	// The load is one atomic delta: a failed stream applies nothing —
	// no facts (not even the well-formed first record), no epoch bump.
	if f2, e2 := sys.FactsEpoch(); f2 != facts || e2 != epoch {
		t.Errorf("failed load mutated the system: facts %d→%d epoch %d→%d", facts, f2, epoch, e2)
	}
}

func TestLoadCSVArityMismatch(t *testing.T) {
	// Mismatch between records of one stream.
	sys, err := Load(`t(a, b).`)
	if err != nil {
		t.Fatal(err)
	}
	facts, epoch := sys.FactsEpoch()
	n, err := sys.LoadCSV("t", strings.NewReader("x, y\nlonely\n"))
	if err == nil {
		t.Fatalf("ragged CSV accepted")
	}
	if n != 1 {
		t.Errorf("records before error = %d, want 1", n)
	}
	if !strings.Contains(err.Error(), "want 2") {
		t.Errorf("error %q does not report expected arity", err)
	}
	if f2, e2 := sys.FactsEpoch(); f2 != facts || e2 != epoch {
		t.Errorf("ragged load mutated the system: facts %d→%d epoch %d→%d", facts, f2, epoch, e2)
	}

	// Mismatch against the predicate's declared arity.
	sys2, err := Load(`u(a).`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys2.LoadCSV("u", strings.NewReader("x, y\n")); err == nil {
		t.Fatalf("arity-violating CSV accepted")
	}
}
