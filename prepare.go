package wfs

import (
	"sync/atomic"

	"repro/internal/atom"
	"repro/internal/parser"
	"repro/internal/program"
)

// Query is a prepared NBCQ: parsed and normalized once, reusable across
// any number of snapshots and goroutines. Preparation pays the parse and
// normalization cost up front; per-snapshot compilation (resolving
// predicate and constant names to interned IDs) is cached lock-free inside
// the Query whenever the query mentions only names the snapshot already
// knows, which is the common case on a hot serving path.
type Query struct {
	text string // canonical surface form (NormalizeQuery)
	ast  *parser.Query

	// compiled caches the last snapshot-independent compilation. A single
	// slot suffices: a serving process answers against one current
	// snapshot at a time, and a miss only costs a recompile.
	compiled atomic.Pointer[compiledQuery]
}

// compiledQuery pins a compiled form to the snapshot base store whose ID
// space it references. Only "pristine" compilations — those that interned
// nothing new — are cached, so cq references base IDs exclusively and is
// valid against every model of that snapshot.
type compiledQuery struct {
	store *atom.Store
	cq    *program.Query
}

// Prepare parses an NBCQ (with or without the leading '?') into a
// reusable Query. The same Query may be answered concurrently against any
// snapshot, including snapshots of different systems.
func Prepare(query string) (*Query, error) {
	pq, err := parser.ParseQueryString(query)
	if err != nil {
		return nil, err
	}
	return &Query{text: parser.FormatQuery(pq), ast: pq}, nil
}

// String returns the canonical surface form of the query (the same string
// NormalizeQuery produces), suitable as a cache key.
func (q *Query) String() string { return q.text }
