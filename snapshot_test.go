package wfs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// The standard game oracle: win(b) is true and win(c) false in the base
// program; after adding move(c,d), win(c) turns true and win(b) undefined
// (a↔b becomes a drawn cycle).
const gameSrc = `
	move(a,b). move(b,a). move(b,c).
	move(X,Y), not win(Y) -> win(X).
`

func TestSnapshotStaleVsFresh(t *testing.T) {
	sys, err := Load(gameSrc)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Prepare("win(b)")
	if err != nil {
		t.Fatal(err)
	}

	stale, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if stale.Epoch() != 0 {
		t.Fatalf("fresh snapshot epoch = %d, want 0", stale.Epoch())
	}
	if tv, err := stale.Answer(q); err != nil || tv != True {
		t.Fatalf("win(b) = %v (%v), want true", tv, err)
	}

	if err := sys.AddFact("move", "c", "d"); err != nil {
		t.Fatal(err)
	}

	// The stale snapshot keeps answering its epoch's view.
	if tv, _ := stale.Answer(q); tv != True {
		t.Errorf("stale snapshot changed its answer: win(b) = %v", tv)
	}
	if stale.NumFacts() != 3 {
		t.Errorf("stale snapshot facts = %d, want 3", stale.NumFacts())
	}

	// A fresh snapshot sees the new epoch and the new model — answered
	// with the SAME prepared query, exercising cross-snapshot reuse.
	fresh, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if fresh == stale {
		t.Fatal("Snapshot returned the invalidated snapshot")
	}
	if fresh.Epoch() != 1 {
		t.Errorf("fresh snapshot epoch = %d, want 1", fresh.Epoch())
	}
	if tv, err := fresh.Answer(q); err != nil || tv != Undefined {
		t.Errorf("win(b) after move(c,d) = %v (%v), want undefined", tv, err)
	}
	if tv, err := fresh.TruthOf("win(c)"); err != nil || tv != True {
		t.Errorf("win(c) after move(c,d) = %v (%v), want true", tv, err)
	}
	// And the stale one still disagrees, consistently.
	if tv, _ := stale.TruthOf("win(c)"); tv != False {
		t.Errorf("stale win(c) = %v, want false", tv)
	}

	// Unchanged system returns the same snapshot (no rebuild).
	again, _ := sys.Snapshot()
	if again != fresh {
		t.Error("Snapshot rebuilt without an intervening write")
	}
}

func TestPrepareErrors(t *testing.T) {
	for _, bad := range []string{"", "p(", "? p(X), not q(Y).", "p(X) ->"} {
		if _, err := Prepare(bad); err == nil {
			// Negation safety (?p(X), not q(Y)) is a compile-time check,
			// not a parse-time one; it must surface at answer time below.
			if bad == "? p(X), not q(Y)." {
				continue
			}
			t.Errorf("Prepare(%q) accepted malformed input", bad)
		}
	}

	sys, err := Load(`p(a).`)
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := sys.Snapshot()

	// Unsafe negation is rejected at compile time, per snapshot.
	if q, err := Prepare("? p(X), not q(Y)."); err == nil {
		if _, aerr := snap.Answer(q); aerr == nil {
			t.Error("unsafe query answered without error")
		}
	}

	// Arity mismatch against the loaded schema is a compile error too.
	q, err := Prepare("? p(a,b).")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snap.Answer(q); err == nil {
		t.Error("arity-mismatched query answered without error")
	}
	if _, err := sys.Answer("? p(a,b)."); err == nil {
		t.Error("System.Answer missed the arity mismatch")
	}
}

func TestSnapshotUnknownNames(t *testing.T) {
	sys, err := Load(gameSrc)
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := sys.Snapshot()

	// Unknown predicate: certainly false, interned only into a per-call
	// overlay — the frozen snapshot store must not grow.
	q, err := Prepare("? neverSeen(a).")
	if err != nil {
		t.Fatal(err)
	}
	if tv, err := snap.Answer(q); err != nil || tv != False {
		t.Errorf("unknown predicate = %v (%v), want false", tv, err)
	}
	// Unknown constant in a known predicate.
	q2, _ := Prepare("? win(nobody).")
	if tv, err := snap.Answer(q2); err != nil || tv != False {
		t.Errorf("unknown constant = %v (%v), want false", tv, err)
	}
	// Negated unknown atom: vacuously false, so the query can hold.
	q3, _ := Prepare("? move(a,b), not blocked(a).")
	if tv, err := snap.Answer(q3); err != nil || tv != True {
		t.Errorf("negated unknown atom: %v (%v), want true", tv, err)
	}
	// TruthOf and WCheck on unknown atoms.
	if tv, err := snap.TruthOf("ghost(x)"); err != nil || tv != False {
		t.Errorf("TruthOf(ghost) = %v (%v)", tv, err)
	}
	if tv, _, err := snap.WCheck("ghost(x)"); err != nil || tv != False {
		t.Errorf("WCheck(ghost) = %v (%v)", tv, err)
	}
	// Repeating the unknown-name query gives the same answer: per-call
	// overlays leave no residue.
	if tv, _ := snap.Answer(q); tv != False {
		t.Error("second unknown-name answer differs")
	}
}

func TestSnapshotSelectAndFacts(t *testing.T) {
	sys, err := Load(gameSrc)
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := sys.Snapshot()
	q, err := Prepare("? win(X).")
	if err != nil {
		t.Fatal(err)
	}
	vars, rows, err := snap.Select(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(vars) != 1 || vars[0] != "X" {
		t.Errorf("vars = %v", vars)
	}
	if len(rows) != 1 || rows[0][0] != "b" {
		t.Errorf("rows = %v, want [[b]]", rows)
	}
	tf := snap.TrueFacts()
	joined := strings.Join(tf, " ")
	if !strings.Contains(joined, "win(b)") || !strings.Contains(joined, "move(a,b)") {
		t.Errorf("TrueFacts = %v", tf)
	}
	if und := snap.UndefinedFacts(); len(und) != 0 {
		t.Errorf("UndefinedFacts = %v, want none", und)
	}
}

func TestSnapshotExplainConcurrent(t *testing.T) {
	sys, err := Load(gameSrc)
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := sys.Snapshot()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			proof, ok, err := snap.Explain("win(b)")
			if err != nil || !ok || !strings.Contains(proof, "win(b)") ||
				!strings.Contains(proof, "negative hypotheses") {
				t.Errorf("Explain(win(b)) = ok=%v err=%v:\n%s", ok, err, proof)
			}
			if _, ok, _ := snap.Explain("win(c)"); ok {
				t.Error("false atom explained")
			}
			if _, _, err := snap.Explain("win("); err == nil {
				t.Error("malformed atom did not error")
			}
		}()
	}
	wg.Wait()
}

// TestSnapshotStatsAndAnswerAll covers the remaining snapshot reads.
func TestSnapshotStatsAndAnswerAll(t *testing.T) {
	sys, err := Load(gameSrc + "\n? win(b).\n? win(c).\n")
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := sys.Snapshot()
	st := snap.Stats()
	if st.Facts != 3 || st.Epoch != 0 || st.Model.TrueAtoms == 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.Stratified {
		t.Error("win/move reported stratified")
	}
	all := snap.AnswerAll()
	if len(all) != 2 || all[0].Answer != True || all[1].Answer != False {
		t.Errorf("AnswerAll = %+v", all)
	}
	if vs := snap.CheckConstraints(); len(vs) != 0 {
		t.Errorf("violations = %v", vs)
	}
}

// TestPreparedQueryAcrossSystems reuses one prepared query against
// snapshots of two unrelated systems (distinct ID spaces).
func TestPreparedQueryAcrossSystems(t *testing.T) {
	q, err := Prepare("? win(b).")
	if err != nil {
		t.Fatal(err)
	}
	sysA, _ := Load(gameSrc)
	sysB, _ := Load(`move(b,z). move(X,Y), not win(Y) -> win(X).`)
	snapA, _ := sysA.Snapshot()
	snapB, _ := sysB.Snapshot()
	for i := 0; i < 3; i++ { // interleave to exercise the compile cache
		if tv, err := snapA.Answer(q); err != nil || tv != True {
			t.Fatalf("A: win(b) = %v (%v)", tv, err)
		}
		if tv, err := snapB.Answer(q); err != nil || tv != True {
			t.Fatalf("B: win(b) = %v (%v)", tv, err)
		}
	}
}

func TestSnapshotAfterCSVLoad(t *testing.T) {
	sys, err := Load(`move(X,Y), not win(Y) -> win(X).`)
	if err != nil {
		t.Fatal(err)
	}
	s0, _ := sys.Snapshot()
	if s0.NumFacts() != 0 {
		t.Fatalf("facts = %d", s0.NumFacts())
	}
	if _, err := sys.LoadCSV("move", strings.NewReader("a,b\nb,c\n")); err != nil {
		t.Fatal(err)
	}
	s1, _ := sys.Snapshot()
	if s1.Epoch() != 1 || s1.NumFacts() != 2 {
		t.Fatalf("epoch=%d facts=%d after CSV", s1.Epoch(), s1.NumFacts())
	}
	if tv, _ := s1.TruthOf("win(b)"); tv != True {
		t.Errorf("win(b) = %v after CSV load", tv)
	}
	if tv, _ := s0.TruthOf("win(b)"); tv != False {
		t.Errorf("stale snapshot win(b) = %v, want false", tv)
	}
}

// TestManyEpochs cycles write→snapshot→answer to confirm clones stay
// independent over many epochs.
func TestManyEpochs(t *testing.T) {
	sys, err := Load(`move(X,Y), not win(Y) -> win(X).`)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := Prepare("? win(n0).")
	var snaps []*Snapshot
	for i := 0; i < 10; i++ {
		if err := sys.AddFact("move", fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1)); err != nil {
			t.Fatal(err)
		}
		s, _ := sys.Snapshot()
		snaps = append(snaps, s)
	}
	// Chain n0→n1→…→n10: win alternates with parity of the suffix.
	for i, s := range snaps {
		want := False
		if i%2 == 0 { // odd chain length: n0 wins
			want = True
		}
		if tv, err := s.Answer(q); err != nil || tv != want {
			t.Errorf("epoch %d: win(n0) = %v (%v), want %v", i+1, tv, err, want)
		}
	}
}
