// Explain: forward proofs (Definition 5), atom types and X-isomorphism
// (§3 locality), and non-Boolean answers over ∆ (§2.1) — the paper's
// machinery made inspectable, on the Example 4 program.
//
// Run with: go run ./examples/explain
package main

import (
	"fmt"
	"log"

	"repro/internal/atom"
	"repro/internal/core"
	"repro/internal/program"
	"repro/internal/term"
)

const src = `
r(0,0,1).
p(0,0).
r(X,Y,Z) -> r(X,Z,W).
r(X,Y,Z), p(X,Y), not q(Z) -> p(X,Z).
r(X,Y,Z), not p(X,Y) -> q(Z).
r(X,Y,Z), not p(X,Z) -> s(X).
p(X,Y), not s(X) -> t(X).
`

func main() {
	st := atom.NewStore(term.NewStore())
	prog, db, _, err := program.CompileText(src, st)
	if err != nil {
		log.Fatal(err)
	}
	engine := core.NewEngine(prog, db, core.Options{Depth: 8})
	m := engine.Evaluate()

	// Forward proof of T(0): why is it well-founded? The negative
	// hypothesis ¬S(0) must itself be in the WFS.
	c0 := st.Terms.Const("0")
	tp, _ := st.LookupPred("t")
	t0 := st.Atom(tp, []term.ID{c0})
	proof, ok := m.Explain(t0)
	if !ok {
		log.Fatal("t(0) should be provable")
	}
	fmt.Println("forward proof of t(0) (Definition 5):")
	fmt.Print(proof.Render(st))

	// Why is S(0) false? Every candidate instance is blocked.
	sp, _ := st.LookupPred("s")
	s0 := st.Atom(sp, []term.ID{c0})
	blocked, _ := m.ExplainFalse(s0)
	fmt.Printf("\ns(0) is false: all %d candidate instances are blocked, e.g.:\n", len(blocked))
	for i, b := range blocked {
		if i == 3 {
			fmt.Println("  …")
			break
		}
		pol := ""
		if b.Negative {
			pol = "not "
		}
		fmt.Printf("  instance %d blocked by %s%s (%s)\n",
			b.Inst, pol, st.String(b.Blocker), b.BlockerTruth)
	}

	// Types and the locality of §3: deep chain atoms have isomorphic
	// types — the periodicity behind Proposition 12.
	c1 := st.Terms.Const("1")
	sk := prog.Rules[0].Exist[0].Fn
	ts := []term.ID{c0, c1}
	for i := 2; i < 7; i++ {
		ts = append(ts, st.Terms.Skolem(sk, []term.ID{c0, ts[i-2], ts[i-1]}))
	}
	rp, _ := st.LookupPred("r")
	r23 := st.Atom(rp, []term.ID{c0, ts[2], ts[3]})
	r34 := st.Atom(rp, []term.ID{c0, ts[3], ts[4]})
	fmt.Println("\natom types (§3):")
	fmt.Println("  typeP(R(0,t2,t3)) =", m.TypeOf(r23).String(st))
	fmt.Println("  typeP(R(0,t3,t4)) =", m.TypeOf(r34).String(st))
	fmt.Println("  isomorphic:", m.TypesIsomorphic(r23, r34))

	// Non-Boolean answers over ∆ (§2.1): which constants satisfy p(0,X)?
	q, err := program.ParseQuery("? p(0, X).", st)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nanswers to p(0, X) over ∆ (nulls excluded, §2.1):")
	for _, tup := range m.Select(q) {
		fmt.Println("  X =", st.Terms.String(tup[0]))
	}
}
