// Employment: the paper's Example 2 — a DL-Lite_{R,⊓,not} ontology
// interpreted under the standard WFS with UNA.
//
//	Person ⊓ Employed ⊓ not ∃JobSeekerID ⊑ ∃EmployeeID
//	Person ⊓ not Employed ⊓ not ∃EmployeeID ⊑ ∃JobSeekerID
//	∃EmployeeID⁻ ⊓ not ∃JobSeekerID⁻ ⊑ ValidID
//
// With D = {Person(a), Person(b), Employed(a)} the WFS derives
// EmployeeID(a, f(a)), JobSeekerID(b, g(b)) and — because the UNA makes
// f(a) ≠ g(b) — ValidID(f(a)). (The equality-friendly WFS of [4] cannot
// conclude ValidID(f(a)); this is the paper's §1 motivating contrast.)
//
// Run with: go run ./examples/employment
package main

import (
	"fmt"
	"log"

	"repro/internal/atom"
	"repro/internal/core"
	"repro/internal/dllite"
	"repro/internal/term"
)

func main() {
	ont := dllite.New()
	ont.SubClass(dllite.Exists("EmployeeID"),
		dllite.Pos(dllite.Atomic("Person")),
		dllite.Pos(dllite.Atomic("Employed")),
		dllite.Not(dllite.Exists("JobSeekerID")))
	ont.SubClass(dllite.Exists("JobSeekerID"),
		dllite.Pos(dllite.Atomic("Person")),
		dllite.Not(dllite.Atomic("Employed")),
		dllite.Not(dllite.Exists("EmployeeID")))
	ont.SubClass(dllite.Atomic("ValidID"),
		dllite.Pos(dllite.ExistsInv("EmployeeID")),
		dllite.Not(dllite.ExistsInv("JobSeekerID")))
	ont.AssertConcept("Person", "a")
	ont.AssertConcept("Person", "b")
	ont.AssertConcept("Employed", "a")

	src, err := ont.ToDatalog()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("translated guarded normal Datalog± program:")
	fmt.Println(src)

	st := atom.NewStore(term.NewStore())
	prog, db, err := ont.Compile(st)
	if err != nil {
		log.Fatal(err)
	}
	engine := core.NewEngine(prog, db, core.Options{})
	m := engine.Evaluate()
	if !m.Exact {
		log.Fatal("employment chase should saturate")
	}

	fmt.Println("well-founded model (true atoms):")
	for _, g := range m.TrueAtoms() {
		fmt.Println(" ", st.String(g))
	}

	// The paper's three highlighted consequences.
	for _, check := range []string{"employeeID", "jobSeekerID", "validID"} {
		p, ok := st.LookupPred(check)
		if !ok {
			log.Fatalf("missing predicate %s", check)
		}
		found := 0
		for _, g := range m.TrueAtoms() {
			if st.PredOf(g) == p {
				found++
			}
		}
		fmt.Printf("derived %-12s atoms: %d\n", check, found)
	}
}
