// Ontology: a larger DL-Lite_{R,⊓,not} knowledge base (university domain)
// exercising role inclusions, inverse roles, default negation, and
// disjointness constraints under the standard WFS with UNA — the
// ontological-reasoning application the paper targets.
//
// Run with: go run ./examples/ontology
package main

import (
	"fmt"
	"log"

	"repro/internal/atom"
	"repro/internal/core"
	"repro/internal/dllite"
	"repro/internal/program"
	"repro/internal/term"
)

func main() {
	o := dllite.New()

	// TBox: every professor teaches something; teachers are staff; PhD
	// students without an advisor are flagged as unsupervised; advised
	// students are supervised; supervision is a form of working-with.
	o.SubClass(dllite.Exists("teaches"), dllite.Pos(dllite.Atomic("Professor")))
	o.SubClass(dllite.Atomic("Staff"), dllite.Pos(dllite.Exists("teaches")))
	o.SubClass(dllite.Atomic("Course"), dllite.Pos(dllite.ExistsInv("teaches")))
	o.SubClass(dllite.Atomic("Unsupervised"),
		dllite.Pos(dllite.Atomic("PhDStudent")),
		dllite.Not(dllite.ExistsInv("advises")))
	o.SubClass(dllite.Atomic("Supervised"),
		dllite.Pos(dllite.Atomic("PhDStudent")),
		dllite.Pos(dllite.ExistsInv("advises")))
	o.SubRole(dllite.Role{Name: "advises"}, dllite.Role{Name: "worksWith"})
	// Disjointness: nobody is both supervised and unsupervised.
	o.Disjoint(dllite.Atomic("Supervised"), dllite.Atomic("Unsupervised"))

	// ABox.
	o.AssertConcept("Professor", "turing")
	o.AssertConcept("Professor", "church")
	o.AssertConcept("PhDStudent", "alice")
	o.AssertConcept("PhDStudent", "bob")
	o.AssertRole("advises", "turing", "alice")

	src, err := o.ToDatalog()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("translated program:")
	fmt.Println(src)

	st := atom.NewStore(term.NewStore())
	prog, db, err := o.Compile(st)
	if err != nil {
		log.Fatal(err)
	}
	engine := core.NewEngine(prog, db, core.Options{})
	m := engine.Evaluate()

	queries := []string{
		"? staff(turing).",               // via ∃teaches with a null object
		"? course(X).",                   // the null course exists
		"? supervised(alice).",           // advised by turing
		"? unsupervised(bob).",           // closed-world default
		"? worksWith(turing, X).",        // role inclusion
		"? supervised(X), not staff(X).", // NBCQ mixing both polarities
		"? unsupervised(alice).",         // must be false
	}
	fmt.Println("NBCQ answers:")
	for _, qs := range queries {
		q, err := program.ParseQuery(qs, st)
		if err != nil {
			log.Fatal(err)
		}
		ans, _, _ := engine.Answer(q)
		fmt.Printf("  %-34s %s\n", qs, ans)
	}

	if vs := m.CheckConstraints(); len(vs) == 0 {
		fmt.Println("\nno disjointness violations — knowledge base is consistent")
	} else {
		fmt.Println("\nviolations:")
		for _, v := range vs {
			fmt.Println(" ", v)
		}
	}
}
