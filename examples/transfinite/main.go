// Transfinite: the paper's Examples 4, 6, and 9 — the program whose
// well-founded model is only reached at stage ŴP,ω+2 of the (transfinite)
// fixpoint iteration.
//
// The program (in TGD form; the engine Skolemizes it to the paper's Σf):
//
//	R(X,Y,Z) → ∃W R(X,Z,W)
//	R(X,Y,Z) ∧ P(X,Y) ∧ ¬Q(Z) → P(X,Z)
//	R(X,Y,Z) ∧ ¬P(X,Y) → Q(Z)
//	R(X,Y,Z) ∧ ¬P(X,Z) → S(X)
//	P(X,Y) ∧ ¬S(X) → T(X)
//
// with D = {R(0,0,1), P(0,0)}. T(0) is true in the WFS, but only "after ω"
// iterations: on depth-d truncations the round count grows with d while
// the answers stay fixed — the finite shadow of the transfinite stage.
//
// Run with: go run ./examples/transfinite
package main

import (
	"fmt"
	"log"

	wfs "repro"
	"repro/internal/chase"
)

const src = `
r(0,0,1).
p(0,0).
r(X,Y,Z) -> r(X,Z,W).
r(X,Y,Z), p(X,Y), not q(Z) -> p(X,Z).
r(X,Y,Z), not p(X,Y) -> q(Z).
r(X,Y,Z), not p(X,Z) -> s(X).
p(X,Y), not s(X) -> t(X).
`

func main() {
	sys, err := wfs.Load(src)
	if err != nil {
		log.Fatal(err)
	}

	// Example 6: the guarded chase forest F+(P) up to depth 3. The engine
	// accessor hands out the live program and database (single-goroutine
	// tooling use; concurrent readers should go through sys.Snapshot).
	eng := sys.Engine()
	res := chase.Run(eng.Prog, eng.DB, chase.Options{MaxDepth: 3, MaxAtoms: 10000})
	fmt.Println("guarded chase forest F+(P) to depth 3 (paper Example 6):")
	fmt.Print(res.BuildForest(3, 200).Dump())

	// Examples 4 and 9: the highlighted literals of WFS(D,Σ).
	fmt.Println("\nWFS consequences (Examples 4 and 9):")
	for _, a := range []string{"t(0)", "s(0)", "q(1)", "p(0,0)", "p(0,1)"} {
		tv, err := sys.TruthOf(a)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s %s\n", a, tv)
	}

	// The growth of fixpoint rounds with truncation depth: the finite
	// shadow of ŴP,ω+2.
	fmt.Println("\nfixpoint rounds vs chase depth (transfinite shadow):")
	for _, d := range []int{4, 8, 16, 32} {
		m := sys.Engine().EvaluateAtDepth(d)
		fmt.Printf("  depth %2d: universe %3d atoms, %3d operator rounds\n",
			d, m.GP.NumAtoms(), m.GM.Rounds)
	}
}
