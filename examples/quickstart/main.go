// Quickstart: the paper's Example 1 (literature ontology).
//
// The TBox axioms ConferencePaper ⊑ Article and Scientist ⊑ ∃isAuthorOf
// become guarded TGDs; the ABox fact Scientist(john) becomes a database
// fact; the BCQ ∃X isAuthorOf(john, X) asks whether John authors a paper.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	wfs "repro"
)

func main() {
	sys, err := wfs.Load(`
		% TBox (as guarded TGDs)
		conferencePaper(X) -> article(X).
		scientist(X)       -> isAuthorOf(X, Y).   % Y is existential

		% ABox
		scientist(john).
		conferencePaper(pods13).

		% Queries (embedded NBCQs)
		? isAuthorOf(john, X).
		? article(pods13).
		? article(john).
	`)
	if err != nil {
		log.Fatal(err)
	}

	for _, r := range sys.AnswerAll() {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		fmt.Printf("%-35s %s\n", r.Query, r.Answer)
	}

	// The snapshot/prepared-query API: grab an immutable evaluated view
	// once, prepare a query once, then answer from as many goroutines as
	// you like — no lock on the hot path.
	snap, err := sys.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	q, err := wfs.Prepare("? isAuthorOf(john, X).")
	if err != nil {
		log.Fatal(err)
	}
	ans, err := snap.Answer(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprepared %q against snapshot (epoch %d): %s\n", q, snap.Epoch(), ans)

	fmt.Println("\nwell-founded model (true atoms):")
	for _, a := range snap.TrueFacts() {
		fmt.Println(" ", a)
	}
	fmt.Printf("\nProposition 12 δ for this schema: ≈2^%d\n", sys.DeltaBound().BitLen())
}
