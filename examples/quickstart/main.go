// Quickstart: the paper's Example 1 (literature ontology).
//
// The TBox axioms ConferencePaper ⊑ Article and Scientist ⊑ ∃isAuthorOf
// become guarded TGDs; the ABox fact Scientist(john) becomes a database
// fact; the BCQ ∃X isAuthorOf(john, X) asks whether John authors a paper.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	wfs "repro"
)

func main() {
	sys, err := wfs.Load(`
		% TBox (as guarded TGDs)
		conferencePaper(X) -> article(X).
		scientist(X)       -> isAuthorOf(X, Y).   % Y is existential

		% ABox
		scientist(john).
		conferencePaper(pods13).

		% Queries (embedded NBCQs)
		? isAuthorOf(john, X).
		? article(pods13).
		? article(john).
	`)
	if err != nil {
		log.Fatal(err)
	}

	for _, r := range sys.AnswerAll() {
		fmt.Printf("%-35s %s\n", r.Query, r.Answer)
	}

	fmt.Println("\nwell-founded model (true atoms):")
	for _, a := range sys.TrueFacts() {
		fmt.Println(" ", a)
	}
	fmt.Printf("\nProposition 12 δ for this schema: ≈2^%d\n", sys.DeltaBound().BitLen())
}
