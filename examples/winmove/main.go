// Winmove: the classic three-valued showcase of the well-founded
// semantics — the game rule win(X) ← move(X,Y), ¬win(Y) — evaluated with
// this reproduction's engine (the rule is guarded: move(X,Y) is the
// guard), plus a demonstration of the goal-directed WCHECK (§4).
//
// Positions that can move to a lost position are won; positions all of
// whose moves reach won positions are lost; positions whose status
// depends on a cycle are undefined — exactly the three truth values of
// the WFS.
//
// Run with: go run ./examples/winmove
package main

import (
	"fmt"
	"log"

	wfs "repro"
)

func main() {
	sys, err := wfs.Load(`
		move(X,Y), not win(Y) -> win(X).

		% a chain: a -> b -> c (c is stuck)
		move(a,b). move(b,c).
		% a cycle: d <-> e (drawn by repetition)
		move(d,e). move(e,d).
		% a cycle with an escape: f <-> g, g -> h (g can force a win)
		move(f,g). move(g,f). move(g,h).
	`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("position status under the WFS:")
	for _, p := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		tv, err := sys.TruthOf("win(" + p + ")")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  win(%s) = %s\n", p, tv)
	}

	// Goal-directed membership check: only the goal's dependency closure
	// is evaluated.
	tv, stats, err := sys.WCheck("win(b)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nWCHECK(win(b)) = %s — closure %d/%d atoms, %d/%d rules\n",
		tv, stats.ClosureAtoms, stats.TotalAtoms, stats.ClosureRules, stats.TotalRules)

	fmt.Println("\nundefined atoms (drawn positions):")
	for _, a := range sys.UndefinedFacts() {
		fmt.Println(" ", a)
	}
}
