package wfs

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/atom"
	"repro/internal/core"
	"repro/internal/ground"
	"repro/internal/program"
)

// Snapshot is an immutable, fully evaluable view of a System at one
// mutation epoch: a frozen term/atom store, the compiled program, and the
// database as of that epoch. A Snapshot is safe for unlimited concurrent
// readers and acquires no mutex on the query-answering hot path.
//
// Evaluation state is built lazily, at most once per snapshot, on private
// overlay stores layered over the frozen base — so evaluation interns
// chase-derived terms without ever mutating shared state. The
// adaptive-deepening ladder is one chained, resumable chase: rung k+1
// extends rung k's chase (chase.Result.Extend) into a fresh overlay over
// rung k's frozen store instead of re-chasing from the database, and its
// grounding appends to rung k's (ground.ExtendFromChase) with local IDs
// kept stable. Each rung's model and store are frozen before publication,
// preserving the immutability contract for concurrent readers of earlier
// rungs. Query-time interning of names the snapshot has never seen goes
// into a small per-call overlay the same way.
//
// A Snapshot remains answerable forever: it keeps serving its epoch's
// consistent view even after the originating System has accepted further
// writes. Grab a fresh snapshot (System.Snapshot) to observe them.
type Snapshot struct {
	store   *atom.Store // frozen
	prog    *program.Program
	db      program.Database
	queries []*program.Query
	opts    core.Options // defaults resolved
	epoch   uint64

	base  snapModel    // model at the configured depth (Select, TruthOf, …)
	rungs []*snapModel // adaptive-deepening ladder (Answer), chained

	ranksOnce sync.Once // guards Model.PrepareExplanations on base
	statsOnce sync.Once
	stats     Stats
}

// snapModel lazily evaluates one model over a private overlay store. The
// sync.Once makes construction race-free; after it, the model and its
// (frozen) overlay store are read-only. A snapModel with a prev pointer
// is a ladder rung: it extends prev's chase into a fresh overlay over
// prev's frozen store rather than running a private full chase.
type snapModel struct {
	depth int
	prev  *snapModel // previous rung; nil for the first rung and for base
	once  sync.Once
	m     *core.Model
}

func (sm *snapModel) get(s *Snapshot) *core.Model {
	sm.once.Do(func() {
		var m *core.Model
		if sm.prev != nil {
			// Chained rung: continue the previous rung's chase on an
			// overlay over its (frozen) store. IDs carry over, so the
			// extended chase and grounding append to frozen state
			// without touching it.
			pm := sm.prev.get(s)
			ost := atom.NewOverlay(pm.Chase.Prog.Store)
			m = core.ExtendModel(pm, s.prog.WithStore(ost), s.opts, sm.depth)
			ost.Freeze()
		} else {
			ost := atom.NewOverlay(s.store)
			eng := core.NewEngine(s.prog.WithStore(ost), s.db, s.opts)
			m = eng.EvaluateAtDepth(sm.depth)
			ost.Freeze()
		}
		m.Precompute()
		sm.m = m
	})
	return sm.m
}

// newSnapshot builds a snapshot from an already-frozen store clone and a
// clipped database slice. Callers (System.Snapshot) hold the system lock.
func newSnapshot(store *atom.Store, prog *program.Program, db program.Database,
	queries []*program.Query, opts core.Options, epoch uint64) *Snapshot {
	opts = opts.WithDefaults()
	s := &Snapshot{
		store:   store,
		prog:    prog.WithStore(store),
		db:      db,
		queries: queries,
		opts:    opts,
		epoch:   epoch,
	}
	s.base = snapModel{depth: opts.Depth}
	var prev *snapModel
	for d := opts.AdaptiveStart; d <= opts.MaxDepth; d += opts.AdaptiveStep {
		sm := &snapModel{depth: d, prev: prev}
		s.rungs = append(s.rungs, sm)
		prev = sm
	}
	return s
}

// Epoch returns the mutation epoch this snapshot was taken at.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// NumFacts returns the number of database facts in the snapshot.
func (s *Snapshot) NumFacts() int { return len(s.db) }

// compileFor compiles a prepared query against the ID space of model m,
// interning unknown names into a per-call overlay over m's store. When
// compilation interns nothing new, the result references only base-store
// IDs and is cached in the Query for lock-free reuse across all models of
// this snapshot.
func (s *Snapshot) compileFor(q *Query, m *core.Model) (*program.Query, error) {
	if c := q.compiled.Load(); c != nil && c.store == s.store {
		return c.cq, nil
	}
	ost := atom.NewOverlay(m.Chase.Prog.Store)
	cq, err := program.CompileQuery(q.ast, ost)
	if err != nil {
		return nil, err
	}
	if ost.Pristine() {
		q.compiled.Store(&compiledQuery{store: s.store, cq: cq})
	}
	return cq, nil
}

// answerLadder runs core.AdaptiveAnswer over the snapshot's cached rungs:
// the same deepening/stability algorithm as Engine.Answer, but each depth
// resolves to a model built at most once per snapshot. compile resolves
// the query against each rung's ID space.
func (s *Snapshot) answerLadder(compile func(*core.Model) (*program.Query, error)) (Truth, *core.AnswerStats, error) {
	return core.AdaptiveAnswer(s.opts, s.rungAt, compile)
}

// rungAt returns (building if necessary) the ladder model at the given
// depth. The rung schedule is derived from the same resolved options
// AdaptiveAnswer iterates with, so every requested depth has a rung; a
// mismatch (which would indicate option drift between the snapshot and
// the ladder) is reported as an error through answerLadder rather than a
// panic, so it can never crash a serving process.
func (s *Snapshot) rungAt(depth int) (*core.Model, error) {
	if len(s.rungs) == 0 || s.opts.AdaptiveStep <= 0 {
		return nil, fmt.Errorf("wfs: no snapshot rung at depth %d (empty ladder)", depth)
	}
	i := (depth - s.opts.AdaptiveStart) / s.opts.AdaptiveStep
	if i < 0 || i >= len(s.rungs) || s.rungs[i].depth != depth {
		return nil, fmt.Errorf("wfs: no snapshot rung at depth %d (schedule start %d step %d × %d rungs)",
			depth, s.opts.AdaptiveStart, s.opts.AdaptiveStep, len(s.rungs))
	}
	return s.rungs[i].get(s), nil
}

// Answer evaluates a prepared NBCQ by adaptive deepening and returns the
// three-valued answer. Safe for unlimited concurrent callers.
func (s *Snapshot) Answer(q *Query) (Truth, error) {
	t, _, err := s.AnswerWithStats(q)
	return t, err
}

// AnswerWithStats is Answer returning the adaptive-deepening trace.
func (s *Snapshot) AnswerWithStats(q *Query) (Truth, *core.AnswerStats, error) {
	return s.answerLadder(func(m *core.Model) (*program.Query, error) {
		return s.compileFor(q, m)
	})
}

// answerCompiled runs the ladder for a query compiled at load time against
// the system's root store (embedded '?' queries). Such queries reference
// only pre-snapshot IDs, valid against every model.
func (s *Snapshot) answerCompiled(cq *program.Query) (Truth, error) {
	t, _, err := s.answerLadder(func(*core.Model) (*program.Query, error) { return cq, nil })
	return t, err
}

// AnswerAll answers every query embedded in the loaded source. A ladder
// evaluation error (an invalid schedule or rung mismatch) is carried on
// the result rather than rendered as a silent False answer.
func (s *Snapshot) AnswerAll() []QueryResult {
	out := make([]QueryResult, 0, len(s.queries))
	for _, cq := range s.queries {
		t, err := s.answerCompiled(cq)
		out = append(out, QueryResult{Query: cq.Label, Answer: t, Err: err})
	}
	return out
}

// Select returns the certain answers of a non-Boolean prepared query as
// tuples of constant names in the query's variable order (§2.1: answers
// are tuples over ∆, so bindings to labelled nulls are excluded). The
// first return lists the variable names. Selection runs against the model
// at the configured depth.
func (s *Snapshot) Select(q *Query) ([]string, [][]string, error) {
	m := s.base.get(s)
	cq, err := s.compileFor(q, m)
	if err != nil {
		return nil, nil, err
	}
	st := m.Chase.Prog.Store
	tuples := m.Select(cq)
	out := make([][]string, len(tuples))
	for i, tup := range tuples {
		row := make([]string, len(tup))
		for j, t := range tup {
			row[j] = st.Terms.String(t)
		}
		out[i] = row
	}
	return append([]string(nil), cq.VarNames...), out, nil
}

// groundAtom parses "pred(c1,…,cn)" against model m's ID space, interning
// unseen names into a per-call overlay. The returned store renders the
// atom and any proof over it.
func (s *Snapshot) groundAtom(m *core.Model, src string) (atom.AtomID, *atom.Store, error) {
	ost := atom.NewOverlay(m.Chase.Prog.Store)
	q, err := program.ParseQuery(src, ost)
	if err != nil {
		return atom.NoAtom, nil, err
	}
	if len(q.Pos) != 1 || len(q.Neg) != 0 || q.NumVars != 0 {
		return atom.NoAtom, nil, fmt.Errorf("wfs: %q is not a single ground atom", src)
	}
	return ost.Instantiate(q.Pos[0], atom.NewSubst(0)), ost, nil
}

// TruthOf returns the truth of a ground atom written in surface syntax,
// e.g. TruthOf("win(a)"), in the configured-depth model.
func (s *Snapshot) TruthOf(atomSrc string) (Truth, error) {
	m := s.base.get(s)
	a, _, err := s.groundAtom(m, atomSrc)
	if err != nil {
		return False, err
	}
	return m.Truth(a), nil
}

// Explain renders a forward proof (Definition 5) of a ground atom. The
// boolean reports whether the atom is true in the model (only true atoms
// have forward proofs); the error reports malformed input. The two are
// distinct: a parse failure is an error, not "false".
func (s *Snapshot) Explain(atomSrc string) (string, bool, error) {
	m := s.base.get(s)
	a, ost, err := s.groundAtom(m, atomSrc)
	if err != nil {
		return "", false, err
	}
	s.ranksOnce.Do(m.PrepareExplanations)
	proof, ok := m.Explain(a)
	if !ok {
		return "", false, nil
	}
	return proof.Render(ost), true, nil
}

// WCheck runs the goal-directed membership check on a ground atom.
func (s *Snapshot) WCheck(atomSrc string) (Truth, *core.WCheckStats, error) {
	m := s.base.get(s)
	a, _, err := s.groundAtom(m, atomSrc)
	if err != nil {
		return False, nil, err
	}
	t, stats := m.WCheck(a)
	return t, stats, nil
}

// CheckConstraints evaluates the program's negative constraints and EGDs
// against the configured-depth model.
func (s *Snapshot) CheckConstraints() []core.Violation {
	return s.base.get(s).CheckConstraints()
}

// TrueFacts renders all true atoms of the model, sorted.
func (s *Snapshot) TrueFacts() []string { return s.renderFacts(ground.True) }

// UndefinedFacts renders all undefined atoms of the model, sorted.
func (s *Snapshot) UndefinedFacts() []string { return s.renderFacts(ground.Undefined) }

// renderFacts renders every atom with the given truth value that query
// matching may use: like Answer/Select/buildIndexes, it excludes atoms
// beyond Model.UsableDepth, whose guard-band frontier truth values are
// unreliable (they can flip once deeper children exist) and which no
// query answer ever observes. It runs entirely on the snapshot — no
// system lock is held — and preallocates the output from a filtered count
// so rendering large models does not repeatedly regrow the slice.
func (s *Snapshot) renderFacts(tv Truth) []string {
	m := s.base.get(s)
	st := m.Chase.Prog.Store
	usable := func(g atom.AtomID) bool {
		return m.UsableDepth < 0 || m.Chase.Depth(g) <= m.UsableDepth
	}
	n := 0
	for i, g := range m.GP.Atoms {
		if m.GM.Truth[i] == tv && usable(g) {
			n++
		}
	}
	out := make([]string, 0, n)
	for i, g := range m.GP.Atoms {
		if m.GM.Truth[i] == tv && usable(g) {
			out = append(out, st.String(g))
		}
	}
	sort.Strings(out)
	return out
}

// Stats summarizes the snapshot's evaluated model. The summary is computed
// once per snapshot and cached; concurrent callers share it.
func (s *Snapshot) Stats() Stats {
	s.statsOnce.Do(func() {
		m := s.base.get(s)
		_, strat := s.prog.Stratify()
		delta := core.DeltaForSchema(s.store)
		s.stats = Stats{
			Facts:      len(s.db),
			Epoch:      s.epoch,
			Model:      m.Stats(),
			Algorithm:  s.opts.Algorithm.String(),
			Stratified: strat,
			DeltaBound: formatBig(delta),
			DeltaBits:  delta.BitLen(),
		}
	})
	return s.stats
}
