package wfs

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/atom"
	"repro/internal/cancel"
	"repro/internal/core"
	"repro/internal/ground"
	"repro/internal/program"
	"repro/internal/term"
	"repro/internal/trace"
)

// maxSnapshotChain bounds how many consecutive epochs may rebase their
// snapshots onto the previous one. Each rebased epoch adds one overlay
// store layer per materialized rung, and ID resolution walks the layer
// chain, so unbounded chaining would slowly tax every read; past the
// budget the next snapshot rebuilds fresh, compacting the chain.
const maxSnapshotChain = 8

// Snapshot is an immutable, fully evaluable view of a System at one
// mutation epoch: a frozen term/atom store, the compiled program, and the
// database as of that epoch. A Snapshot is safe for unlimited concurrent
// readers and acquires no mutex on the query-answering hot path.
//
// Evaluation state is built lazily, at most once per snapshot, on private
// overlay stores layered over the frozen base — so evaluation interns
// chase-derived terms without ever mutating shared state. The
// adaptive-deepening ladder is one chained, resumable chase: rung k+1
// extends rung k's chase (chase.Result.Extend) into a fresh overlay over
// rung k's frozen store instead of re-chasing from the database, and its
// grounding appends to rung k's (ground.ExtendFromChase) with local IDs
// kept stable. Each rung's model and store are frozen before publication,
// preserving the immutability contract for concurrent readers of earlier
// rungs. Query-time interning of names the snapshot has never seen goes
// into a small per-call overlay the same way.
//
// A Snapshot remains answerable forever: it keeps serving its epoch's
// consistent view even after the originating System has accepted further
// writes. Grab a fresh snapshot (System.Snapshot) to observe them.
type Snapshot struct {
	store   *atom.Store // frozen
	prog    *program.Program
	db      program.Database
	queries []*program.Query
	opts    core.Options // defaults resolved
	epoch   uint64

	base  snapModel    // model at the configured depth (Select, TruthOf, …)
	rungs []*snapModel // adaptive-deepening ladder (Answer), chained

	// Delta-rebase bookkeeping (see newSnapshot): chain counts the
	// epochs since the last fresh build, and the safe*Len fields bound
	// the ID-space prefix shared with every store chain any rung of this
	// snapshot might evaluate on — the oldest rebase ancestor's base
	// store. Compiled queries referencing only IDs below these bounds
	// are valid against every model of the snapshot.
	chain       int
	safeAtomLen int
	safeTermLen int
	safePredLen int

	// metrics points at the owning System's always-on counters; rung
	// builds fold their phase spans into it (EngineMetrics.observeBuild).
	// nil in tests that construct snapshots directly.
	metrics *EngineMetrics

	statsOnce sync.Once
	stats     Stats
}

// snapModel lazily evaluates one model over a private overlay store. The
// mutex + done flag make construction race-free while letting a
// cancelled build abort cleanly: a build interrupted by its caller's
// deadline installs nothing, so the rung stays cold and the next caller
// (with a live token) rebuilds it — a cancelled request can never poison
// a rung for every later reader. After done is set, the model and its
// (frozen) overlay store are read-only and reads take no lock. A
// snapModel with a prev pointer is a ladder rung: it extends prev's
// chase into a fresh overlay over prev's frozen store rather than
// running a private full chase. A snapModel with a reb pointer can
// instead rebase the same-depth rung of the previous epoch's snapshot
// onto the applied delta — preferred when that rung was actually
// materialized, since it reuses all of its work.
type snapModel struct {
	depth int
	prev  *snapModel // previous rung of this snapshot; nil for the first rung and for base
	// reb links the same-depth rung of the previous epoch's snapshot
	// (nil when fresh). It is cleared once this rung materializes — its
	// own model is then the better rebase source for later epochs, and
	// holding the link would keep up to maxSnapshotChain epochs of
	// evaluation state reachable. Atomic because later epochs' rebase
	// walks read it concurrently with the clear.
	reb  atomic.Pointer[snapModel]
	mu   sync.Mutex
	done atomic.Bool // set after a completed build installs m; read lock-free
	m    *core.Model
}

// get returns (building if necessary) the rung's model. tok, when
// non-nil, is the calling request's cancellation token: a build cut
// short by it returns the token's cause as the error and leaves the rung
// unbuilt. tr, when non-nil, is the caller's trace span: whichever
// goroutine wins the build lock records the build's phase tree under it
// (losers of the race observe only their wait; see Snapshot.rungAt). A
// build span is recorded even with tr nil — standalone, solely to feed
// the System's always-on EngineMetrics — which costs a handful of
// time.Now calls on an operation that chases and solves a whole model.
func (sm *snapModel) get(s *Snapshot, tok *cancel.Token, tr *trace.Span) (*core.Model, error) {
	if sm.done.Load() {
		return sm.m, nil
	}
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if sm.done.Load() {
		return sm.m, nil
	}
	build := tr.Child("build-depth-" + strconv.Itoa(sm.depth))
	if build == nil {
		build = trace.New("build-depth-" + strconv.Itoa(sm.depth))
	}
	rebased := false
	var m *core.Model
	if rm := sm.rebase(s, tok, build); rm != nil {
		rebased = true
		m = rm
	} else if sm.prev != nil {
		// Chained rung: continue the previous rung's chase on an
		// overlay over its (frozen) store. IDs carry over, so the
		// extended chase and grounding append to frozen state
		// without touching it.
		pm, err := sm.prev.get(s, tok, tr)
		if err != nil {
			build.MarkCancelled()
			build.End()
			return nil, err
		}
		ost := atom.NewOverlay(pm.Chase.Prog.Store)
		m = core.ExtendModelCancelTraced(pm, s.prog.WithStore(ost), s.opts, sm.depth, tok, build)
		ost.Freeze()
	} else {
		ost := atom.NewOverlay(s.store)
		eng := core.NewEngine(s.prog.WithStore(ost), s.db, s.opts)
		m = eng.EvaluateAtDepthCancelTraced(sm.depth, tok, build)
		ost.Freeze()
	}
	if m.Interrupted {
		build.MarkCancelled()
		build.End()
		return nil, cancelErr(tok)
	}
	endPre := build.Phase("precompute")
	m.Precompute()
	endPre()
	sm.m = m
	sm.reb.Store(nil) // release the previous-epoch chain
	sm.done.Store(true)
	build.End()
	s.metrics.observeBuild(build, rebased)
	return sm.m, nil
}

// rebase carries the nearest already-materialized same-depth rung of an
// earlier epoch across the accumulated database delta: the snapshot's
// database is translated into that rung's ID space (a fresh overlay over
// its frozen store) and core.RebaseModel diffs it against the rung's own
// chase database, so any number of intermediate epochs collapse into one
// rebase. Rungs that were never materialized are skipped — rebasing must
// never force old evaluation work that nobody asked for. (A skipped rung
// that materializes mid-walk may have just cleared its own reb link; the
// walk then simply ends and get falls back to a fresh build.) Returns
// nil when no rebase source exists, leaving get on its fresh-build
// paths; an interrupted rebase surfaces through the returned model's
// Interrupted flag, which get converts to the token's cause.
func (sm *snapModel) rebase(s *Snapshot, tok *cancel.Token, tr *trace.Span) *core.Model {
	for r := sm.reb.Load(); r != nil; r = r.reb.Load() {
		if !r.done.Load() || r.m == nil || sm.depth != r.depth {
			continue
		}
		pm := r.m
		base := pm.Chase.Prog.Store
		if !base.Frozen() {
			return nil
		}
		ost := atom.NewOverlay(base)
		db, ok := s.translateDB(ost)
		if !ok {
			return nil
		}
		m := core.RebaseModelCancelTraced(pm, s.prog.WithStore(ost), s.opts, sm.depth, db, tok, tr)
		ost.Freeze()
		return m
	}
	return nil
}

// cancelErr is the error a cancelled evaluation surfaces: the token's
// recorded cause (context.DeadlineExceeded for a blown deadline,
// context.Canceled for a disconnect or manual cancel), falling back to
// context.Canceled when an interrupted model arrives without a cause.
func cancelErr(tok *cancel.Token) error {
	if err := tok.Err(); err != nil {
		return err
	}
	return context.Canceled
}

// translateDB maps the snapshot's database — interned in the current
// master-clone store — into the ID space of an older rung's store chain.
// Both chains share the master store's history up to the oldest rebase
// ancestor, so atoms below the safe prefix carry over verbatim; newer
// atoms (facts added since that ancestor's epoch) re-intern by name into
// the target overlay. Bails (false) on a database fact with non-constant
// arguments, which the rebase path cannot translate.
func (s *Snapshot) translateDB(to *atom.Store) (program.Database, bool) {
	out := make(program.Database, len(s.db))
	for i, a := range s.db {
		if int(a) < s.safeAtomLen {
			out[i] = a
			continue
		}
		args := s.store.Args(a)
		ts := make([]term.ID, len(args))
		for j, tid := range args {
			if int(tid) < s.safeTermLen {
				ts[j] = tid
				continue
			}
			if s.store.Terms.Kind(tid) != term.Const {
				return nil, false
			}
			ts[j] = to.Terms.Const(s.store.Terms.Name(tid))
		}
		p := s.store.PredOf(a)
		if int(p) >= s.safePredLen {
			var err error
			if p, err = to.Pred(s.store.PredName(p), len(args)); err != nil {
				return nil, false
			}
		}
		out[i] = to.Atom(p, ts)
	}
	return out, true
}

// newSnapshot builds a snapshot from an already-frozen store clone and a
// clipped database slice. When prevSnap is non-nil (the last published
// snapshot, staged across a mutation), every rung links to its same-depth
// predecessor so evaluation can rebase the predecessor's materialized
// work onto the delta instead of rebuilding; the safe ID-space bounds are
// inherited, since a rebased rung may serve from any ancestor's chain.
// Callers (System.Snapshot) hold the system lock.
func newSnapshot(store *atom.Store, prog *program.Program, db program.Database,
	queries []*program.Query, opts core.Options, epoch uint64, prevSnap *Snapshot,
	metrics *EngineMetrics) *Snapshot {
	opts = opts.WithDefaults()
	s := &Snapshot{
		store:   store,
		prog:    prog.WithStore(store),
		db:      db,
		queries: queries,
		opts:    opts,
		epoch:   epoch,
		metrics: metrics,
	}
	if prevSnap != nil {
		s.chain = prevSnap.chain + 1
		s.safeAtomLen = prevSnap.safeAtomLen
		s.safeTermLen = prevSnap.safeTermLen
		s.safePredLen = prevSnap.safePredLen
	} else {
		s.safeAtomLen = store.Len()
		s.safeTermLen = store.Terms.Len()
		s.safePredLen = store.NumPreds()
	}
	s.base = snapModel{depth: opts.Depth}
	if prevSnap != nil {
		s.base.reb.Store(&prevSnap.base)
	}
	var prev *snapModel
	i := 0
	for d := opts.AdaptiveStart; d <= opts.MaxDepth; d += opts.AdaptiveStep {
		sm := &snapModel{depth: d, prev: prev}
		if prevSnap != nil && i < len(prevSnap.rungs) && prevSnap.rungs[i].depth == d {
			sm.reb.Store(prevSnap.rungs[i])
		}
		s.rungs = append(s.rungs, sm)
		prev = sm
		i++
	}
	return s
}

// Epoch returns the mutation epoch this snapshot was taken at.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// NumFacts returns the number of database facts in the snapshot.
func (s *Snapshot) NumFacts() int { return len(s.db) }

// compileFor compiles a prepared query against the ID space of model m,
// interning unknown names into a per-call overlay over m's store. When
// compilation interns nothing new AND references only IDs below the
// snapshot's safe shared prefix, the result is valid against every model
// of this snapshot — including delta-rebased rungs living on earlier
// epochs' store chains, where IDs above the prefix mean different things
// — and is cached in the Query for lock-free reuse.
func (s *Snapshot) compileFor(q *Query, m *core.Model) (*program.Query, error) {
	if c := q.compiled.Load(); c != nil && c.store == s.store {
		return c.cq, nil
	}
	ost := atom.NewOverlay(m.Chase.Prog.Store)
	cq, err := program.CompileQuery(q.ast, ost)
	if err != nil {
		return nil, err
	}
	if ost.Pristine() && queryWithin(cq, s.safePredLen, s.safeTermLen) {
		q.compiled.Store(&compiledQuery{store: s.store, cq: cq})
	}
	return cq, nil
}

// queryWithin reports whether every predicate and constant the compiled
// query references lies below the given ID bounds.
func queryWithin(cq *program.Query, maxPred, maxTerm int) bool {
	within := func(ps []atom.Pattern) bool {
		for _, p := range ps {
			if int(p.Pred) >= maxPred {
				return false
			}
			for _, a := range p.Args {
				if !a.IsVar() && int(a.Const) >= maxTerm {
					return false
				}
			}
		}
		return true
	}
	return within(cq.Pos) && within(cq.Neg)
}

// answerLadder runs the adaptive ladder over the snapshot's cached
// rungs: the same deepening/stability algorithm as Engine.Answer, but
// each depth resolves to a model built at most once per snapshot.
// compile resolves the query against each rung's ID space; tr (nil on
// the hot path) records the per-depth phase breakdown.
func (s *Snapshot) answerLadder(compile func(*core.Model) (*program.Query, error), tok *cancel.Token, tr *trace.Span) (Truth, *core.AnswerStats, error) {
	modelAt := func(depth int, tr *trace.Span) (*core.Model, error) {
		return s.rungAt(depth, tok, tr)
	}
	return core.AdaptiveAnswerCancelTraced(s.opts, modelAt, compile, tok, tr)
}

// rungAt returns (building if necessary) the ladder model at the given
// depth. The rung schedule is derived from the same resolved options
// AdaptiveAnswer iterates with, so every requested depth has a rung; a
// mismatch (which would indicate option drift between the snapshot and
// the ladder) is reported as an error through answerLadder rather than a
// panic, so it can never crash a serving process. tr, when non-nil,
// receives the rung's build phase tree — or only the wait, if another
// goroutine is mid-build (the sync.Once winner records the work).
func (s *Snapshot) rungAt(depth int, tok *cancel.Token, tr *trace.Span) (*core.Model, error) {
	if len(s.rungs) == 0 || s.opts.AdaptiveStep <= 0 {
		return nil, fmt.Errorf("wfs: no snapshot rung at depth %d (empty ladder)", depth)
	}
	i := (depth - s.opts.AdaptiveStart) / s.opts.AdaptiveStep
	if i < 0 || i >= len(s.rungs) || s.rungs[i].depth != depth {
		return nil, fmt.Errorf("wfs: no snapshot rung at depth %d (schedule start %d step %d × %d rungs)",
			depth, s.opts.AdaptiveStart, s.opts.AdaptiveStep, len(s.rungs))
	}
	return s.rungs[i].get(s, tok, tr)
}

// Answer evaluates a prepared NBCQ by adaptive deepening and returns the
// three-valued answer. Safe for unlimited concurrent callers.
func (s *Snapshot) Answer(q *Query) (Truth, error) {
	t, _, err := s.AnswerWithStats(q)
	return t, err
}

// AnswerWithStats is Answer returning the adaptive-deepening trace.
func (s *Snapshot) AnswerWithStats(q *Query) (Truth, *core.AnswerStats, error) {
	return s.answerLadder(func(m *core.Model) (*program.Query, error) {
		return s.compileFor(q, m)
	}, nil, nil)
}

// AnswerCtx is Answer under a context: the evaluation polls ctx's
// cancellation cooperatively (every ~1024 chase steps, every SCC of the
// fixpoint, every rung of the ladder) and returns ctx's error —
// context.DeadlineExceeded or context.Canceled — when it fires. A
// cancelled build installs nothing: the rung stays cold and later
// callers rebuild it. An uncancellable ctx (context.Background) costs
// one nil check per poll point.
func (s *Snapshot) AnswerCtx(ctx context.Context, q *Query) (Truth, error) {
	t, _, err := s.AnswerCtxStats(ctx, q)
	return t, err
}

// answerWarmExact answers q from the first ladder rung alone, when that
// rung is already materialized and its model is exact — the steady
// state of every warm snapshot of a terminating program, and the shape
// the server's cache-miss path hits on almost all traffic. In that
// state the ladder would return at its first rung anyway, so this path
// produces byte-identical answers and stats; what it skips is the
// per-call cancellation plumbing (token acquisition, option
// revalidation), which on a sub-microsecond warm answer costs more than
// the answer itself. ok=false (cold first rung, inexact model, or a
// query that fails to compile) falls back to the full token-carrying
// ladder, which re-encounters and properly reports any error.
func (s *Snapshot) answerWarmExact(q *Query) (Truth, *core.AnswerStats, bool) {
	if len(s.rungs) == 0 {
		return False, nil, false
	}
	sm := s.rungs[0]
	if !sm.done.Load() {
		return False, nil, false
	}
	m := sm.m
	if !m.Exact {
		return False, nil, false
	}
	cq, err := s.compileFor(q, m)
	if err != nil {
		return False, nil, false
	}
	ans := m.Answer(cq)
	return ans, &core.AnswerStats{
		Depths:     []int{sm.depth},
		Answers:    []Truth{ans},
		FinalDepth: sm.depth,
		Exact:      true,
		Stable:     true,
	}, true
}

// AnswerCtxStats is AnswerCtx returning the adaptive-deepening stats.
// On cancellation the stats of the rungs that completed before the
// deadline are returned alongside the error, so callers opting into
// graceful degradation can serve the deepest completed rung's answer
// (marked inexact) instead of nothing.
func (s *Snapshot) AnswerCtxStats(ctx context.Context, q *Query) (Truth, *core.AnswerStats, error) {
	// One lock-free poll up front keeps the contract that an
	// already-cancelled context never starts an evaluation, then the
	// warm-exact fast path answers without acquiring a token at all —
	// a warm exact answer cannot outlive any deadline worth setting.
	if done := ctx.Done(); done != nil {
		select {
		case <-done:
			err := ctx.Err()
			if err == nil {
				err = context.Canceled
			}
			return False, nil, err
		default:
		}
	}
	if t, st, ok := s.answerWarmExact(q); ok {
		return t, st, nil
	}
	tok := cancel.For(ctx)
	t, st, err := s.answerLadder(func(m *core.Model) (*program.Query, error) {
		return s.compileFor(q, m)
	}, tok, nil)
	// The ladder has returned: every rung build ran synchronously under
	// its rung lock and every solver worker was joined, so nothing can
	// still poll the token — recycle it (it is a measurable share of the
	// warm answer path's cost).
	tok.Release()
	return t, st, err
}

// AnswerCtxTraced is AnswerCtx recording the evaluation's phase tree
// under the caller's already-open span (see AnswerTraced). Spans cut
// short by cancellation carry a "cancelled" counter.
func (s *Snapshot) AnswerCtxTraced(ctx context.Context, q *Query, root *trace.Span) (Truth, *core.AnswerStats, error) {
	tok := cancel.For(ctx)
	t, st, err := s.answerCancelTraced(q, tok, root)
	tok.Release() // see AnswerCtxStats: no reference survives the ladder
	return t, st, err
}

// TraceAnswer is Answer recording a detailed evaluation trace (see
// System.TraceAnswer). Rungs already materialized on this snapshot
// appear as match-only depth spans; a first traced query after a write
// shows the full rebase/build cost it actually paid.
func (s *Snapshot) TraceAnswer(q *Query) (Truth, *core.AnswerStats, *trace.EvalTrace, error) {
	return s.TraceAnswerDetail(q, true)
}

// TraceAnswerDetail is TraceAnswer with the instrumentation level under
// caller control: detailed=false records only the coarse phase tree (no
// per-SCC timings, no per-depth frontier profile), cheap enough to run
// on every uncached query for threshold-gated slow-query logging.
func (s *Snapshot) TraceAnswerDetail(q *Query, detailed bool) (Truth, *core.AnswerStats, *trace.EvalTrace, error) {
	root := trace.New("query")
	if detailed {
		root = trace.NewDetailed("query")
	}
	t, st, err := s.answerTraced(q, root)
	return t, st, root.Trace(), err
}

// AnswerTraced is Answer recording the evaluation's phase tree under
// the caller's already-open span — the server's request-scoped tracing
// path, where the root span belongs to the HTTP request rather than to
// this evaluation. The instrumentation level follows the span's detail
// flag; a nil span is AnswerWithStats.
func (s *Snapshot) AnswerTraced(q *Query, root *trace.Span) (Truth, *core.AnswerStats, error) {
	return s.answerTraced(q, root)
}

// WarmRebased eagerly materializes the base model and every ladder rung
// whose previous-epoch counterpart was already materialized, recording
// the work — including the delta-rebase spans — under tr. The server's
// mutation path calls this so the rebase a mutation causes lands in the
// mutating request's trace (and its latency bill) instead of ambushing
// the next reader; models that were cold before the mutation stay cold.
func (s *Snapshot) WarmRebased(tr *trace.Span) {
	if r := s.base.reb.Load(); r != nil && r.done.Load() {
		s.base.get(s, nil, tr)
	}
	for _, sm := range s.rungs {
		if r := sm.reb.Load(); r != nil && r.done.Load() {
			sm.get(s, nil, tr)
		}
	}
}

// answerTraced runs the traced ladder under an already-open root span
// (shared with System.TraceAnswer, whose root also covers parse and
// snapshot acquisition).
func (s *Snapshot) answerTraced(q *Query, root *trace.Span) (Truth, *core.AnswerStats, error) {
	return s.answerCancelTraced(q, nil, root)
}

// answerCancelTraced is answerTraced under a cancellation token.
func (s *Snapshot) answerCancelTraced(q *Query, tok *cancel.Token, root *trace.Span) (Truth, *core.AnswerStats, error) {
	ladder := root.Child("ladder")
	t, st, err := s.answerLadder(func(m *core.Model) (*program.Query, error) {
		return s.compileFor(q, m)
	}, tok, ladder)
	ladder.End()
	return t, st, err
}

// answerCompiled runs the ladder for a query compiled at load time against
// the system's root store (embedded '?' queries). Such queries reference
// only pre-snapshot IDs, valid against every model.
func (s *Snapshot) answerCompiled(cq *program.Query) (Truth, error) {
	t, _, err := s.answerLadder(func(*core.Model) (*program.Query, error) { return cq, nil }, nil, nil)
	return t, err
}

// AnswerAll answers every query embedded in the loaded source. A ladder
// evaluation error (an invalid schedule or rung mismatch) is carried on
// the result rather than rendered as a silent False answer.
func (s *Snapshot) AnswerAll() []QueryResult {
	out := make([]QueryResult, 0, len(s.queries))
	for _, cq := range s.queries {
		t, err := s.answerCompiled(cq)
		out = append(out, QueryResult{Query: cq.Label, Answer: t, Err: err})
	}
	return out
}

// Select returns the certain answers of a non-Boolean prepared query as
// tuples of constant names in the query's variable order (§2.1: answers
// are tuples over ∆, so bindings to labelled nulls are excluded). The
// first return lists the variable names. Selection runs against the model
// at the configured depth.
func (s *Snapshot) Select(q *Query) ([]string, [][]string, error) {
	m, _ := s.base.get(s, nil, nil)
	cq, err := s.compileFor(q, m)
	if err != nil {
		return nil, nil, err
	}
	st := m.Chase.Prog.Store
	tuples := m.Select(cq)
	out := make([][]string, len(tuples))
	for i, tup := range tuples {
		row := make([]string, len(tup))
		for j, t := range tup {
			row[j] = st.Terms.String(t)
		}
		out[i] = row
	}
	return append([]string(nil), cq.VarNames...), out, nil
}

// groundAtom parses "pred(c1,…,cn)" against model m's ID space, interning
// unseen names into a per-call overlay. The returned store renders the
// atom and any proof over it.
func (s *Snapshot) groundAtom(m *core.Model, src string) (atom.AtomID, *atom.Store, error) {
	ost := atom.NewOverlay(m.Chase.Prog.Store)
	q, err := program.ParseQuery(src, ost)
	if err != nil {
		return atom.NoAtom, nil, err
	}
	if len(q.Pos) != 1 || len(q.Neg) != 0 || q.NumVars != 0 {
		return atom.NoAtom, nil, fmt.Errorf("wfs: %q is not a single ground atom", src)
	}
	return ost.Instantiate(q.Pos[0], atom.NewSubst(0)), ost, nil
}

// TruthOf returns the truth of a ground atom written in surface syntax,
// e.g. TruthOf("win(a)"), in the configured-depth model.
func (s *Snapshot) TruthOf(atomSrc string) (Truth, error) {
	m, _ := s.base.get(s, nil, nil)
	a, _, err := s.groundAtom(m, atomSrc)
	if err != nil {
		return False, err
	}
	return m.Truth(a), nil
}

// Explain renders a forward proof (Definition 5) of a ground atom. The
// boolean reports whether the atom is true in the model (only true atoms
// have forward proofs); the error reports malformed input. The two are
// distinct: a parse failure is an error, not "false".
func (s *Snapshot) Explain(atomSrc string) (string, bool, error) {
	m, _ := s.base.get(s, nil, nil)
	a, ost, err := s.groundAtom(m, atomSrc)
	if err != nil {
		return "", false, err
	}
	m.PrepareExplanations() // idempotent: guarded by a per-model Once
	proof, ok := m.Explain(a)
	if !ok {
		return "", false, nil
	}
	return proof.Render(ost), true, nil
}

// WCheck runs the goal-directed membership check on a ground atom.
func (s *Snapshot) WCheck(atomSrc string) (Truth, *core.WCheckStats, error) {
	m, _ := s.base.get(s, nil, nil)
	a, _, err := s.groundAtom(m, atomSrc)
	if err != nil {
		return False, nil, err
	}
	t, stats := m.WCheck(a)
	return t, stats, nil
}

// CheckConstraints evaluates the program's negative constraints and EGDs
// against the configured-depth model.
func (s *Snapshot) CheckConstraints() []core.Violation {
	m, _ := s.base.get(s, nil, nil)
	return m.CheckConstraints()
}

// TrueFacts renders all true atoms of the model, sorted.
func (s *Snapshot) TrueFacts() []string { return s.renderFacts(ground.True) }

// UndefinedFacts renders all undefined atoms of the model, sorted.
func (s *Snapshot) UndefinedFacts() []string { return s.renderFacts(ground.Undefined) }

// renderFacts renders every atom with the given truth value that query
// matching may use: like Answer/Select/buildIndexes, it excludes atoms
// beyond Model.UsableDepth, whose guard-band frontier truth values are
// unreliable (they can flip once deeper children exist) and which no
// query answer ever observes. It runs entirely on the snapshot — no
// system lock is held — and preallocates the output from a filtered count
// so rendering large models does not repeatedly regrow the slice.
func (s *Snapshot) renderFacts(tv Truth) []string {
	m, _ := s.base.get(s, nil, nil)
	st := m.Chase.Prog.Store
	usable := func(g atom.AtomID) bool {
		return m.UsableDepth < 0 || m.Chase.Depth(g) <= m.UsableDepth
	}
	n := 0
	for i, g := range m.GP.Atoms {
		if m.GM.Truth[i] == tv && usable(g) {
			n++
		}
	}
	out := make([]string, 0, n)
	for i, g := range m.GP.Atoms {
		if m.GM.Truth[i] == tv && usable(g) {
			out = append(out, st.String(g))
		}
	}
	sort.Strings(out)
	return out
}

// Stats summarizes the snapshot's evaluated model. The summary is computed
// once per snapshot and cached; concurrent callers share it.
func (s *Snapshot) Stats() Stats {
	s.statsOnce.Do(func() {
		m, _ := s.base.get(s, nil, nil)
		_, strat := s.prog.Stratify()
		delta := core.DeltaForSchema(s.store)
		s.stats = Stats{
			Facts:      len(s.db),
			Epoch:      s.epoch,
			Model:      m.Stats(),
			Algorithm:  s.opts.Algorithm.String(),
			Stratified: strat,
			DeltaBound: formatBig(delta),
			DeltaBits:  delta.BitLen(),
		}
	})
	return s.stats
}
