package wfs

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/bench"
)

// chainSrc builds d0(c1). d0(c2). and a chain of `links` unary rules
// d0 → d1 → … → d<links>. Guard-acyclic with certified depth = links.
func chainSrc(links int) string {
	var b strings.Builder
	b.WriteString("d0(c1). d0(c2).\n")
	for i := 0; i < links; i++ {
		fmt.Fprintf(&b, "d%d(X) -> d%d(X).\n", i, i+1)
	}
	return b.String()
}

// TestCertifiedChainRendersEverything is the certified counterpart of
// TestTrueFactsRespectGuardBand: the d0→…→d12 chain certifies at depth
// 12, so the engine runs one exact rung with no guard band, the chase
// saturates exactly at the bound, and no true fact may be withheld —
// neither from TrueFacts nor from Select.
func TestCertifiedChainRendersEverything(t *testing.T) {
	const links = 12
	sys, err := Load(chainSrc(links))
	if err != nil {
		t.Fatal(err)
	}
	rep := sys.Analysis()
	if rep == nil || rep.Certificate == nil {
		t.Fatal("chain program did not certify")
	}
	if rep.Certificate.DepthBound != links {
		t.Fatalf("certified bound = %d, want %d", rep.Certificate.DepthBound, links)
	}

	snap, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	st := snap.Stats()
	if !st.Model.Exact || st.Model.UsableDepth >= 0 {
		t.Fatalf("certified model not exact: %+v", st.Model)
	}

	// Every true atom renders, and Select sees each of them.
	facts := snap.TrueFacts()
	if len(facts) != st.Model.TrueAtoms {
		t.Fatalf("rendered %d facts of %d true atoms — certified model must hide nothing",
			len(facts), st.Model.TrueAtoms)
	}
	// 2 constants times (links+1) predicates.
	if want := 2 * (links + 1); len(facts) != want {
		t.Fatalf("chain derived %d facts, want %d", len(facts), want)
	}
	for _, f := range facts {
		open := strings.IndexByte(f, '(')
		pred := f[:open]
		arg := strings.TrimSuffix(f[open+1:], ")")
		q, err := Prepare(fmt.Sprintf("? %s(X).", pred))
		if err != nil {
			t.Fatal(err)
		}
		_, rows, err := snap.Select(q)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, row := range rows {
			if row[0] == arg {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("TrueFacts rendered %s, which Select cannot see", f)
		}
	}

	// The deep tail is directly queryable — under the heuristic ladder
	// with the default MaxDepth this atom sits inside the guard band.
	if tv, err := sys.Answer(fmt.Sprintf("? d%d(c1).", links)); err != nil || tv != True {
		t.Errorf("d%d(c1) = %v (%v), want true", links, tv, err)
	}
}

// TestCertifiedAnswerSingleRung: on a certified program, adaptive
// deepening collapses to one rung at the certified depth and reports the
// answer exact — no ladder, no stability window.
func TestCertifiedAnswerSingleRung(t *testing.T) {
	const links = 12
	sys, err := Load(chainSrc(links))
	if err != nil {
		t.Fatal(err)
	}
	ans, stats, err := sys.AnswerWithStats(fmt.Sprintf("? d%d(c2).", links))
	if err != nil {
		t.Fatal(err)
	}
	if ans != True {
		t.Fatalf("answer = %v, want true", ans)
	}
	if !stats.Exact {
		t.Fatalf("certified answer not exact: %+v", stats)
	}
	if len(stats.Depths) != 1 || stats.FinalDepth != links {
		t.Fatalf("ladder = %v (final %d), want single rung at %d",
			stats.Depths, stats.FinalDepth, links)
	}

	// The same program with NoCertify climbs the heuristic ladder.
	unc, err := LoadWithOptions(chainSrc(links), Options{NoCertify: true})
	if err != nil {
		t.Fatal(err)
	}
	_, ustats, err := unc.AnswerWithStats(fmt.Sprintf("? d%d(c2).", links))
	if err != nil {
		t.Fatal(err)
	}
	if len(ustats.Depths) <= 1 {
		t.Fatalf("uncertified ladder took %v — expected multiple rungs", ustats.Depths)
	}
}

// TestCertifyRescuesSchedule: a guard band that would empty the heuristic
// schedule (GuardBand 30 > MaxDepth 24) loads anyway when certification
// collapses the schedule to the certified rung.
func TestCertifyRescuesSchedule(t *testing.T) {
	sys, err := LoadWithOptions(chainSrc(4), Options{GuardBand: 30})
	if err != nil {
		t.Fatalf("certified load rejected: %v", err)
	}
	if tv, err := sys.Answer("? d4(c1)."); err != nil || tv != True {
		t.Errorf("d4(c1) = %v (%v)", tv, err)
	}
}

// TestCertifiedBoundSoundOnBenchFamilies cross-checks every certified
// bench family: the certificate's depth bound must dominate the actual
// chase saturation depth, and evaluation at the bound must be exact.
func TestCertifiedBoundSoundOnBenchFamilies(t *testing.T) {
	families := map[string]string{
		"WinMoveChain":  bench.WinMoveChain(40),
		"WinMoveCycle":  bench.WinMoveCycle(30),
		"WinMoveRandom": bench.WinMoveRandom(120, 3, 7),
		"ReachChain":    bench.ReachChain(50),
		"ExpChase5":     bench.ExpChase(5),
		"Ladder4":       bench.LadderFamily(20, 4),
		"Update":        bench.UpdateFamily(60, 4),
	}
	for name, src := range families {
		t.Run(name, func(t *testing.T) {
			sys, err := Load(src)
			if err != nil {
				t.Fatal(err)
			}
			rep := sys.Analysis()
			if rep.Certificate == nil {
				t.Fatalf("%s did not certify; classes %v", name, rep.Classes)
			}
			k := rep.Certificate.DepthBound
			snap, err := sys.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			st := snap.Stats()
			if !st.Model.Exact {
				t.Fatalf("certified model not exact: %+v", st.Model)
			}
			if st.Model.MaxDepthReached > k {
				t.Fatalf("chase reached depth %d beyond certified bound %d",
					st.Model.MaxDepthReached, k)
			}
		})
	}
}

// TestCertifiedBoundSoundRandomized fuzzes random guard-acyclic programs
// (layered unary/binary rules over a small EDB) and cross-checks the
// certificate against the actual chase: bound ≥ saturation depth, exact
// model, and every certified load agrees with its NoCertify twin on all
// ground atoms of the final layer.
func TestCertifiedBoundSoundRandomized(t *testing.T) {
	rng := uint64(0x9e3779b97f4a7c15)
	next := func(n int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(n))
	}
	for trial := 0; trial < 20; trial++ {
		layers := 2 + next(4)
		var b strings.Builder
		b.WriteString("p0(a, b). p0(b, c). p0(c, a).\n")
		for l := 0; l < layers; l++ {
			switch next(3) {
			case 0: // projection
				fmt.Fprintf(&b, "p%d(X, Y) -> p%d(Y, X).\n", l, l+1)
			case 1: // existential extension (still guard-acyclic)
				fmt.Fprintf(&b, "p%d(X, Y) -> p%d(Y, Z).\n", l, l+1)
			default: // join with a side atom over the same variables
				fmt.Fprintf(&b, "p%d(X, Y), p0(Y, X) -> p%d(X, Y).\n", l, l+1)
			}
		}
		src := b.String()
		sys, err := Load(src)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		rep := sys.Analysis()
		if rep.Certificate == nil {
			t.Fatalf("trial %d: layered program did not certify\n%s", trial, src)
		}
		k := rep.Certificate.DepthBound
		snap, err := sys.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		st := snap.Stats()
		if !st.Model.Exact || st.Model.MaxDepthReached > k {
			t.Fatalf("trial %d: exact=%v reached=%d bound=%d\n%s",
				trial, st.Model.Exact, st.Model.MaxDepthReached, k, src)
		}

		// Ground truth agreement with the uncertified engine on the
		// final layer over the original constants.
		unc, err := LoadWithOptions(src, Options{NoCertify: true, MaxDepth: 40})
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range []string{"a", "b", "c"} {
			for _, y := range []string{"a", "b", "c"} {
				q := fmt.Sprintf("? p%d(%s, %s).", layers, x, y)
				got, err := sys.Answer(q)
				if err != nil {
					t.Fatal(err)
				}
				want, err := unc.Answer(q)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("trial %d: %s certified=%v uncertified=%v\n%s",
						trial, q, got, want, src)
				}
			}
		}
	}
}

// TestAnalysisOnBenchAndOntologyFamilies is the golden classification
// sweep: every generator family either certifies or lands in an
// explicitly expected class set, and none produces Error diagnostics.
func TestAnalysisOnBenchAndOntologyFamilies(t *testing.T) {
	cases := []struct {
		name      string
		src       string
		certified int  // expected DepthBound; 0 = must not certify
		exact     bool // at least one termination class applies
	}{
		{"WinMoveChain", bench.WinMoveChain(20), 1, true},
		{"WinMoveCycle", bench.WinMoveCycle(15), 1, true},
		{"ReachChain", bench.ReachChain(30), 1, true},
		{"ExpChase4", bench.ExpChase(4), 4, true},
		{"Ladder3", bench.LadderFamily(10, 3), 3, true},
		{"Update", bench.UpdateFamily(40, 3), 1, true},
		{"Perm", bench.PermFamily(4), 0, true},              // no-existentials, guard self-loop
		{"Example4", bench.Example4, 0, false},              // genuinely transfinite
		{"Stratified", bench.StratifiedFamily(25), 2, true}, // seeker→benefits chain
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys, err := Load(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			rep := sys.Analysis()
			if rep.HasErrors() {
				t.Fatalf("bench family has error diagnostics: %v", rep.Errors())
			}
			if tc.certified > 0 {
				if rep.Certificate == nil {
					t.Fatalf("expected certificate with bound %d, classes %v",
						tc.certified, rep.Classes)
				}
				if rep.Certificate.DepthBound != tc.certified {
					t.Fatalf("bound = %d, want %d", rep.Certificate.DepthBound, tc.certified)
				}
			} else if rep.Certificate != nil {
				t.Fatalf("unexpected certificate (bound %d)", rep.Certificate.DepthBound)
			}
			if rep.Terminates != tc.exact {
				t.Fatalf("Terminates = %v, want %v (classes %v)",
					rep.Terminates, tc.exact, rep.Classes)
			}
		})
	}
}

// TestAnalysisOnOntologyTranslation runs the pass over the DL-Lite
// employment ontology's Datalog± translation.
func TestAnalysisOnOntologyTranslation(t *testing.T) {
	src, err := bench.EmploymentFamily(12).ToDatalog()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Load(src)
	if err != nil {
		t.Fatal(err)
	}
	rep := sys.Analysis()
	if rep.HasErrors() {
		t.Fatalf("ontology translation has error diagnostics: %v", rep.Errors())
	}
	if !rep.Terminates {
		t.Fatalf("DL-Lite translation should fall in a terminating class, got %v", rep.Classes)
	}
}

// TestAnalysisOverhead bounds the analysis pass at a small fraction of a
// cold load+snapshot on the update family.
func TestAnalysisOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	src := bench.UpdateFamily(400, 6)

	coldStart := time.Now()
	sys, err := LoadWithOptions(src, Options{NoCertify: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Snapshot(); err != nil {
		t.Fatal(err)
	}
	cold := time.Since(coldStart)

	const runs = 5
	aStart := time.Now()
	for i := 0; i < runs; i++ {
		analysis.Analyze(sys.prog, sys.db, sys.queries)
	}
	per := time.Since(aStart) / runs

	if cold > 0 && per*20 > cold {
		t.Fatalf("analysis %v exceeds 5%% of cold load %v", per, cold)
	}
}
