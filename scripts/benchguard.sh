#!/usr/bin/env bash
# benchguard.sh — fail when the hot query path regresses.
#
# Runs BenchmarkParallelAnswer/snapshot (the warm-snapshot answer path,
# the number this repo's observability work promised not to tax) a few
# times, takes the best run to squeeze out scheduler noise, and compares
# it against the committed baseline in BENCH_trace.json
# (parallel_answer_instrumented_ns_per_op). More than 15% over the
# baseline fails.
#
# The baseline is machine-specific; CI runner classes close to the
# recorded CPU make the absolute comparison meaningful, and the 15%
# slack absorbs the rest. Re-record BENCH_trace.json when the runner
# class or the intended performance changes.
set -euo pipefail
cd "$(dirname "$0")/.."

BASE=$(grep -o '"parallel_answer_instrumented_ns_per_op": *[0-9]*' BENCH_trace.json | grep -o '[0-9]*$')
if [ -z "$BASE" ]; then
    echo "benchguard: no baseline in BENCH_trace.json" >&2
    exit 1
fi

OUT=${1:-bench-parallel.txt}
go test -bench='ParallelAnswer/snapshot' -benchtime=500ms -count=3 -run='^$' . | tee "$OUT"

MIN=$(awk '$1 ~ /^BenchmarkParallelAnswer/ {print $(NF-1)}' "$OUT" | sort -n | head -1)
if [ -z "$MIN" ]; then
    echo "benchguard: no benchmark output parsed from $OUT" >&2
    exit 1
fi

awk -v min="$MIN" -v base="$BASE" 'BEGIN {
    limit = base * 1.15
    printf "benchguard: measured %.1f ns/op, baseline %d ns/op, limit %.1f ns/op (+15%%)\n", min, base, limit
    if (min > limit) {
        printf "benchguard: FAIL — hot query path regressed %.1f%%\n", (min / base - 1) * 100
        exit 1
    }
    printf "benchguard: ok (%.1f%% vs baseline)\n", (min / base - 1) * 100
}'
