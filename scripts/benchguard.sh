#!/usr/bin/env bash
# benchguard.sh — fail when the hot query path regresses.
#
# Three checks over BenchmarkParallelAnswer, each on the best of a few
# runs to squeeze out scheduler noise:
#
#   1. Absolute: /snapshot (the warm-snapshot answer path, the number
#      this repo's observability work promised not to tax) against the
#      committed baseline in BENCH_trace.json
#      (parallel_answer_instrumented_ns_per_op). More than 15% over
#      fails.
#   2. Differential: /recorder (the same path with every answer offered
#      to a full flight-recorder reservoir — the served steady state)
#      against /snapshot from the SAME run. More than 5% over fails;
#      this is the recorder-enabled budget and is machine-independent.
#   3. Differential: /cancelcheck (the same path answered through
#      AnswerCtx under a cancellable context — the server's actual
#      steady state, with the cooperative-cancellation polling compiled
#      in) against /snapshot from the SAME run. More than 5% over
#      fails; this is the resource-governance budget. In practice the
#      warm-exact fast path makes this come in at or below /snapshot.
#
# The absolute baseline is machine-specific; CI runner classes close to
# the recorded CPU make that comparison meaningful, and the 15% slack
# absorbs the rest. Re-record BENCH_trace.json when the runner class or
# the intended performance changes.
set -euo pipefail
cd "$(dirname "$0")/.."

BASE=$(grep -o '"parallel_answer_instrumented_ns_per_op": *[0-9]*' BENCH_trace.json | grep -o '[0-9]*$')
if [ -z "$BASE" ]; then
    echo "benchguard: no baseline in BENCH_trace.json" >&2
    exit 1
fi

OUT=${1:-bench-parallel.txt}
go test -bench='ParallelAnswer/(snapshot|recorder|cancelcheck)' -benchtime=500ms -count=4 -run='^$' . | tee "$OUT"

SNAP=$(awk '$1 ~ /^BenchmarkParallelAnswer\/snapshot/ {print $(NF-1)}' "$OUT" | sort -n | head -1)
REC=$(awk '$1 ~ /^BenchmarkParallelAnswer\/recorder/ {print $(NF-1)}' "$OUT" | sort -n | head -1)
CANCEL=$(awk '$1 ~ /^BenchmarkParallelAnswer\/cancelcheck/ {print $(NF-1)}' "$OUT" | sort -n | head -1)
if [ -z "$SNAP" ] || [ -z "$REC" ] || [ -z "$CANCEL" ]; then
    echo "benchguard: benchmark output missing from $OUT (snapshot=$SNAP recorder=$REC cancelcheck=$CANCEL)" >&2
    exit 1
fi

awk -v snap="$SNAP" -v base="$BASE" 'BEGIN {
    limit = base * 1.15
    printf "benchguard: snapshot %.1f ns/op, baseline %d ns/op, limit %.1f ns/op (+15%%)\n", snap, base, limit
    if (snap > limit) {
        printf "benchguard: FAIL — hot query path regressed %.1f%%\n", (snap / base - 1) * 100
        exit 1
    }
    printf "benchguard: ok (%.1f%% vs baseline)\n", (snap / base - 1) * 100
}'

awk -v snap="$SNAP" -v rec="$REC" 'BEGIN {
    limit = snap * 1.05
    printf "benchguard: recorder %.1f ns/op vs snapshot %.1f ns/op, limit %.1f ns/op (+5%%)\n", rec, snap, limit
    if (rec > limit) {
        printf "benchguard: FAIL — flight-recorder tax %.1f%% over the same-run snapshot\n", (rec / snap - 1) * 100
        exit 1
    }
    printf "benchguard: ok (recorder tax %.1f%%)\n", (rec / snap - 1) * 100
}'

awk -v snap="$SNAP" -v cancel="$CANCEL" 'BEGIN {
    limit = snap * 1.05
    printf "benchguard: cancelcheck %.1f ns/op vs snapshot %.1f ns/op, limit %.1f ns/op (+5%%)\n", cancel, snap, limit
    if (cancel > limit) {
        printf "benchguard: FAIL — cancellation-check tax %.1f%% over the same-run snapshot\n", (cancel / snap - 1) * 100
        exit 1
    }
    printf "benchguard: ok (cancellation-check tax %.1f%%)\n", (cancel / snap - 1) * 100
}'
