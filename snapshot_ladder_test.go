package wfs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

// example4Src is the paper's Example 4 program: its chase never
// saturates (the R-chain grows a fresh Skolem term at every depth), so
// answering walks several rungs of the adaptive-deepening ladder — the
// chained-overlay resumable chase path.
const example4Src = `
r(0,0,1).
p(0,0).
r(X,Y,Z) -> r(X,Z,W).
r(X,Y,Z), p(X,Y), not q(Z) -> p(X,Z).
r(X,Y,Z), not p(X,Y) -> q(Z).
r(X,Y,Z), not p(X,Z) -> s(X).
p(X,Y), not s(X) -> t(X).
`

func TestSnapshotLadderAnswersNonSaturating(t *testing.T) {
	sys, err := Load(example4Src)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Prepare("? t(X).")
	if err != nil {
		t.Fatal(err)
	}
	ans, stats, err := snap.AnswerWithStats(q)
	if err != nil {
		t.Fatal(err)
	}
	if ans != True {
		t.Errorf("t(X) = %v, want true", ans)
	}
	if !stats.Stable || stats.Exact {
		t.Errorf("expected a stable, non-exact ladder answer: %+v", stats)
	}
	if len(stats.Depths) < 3 {
		t.Errorf("ladder stopped after %v — the chained-rung path was not exercised", stats.Depths)
	}
	// Concurrent answering across the chained rungs stays consistent.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if tv, err := snap.Answer(q); err != nil || tv != True {
				t.Errorf("concurrent t(X) = %v (%v)", tv, err)
			}
		}()
	}
	wg.Wait()
}

// TestSnapshotRungsMatchFromScratch cross-checks the snapshot's
// chained-overlay rungs against independent from-scratch evaluation: at
// every scheduled depth, the rung's rendered true/undefined fact sets
// must coincide with those of a fresh engine chased to the same depth.
func TestSnapshotRungsMatchFromScratch(t *testing.T) {
	sys, err := Load(example4Src)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	opts := snap.opts
	for d := opts.AdaptiveStart; d <= opts.MaxDepth && d <= opts.AdaptiveStart+3*opts.AdaptiveStep; d += opts.AdaptiveStep {
		rm, err := snap.rungAt(d, nil, nil)
		if err != nil {
			t.Fatalf("rungAt(%d): %v", d, err)
		}
		scratch := core.NewEngine(sys.prog, sys.db, opts).EvaluateAtDepth(d)
		if got, want := renderTruths(rm), renderTruths(scratch); got != want {
			t.Errorf("depth %d: rung model differs from from-scratch model:\nrung:    %s\nscratch: %s",
				d, got, want)
		}
	}
}

// renderTruths summarizes a model as sorted rendered true/undefined fact
// lists — comparable across distinct stores and local numberings.
func renderTruths(m *core.Model) string {
	st := m.Chase.Prog.Store
	var tr, un []string
	for i, g := range m.GP.Atoms {
		switch m.GM.Truth[i] {
		case True:
			tr = append(tr, st.String(g))
		case Undefined:
			un = append(un, st.String(g))
		}
	}
	return fmt.Sprintf("true=%v undef=%v", sorted(tr), sorted(un))
}

func sorted(xs []string) []string {
	out := append([]string(nil), xs...)
	sort.Strings(out)
	return out
}

// TestRungAtOffScheduleError: an off-schedule depth yields an error, not
// a panic — a serving process must never crash on a schedule mismatch.
func TestRungAtOffScheduleError(t *testing.T) {
	// NoCertify keeps the heuristic 4,6,…,24 ladder: certification would
	// collapse this (guard-acyclic) program's schedule to one rung.
	sys, err := LoadWithOptions(gameSrc, Options{NoCertify: true})
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := sys.Snapshot()
	for _, d := range []int{-1, 0, 3, 5, 999} { // schedule is 4,6,…,24
		if _, err := snap.rungAt(d, nil, nil); err == nil {
			t.Errorf("rungAt(%d) did not error", d)
		}
	}
	if m, err := snap.rungAt(4, nil, nil); err != nil || m == nil {
		t.Errorf("rungAt(4) = %v, %v; want a model", m, err)
	}
}

// TestLoadRejectsEmptyLadder: Options{GuardBand: 30} with the default
// MaxDepth resolves to an empty deepening schedule; loading must fail
// loudly instead of every later Answer silently returning False.
func TestLoadRejectsEmptyLadder(t *testing.T) {
	// NoCertify: certification would rescue the schedule by collapsing it
	// to the certified rung (that rescue is tested separately).
	_, err := LoadWithOptions(gameSrc, Options{GuardBand: 30, NoCertify: true})
	if err == nil {
		t.Fatal("LoadWithOptions accepted an empty adaptive ladder")
	}
	if !strings.Contains(err.Error(), "MaxDepth") {
		t.Errorf("error not descriptive: %v", err)
	}
	// Raising MaxDepth makes the same guard band loadable.
	sys, err := LoadWithOptions(gameSrc, Options{GuardBand: 30, MaxDepth: 40, NoCertify: true})
	if err != nil {
		t.Fatalf("satisfiable schedule rejected: %v", err)
	}
	if tv, err := sys.Answer("? win(b)."); err != nil || tv != True {
		t.Errorf("win(b) = %v (%v)", tv, err)
	}
}

// TestTrueFactsRespectGuardBand: rendered facts must only contain atoms
// query matching can see. On a predicate chain d0 → d1 → … longer than
// the configured chase depth, the forest depth grows with every link, so
// the last derived links sit in the guard band: Select hides them — and
// TrueFacts must hide them the same way.
func TestTrueFactsRespectGuardBand(t *testing.T) {
	const links = 12
	var b strings.Builder
	b.WriteString("d0(c1). d0(c2).\n")
	for i := 0; i < links; i++ {
		fmt.Fprintf(&b, "d%d(X) -> d%d(X).\n", i, i+1)
	}
	// NoCertify: the chain certifies at depth 12, which would make the
	// model exact and vacuously pass this test. The companion test
	// TestCertifiedChainRendersEverything covers the certified path.
	sys, err := LoadWithOptions(b.String(), Options{NoCertify: true})
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := sys.Snapshot()

	// Every rendered true fact must be enumerable through Select on its
	// own predicate.
	seen := 0
	for _, f := range snap.TrueFacts() {
		open := strings.IndexByte(f, '(')
		pred := f[:open]
		arg := strings.TrimSuffix(f[open+1:], ")")
		q, err := Prepare(fmt.Sprintf("? %s(X).", pred))
		if err != nil {
			t.Fatal(err)
		}
		_, rows, err := snap.Select(q)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, row := range rows {
			if row[0] == arg {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("TrueFacts rendered %s, which Select cannot see", f)
		}
		seen++
	}
	// The chain really is depth-truncated: its tail exists in the model
	// but is hidden behind the guard band, so strictly fewer facts render
	// than the model holds true.
	st := snap.Stats()
	if st.Model.Exact || st.Model.UsableDepth < 0 {
		t.Fatalf("chain chase unexpectedly exact: %+v — test is vacuous", st.Model)
	}
	if seen == 0 || seen >= st.Model.TrueAtoms {
		t.Errorf("rendered %d facts of %d true atoms — frontier not filtered", seen, st.Model.TrueAtoms)
	}
	if und := snap.UndefinedFacts(); len(und) != 0 {
		t.Errorf("UndefinedFacts = %v, want none", und)
	}
}
