package wfs_test

import (
	"fmt"

	wfs "repro"
)

// ExampleLoad shows the paper's Example 1: TBox axioms as guarded TGDs and
// a BCQ answered under the well-founded semantics.
func ExampleLoad() {
	sys, err := wfs.Load(`
		conferencePaper(X) -> article(X).
		scientist(X)       -> isAuthorOf(X, Y).
		scientist(john).
	`)
	if err != nil {
		panic(err)
	}
	ans, _ := sys.Answer("? isAuthorOf(john, X).")
	fmt.Println(ans)
	// Output: true
}

// ExampleSystem_Answer demonstrates three-valued answers: the win-move
// game yields true, false, and undefined positions.
func ExampleSystem_Answer() {
	sys, err := wfs.Load(`
		move(a,b). move(b,c). move(d,e). move(e,d).
		move(X,Y), not win(Y) -> win(X).
	`)
	if err != nil {
		panic(err)
	}
	for _, q := range []string{"? win(b).", "? win(c).", "? win(d)."} {
		ans, _ := sys.Answer(q)
		fmt.Println(q, "=>", ans)
	}
	// Output:
	// ? win(b). => true
	// ? win(c). => false
	// ? win(d). => undefined
}

// ExampleSystem_Select shows non-Boolean answers: tuples over the
// constants ∆ (bindings to labelled nulls are excluded, §2.1).
func ExampleSystem_Select() {
	sys, err := wfs.Load(`
		person(ann). person(bob). employed(ann).
		person(X), not employed(X) -> seeker(X).
	`)
	if err != nil {
		panic(err)
	}
	vars, rows, _ := sys.Select("? seeker(X).")
	fmt.Println(vars[0], "=", rows[0][0])
	// Output: X = bob
}

// ExampleSystem_TruthOf demonstrates the UNA consequences of the paper's
// Example 2: the employed person a gets an employee ID (a labelled null),
// and that null is a ValidID because it cannot equal any job-seeker null.
func ExampleSystem_TruthOf() {
	sys, err := wfs.Load(`
		employeeID(X, Y) -> ex_employeeID(X).
		employeeID(X, Y) -> exinv_employeeID(Y).
		jobSeekerID(X, Y) -> ex_jobSeekerID(X).
		jobSeekerID(X, Y) -> exinv_jobSeekerID(Y).
		person(X), employed(X), not ex_jobSeekerID(X) -> employeeID(X, Z).
		person(X), not employed(X), not ex_employeeID(X) -> jobSeekerID(X, Z).
		exinv_employeeID(X), not exinv_jobSeekerID(X) -> validID(X).
		person(a). person(b). employed(a).
	`)
	if err != nil {
		panic(err)
	}
	for _, q := range []string{"? employeeID(a, X).", "? jobSeekerID(b, X).", "? validID(X)."} {
		ans, _ := sys.Answer(q)
		fmt.Println(q, "=>", ans)
	}
	// Output:
	// ? employeeID(a, X). => true
	// ? jobSeekerID(b, X). => true
	// ? validID(X). => true
}
