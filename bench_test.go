package wfs

// One testing.B benchmark per experiment of the reproduction index
// (DESIGN.md §5). The wfsbench tool prints the same sweeps as tables with
// derived columns; these benches make the raw timings reproducible via
// `go test -bench=. -benchmem`.

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/atom"
	"repro/internal/bench"
	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/ground"
	"repro/internal/program"
	"repro/internal/strat"
	"repro/internal/term"
	"repro/internal/trace"
)

func mustCompile(b *testing.B, src string) (*program.Program, program.Database, *atom.Store) {
	b.Helper()
	st := atom.NewStore(term.NewStore())
	prog, db, _, err := program.CompileText(src, st)
	if err != nil {
		b.Fatal(err)
	}
	return prog, db, st
}

// BenchmarkE1DataComplexityWinMove — Thm. 13/14(3): PTIME data complexity.
// Time per evaluation should scale near-linearly with |D|.
func BenchmarkE1DataComplexityWinMove(b *testing.B) {
	for _, n := range []int{512, 1024, 2048, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			src := bench.WinMoveRandom(n, 2*n, 42)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				prog, db, _ := mustCompile(b, src)
				core.NewEngine(prog, db, core.Options{}).Evaluate()
			}
		})
	}
}

// BenchmarkE1DataComplexityEmployment — the Example 2 family scaled.
func BenchmarkE1DataComplexityEmployment(b *testing.B) {
	for _, n := range []int{300, 600, 1200} {
		b.Run(fmt.Sprintf("persons=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := atom.NewStore(term.NewStore())
				prog, db, err := bench.EmploymentFamily(n).Compile(st)
				if err != nil {
					b.Fatal(err)
				}
				core.NewEngine(prog, db, core.Options{}).Evaluate()
			}
		})
	}
}

// BenchmarkE2CombinedComplexity — Thm. 13 EXPTIME (bounded arity): time
// grows exponentially with the number of rules in the ExpChase family.
func BenchmarkE2CombinedComplexity(b *testing.B) {
	for _, k := range []int{6, 8, 10, 12} {
		b.Run(fmt.Sprintf("rules=%d", 2*k), func(b *testing.B) {
			src := bench.ExpChase(k)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				prog, db, _ := mustCompile(b, src)
				core.NewEngine(prog, db, core.Options{Depth: k + 2}).Evaluate()
			}
		})
	}
}

// BenchmarkE3ArityScaling — Thm. 13 2-EXPTIME (unbounded arity): the w!
// universe of the permutation family.
func BenchmarkE3ArityScaling(b *testing.B) {
	for _, w := range []int{3, 4, 5, 6} {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			src := bench.PermFamily(w)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				prog, db, _ := mustCompile(b, src)
				core.NewEngine(prog, db, core.Options{Depth: w*w + 2, MaxAtoms: 8_000_000}).Evaluate()
			}
		})
	}
}

// BenchmarkE4TransfiniteIteration — Ex. 9: deeper truncations need more
// fixpoint rounds (the ŴP,ω+2 shadow).
func BenchmarkE4TransfiniteIteration(b *testing.B) {
	for _, d := range []int{8, 16, 32, 64} {
		b.Run(fmt.Sprintf("depth=%d", d), func(b *testing.B) {
			prog, db, _ := mustCompile(b, bench.Example4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.NewEngine(prog, db, core.Options{Depth: d}).EvaluateAtDepth(d)
			}
		})
	}
}

// BenchmarkE5StratifiedCoincidence — WFS vs the stratified baseline on the
// same stratified program: the overhead of the alternating fixpoint.
func BenchmarkE5StratifiedCoincidence(b *testing.B) {
	src := bench.StratifiedFamily(2000)
	b.Run("wfs", func(b *testing.B) {
		prog, db, _ := mustCompile(b, src)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			core.NewEngine(prog, db, core.Options{}).EvaluateAtDepth(core.DefaultDepth)
		}
	})
	b.Run("stratified", func(b *testing.B) {
		prog, db, _ := mustCompile(b, src)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := strat.Evaluate(prog, db, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE6PositiveCoincidence — WFS vs the bare chase on positive
// guarded Datalog±.
func BenchmarkE6PositiveCoincidence(b *testing.B) {
	src := bench.ReachChain(4000)
	b.Run("chase", func(b *testing.B) {
		prog, db, _ := mustCompile(b, src)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			chase.Run(prog, db, chase.Options{MaxDepth: 4002, MaxAtoms: 8_000_000})
		}
	})
	b.Run("wfs", func(b *testing.B) {
		prog, db, _ := mustCompile(b, src)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			core.NewEngine(prog, db, core.Options{Depth: 4002, MaxAtoms: 8_000_000}).EvaluateAtDepth(4002)
		}
	})
}

// BenchmarkE7GoalDirected — §4 WCHECK: goal-directed membership vs the
// saturated fixpoint on a many-component instance.
func BenchmarkE7GoalDirected(b *testing.B) {
	prog, db, st := mustCompile(b, bench.WinMoveComponents(200, 30))
	m := core.NewEngine(prog, db, core.Options{}).Evaluate()
	p, _ := st.LookupPred("win")
	goal := st.Atom(p, []term.ID{st.Terms.Const("n0_0")})
	b.Run("full-fixpoint", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ground.AlternatingFixpoint(m.GP)
		}
	})
	b.Run("wcheck", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.WCheck(goal)
		}
	})
}

// BenchmarkE8DepthStabilization — Prop. 12: adaptive answering of an NBCQ
// including the deepening loop.
func BenchmarkE8DepthStabilization(b *testing.B) {
	prog, db, st := mustCompile(b, bench.Example4)
	q, err := program.ParseQuery("? t(X).", st)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := core.NewEngine(prog, db, core.Options{})
		if ans, _, err := e.Answer(q); err != nil || ans != ground.True {
			b.Fatal("wrong answer")
		}
	}
}

// BenchmarkE9DLLite — Ex. 2 at scale: ontology translation + WFS.
func BenchmarkE9DLLite(b *testing.B) {
	for _, n := range []int{30, 300, 3000} {
		b.Run(fmt.Sprintf("persons=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := atom.NewStore(term.NewStore())
				prog, db, err := bench.EmploymentFamily(n).Compile(st)
				if err != nil {
					b.Fatal(err)
				}
				core.NewEngine(prog, db, core.Options{}).Evaluate()
			}
		})
	}
}

// BenchmarkParallelAnswer — the snapshot redesign's headline number: N
// goroutines answering one prepared query against a single shared
// Snapshot (lock-free reads over precomputed models) versus the same
// workload through the pre-snapshot locked path, where every Answer takes
// an exclusive lock, re-parses, and re-runs adaptive deepening against the
// shared store. Run with -cpu=8 to reproduce the PR numbers.
func BenchmarkParallelAnswer(b *testing.B) {
	src := bench.WinMoveRandom(1000, 2000, 9)
	const query = "? move(X,Y), not win(Y)."

	b.Run("snapshot", func(b *testing.B) {
		sys, err := Load(src)
		if err != nil {
			b.Fatal(err)
		}
		snap, err := sys.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		q, err := Prepare(query)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := snap.Answer(q); err != nil { // warm models + compile cache
			b.Fatal(err)
		}
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if ans, err := snap.Answer(q); err != nil || ans != True {
					b.Errorf("answer = %v (%v)", ans, err)
					return
				}
			}
		})
	})

	// recorder — the flight-recorder tax on the same warm path: every
	// answer is followed by a Record offer against a full reservoir, the
	// server's steady state, where an unretained request costs one atomic
	// increment plus one PRNG draw and never snapshots the span tree.
	// benchguard.sh compares this against the snapshot sub-bench from the
	// same run (budget: <= 5%).
	b.Run("recorder", func(b *testing.B) {
		sys, err := Load(src)
		if err != nil {
			b.Fatal(err)
		}
		snap, err := sys.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		q, err := Prepare(query)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := snap.Answer(q); err != nil {
			b.Fatal(err)
		}
		rec := trace.NewRecorder(16, 0)
		for i := 0; i < 64; i++ { // fill the reservoir: steady-state reject path
			rec.Record(&trace.RequestTrace{TraceID: fmt.Sprintf("%032x", i), Status: 200, DurationUS: 100})
		}
		rt := &trace.RequestTrace{TraceID: strings.Repeat("ab", 16), Status: 200, DurationUS: 100}
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if ans, err := snap.Answer(q); err != nil || ans != True {
					b.Errorf("answer = %v (%v)", ans, err)
					return
				}
				rec.Record(rt)
			}
		})
	})

	// cancelcheck — the cooperative-cancellation tax on the same warm
	// path: the identical workload answered through AnswerCtx under a
	// live (cancellable, never cancelled) context, so every poll point
	// pays the real token check — one atomic load plus a non-blocking
	// channel select — instead of the nil-token fast path.
	// benchguard.sh compares this against the snapshot sub-bench from
	// the same run (budget: <= 5%, the ISSUE's overhead bar).
	b.Run("cancelcheck", func(b *testing.B) {
		sys, err := Load(src)
		if err != nil {
			b.Fatal(err)
		}
		snap, err := sys.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		q, err := Prepare(query)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := snap.Answer(q); err != nil { // warm models + compile cache
			b.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if ans, err := snap.AnswerCtx(ctx, q); err != nil || ans != True {
					b.Errorf("answer = %v (%v)", ans, err)
					return
				}
			}
		})
	})

	b.Run("locked", func(b *testing.B) {
		// The PR-1 design, reconstructed: one engine over one shared
		// store behind one exclusive lock; query answering re-parses (it
		// interns into the shared store) and re-evaluates the deepening
		// ladder because nothing can be precomputed safely.
		st := atom.NewStore(term.NewStore())
		prog, db, _, err := program.CompileText(src, st)
		if err != nil {
			b.Fatal(err)
		}
		eng := core.NewEngine(prog, db, core.Options{})
		var mu sync.Mutex
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				mu.Lock()
				q, err := program.ParseQuery(query, st)
				if err != nil {
					mu.Unlock()
					b.Error(err)
					return
				}
				ans, _, _ := eng.Answer(q)
				mu.Unlock()
				if ans != ground.True {
					b.Errorf("answer = %v", ans)
					return
				}
			}
		})
	})
}

// BenchmarkTraceOverhead — the observability tax on the hot query path:
// the same warm-snapshot query answered with tracing disabled (the
// production default, one nil check per hook site), with a coarse trace
// (the server's slow-query-log mode), and with a detailed trace
// (?trace=1 / wfsquery -trace, which adds per-SCC timings and frontier
// profiles). The acceptance bar is disabled-tracing within 5% of the
// pre-instrumentation BenchmarkParallelAnswer/snapshot number;
// BENCH_trace.json records the committed comparison.
func BenchmarkTraceOverhead(b *testing.B) {
	src := bench.WinMoveRandom(1000, 2000, 9)
	const query = "? move(X,Y), not win(Y)."
	sys, err := Load(src)
	if err != nil {
		b.Fatal(err)
	}
	snap, err := sys.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	q, err := Prepare(query)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := snap.Answer(q); err != nil { // warm models + compile cache
		b.Fatal(err)
	}

	b.Run("untraced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if ans, err := snap.Answer(q); err != nil || ans != True {
				b.Fatalf("answer = %v (%v)", ans, err)
			}
		}
	})
	b.Run("traced-coarse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if ans, _, _, err := snap.TraceAnswerDetail(q, false); err != nil || ans != True {
				b.Fatalf("answer = %v (%v)", ans, err)
			}
		}
	})
	b.Run("traced-detailed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if ans, _, _, err := snap.TraceAnswer(q); err != nil || ans != True {
				b.Fatalf("answer = %v (%v)", ans, err)
			}
		}
	})
}

// BenchmarkAdaptiveLadder — the resumable-chase headline number: one cold
// AnswerWithStats on a non-saturating program whose answer flips at every
// rung, so adaptive deepening climbs the full ladder to MaxDepth.
//
//   - "incremental" is the real path: the snapshot's rungs share one
//     chained-overlay chase — rung k+1 extends rung k's frontier
//     (chase.Result.Extend) and appends to its grounding
//     (ground.ExtendFromChase) instead of re-deriving it.
//   - "from-scratch" reconstructs the pre-resumable design: every rung
//     runs a private full chase, regrounding, and fixpoint, discarding
//     all work done by shallower rungs.
//
// The acceptance bar for the resumable chase is incremental ≥ 2× faster;
// BENCH_ladder.json records the committed baseline.
func BenchmarkAdaptiveLadder(b *testing.B) {
	src := bench.LadderFamily(400, 34)
	const query = "? flip(X)."
	ladderOpts := core.Options{MaxDepth: 32}

	b.Run("incremental", func(b *testing.B) {
		q, err := Prepare(query)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			sys, err := LoadWithOptions(src, ladderOpts)
			if err != nil {
				b.Fatal(err)
			}
			snap, err := sys.Snapshot()
			if err != nil {
				b.Fatal(err)
			}
			ans, stats, err := snap.AnswerWithStats(q)
			if err != nil || ans != True {
				b.Fatalf("flip(X) = %v (%v)", ans, err)
			}
			if stats.FinalDepth < 32 || stats.Exact {
				b.Fatalf("ladder did not climb: %+v", stats)
			}
		}
	})

	b.Run("from-scratch", func(b *testing.B) {
		// The pre-resumable EvaluateAtDepth, reconstructed: chase from
		// the database, reground, and re-run the fixpoint at every rung.
		opts := ladderOpts.WithDefaults()
		for i := 0; i < b.N; i++ {
			st := atom.NewStore(term.NewStore())
			prog, db, _, err := program.CompileText(src, st)
			if err != nil {
				b.Fatal(err)
			}
			q, err := program.ParseQuery(query, st)
			if err != nil {
				b.Fatal(err)
			}
			modelAt := func(d int) (*core.Model, error) {
				res := chase.Run(prog, db, chase.Options{MaxDepth: d, MaxAtoms: opts.MaxAtoms})
				gp := ground.FromChase(res)
				gm := ground.AlternatingFixpoint(gp)
				m := &core.Model{Chase: res, GP: gp, GM: gm,
					Exact: !res.Truncated && res.ComputeStats().MaxDepth < d}
				if m.Exact {
					m.UsableDepth = -1
				} else {
					m.UsableDepth = d - opts.GuardBand
				}
				return m, nil
			}
			ans, stats, err := core.AdaptiveAnswer(opts, modelAt,
				func(*core.Model) (*program.Query, error) { return q, nil })
			if err != nil || ans != ground.True {
				b.Fatalf("flip(X) = %v (%v)", ans, err)
			}
			if stats.FinalDepth < 32 || stats.Exact {
				b.Fatalf("ladder did not climb: %+v", stats)
			}
		}
	})
}

// BenchmarkCertifiedAnswer — the workload is bench.UpdateFamily bulk data
// plus a 12-link derivation chain whose guard graph certifies the whole
// program at chase depth 12. "certified" is the default load: one exact
// rung at the certified depth. "heuristic" opts out with NoCertify and
// climbs the adaptive ladder; the stability window is widened past the
// schedule because with the default window the ladder stops early on a
// stable-but-wrong False for the deep tail (the incompleteness the
// certificate removes), so saturation is the only heuristic configuration
// that matches the certified answer. Each iteration is a cold load plus
// one query on the deep tail. BENCH_analysis.json records the committed
// comparison.
func BenchmarkCertifiedAnswer(b *testing.B) {
	src := bench.UpdateFamily(400, 6) + chainSrc(12)
	const query = "? d12(c2)."

	b.Run("certified", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sys, err := Load(src)
			if err != nil {
				b.Fatal(err)
			}
			ans, stats, err := sys.AnswerWithStats(query)
			if err != nil || ans != True {
				b.Fatalf("d12(c2) = %v (%v)", ans, err)
			}
			if !stats.Exact || len(stats.Depths) != 1 {
				b.Fatalf("certified answer not single exact rung: %+v", stats)
			}
		}
	})

	b.Run("heuristic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sys, err := LoadWithOptions(src, Options{NoCertify: true, StabilityWindow: 99})
			if err != nil {
				b.Fatal(err)
			}
			ans, stats, err := sys.AnswerWithStats(query)
			if err != nil || ans != True {
				b.Fatalf("d12(c2) = %v (%v)", ans, err)
			}
			if len(stats.Depths) <= 1 {
				b.Fatalf("heuristic ladder took %v — expected multiple rungs", stats.Depths)
			}
		}
	})
}

// BenchmarkRenderFacts — TrueFacts/UndefinedFacts used to render and sort
// under the system's exclusive lock; they now render from the snapshot
// with a preallocated output slice and no lock held, so N goroutines
// render in parallel.
func BenchmarkRenderFacts(b *testing.B) {
	sys, err := Load(bench.WinMoveRandom(2000, 4000, 7))
	if err != nil {
		b.Fatal(err)
	}
	snap, err := sys.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	snap.TrueFacts() // build the model once
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if len(snap.TrueFacts()) == 0 {
				b.Fatal("no facts")
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if len(snap.TrueFacts()) == 0 {
					b.Error("no facts")
					return
				}
			}
		})
	})
}

// BenchmarkWriteDuringRender measures AddFact latency while renderers
// continuously stream TrueFacts from current snapshots: the proof that
// rendering no longer holds the write lock. Under the old design each
// render blocked writers for its full duration; now a write waits only on
// snapshot construction.
func BenchmarkWriteDuringRender(b *testing.B) {
	sys, err := Load(bench.WinMoveRandom(500, 1000, 7))
	if err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if snap, err := sys.Snapshot(); err == nil {
					snap.TrueFacts()
				}
			}
		}()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.AddFact("move", fmt.Sprintf("w%d", i), "n0"); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}

// --- micro-benchmarks for the substrates ---

func BenchmarkChaseExample4(b *testing.B) {
	prog, db, _ := mustCompile(b, bench.Example4)
	for i := 0; i < b.N; i++ {
		chase.Run(prog, db, chase.Options{MaxDepth: 16, MaxAtoms: 1_000_000})
	}
}

func BenchmarkAlternatingFixpoint(b *testing.B) {
	prog, db, _ := mustCompile(b, bench.WinMoveRandom(2000, 4000, 7))
	res := chase.Run(prog, db, chase.Options{MaxDepth: 8, MaxAtoms: 1_000_000})
	gp := ground.FromChase(res)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ground.AlternatingFixpoint(gp)
	}
}

func BenchmarkUnfoundedIteration(b *testing.B) {
	prog, db, _ := mustCompile(b, bench.WinMoveRandom(500, 1000, 7))
	res := chase.Run(prog, db, chase.Options{MaxDepth: 8, MaxAtoms: 1_000_000})
	gp := ground.FromChase(res)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ground.UnfoundedIteration(gp)
	}
}

func BenchmarkForwardProofIteration(b *testing.B) {
	prog, db, _ := mustCompile(b, bench.WinMoveRandom(500, 1000, 7))
	res := chase.Run(prog, db, chase.Options{MaxDepth: 8, MaxAtoms: 1_000_000})
	gp := ground.FromChase(res)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ground.ForwardProofIteration(gp)
	}
}

func BenchmarkParser(b *testing.B) {
	src := bench.WinMoveRandom(1000, 2000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := atom.NewStore(term.NewStore())
		if _, _, _, err := program.CompileText(src, st); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryAnswering(b *testing.B) {
	prog, db, st := mustCompile(b, bench.WinMoveRandom(2000, 4000, 9))
	m := core.NewEngine(prog, db, core.Options{}).Evaluate()
	q, err := program.ParseQuery("? move(X,Y), not win(Y).", st)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Answer(q)
	}
}

// BenchmarkE10AlgorithmAblation — the three equivalent WFS operators on
// one bounded grounding.
func BenchmarkE10AlgorithmAblation(b *testing.B) {
	prog, db, _ := mustCompile(b, bench.WinMoveRandom(1500, 3000, 11))
	res := chase.Run(prog, db, chase.Options{MaxDepth: 8, MaxAtoms: 1_000_000})
	gp := ground.FromChase(res)
	b.Run("alternating", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ground.AlternatingFixpoint(gp)
		}
	})
	b.Run("unfounded-sets", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ground.UnfoundedIteration(gp)
		}
	})
	b.Run("forward-proofs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ground.ForwardProofIteration(gp)
		}
	})
}

// BenchmarkE11GoalDirectedAblation — saturate-everything vs the fully
// goal-directed pipeline (relevance-restricted chase + local fixpoint).
func BenchmarkE11GoalDirectedAblation(b *testing.B) {
	var sb strings.Builder
	sb.WriteString(bench.WinMoveComponents(100, 30))
	sb.WriteString("seed(X) -> chainA(X, Y).\nchainA(X, Y) -> chainB(Y, Z).\n")
	for i := 0; i < 6000; i++ {
		fmt.Fprintf(&sb, "seed(s%d).\n", i)
	}
	prog, db, st := mustCompile(b, sb.String())
	p, _ := st.LookupPred("win")
	goal := st.Atom(p, []term.ID{st.Terms.Const("n0_0")})
	b.Run("saturate-all", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.NewEngine(prog, db, core.Options{Depth: 8}).EvaluateAtDepth(8)
		}
	})
	b.Run("goal-directed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.WCheckGoalDirected(prog, db, goal, core.Options{Depth: 8})
		}
	})
}
