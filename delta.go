package wfs

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/atom"
	"repro/internal/cancel"
	"repro/internal/program"
	"repro/internal/term"
	"repro/internal/trace"
)

// Delta is a batch of database mutations — fact additions and
// retractions — applied atomically by System.Apply: the whole batch is
// validated up front, commits under a single epoch bump, and either
// every mutation lands or none does. Building a Delta touches no system
// state; a Delta may be applied to any System whose program understands
// its predicates, and applying it twice appends the additions twice
// (the database is a multiset of facts, as with AddFact).
type Delta struct {
	adds     []factSpec
	retracts []factSpec
}

type factSpec struct {
	pred string
	args []string
}

func (f factSpec) String() string {
	if len(f.args) == 0 {
		return f.pred
	}
	return f.pred + "(" + strings.Join(f.args, ",") + ")"
}

// NewDelta returns an empty mutation batch.
func NewDelta() *Delta { return &Delta{} }

// FactRef is the store-independent form of one ground fact: a predicate
// name and constant arguments as plain strings. It is the wire-stable
// currency of the durability layer — commit hooks receive mutation
// batches as FactRefs, DumpState renders the database as FactRefs, and
// Restore rebuilds one from them — so a fact logged by one process can be
// replayed by another with a differently-populated store.
type FactRef struct {
	Pred string   `json:"pred"`
	Args []string `json:"args,omitempty"`
}

// Mutations returns the delta's scheduled additions and retractions as
// store-independent fact references, in scheduling order. The result
// round-trips: feeding it back through NewDelta().Add(...)/Retract(...)
// rebuilds an equivalent delta, which is how write-ahead-log replay
// re-applies a logged mutation batch.
func (d *Delta) Mutations() (adds, retracts []FactRef) {
	return factRefs(d.adds), factRefs(d.retracts)
}

// factRefs converts internal fact specs to their exported form. The
// argument slices are shared, not copied; receivers must treat them as
// read-only.
func factRefs(specs []factSpec) []FactRef {
	if len(specs) == 0 {
		return nil
	}
	out := make([]FactRef, len(specs))
	for i, f := range specs {
		out[i] = FactRef{Pred: f.pred, Args: f.args}
	}
	return out
}

// CommitHook observes a validated mutation batch immediately before it
// commits. It runs under the system's write lock, after the whole batch
// has validated and before any state changes: returning an error rejects
// the mutation with the database untouched, which is exactly the
// log-then-commit ordering a write-ahead log needs (serialize and fsync
// the batch durably, then let the in-memory commit proceed). epoch is the
// epoch the batch will commit at (current epoch + 1). The hook must not
// call back into the System (the lock is held) and must not retain or
// mutate the argument slices beyond the call.
type CommitHook func(epoch uint64, adds, retracts []FactRef) error

// CommitHookTraced is a CommitHook that additionally receives the
// mutating request's trace span (nil when the mutation is untraced), so
// a durability hook can record its own phases — WAL append, fsync —
// under the request's span tree.
type CommitHookTraced func(epoch uint64, adds, retracts []FactRef, tr *trace.Span) error

// SetCommitHook installs h as the system's commit hook (nil removes it).
// Every mutation path — Apply, AddFact, RetractFact, LoadCSV — funnels
// through the hook.
func (s *System) SetCommitHook(h CommitHook) {
	if h == nil {
		s.SetCommitHookTraced(nil)
		return
	}
	s.SetCommitHookTraced(func(epoch uint64, adds, retracts []FactRef, _ *trace.Span) error {
		return h(epoch, adds, retracts)
	})
}

// SetCommitHookTraced installs a trace-aware commit hook (nil removes
// it). Semantics are identical to SetCommitHook.
func (s *System) SetCommitHookTraced(h CommitHookTraced) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.commitHook = h
}

// Add schedules the ground fact pred(args...) for addition, creating the
// predicate on apply if needed. Returns d for chaining.
func (d *Delta) Add(pred string, args ...string) *Delta {
	d.adds = append(d.adds, factSpec{pred: pred, args: args})
	return d
}

// Retract schedules the ground fact pred(args...) for retraction.
// Retraction removes every database occurrence of the fact; applying a
// delta that retracts a fact not currently in the database is an error
// (and, like every validation error, leaves the database untouched).
// Returns d for chaining.
func (d *Delta) Retract(pred string, args ...string) *Delta {
	d.retracts = append(d.retracts, factSpec{pred: pred, args: args})
	return d
}

// Empty reports whether the delta contains no mutations.
func (d *Delta) Empty() bool { return len(d.adds) == 0 && len(d.retracts) == 0 }

// Len returns the number of scheduled mutations.
func (d *Delta) Len() int { return len(d.adds) + len(d.retracts) }

// ParseFact parses a ground fact in surface syntax — "pred(c1,…,cn)" or a
// bare "pred" for a nullary predicate, with an optional trailing '.' —
// into a predicate name and constant arguments, for building Deltas from
// textual input (REPL and CLI retraction commands).
func ParseFact(src string) (pred string, args []string, err error) {
	st := atom.NewStore(term.NewStore())
	q, err := program.ParseQuery(src, st)
	if err != nil {
		return "", nil, err
	}
	if len(q.Pos) != 1 || len(q.Neg) != 0 || q.NumVars != 0 {
		return "", nil, fmt.Errorf("wfs: %q is not a single ground atom", src)
	}
	p := q.Pos[0]
	pred = st.PredName(p.Pred)
	args = make([]string, 0, len(p.Args))
	for _, a := range p.Args {
		if a.IsVar() || st.Terms.Kind(a.Const) != term.Const {
			return "", nil, fmt.Errorf("wfs: %q is not a ground fact over constants", src)
		}
		args = append(args, st.Terms.Name(a.Const))
	}
	return pred, args, nil
}

// Apply validates and applies a mutation batch atomically: all-or-nothing
// validation (unknown or non-database retraction targets, arity
// violations, and add/retract conflicts reject the whole delta with the
// database untouched), one epoch bump for the batch, and an incremental
// rebase of the cached evaluation state — the engine and the snapshot
// ladder carry their chase, grounding, and model across the delta
// instead of discarding them. An empty delta is a no-op (no epoch bump).
func (s *System) Apply(d *Delta) error { return s.ApplyTraced(d, nil) }

// ApplyTraced is Apply recording the mutation's phases — validation,
// the commit hook's durability work, the in-memory commit — as children
// of tr. A nil tr is Apply.
func (s *System) ApplyTraced(d *Delta, tr *trace.Span) error {
	return s.ApplyCtxTraced(context.Background(), d, tr)
}

// ApplyCtx is Apply under a context. Cancellation is honoured at two
// points only: on entry (before the write lock is taken) and immediately
// before the commit hook fires — the durability point. Once the hook
// has acknowledged the batch (the write-ahead log has fsynced it), the
// in-memory commit always completes regardless of ctx: a mutation is
// never durable-but-not-applied, and never applied-but-not-durable.
func (s *System) ApplyCtx(ctx context.Context, d *Delta) error {
	return s.ApplyCtxTraced(ctx, d, nil)
}

// ApplyCtxTraced is ApplyCtx recording the mutation's phases under tr.
func (s *System) ApplyCtxTraced(ctx context.Context, d *Delta, tr *trace.Span) error {
	if d == nil || d.Empty() {
		return nil
	}
	tok := cancel.For(ctx)
	if tok.Cancelled() {
		return cancelErr(tok)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applyCancelLocked(d.adds, d.retracts, tok, tr)
}

// RetractFact removes every database occurrence of the ground fact
// pred(args...), as a single-entry delta. It is an error if the fact is
// not currently in the database.
func (s *System) RetractFact(pred string, args ...string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applyLocked(nil, []factSpec{{pred: pred, args: args}}, nil)
}

// applyLocked is the single mutation path: every database write —
// AddFact, RetractFact, LoadCSV, Apply — funnels through it. Callers
// must hold mu. tr, when non-nil, receives the mutation's phase tree
// under an "apply" child span.
func (s *System) applyLocked(adds, retracts []factSpec, tr *trace.Span) error {
	return s.applyCancelLocked(adds, retracts, nil, tr)
}

// applyCancelLocked is applyLocked under a cancellation token (nil =
// never cancelled), polled once immediately before the commit hook: a
// batch whose client vanished during validation is rejected before it
// costs a durable WAL append, but a batch the hook has acknowledged
// always commits.
func (s *System) applyCancelLocked(adds, retracts []factSpec, tok *cancel.Token, tr *trace.Span) error {
	if len(adds) == 0 && len(retracts) == 0 {
		return nil
	}
	ap := tr.Child("apply")
	defer ap.End()
	ap.SetCount("adds", int64(len(adds)))
	ap.SetCount("retracts", int64(len(retracts)))
	endValidate := ap.Phase("validate")
	defer endValidate() // idempotent; covers the validation error returns
	// Validate retractions first: pure lookups, nothing interned. The
	// database membership set is built once for the batch, so validating
	// R retractions costs O(n + R), not O(n·R).
	removed := make([]atom.AtomID, 0, len(retracts))
	if len(retracts) > 0 {
		dbSet := make(map[atom.AtomID]struct{}, len(s.db))
		for _, a := range s.db {
			dbSet[a] = struct{}{}
		}
		for _, f := range retracts {
			a, err := s.lookupFactLocked(f, dbSet)
			if err != nil {
				return err
			}
			removed = append(removed, a)
		}
	}
	// Reject add/retract conflicts at the spec level, before anything
	// interns: additions and retractions resolve constants and
	// predicates identically, so two specs denote the same fact exactly
	// when they render identically.
	if len(retracts) > 0 && len(adds) > 0 {
		rset := make(map[string]struct{}, len(retracts))
		for _, f := range retracts {
			rset[f.String()] = struct{}{}
		}
		for _, f := range adds {
			if _, clash := rset[f.String()]; clash {
				return fmt.Errorf("wfs: delta both adds and retracts %s", f)
			}
		}
	}
	// Validate additions against the schema BEFORE interning anything
	// schema-bearing: a predicate's arity is fixed by its first interning
	// (atom.Store.Pred), so interning during a batch that later fails
	// validation would permanently poison the predicate at the failed
	// batch's arity. Constants and ground atoms carry no such weight, so
	// they may intern below.
	newPreds := make(map[string]int, len(adds))
	for _, f := range adds {
		if p, ok := s.store.LookupPred(f.pred); ok {
			if got := s.store.PredArity(p); got != len(f.args) {
				return fmt.Errorf("wfs: add %s: predicate %s used with arity %d, previously %d",
					f, f.pred, len(f.args), got)
			}
		} else if prev, seen := newPreds[f.pred]; seen && prev != len(f.args) {
			return fmt.Errorf("wfs: add %s: predicate %s used with arity %d and %d in one delta",
				f, f.pred, len(f.args), prev)
		} else {
			newPreds[f.pred] = len(f.args)
		}
	}
	endValidate()
	// Last cancellation point: past here the batch heads for the
	// durability hook, and an acked append must always commit.
	if tok.Cancelled() {
		return cancelErr(tok)
	}
	// Durability point: the batch is fully validated, nothing has
	// interned or committed. A hook failure (e.g. the WAL could not
	// fsync) rejects the mutation with the database untouched; a hook
	// success guarantees the batch is durable before it becomes visible.
	if s.commitHook != nil {
		if err := s.commitHook(s.epoch+1, factRefs(adds), factRefs(retracts), ap); err != nil {
			return fmt.Errorf("wfs: commit hook: %w", err)
		}
	}
	endCommit := ap.Phase("commit")
	defer endCommit()
	added := make([]atom.AtomID, 0, len(adds))
	for _, f := range adds {
		p, err := s.store.Pred(f.pred, len(f.args))
		if err != nil {
			return err // unreachable: arities validated above
		}
		ts := make([]term.ID, len(f.args))
		for i, arg := range f.args {
			ts[i] = s.store.Terms.Const(arg)
		}
		added = append(added, s.store.Atom(p, ts))
	}
	// Commit.
	newDB := s.db
	if len(removed) > 0 {
		rm := make(map[atom.AtomID]struct{}, len(removed))
		for _, a := range removed {
			rm[a] = struct{}{}
		}
		newDB = make(program.Database, 0, len(s.db))
		for _, a := range s.db {
			if _, dead := rm[a]; !dead {
				newDB = append(newDB, a)
			}
		}
	}
	// Clip before appending so no earlier snapshot's view can alias the
	// new entries, then clip the result so later appends cannot either.
	newDB = append(newDB[:len(newDB):len(newDB)], added...)
	s.db = newDB[:len(newDB):len(newDB)]
	if s.engine != nil {
		s.engine.ApplyDelta(s.db)
	}
	s.invalidateLocked()
	return nil
}

// lookupFactLocked resolves a retraction target against the current
// store and database: the predicate, its arity, every constant, the
// interned atom, and membership in dbSet (the caller's one-shot
// membership view of s.db) must all exist. Callers must hold mu.
func (s *System) lookupFactLocked(f factSpec, dbSet map[atom.AtomID]struct{}) (atom.AtomID, error) {
	p, ok := s.store.LookupPred(f.pred)
	if !ok {
		return atom.NoAtom, fmt.Errorf("wfs: retract %s: unknown predicate %s", f, f.pred)
	}
	if got := s.store.PredArity(p); got != len(f.args) {
		return atom.NoAtom, fmt.Errorf("wfs: retract %s: predicate %s has arity %d", f, f.pred, got)
	}
	ts := make([]term.ID, len(f.args))
	for i, arg := range f.args {
		t, ok := s.store.Terms.LookupConst(arg)
		if !ok {
			return atom.NoAtom, fmt.Errorf("wfs: retract %s: not a database fact", f)
		}
		ts[i] = t
	}
	a, ok := s.store.Lookup(p, ts)
	if !ok {
		return atom.NoAtom, fmt.Errorf("wfs: retract %s: not a database fact", f)
	}
	if _, inDB := dbSet[a]; !inDB {
		return atom.NoAtom, fmt.Errorf("wfs: retract %s: not a database fact", f)
	}
	return a, nil
}
