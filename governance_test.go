package wfs

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"
)

// endlessChainSrc is a non-terminating guarded program (existential
// p→s→p cycle) whose w(a) answer flips with the chain's parity, so the
// adaptive ladder never stabilizes: only a deadline, the atom budget,
// or the depth ceiling can end an evaluation. The cancellation tests
// use it to guarantee evaluations are genuinely in flight when their
// contexts fire.
const endlessChainSrc = `
	p(a).
	p(X) -> s(X,Y).
	s(X,Y) -> p(Y).
	s(X,Y), not w(Y) -> w(X).
`

func endlessSystem(t testing.TB) *System {
	t.Helper()
	sys, err := LoadWithOptions(endlessChainSrc, Options{MaxDepth: 1 << 14, AdaptiveStep: 1, NoCertify: true})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func isCancelClass(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

// TestConcurrentCancellationRace races short-deadline cancellations
// against patient readers and mutations on one shared system: cancelled
// rung builds must install nothing (later callers rebuild them), reads
// that do finish must return sound answers, and nothing may deadlock or
// trip the race detector. Run with -race (the CI chaos job does).
func TestConcurrentCancellationRace(t *testing.T) {
	sys := endlessSystem(t)
	q, err := Prepare("? w(a).")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	report := func(err error) {
		select {
		case errc <- err:
		default:
		}
	}

	// Cancellers: evaluations that essentially always die of their
	// deadline, racing their abandonment against everyone else's reads
	// of the same snapshot rungs.
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 20; i++ {
				snap, err := sys.Snapshot()
				if err != nil {
					report(fmt.Errorf("canceller snapshot: %w", err))
					return
				}
				ctx, cancel := context.WithTimeout(context.Background(), time.Duration(rng.Intn(2000))*time.Microsecond)
				_, err = snap.AnswerCtx(ctx, q)
				cancel()
				if err != nil && !isCancelClass(err) {
					report(fmt.Errorf("canceller: %w", err))
					return
				}
			}
		}(int64(g))
	}

	// Readers: more patient evaluations over the same snapshots. They
	// may still blow their deadline (the program never terminates), but
	// any error must be cancellation-class — never a corrupted rung left
	// behind by a cancelled build.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				snap, err := sys.Snapshot()
				if err != nil {
					report(fmt.Errorf("reader snapshot: %w", err))
					return
				}
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
				_, _, err = snap.AnswerCtxStats(ctx, q)
				cancel()
				if err != nil && !isCancelClass(err) {
					report(fmt.Errorf("reader: %w", err))
					return
				}
			}
		}()
	}

	// Mutators: epoch bumps rebasing the evaluation state mid-flight.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				d := NewDelta()
				d.Add("p", fmt.Sprintf("c%d_%d", g, i))
				if err := sys.Apply(d); err != nil {
					report(fmt.Errorf("mutator: %w", err))
					return
				}
			}
		}(g)
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestCancellationLeavesSystemSound: after a burst of cancelled
// evaluations, an unbounded evaluation of a terminating program on the
// same snapshot still produces the exact answer — cancellation must
// abandon work without poisoning shared rung state.
func TestCancellationLeavesSystemSound(t *testing.T) {
	sys, err := Load(`
		move(a,b). move(b,a). move(b,c).
		move(X,Y), not win(Y) -> win(X).
	`)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Prepare("? win(b).")
	if err != nil {
		t.Fatal(err)
	}
	snap, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // already cancelled: the ladder aborts at its first poll
		if _, err := snap.AnswerCtx(ctx, q); !isCancelClass(err) {
			t.Fatalf("pre-cancelled evaluation %d: err = %v, want cancellation", i, err)
		}
	}
	ans, err := snap.Answer(q)
	if err != nil || ans != True {
		t.Fatalf("after cancellation burst: answer = %v (%v), want true", ans, err)
	}
}

// TestDeadlineStormNoGoroutineLeak fires 100 concurrent 1ms-deadline
// evaluations of a non-terminating query and checks the process settles
// back to its baseline goroutine count: cooperative cancellation spawns
// no watcher goroutines and leaves no evaluation stuck.
func TestDeadlineStormNoGoroutineLeak(t *testing.T) {
	sys := endlessSystem(t)
	q, err := Prepare("? w(a).")
	if err != nil {
		t.Fatal(err)
	}
	snap, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()

	var wg sync.WaitGroup
	for g := 0; g < 100; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
			defer cancel()
			if _, err := snap.AnswerCtx(ctx, q); err != nil && !isCancelClass(err) {
				t.Errorf("storm evaluation: %v", err)
			}
		}()
	}
	wg.Wait()

	// Timer internals may take a moment to unwind; poll for the settle.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+10 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d, baseline %d — evaluations leaked", runtime.NumGoroutine(), baseline)
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}
