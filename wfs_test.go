package wfs

import (
	"strings"
	"testing"
)

func TestLoadAndAnswer(t *testing.T) {
	sys, err := Load(`
		scientist(john).
		scientist(X) -> isAuthorOf(X, Y).
		conferencePaper(X) -> article(X).
		conferencePaper(pods13).
	`)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		q    string
		want Truth
	}{
		{"? isAuthorOf(john, X).", True},
		{"? article(pods13).", True},
		{"? article(john).", False},
		{"isAuthorOf(john, X)", True}, // sugar: no ? and no period
	} {
		got, err := sys.Answer(tc.q)
		if err != nil {
			t.Fatalf("Answer(%q): %v", tc.q, err)
		}
		if got != tc.want {
			t.Errorf("Answer(%q) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestLoadError(t *testing.T) {
	if _, err := Load("p(X) ->"); err == nil {
		t.Errorf("syntax error not reported")
	}
	if _, err := Load("e(X,Y), t(Y,Z) -> t(X,Z)."); err == nil {
		t.Errorf("guardedness violation not reported")
	}
}

func TestAddFact(t *testing.T) {
	sys, err := Load(`person(X) -> hasID(X, Y).`)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := sys.Answer("? hasID(ann, X)."); got != False {
		t.Fatalf("empty database answered %v", got)
	}
	if err := sys.AddFact("person", "ann"); err != nil {
		t.Fatal(err)
	}
	if got, _ := sys.Answer("? hasID(ann, X)."); got != True {
		t.Errorf("fact addition not picked up: %v", got)
	}
}

func TestEmbeddedQueries(t *testing.T) {
	sys, err := Load(`
		p(a).
		p(X), not q(X) -> r(X).
		? r(a).
		? q(a).
	`)
	if err != nil {
		t.Fatal(err)
	}
	rs := sys.AnswerAll()
	if len(rs) != 2 || rs[0].Answer != True || rs[1].Answer != False {
		t.Errorf("AnswerAll = %+v", rs)
	}
}

func TestTruthOf(t *testing.T) {
	sys, err := Load(`
		move(a,b). move(b,a).
		move(X,Y), not win(Y) -> win(X).
	`)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sys.TruthOf("win(a)")
	if err != nil {
		t.Fatal(err)
	}
	if got != Undefined {
		t.Errorf("win(a) = %v, want undefined", got)
	}
	if _, err := sys.TruthOf("win(X)"); err == nil {
		t.Errorf("non-ground TruthOf accepted")
	}
	if _, err := sys.TruthOf("win(a), win(b)"); err == nil {
		t.Errorf("conjunction TruthOf accepted")
	}
}

func TestTrueAndUndefinedFacts(t *testing.T) {
	sys, err := Load(`
		p(a).
		move(c,d). move(d,c).
		move(X,Y), not win(Y) -> win(X).
	`)
	if err != nil {
		t.Fatal(err)
	}
	tf := strings.Join(sys.TrueFacts(), ";")
	if !strings.Contains(tf, "p(a)") || !strings.Contains(tf, "move(c,d)") {
		t.Errorf("TrueFacts = %s", tf)
	}
	uf := strings.Join(sys.UndefinedFacts(), ";")
	if !strings.Contains(uf, "win(c)") || !strings.Contains(uf, "win(d)") {
		t.Errorf("UndefinedFacts = %s", uf)
	}
}

func TestWCheckFacade(t *testing.T) {
	sys, err := Load(`
		move(a,b).
		move(X,Y), not win(Y) -> win(X).
	`)
	if err != nil {
		t.Fatal(err)
	}
	tv, stats, err := sys.WCheck("win(a)")
	if err != nil {
		t.Fatal(err)
	}
	if tv != True || stats.ClosureAtoms == 0 {
		t.Errorf("WCheck = %v (%+v)", tv, stats)
	}
}

func TestConstraintsFacade(t *testing.T) {
	sys, err := Load(`
		cat(rex). dog(rex).
		cat(X), dog(X) -> false.
	`)
	if err != nil {
		t.Fatal(err)
	}
	if vs := sys.CheckConstraints(); len(vs) != 1 || !vs[0].Certain {
		t.Errorf("violations = %+v", vs)
	}
}

func TestStratifiedFacade(t *testing.T) {
	sys, _ := Load("p(a).\np(X), not q(X) -> r(X).")
	if !sys.Stratified() {
		t.Errorf("stratified program misreported")
	}
	sys2, _ := Load("move(a,b).\nmove(X,Y), not win(Y) -> win(X).")
	if sys2.Stratified() {
		t.Errorf("win-move reported stratified")
	}
}

func TestDeltaBoundFacade(t *testing.T) {
	sys, _ := Load("p(a,b,c).")
	if sys.DeltaBound().Sign() <= 0 {
		t.Errorf("DeltaBound not positive")
	}
}

func TestAnswerWithStats(t *testing.T) {
	sys, err := Load(`
		r(0,0,1). p(0,0).
		r(X,Y,Z) -> r(X,Z,W).
		r(X,Y,Z), p(X,Y), not q(Z) -> p(X,Z).
		r(X,Y,Z), not p(X,Y) -> q(Z).
		r(X,Y,Z), not p(X,Z) -> s(X).
		p(X,Y), not s(X) -> t(X).
	`)
	if err != nil {
		t.Fatal(err)
	}
	ans, stats, err := sys.AnswerWithStats("? t(0).")
	if err != nil {
		t.Fatal(err)
	}
	if ans != True {
		t.Errorf("t(0) = %v, want true", ans)
	}
	if len(stats.Depths) == 0 || !stats.Stable {
		t.Errorf("stats = %+v", stats)
	}
}

func TestSelectFacade(t *testing.T) {
	sys, err := Load(`
		person(ann). person(bob). employed(ann).
		person(X), not employed(X) -> seeker(X).
	`)
	if err != nil {
		t.Fatal(err)
	}
	vars, rows, err := sys.Select("? seeker(X).")
	if err != nil {
		t.Fatal(err)
	}
	if len(vars) != 1 || vars[0] != "X" {
		t.Errorf("vars = %v", vars)
	}
	if len(rows) != 1 || rows[0][0] != "bob" {
		t.Errorf("rows = %v, want [[bob]]", rows)
	}
}

func TestExplainAtomFacade(t *testing.T) {
	sys, err := Load(`
		a(x).
		a(X), not blocked(X) -> b(X).
	`)
	if err != nil {
		t.Fatal(err)
	}
	out, ok, err := sys.ExplainAtom("b(x)")
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("no proof of b(x)")
	}
	if !strings.Contains(out, "a(x)") || !strings.Contains(out, "not blocked(x)") {
		t.Errorf("proof rendering wrong:\n%s", out)
	}
	if _, ok, err := sys.ExplainAtom("blocked(x)"); err != nil || ok {
		t.Errorf("false atom explained as true (ok=%v err=%v)", ok, err)
	}
	// Malformed input surfaces as an error, not as a silent "not true".
	if _, ok, err := sys.ExplainAtom("b("); err == nil {
		t.Errorf("malformed atom: got ok=%v with nil error, want error", ok)
	}
	// A non-ground or multi-literal input is likewise an error.
	if _, _, err := sys.ExplainAtom("b(X)"); err == nil {
		t.Errorf("non-ground atom accepted by ExplainAtom")
	}
}

func TestLoadCSV(t *testing.T) {
	sys, err := Load(`
		move(X,Y), not win(Y) -> win(X).
	`)
	if err != nil {
		t.Fatal(err)
	}
	n, err := sys.LoadCSV("move", strings.NewReader("a,b\nb,c\n"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("loaded %d facts, want 2", n)
	}
	if got, _ := sys.TruthOf("win(b)"); got != True {
		t.Errorf("win(b) = %v after CSV load", got)
	}
	// Ragged record.
	if _, err := sys.LoadCSV("move", strings.NewReader("a,b\nc\n")); err == nil {
		t.Errorf("ragged CSV accepted")
	}
	// Arity conflict with the schema.
	if _, err := sys.LoadCSV("win", strings.NewReader("a,b\n")); err == nil {
		t.Errorf("arity-conflicting CSV accepted")
	}
}
