package analysis

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/atom"
	"repro/internal/program"
	"repro/internal/term"
)

func analyze(t *testing.T, src string) *Report {
	t.Helper()
	st := atom.NewStore(term.NewStore())
	prog, db, queries, err := program.CompileText(src, st)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return Analyze(prog, db, queries)
}

func hasClass(rep *Report, class string) bool {
	for _, c := range rep.Classes {
		if c == class {
			return true
		}
	}
	return false
}

func codes(rep *Report) []string {
	var out []string
	for _, d := range rep.Diagnostics {
		out = append(out, d.Code)
	}
	return out
}

func hasCode(rep *Report, code string) bool {
	for _, d := range rep.Diagnostics {
		if d.Code == code {
			return true
		}
	}
	return false
}

func TestCertifyLinearChain(t *testing.T) {
	rep := analyze(t, `
		a(1).
		a(X) -> b(X).
		b(X) -> c(X).
		c(X) -> d(X).
	`)
	if !hasClass(rep, "guard-acyclic") || rep.Certificate == nil {
		t.Fatalf("expected guard-acyclic certificate, got classes %v", rep.Classes)
	}
	if rep.Certificate.DepthBound != 3 {
		t.Fatalf("chain of 3 rules: want depth bound 3, got %d", rep.Certificate.DepthBound)
	}
	if !rep.Terminates || !rep.Stratified {
		t.Fatalf("expected terminating stratified program: %+v", rep)
	}
	if got := rep.Certificate.PredBounds["d"]; got != 3 {
		t.Fatalf("PredBounds[d] = %d, want 3", got)
	}
	if got := rep.Certificate.PredBounds["a"]; got != 0 {
		t.Fatalf("PredBounds[a] = %d, want 0", got)
	}
}

func TestCertifyRecursionThroughSideAtom(t *testing.T) {
	// reach is recursive, but the guard (the first body atom covering all
	// universal variables) is edge, so the guard graph edge→reach is
	// acyclic and the chase really does derive everything at depth 1.
	rep := analyze(t, `
		edge(1, 2). edge(2, 3).
		reach(1).
		edge(X, Y), reach(X) -> reach(Y).
	`)
	if rep.Certificate == nil {
		t.Fatal("expected certificate for side-atom recursion")
	}
	if rep.Certificate.DepthBound != 1 {
		t.Fatalf("want depth bound 1, got %d", rep.Certificate.DepthBound)
	}
}

func TestCertifyRejectsGuardCycle(t *testing.T) {
	// Example 4 of the paper: guard r(...) derives r(...) with a fresh
	// existential — the guard graph has a self-loop, no static bound.
	rep := analyze(t, `
		r(a, b, c).
		r(X1, X2, X3) -> r(X2, X3, Y).
	`)
	if rep.Certificate != nil {
		t.Fatalf("self-loop guard must not certify, got bound %d", rep.Certificate.DepthBound)
	}
	if hasClass(rep, "guard-acyclic") {
		t.Fatal("classes must not include guard-acyclic")
	}
	if rep.Terminates {
		t.Fatalf("transfinite program misclassified as terminating: %v", rep.Classes)
	}
}

func TestNoExistentialsClass(t *testing.T) {
	rep := analyze(t, `
		p(1).
		p(X) -> p(X).
	`)
	if !hasClass(rep, "no-existentials") {
		t.Fatalf("want no-existentials, got %v", rep.Classes)
	}
	if rep.Certificate != nil {
		t.Fatal("self-recursive guard must not certify a depth bound")
	}
	if !rep.Terminates {
		t.Fatal("no-existentials proves termination")
	}
}

func TestWeakAndJointAcyclicity(t *testing.T) {
	// Existential flows into a position that feeds another existential
	// rule, but never back into its own: weakly acyclic.
	wa := analyze(t, `
		person(ann).
		person(X) -> hasParent(X, Y).
	`)
	if !hasClass(wa, "weakly-acyclic") || !hasClass(wa, "jointly-acyclic") {
		t.Fatalf("want weakly+jointly acyclic, got %v", wa.Classes)
	}

	// The generated null cycles back into the position that generated it:
	// neither test passes.
	cyc := analyze(t, `
		person(ann).
		person(X) -> hasParent(X, Y).
		hasParent(X, Y) -> person(Y).
	`)
	if hasClass(cyc, "weakly-acyclic") || hasClass(cyc, "jointly-acyclic") {
		t.Fatalf("cyclic null propagation misclassified: %v", cyc.Classes)
	}
}

func TestJointSubsumesWeak(t *testing.T) {
	// Classic separator: the special edge lands in the same SCC (weak
	// acyclicity fails) but Mov(Y) never reaches a body position of the
	// generating rule's own frontier in a cyclic way.
	rep := analyze(t, `
		p(1, 2).
		p(X, X2) -> q(X, Y).
		q(X, Y), p(X, X) -> p(Y, X).
	`)
	// Whatever the exact classification, jointly-acyclic must hold
	// whenever weakly-acyclic does.
	if hasClass(rep, "weakly-acyclic") && !hasClass(rep, "jointly-acyclic") {
		t.Fatalf("joint acyclicity subsumes weak acyclicity: %v", rep.Classes)
	}
}

func TestUnsatisfiableRuleDiagnostic(t *testing.T) {
	rep := analyze(t, `
		person(ann).
		conferencePaper(X) -> article(X).
	`)
	if !rep.HasErrors() {
		t.Fatalf("expected unsatisfiable-rule error, got %v", codes(rep))
	}
	d := rep.Errors()[0]
	if d.Code != "unsatisfiable-rule" {
		t.Fatalf("code = %q", d.Code)
	}
	if d.Line != 3 {
		t.Fatalf("line = %d, want 3", d.Line)
	}
	if !strings.Contains(d.Message, "conferencePaper/1") {
		t.Fatalf("message should name the predicate signature: %q", d.Message)
	}
}

func TestSupportThroughRuleChain(t *testing.T) {
	// b is derivable via a, so the rule over b is fine; negation over an
	// underivable predicate is a vacuous-negation warning, not an error.
	rep := analyze(t, `
		a(1).
		a(X) -> b(X).
		b(X), not ghost(X) -> c(X).
	`)
	if rep.HasErrors() {
		t.Fatalf("no rule is dead here: %v", rep.Diagnostics)
	}
	if !hasCode(rep, "vacuous-negation") {
		t.Fatalf("expected vacuous-negation, got %v", codes(rep))
	}
}

func TestUnusedPredicateAndSingleton(t *testing.T) {
	rep := analyze(t, `
		person(ann).
		person(X) -> adult(X, Age).
	`)
	// adult is derived but never read; Age is existential, not a
	// singleton universal.
	if !hasCode(rep, "unused-predicate") {
		t.Fatalf("expected unused-predicate, got %v", codes(rep))
	}
	if hasCode(rep, "singleton-variable") {
		t.Fatalf("existential vars are not singleton universals: %v", rep.Diagnostics)
	}

	single := analyze(t, `
		pair(1, 2).
		pair(X, Z) -> solo(X).
		solo(X) -> done(X).
		? done(1).
	`)
	if !hasCode(single, "singleton-variable") {
		t.Fatalf("expected singleton-variable for Z, got %v", codes(single))
	}
}

func TestNegationCycleDetection(t *testing.T) {
	rep := analyze(t, `
		move(1, 2). move(2, 1).
		move(X, Y), not win(Y) -> win(X).
	`)
	if len(rep.NegCycles) != 1 || rep.NegCycles[0][0] != "win" {
		t.Fatalf("NegCycles = %v, want [[win]]", rep.NegCycles)
	}
	if rep.Stratified {
		t.Fatal("win-move is not stratified")
	}
	if !hasCode(rep, "negation-cycle") {
		t.Fatalf("expected negation-cycle info, got %v", codes(rep))
	}
	// Info, not warning: negation cycles are the point of WFS.
	for _, d := range rep.Diagnostics {
		if d.Code == "negation-cycle" && d.Severity != Info {
			t.Fatalf("negation-cycle severity = %v, want info", d.Severity)
		}
	}
}

func TestStratifiedNegationNoCycle(t *testing.T) {
	rep := analyze(t, `
		p(1). q(1).
		p(X), not q(X) -> r(X).
		? r(1).
	`)
	if len(rep.NegCycles) != 0 {
		t.Fatalf("stratified negation has no cycle: %v", rep.NegCycles)
	}
	if !rep.Stratified {
		t.Fatal("expected stratified")
	}
	if len(rep.Diagnostics) != 0 {
		t.Fatalf("expected clean report, got %v", rep.Diagnostics)
	}
}

func TestQueriesMarkPredicatesUsed(t *testing.T) {
	rep := analyze(t, `
		person(ann).
		person(X) -> adult(X).
		? adult(ann).
	`)
	if hasCode(rep, "unused-predicate") {
		t.Fatalf("query reads adult, got %v", codes(rep))
	}
}

func TestDiagnosticOrderingAndCounts(t *testing.T) {
	rep := analyze(t, `
		a(1).
		ghost(X) -> p(X).
		a(X), not phantom(X) -> q(X).
		? q(1).
	`)
	nerr, nwarn, _ := rep.Counts()
	if nerr != 1 || nwarn != 1 {
		t.Fatalf("counts = (%d, %d), want (1, 1); diags %v", nerr, nwarn, rep.Diagnostics)
	}
	// Errors sort first.
	if rep.Diagnostics[0].Severity != Error {
		t.Fatalf("first diagnostic is %v, want error", rep.Diagnostics[0].Severity)
	}
}

func TestSeverityJSONRoundTrip(t *testing.T) {
	for _, s := range []Severity{Info, Warning, Error} {
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var got Severity
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatal(err)
		}
		if got != s {
			t.Fatalf("round trip %v -> %s -> %v", s, b, got)
		}
	}
	var bad Severity
	if err := json.Unmarshal([]byte(`"fatal"`), &bad); err == nil {
		t.Fatal("expected error for unknown severity")
	}
}

func TestRuleInfoAndFormat(t *testing.T) {
	rep := analyze(t, `
		emp(ann).
		emp(X) -> worksFor(X, Y).
		worksFor(X, Y), emp(X) -> busy(X).
		? busy(ann).
	`)
	if len(rep.RuleInfo) != 2 {
		t.Fatalf("RuleInfo len = %d", len(rep.RuleInfo))
	}
	ri := rep.RuleInfo[0]
	if ri.GuardPred != "emp" || !ri.Linear || !ri.Existential {
		t.Fatalf("rule 0 info = %+v", ri)
	}
	if rep.RuleInfo[1].Linear {
		t.Fatalf("two-atom body is not linear: %+v", rep.RuleInfo[1])
	}

	out := rep.Format(true)
	for _, want := range []string{"termination:", "stratified:", "diagnostics:", "rule 0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
	if rep.Certificate != nil && !strings.Contains(out, "certificate:") {
		t.Fatalf("Format missing certificate line:\n%s", out)
	}
}

func TestLineNumbersSurvivalMultiline(t *testing.T) {
	rep := analyze(t, "a(1).\n\na(X) -> b(X).\n\nghost(X) -> c(X).\n")
	var deadLine int
	for _, d := range rep.Diagnostics {
		if d.Code == "unsatisfiable-rule" {
			deadLine = d.Line
		}
	}
	if deadLine != 5 {
		t.Fatalf("dead rule line = %d, want 5", deadLine)
	}
}
