package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// Format renders the report for terminals (wfslint, the REPL's :lint).
// Verbose additionally lists the per-rule structural facts and the
// certificate's per-predicate bounds.
func (r *Report) Format(verbose bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program: %d rule%s, %d fact%s, %d predicate%s",
		r.Rules, plural(r.Rules), r.Facts, plural(r.Facts), r.Preds, plural(r.Preds))
	if r.Constraints > 0 {
		fmt.Fprintf(&b, ", %d constraint%s", r.Constraints, plural(r.Constraints))
	}
	if r.EGDs > 0 {
		fmt.Fprintf(&b, ", %d EGD%s", r.EGDs, plural(r.EGDs))
	}
	b.WriteByte('\n')

	if len(r.Classes) > 0 {
		fmt.Fprintf(&b, "termination: chase terminates (%s)\n", strings.Join(r.Classes, ", "))
	} else {
		b.WriteString("termination: not statically provable (no acyclicity class applies)\n")
	}
	if c := r.Certificate; c != nil {
		fmt.Fprintf(&b, "certificate: chase depth ≤ %d (%s) — engine answers exactly, no guard band\n",
			c.DepthBound, c.Class)
		if verbose && len(c.PredBounds) > 0 {
			preds := make([]string, 0, len(c.PredBounds))
			for p := range c.PredBounds {
				preds = append(preds, p)
			}
			sort.Slice(preds, func(i, j int) bool {
				if c.PredBounds[preds[i]] != c.PredBounds[preds[j]] {
					return c.PredBounds[preds[i]] < c.PredBounds[preds[j]]
				}
				return preds[i] < preds[j]
			})
			for _, p := range preds {
				fmt.Fprintf(&b, "  depth(%s) ≤ %d\n", p, c.PredBounds[p])
			}
		}
	}
	if r.Stratified {
		b.WriteString("stratified: yes (well-founded model is two-valued)\n")
	} else {
		b.WriteString("stratified: no\n")
	}

	for _, d := range r.Diagnostics {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	if verbose {
		for _, ri := range r.RuleInfo {
			flags := make([]string, 0, 3)
			if ri.Linear {
				flags = append(flags, "linear")
			}
			if ri.Existential {
				flags = append(flags, "existential")
			}
			if ri.Negated {
				flags = append(flags, "negated")
			}
			if len(flags) == 0 {
				flags = append(flags, "plain")
			}
			fmt.Fprintf(&b, "rule %d (line %d): head %s, guard %s [%s]\n",
				ri.Idx, ri.Line, ri.HeadPred, ri.GuardPred, strings.Join(flags, ", "))
		}
	}
	nerr, nwarn, ninfo := r.Counts()
	fmt.Fprintf(&b, "diagnostics: %d error%s, %d warning%s, %d info\n",
		nerr, plural(nerr), nwarn, plural(nwarn), ninfo)
	return b.String()
}
