package analysis

// Acyclicity classes. All three prove that the guarded chase of any
// database under the program terminates; only guard-acyclicity
// (certificate.go) additionally yields a concrete static bound on forest
// depth, because in this chase the depth of a derived atom is always
// exactly guardDepth+1 (side atoms wait for their derivations but never
// deepen the head — see chase.tryApply).

// weaklyAcyclic implements the classic Fagin et al. test on the
// position dependency graph: nodes are (predicate, argument) positions;
// for every rule and universally quantified variable x occurring at a
// positive body position π, a regular edge runs π → π' for each head
// position π' of x, and a special edge runs π → π* for each head
// position π* holding an existentially quantified variable. The program
// is weakly acyclic iff no cycle goes through a special edge: then every
// propagation path creates only boundedly many fresh nulls and the chase
// terminates on every instance.
func weaklyAcyclic(u *universe) bool {
	ps := newPositions(u)
	adj := make([][]int, ps.total)
	type edge struct{ from, to int }
	var special []edge

	for _, r := range u.prog.Rules {
		numUniv := len(r.Univ)
		// body positions per universal variable slot
		bodyPos := make(map[int][]int)
		for _, b := range r.PosBody {
			for i, a := range b.Args {
				if a.IsVar() && int(a.Var) < numUniv {
					bodyPos[int(a.Var)] = append(bodyPos[int(a.Var)], ps.at(b.Pred, i))
				}
			}
		}
		// head positions: universal slots get regular targets, existential
		// slots are special targets
		var specialTargets []int
		headPos := make(map[int][]int)
		for i, a := range r.Head.Args {
			if !a.IsVar() {
				continue
			}
			pos := ps.at(r.Head.Pred, i)
			if int(a.Var) < numUniv {
				headPos[int(a.Var)] = append(headPos[int(a.Var)], pos)
			} else {
				specialTargets = append(specialTargets, pos)
			}
		}
		for v, srcs := range bodyPos {
			for _, s := range srcs {
				for _, t := range headPos[v] {
					adj[s] = append(adj[s], t)
				}
				for _, t := range specialTargets {
					adj[s] = append(adj[s], t)
					special = append(special, edge{from: s, to: t})
				}
			}
		}
	}
	if len(special) == 0 {
		return true // no existential propagation at all
	}
	comp := componentOf(ps.total, sccs(adj))
	for _, e := range special {
		if comp[e.from] == comp[e.to] {
			return false
		}
	}
	return true
}

// jointlyAcyclic implements the Krötzsch–Rudolph test, which subsumes
// weak acyclicity: for each existentially quantified variable z, compute
// Mov(z) — the least set of positions containing z's head positions and
// closed under "if every positive body position of a universal variable
// x of some rule lies in Mov(z), then x's head positions do too". Then
// z' depends on z when Mov(z) meets the positive body positions of a
// frontier variable of z”s rule; the program is jointly acyclic iff
// this dependency relation is acyclic. Since compilation Skolemizes over
// all universal variables of the rule, every universal variable is
// treated as frontier — a sound over-approximation.
func jointlyAcyclic(u *universe) bool {
	ps := newPositions(u)

	// Per rule: positive body positions and head positions of each
	// universal variable slot, precomputed once.
	type ruleVars struct {
		bodyPos map[int][]int
		headPos map[int][]int
	}
	rules := make([]ruleVars, len(u.prog.Rules))
	for ri, r := range u.prog.Rules {
		rv := ruleVars{bodyPos: make(map[int][]int), headPos: make(map[int][]int)}
		numUniv := len(r.Univ)
		for _, b := range r.PosBody {
			for i, a := range b.Args {
				if a.IsVar() && int(a.Var) < numUniv {
					rv.bodyPos[int(a.Var)] = append(rv.bodyPos[int(a.Var)], ps.at(b.Pred, i))
				}
			}
		}
		for i, a := range r.Head.Args {
			if a.IsVar() && int(a.Var) < numUniv {
				rv.headPos[int(a.Var)] = append(rv.headPos[int(a.Var)], ps.at(r.Head.Pred, i))
			}
		}
		rules[ri] = rv
	}

	// Existential variables, flattened across rules.
	type exist struct {
		rule int
		mov  []bool // position set
	}
	var exs []exist
	for ri, r := range u.prog.Rules {
		for _, ev := range r.Exist {
			mov := make([]bool, ps.total)
			for i, a := range r.Head.Args {
				if a.IsVar() && int(a.Var) == ev.Slot {
					mov[ps.at(r.Head.Pred, i)] = true
				}
			}
			exs = append(exs, exist{rule: ri, mov: mov})
		}
	}
	if len(exs) == 0 {
		return true
	}

	// Close each Mov set.
	for xi := range exs {
		mov := exs[xi].mov
		for changed := true; changed; {
			changed = false
			for _, rv := range rules {
				for v, srcs := range rv.bodyPos {
					all := true
					for _, s := range srcs {
						if !mov[s] {
							all = false
							break
						}
					}
					if !all {
						continue
					}
					for _, t := range rv.headPos[v] {
						if !mov[t] {
							mov[t] = true
							changed = true
						}
					}
				}
			}
		}
	}

	// Dependency graph over existential variables: z → z' when Mov(z)
	// meets a positive body position of z''s rule's universal variables.
	adj := make([][]int, len(exs))
	for zi := range exs {
		for zj := range exs {
			rv := rules[exs[zj].rule]
			dep := false
		scan:
			for _, srcs := range rv.bodyPos {
				for _, s := range srcs {
					if exs[zi].mov[s] {
						dep = true
						break scan
					}
				}
			}
			if dep {
				adj[zi] = append(adj[zi], zj)
			}
		}
	}
	for _, c := range sccs(adj) {
		if len(c) > 1 {
			return false
		}
		v := c[0]
		for _, w := range adj[v] {
			if w == v {
				return false
			}
		}
	}
	return true
}
