package analysis

import (
	"repro/internal/atom"
	"repro/internal/program"
)

// Certificate is a machine-checkable chase-termination certificate: for
// a guard-acyclic program, every atom any chase of any database can
// derive has forest depth ≤ DepthBound, and the bounded chase run at
// MaxDepth = DepthBound is complete (no instance is left unexpanded by
// the depth cap). The bound is data-independent — it survives fact
// additions and retractions — so the engine may clamp its adaptive
// ladder to the single certified depth and mark the resulting models
// exact (core.Options.CertifiedDepth).
type Certificate struct {
	// Class names the argument; currently always "guard-acyclic".
	Class string `json:"class"`
	// DepthBound is the certified chase depth bound k ≥ 1.
	DepthBound int `json:"depth_bound"`
	// PredBounds maps each predicate to its individual depth ceiling.
	PredBounds map[string]int `json:"pred_bounds,omitempty"`
}

// Certify proves a concrete chase depth bound when the guard graph —
// one edge guardPredicate → headPredicate per rule — is acyclic, and
// returns nil otherwise.
//
// Why this graph bounds depth: the chase derives every head at depth
// guardDepth+1, and side atoms only delay firing (parked waiters), they
// never deepen the head (chase.tryApply). So along the guard graph,
// bound(p) = max over rules with head p of bound(guard)+1 (0 when p is
// EDB-only) dominates the depth of every p-atom in every run, for every
// database: database atoms sit at depth 0, and induction over any
// derivation gives depth(head) = depth(guard)+1 ≤ bound(guardPred)+1 ≤
// bound(headPred). Recursion through side atoms — e.g. reach(X),
// edge(X,Y) → reach(Y) with edge as guard — certifies at bound 1, which
// is exactly how that chase behaves.
//
// Completeness at MaxDepth = k = max bound: the chase expands every atom
// of depth < MaxDepth. Any atom that guards a rule has a predicate p
// with bound(p) ≤ k−1 (its head would otherwise exceed the global max),
// so every potential guard is expanded and no derivation is cut off.
//
// Termination (finite universe) follows from guardedness: the guard
// covers all universal variables, so a rule's head atom is a function of
// (rule, guard atom) alone; by induction over bound(p), each predicate
// accumulates finitely many atoms.
func Certify(prog *program.Program) *Certificate {
	type node struct {
		rules []*program.Rule // non-fact rules with this head predicate
	}
	heads := make(map[atom.PredID]*node)
	var order []atom.PredID
	touch := func(p atom.PredID) *node {
		n, ok := heads[p]
		if !ok {
			n = &node{}
			heads[p] = n
			order = append(order, p)
		}
		return n
	}
	for _, r := range prog.Rules {
		if r.IsFact() {
			continue
		}
		n := touch(r.Head.Pred)
		n.rules = append(n.rules, r)
		touch(r.GuardAtom().Pred)
	}

	// Memoized longest-path DP; a cycle (including a self-loop) aborts.
	const (
		unvisited  = -1
		inProgress = -2
	)
	bound := make(map[atom.PredID]int, len(heads))
	for p := range heads {
		bound[p] = unvisited
	}
	var visit func(p atom.PredID) bool
	visit = func(p atom.PredID) bool {
		switch bound[p] {
		case inProgress:
			return false // guard cycle
		case unvisited:
		default:
			return true
		}
		bound[p] = inProgress
		b := 0
		for _, r := range heads[p].rules {
			g := r.GuardAtom().Pred
			if !visit(g) {
				return false
			}
			if gb := bound[g] + 1; gb > b {
				b = gb
			}
		}
		bound[p] = b
		return true
	}
	k := 0
	for _, p := range order {
		if !visit(p) {
			return nil
		}
		if bound[p] > k {
			k = bound[p]
		}
	}
	if k < 1 {
		k = 1 // chase depth bounds are ≥ 1; a rule-free program is trivially complete there
	}
	pb := make(map[string]int, len(order))
	for _, p := range order {
		pb[prog.Store.PredName(p)] = bound[p]
	}
	return &Certificate{Class: "guard-acyclic", DepthBound: k, PredBounds: pb}
}
