package analysis

import (
	"sort"

	"repro/internal/atom"
)

// sccs Tarjan-condenses a directed graph given as adjacency lists,
// returning the strongly connected components in reverse topological
// order (each component before any component it has edges into). The
// graphs here are program-sized (predicates or argument positions), so
// the recursive formulation is fine.
func sccs(adj [][]int) [][]int {
	n := len(adj)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var comps [][]int
	next := 0
	var strong func(v int)
	strong = func(v int) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if index[w] < 0 {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			comps = append(comps, comp)
		}
	}
	for v := 0; v < n; v++ {
		if index[v] < 0 {
			strong(v)
		}
	}
	return comps
}

// componentOf inverts an SCC list into a node → component-index map.
func componentOf(n int, comps [][]int) []int {
	comp := make([]int, n)
	for ci, c := range comps {
		for _, v := range c {
			comp[v] = ci
		}
	}
	return comp
}

// predEdge is one head → body-predicate dependency, marked negative when
// the body occurrence is under negation.
type predEdge struct {
	from, to int
	neg      bool
}

// predGraph builds the predicate-level dependency graph (head → body,
// the direction stratification uses): one node per referenced predicate,
// one edge per body occurrence.
func predGraph(u *universe) (adj [][]int, edges []predEdge) {
	adj = make([][]int, len(u.preds))
	seen := make(map[[2]int]bool) // dedup positive edges; negative kept distinct
	addEdge := func(from, to int, neg bool) {
		if !neg && seen[[2]int{from, to}] {
			return
		}
		if !neg {
			seen[[2]int{from, to}] = true
		}
		adj[from] = append(adj[from], to)
		edges = append(edges, predEdge{from: from, to: to, neg: neg})
	}
	for _, r := range u.prog.Rules {
		h := u.predIdx[r.Head.Pred]
		for _, b := range r.PosBody {
			addEdge(h, u.predIdx[b.Pred], false)
		}
		for _, b := range r.NegBody {
			addEdge(h, u.predIdx[b.Pred], true)
		}
	}
	return adj, edges
}

// negationCycles returns the predicate components containing an internal
// negative dependency — the predicates whose truth values can only be
// settled by genuine well-founded evaluation (PR 5's modular solver
// extracts exactly these components for the full WFS fixpoint; everything
// else takes a stratified least-fixpoint pass).
func negationCycles(u *universe) [][]string {
	adj, edges := predGraph(u)
	comps := sccs(adj)
	comp := componentOf(len(adj), comps)
	cyclic := make(map[int]bool)
	for _, e := range edges {
		if e.neg && comp[e.from] == comp[e.to] {
			cyclic[comp[e.from]] = true
		}
	}
	var out [][]string
	for ci, c := range comps {
		if !cyclic[ci] {
			continue
		}
		names := make([]string, len(c))
		for i, v := range c {
			names[i] = u.name(u.preds[v])
		}
		sort.Strings(names)
		out = append(out, names)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// position numbering for the weak-acyclicity graph: node per (predicate,
// argument index) over the predicates referenced by rules.
type positions struct {
	offset map[atom.PredID]int
	total  int
}

func newPositions(u *universe) *positions {
	ps := &positions{offset: make(map[atom.PredID]int)}
	for _, p := range u.preds {
		ps.offset[p] = ps.total
		ps.total += u.prog.Store.PredArity(p)
	}
	return ps
}

func (ps *positions) at(p atom.PredID, i int) int { return ps.offset[p] + i }
