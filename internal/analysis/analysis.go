// Package analysis implements the load-time static-analysis pass over
// compiled guarded normal Datalog± programs: termination classification
// (no-existentials, weak acyclicity, joint acyclicity, guard-acyclicity),
// chase-termination certificates with a concrete depth bound, and
// position-accurate diagnostics (dead rules, underivable predicates,
// negation cycles, suspicious patterns).
//
// The engine consumes the certificate: a guard-acyclic program's chase
// derives every atom at forest depth ≤ Certificate.DepthBound, and the
// bounded chase at exactly that depth is complete, so wfs loading clamps
// the adaptive-deepening ladder to the single certified rung and marks
// the resulting models exact (core.Options.CertifiedDepth). Everything
// else in the report is advisory: wfsd rejects programs with Error
// diagnostics at session creation, wfslint renders the report offline.
package analysis

import (
	"fmt"
	"sort"

	"repro/internal/atom"
	"repro/internal/program"
)

// Severity grades a diagnostic. Errors identify rules that can never
// contribute to any model (wfsd refuses such programs at session
// creation); warnings identify constructs that are almost certainly not
// what the author meant; infos surface structural facts worth knowing
// (negation cycles, unused derived predicates, singleton variables).
type Severity int

const (
	Info Severity = iota
	Warning
	Error
)

func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	default:
		return "info"
	}
}

// MarshalJSON renders the severity as its lower-case name, the form the
// wfsd API and wfslint -json emit.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON accepts the lower-case severity names.
func (s *Severity) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"error"`:
		*s = Error
	case `"warning"`:
		*s = Warning
	case `"info"`:
		*s = Info
	default:
		return fmt.Errorf("analysis: unknown severity %s", b)
	}
	return nil
}

// Diagnostic is one finding, anchored to a source line when the finding
// concerns a specific rule (Line is 1-based; 0 for program-level
// findings).
type Diagnostic struct {
	Severity Severity `json:"severity"`
	// Code is a stable machine-readable identifier: "unsatisfiable-rule",
	// "vacuous-negation", "unsatisfiable-constraint", "negation-cycle",
	// "unused-predicate", "singleton-variable".
	Code    string `json:"code"`
	Line    int    `json:"line,omitempty"`
	Rule    string `json:"rule,omitempty"` // source form of the offending rule
	Pred    string `json:"pred,omitempty"` // predicate the finding concerns
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	if d.Line > 0 {
		return fmt.Sprintf("line %d: %s [%s] %s", d.Line, d.Severity, d.Code, d.Message)
	}
	return fmt.Sprintf("%s [%s] %s", d.Severity, d.Code, d.Message)
}

// RuleInfo records the per-rule structural facts of the report: guard
// predicate, linearity (single positive body atom), and whether the rule
// introduces existentials or uses negation.
type RuleInfo struct {
	Idx         int    `json:"idx"`
	Line        int    `json:"line,omitempty"`
	Label       string `json:"label"`
	HeadPred    string `json:"head"`
	GuardPred   string `json:"guard"`
	Linear      bool   `json:"linear"`
	Existential bool   `json:"existential"`
	Negated     bool   `json:"negated"`
}

// Report is the full result of Analyze.
type Report struct {
	Rules       int `json:"rules"`
	Facts       int `json:"facts"`
	Preds       int `json:"preds"`
	Constraints int `json:"constraints,omitempty"`
	EGDs        int `json:"egds,omitempty"`

	// Stratified reports whether the program admits a stratification (in
	// which case the WFS is two-valued and coincides with the perfect
	// model).
	Stratified bool `json:"stratified"`

	// Classes lists the termination classes the program falls into, in
	// fixed order: "no-existentials", "guard-acyclic", "weakly-acyclic",
	// "jointly-acyclic". Any of them proves the guarded chase terminates.
	Classes []string `json:"classes,omitempty"`
	// Terminates reports that at least one class applies.
	Terminates bool `json:"terminates"`
	// Certificate carries the concrete depth bound when one exists
	// (guard-acyclic programs); nil otherwise — the other classes prove
	// termination but give no small static bound on forest depth.
	Certificate *Certificate `json:"certificate,omitempty"`

	// NegCycles lists the predicate components with a genuine negation
	// cycle — the predicates that force real well-founded evaluation
	// rather than a stratified least-fixpoint pass.
	NegCycles [][]string `json:"negation_cycles,omitempty"`

	Diagnostics []Diagnostic `json:"diagnostics,omitempty"`
	RuleInfo    []RuleInfo   `json:"rule_info,omitempty"`
}

// Errors returns the Error-severity diagnostics.
func (r *Report) Errors() []Diagnostic { return r.bySeverity(Error) }

// Warnings returns the Warning-severity diagnostics.
func (r *Report) Warnings() []Diagnostic { return r.bySeverity(Warning) }

func (r *Report) bySeverity(s Severity) []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diagnostics {
		if d.Severity == s {
			out = append(out, d)
		}
	}
	return out
}

// Counts returns the number of error, warning, and info diagnostics.
func (r *Report) Counts() (errors, warnings, infos int) {
	for _, d := range r.Diagnostics {
		switch d.Severity {
		case Error:
			errors++
		case Warning:
			warnings++
		default:
			infos++
		}
	}
	return
}

// HasErrors reports whether any Error-severity diagnostic was produced.
func (r *Report) HasErrors() bool {
	for _, d := range r.Diagnostics {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Analyze runs the full static pass over a compiled program: termination
// classification and certification over the rule set, and diagnostics
// against the EDB signature (db) and the query workload (queries mark
// their predicates as used). The pass is pure — it never mutates the
// program or interns into its store — and runs in time linear-ish in the
// program size, so load paths run it unconditionally.
func Analyze(prog *program.Program, db program.Database, queries []*program.Query) *Report {
	u := newUniverse(prog, db, queries)
	rep := &Report{
		Rules:       len(prog.Rules),
		Facts:       len(db),
		Preds:       len(u.preds),
		Constraints: len(prog.Constraints),
		EGDs:        len(prog.EGDs),
	}
	_, rep.Stratified = prog.Stratify()

	// Termination classes, cheapest first.
	noExist := true
	for _, r := range prog.Rules {
		if len(r.Exist) > 0 {
			noExist = false
			break
		}
	}
	if noExist {
		rep.Classes = append(rep.Classes, "no-existentials")
	}
	if cert := Certify(prog); cert != nil {
		rep.Classes = append(rep.Classes, "guard-acyclic")
		rep.Certificate = cert
	}
	if weaklyAcyclic(u) {
		rep.Classes = append(rep.Classes, "weakly-acyclic")
	}
	if jointlyAcyclic(u) {
		rep.Classes = append(rep.Classes, "jointly-acyclic")
	}
	rep.Terminates = len(rep.Classes) > 0

	rep.NegCycles = negationCycles(u)
	rep.Diagnostics = diagnose(u, rep.NegCycles)
	rep.RuleInfo = ruleInfo(u)
	return rep
}

// universe is the shared per-analysis view of the program: the referenced
// predicates with dense indexes, and the occurrence sets the individual
// passes consume.
type universe struct {
	prog    *program.Program
	db      program.Database
	queries []*program.Query

	preds   []atom.PredID        // dense index → PredID, sorted
	predIdx map[atom.PredID]int  // PredID → dense index
	edb     map[atom.PredID]bool // predicates with database facts
}

func newUniverse(prog *program.Program, db program.Database, queries []*program.Query) *universe {
	u := &universe{prog: prog, db: db, queries: queries,
		predIdx: make(map[atom.PredID]int), edb: make(map[atom.PredID]bool)}
	add := func(p atom.PredID) {
		if _, ok := u.predIdx[p]; !ok {
			u.predIdx[p] = -1 // dense index assigned after sorting
			u.preds = append(u.preds, p)
		}
	}
	addPats := func(pats []atom.Pattern) {
		for _, p := range pats {
			add(p.Pred)
		}
	}
	for _, r := range prog.Rules {
		add(r.Head.Pred)
		addPats(r.PosBody)
		addPats(r.NegBody)
	}
	for _, c := range prog.Constraints {
		addPats(c.PosBody)
		addPats(c.NegBody)
	}
	for _, e := range prog.EGDs {
		addPats(e.PosBody)
	}
	for _, a := range db {
		p := prog.Store.PredOf(a)
		add(p)
		u.edb[p] = true
	}
	for _, q := range queries {
		addPats(q.Pos)
		addPats(q.Neg)
	}
	sort.Slice(u.preds, func(i, j int) bool { return u.preds[i] < u.preds[j] })
	for i, p := range u.preds {
		u.predIdx[p] = i
	}
	return u
}

func (u *universe) name(p atom.PredID) string { return u.prog.Store.PredName(p) }

func (u *universe) sig(p atom.PredID) string {
	return fmt.Sprintf("%s/%d", u.prog.Store.PredName(p), u.prog.Store.PredArity(p))
}
