package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/atom"
)

// diagnose runs every diagnostic pass and returns the findings sorted by
// severity (errors first), then source line, then code — a stable order
// for golden tests and for rendering.
func diagnose(u *universe, negCycles [][]string) []Diagnostic {
	var out []Diagnostic
	out = append(out, supportDiagnostics(u)...)
	out = append(out, usageDiagnostics(u)...)
	out = append(out, singletonDiagnostics(u)...)
	for _, cyc := range negCycles {
		out = append(out, Diagnostic{
			Severity: Info,
			Code:     "negation-cycle",
			Pred:     cyc[0],
			Message: fmt.Sprintf("predicates {%s} form a negation cycle: genuine well-founded evaluation required (not reducible to a stratified least fixpoint)",
				strings.Join(cyc, ", ")),
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Severity != out[j].Severity {
			return out[i].Severity > out[j].Severity
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].Code < out[j].Code
	})
	return out
}

// supported computes the least fixpoint of derivability over the EDB
// signature: a predicate is supported when it has database facts, or
// some rule with an entirely-supported positive body derives it.
// Negative body literals never block support (they can only be true).
func supported(u *universe) map[atom.PredID]bool {
	sup := make(map[atom.PredID]bool, len(u.preds))
	for p := range u.edb {
		sup[p] = true
	}
	for changed := true; changed; {
		changed = false
		for _, r := range u.prog.Rules {
			if sup[r.Head.Pred] {
				continue
			}
			ok := true
			for _, b := range r.PosBody {
				if !sup[b.Pred] {
					ok = false
					break
				}
			}
			if ok {
				sup[r.Head.Pred] = true
				changed = true
			}
		}
	}
	return sup
}

// supportDiagnostics reports rules, constraints, and negative literals
// that the EDB signature makes unsatisfiable:
//
//   - a rule whose positive body mentions an unsupported predicate can
//     never fire — an Error, since the rule is dead weight and almost
//     always indicates a misspelled predicate or missing facts;
//   - a negative literal over an unsupported predicate is vacuously true
//     — a Warning (the author wrote a test that cannot fail);
//   - a constraint whose positive body mentions an unsupported predicate
//     can never be violated — a Warning.
func supportDiagnostics(u *universe) []Diagnostic {
	sup := supported(u)
	var out []Diagnostic
	for _, r := range u.prog.Rules {
		dead := false
		for _, b := range r.PosBody {
			if !sup[b.Pred] {
				dead = true
				out = append(out, Diagnostic{
					Severity: Error,
					Code:     "unsatisfiable-rule",
					Line:     r.Line,
					Rule:     r.Label,
					Pred:     u.name(b.Pred),
					Message: fmt.Sprintf("rule can never fire: predicate %s has no facts and no rule can derive it",
						u.sig(b.Pred)),
				})
				break // one finding per dead rule
			}
		}
		if dead {
			continue
		}
		for _, b := range r.NegBody {
			if !sup[b.Pred] {
				out = append(out, Diagnostic{
					Severity: Warning,
					Code:     "vacuous-negation",
					Line:     r.Line,
					Rule:     r.Label,
					Pred:     u.name(b.Pred),
					Message: fmt.Sprintf("negative literal is vacuously true: predicate %s has no facts and no rule can derive it",
						u.sig(b.Pred)),
				})
			}
		}
	}
	for _, c := range u.prog.Constraints {
		for _, b := range c.PosBody {
			if !sup[b.Pred] {
				out = append(out, Diagnostic{
					Severity: Warning,
					Code:     "unsatisfiable-constraint",
					Rule:     c.Label,
					Pred:     u.name(b.Pred),
					Message: fmt.Sprintf("constraint can never be violated: predicate %s has no facts and no rule can derive it",
						u.sig(b.Pred)),
				})
				break
			}
		}
	}
	return out
}

// usageDiagnostics reports head-only predicates: derived by some rule
// but never read — not in any rule body, constraint, EGD, or embedded
// query. Often fine (the program's outputs), hence Info.
func usageDiagnostics(u *universe) []Diagnostic {
	used := make(map[atom.PredID]bool)
	markPats := func(pats []atom.Pattern) {
		for _, p := range pats {
			used[p.Pred] = true
		}
	}
	for _, r := range u.prog.Rules {
		markPats(r.PosBody)
		markPats(r.NegBody)
	}
	for _, c := range u.prog.Constraints {
		markPats(c.PosBody)
		markPats(c.NegBody)
	}
	for _, e := range u.prog.EGDs {
		markPats(e.PosBody)
	}
	for _, q := range u.queries {
		markPats(q.Pos)
		markPats(q.Neg)
	}
	var out []Diagnostic
	seen := make(map[atom.PredID]bool)
	for _, r := range u.prog.Rules {
		h := r.Head.Pred
		if used[h] || seen[h] {
			continue
		}
		seen[h] = true
		out = append(out, Diagnostic{
			Severity: Info,
			Code:     "unused-predicate",
			Line:     r.Line,
			Pred:     u.name(h),
			Message: fmt.Sprintf("predicate %s is derived but never read (not in any rule body, constraint, or query)",
				u.sig(h)),
		})
	}
	return out
}

// singletonDiagnostics reports universally quantified variables that
// occur exactly once in a rule — legitimate as projection, but also the
// classic symptom of a typo'd variable name, hence Info.
func singletonDiagnostics(u *universe) []Diagnostic {
	var out []Diagnostic
	for _, r := range u.prog.Rules {
		numUniv := len(r.Univ)
		count := make([]int, r.NumVars)
		tally := func(pats []atom.Pattern) {
			for _, p := range pats {
				for _, a := range p.Args {
					if a.IsVar() {
						count[a.Var]++
					}
				}
			}
		}
		tally([]atom.Pattern{r.Head})
		tally(r.PosBody)
		tally(r.NegBody)
		var singles []string
		for v := 0; v < numUniv && v < len(r.VarNames); v++ {
			if count[v] == 1 {
				singles = append(singles, r.VarNames[v])
			}
		}
		if len(singles) > 0 {
			out = append(out, Diagnostic{
				Severity: Info,
				Code:     "singleton-variable",
				Line:     r.Line,
				Rule:     r.Label,
				Message: fmt.Sprintf("singleton variable%s %s (each occurs only once in the rule)",
					plural(len(singles)), strings.Join(singles, ", ")),
			})
		}
	}
	return out
}

func plural(n int) string {
	if n == 1 {
		return ""
	}
	return "s"
}

// ruleInfo records the per-rule structural facts.
func ruleInfo(u *universe) []RuleInfo {
	out := make([]RuleInfo, len(u.prog.Rules))
	for i, r := range u.prog.Rules {
		guard := ""
		if !r.IsFact() {
			guard = u.name(r.GuardAtom().Pred)
		}
		out[i] = RuleInfo{
			Idx:         r.Idx,
			Line:        r.Line,
			Label:       r.Label,
			HeadPred:    u.name(r.Head.Pred),
			GuardPred:   guard,
			Linear:      len(r.PosBody) == 1,
			Existential: len(r.Exist) > 0,
			Negated:     len(r.NegBody) > 0,
		}
	}
	return out
}
