package parser

import (
	"fmt"
	"unicode"
	"unicode/utf8"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokVar
	tokNumber
	tokString
	tokLParen
	tokRParen
	tokComma
	tokPeriod
	tokArrow
	tokNot
	tokQuestion
	tokEq
	tokFalse
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokVar:
		return "variable"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokPeriod:
		return "'.'"
	case tokArrow:
		return "'->'"
	case tokNot:
		return "'not'"
	case tokQuestion:
		return "'?'"
	case tokEq:
		return "'='"
	case tokFalse:
		return "'false'"
	default:
		return fmt.Sprintf("tok(%d)", int(k))
	}
}

type token struct {
	kind      tokKind
	text      string
	line, col int
}

type lexer struct {
	src       string
	pos       int
	line, col int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) errf(line, col int, format string, args ...any) *SyntaxError {
	return &SyntaxError{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekRune() (rune, int) {
	if l.pos >= len(l.src) {
		return 0, 0
	}
	return utf8.DecodeRuneInString(l.src[l.pos:])
}

func (l *lexer) advance(r rune, size int) {
	l.pos += size
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
}

func (l *lexer) skipSpaceAndComments() {
	for {
		r, size := l.peekRune()
		if size == 0 {
			return
		}
		switch {
		case unicode.IsSpace(r):
			l.advance(r, size)
		case r == '%' || r == '#':
			for {
				r, size = l.peekRune()
				if size == 0 || r == '\n' {
					break
				}
				l.advance(r, size)
			}
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '\''
}

// next returns the next token, or an error on malformed input.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	line, col := l.line, l.col
	r, size := l.peekRune()
	if size == 0 {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	switch {
	case r == '(':
		l.advance(r, size)
		return token{kind: tokLParen, text: "(", line: line, col: col}, nil
	case r == ')':
		l.advance(r, size)
		return token{kind: tokRParen, text: ")", line: line, col: col}, nil
	case r == ',':
		l.advance(r, size)
		return token{kind: tokComma, text: ",", line: line, col: col}, nil
	case r == '.':
		l.advance(r, size)
		return token{kind: tokPeriod, text: ".", line: line, col: col}, nil
	case r == '?':
		l.advance(r, size)
		return token{kind: tokQuestion, text: "?", line: line, col: col}, nil
	case r == '=':
		l.advance(r, size)
		return token{kind: tokEq, text: "=", line: line, col: col}, nil
	case r == '-':
		l.advance(r, size)
		r2, size2 := l.peekRune()
		if r2 != '>' {
			return token{}, l.errf(line, col, "expected '->' after '-'")
		}
		l.advance(r2, size2)
		return token{kind: tokArrow, text: "->", line: line, col: col}, nil
	case r == '"':
		l.advance(r, size)
		start := l.pos
		for {
			r2, size2 := l.peekRune()
			if size2 == 0 || r2 == '\n' {
				return token{}, l.errf(line, col, "unterminated string literal")
			}
			if r2 == '"' {
				text := l.src[start:l.pos]
				l.advance(r2, size2)
				return token{kind: tokString, text: text, line: line, col: col}, nil
			}
			l.advance(r2, size2)
		}
	case unicode.IsDigit(r):
		start := l.pos
		for {
			r2, size2 := l.peekRune()
			if size2 == 0 || !(unicode.IsDigit(r2) || r2 == '_') {
				break
			}
			l.advance(r2, size2)
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], line: line, col: col}, nil
	case isIdentStart(r):
		start := l.pos
		for {
			r2, size2 := l.peekRune()
			if size2 == 0 || !isIdentPart(r2) {
				break
			}
			l.advance(r2, size2)
		}
		text := l.src[start:l.pos]
		switch text {
		case "not":
			return token{kind: tokNot, text: text, line: line, col: col}, nil
		case "false":
			return token{kind: tokFalse, text: text, line: line, col: col}, nil
		}
		first, _ := utf8.DecodeRuneInString(text)
		if unicode.IsUpper(first) || first == '_' {
			return token{kind: tokVar, text: text, line: line, col: col}, nil
		}
		return token{kind: tokIdent, text: text, line: line, col: col}, nil
	default:
		return token{}, l.errf(line, col, "unexpected character %q", r)
	}
}
