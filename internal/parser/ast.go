// Package parser implements the surface syntax of guarded normal Datalog±
// programs, databases, and normal Boolean conjunctive queries (NBCQs).
//
// Syntax summary (one clause per statement, '.' terminated):
//
//	% line comment          # also a line comment
//	person(john).                          — fact
//	conferencePaper(X) -> article(X).      — TGD
//	scientist(X) -> isAuthorOf(X, Y).      — Y not in the body: existential
//	r(X,Y,Z), p(X,Y), not q(Z) -> p(X,Z).  — normal TGD (default negation)
//	emp(X), unemp(X) -> false.             — negative constraint (extension)
//	id(X,Y), id(X,Z) -> Y = Z.             — EGD (extension)
//	? isAuthorOf(john, X), not retracted(X).  — NBCQ
//
// Identifiers starting with an upper-case letter or '_' are variables;
// identifiers starting with a lower-case letter, numbers, and double-quoted
// strings are constants. Multi-atom heads are permitted and normalized by
// the program compiler.
package parser

import "fmt"

// Term is a parsed term: a constant or a variable.
type Term struct {
	Name  string
	IsVar bool
}

// Atom is a parsed atom. Zero-argument atoms are propositions.
type Atom struct {
	Pred string
	Args []Term
	Line int
	Col  int
}

// Literal is an atom, a default-negated atom, or (in queries only, §2.1)
// an equality between a variable and a term.
type Literal struct {
	Atom    Atom
	Negated bool
	// IsEq marks an equality literal EqLeft = EqRight; Atom is unused.
	// Equalities cannot be negated (CQs may contain equalities but no
	// inequalities, §2.1).
	IsEq            bool
	EqLeft, EqRight Term
}

// RuleKind distinguishes ordinary TGDs from the constraint extensions.
type RuleKind int

const (
	// KindTGD is a (normal) tuple-generating dependency; a TGD with an
	// empty body is a fact.
	KindTGD RuleKind = iota
	// KindConstraint is a negative constraint: body -> false.
	KindConstraint
	// KindEGD is an equality-generating dependency: body -> X = Y.
	KindEGD
)

// Rule is a parsed clause: a fact, a normal TGD, a negative constraint, or
// an EGD.
type Rule struct {
	Kind RuleKind
	Body []Literal
	Head []Atom // KindTGD: one or more atoms; empty for other kinds
	// EGD equality head (KindEGD only).
	EqLeft, EqRight Term
	Line            int
}

// IsFact reports whether the rule is a fact (TGD with empty body).
func (r *Rule) IsFact() bool { return r.Kind == KindTGD && len(r.Body) == 0 }

// Query is a parsed NBCQ.
type Query struct {
	Literals []Literal
	Line     int
}

// Unit is a parsed source unit: rules (including facts) and queries in
// source order.
type Unit struct {
	Rules   []*Rule
	Queries []*Query
}

// SyntaxError reports a lexical or syntactic error with position info.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("parse error at %d:%d: %s", e.Line, e.Col, e.Msg)
}
