package parser

import (
	"fmt"
	"strings"
)

type parser struct {
	lex *lexer
	tok token // lookahead
}

// Parse parses a source unit: any mixture of facts, rules, constraints,
// EGDs, and queries.
func Parse(src string) (*Unit, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.bump(); err != nil {
		return nil, err
	}
	unit := &Unit{}
	for p.tok.kind != tokEOF {
		if p.tok.kind == tokQuestion {
			q, err := p.parseQuery()
			if err != nil {
				return nil, err
			}
			unit.Queries = append(unit.Queries, q)
			continue
		}
		r, err := p.parseRule()
		if err != nil {
			return nil, err
		}
		unit.Rules = append(unit.Rules, r)
	}
	return unit, nil
}

// ParseQueryString parses a single NBCQ given with or without the leading
// '?' and optional trailing '.'.
func ParseQueryString(src string) (*Query, error) {
	s := strings.TrimSpace(src)
	if !strings.HasPrefix(s, "?") {
		s = "? " + s
	}
	if !strings.HasSuffix(s, ".") {
		s += "."
	}
	unit, err := Parse(s)
	if err != nil {
		return nil, err
	}
	if len(unit.Queries) != 1 || len(unit.Rules) != 0 {
		return nil, &SyntaxError{Line: 1, Col: 1, Msg: "expected exactly one query"}
	}
	return unit.Queries[0], nil
}

func (p *parser) bump() error {
	tok, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = tok
	return nil
}

func (p *parser) expect(kind tokKind) (token, error) {
	if p.tok.kind != kind {
		return token{}, p.errHere("expected %s, found %s", kind, p.describe())
	}
	t := p.tok
	if err := p.bump(); err != nil {
		return token{}, err
	}
	return t, nil
}

func (p *parser) describe() string {
	if p.tok.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%s %q", p.tok.kind, p.tok.text)
}

func (p *parser) errHere(format string, args ...any) *SyntaxError {
	return &SyntaxError{Line: p.tok.line, Col: p.tok.col, Msg: fmt.Sprintf(format, args...)}
}

// parseRule parses: literals [ '->' head ] '.'
// where head is 'false', an equality, or a conjunction of atoms.
func (p *parser) parseRule() (*Rule, error) {
	line := p.tok.line
	lits, err := p.parseLiterals()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokPeriod {
		// A fact (or conjunction of facts, which we reject for clarity).
		if err := p.bump(); err != nil {
			return nil, err
		}
		for _, l := range lits {
			if l.Negated {
				return nil, &SyntaxError{Line: line, Col: 1, Msg: "negated literal outside a rule body"}
			}
		}
		atoms := make([]Atom, len(lits))
		for i, l := range lits {
			atoms[i] = l.Atom
		}
		if len(atoms) != 1 {
			return nil, &SyntaxError{Line: line, Col: 1, Msg: "a fact must be a single atom (one per statement)"}
		}
		return &Rule{Kind: KindTGD, Head: atoms, Line: line}, nil
	}
	if _, err := p.expect(tokArrow); err != nil {
		return nil, err
	}
	r := &Rule{Body: lits, Line: line}
	switch p.tok.kind {
	case tokFalse:
		if err := p.bump(); err != nil {
			return nil, err
		}
		r.Kind = KindConstraint
	default:
		// Either an EGD (Var = Var) or a conjunction of head atoms.
		if p.tok.kind == tokVar {
			// Could be an EGD; peek for '='.
			v := p.tok
			if err := p.bump(); err != nil {
				return nil, err
			}
			if p.tok.kind == tokEq {
				if err := p.bump(); err != nil {
					return nil, err
				}
				rhs, err := p.parseTerm()
				if err != nil {
					return nil, err
				}
				r.Kind = KindEGD
				r.EqLeft = Term{Name: v.text, IsVar: true}
				r.EqRight = rhs
				break
			}
			return nil, &SyntaxError{Line: v.line, Col: v.col, Msg: "rule head must be an atom, 'false', or an equality"}
		}
		r.Kind = KindTGD
		for {
			a, err := p.parseAtom()
			if err != nil {
				return nil, err
			}
			r.Head = append(r.Head, a)
			if p.tok.kind != tokComma {
				break
			}
			if err := p.bump(); err != nil {
				return nil, err
			}
		}
	}
	if _, err := p.expect(tokPeriod); err != nil {
		return nil, err
	}
	return r, nil
}

func (p *parser) parseQuery() (*Query, error) {
	line := p.tok.line
	if _, err := p.expect(tokQuestion); err != nil {
		return nil, err
	}
	var lits []Literal
	for {
		lit, err := p.parseQueryLiteral()
		if err != nil {
			return nil, err
		}
		lits = append(lits, lit)
		if p.tok.kind != tokComma {
			break
		}
		if err := p.bump(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokPeriod); err != nil {
		return nil, err
	}
	return &Query{Literals: lits, Line: line}, nil
}

// parseQueryLiteral parses an atom, a negated atom, or an equality
// (Var = term or term = term); equalities cannot be negated (§2.1: CQs may
// contain equalities but no inequalities).
func (p *parser) parseQueryLiteral() (Literal, error) {
	neg := false
	if p.tok.kind == tokNot {
		neg = true
		if err := p.bump(); err != nil {
			return Literal{}, err
		}
	}
	// Variable or non-predicate term opens an equality.
	if p.tok.kind == tokVar || p.tok.kind == tokNumber || p.tok.kind == tokString {
		lhs, err := p.parseTerm()
		if err != nil {
			return Literal{}, err
		}
		if _, err := p.expect(tokEq); err != nil {
			return Literal{}, err
		}
		rhs, err := p.parseTerm()
		if err != nil {
			return Literal{}, err
		}
		if neg {
			return Literal{}, p.errHere("inequalities are not allowed in queries")
		}
		return Literal{IsEq: true, EqLeft: lhs, EqRight: rhs}, nil
	}
	a, err := p.parseAtom()
	if err != nil {
		return Literal{}, err
	}
	// A bare identifier followed by '=' is a constant equality.
	if len(a.Args) == 0 && p.tok.kind == tokEq {
		if err := p.bump(); err != nil {
			return Literal{}, err
		}
		rhs, err := p.parseTerm()
		if err != nil {
			return Literal{}, err
		}
		if neg {
			return Literal{}, p.errHere("inequalities are not allowed in queries")
		}
		return Literal{IsEq: true, EqLeft: Term{Name: a.Pred}, EqRight: rhs}, nil
	}
	return Literal{Atom: a, Negated: neg}, nil
}

func (p *parser) parseLiterals() ([]Literal, error) {
	var lits []Literal
	for {
		neg := false
		if p.tok.kind == tokNot {
			neg = true
			if err := p.bump(); err != nil {
				return nil, err
			}
		}
		a, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		lits = append(lits, Literal{Atom: a, Negated: neg})
		if p.tok.kind != tokComma {
			return lits, nil
		}
		if err := p.bump(); err != nil {
			return nil, err
		}
	}
}

func (p *parser) parseAtom() (Atom, error) {
	if p.tok.kind != tokIdent {
		return Atom{}, p.errHere("expected predicate name, found %s", p.describe())
	}
	a := Atom{Pred: p.tok.text, Line: p.tok.line, Col: p.tok.col}
	if err := p.bump(); err != nil {
		return Atom{}, err
	}
	if p.tok.kind != tokLParen {
		return a, nil // propositional atom
	}
	if err := p.bump(); err != nil {
		return Atom{}, err
	}
	if p.tok.kind == tokRParen {
		return Atom{}, p.errHere("empty argument list; write a propositional atom without parentheses")
	}
	for {
		t, err := p.parseTerm()
		if err != nil {
			return Atom{}, err
		}
		a.Args = append(a.Args, t)
		if p.tok.kind == tokRParen {
			if err := p.bump(); err != nil {
				return Atom{}, err
			}
			return a, nil
		}
		if _, err := p.expect(tokComma); err != nil {
			return Atom{}, err
		}
	}
}

func (p *parser) parseTerm() (Term, error) {
	switch p.tok.kind {
	case tokVar:
		t := Term{Name: p.tok.text, IsVar: true}
		return t, p.bump()
	case tokIdent, tokNumber, tokString:
		t := Term{Name: p.tok.text}
		return t, p.bump()
	default:
		return Term{}, p.errHere("expected a term, found %s", p.describe())
	}
}
