package parser

import (
	"errors"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) *Unit {
	t.Helper()
	u, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return u
}

func TestParseFact(t *testing.T) {
	u := parseOne(t, "person(john).")
	if len(u.Rules) != 1 || !u.Rules[0].IsFact() {
		t.Fatalf("expected one fact, got %+v", u.Rules)
	}
	a := u.Rules[0].Head[0]
	if a.Pred != "person" || len(a.Args) != 1 || a.Args[0].Name != "john" || a.Args[0].IsVar {
		t.Errorf("fact parsed wrong: %+v", a)
	}
}

func TestParsePropositionalFact(t *testing.T) {
	u := parseOne(t, "rain.")
	if len(u.Rules) != 1 || u.Rules[0].Head[0].Pred != "rain" || len(u.Rules[0].Head[0].Args) != 0 {
		t.Errorf("propositional fact parsed wrong")
	}
}

func TestParseRuleWithNegation(t *testing.T) {
	u := parseOne(t, "r(X,Y,Z), p(X,Y), not q(Z) -> p(X,Z).")
	r := u.Rules[0]
	if len(r.Body) != 3 || len(r.Head) != 1 {
		t.Fatalf("rule shape wrong: %+v", r)
	}
	if r.Body[2].Atom.Pred != "q" || !r.Body[2].Negated {
		t.Errorf("negated literal wrong: %+v", r.Body[2])
	}
	if !r.Body[0].Atom.Args[0].IsVar {
		t.Errorf("variable not recognized")
	}
}

func TestParseMultiHead(t *testing.T) {
	u := parseOne(t, "person(X) -> hasID(X, Y), idOf(Y, X).")
	if len(u.Rules[0].Head) != 2 {
		t.Errorf("multi-atom head not parsed: %+v", u.Rules[0].Head)
	}
}

func TestParseConstraint(t *testing.T) {
	u := parseOne(t, "emp(X), seeker(X) -> false.")
	if u.Rules[0].Kind != KindConstraint {
		t.Errorf("constraint kind = %v", u.Rules[0].Kind)
	}
}

func TestParseEGD(t *testing.T) {
	u := parseOne(t, "id(X,Y), id(X,Z) -> Y = Z.")
	r := u.Rules[0]
	if r.Kind != KindEGD || !r.EqLeft.IsVar || r.EqLeft.Name != "Y" || r.EqRight.Name != "Z" {
		t.Errorf("EGD parsed wrong: %+v", r)
	}
}

func TestParseQuery(t *testing.T) {
	u := parseOne(t, "? isAuthorOf(john, X), not retracted(X).")
	if len(u.Queries) != 1 {
		t.Fatalf("expected one query")
	}
	q := u.Queries[0]
	if len(q.Literals) != 2 || !q.Literals[1].Negated {
		t.Errorf("query literals wrong: %+v", q.Literals)
	}
}

func TestParseQueryString(t *testing.T) {
	for _, src := range []string{"p(X)", "p(X).", "? p(X).", "?p(X)"} {
		q, err := ParseQueryString(src)
		if err != nil {
			t.Errorf("ParseQueryString(%q): %v", src, err)
			continue
		}
		if len(q.Literals) != 1 || q.Literals[0].Atom.Pred != "p" {
			t.Errorf("ParseQueryString(%q) literals wrong", src)
		}
	}
}

func TestParseComments(t *testing.T) {
	u := parseOne(t, `
% a percent comment
p(a). # a hash comment
# full-line comment
q(b).
`)
	if len(u.Rules) != 2 {
		t.Errorf("comments broke parsing: %d rules", len(u.Rules))
	}
}

func TestParseNumbersAndStrings(t *testing.T) {
	u := parseOne(t, `p(0, 42, "Hello World", x_1).`)
	args := u.Rules[0].Head[0].Args
	want := []string{"0", "42", "Hello World", "x_1"}
	for i, w := range want {
		if args[i].Name != w || args[i].IsVar {
			t.Errorf("arg %d = %+v, want constant %q", i, args[i], w)
		}
	}
}

func TestVariableSpelling(t *testing.T) {
	u := parseOne(t, "p(X, Xyz, _under, lower) -> q(X).")
	args := u.Rules[0].Body[0].Atom.Args
	wantVar := []bool{true, true, true, false}
	for i, w := range wantVar {
		if args[i].IsVar != w {
			t.Errorf("arg %d IsVar = %v, want %v", i, args[i].IsVar, w)
		}
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantMsg string
	}{
		{"p(a)", "expected"},                // missing period
		{"p(a,).", "expected a term"},       // trailing comma
		{"p().", "empty argument list"},     // explicit empty args
		{"-> q(a).", "expected predicate"},  // empty body with arrow
		{"p(a) -> X.", "rule head"},         // head variable
		{`p("unterminated`, "unterminated"}, // bad string
		{"p(a) q(b).", "expected"},          // missing connective
		{"not p(a).", "negated literal"},    // bare negated fact
		{"p(a), q(a).", "single atom"},      // conjunction as statement
		{"p(a) - q(a).", "expected '->'"},   // bad arrow
		{"p(a) -> q(a)", "expected"},        // missing final period
		{"&", "unexpected character"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", c.src, c.wantMsg)
			continue
		}
		var se *SyntaxError
		if !errors.As(err, &se) {
			t.Errorf("Parse(%q) error is not a *SyntaxError: %v", c.src, err)
		}
		if !strings.Contains(err.Error(), c.wantMsg) {
			t.Errorf("Parse(%q) error %q does not mention %q", c.src, err, c.wantMsg)
		}
	}
}

func TestErrorPositions(t *testing.T) {
	_, err := Parse("p(a).\nq(b)\nr(c).")
	var se *SyntaxError
	if !errors.As(err, &se) {
		t.Fatalf("expected syntax error, got %v", err)
	}
	if se.Line != 3 {
		t.Errorf("error line = %d, want 3 (error discovered at 'r')", se.Line)
	}
}

// TestRoundTrip: parse → print → parse is a fixpoint (prints are stable and
// reparseable).
func TestRoundTrip(t *testing.T) {
	src := `
article(a1).
conferencePaper(X) -> article(X).
scientist(X) -> isAuthorOf(X, Y).
r(X,Y,Z), p(X,Y), not q(Z) -> p(X,Z).
emp(X), seeker(X) -> false.
id(X,Y), id(X,Z) -> Y = Z.
person(X) -> hasID(X, Y), idOf(Y, X).
p("Weird Constant", 42).
? isAuthorOf(john, X), not retracted(X).
`
	u1 := parseOne(t, src)
	printed := Format(u1)
	u2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse of %q: %v", printed, err)
	}
	printed2 := Format(u2)
	if printed != printed2 {
		t.Errorf("print-parse-print not stable:\n%s\nvs\n%s", printed, printed2)
	}
}

func TestFormatQuoting(t *testing.T) {
	for _, tc := range []struct{ name, want string }{
		{"john", "john"},
		{"Hello World", `"Hello World"`},
		{"42", "42"},
		{"4x", `"4x"`},
		{"not", `"not"`},
		{"false", `"false"`},
		{"Upper", `"Upper"`},
		{"", `""`},
	} {
		if got := FormatTerm(Term{Name: tc.name}); got != tc.want {
			t.Errorf("FormatTerm(%q) = %s, want %s", tc.name, got, tc.want)
		}
	}
}
