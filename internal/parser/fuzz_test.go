package parser

import "testing"

// FuzzParse checks the parser never panics and that accepted inputs
// round-trip stably through the printer.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"p(a).",
		"p(X) -> q(X, Y).",
		"r(X,Y,Z), p(X,Y), not q(Z) -> p(X,Z).",
		"emp(X), seeker(X) -> false.",
		"id(X,Y), id(X,Z) -> Y = Z.",
		"? p(X), not q(X), X = a.",
		`p("string const", 42, _Under).`,
		"% comment\np(a). # more",
		"?? broken",
		"p(a) -> q(a), r(a).",
		"not p(a).",
		"p(",
		"p(a)..",
		"?",
		"-> q.",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		u, err := Parse(src)
		if err != nil {
			return // rejected inputs just need to not panic
		}
		printed := Format(u)
		u2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printer emitted unparseable output %q for input %q: %v", printed, src, err)
		}
		if Format(u2) != printed {
			t.Fatalf("print-parse-print unstable for %q", src)
		}
	})
}

// FuzzParseQueryString covers the query-sugar entry point.
func FuzzParseQueryString(f *testing.F) {
	for _, seed := range []string{"p(X)", "? p(X).", "p(X), not q(X)", "X = Y, p(X, Y)"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := ParseQueryString(src)
		if err != nil {
			return
		}
		if len(q.Literals) == 0 {
			t.Fatalf("accepted query with no literals: %q", src)
		}
	})
}
