package parser

import (
	"strings"
	"testing"
)

func TestParseQueryEqualities(t *testing.T) {
	u := parseOne(t, "? p(X, Y), X = Y, Y = bob, 42 = X.")
	lits := u.Queries[0].Literals
	if len(lits) != 4 {
		t.Fatalf("literals = %d, want 4", len(lits))
	}
	if !lits[1].IsEq || !lits[1].EqLeft.IsVar || lits[1].EqLeft.Name != "X" ||
		!lits[1].EqRight.IsVar || lits[1].EqRight.Name != "Y" {
		t.Errorf("X = Y parsed wrong: %+v", lits[1])
	}
	if !lits[2].IsEq || lits[2].EqRight.IsVar || lits[2].EqRight.Name != "bob" {
		t.Errorf("Y = bob parsed wrong: %+v", lits[2])
	}
	if !lits[3].IsEq || lits[3].EqLeft.IsVar || lits[3].EqLeft.Name != "42" {
		t.Errorf("42 = X parsed wrong: %+v", lits[3])
	}
}

func TestParseConstantEqualityLHS(t *testing.T) {
	// A lower-case identifier followed by '=' is a constant equality, not
	// a propositional atom.
	u := parseOne(t, "? p(X), bob = X.")
	lits := u.Queries[0].Literals
	if !lits[1].IsEq || lits[1].EqLeft.IsVar || lits[1].EqLeft.Name != "bob" {
		t.Errorf("bob = X parsed wrong: %+v", lits[1])
	}
}

func TestInequalityRejected(t *testing.T) {
	_, err := Parse("? p(X), not X = Y.")
	if err == nil || !strings.Contains(err.Error(), "inequalities") {
		t.Errorf("negated equality accepted: %v", err)
	}
}

func TestEqualityOutsideQueryRejected(t *testing.T) {
	// Equalities in rule bodies are not part of the language.
	_, err := Parse("p(X), X = Y -> q(X).")
	if err == nil {
		t.Errorf("equality in rule body accepted by parser")
	}
}

func TestEqualityRoundTrip(t *testing.T) {
	src := "? p(X, Y), X = Y, Y = bob.\n"
	u := parseOne(t, src)
	printed := Format(u)
	u2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if Format(u2) != printed {
		t.Errorf("equality round-trip unstable: %q vs %q", printed, Format(u2))
	}
}
