package parser

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// FormatTerm renders a parsed term. Constants whose spelling would not
// re-lex as a constant (e.g. names starting with an upper-case letter)
// are quoted.
func FormatTerm(t Term) string {
	if t.IsVar {
		return t.Name
	}
	if needsQuotes(t.Name) {
		return `"` + t.Name + `"`
	}
	return t.Name
}

func needsQuotes(name string) bool {
	if name == "" || name == "not" || name == "false" {
		return true
	}
	first, _ := utf8.DecodeRuneInString(name)
	if unicode.IsDigit(first) {
		for _, r := range name {
			if !unicode.IsDigit(r) && r != '_' {
				return true
			}
		}
		return false
	}
	if !unicode.IsLower(first) {
		return true
	}
	for _, r := range name {
		if !isIdentPart(r) {
			return true
		}
	}
	return false
}

// FormatAtom renders a parsed atom.
func FormatAtom(a Atom) string {
	if len(a.Args) == 0 {
		return a.Pred
	}
	var b strings.Builder
	b.WriteString(a.Pred)
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(FormatTerm(t))
	}
	b.WriteByte(')')
	return b.String()
}

// FormatLiteral renders a parsed literal.
func FormatLiteral(l Literal) string {
	if l.IsEq {
		return FormatTerm(l.EqLeft) + " = " + FormatTerm(l.EqRight)
	}
	if l.Negated {
		return "not " + FormatAtom(l.Atom)
	}
	return FormatAtom(l.Atom)
}

// FormatRule renders a parsed rule in the surface syntax, including the
// terminating period.
func FormatRule(r *Rule) string {
	var b strings.Builder
	for i, l := range r.Body {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(FormatLiteral(l))
	}
	switch r.Kind {
	case KindTGD:
		if len(r.Body) > 0 {
			b.WriteString(" -> ")
		}
		for i, a := range r.Head {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(FormatAtom(a))
		}
	case KindConstraint:
		b.WriteString(" -> false")
	case KindEGD:
		b.WriteString(" -> ")
		b.WriteString(FormatTerm(r.EqLeft))
		b.WriteString(" = ")
		b.WriteString(FormatTerm(r.EqRight))
	}
	b.WriteByte('.')
	return b.String()
}

// FormatQuery renders a parsed query, including the leading '?' and the
// terminating period.
func FormatQuery(q *Query) string {
	var b strings.Builder
	b.WriteString("? ")
	for i, l := range q.Literals {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(FormatLiteral(l))
	}
	b.WriteByte('.')
	return b.String()
}

// Format renders a full unit, one statement per line, rules before queries
// in their original order.
func Format(u *Unit) string {
	var b strings.Builder
	for _, r := range u.Rules {
		b.WriteString(FormatRule(r))
		b.WriteByte('\n')
	}
	for _, q := range u.Queries {
		b.WriteString(FormatQuery(q))
		b.WriteByte('\n')
	}
	return b.String()
}
