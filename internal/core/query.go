package core

import (
	"fmt"
	"sort"

	"repro/internal/atom"
	"repro/internal/ground"
	"repro/internal/program"
	"repro/internal/term"
)

// Answer evaluates an NBCQ (§2.3) three-valuedly against the model:
//
//   - True: some homomorphism maps every positive literal to a true atom
//     and every negative literal to a false atom (¬µ(b) ∈ WFS);
//   - Undefined: not True, but some homomorphism keeps every positive
//     literal at least undefined and every negative literal at most
//     undefined (the query may hold in some completion);
//   - False: otherwise.
func (m *Model) Answer(q *program.Query) ground.Truth {
	if q.Unsat {
		return ground.False
	}
	if m.findHom(q.Pos, q.Neg, q.NumVars, true, nil) {
		return ground.True
	}
	if m.findHom(q.Pos, q.Neg, q.NumVars, false, nil) {
		return ground.Undefined
	}
	return ground.False
}

// Satisfies reports the certain (two-valued) answer: WFS(D,Σ) |= Q.
func (m *Model) Satisfies(q *program.Query) bool {
	return !q.Unsat && m.findHom(q.Pos, q.Neg, q.NumVars, true, nil)
}

// Select returns the certain answers of a non-Boolean query: the tuples of
// bindings for the query's variables (in VarNames order) under which the
// query certainly holds. Following §2.1, answers are tuples over the
// constants ∆ — homomorphisms mapping a variable to a labelled null are
// not answers. Tuples are deduplicated and ordered by the §2.1
// lexicographic term order.
func (m *Model) Select(q *program.Query) [][]term.ID {
	if q.Unsat {
		return nil
	}
	st := m.Chase.Prog.Store
	seen := map[string]bool{}
	var out [][]term.ID
	m.findHom(q.Pos, q.Neg, q.NumVars, true, func(sub atom.Subst) bool {
		tuple := make([]term.ID, q.NumVars)
		for i := 0; i < q.NumVars; i++ {
			t := sub[i]
			if t == term.None || st.Terms.Kind(t) != term.Const {
				return true // not a ∆-tuple; keep searching
			}
			tuple[i] = t
		}
		key := fmt.Sprint(tuple)
		if !seen[key] {
			seen[key] = true
			out = append(out, tuple)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if c := st.Terms.Compare(out[i][k], out[j][k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
	return out
}

// Bindings enumerates the homomorphisms under which the query certainly
// holds, invoking cb with the bound substitution; return false from cb to
// stop early. The substitution is reused across calls: copy it if kept.
func (m *Model) Bindings(q *program.Query, cb func(atom.Subst) bool) {
	m.findHom(q.Pos, q.Neg, q.NumVars, true, cb)
}

// findHom backtracks over the positive patterns, using the per-predicate
// truth indexes, then verifies negative patterns. In strict mode positive
// atoms must be true and negative atoms false; otherwise positive atoms
// must be at least undefined and negative atoms at most undefined.
// If cb is nil, findHom reports whether any homomorphism exists; otherwise
// it enumerates them until cb returns false.
func (m *Model) findHom(pos, neg []atom.Pattern, numVars int, strict bool, cb func(atom.Subst) bool) bool {
	m.buildIndexes()
	st := m.Chase.Prog.Store
	sub := atom.NewSubst(numVars)
	var trail []int32
	found := false

	checkNeg := func() bool {
		for _, p := range neg {
			a, ok := st.InstantiateLookup(p, sub)
			var t ground.Truth
			if !ok {
				t = ground.False // never derived: no forward proof
			} else {
				t = m.Truth(a)
			}
			if strict {
				if t != ground.False {
					return false
				}
			} else if t == ground.True {
				return false
			}
		}
		return true
	}

	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(pos) {
			if !checkNeg() {
				return true // keep searching
			}
			found = true
			if cb == nil {
				return false // stop: existence established
			}
			return cb(sub)
		}
		p := pos[i]
		var cands []atom.AtomID
		if strict {
			cands = m.truePerPred[p.Pred]
		} else {
			cands = m.posPerPred[p.Pred]
		}
		for _, a := range cands {
			mark := len(trail)
			if st.Match(p, a, sub, &trail) {
				if !rec(i + 1) {
					atom.Undo(sub, &trail, mark)
					return false
				}
				atom.Undo(sub, &trail, mark)
			}
		}
		return true
	}
	rec(0)
	return found
}
