package core

import (
	"fmt"
	"strings"

	"repro/internal/atom"
	"repro/internal/term"
)

// Violation reports a negative-constraint or EGD violation found in the
// model (the §5 future-work extensions: negative constraints and EGDs à
// la Calì et al. [1]).
type Violation struct {
	// Kind is "constraint" or "egd".
	Kind string
	// Clause is the violated clause's source form.
	Clause string
	// Certain distinguishes violations witnessed by true atoms from
	// possible violations witnessed through undefined atoms.
	Certain bool
	// Witness renders the violating homomorphism.
	Witness string
}

func (v Violation) String() string {
	mode := "possible"
	if v.Certain {
		mode = "certain"
	}
	return fmt.Sprintf("%s %s violation of %q with %s", mode, v.Kind, v.Clause, v.Witness)
}

// CheckConstraints evaluates every negative constraint and EGD of the
// program against the model and returns all violations. Negative
// constraints body -> false are violated by any homomorphism making the
// body true; EGDs body -> s = t are violated (under UNA) by any
// homomorphism making the body true with µ(s) ≠ µ(t), since distinct
// constants never unify and labelled nulls are distinct Skolem terms.
func (m *Model) CheckConstraints() []Violation {
	var out []Violation
	prog := m.Chase.Prog
	st := prog.Store
	for _, c := range prog.Constraints {
		for _, strict := range []bool{true, false} {
			strict := strict
			var found *Violation
			m.findHom(c.PosBody, c.NegBody, c.NumVars, strict, func(sub atom.Subst) bool {
				found = &Violation{
					Kind:    "constraint",
					Clause:  c.Label,
					Certain: strict,
					Witness: renderSubst(m, sub),
				}
				return false
			})
			if found != nil {
				out = append(out, *found)
				break // a certain violation subsumes the possible one
			}
		}
	}
	for _, e := range prog.EGDs {
		var found *Violation
		m.findHom(e.PosBody, nil, e.NumVars, true, func(sub atom.Subst) bool {
			l := argValue(e.Left, sub)
			r := argValue(e.Right, sub)
			if l != r {
				found = &Violation{
					Kind:    "egd",
					Clause:  e.Label,
					Certain: true,
					Witness: fmt.Sprintf("%s ≠ %s", st.Terms.String(l), st.Terms.String(r)),
				}
				return false
			}
			return true
		})
		if found != nil {
			out = append(out, *found)
		}
	}
	return out
}

func argValue(a atom.PArg, sub atom.Subst) term.ID {
	if a.IsVar() {
		return sub[a.Var]
	}
	return a.Const
}

func renderSubst(m *Model, sub atom.Subst) string {
	st := m.Chase.Prog.Store
	var parts []string
	for i, t := range sub {
		if t != term.None {
			parts = append(parts, fmt.Sprintf("?%d=%s", i, st.Terms.String(t)))
		}
	}
	if len(parts) == 0 {
		return "{}"
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Consistent reports whether the model violates no constraint certainly.
func (m *Model) Consistent() bool {
	for _, v := range m.CheckConstraints() {
		if v.Certain {
			return false
		}
	}
	return true
}
