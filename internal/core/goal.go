package core

import (
	"repro/internal/atom"
	"repro/internal/chase"
	"repro/internal/ground"
	"repro/internal/program"
)

// GoalStats reports the work done by the fully goal-directed check.
type GoalStats struct {
	// RelevantPreds / TotalPreds: predicate-level dependency closure of
	// the goal vs the schema.
	RelevantPreds, TotalPreds int
	// RelevantRules / TotalRules: rules kept for the restricted chase.
	RelevantRules, TotalRules int
	// ChasedAtoms: universe of the restricted chase.
	ChasedAtoms int
	// ClosureAtoms: the atom-level dependency closure actually solved.
	ClosureAtoms int
}

// RelevantPredicates computes the predicate-level dependency closure of
// the goal predicates: starting from them, every predicate occurring
// (positively or negatively) in the body of a rule whose head predicate is
// relevant is itself relevant. By the relevance property of the WFS, the
// truth of a goal atom depends only on atoms over these predicates, so the
// chase may be restricted to rules with relevant heads (the deterministic
// counterpart of WCHECK's path exploration at the schema level).
func RelevantPredicates(prog *program.Program, goals []atom.PredID) map[atom.PredID]bool {
	relevant := make(map[atom.PredID]bool, len(goals))
	queue := append([]atom.PredID(nil), goals...)
	for _, g := range goals {
		relevant[g] = true
	}
	// Index rules by head predicate once.
	byHead := make(map[atom.PredID][]*program.Rule)
	for _, r := range prog.Rules {
		byHead[r.Head.Pred] = append(byHead[r.Head.Pred], r)
	}
	for len(queue) > 0 {
		p := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, r := range byHead[p] {
			for _, b := range r.PosBody {
				if !relevant[b.Pred] {
					relevant[b.Pred] = true
					queue = append(queue, b.Pred)
				}
			}
			for _, b := range r.NegBody {
				if !relevant[b.Pred] {
					relevant[b.Pred] = true
					queue = append(queue, b.Pred)
				}
			}
		}
	}
	return relevant
}

// RestrictToPredicates returns a program containing only the rules whose
// head predicate is in keep, and the sub-database over kept predicates.
// Constraints and EGDs are dropped: goal-directed checking is about
// membership, not consistency.
func RestrictToPredicates(prog *program.Program, db program.Database, keep map[atom.PredID]bool) (*program.Program, program.Database) {
	sub := &program.Program{Store: prog.Store}
	for _, r := range prog.Rules {
		if keep[r.Head.Pred] {
			sub.Rules = append(sub.Rules, r)
		}
	}
	sub.IndexGuards()
	var subDB program.Database
	for _, a := range db {
		if keep[prog.Store.PredOf(a)] {
			subDB = append(subDB, a)
		}
	}
	return sub, subDB
}

// WCheckGoalDirected decides membership of a ground atom in WFS(D, Σ)
// without ever materializing the full model: it restricts Σ and D to the
// goal's predicate-relevance closure, chases only that fragment, and then
// solves the goal's atom-level dependency closure. This is the end-to-end
// realization of the paper's WCHECK idea (§4): all three stages —
// instance generation, grounding, and fixpoint — are confined to what can
// reach the goal.
func WCheckGoalDirected(prog *program.Program, db program.Database, goal atom.AtomID, opts Options) (ground.Truth, *GoalStats) {
	opts = opts.withDefaults()
	st := prog.Store
	stats := &GoalStats{TotalPreds: st.NumPreds(), TotalRules: len(prog.Rules)}

	keep := RelevantPredicates(prog, []atom.PredID{st.PredOf(goal)})
	stats.RelevantPreds = len(keep)
	sub, subDB := RestrictToPredicates(prog, db, keep)
	stats.RelevantRules = len(sub.Rules)

	res := chase.Run(sub, subDB, chase.Options{MaxDepth: opts.Depth, MaxAtoms: opts.MaxAtoms})
	stats.ChasedAtoms = len(res.Atoms)
	gp := ground.FromChase(res)
	m := &Model{Chase: res, GP: gp, GM: ground.AlternatingFixpoint(gp), UsableDepth: -1}
	truth, ws := m.WCheck(goal)
	stats.ClosureAtoms = ws.ClosureAtoms
	return truth, stats
}
