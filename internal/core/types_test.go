package core

import (
	"strings"
	"testing"

	"repro/internal/term"
)

// TestTypesChainPeriodicity checks the §3 locality insight on Example 4:
// the R-chain atoms R(0,t_i,t_{i+1}) for i ≥ 1 all have pairwise
// ∅-isomorphic types (their local truth environment is the same up to
// renaming of nulls) — the periodicity that makes the type space finite
// and drives Lemma 11 / Proposition 12.
func TestTypesChainPeriodicity(t *testing.T) {
	prog, db, _, st := compile(t, example4)
	m := NewEngine(prog, db, Options{Depth: 12}).Evaluate()

	c0 := st.Terms.Const("0")
	c1 := st.Terms.Const("1")
	sk := prog.Rules[0].Exist[0].Fn
	ts := []term.ID{c0, c1}
	for i := 2; i < 8; i++ {
		ts = append(ts, st.Terms.Skolem(sk, []term.ID{c0, ts[i-2], ts[i-1]}))
	}
	rp, _ := st.LookupPred("r")
	r12 := st.Atom(rp, []term.ID{c0, ts[1], ts[2]})
	r23 := st.Atom(rp, []term.ID{c0, ts[2], ts[3]})
	r34 := st.Atom(rp, []term.ID{c0, ts[3], ts[4]})
	r45 := st.Atom(rp, []term.ID{c0, ts[4], ts[5]})
	// Periodicity sets in once the domain contains only the constant 0
	// and two nulls: from R(0,t2,t3) on, all chain types are isomorphic.
	if !m.TypesIsomorphic(r23, r34) {
		t.Errorf("types of R(0,t2,t3) and R(0,t3,t4) not isomorphic:\n%s\n%s",
			m.TypeOf(r23).String(st), m.TypeOf(r34).String(st))
	}
	if !m.TypesIsomorphic(r34, r45) {
		t.Errorf("types of R(0,t3,t4) and R(0,t4,t5) not isomorphic")
	}
	// R(0,t1,t2) is different: t1 = 1 is a database constant, so the
	// root literal r(0,0,1) (and ¬q(1)) lies inside its domain — its
	// local environment is genuinely richer.
	if m.TypesIsomorphic(r12, r23) {
		t.Errorf("type of R(0,t1,t2) unexpectedly isomorphic to a deep chain member")
	}
	// Likewise the root fact itself.
	r01 := st.Atom(rp, []term.ID{c0, ts[0], ts[1]})
	if m.TypesIsomorphic(r01, r23) {
		t.Errorf("type of the root R(0,0,1) unexpectedly isomorphic to a chain member")
	}
}

func TestTypesXIsomorphismPinsTerms(t *testing.T) {
	prog, db, _, st := compile(t, example4)
	m := NewEngine(prog, db, Options{Depth: 10}).Evaluate()
	c0 := st.Terms.Const("0")
	c1 := st.Terms.Const("1")
	sk := prog.Rules[0].Exist[0].Fn
	t2 := st.Terms.Skolem(sk, []term.ID{c0, c0, c1})
	t3 := st.Terms.Skolem(sk, []term.ID{c0, c1, t2})
	t4 := st.Terms.Skolem(sk, []term.ID{c0, t2, t3})
	rp, _ := st.LookupPred("r")
	r12 := st.Atom(rp, []term.ID{c0, c1, t2})
	r23 := st.Atom(rp, []term.ID{c0, t2, t3})
	r34 := st.Atom(rp, []term.ID{c0, t3, t4})

	// Pinning the shared constant 0 keeps chain types isomorphic…
	if !m.TypesXIsomorphic(r23, r34, []term.ID{c0}) {
		t.Errorf("{0}-isomorphism of chain types failed")
	}
	// …but pinning t2 forces t2 ↦ t2, which is impossible between
	// R(0,t1,t2) and R(0,t3,t4) where t2 does not occur on the right.
	if m.TypesXIsomorphic(r12, r34, []term.ID{t2}) {
		t.Errorf("{t2}-isomorphism should fail when t2 cannot be fixed")
	}
}

func TestTypesDifferentPredicatesNotIsomorphic(t *testing.T) {
	prog, db, _, st := compile(t, "p(a). q(a).")
	m := NewEngine(prog, db, Options{}).Evaluate()
	pp, _ := st.LookupPred("p")
	qp, _ := st.LookupPred("q")
	ca := st.Terms.Const("a")
	pa := st.Atom(pp, []term.ID{ca})
	qa := st.Atom(qp, []term.ID{ca})
	if m.TypesIsomorphic(pa, qa) {
		t.Errorf("p(a) and q(a) types isomorphic")
	}
	// Reflexivity.
	if !m.TypesIsomorphic(pa, pa) {
		t.Errorf("type not isomorphic to itself")
	}
}

func TestTypeOfContents(t *testing.T) {
	prog, db, _, st := compile(t, `
p(a). q(a). r(a,b).
p(X), not s(X) -> u(X).
`)
	m := NewEngine(prog, db, Options{}).Evaluate()
	pp, _ := st.LookupPred("p")
	ca := st.Terms.Const("a")
	pa := st.Atom(pp, []term.ID{ca})
	ty := m.TypeOf(pa)
	rendered := ty.String(st)
	// dom(p(a)) = {a}: the type contains p(a), q(a), u(a) (true) and
	// ¬s(a) (false, in the universe via the rule's negative body), but
	// not r(a,b) (b ∉ dom).
	for _, want := range []string{"p(a)", "q(a)", "u(a)", "¬s(a)"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("type missing %s: %s", want, rendered)
		}
	}
	if strings.Contains(rendered, "r(a,b)") {
		t.Errorf("type leaked literal outside dom(a): %s", rendered)
	}
}
