package core

import (
	"math/big"

	"repro/internal/atom"
	"repro/internal/program"
)

// Delta computes the Proposition 12 bound
//
//	δ = 2 · |R| · (2w)^w · 2^(|R| · (2w)^w)
//
// for a schema with numPreds relation names and maximum arity maxArity.
// If an NBCQ with n literals holds in the well-founded model, some
// homomorphism matches it within depth n·δ of the chase forest. The value
// is astronomically large for all but degenerate schemas (that is the
// point of exposing it: experiment E8 contrasts it with the tiny depths at
// which real programs stabilize), so it is returned as a big.Int.
func Delta(numPreds, maxArity int) *big.Int {
	r := big.NewInt(int64(numPreds))
	if maxArity < 1 {
		maxArity = 1
	}
	w := int64(maxArity)
	// (2w)^w
	tw := new(big.Int).Exp(big.NewInt(2*w), big.NewInt(w), nil)
	// |R| · (2w)^w
	exp := new(big.Int).Mul(r, tw)
	// 2^(|R|·(2w)^w); cap the exponent to keep this total even for
	// adversarial schemas — beyond 1<<20 bits the magnitude is the answer.
	const maxBits = 1 << 20
	var pow *big.Int
	if exp.IsInt64() && exp.Int64() <= maxBits {
		pow = new(big.Int).Lsh(big.NewInt(1), uint(exp.Int64()))
	} else {
		pow = new(big.Int).Lsh(big.NewInt(1), maxBits) // lower bound; already unusable
	}
	d := new(big.Int).Mul(big.NewInt(2), r)
	d.Mul(d, tw)
	d.Mul(d, pow)
	return d
}

// DeltaForSchema computes δ from an atom store's interned schema.
func DeltaForSchema(st *atom.Store) *big.Int {
	return Delta(st.NumPreds(), st.MaxArity())
}

// QueryDepthBound returns the Proposition 12 sufficient chase depth n·δ
// for answering query q against the schema of st.
func QueryDepthBound(q *program.Query, st *atom.Store) *big.Int {
	n := int64(len(q.Pos) + len(q.Neg))
	return new(big.Int).Mul(big.NewInt(n), DeltaForSchema(st))
}

// GuaranteedDepth reports whether the Proposition 12 bound for q is small
// enough to materialize directly (at most maxDepth), and if so its value.
// When true, evaluating at that depth answers q with the paper's full
// guarantee rather than via stabilization.
func GuaranteedDepth(q *program.Query, st *atom.Store, maxDepth int) (int, bool) {
	b := QueryDepthBound(q, st)
	if b.IsInt64() && b.Int64() <= int64(maxDepth) {
		return int(b.Int64()), true
	}
	return 0, false
}
