package core

import (
	"testing"

	"repro/internal/atom"
	"repro/internal/ground"
	"repro/internal/program"
	"repro/internal/term"
)

// example4 is the paper's Example 4 program (given there in Σf form; here
// in TGD form so the compiler performs the functional transformation):
//
//	R(X,Y,Z) → ∃W R(X,Z,W)
//	R(X,Y,Z) ∧ P(X,Y) ∧ ¬Q(Z) → P(X,Z)
//	R(X,Y,Z) ∧ ¬P(X,Y) → Q(Z)
//	R(X,Y,Z) ∧ ¬P(X,Z) → S(X)
//	P(X,Y) ∧ ¬S(X) → T(X)
//
// with D = {R(0,0,1), P(0,0)}.
const example4 = `
r(0,0,1).
p(0,0).
r(X,Y,Z) -> r(X,Z,W).
r(X,Y,Z), p(X,Y), not q(Z) -> p(X,Z).
r(X,Y,Z), not p(X,Y) -> q(Z).
r(X,Y,Z), not p(X,Z) -> s(X).
p(X,Y), not s(X) -> t(X).
`

func compile(t *testing.T, src string) (*program.Program, program.Database, []*program.Query, *atom.Store) {
	t.Helper()
	st := atom.NewStore(term.NewStore())
	prog, db, qs, err := program.CompileText(src, st)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog, db, qs, st
}

// mustAtom interns a ground atom from constants already in the store.
func mustAtom(t *testing.T, st *atom.Store, pred string, args ...term.ID) atom.AtomID {
	t.Helper()
	p, ok := st.LookupPred(pred)
	if !ok {
		t.Fatalf("unknown predicate %s", pred)
	}
	return st.Atom(p, args)
}

func TestExample4PaperLiterals(t *testing.T) {
	prog, db, _, st := compile(t, example4)
	e := NewEngine(prog, db, Options{Depth: 10})
	m := e.Evaluate()

	c0 := st.Terms.Const("0")
	c1 := st.Terms.Const("1")

	// t_0=0, t_1=1, t_{i+2}=f(0,t_i,t_{i+1}) (Example 9).
	sk := prog.Rules[0].Exist[0].Fn
	ts := []term.ID{c0, c1}
	for i := 2; i < 8; i++ {
		ts = append(ts, st.Terms.Skolem(sk, []term.ID{c0, ts[i-2], ts[i-1]}))
	}

	// WFS(D,Σ) includes R(0,1,f(0,0,1)) and P(0,1) (Example 4).
	if got := m.Truth(mustAtom(t, st, "r", c0, c1, ts[2])); got != ground.True {
		t.Errorf("R(0,1,f(0,0,1)) = %v, want true", got)
	}
	if got := m.Truth(mustAtom(t, st, "p", c0, c1)); got != ground.True {
		t.Errorf("P(0,1) = %v, want true", got)
	}
	// ¬Q(1) ∈ WFS (Example 4: no rule can derive R(*,*,1), and
	// P(0,0) ∈ D blocks the only candidate instance).
	if got := m.Truth(mustAtom(t, st, "q", c1)); got != ground.False {
		t.Errorf("Q(1) = %v, want false", got)
	}
	// Example 9: every P(0,t_j) true, every Q(t_j) false (j ≥ 1),
	// ¬S(0) and T(0) in WFS — the ŴP,ω+2 content.
	for j := 0; j <= 5; j++ {
		if got := m.Truth(mustAtom(t, st, "p", c0, ts[j])); got != ground.True {
			t.Errorf("P(0,t_%d) = %v, want true", j, got)
		}
	}
	for j := 1; j <= 5; j++ {
		if got := m.Truth(mustAtom(t, st, "q", ts[j])); got != ground.False {
			t.Errorf("Q(t_%d) = %v, want false", j, got)
		}
	}
	if got := m.Truth(mustAtom(t, st, "s", c0)); got != ground.False {
		t.Errorf("S(0) = %v, want false", got)
	}
	if got := m.Truth(mustAtom(t, st, "t", c0)); got != ground.True {
		t.Errorf("T(0) = %v, want true", got)
	}
}

func TestExample4AllAlgorithmsAgree(t *testing.T) {
	prog, db, _, _ := compile(t, example4)
	var models []*Model
	for _, alg := range []Algorithm{AltFixpoint, UnfoundedSets, ForwardProofs} {
		e := NewEngine(prog, db, Options{Depth: 8, Algorithm: alg})
		models = append(models, e.Evaluate())
	}
	for i := 1; i < len(models); i++ {
		if !models[0].GM.Equal(models[i].GM) {
			t.Errorf("algorithm %v disagrees with alternating fixpoint", Algorithm(i))
		}
	}
}

func TestExample4QueryAnswers(t *testing.T) {
	prog, db, _, st := compile(t, example4)
	e := NewEngine(prog, db, Options{})

	for _, tc := range []struct {
		q    string
		want ground.Truth
	}{
		{"? t(X).", ground.True},
		{"? p(0, X), not q(X).", ground.True},
		{"? s(X).", ground.False},
		{"? t(X), not s(X).", ground.True},
		{"? q(X).", ground.False},
		{"? r(X, Y, Z), not p(X, Z).", ground.False},
	} {
		q, err := program.ParseQuery(tc.q, st)
		if err != nil {
			t.Fatalf("parse %q: %v", tc.q, err)
		}
		got, stats, err := e.Answer(q)
		if err != nil {
			t.Fatalf("%s: %v", tc.q, err)
		}
		if got != tc.want {
			t.Errorf("%s = %v, want %v (stats %+v)", tc.q, got, tc.want, stats)
		}
		if !stats.Stable && !stats.Exact {
			t.Errorf("%s: answer did not stabilize: %+v", tc.q, stats)
		}
	}
}

// TestExample4IterationGrowth checks the finite shadow of Example 9's
// transfinite iteration: the number of fixpoint rounds grows with the
// chase depth (the computation does not close at any fixed stage), while
// the answers stay stable.
func TestExample4IterationGrowth(t *testing.T) {
	prog, db, _, st := compile(t, example4)
	c0 := st.Terms.Const("0")
	prev := 0
	grew := 0
	for _, d := range []int{4, 8, 12, 16} {
		e := NewEngine(prog, db, Options{Depth: d})
		m := e.Evaluate()
		if got := m.Truth(mustAtom(t, st, "t", c0)); got != ground.True {
			t.Fatalf("depth %d: T(0) = %v, want true", d, got)
		}
		if m.GM.Rounds > prev {
			grew++
		}
		prev = m.GM.Rounds
	}
	if grew < 3 {
		t.Errorf("fixpoint rounds did not grow with depth (transfinite shadow missing)")
	}
}

func TestWinMoveThreeValued(t *testing.T) {
	// The classic WFS example: win(X) ← move(X,Y), ¬win(Y).
	// Chain a→b→c: win(b) (moves to dead-end c), ¬win(c), win(a)?
	// a moves to b which is won ⇒ a's only move is to a winning
	// position: win(a) false. Cycle d↔e: undefined.
	src := `
move(a,b). move(b,c). move(d,e). move(e,d).
move(X,Y), not win(Y) -> win(X).
`
	prog, db, _, st := compile(t, src)
	e := NewEngine(prog, db, Options{})
	m := e.Evaluate()
	if !m.Exact {
		t.Fatalf("win-move chase should saturate (no existentials)")
	}
	want := map[string]ground.Truth{
		"a": ground.False,
		"b": ground.True,
		"c": ground.False,
		"d": ground.Undefined,
		"e": ground.Undefined,
	}
	for name, tv := range want {
		c := st.Terms.Const(name)
		if got := m.Truth(mustAtom(t, st, "win", c)); got != tv {
			t.Errorf("win(%s) = %v, want %v", name, got, tv)
		}
	}
}

func TestUNASkolemDistinctness(t *testing.T) {
	// Two different existential rules produce distinct nulls; under UNA
	// they never coincide with each other or with constants.
	src := `
person(a).
person(X) -> id1(X, Y).
person(X) -> id2(X, Y).
`
	prog, db, _, st := compile(t, src)
	e := NewEngine(prog, db, Options{})
	m := e.Evaluate()
	ca := st.Terms.Const("a")
	f1 := prog.Rules[0].Exist[0].Fn
	f2 := prog.Rules[1].Exist[0].Fn
	n1 := st.Terms.Skolem(f1, []term.ID{ca})
	n2 := st.Terms.Skolem(f2, []term.ID{ca})
	if n1 == n2 {
		t.Fatalf("distinct Skolem functors produced the same term")
	}
	if st.Terms.Compare(n1, n2) == 0 {
		t.Fatalf("distinct nulls compare equal")
	}
	if got := m.Truth(mustAtom(t, st, "id1", ca, n1)); got != ground.True {
		t.Errorf("id1(a, f1(a)) = %v, want true", got)
	}
	if got := m.Truth(mustAtom(t, st, "id1", ca, n2)); got != ground.False {
		t.Errorf("id1(a, f2(a)) = %v, want false (UNA)", got)
	}
}

func TestWCheckAgreesWithSaturation(t *testing.T) {
	prog, db, _, _ := compile(t, example4)
	e := NewEngine(prog, db, Options{Depth: 8})
	m := e.Evaluate()
	for i, g := range m.GP.Atoms {
		want := m.GM.Truth[i]
		got, _ := m.WCheck(g)
		if got != want {
			t.Errorf("WCheck(%s) = %v, saturated = %v",
				prog.Store.String(g), got, want)
		}
	}
}

func TestWCheckClosureSmallerOnDisconnectedGraph(t *testing.T) {
	src := `
move(a,b). move(b,c).
move(x1,x2). move(x2,x3). move(x3,x4). move(x4,x5).
move(y1,y2). move(y2,y1).
move(X,Y), not win(Y) -> win(X).
`
	prog, db, _, st := compile(t, src)
	e := NewEngine(prog, db, Options{})
	m := e.Evaluate()
	cb := st.Terms.Const("b")
	goal := mustAtom(t, st, "win", cb)
	truth, stats := m.WCheck(goal)
	if truth != ground.True {
		t.Fatalf("win(b) = %v, want true", truth)
	}
	if stats.ClosureAtoms >= stats.TotalAtoms {
		t.Errorf("goal-directed closure (%d atoms) not smaller than universe (%d)",
			stats.ClosureAtoms, stats.TotalAtoms)
	}
}

func TestDeltaBound(t *testing.T) {
	// δ = 2·|R|·(2w)^w·2^(|R|·(2w)^w): for |R|=1, w=1 this is
	// 2·1·2·2^2 = 16.
	if got := Delta(1, 1); got.Int64() != 16 {
		t.Errorf("Delta(1,1) = %v, want 16", got)
	}
	// For |R|=5, w=2 the exponent is 5·16=80: δ = 2·5·16·2^80.
	d := Delta(5, 2)
	if d.BitLen() < 80 {
		t.Errorf("Delta(5,2) unexpectedly small: %v", d)
	}
}

func TestConstraintAndEGDChecking(t *testing.T) {
	src := `
emp(a). seeker(a). id(a, k1). id(a, k2).
emp(X), seeker(X) -> false.
id(X, Y), id(X, Z) -> Y = Z.
`
	prog, db, _, _ := compile(t, src)
	e := NewEngine(prog, db, Options{})
	m := e.Evaluate()
	vs := m.CheckConstraints()
	var kinds []string
	for _, v := range vs {
		kinds = append(kinds, v.Kind)
	}
	if len(vs) != 2 {
		t.Fatalf("got %d violations (%v), want 2", len(vs), kinds)
	}
	if m.Consistent() {
		t.Errorf("model reported consistent despite certain violations")
	}
}

func TestAnswerExactOnFiniteChase(t *testing.T) {
	src := `
edge(a,b). edge(b,c). start(a).
start(X) -> reach(X).
reach(X), edge(X,Y) -> reach(Y).
`
	prog, db, _, st := compile(t, src)
	e := NewEngine(prog, db, Options{})
	q, err := program.ParseQuery("? reach(c).", st)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := e.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if got != ground.True {
		t.Errorf("reach(c) = %v, want true", got)
	}
	if !stats.Exact {
		t.Errorf("finite chase should produce an exact answer: %+v", stats)
	}
}
