package core

import (
	"repro/internal/atom"
	"repro/internal/ground"
)

// WCheckStats reports how much of the program a goal-directed check
// touched.
type WCheckStats struct {
	// ClosureAtoms and ClosureRules measure the goal's dependency-closed
	// fragment; TotalAtoms and TotalRules the full bounded grounding.
	ClosureAtoms, ClosureRules int
	TotalAtoms, TotalRules     int
}

// WCheck decides membership of a ground atom in the well-founded model
// goal-directedly, realizing the paper's WCHECK (§4) deterministically.
//
// The paper's alternating procedure guesses a path from a root of F+(P) to
// the goal and verifies all side literals via subcomputations; the
// deterministic mirror of "only what is reachable from the goal matters"
// is the relevance property of the WFS: the truth of a depends only on the
// atoms reachable from a in the dependency graph of ground(P) (through
// positive and negative body atoms alike). WCheck therefore restricts the
// bounded grounding to the goal's dependency closure and runs the
// alternating fixpoint on that fragment only.
func (m *Model) WCheck(goal atom.AtomID) (ground.Truth, *WCheckStats) {
	gp := m.GP
	stats := &WCheckStats{TotalAtoms: gp.NumAtoms(), TotalRules: len(gp.Rules)}
	g := gp.Local(goal)
	if g < 0 {
		// Not in the derived universe: no forward proof within the
		// bound, hence false (Definition 5 commentary).
		return ground.False, stats
	}

	// Dependency closure: atoms reachable from the goal via "head → body
	// atom" edges; rules contributing are those whose head is reachable.
	reach := make(map[int32]int32) // global-local → closure-local
	order := []int32{g}
	reach[g] = 0
	var rules []ground.Rule
	for i := 0; i < len(order); i++ {
		a := order[i]
		for _, ri := range gp.RulesFor(a) {
			r := gp.Rules[ri]
			nr := ground.Rule{Head: reach[a]}
			for _, b := range r.Pos {
				nb, ok := reach[b]
				if !ok {
					nb = int32(len(order))
					reach[b] = nb
					order = append(order, b)
				}
				nr.Pos = append(nr.Pos, nb)
			}
			for _, b := range r.Neg {
				nb, ok := reach[b]
				if !ok {
					nb = int32(len(order))
					reach[b] = nb
					order = append(order, b)
				}
				nr.Neg = append(nr.Neg, nb)
			}
			rules = append(rules, nr)
		}
	}
	stats.ClosureAtoms = len(order)
	stats.ClosureRules = len(rules)

	sub := ground.New(len(order), rules)
	sm := ground.AlternatingFixpoint(sub)
	return sm.Truth[0], stats
}

// CheckLiteral decides membership of a literal: positive literals check
// the atom itself; negative literals hold iff the atom is false.
func (m *Model) CheckLiteral(a atom.AtomID, negated bool) (bool, *WCheckStats) {
	t, stats := m.WCheck(a)
	if negated {
		return t == ground.False, stats
	}
	return t == ground.True, stats
}
