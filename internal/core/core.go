package core
