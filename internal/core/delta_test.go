package core

import (
	"testing"

	"repro/internal/atom"
	"repro/internal/program"
	"repro/internal/term"
)

// factAtom interns pred(args...) into st.
func factAtom(t *testing.T, st *atom.Store, pred string, args ...string) atom.AtomID {
	t.Helper()
	p, err := st.Pred(pred, len(args))
	if err != nil {
		t.Fatal(err)
	}
	ts := make([]term.ID, len(args))
	for i, a := range args {
		ts[i] = st.Terms.Const(a)
	}
	return st.Atom(p, ts)
}

type dbOp struct {
	retract bool
	pred    string
	args    []string
}

func opAdd(pred string, args ...string) dbOp { return dbOp{pred: pred, args: args} }
func opDel(pred string, args ...string) dbOp { return dbOp{retract: true, pred: pred, args: args} }

func applyDBOp(t *testing.T, st *atom.Store, db program.Database, op dbOp) program.Database {
	t.Helper()
	a := factAtom(t, st, op.pred, op.args...)
	if op.retract {
		out := make(program.Database, 0, len(db))
		for _, f := range db {
			if f != a {
				out = append(out, f)
			}
		}
		return out
	}
	return append(db[:len(db):len(db)], a)
}

// checkSameModel compares an incrementally maintained model against a
// from-scratch one: derived universe with minimal depths, instance count,
// three-valued truth on every global atom of either universe, and the
// exactness/guard-band metadata.
func checkSameModel(t *testing.T, st *atom.Store, got, want *Model) {
	t.Helper()
	if len(got.Chase.Atoms) != len(want.Chase.Atoms) {
		t.Fatalf("universe: %d atoms, want %d", len(got.Chase.Atoms), len(want.Chase.Atoms))
	}
	for _, a := range want.Chase.Atoms {
		if !got.Chase.Derived(a) {
			t.Fatalf("incremental chase missing %s", st.String(a))
		}
		if got.Chase.Depth(a) != want.Chase.Depth(a) {
			t.Errorf("depth(%s) = %d, want %d", st.String(a), got.Chase.Depth(a), want.Chase.Depth(a))
		}
	}
	if len(got.Chase.Instances) != len(want.Chase.Instances) {
		t.Fatalf("instances: %d, want %d", len(got.Chase.Instances), len(want.Chase.Instances))
	}
	for _, a := range want.Chase.Atoms {
		if gv, wv := got.Truth(a), want.Truth(a); gv != wv {
			t.Errorf("truth(%s) = %v, want %v", st.String(a), gv, wv)
		}
	}
	for _, a := range got.Chase.Atoms {
		if gv, wv := got.Truth(a), want.Truth(a); gv != wv {
			t.Errorf("truth(%s) = %v, want %v", st.String(a), gv, wv)
		}
	}
	if got.Exact != want.Exact || got.UsableDepth != want.UsableDepth {
		t.Errorf("exact/usable = %v/%d, want %v/%d",
			got.Exact, got.UsableDepth, want.Exact, want.UsableDepth)
	}
}

// deltaScripts are the satellite-mandated workloads: add-only,
// retract-only, and mixed mutation sequences over programs exercising
// negation, existentials, and undefined truth values.
var deltaScripts = []struct {
	name string
	src  string
	ops  []dbOp
}{
	{
		name: "add-only",
		src: `
move(a,b). move(b,c).
move(X,Y), not win(Y) -> win(X).
`,
		ops: []dbOp{
			opAdd("move", "c", "d"),
			opAdd("move", "d", "a"), // closes a cycle: undefined region appears
			opAdd("move", "e", "e"), // disjoint self-loop
			opAdd("win", "q"),       // IDB predicate as a direct fact
		},
	},
	{
		name: "retract-only",
		src: `
move(a,b). move(b,c). move(c,d). move(d,a). move(x,y).
move(X,Y), not win(Y) -> win(X).
`,
		ops: []dbOp{
			opDel("move", "d", "a"), // breaks the cycle: undefined collapses
			opDel("move", "x", "y"),
			opDel("move", "a", "b"),
		},
	},
	{
		name: "mixed-existential",
		src: `
r(0,0,1).
p(0,0).
r(X,Y,Z) -> r(X,Z,W).
r(X,Y,Z), p(X,Y), not q(Z) -> p(X,Z).
r(X,Y,Z), not p(X,Y) -> q(Z).
r(X,Y,Z), not p(X,Z) -> s(X).
p(X,Y), not s(X) -> t(X).
`,
		ops: []dbOp{
			opAdd("p", "0", "1"),
			opDel("p", "0", "0"),
			opAdd("r", "1", "0", "0"),
			opDel("r", "0", "0", "1"),
			opAdd("p", "0", "0"),
		},
	},
}

// TestApplyDeltaMatchesFromScratch is the tentpole cross-check: after
// every scripted mutation, the delta-maintained engine must be
// indistinguishable — universe, depths, instance count, three-valued
// model, exactness — from an engine built from scratch on the mutated
// database, at every rung of the adaptive ladder, under all four WFS
// algorithms.
func TestApplyDeltaMatchesFromScratch(t *testing.T) {
	depths := []int{4, 6, 8}
	for _, script := range deltaScripts {
		for _, alg := range []Algorithm{AltFixpoint, UnfoundedSets, ForwardProofs, Remainder} {
			t.Run(script.name+"/"+alg.String(), func(t *testing.T) {
				prog, db, _, st := compile(t, script.src)
				inc := NewEngine(prog, db, Options{Algorithm: alg})
				for _, d := range depths {
					inc.EvaluateAtDepth(d) // warm every rung before mutating
				}
				for i, op := range script.ops {
					db = applyDBOp(t, st, db, op)
					inc.ApplyDelta(db)
					for _, d := range depths {
						got := inc.EvaluateAtDepth(d)
						want := NewEngine(prog, db, Options{Algorithm: alg}).EvaluateAtDepth(d)
						t.Logf("op %d depth %d", i, d)
						checkSameModel(t, st, got, want)
					}
				}
			})
		}
	}
}

// TestRebaseModelNoChangeReturnsReceiver: a rebase over an unchanged
// database (at the set level) must share the previous model outright.
func TestRebaseModelNoChangeReturnsReceiver(t *testing.T) {
	prog, db, _, _ := compile(t, example4)
	e := NewEngine(prog, db, Options{})
	m := e.EvaluateAtDepth(6)
	// Same set, different multiset: duplicate the first fact.
	db2 := append(db[:len(db):len(db)], db[0])
	if got := RebaseModel(m, prog, e.Opts, 6, db2); got != m {
		t.Error("multiplicity-only rebase rebuilt the model")
	}
}

// TestRebaseModelTruncatedFallsBack: a truncated chase cannot be rebased
// incrementally; the rebase must still produce a correct cold model.
func TestRebaseModelTruncatedFallsBack(t *testing.T) {
	prog, db, _, st := compile(t, "seed(c).\nseed(X) -> next(X).")
	opts := Options{MaxAtoms: 2}
	e := NewEngine(prog, db, opts)
	m := e.EvaluateAtDepth(4)
	if !m.Chase.ComputeStats().Truncated {
		t.Fatal("expected truncation")
	}
	db2 := append(db[:len(db):len(db)], factAtom(t, st, "seed", "d"))
	got := RebaseModel(m, prog, e.Opts, 4, db2)
	want := NewEngine(prog, db2, opts).EvaluateAtDepth(4)
	if len(got.Chase.Atoms) != len(want.Chase.Atoms) {
		t.Errorf("fallback universe %d atoms, want %d", len(got.Chase.Atoms), len(want.Chase.Atoms))
	}
}

// TestApplyDeltaThenDeepen: after a delta, a depth the engine never
// evaluated extends the rebased chase rather than re-chasing.
func TestApplyDeltaThenDeepen(t *testing.T) {
	prog, db, _, st := compile(t, example4)
	e := NewEngine(prog, db, Options{})
	e.EvaluateAtDepth(4)
	db2 := applyDBOp(t, st, db, opAdd("p", "0", "1"))
	e.ApplyDelta(db2)
	e.EvaluateAtDepth(4) // rebases the staged depth-4 model
	got := e.EvaluateAtDepth(7)
	want := NewEngine(prog, db2, Options{}).EvaluateAtDepth(7)
	checkSameModel(t, st, got, want)
}
