// Package core implements the paper's primary contribution: the standard
// well-founded semantics for guarded normal Datalog± under the unique name
// assumption (Definition 3), decidable NBCQ answering over it (§4), the
// goal-directed membership check WCHECK, and the Proposition 12 depth
// bound δ.
//
// The evaluation pipeline is: bounded guarded chase of P+ = (D ∪ Σf)+
// (package chase) → finite ground normal program (package ground) → one of
// four WFS fixpoint algorithms → three-valued model over the derived
// universe, with every atom outside the universe false (it has no forward
// proof within the bound, Definition 5). Proposition 12 guarantees a finite
// sufficient depth n·δ for NBCQ answering; because δ is astronomically
// large, the engine answers queries by adaptive deepening with a
// stabilization window, and reports exactness whenever the chase saturates
// below the bound (in which case the computed model is the genuine
// well-founded model restricted to the relevant atoms).
package core

import (
	"fmt"

	"repro/internal/atom"
	"repro/internal/chase"
	"repro/internal/ground"
	"repro/internal/program"
)

// Algorithm selects which of the four equivalent WFS fixpoint algorithms
// evaluates the ground program.
type Algorithm int

const (
	// AltFixpoint is the van Gelder alternating fixpoint (default,
	// fastest).
	AltFixpoint Algorithm = iota
	// UnfoundedSets iterates WP = TP ∪ ¬.UP literally (§2.6).
	UnfoundedSets
	// ForwardProofs iterates the ŴP operator of Definition 7.
	ForwardProofs
	// Remainder computes the Brass–Dix program remainder (residual
	// program) — a fourth independent algorithm used for cross-checking.
	Remainder
)

func (a Algorithm) String() string {
	switch a {
	case AltFixpoint:
		return "alternating-fixpoint"
	case UnfoundedSets:
		return "unfounded-sets"
	case ForwardProofs:
		return "forward-proofs"
	case Remainder:
		return "remainder"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Options configure an Engine. The zero value selects defaults.
type Options struct {
	// Depth is the chase depth for Evaluate; 0 means DefaultDepth.
	Depth int
	// MaxAtoms caps the chase universe (safety valve); 0 means a large
	// default.
	MaxAtoms int
	// Algorithm selects the WFS fixpoint algorithm.
	Algorithm Algorithm

	// Adaptive deepening (used by Answer): start depth, additive step,
	// number of consecutive agreeing depths required, and the depth
	// ceiling. Zero values select 4 / 2 / 2 / 24.
	AdaptiveStart   int
	AdaptiveStep    int
	StabilityWindow int
	MaxDepth        int

	// GuardBand keeps query matching away from the chase frontier: when
	// the chase did NOT saturate, homomorphisms may only use atoms of
	// depth ≤ depth−GuardBand, since atoms at the frontier can lack
	// children whose absence flips truth values (the locality issue that
	// Lemmas 10/11 handle; see DESIGN.md §2). Zero selects 2. Ignored
	// for exact (saturated) models.
	GuardBand int
}

// DefaultDepth is the chase depth used by Evaluate when unset.
const DefaultDepth = 8

// WithDefaults resolves zero-valued fields to their defaults. Callers that
// derive evaluation schedules from options (the snapshot layer's adaptive
// ladder) use it to see the same values an Engine would.
func (o Options) WithDefaults() Options { return o.withDefaults() }

func (o Options) withDefaults() Options {
	if o.Depth <= 0 {
		o.Depth = DefaultDepth
	}
	if o.MaxAtoms <= 0 {
		o.MaxAtoms = 4_000_000
	}
	if o.GuardBand <= 0 {
		o.GuardBand = 2
	}
	if o.AdaptiveStart <= 0 {
		o.AdaptiveStart = o.GuardBand + 2
	}
	if o.AdaptiveStep <= 0 {
		o.AdaptiveStep = 2
	}
	if o.StabilityWindow <= 0 {
		o.StabilityWindow = 2
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 24
	}
	return o
}

// Engine evaluates the well-founded semantics of a database under a
// guarded normal Datalog± program.
type Engine struct {
	Prog *program.Program
	DB   program.Database
	Opts Options

	cached *Model // model at Opts.Depth
}

// NewEngine creates an engine; opts zero-values select defaults.
func NewEngine(prog *program.Program, db program.Database, opts Options) *Engine {
	return &Engine{Prog: prog, DB: db, Opts: opts.withDefaults()}
}

// Model is the (bounded) well-founded model WFS(D, Σ): a three-valued
// interpretation over the derived universe, with everything outside false.
type Model struct {
	Chase *chase.Result
	GP    *ground.Program
	GM    *ground.Model
	// Exact reports that the chase saturated strictly below its depth
	// bound without truncation, so this model is the true well-founded
	// model on all atoms (no deeper chase can change anything).
	Exact bool
	// UsableDepth bounds the atoms query matching may use (see
	// Options.GuardBand); negative when everything is usable.
	UsableDepth int

	truePerPred map[atom.PredID][]atom.AtomID // lazy index for joins
	posPerPred  map[atom.PredID][]atom.AtomID // true ∪ undefined

	ranks   []int32 // lazy: derivation ranks for Explain
	support []int32 // lazy: supporting instance per true atom
}

// Evaluate computes (and caches) the model at the configured depth.
func (e *Engine) Evaluate() *Model {
	if e.cached == nil {
		e.cached = e.EvaluateAtDepth(e.Opts.Depth)
	}
	return e.cached
}

// EvaluateAtDepth computes the model at an explicit chase depth.
func (e *Engine) EvaluateAtDepth(depth int) *Model {
	res := chase.Run(e.Prog, e.DB, chase.Options{MaxDepth: depth, MaxAtoms: e.Opts.MaxAtoms})
	gp := ground.FromChase(res)
	var gm *ground.Model
	switch e.Opts.Algorithm {
	case UnfoundedSets:
		gm = ground.UnfoundedIteration(gp)
	case ForwardProofs:
		gm = ground.ForwardProofIteration(gp)
	case Remainder:
		gm = ground.Remainder(gp)
	default:
		gm = ground.AlternatingFixpoint(gp)
	}
	stats := res.ComputeStats()
	m := &Model{
		Chase: res,
		GP:    gp,
		GM:    gm,
		Exact: !res.Truncated && stats.MaxDepth < depth,
	}
	if m.Exact {
		m.UsableDepth = -1
	} else {
		m.UsableDepth = depth - e.Opts.GuardBand
	}
	return m
}

// Truth returns the three-valued truth of a ground atom in the model;
// atoms outside the derived universe are false.
func (m *Model) Truth(a atom.AtomID) ground.Truth { return m.GM.TruthOfGlobal(a) }

// TrueAtoms returns all true atoms, in derivation order.
func (m *Model) TrueAtoms() []atom.AtomID {
	var out []atom.AtomID
	for i, g := range m.GP.Atoms {
		if m.GM.Truth[i] == ground.True {
			out = append(out, g)
		}
	}
	return out
}

// UndefinedAtoms returns all undefined atoms, in derivation order.
func (m *Model) UndefinedAtoms() []atom.AtomID {
	var out []atom.AtomID
	for i, g := range m.GP.Atoms {
		if m.GM.Truth[i] == ground.Undefined {
			out = append(out, g)
		}
	}
	return out
}

// Precompute materializes the lazily-built per-predicate truth indexes.
// After Precompute, Answer, Select, Satisfies, Bindings, CheckConstraints,
// and WCheck perform no writes to the model, so a model over a frozen
// store may serve unlimited concurrent readers. (Explain has its own lazy
// state; see PrepareExplanations.)
func (m *Model) Precompute() { m.buildIndexes() }

func (m *Model) buildIndexes() {
	if m.truePerPred != nil {
		return
	}
	st := m.Chase.Prog.Store
	m.truePerPred = make(map[atom.PredID][]atom.AtomID)
	m.posPerPred = make(map[atom.PredID][]atom.AtomID)
	for i, g := range m.GP.Atoms {
		if m.UsableDepth >= 0 && m.Chase.Depth(g) > m.UsableDepth {
			continue // frontier guard band: see Options.GuardBand
		}
		switch m.GM.Truth[i] {
		case ground.True:
			p := st.PredOf(g)
			m.truePerPred[p] = append(m.truePerPred[p], g)
			m.posPerPred[p] = append(m.posPerPred[p], g)
		case ground.Undefined:
			p := st.PredOf(g)
			m.posPerPred[p] = append(m.posPerPred[p], g)
		}
	}
}

// ModelStats summarizes an evaluated model for reporting layers (CLIs,
// the wfsd stats endpoint): chase shape, exactness, and the three-valued
// census of the ground model.
type ModelStats struct {
	Depth           int  // chase depth bound the model was evaluated at
	MaxDepthReached int  // deepest atom actually derived
	Exact           bool // chase saturated: genuine well-founded model
	Truncated       bool // MaxAtoms stopped the chase early
	UsableDepth     int  // guard-band ceiling for query matching; -1 = all

	ChaseAtoms     int // derived universe size
	ChaseInstances int // rule instances fired by the chase

	TrueAtoms      int // atoms true in the model
	UndefinedAtoms int // atoms undefined in the model
	FalseAtoms     int // derived atoms that are false
}

// Stats computes the model's summary statistics.
func (m *Model) Stats() ModelStats {
	cs := m.Chase.ComputeStats()
	s := ModelStats{
		Depth:           m.Chase.Opts.MaxDepth,
		MaxDepthReached: cs.MaxDepth,
		Exact:           m.Exact,
		Truncated:       cs.Truncated,
		UsableDepth:     m.UsableDepth,
		ChaseAtoms:      cs.Atoms,
		ChaseInstances:  cs.Instances,
	}
	for _, t := range m.GM.Truth {
		switch t {
		case ground.True:
			s.TrueAtoms++
		case ground.Undefined:
			s.UndefinedAtoms++
		default:
			s.FalseAtoms++
		}
	}
	return s
}

// AnswerStats records how an adaptive answer was obtained.
type AnswerStats struct {
	Depths     []int          // depths evaluated
	Answers    []ground.Truth // answer at each depth
	FinalDepth int
	Exact      bool // chase saturated: the answer is exact, not just stable
	Stable     bool // answer met the stability window
}

// AdaptiveAnswer is the single implementation of the adaptive-deepening
// ladder: the chase depth grows from opts.AdaptiveStart in steps of
// opts.AdaptiveStep until the three-valued answer is unchanged for the
// configured stability window, or the chase saturates (exact), or the
// opts.MaxDepth ceiling is reached. modelAt supplies (or recalls) the
// model at a given depth; compile resolves the query against that model's
// ID space (evaluation layers that intern per model, like snapshots,
// must recompile when the query references unseen names). Both
// Engine.Answer and the snapshot layer delegate here, so the two paths
// can never diverge.
func AdaptiveAnswer(opts Options, modelAt func(depth int) *Model,
	compile func(*Model) (*program.Query, error)) (ground.Truth, *AnswerStats, error) {
	opts = opts.withDefaults()
	stats := &AnswerStats{}
	var last ground.Truth
	agree := 0
	for d := opts.AdaptiveStart; d <= opts.MaxDepth; d += opts.AdaptiveStep {
		m := modelAt(d)
		q, err := compile(m)
		if err != nil {
			return ground.False, nil, err
		}
		ans := m.Answer(q)
		stats.Depths = append(stats.Depths, d)
		stats.Answers = append(stats.Answers, ans)
		stats.FinalDepth = d
		if m.Exact {
			stats.Exact = true
			stats.Stable = true
			return ans, stats, nil
		}
		if len(stats.Answers) > 1 && ans == last {
			agree++
			if agree >= opts.StabilityWindow {
				stats.Stable = true
				return ans, stats, nil
			}
		} else {
			agree = 0
		}
		last = ans
	}
	return last, stats, nil
}

// Answer evaluates an NBCQ by adaptive deepening (see AdaptiveAnswer).
func (e *Engine) Answer(q *program.Query) (ground.Truth, *AnswerStats) {
	ans, stats, _ := AdaptiveAnswer(e.Opts, e.EvaluateAtDepth,
		func(*Model) (*program.Query, error) { return q, nil })
	return ans, stats
}

// Holds reports whether the NBCQ is certainly satisfied (three-valued
// answer True) at the engine's configured depth.
func (e *Engine) Holds(q *program.Query) bool {
	return e.Evaluate().Answer(q) == ground.True
}
