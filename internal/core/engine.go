// Package core implements the paper's primary contribution: the standard
// well-founded semantics for guarded normal Datalog± under the unique name
// assumption (Definition 3), decidable NBCQ answering over it (§4), the
// goal-directed membership check WCHECK, and the Proposition 12 depth
// bound δ.
//
// The evaluation pipeline is: bounded guarded chase of P+ = (D ∪ Σf)+
// (package chase) → finite ground normal program (package ground) → one of
// four WFS fixpoint algorithms → three-valued model over the derived
// universe, with every atom outside the universe false (it has no forward
// proof within the bound, Definition 5). Proposition 12 guarantees a finite
// sufficient depth n·δ for NBCQ answering; because δ is astronomically
// large, the engine answers queries by adaptive deepening with a
// stabilization window, and reports exactness whenever the chase saturates
// below the bound (in which case the computed model is the genuine
// well-founded model restricted to the relevant atoms).
package core

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"sync"

	"repro/internal/atom"
	"repro/internal/cancel"
	"repro/internal/chase"
	"repro/internal/delta"
	"repro/internal/ground"
	"repro/internal/program"
	"repro/internal/trace"
)

// ErrBudgetExceeded is the structured error answer-shaped paths return
// when the MaxAtoms safety valve truncated the chase: the answer cannot
// be computed under the configured budget. Introspection paths (Stats,
// TrueFacts, constraint checks) keep serving the truncated model — the
// partial universe is still a sound lower approximation — so the error
// is raised by the adaptive ladder, not by evaluation itself. The root
// wfs package re-exports the type; match with errors.As.
type ErrBudgetExceeded = chase.BudgetError

// budgetErr builds the structured budget error for a truncated chase.
func budgetErr(res *chase.Result) error {
	return &ErrBudgetExceeded{Atoms: len(res.Atoms), Limit: res.Opts.MaxAtoms}
}

// cancelCause converts a tripped token into the error surfaced to
// callers: context.DeadlineExceeded for deadlines, context.Canceled for
// disconnects/manual cancels (errors.Is-matchable either way).
func cancelCause(tok *cancel.Token) error {
	if err := tok.Err(); err != nil {
		return err
	}
	return context.Canceled
}

// Algorithm selects which of the four equivalent WFS fixpoint algorithms
// evaluates the ground program.
type Algorithm int

const (
	// AltFixpoint is the van Gelder alternating fixpoint (default,
	// fastest).
	AltFixpoint Algorithm = iota
	// UnfoundedSets iterates WP = TP ∪ ¬.UP literally (§2.6).
	UnfoundedSets
	// ForwardProofs iterates the ŴP operator of Definition 7.
	ForwardProofs
	// Remainder computes the Brass–Dix program remainder (residual
	// program) — a fourth independent algorithm used for cross-checking.
	Remainder
)

func (a Algorithm) String() string {
	switch a {
	case AltFixpoint:
		return "alternating-fixpoint"
	case UnfoundedSets:
		return "unfounded-sets"
	case ForwardProofs:
		return "forward-proofs"
	case Remainder:
		return "remainder"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Options configure an Engine. The zero value selects defaults.
type Options struct {
	// Depth is the chase depth for Evaluate; 0 means DefaultDepth.
	Depth int
	// MaxAtoms caps the chase universe (safety valve); 0 means a large
	// default.
	MaxAtoms int
	// Algorithm selects the WFS fixpoint algorithm.
	Algorithm Algorithm

	// Parallelism bounds the worker pool of the modular (SCC-wise)
	// solver: independent dependency components on one topological level
	// are solved concurrently by up to this many goroutines. 0 (the
	// default) selects GOMAXPROCS; 1 solves strictly sequentially.
	// Values beyond the solver's hard cap (256) are clamped — the field
	// is reachable from untrusted session options, and worker scratch is
	// sized by it.
	Parallelism int

	// Adaptive deepening (used by Answer): start depth, additive step,
	// number of consecutive agreeing depths required, and the depth
	// ceiling. Zero values select 4 / 2 / 2 / 24.
	AdaptiveStart   int
	AdaptiveStep    int
	StabilityWindow int
	MaxDepth        int

	// GuardBand keeps query matching away from the chase frontier: when
	// the chase did NOT saturate, homomorphisms may only use atoms of
	// depth ≤ depth−GuardBand, since atoms at the frontier can lack
	// children whose absence flips truth values (the locality issue that
	// Lemmas 10/11 handle; see DESIGN.md §2). Zero selects 2. Ignored
	// for exact (saturated) models.
	GuardBand int

	// CertifiedDepth, when positive, is a statically proven chase depth
	// bound for the loaded program (analysis.Certify): every derivable
	// atom has depth ≤ CertifiedDepth and the bounded chase run there is
	// complete. When the certified bound fits under the resolved MaxDepth
	// ceiling, withDefaults collapses the adaptive ladder to the single
	// certified rung (AdaptiveStart = MaxDepth = Depth = CertifiedDepth)
	// and models evaluated at that depth are exact — no guard band, no
	// deepening. A bound above MaxDepth leaves the heuristic schedule
	// untouched: MaxDepth stays a resource ceiling.
	CertifiedDepth int
	// NoCertify tells load paths to skip certification entirely (keep the
	// heuristic ladder even for provably bounded programs). Consumed by
	// wfs.LoadWithOptions; the engine itself only reads CertifiedDepth.
	NoCertify bool
}

// DefaultDepth is the chase depth used by Evaluate when unset.
const DefaultDepth = 8

// WithDefaults resolves zero-valued fields to their defaults. Callers that
// derive evaluation schedules from options (the snapshot layer's adaptive
// ladder) use it to see the same values an Engine would.
func (o Options) WithDefaults() Options { return o.withDefaults() }

// Validate reports option combinations that cannot answer queries. The
// one way to build such a configuration is an adaptive-deepening schedule
// that is empty after defaults resolve — AdaptiveStart (explicit, or
// GuardBand+2 by default) above MaxDepth, e.g. Options{GuardBand: 30}
// with the default MaxDepth 24. Without this check the deepening loop
// never executes and every query silently answers False with an empty
// trace. Load-time callers (wfs.LoadWithOptions) and AdaptiveAnswer both
// check it.
func (o Options) Validate() error {
	r := o.withDefaults()
	if r.AdaptiveStart > r.MaxDepth {
		return fmt.Errorf(
			"core: empty adaptive-deepening schedule: resolved AdaptiveStart %d exceeds MaxDepth %d (GuardBand %d) — raise MaxDepth or lower AdaptiveStart/GuardBand",
			r.AdaptiveStart, r.MaxDepth, r.GuardBand)
	}
	return nil
}

func (o Options) withDefaults() Options {
	if o.Depth <= 0 {
		o.Depth = DefaultDepth
	}
	if o.MaxAtoms <= 0 {
		o.MaxAtoms = 4_000_000
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.Parallelism > 256 {
		o.Parallelism = 256 // mirror ground.SolveModular's hard cap
	}
	if o.GuardBand <= 0 {
		o.GuardBand = 2
	}
	if o.AdaptiveStart <= 0 {
		o.AdaptiveStart = o.GuardBand + 2
	}
	if o.AdaptiveStep <= 0 {
		o.AdaptiveStep = 2
	}
	if o.StabilityWindow <= 0 {
		o.StabilityWindow = 2
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 24
	}
	if o.CertifiedDepth > 0 && o.CertifiedDepth <= o.MaxDepth {
		// A certified bound within the resource ceiling collapses the
		// schedule to one exact rung; see Options.CertifiedDepth.
		o.AdaptiveStart = o.CertifiedDepth
		o.MaxDepth = o.CertifiedDepth
		o.Depth = o.CertifiedDepth
	}
	return o
}

// Engine evaluates the well-founded semantics of a database under a
// guarded normal Datalog± program. Evaluation state is resumable: the
// engine keeps its deepest chase and grounding so far, and a deeper
// request extends them (chase.Result.Extend, ground.ExtendFromChase)
// instead of re-chasing from the database — the adaptive-deepening
// ladder therefore pays for each depth increment once. Models are cached
// per depth. An Engine is single-goroutine (see wfs.Snapshot for the
// concurrent read path).
type Engine struct {
	Prog *program.Program
	DB   program.Database
	Opts Options

	cached *Model         // model at Opts.Depth
	models map[int]*Model // depth → model, for ladder reuse

	// prevModels holds the per-depth models evaluated before the last
	// ApplyDelta: a request for one of these depths rebases the old model
	// onto the current database (RebaseModel) instead of evaluating cold.
	prevModels map[int]*Model

	// Deepest chase and grounding computed so far; deeper evaluations
	// resume from these.
	res *chase.Result
	gp  *ground.Program
}

// NewEngine creates an engine; opts zero-values select defaults.
func NewEngine(prog *program.Program, db program.Database, opts Options) *Engine {
	return &Engine{Prog: prog, DB: db, Opts: opts.withDefaults(), models: make(map[int]*Model)}
}

// Model is the (bounded) well-founded model WFS(D, Σ): a three-valued
// interpretation over the derived universe, with everything outside false.
type Model struct {
	Chase *chase.Result
	GP    *ground.Program
	GM    *ground.Model
	// Exact reports that the chase saturated strictly below its depth
	// bound without truncation, so this model is the true well-founded
	// model on all atoms (no deeper chase can change anything).
	Exact bool
	// UsableDepth bounds the atoms query matching may use (see
	// Options.GuardBand); negative when everything is usable.
	UsableDepth int
	// Interrupted reports that a cancellation token stopped the chase or
	// the solve mid-way: the model is a discardable partial state, never
	// cached and never answered from (the ladder converts it to the
	// token's cause as an error).
	Interrupted bool

	truePerPred map[atom.PredID][]atom.AtomID // lazy index for joins
	posPerPred  map[atom.PredID][]atom.AtomID // true ∪ undefined

	ranksOnce sync.Once // guards PrepareExplanations (models may be shared across snapshots)
	ranks     []int32   // lazy: derivation ranks for Explain
	support   []int32   // lazy: supporting instance per true atom
}

// Evaluate computes (and caches) the model at the configured depth.
func (e *Engine) Evaluate() *Model {
	if e.cached == nil {
		e.cached = e.EvaluateAtDepth(e.Opts.Depth)
	}
	return e.cached
}

// EvaluateAtDepth computes (and caches) the model at an explicit chase
// depth. When the requested depth exceeds the engine's deepest chase so
// far, the chase and grounding are extended incrementally; a shallower
// request (outside the usual monotone deepening pattern) falls back to a
// fresh bounded chase.
func (e *Engine) EvaluateAtDepth(depth int) *Model {
	return e.EvaluateAtDepthTraced(depth, nil)
}

// EvaluateAtDepthTraced is EvaluateAtDepth with observability: the chase
// (fresh or extended), grounding, condensation, and solve become child
// spans of tr, with chase shape counters (see chaseCounters). tr nil is
// the plain evaluation — cache hits record nothing either way.
func (e *Engine) EvaluateAtDepthTraced(depth int, tr *trace.Span) *Model {
	return e.EvaluateAtDepthCancelTraced(depth, nil, tr)
}

// EvaluateAtDepthCancelTraced is EvaluateAtDepthTraced under a
// cancellation token (nil = never cancelled). An interrupted evaluation
// returns a Model with Interrupted set; interrupted state is never
// cached and never installed as the engine's resumable chase, so a
// later un-cancelled request at the same depth evaluates cleanly.
func (e *Engine) EvaluateAtDepthCancelTraced(depth int, tok *cancel.Token, tr *trace.Span) *Model {
	if e.models == nil {
		e.models = make(map[int]*Model)
	}
	if m, ok := e.models[depth]; ok {
		return m
	}
	if pm, ok := e.prevModels[depth]; ok {
		// A model from before the last ApplyDelta: rebase it onto the
		// current database instead of re-evaluating from scratch. The
		// staged model is consumed only by a completed rebase — an
		// interrupted one leaves it staged for the next request.
		m := RebaseModelCancelTraced(pm, e.Prog, e.Opts, depth, e.DB, tok, tr)
		if m.Interrupted {
			return m
		}
		delete(e.prevModels, depth)
		if e.res == nil || depth >= e.res.Opts.MaxDepth {
			e.res, e.gp = m.Chase, m.GP
		}
		e.models[depth] = m
		return m
	}
	var res *chase.Result
	var gp *ground.Program
	switch {
	case e.res != nil && depth > e.res.Opts.MaxDepth:
		cs := tr.Child("chase-extend")
		res, _ = e.res.ExtendCancel(e.Prog, depth, tok)
		chaseCounters(cs, res)
		cs.End()
		switch {
		case res == e.res:
			gp = e.gp // saturated or truncated: the deeper chase is identical
		case res.Interrupted:
			return &Model{Chase: res, GP: e.gp, GM: &ground.Model{}, Interrupted: true}
		default:
			end := tr.Phase("reground")
			gp = ground.ExtendFromChase(e.gp, res)
			end()
		}
	case e.res != nil && depth == e.res.Opts.MaxDepth:
		res, gp = e.res, e.gp
	default:
		cs := tr.Child("chase")
		res = chase.Run(e.Prog, e.DB, chase.Options{MaxDepth: depth, MaxAtoms: e.Opts.MaxAtoms, Cancel: tok})
		chaseCounters(cs, res)
		cs.End()
		if res.Interrupted {
			return &Model{Chase: res, GP: ground.New(0, nil), GM: &ground.Model{}, Interrupted: true}
		}
		end := tr.Phase("ground")
		gp = ground.FromChase(res)
		end()
	}
	m := modelFromCancelTraced(e.Opts, res, gp, depth, tok, tr)
	if m.Interrupted {
		return m
	}
	if e.res == nil || depth >= e.res.Opts.MaxDepth {
		e.res, e.gp = res, gp
	}
	e.models[depth] = m
	return m
}

// chaseCounters records a finished chase's shape on its span: universe
// size, fired instances, parked (unfirable) rule applications, and the
// deepest derived atom; a Detailed trace additionally gets the full
// per-depth frontier profile as counters on a frontier child.
func chaseCounters(tr *trace.Span, res *chase.Result) {
	if !tr.Enabled() {
		return
	}
	cs := res.ComputeStats()
	tr.SetCount("chase_atoms", int64(cs.Atoms))
	tr.SetCount("chase_instances", int64(cs.Instances))
	tr.SetCount("parked_waiters", int64(res.ParkedWaiters()))
	tr.SetCount("max_depth", int64(cs.MaxDepth))
	if tr.Detailed() {
		f := tr.Child("frontier")
		for d, n := range res.DepthProfile() {
			f.SetCount("depth_"+strconv.Itoa(d), int64(n))
		}
		f.End()
	}
}

// ApplyDelta rebases the engine onto a mutated database. Nothing is
// re-evaluated eagerly: every cached model is staged for rebasing, and
// the next EvaluateAtDepth at a staged depth carries the old model across
// the (set-level) database change via RebaseModel — resumed chase for
// additions, forest replay for retractions, warm-started fixpoint — so
// the adaptive ladder after a small delta costs a fraction of a rebuild.
// newDB must be the complete database after the mutation, with every atom
// interned in the engine's store.
func (e *Engine) ApplyDelta(newDB program.Database) {
	e.DB = newDB
	if e.prevModels == nil {
		e.prevModels = make(map[int]*Model)
	}
	for d, m := range e.models {
		e.prevModels[d] = m // staged models from older epochs are superseded
	}
	e.models = make(map[int]*Model)
	e.cached = nil
	e.res, e.gp = nil, nil
}

// ExtendModel continues a previously evaluated model's chase to a deeper
// depth and evaluates the model there: the resumable-chase counterpart of
// EvaluateAtDepth for layers that manage models themselves (the snapshot
// ladder's chained rungs). prog must share prev's compiled rules and an
// ID space extending its store — prev's own store, or a fresh overlay
// over its frozen form. prev is not mutated: the extended chase and
// grounding are appended copies, so prev keeps serving concurrent
// readers.
func ExtendModel(prev *Model, prog *program.Program, opts Options, depth int) *Model {
	return ExtendModelTraced(prev, prog, opts, depth, nil)
}

// ExtendModelTraced is ExtendModel with observability (see
// EvaluateAtDepthTraced for the span inventory).
func ExtendModelTraced(prev *Model, prog *program.Program, opts Options, depth int, tr *trace.Span) *Model {
	return ExtendModelCancelTraced(prev, prog, opts, depth, nil, tr)
}

// ExtendModelCancelTraced is ExtendModelTraced under a cancellation
// token (nil = never cancelled); an interrupted extension returns a
// discardable Model with Interrupted set.
func ExtendModelCancelTraced(prev *Model, prog *program.Program, opts Options, depth int, tok *cancel.Token, tr *trace.Span) *Model {
	opts = opts.withDefaults()
	cs := tr.Child("chase-extend")
	res, _ := prev.Chase.ExtendCancel(prog, depth, tok)
	chaseCounters(cs, res)
	cs.End()
	if res.Interrupted {
		return &Model{Chase: res, GP: prev.GP, GM: prev.GM, Interrupted: true}
	}
	gp := prev.GP
	if res != prev.Chase {
		end := tr.Phase("reground")
		gp = ground.ExtendFromChase(prev.GP, res)
		end()
	}
	return modelFromCancelTraced(opts, res, gp, depth, tok, tr)
}

// RebaseModel carries a previously evaluated model onto a mutated
// database: the data-dimension counterpart of ExtendModel. The set-level
// change is computed from prev's own chase database, so any number of
// intermediate mutations collapse into one rebase. Retractions replay
// the derivation forest DRed-style, additions extend the chase against
// it, and the WFS fixpoint is warm-started — only the dependency cone of
// the change is re-solved (ground.IncrementalModel). prev is not
// mutated; when the database did not change at the set level, prev
// itself is returned.
//
// prog must share prev's compiled rules and an ID space extending its
// chase's store, and newDB (with every atom interned there) must be the
// full database after the mutation. A state that cannot be rebased (a
// truncated chase, or a depth mismatch from an off-ladder caller) falls
// back to cold evaluation at the requested depth.
func RebaseModel(prev *Model, prog *program.Program, opts Options, depth int, newDB program.Database) *Model {
	return RebaseModelTraced(prev, prog, opts, depth, newDB, nil)
}

// RebaseModelTraced is RebaseModel with observability: the delta-apply
// breakdown (diff, overdelete/rederive/reground under a delta-rebase
// child, cone warm starts) becomes child spans of tr with the delta and
// cone sizes as counters. tr nil is the plain rebase.
func RebaseModelTraced(prev *Model, prog *program.Program, opts Options, depth int, newDB program.Database, tr *trace.Span) *Model {
	return RebaseModelCancelTraced(prev, prog, opts, depth, newDB, nil, tr)
}

// interruptedModel is the discardable marker a cancelled stage returns:
// it carries prev's (still valid, but stale) state purely so the fields
// are non-nil, with Interrupted telling callers to convert it into the
// token's cause and throw it away.
func interruptedModel(prev *Model) *Model {
	return &Model{Chase: prev.Chase, GP: prev.GP, GM: prev.GM, Interrupted: true}
}

// RebaseModelCancelTraced is RebaseModelTraced under a cancellation
// token (nil = never cancelled). The token gates every stage — the
// forest replay, the data-dimension continuation, the warm solves, the
// deepening, and crucially the cold-rebuild fallback, which must not
// run when the rebase failed *because* of the cancel.
func RebaseModelCancelTraced(prev *Model, prog *program.Program, opts Options, depth int, newDB program.Database, tok *cancel.Token, tr *trace.Span) *Model {
	opts = opts.withDefaults()
	endDiff := tr.Phase("diff")
	added, removed := delta.Diff(prev.Chase.DB, newDB)
	endDiff()
	if len(added) == 0 && len(removed) == 0 {
		return prev
	}
	// prev's chase may be bounded below depth: a ladder rung past
	// saturation shares the shallower saturated chase (Extend returns its
	// receiver). Rebase at the chase's own bound, then deepen — the delta
	// may have unsaturated it.
	if prevCap := prev.Chase.Opts.MaxDepth; prevCap <= depth {
		rb := tr.Child("delta-rebase")
		reb, ok := delta.RebaseCancelTraced(prev.Chase, prev.GP, prog, newDB, added, removed, tok, rb)
		rb.End()
		if !ok && tok.Cancelled() {
			return interruptedModel(prev)
		}
		if ok {
			ws := tr.Child("warm-solve")
			gm := ground.IncrementalModelCancelTraced(reb.GP, prev.GM, reb.Seeds, solverCancelFor(opts, tok), tok, ws)
			ws.End()
			if gm.Interrupted {
				return interruptedModel(prev)
			}
			res, gp := reb.Chase, reb.GP
			cs := tr.Child("chase-extend")
			ext, _ := res.ExtendCancel(prog, depth, tok)
			if ext != res {
				chaseCounters(cs, ext)
			}
			cs.End()
			if ext.Interrupted {
				return interruptedModel(prev)
			}
			if ext != res {
				firstNew := len(res.Instances)
				res = ext
				endRg := tr.Phase("reground")
				gp = ground.ExtendFromChase(gp, res)
				endRg()
				seeds := make([]atom.AtomID, 0, len(res.Instances)-firstNew)
				for i := firstNew; i < len(res.Instances); i++ {
					seeds = append(seeds, res.Instances[i].Head)
				}
				ws2 := tr.Child("warm-solve")
				gm = ground.IncrementalModelCancelTraced(gp, gm, seeds, solverCancelFor(opts, tok), tok, ws2)
				ws2.End()
				if gm.Interrupted {
					return interruptedModel(prev)
				}
			}
			return wrapModel(opts, res, gp, gm, depth)
		}
	}
	if tok.Cancelled() {
		return interruptedModel(prev)
	}
	cs := tr.Child("chase")
	res := chase.Run(prog, newDB, chase.Options{MaxDepth: depth, MaxAtoms: opts.MaxAtoms, Cancel: tok})
	chaseCounters(cs, res)
	cs.End()
	if res.Interrupted {
		return interruptedModel(prev)
	}
	endG := tr.Phase("ground")
	gp := ground.FromChase(res)
	endG()
	return modelFromCancelTraced(opts, res, gp, depth, tok, tr)
}

// solverFor returns the solve path the options select, as a function
// over ground programs (also handed to the warm-started incremental
// evaluation, which applies it to the affected subprogram): the modular
// SCC-wise evaluation, with the configured fixpoint algorithm run inside
// each negation-cyclic component and up to opts.Parallelism independent
// components solved concurrently.
func solverFor(opts Options) func(*ground.Program) *ground.Model {
	return solverForTraced(opts, nil)
}

// solverForTraced is solverFor with the modular solve recording its
// condense/solve phases (and, on a Detailed trace, the slowest
// components) onto tr.
func solverForTraced(opts Options, tr *trace.Span) func(*ground.Program) *ground.Model {
	return solverCancelForTraced(opts, nil, tr)
}

// solverCancelFor is solverFor carrying a cancellation token into the
// modular solve (nil = never cancelled).
func solverCancelFor(opts Options, tok *cancel.Token) func(*ground.Program) *ground.Model {
	return solverCancelForTraced(opts, tok, nil)
}

func solverCancelForTraced(opts Options, tok *cancel.Token, tr *trace.Span) func(*ground.Program) *ground.Model {
	algo := algorithmFor(opts.Algorithm)
	par := opts.Parallelism
	return func(p *ground.Program) *ground.Model {
		return ground.SolveModularCancelTraced(p, algo, par, tok, tr)
	}
}

// algorithmFor maps the option to the raw global WFS fixpoint algorithm.
func algorithmFor(a Algorithm) func(*ground.Program) *ground.Model {
	switch a {
	case UnfoundedSets:
		return ground.UnfoundedIteration
	case ForwardProofs:
		return ground.ForwardProofIteration
	case Remainder:
		return ground.Remainder
	default:
		return ground.AlternatingFixpoint
	}
}

// modelFrom runs the configured WFS fixpoint algorithm over a grounded
// chase and wraps the result with its exactness and guard-band metadata.
func modelFrom(opts Options, res *chase.Result, gp *ground.Program, depth int) *Model {
	return modelFromTraced(opts, res, gp, depth, nil)
}

func modelFromTraced(opts Options, res *chase.Result, gp *ground.Program, depth int, tr *trace.Span) *Model {
	return wrapModel(opts, res, gp, solverForTraced(opts, tr)(gp), depth)
}

// modelFromCancelTraced is modelFromTraced with the token threaded into
// the solve; an interrupted solve (or chase) marks the model.
func modelFromCancelTraced(opts Options, res *chase.Result, gp *ground.Program, depth int, tok *cancel.Token, tr *trace.Span) *Model {
	return wrapModel(opts, res, gp, solverCancelForTraced(opts, tok, tr)(gp), depth)
}

// wrapModel attaches exactness and guard-band metadata to an evaluated
// ground model.
func wrapModel(opts Options, res *chase.Result, gp *ground.Program, gm *ground.Model, depth int) *Model {
	stats := res.ComputeStats()
	// Exact when the chase visibly saturated below the cap, or when a
	// static certificate proves depth is a true bound (the chase may then
	// derive atoms at exactly the bound, but nothing beyond exists).
	certified := opts.CertifiedDepth > 0 && depth >= opts.CertifiedDepth
	m := &Model{
		Chase:       res,
		GP:          gp,
		GM:          gm,
		Exact:       !res.Truncated && (stats.MaxDepth < depth || certified),
		Interrupted: res.Interrupted || gm.Interrupted,
	}
	if m.Exact {
		m.UsableDepth = -1
	} else {
		m.UsableDepth = depth - opts.GuardBand
	}
	return m
}

// Truth returns the three-valued truth of a ground atom in the model;
// atoms outside the derived universe are false.
func (m *Model) Truth(a atom.AtomID) ground.Truth { return m.GM.TruthOfGlobal(a) }

// TrueAtoms returns all true atoms, in derivation order.
func (m *Model) TrueAtoms() []atom.AtomID {
	var out []atom.AtomID
	for i, g := range m.GP.Atoms {
		if m.GM.Truth[i] == ground.True {
			out = append(out, g)
		}
	}
	return out
}

// UndefinedAtoms returns all undefined atoms, in derivation order.
func (m *Model) UndefinedAtoms() []atom.AtomID {
	var out []atom.AtomID
	for i, g := range m.GP.Atoms {
		if m.GM.Truth[i] == ground.Undefined {
			out = append(out, g)
		}
	}
	return out
}

// Precompute materializes the lazily-built per-predicate truth indexes.
// After Precompute, Answer, Select, Satisfies, Bindings, CheckConstraints,
// and WCheck perform no writes to the model, so a model over a frozen
// store may serve unlimited concurrent readers. (Explain has its own lazy
// state; see PrepareExplanations.)
func (m *Model) Precompute() { m.buildIndexes() }

func (m *Model) buildIndexes() {
	if m.truePerPred != nil {
		return
	}
	st := m.Chase.Prog.Store
	m.truePerPred = make(map[atom.PredID][]atom.AtomID)
	m.posPerPred = make(map[atom.PredID][]atom.AtomID)
	for i, g := range m.GP.Atoms {
		if m.UsableDepth >= 0 && m.Chase.Depth(g) > m.UsableDepth {
			continue // frontier guard band: see Options.GuardBand
		}
		switch m.GM.Truth[i] {
		case ground.True:
			p := st.PredOf(g)
			m.truePerPred[p] = append(m.truePerPred[p], g)
			m.posPerPred[p] = append(m.posPerPred[p], g)
		case ground.Undefined:
			p := st.PredOf(g)
			m.posPerPred[p] = append(m.posPerPred[p], g)
		}
	}
}

// ModelStats summarizes an evaluated model for reporting layers (CLIs,
// the wfsd stats endpoint): chase shape, exactness, and the three-valued
// census of the ground model.
type ModelStats struct {
	Depth           int  // chase depth bound the model was evaluated at
	MaxDepthReached int  // deepest atom actually derived
	Exact           bool // chase saturated: genuine well-founded model
	Truncated       bool // MaxAtoms stopped the chase early
	UsableDepth     int  // guard-band ceiling for query matching; -1 = all

	ChaseAtoms     int // derived universe size
	ChaseInstances int // rule instances fired by the chase

	TrueAtoms      int // atoms true in the model
	UndefinedAtoms int // atoms undefined in the model
	FalseAtoms     int // derived atoms that are false

	// Modular-evaluation shape, populated by both the from-scratch
	// modular solve and the incremental warm-start (which reports the
	// full program's condensation): dependency-graph SCC count, the
	// largest component's size, how many components had a negation cycle
	// and needed the full WFS fixpoint, and the peak worker goroutines
	// the solve used.
	SCCs         int
	LargestSCC   int
	HardSCCs     int
	SolveWorkers int
}

// Stats computes the model's summary statistics.
func (m *Model) Stats() ModelStats {
	cs := m.Chase.ComputeStats()
	s := ModelStats{
		Depth:           m.Chase.Opts.MaxDepth,
		MaxDepthReached: cs.MaxDepth,
		Exact:           m.Exact,
		Truncated:       cs.Truncated,
		UsableDepth:     m.UsableDepth,
		ChaseAtoms:      cs.Atoms,
		ChaseInstances:  cs.Instances,
		SCCs:            m.GM.SCCs,
		LargestSCC:      m.GM.LargestSCC,
		HardSCCs:        m.GM.HardSCCs,
		SolveWorkers:    m.GM.Workers,
	}
	for _, t := range m.GM.Truth {
		switch t {
		case ground.True:
			s.TrueAtoms++
		case ground.Undefined:
			s.UndefinedAtoms++
		default:
			s.FalseAtoms++
		}
	}
	return s
}

// AnswerStats records how an adaptive answer was obtained.
type AnswerStats struct {
	Depths     []int          // depths evaluated
	Answers    []ground.Truth // answer at each depth
	FinalDepth int
	Exact      bool // chase saturated: the answer is exact, not just stable
	Stable     bool // answer met the stability window
}

// AdaptiveAnswer is the single implementation of the adaptive-deepening
// ladder: the chase depth grows from opts.AdaptiveStart in steps of
// opts.AdaptiveStep until the three-valued answer is unchanged for the
// configured stability window, or the chase saturates (exact), or the
// opts.MaxDepth ceiling is reached. modelAt supplies (or recalls) the
// model at a given depth — an error (e.g. a rung schedule mismatch in the
// snapshot layer) aborts the ladder instead of crashing or silently
// answering False; an empty schedule (Options.Validate) is an error for
// the same reason. compile resolves the query against that model's ID
// space (evaluation layers that intern per model, like snapshots, must
// recompile when the query references unseen names). Both Engine.Answer
// and the snapshot layer delegate here, so the two paths can never
// diverge.
func AdaptiveAnswer(opts Options, modelAt func(depth int) (*Model, error),
	compile func(*Model) (*program.Query, error)) (ground.Truth, *AnswerStats, error) {
	return AdaptiveAnswerTraced(opts,
		func(d int, _ *trace.Span) (*Model, error) { return modelAt(d) },
		compile, nil)
}

// AdaptiveAnswerTraced is the ladder with observability: each depth rung
// becomes a depth-N child span of tr (model materialization recorded by
// modelAt under the span it receives, the query match under a match
// child) carrying the three-valued answer at that depth as a counter.
// tr nil is the plain ladder; the one extra nil check per rung is the
// entire disabled cost.
func AdaptiveAnswerTraced(opts Options, modelAt func(depth int, tr *trace.Span) (*Model, error),
	compile func(*Model) (*program.Query, error), tr *trace.Span) (ground.Truth, *AnswerStats, error) {
	return AdaptiveAnswerCancelTraced(opts, modelAt, compile, nil, tr)
}

// AdaptiveAnswerCancelTraced is the ladder under a cancellation token
// (nil = never cancelled). The token is checked before every rung, and
// a rung whose model comes back Interrupted converts to the token's
// cause (context.DeadlineExceeded / context.Canceled) as the error. On
// cancellation the stats of the *completed* rungs and the last computed
// answer are still returned alongside the error — the graceful-
// degradation path (?partial=1) serves the deepest completed rung's
// answer marked inexact. A rung whose chase hit the MaxAtoms valve
// returns the structured ErrBudgetExceeded the same way.
func AdaptiveAnswerCancelTraced(opts Options, modelAt func(depth int, tr *trace.Span) (*Model, error),
	compile func(*Model) (*program.Query, error), tok *cancel.Token, tr *trace.Span) (ground.Truth, *AnswerStats, error) {
	if err := opts.Validate(); err != nil {
		return ground.False, nil, err
	}
	opts = opts.withDefaults()
	stats := &AnswerStats{}
	var last ground.Truth
	agree := 0
	rung := 0
	for d := opts.AdaptiveStart; d <= opts.MaxDepth; d += opts.AdaptiveStep {
		// Poll on the first rung and every 4th after it. Cold rungs poll
		// internally (chase pops, ground SCCs), so this between-rung
		// check only covers runs of already-warm rungs — each sub-µs —
		// and polling a handful of them per check keeps the token tax
		// off the warm answer path without hurting cancellation latency.
		if rung&3 == 0 && tok.Cancelled() {
			tr.MarkCancelled()
			return last, stats, cancelCause(tok)
		}
		rung++
		var ds *trace.Span
		if tr.Enabled() {
			ds = tr.Child("depth-" + strconv.Itoa(d))
		}
		m, err := modelAt(d, ds)
		if err != nil {
			ds.End()
			return last, stats, err
		}
		if m.Interrupted {
			ds.MarkCancelled()
			ds.End()
			tr.MarkCancelled()
			return last, stats, cancelCause(tok)
		}
		if m.Chase.Truncated {
			ds.SetCount("budget_exceeded", 1)
			ds.End()
			return last, stats, budgetErr(m.Chase)
		}
		q, err := compile(m)
		if err != nil {
			ds.End()
			return last, stats, err
		}
		endMatch := ds.Phase("match")
		ans := m.Answer(q)
		endMatch()
		ds.SetCount("answer", int64(ans))
		ds.End()
		stats.Depths = append(stats.Depths, d)
		stats.Answers = append(stats.Answers, ans)
		stats.FinalDepth = d
		if m.Exact {
			stats.Exact = true
			stats.Stable = true
			return ans, stats, nil
		}
		if len(stats.Answers) > 1 && ans == last {
			agree++
			if agree >= opts.StabilityWindow {
				stats.Stable = true
				return ans, stats, nil
			}
		} else {
			agree = 0
		}
		last = ans
	}
	return last, stats, nil
}

// Answer evaluates an NBCQ by adaptive deepening (see AdaptiveAnswer).
// Successive rungs share the engine's resumable chase, so the ladder
// re-derives nothing. The error reports a configuration whose schedule
// cannot evaluate anything (see Options.Validate).
func (e *Engine) Answer(q *program.Query) (ground.Truth, *AnswerStats, error) {
	return AdaptiveAnswer(e.Opts,
		func(d int) (*Model, error) { return e.EvaluateAtDepth(d), nil },
		func(*Model) (*program.Query, error) { return q, nil })
}

// Holds reports whether the NBCQ is certainly satisfied (three-valued
// answer True) at the engine's configured depth.
func (e *Engine) Holds(q *program.Query) bool {
	return e.Evaluate().Answer(q) == ground.True
}
