package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/atom"
	"repro/internal/program"
	"repro/internal/term"
)

// randomGuardedSource generates a random guarded normal Datalog± program
// with facts, side atoms, negation, and occasional existential heads —
// the full feature surface of the chase+WFS pipeline.
func randomGuardedSource(rng *rand.Rand) string {
	numPreds := 2 + rng.Intn(4)
	arity := func(p int) int { return 1 + (p % 2) } // arities 1 and 2
	pred := func(p int) string { return fmt.Sprintf("p%d", p) }
	consts := []string{"a", "b", "c"}

	var b strings.Builder
	// Facts.
	for i := 0; i < 2+rng.Intn(4); i++ {
		p := rng.Intn(numPreds)
		args := make([]string, arity(p))
		for j := range args {
			args[j] = consts[rng.Intn(len(consts))]
		}
		fmt.Fprintf(&b, "%s(%s).\n", pred(p), strings.Join(args, ","))
	}
	// Rules.
	for i := 0; i < 2+rng.Intn(5); i++ {
		g := rng.Intn(numPreds)
		ga := arity(g)
		vars := make([]string, ga)
		for j := range vars {
			vars[j] = fmt.Sprintf("X%d", j)
		}
		body := []string{fmt.Sprintf("%s(%s)", pred(g), strings.Join(vars, ","))}
		pickArgs := func(n int) string {
			out := make([]string, n)
			for j := range out {
				if rng.Intn(4) == 0 {
					out[j] = consts[rng.Intn(len(consts))]
				} else {
					out[j] = vars[rng.Intn(len(vars))]
				}
			}
			return strings.Join(out, ",")
		}
		for s := rng.Intn(2); s > 0; s-- {
			sp := rng.Intn(numPreds)
			body = append(body, fmt.Sprintf("%s(%s)", pred(sp), pickArgs(arity(sp))))
		}
		for s := rng.Intn(3); s > 0; s-- {
			sp := rng.Intn(numPreds)
			body = append(body, fmt.Sprintf("not %s(%s)", pred(sp), pickArgs(arity(sp))))
		}
		h := rng.Intn(numPreds)
		ha := arity(h)
		hargs := make([]string, ha)
		for j := range hargs {
			if rng.Intn(6) == 0 {
				hargs[j] = fmt.Sprintf("Z%d", j) // existential
			} else {
				hargs[j] = vars[rng.Intn(len(vars))]
			}
		}
		fmt.Fprintf(&b, "%s -> %s(%s).\n", strings.Join(body, ", "), pred(h), strings.Join(hargs, ","))
	}
	return b.String()
}

// TestPipelinePropertyRandomGuarded is the end-to-end property test: on
// random guarded normal programs, (1) the three WFS algorithms agree on
// the bounded grounding, (2) WCHECK agrees with saturation on every
// universe atom, (3) the model is consistent, and (4) on positive
// programs everything derived is true.
func TestPipelinePropertyRandomGuarded(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 120; round++ {
		src := randomGuardedSource(rng)
		st := atom.NewStore(term.NewStore())
		prog, db, _, err := program.CompileText(src, st)
		if err != nil {
			t.Fatalf("round %d: generated program invalid: %v\n%s", round, err, src)
		}
		models := make([]*Model, 4)
		for i, alg := range []Algorithm{AltFixpoint, UnfoundedSets, ForwardProofs, Remainder} {
			e := NewEngine(prog, db, Options{Depth: 5, Algorithm: alg})
			models[i] = e.Evaluate()
		}
		for i := 1; i < len(models); i++ {
			if !models[0].GM.Equal(models[i].GM) {
				t.Fatalf("round %d: algorithm %v disagrees on\n%s", round, Algorithm(i), src)
			}
		}
		m := models[0]
		for i, g := range m.GP.Atoms {
			got, _ := m.WCheck(g)
			if got != m.GM.Truth[i] {
				t.Fatalf("round %d: WCheck(%s)=%v saturated=%v on\n%s",
					round, st.String(g), got, m.GM.Truth[i], src)
			}
		}
		if prog.IsPositive() && m.GM.CountUndefined() != 0 {
			t.Fatalf("round %d: positive program has undefined atoms\n%s", round, src)
		}
	}
}

// TestDeepeningStableOnSaturatedPrograms: once the chase saturates, all
// deeper evaluations produce the identical model (exactness).
func TestDeepeningStableOnSaturatedPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for round := 0; round < 40; round++ {
		src := randomGuardedSource(rng)
		st := atom.NewStore(term.NewStore())
		prog, db, _, err := program.CompileText(src, st)
		if err != nil {
			t.Fatal(err)
		}
		e := NewEngine(prog, db, Options{})
		m1 := e.EvaluateAtDepth(12)
		if !m1.Exact {
			continue // infinite chase; skip
		}
		m2 := e.EvaluateAtDepth(20)
		if len(m1.GP.Atoms) != len(m2.GP.Atoms) {
			t.Fatalf("round %d: saturated universes differ", round)
		}
		for i := range m1.GP.Atoms {
			if m1.GM.Truth[i] != m2.GM.Truth[i] {
				t.Fatalf("round %d: saturated truths differ at %s",
					round, st.String(m1.GP.Atoms[i]))
			}
		}
	}
}

// TestStratifiedRandomMatchesWFS: generated programs that happen to be
// stratified must have a two-valued WFS on the bounded universe equal to
// the perfect model (via strat is tested in its own package; here we
// assert two-valuedness, the §1 coincidence precondition).
func TestStratifiedRandomTwoValued(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	checked := 0
	for round := 0; round < 150 && checked < 30; round++ {
		src := randomGuardedSource(rng)
		st := atom.NewStore(term.NewStore())
		prog, db, _, err := program.CompileText(src, st)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := prog.Stratify(); !ok {
			continue
		}
		checked++
		m := NewEngine(prog, db, Options{Depth: 6}).Evaluate()
		if m.GM.CountUndefined() != 0 {
			t.Fatalf("stratified program has undefined atoms:\n%s", src)
		}
	}
	if checked == 0 {
		t.Fatalf("no stratified programs generated")
	}
}

// TestGroundProgramWellFormed: every instance extracted from the chase
// references only universe atoms and its rule's shape.
func TestGroundProgramWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(555))
	for round := 0; round < 60; round++ {
		src := randomGuardedSource(rng)
		st := atom.NewStore(term.NewStore())
		prog, db, _, err := program.CompileText(src, st)
		if err != nil {
			t.Fatal(err)
		}
		m := NewEngine(prog, db, Options{Depth: 5}).Evaluate()
		for _, in := range m.Chase.Instances {
			if !m.Chase.Derived(in.Head) {
				t.Fatalf("instance head not derived")
			}
			for _, b := range in.Pos {
				if !m.Chase.Derived(b) {
					t.Fatalf("instance positive body atom not derived")
				}
			}
			if m.GP.Local(in.Head) < 0 {
				t.Fatalf("instance head missing from ground program")
			}
			for _, b := range in.Neg {
				if m.GP.Local(b) < 0 {
					t.Fatalf("negative body atom missing from ground universe")
				}
			}
		}
	}
}
