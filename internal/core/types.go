package core

import (
	"sort"
	"strings"

	"repro/internal/atom"
	"repro/internal/ground"
	"repro/internal/term"
)

// AtomType is the (P-)type of an atom a (§3): the pair (a, S) where S
// collects every literal ℓ of the well-founded model with
// dom(ℓ) ⊆ dom(a). Types drive the paper's locality property: the truth of
// everything below a chase node depends only on the type of its label
// (Lemmas 10 and 11), and the finiteness of the type space (up to
// X-isomorphism) yields the Proposition 12 depth bound.
type AtomType struct {
	Atom atom.AtomID
	// Literals lists (atom, truth) for every model literal over dom(Atom),
	// sorted by atom ID. Truth is True or False (undefined atoms
	// contribute no literal, as in the paper's three-valued WFS(P)).
	Literals []TypedLiteral
}

// TypedLiteral is one literal of a type's S-component.
type TypedLiteral struct {
	Atom  atom.AtomID
	Truth ground.Truth
}

// TypeOf computes the type of an atom relative to the model. Only atoms of
// the derived universe contribute positive literals; every universe atom
// over dom(a) that is false contributes a negative literal. (Atoms outside
// the universe are false too, but there are infinitely many; as in the
// paper, S is restricted to the literals that exist in WFS(P) over the
// known universe — sufficient for isomorphism checking because both sides
// are restricted identically.)
func (m *Model) TypeOf(a atom.AtomID) AtomType {
	st := m.Chase.Prog.Store
	dom := map[term.ID]bool{}
	for _, t := range st.Dom(a) {
		dom[t] = true
	}
	ty := AtomType{Atom: a}
	for i, g := range m.GP.Atoms {
		inDom := true
		for _, t := range st.Args(g) {
			if !dom[t] {
				inDom = false
				break
			}
		}
		if !inDom {
			continue
		}
		switch m.GM.Truth[i] {
		case ground.True:
			ty.Literals = append(ty.Literals, TypedLiteral{Atom: g, Truth: ground.True})
		case ground.False:
			ty.Literals = append(ty.Literals, TypedLiteral{Atom: g, Truth: ground.False})
		}
	}
	sort.Slice(ty.Literals, func(i, j int) bool { return ty.Literals[i].Atom < ty.Literals[j].Atom })
	return ty
}

// String renders a type as (a, {ℓ1, …, ℓk}).
func (ty AtomType) String(st *atom.Store) string {
	var b strings.Builder
	b.WriteString("(")
	b.WriteString(st.String(ty.Atom))
	b.WriteString(", {")
	for i, l := range ty.Literals {
		if i > 0 {
			b.WriteString(", ")
		}
		if l.Truth == ground.False {
			b.WriteString("¬")
		}
		b.WriteString(st.String(l.Atom))
	}
	b.WriteString("})")
	return b.String()
}

// TypesIsomorphic reports whether two types are ∅-isomorphic (§3): whether
// some bijection f from dom(a1) to dom(a2) maps a1 to a2 and the literal
// set of one type onto the other. With X = ∅ the bijection is
// unconstrained; use TypesXIsomorphic to pin elements of X.
func (m *Model) TypesIsomorphic(a1, a2 atom.AtomID) bool {
	return m.TypesXIsomorphic(a1, a2, nil)
}

// TypesXIsomorphic checks X-isomorphism of typeP(a1) and typeP(a2): the
// bijection must fix every term in X (condition 2 of the §3 definition;
// condition 1 — X-membership agreement between the domains — is implied
// here because fixed points must appear on both sides to map at all).
func (m *Model) TypesXIsomorphic(a1, a2 atom.AtomID, x []term.ID) bool {
	st := m.Chase.Prog.Store
	if st.PredOf(a1) != st.PredOf(a2) {
		return false
	}
	d1, d2 := st.Dom(a1), st.Dom(a2)
	if len(d1) != len(d2) {
		return false
	}
	fixed := map[term.ID]bool{}
	for _, t := range x {
		fixed[t] = true
	}
	// The candidate bijection is forced position-by-position by mapping
	// a1 onto a2 (same predicate, argument-wise), since dom() is the set
	// of argument terms.
	f := map[term.ID]term.ID{}
	inv := map[term.ID]term.ID{}
	args1, args2 := st.Args(a1), st.Args(a2)
	for i := range args1 {
		u, v := args1[i], args2[i]
		if pu, ok := f[u]; ok && pu != v {
			return false
		}
		if pv, ok := inv[v]; ok && pv != u {
			return false
		}
		f[u], inv[v] = v, u
		if fixed[u] || fixed[v] {
			if u != v {
				return false
			}
		}
	}
	// X-membership agreement (condition 1): fixed terms appear in one
	// domain iff in the other — guaranteed since fixed mapped terms are
	// identical; a fixed term present only on one side simply never maps,
	// which the definition permits only when absent from both. Check it.
	in1 := map[term.ID]bool{}
	for _, t := range d1 {
		in1[t] = true
	}
	in2 := map[term.ID]bool{}
	for _, t := range d2 {
		in2[t] = true
	}
	for t := range fixed {
		if in1[t] != in2[t] {
			return false
		}
	}
	// f(S1) must equal S2.
	t1, t2 := m.TypeOf(a1), m.TypeOf(a2)
	if len(t1.Literals) != len(t2.Literals) {
		return false
	}
	want := map[atom.AtomID]ground.Truth{}
	for _, l := range t2.Literals {
		want[l.Atom] = l.Truth
	}
	for _, l := range t1.Literals {
		args := st.Args(l.Atom)
		mapped := make([]term.ID, len(args))
		for i, t := range args {
			v, ok := f[t]
			if !ok {
				return false
			}
			mapped[i] = v
		}
		img, ok := st.Lookup(st.PredOf(l.Atom), mapped)
		if !ok {
			return false
		}
		tr, ok := want[img]
		if !ok || tr != l.Truth {
			return false
		}
		delete(want, img)
	}
	return len(want) == 0
}
