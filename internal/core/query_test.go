package core

import (
	"math/rand"
	"testing"

	"repro/internal/atom"
	"repro/internal/ground"
	"repro/internal/program"
	"repro/internal/term"
)

func TestQueryEqualities(t *testing.T) {
	prog, db, _, st := compile(t, `
likes(ann, bob). likes(bob, ann). likes(cid, cid).
`)
	e := NewEngine(prog, db, Options{})
	for _, tc := range []struct {
		q    string
		want ground.Truth
	}{
		{"? likes(X, Y), X = Y.", ground.True}, // cid likes cid
		{"? likes(X, Y), X = ann, Y = bob.", ground.True},
		{"? likes(X, Y), X = ann, Y = ann.", ground.False},
		{"? likes(X, X).", ground.True},
		{"? likes(X, Y), X = Y, X = ann.", ground.False},
		{"? likes(ann, X), X = bob.", ground.True},
		{"? likes(X, Y), ann = X.", ground.True}, // constant on the left
	} {
		q, err := program.ParseQuery(tc.q, st)
		if err != nil {
			t.Fatalf("parse %q: %v", tc.q, err)
		}
		if got, _, _ := e.Answer(q); got != tc.want {
			t.Errorf("%s = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestQueryEqualityUnsat(t *testing.T) {
	prog, db, _, st := compile(t, "p(a).")
	e := NewEngine(prog, db, Options{})
	for _, qs := range []string{
		"? p(X), X = a, X = b.",
		"? p(X), a = b.",
		"? p(X), X = Y, Y = b, X = a.",
	} {
		q, err := program.ParseQuery(qs, st)
		if err != nil {
			t.Fatalf("parse %q: %v", qs, err)
		}
		if !q.Unsat {
			t.Errorf("%s not marked Unsat", qs)
		}
		if got, _, _ := e.Answer(q); got != ground.False {
			t.Errorf("%s = %v, want false", qs, got)
		}
	}
}

func TestQueryEqualityMakesNegativeSafe(t *testing.T) {
	prog, db, _, st := compile(t, "p(a).\nq(b).")
	e := NewEngine(prog, db, Options{})
	// Y appears only in the negative literal but is equality-bound to a
	// constant: safe.
	q, err := program.ParseQuery("? p(X), Y = b, not q(Y).", st)
	if err != nil {
		t.Fatalf("equality-bound negative rejected: %v", err)
	}
	if got, _, _ := e.Answer(q); got != ground.False { // q(b) is true
		t.Errorf("answer = %v, want false", got)
	}
	q2, err := program.ParseQuery("? p(X), Y = c, not q(Y).", st)
	if err != nil {
		t.Fatal(err)
	}
	if got, _, _ := e.Answer(q2); got != ground.True { // q(c) never derived
		t.Errorf("answer = %v, want true", got)
	}
	// Unbound equality chain stays unsafe.
	if _, err := program.ParseQuery("? p(X), Y = Z, not q(Y).", st); err == nil {
		t.Errorf("unsafe equality chain accepted")
	}
}

func TestSelectTuplesOverConstants(t *testing.T) {
	prog, db, _, st := compile(t, `
person(ann). person(bob). person(cid).
employed(ann).
person(X) -> hasID(X, Y).
person(X), not employed(X) -> unemployed(X).
`)
	e := NewEngine(prog, db, Options{})
	m := e.Evaluate()

	q, err := program.ParseQuery("? unemployed(X).", st)
	if err != nil {
		t.Fatal(err)
	}
	tuples := m.Select(q)
	if len(tuples) != 2 {
		t.Fatalf("tuples = %d, want 2", len(tuples))
	}
	// Ordered lexicographically: bob, cid.
	if st.Terms.String(tuples[0][0]) != "bob" || st.Terms.String(tuples[1][0]) != "cid" {
		t.Errorf("tuples = [%s, %s]", st.Terms.String(tuples[0][0]), st.Terms.String(tuples[1][0]))
	}

	// hasID binds Y to nulls: those are not tuples over ∆ (§2.1), so the
	// two-variable query has no answers, while projecting X alone via an
	// equality-free one-variable query does.
	q2, err := program.ParseQuery("? hasID(X, Y).", st)
	if err != nil {
		t.Fatal(err)
	}
	if tuples := m.Select(q2); len(tuples) != 0 {
		t.Errorf("null-valued tuples leaked into answers: %d", len(tuples))
	}
}

func TestSelectDeduplicates(t *testing.T) {
	prog, db, _, st := compile(t, `
edge(a,b). edge(a,c).
edge(X, Y) -> src(X).
`)
	m := NewEngine(prog, db, Options{}).Evaluate()
	q, err := program.ParseQuery("? src(X).", st)
	if err != nil {
		t.Fatal(err)
	}
	if tuples := m.Select(q); len(tuples) != 1 {
		t.Errorf("tuples = %d, want 1 (deduplicated)", len(tuples))
	}
}

func TestUndefinedQueryAnswer(t *testing.T) {
	prog, db, _, st := compile(t, `
move(a,b). move(b,a). move(c,dend).
move(X,Y), not win(Y) -> win(X).
`)
	e := NewEngine(prog, db, Options{})
	for _, tc := range []struct {
		q    string
		want ground.Truth
	}{
		{"? win(a).", ground.Undefined},
		{"? win(c).", ground.True},
		{"? win(dend).", ground.False},
		{"? win(a), win(c).", ground.Undefined}, // undefined ∧ true
		{"? win(dend), win(c).", ground.False},  // false ∧ true
		{"? not win(a).", ground.Undefined},     // ¬undefined
		{"? not win(dend).", ground.True},       // ¬false
		{"? win(c), not win(a).", ground.Undefined},
	} {
		q, err := program.ParseQuery(tc.q, st)
		if err != nil {
			t.Fatalf("parse %q: %v", tc.q, err)
		}
		if got := e.Evaluate().Answer(q); got != tc.want {
			t.Errorf("%s = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestBindingsEnumeration(t *testing.T) {
	prog, db, _, st := compile(t, "p(a). p(b). p(c).")
	m := NewEngine(prog, db, Options{}).Evaluate()
	q, err := program.ParseQuery("? p(X).", st)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	m.Bindings(q, func(sub atom.Subst) bool { n++; return true })
	if n != 3 {
		t.Errorf("bindings = %d, want 3", n)
	}
	// Early termination.
	n = 0
	m.Bindings(q, func(sub atom.Subst) bool { n++; return false })
	if n != 1 {
		t.Errorf("early-stop bindings = %d, want 1", n)
	}
}

func TestWCheckGoalDirectedAgreesWithSaturation(t *testing.T) {
	// A program with two predicate "worlds": the goal's world (win/move)
	// and an unrelated existential world (p/q chain). Goal-directed
	// checking must skip the latter entirely.
	src := `
move(a,b). move(b,c). move(c,a).
move(X,Y), not win(Y) -> win(X).
seed(s0).
seed(X) -> p(X, Y).
p(X, Y), not q(Y) -> q(X).
`
	prog, db, _, st := compile(t, src)
	e := NewEngine(prog, db, Options{Depth: 6})
	m := e.Evaluate()
	for i, g := range m.GP.Atoms {
		if st.PredName(st.PredOf(g)) != "win" {
			continue
		}
		got, stats := WCheckGoalDirected(prog, db, g, Options{Depth: 6})
		if got != m.GM.Truth[i] {
			t.Errorf("goal-directed %s = %v, saturated %v", st.String(g), got, m.GM.Truth[i])
		}
		if stats.RelevantPreds >= stats.TotalPreds {
			t.Errorf("relevance closure did not shrink: %+v", stats)
		}
		if stats.RelevantRules >= stats.TotalRules {
			t.Errorf("rule restriction did not shrink: %+v", stats)
		}
	}
}

func TestWCheckGoalDirectedRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for round := 0; round < 60; round++ {
		src := randomGuardedSource(rng)
		st := atom.NewStore(term.NewStore())
		prog, db, _, err := program.CompileText(src, st)
		if err != nil {
			t.Fatal(err)
		}
		m := NewEngine(prog, db, Options{Depth: 5}).Evaluate()
		for i, g := range m.GP.Atoms {
			if i%3 != 0 {
				continue // sample
			}
			got, _ := WCheckGoalDirected(prog, db, g, Options{Depth: 5})
			if got != m.GM.Truth[i] {
				t.Fatalf("round %d: goal-directed %s = %v, saturated %v\n%s",
					round, st.String(g), got, m.GM.Truth[i], src)
			}
		}
	}
}

func TestRelevantPredicates(t *testing.T) {
	prog, _, _, st := compile(t, `
a(X) -> b(X).
b(X), not c(X) -> d(X).
e(X) -> f(X).
`)
	dp, _ := st.LookupPred("d")
	rel := RelevantPredicates(prog, []atom.PredID{dp})
	for _, name := range []string{"d", "b", "c", "a"} {
		p, _ := st.LookupPred(name)
		if !rel[p] {
			t.Errorf("%s should be relevant to d", name)
		}
	}
	for _, name := range []string{"e", "f"} {
		p, _ := st.LookupPred(name)
		if rel[p] {
			t.Errorf("%s should not be relevant to d", name)
		}
	}
}
