package core

import (
	"testing"

	"repro/internal/ground"
	"repro/internal/program"
	"repro/internal/term"
)

// TestGuardBandSuppressesFrontierArtifact documents why the guard band
// exists (DESIGN.md §2 substitutions): at any fixed truncation depth the
// last chain atom R(0,t_{k},t_{k+1}) has no P-child yet, so without the
// band the query ∃XYZ r(X,Y,Z) ∧ ¬p(X,Z) would wrongly appear true at
// every depth — the frontier artifact the paper's locality lemmas rule
// out for depth n·δ.
func TestGuardBandSuppressesFrontierArtifact(t *testing.T) {
	prog, db, _, st := compile(t, example4)
	q, err := program.ParseQuery("? r(X, Y, Z), not p(X, Z).", st)
	if err != nil {
		t.Fatal(err)
	}

	e := NewEngine(prog, db, Options{Depth: 8})
	m := e.Evaluate()
	if got := m.Answer(q); got != ground.False {
		t.Errorf("with guard band: answer = %v, want false", got)
	}

	// White box: disabling the band (UsableDepth -1 = everything usable)
	// on the same truncated model exposes the artifact. A fresh engine is
	// used because models are cached per depth and m above must keep its
	// guard-banded indexes.
	raw := NewEngine(prog, db, Options{Depth: 8}).EvaluateAtDepth(8)
	raw.UsableDepth = -1
	if got := raw.Answer(q); got != ground.True {
		t.Errorf("without guard band the frontier artifact should appear (got %v)", got)
	}
}

func TestGuardBandNotAppliedWhenExact(t *testing.T) {
	// Saturating chase: every atom is usable regardless of depth.
	prog, db, _, st := compile(t, `
start(a). edge(a,b). edge(b,c).
start(X) -> reach(X).
reach(X), edge(X,Y) -> reach(Y).
`)
	e := NewEngine(prog, db, Options{Depth: 8})
	m := e.Evaluate()
	if !m.Exact {
		t.Fatalf("chase should saturate")
	}
	if m.UsableDepth != -1 {
		t.Errorf("UsableDepth = %d on exact model, want -1", m.UsableDepth)
	}
	q, err := program.ParseQuery("? reach(c).", st)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Answer(q); got != ground.True {
		t.Errorf("reach(c) = %v", got)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Depth != DefaultDepth || o.GuardBand != 2 || o.StabilityWindow != 2 {
		t.Errorf("defaults wrong: %+v", o)
	}
	if o.AdaptiveStart != o.GuardBand+2 {
		t.Errorf("AdaptiveStart = %d, want GuardBand+2", o.AdaptiveStart)
	}
	// Explicit values survive.
	o2 := Options{Depth: 3, GuardBand: 1, MaxDepth: 9}.withDefaults()
	if o2.Depth != 3 || o2.GuardBand != 1 || o2.MaxDepth != 9 {
		t.Errorf("explicit options overridden: %+v", o2)
	}
}

func TestAlgorithmString(t *testing.T) {
	if AltFixpoint.String() != "alternating-fixpoint" ||
		UnfoundedSets.String() != "unfounded-sets" ||
		ForwardProofs.String() != "forward-proofs" {
		t.Errorf("Algorithm strings wrong")
	}
}

func TestTruthOutsideUniverse(t *testing.T) {
	prog, db, _, st := compile(t, "p(a).")
	m := NewEngine(prog, db, Options{}).Evaluate()
	pp, _ := st.LookupPred("p")
	never := st.Atom(pp, []term.ID{st.Terms.Const("zzz")})
	if got := m.Truth(never); got != ground.False {
		t.Errorf("atom outside universe = %v, want false", got)
	}
}
