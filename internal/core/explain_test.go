package core

import (
	"strings"
	"testing"

	"repro/internal/atom"
	"repro/internal/ground"
	"repro/internal/term"
)

// TestExplainExample6MinimalProofs reproduces the paper's Example 6: the
// minimal forward proof of P(0,a) (a = f(0,0,1)) has negative hypotheses
// exactly {Q(1), Q(a)}, and a proof of the R-chain member has none.
func TestExplainExample6MinimalProofs(t *testing.T) {
	prog, db, _, st := compile(t, example4)
	e := NewEngine(prog, db, Options{Depth: 8})
	m := e.Evaluate()

	c0 := st.Terms.Const("0")
	c1 := st.Terms.Const("1")
	sk := prog.Rules[0].Exist[0].Fn
	a := st.Terms.Skolem(sk, []term.ID{c0, c0, c1})
	b := st.Terms.Skolem(sk, []term.ID{c0, c1, a})
	cT := st.Terms.Skolem(sk, []term.ID{c0, a, b})

	// Forward proof of R(0,b,c): purely positive, N(π) = ∅ (Example 6).
	rp, _ := st.LookupPred("r")
	rbc := st.Atom(rp, []term.ID{c0, b, cT})
	proof, ok := m.Explain(rbc)
	if !ok {
		t.Fatalf("no forward proof of R(0,b,c)")
	}
	if len(proof.NegHypotheses) != 0 {
		var hs []string
		for _, h := range proof.NegHypotheses {
			hs = append(hs, st.String(h))
		}
		t.Errorf("N(π) for R(0,b,c) = %v, want ∅", hs)
	}

	// Forward proof of P(0,a): N(π') = {Q(1), Q(a)} (Example 6).
	pp, _ := st.LookupPred("p")
	p0a := st.Atom(pp, []term.ID{c0, a})
	proof2, ok := m.Explain(p0a)
	if !ok {
		t.Fatalf("no forward proof of P(0,a)")
	}
	qp, _ := st.LookupPred("q")
	q1 := st.Atom(qp, []term.ID{c1})
	qa := st.Atom(qp, []term.ID{a})
	if len(proof2.NegHypotheses) != 2 ||
		!(proof2.NegHypotheses[0] == q1 && proof2.NegHypotheses[1] == qa ||
			proof2.NegHypotheses[0] == qa && proof2.NegHypotheses[1] == q1) {
		var hs []string
		for _, h := range proof2.NegHypotheses {
			hs = append(hs, st.String(h))
		}
		t.Errorf("N(π') for P(0,a) = %v, want {q(1), q(a)}", hs)
	}
	// Every negative hypothesis must be false in the model (¬.N(π) ⊆ WFS).
	for _, h := range proof2.NegHypotheses {
		if m.Truth(h) != ground.False {
			t.Errorf("negative hypothesis %s is not false", st.String(h))
		}
	}
}

func TestExplainStructureIsWellFounded(t *testing.T) {
	prog, db, _, st := compile(t, example4)
	m := NewEngine(prog, db, Options{Depth: 8}).Evaluate()
	// Every true atom must have a proof whose leaves are database facts
	// and whose edges follow recorded instances.
	for _, g := range m.TrueAtoms() {
		proof, ok := m.Explain(g)
		if !ok {
			t.Fatalf("true atom %s has no forward proof", st.String(g))
		}
		var walk func(n *ProofNode, depth int)
		seen := map[*ProofNode]bool{}
		walk = func(n *ProofNode, depth int) {
			if depth > 10_000 {
				t.Fatalf("proof of %s is cyclic", st.String(g))
			}
			if seen[n] {
				return
			}
			seen[n] = true
			if n.Inst < 0 {
				if m.Chase.Depth(n.Atom) != 0 {
					t.Errorf("leaf %s is not a database fact", st.String(n.Atom))
				}
				return
			}
			in := &m.Chase.Instances[n.Inst]
			if in.Head != n.Atom {
				t.Errorf("instance head mismatch at %s", st.String(n.Atom))
			}
			if len(n.Children) != len(in.Pos) {
				t.Errorf("children/positive-body mismatch at %s", st.String(n.Atom))
			}
			for _, c := range n.Children {
				walk(c, depth+1)
			}
		}
		walk(proof.Goal, 0)
	}
}

func TestExplainFalseAtom(t *testing.T) {
	prog, db, _, st := compile(t, example4)
	m := NewEngine(prog, db, Options{Depth: 8}).Evaluate()
	c1 := st.Terms.Const("1")
	qp, _ := st.LookupPred("q")
	q1 := st.Atom(qp, []term.ID{c1})

	if _, ok := m.Explain(q1); ok {
		t.Errorf("false atom q(1) has a forward proof")
	}
	blocked, inUniverse := m.ExplainFalse(q1)
	if !inUniverse {
		t.Fatalf("q(1) should be in the derived universe")
	}
	// Its only instance r(0,0,1) ∧ ¬p(0,0) → q(1) is blocked by the
	// negative body atom p(0,0), which is true (a database fact).
	if len(blocked) != 1 {
		t.Fatalf("blocked instances = %d, want 1", len(blocked))
	}
	pp, _ := st.LookupPred("p")
	c0 := st.Terms.Const("0")
	p00 := st.Atom(pp, []term.ID{c0, c0})
	bi := blocked[0]
	if !bi.Negative || bi.Blocker != p00 || bi.BlockerTruth != ground.True {
		t.Errorf("blocker = %+v, want negative p(0,0)=true", bi)
	}

	// An atom outside the universe: no explanation, second return false.
	never := st.Atom(qp, []term.ID{st.Terms.Const("99")})
	if _, inUni := m.ExplainFalse(never); inUni {
		t.Errorf("underived atom reported in universe")
	}
}

func TestProofRender(t *testing.T) {
	prog, db, _, st := compile(t, example4)
	m := NewEngine(prog, db, Options{Depth: 8}).Evaluate()
	c0 := st.Terms.Const("0")
	tp, _ := st.LookupPred("t")
	t0 := st.Atom(tp, []term.ID{c0})
	proof, ok := m.Explain(t0)
	if !ok {
		t.Fatalf("no proof of t(0)")
	}
	out := proof.Render(st)
	for _, want := range []string{"t(0)", "[database fact]", "negative hypotheses", "not s(0)"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestExplainSharedSubproofs(t *testing.T) {
	// Diamond: d needs b and c, both need a: the proof must share a's
	// node rather than duplicate it.
	src := `
a(x).
a(X) -> b(X).
a(X) -> c(X).
b(X), c(X) -> d(X).
`
	prog, db, _, st := compile(t, src)
	m := NewEngine(prog, db, Options{}).Evaluate()
	dp, _ := st.LookupPred("d")
	dx := st.Atom(dp, []term.ID{st.Terms.Const("x")})
	proof, ok := m.Explain(dx)
	if !ok {
		t.Fatalf("no proof of d(x)")
	}
	// Collect distinct nodes per atom: each atom appears exactly once.
	count := map[atom.AtomID][]*ProofNode{}
	var walk func(n *ProofNode)
	seen := map[*ProofNode]bool{}
	walk = func(n *ProofNode) {
		if seen[n] {
			return
		}
		seen[n] = true
		count[n.Atom] = append(count[n.Atom], n)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(proof.Goal)
	for a, nodes := range count {
		if len(nodes) != 1 {
			t.Errorf("atom %s has %d proof nodes, want 1 (shared)", st.String(a), len(nodes))
		}
	}
}
