package core

import (
	"strings"
	"testing"

	"repro/internal/chase"
	"repro/internal/ground"
	"repro/internal/program"
)

// TestIncrementalLadderMatchesFromScratch is the tentpole cross-check:
// for every depth of the adaptive-deepening ladder, the engine's
// incremental evaluation (resumable chase + appended grounding) must
// produce the same derived universe, the same instance set, and the same
// three-valued model as a from-scratch chase.Run at that depth — for all
// four WFS fixpoint algorithms.
func TestIncrementalLadderMatchesFromScratch(t *testing.T) {
	prog, db, _, st := compile(t, example4)
	depths := []int{4, 6, 8, 10, 12} // the default ladder schedule, extended

	for _, alg := range []Algorithm{AltFixpoint, UnfoundedSets, ForwardProofs, Remainder} {
		t.Run(alg.String(), func(t *testing.T) {
			inc := NewEngine(prog, db, Options{Algorithm: alg})
			for _, d := range depths {
				m := inc.EvaluateAtDepth(d) // extends the previous depth's chase
				scratch := NewEngine(prog, db, Options{Algorithm: alg}).EvaluateAtDepth(d)

				// Derived universe: same atoms at the same minimal depths.
				if len(m.Chase.Atoms) != len(scratch.Chase.Atoms) {
					t.Fatalf("depth %d: universe %d vs %d atoms",
						d, len(m.Chase.Atoms), len(scratch.Chase.Atoms))
				}
				for _, a := range scratch.Chase.Atoms {
					if !m.Chase.Derived(a) {
						t.Fatalf("depth %d: incremental chase missing %s", d, st.String(a))
					}
					if m.Chase.Depth(a) != scratch.Chase.Depth(a) {
						t.Errorf("depth %d: depth(%s) = %d, want %d", d,
							st.String(a), m.Chase.Depth(a), scratch.Chase.Depth(a))
					}
				}
				// Instance set: same deduplicated (rule, guard) pairs.
				if len(m.Chase.Instances) != len(scratch.Chase.Instances) {
					t.Fatalf("depth %d: instances %d vs %d",
						d, len(m.Chase.Instances), len(scratch.Chase.Instances))
				}
				// Three-valued model: identical truth on every global atom
				// of either universe (local numbering may differ).
				for _, a := range scratch.Chase.Atoms {
					if got, want := m.Truth(a), scratch.Truth(a); got != want {
						t.Errorf("depth %d: truth(%s) = %v, want %v",
							d, st.String(a), got, want)
					}
				}
				if m.Exact != scratch.Exact || m.UsableDepth != scratch.UsableDepth {
					t.Errorf("depth %d: exact/usable = %v/%d, want %v/%d", d,
						m.Exact, m.UsableDepth, scratch.Exact, scratch.UsableDepth)
				}
			}
		})
	}
}

// TestEngineReusesChaseAcrossLadder (white box): the adaptive ladder must
// not re-chase from the database — successive depths extend one resumable
// chase, and repeated requests for the same depth return the cached
// model.
func TestEngineReusesChaseAcrossLadder(t *testing.T) {
	prog, db, _, _ := compile(t, example4)
	e := NewEngine(prog, db, Options{})
	m4 := e.EvaluateAtDepth(4)
	if e.res == nil || e.res.Opts.MaxDepth != 4 {
		t.Fatalf("engine did not retain the depth-4 chase")
	}
	m6 := e.EvaluateAtDepth(6)
	if e.res.Opts.MaxDepth != 6 {
		t.Fatalf("engine chase not advanced to depth 6")
	}
	// The deeper universe extends the shallower one as a prefix.
	for i, a := range m4.Chase.Atoms {
		if m6.Chase.Atoms[i] != a {
			t.Fatalf("extension reordered atom %d", i)
		}
	}
	if e.EvaluateAtDepth(4) != m4 || e.EvaluateAtDepth(6) != m6 {
		t.Error("per-depth model cache missed")
	}
	// A shallower, off-ladder depth still evaluates correctly (fresh run)
	// and does not clobber the deeper resumable state.
	m3 := e.EvaluateAtDepth(3)
	if len(m3.Chase.Atoms) > len(m6.Chase.Atoms) {
		t.Error("shallow model larger than deep model")
	}
	if e.res.Opts.MaxDepth != 6 {
		t.Errorf("shallow request clobbered the deep chase (now %d)", e.res.Opts.MaxDepth)
	}
}

// TestAdaptiveAnswerEmptyScheduleErrors is the regression test for the
// silent-False bug: a resolved AdaptiveStart above MaxDepth (here via
// GuardBand 30 against the default MaxDepth 24) must surface as a
// descriptive error, not an empty-stats False.
func TestAdaptiveAnswerEmptyScheduleErrors(t *testing.T) {
	prog, db, _, st := compile(t, example4)
	q, err := program.ParseQuery("? t(X).", st)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(prog, db, Options{GuardBand: 30})
	_, _, aerr := e.Answer(q)
	if aerr == nil {
		t.Fatal("empty adaptive schedule answered without error")
	}
	if !strings.Contains(aerr.Error(), "MaxDepth") {
		t.Errorf("error not descriptive: %v", aerr)
	}

	// Validate catches the same configurations directly.
	if err := (Options{GuardBand: 30}).Validate(); err == nil {
		t.Error("Options.Validate accepted GuardBand 30 with default MaxDepth")
	}
	if err := (Options{AdaptiveStart: 50}).Validate(); err == nil {
		t.Error("Options.Validate accepted AdaptiveStart 50 with default MaxDepth")
	}
	if err := (Options{}).Validate(); err != nil {
		t.Errorf("Options.Validate rejected defaults: %v", err)
	}
	if err := (Options{GuardBand: 30, MaxDepth: 40}).Validate(); err != nil {
		t.Errorf("Options.Validate rejected a satisfiable schedule: %v", err)
	}
}

// TestExtendModelSharesSaturatedChase: extending past a saturated chase
// reuses the chase and grounding outright.
func TestExtendModelSharesSaturatedChase(t *testing.T) {
	prog, db, _, _ := compile(t, `
edge(a,b). edge(b,c). start(a).
start(X) -> reach(X).
reach(X), edge(X,Y) -> reach(Y).
`)
	e := NewEngine(prog, db, Options{})
	m := e.EvaluateAtDepth(10)
	if !m.Exact {
		t.Fatal("finite chase should saturate")
	}
	ext := ExtendModel(m, prog, e.Opts, 20)
	if ext.Chase != m.Chase || ext.GP != m.GP {
		t.Error("saturated extension rebuilt chase or grounding")
	}
	if !ext.Exact {
		t.Error("saturated extension lost exactness")
	}
}

// TestIncrementalChaseCrossChecksUnderTruncation: MaxAtoms truncation
// carries over an extension instead of silently clearing.
func TestIncrementalChaseCrossChecksUnderTruncation(t *testing.T) {
	prog, db, _, _ := compile(t, "seed(c).\nseed(X) -> seed(Y).")
	res := chase.Run(prog, db, chase.Options{MaxDepth: 10, MaxAtoms: 5})
	if !res.Truncated {
		t.Fatal("expected truncation")
	}
	ext := res.Extend(prog, 20)
	if !ext.Truncated {
		t.Error("extension dropped the truncation flag")
	}
	gp := ground.ExtendFromChase(ground.FromChase(res), ext)
	if gp.NumAtoms() < len(res.Atoms) {
		t.Error("extension lost atoms")
	}
}
