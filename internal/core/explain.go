package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/atom"
	"repro/internal/ground"
)

// ProofNode is one node of a forward proof π (Definition 5): a derived
// atom together with the ground rule instance that derived it and proofs
// of the instance's positive body atoms. Nodes are shared (the proof is a
// DAG rendered as a forest), mirroring condition 3 of Definition 5: every
// positive body atom has a proof at a strictly smaller derivation level.
type ProofNode struct {
	Atom atom.AtomID
	// Inst indexes Model.Chase.Instances; -1 marks a database fact
	// (a root of F+(P)).
	Inst     int32
	Children []*ProofNode // proofs of the instance's positive body atoms
}

// ForwardProof is a forward proof of Goal from P with negative hypotheses
// (Definition 5): a finite sub-derivation of F+(P) whose rules' negative
// body atoms — the set N(π) — are all false in the well-founded model
// (¬.N(π) ⊆ WFS), witnessing membership of the goal in WFS(P).
type ForwardProof struct {
	Goal *ProofNode
	// NegHypotheses is N(π): the negative body atoms of all rules used.
	NegHypotheses []atom.AtomID
}

// PrepareExplanations materializes the lazily-computed proof ranks, after
// which Explain performs no writes to the model. It is guarded by a
// per-model sync.Once, so any number of goroutines — including readers of
// different snapshots sharing one rebased model — may call it before
// Explain without coordination.
func (m *Model) PrepareExplanations() {
	m.ranksOnce.Do(func() { m.proofRanks() })
}

// Explain constructs a forward proof of a true atom from the model,
// choosing for every atom a supporting instance whose positive body was
// derived strictly earlier (so the proof is well-founded, never circular).
// It returns false when the atom is not true in the model.
func (m *Model) Explain(a atom.AtomID) (*ForwardProof, bool) {
	if m.Truth(a) != ground.True {
		return nil, false
	}
	_, support := m.proofRanks()
	local := m.GP.Local(a)

	nodes := make(map[int32]*ProofNode)
	negSet := make(map[atom.AtomID]bool)
	var build func(l int32) *ProofNode
	build = func(l int32) *ProofNode {
		if n, ok := nodes[l]; ok {
			return n
		}
		n := &ProofNode{Atom: m.GP.Atoms[l], Inst: support[l]}
		nodes[l] = n
		if n.Inst < 0 {
			return n // database fact
		}
		in := &m.Chase.Instances[n.Inst]
		for _, b := range in.Neg {
			negSet[b] = true
		}
		for _, b := range in.Pos {
			n.Children = append(n.Children, build(m.GP.Local(b)))
		}
		return n
	}
	goal := build(local)

	neg := make([]atom.AtomID, 0, len(negSet))
	for b := range negSet {
		neg = append(neg, b)
	}
	sort.Slice(neg, func(i, j int) bool { return neg[i] < neg[j] })
	return &ForwardProof{Goal: goal, NegHypotheses: neg}, true
}

// proofRanks replays the positive closure of the WFS-true atoms: using
// only instances whose negative body atoms are WFS-false, it derives every
// true atom in rounds and records, per true atom, the first instance that
// supported it (its positive body fully derived in earlier rounds).
// Database facts get support -1. The result is cached per model.
func (m *Model) proofRanks() (ranks []int32, support []int32) {
	if m.ranks != nil {
		return m.ranks, m.support
	}
	n := m.GP.NumAtoms()
	ranks = make([]int32, n)
	support = make([]int32, n)
	for i := range ranks {
		ranks[i] = -1
		support[i] = -2 // unsupported
	}
	// Facts (depth-0 atoms).
	for i, g := range m.GP.Atoms {
		if m.Chase.Depth(g) == 0 {
			ranks[i] = 0
			support[i] = -1
		}
	}
	// Usable instances: negative bodies all false in the model, heads
	// true (we only explain true atoms).
	type inst struct {
		idx  int32
		head int32
		pos  []int32
		need int
	}
	var usable []inst
	occ := make(map[int32][]int32) // atom → usable-instance indexes
	for ii := range m.Chase.Instances {
		in := &m.Chase.Instances[ii]
		if m.Truth(in.Head) != ground.True {
			continue
		}
		ok := true
		for _, b := range in.Neg {
			if m.Truth(b) != ground.False {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		e := inst{idx: int32(ii), head: m.GP.Local(in.Head)}
		for _, b := range in.Pos {
			e.pos = append(e.pos, m.GP.Local(b))
		}
		e.need = len(e.pos)
		ui := int32(len(usable))
		usable = append(usable, e)
		for _, b := range e.pos {
			occ[b] = append(occ[b], ui)
		}
		if e.need == 0 {
			// Instances with empty positive bodies cannot occur (guards
			// are positive), but keep the general shape.
			usable[ui].need = 0
		}
	}
	// Seed queue with already-ranked atoms, then propagate in rounds.
	queue := make([]int32, 0, n)
	for i := int32(0); int(i) < n; i++ {
		if ranks[i] == 0 {
			queue = append(queue, i)
		}
	}
	// Count down positive bodies as their atoms are derived.
	counts := make([]int, len(usable))
	for ui := range usable {
		counts[ui] = usable[ui].need
		if counts[ui] == 0 && support[usable[ui].head] == -2 {
			support[usable[ui].head] = usable[ui].idx
			ranks[usable[ui].head] = 1
			queue = append(queue, usable[ui].head)
		}
	}
	for len(queue) > 0 {
		a := queue[0]
		queue = queue[1:]
		for _, ui := range occ[a] {
			counts[ui]--
			if counts[ui] == 0 {
				h := usable[ui].head
				if support[h] == -2 {
					support[h] = usable[ui].idx
					ranks[h] = ranks[a] + 1
					queue = append(queue, h)
				}
			}
		}
	}
	m.ranks, m.support = ranks, support
	return ranks, support
}

// Render prints the proof as an indented derivation with the negative
// hypotheses listed last (the format used by wfsquery -explain).
func (p *ForwardProof) Render(st *atom.Store) string {
	var b strings.Builder
	seen := make(map[*ProofNode]bool)
	var rec func(n *ProofNode, depth int)
	rec = func(n *ProofNode, depth int) {
		fmt.Fprintf(&b, "%s%s", strings.Repeat("  ", depth), st.String(n.Atom))
		if n.Inst < 0 {
			b.WriteString("   [database fact]")
		}
		if seen[n] && len(n.Children) > 0 {
			b.WriteString("   [shown above]\n")
			return
		}
		seen[n] = true
		b.WriteByte('\n')
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	rec(p.Goal, 0)
	if len(p.NegHypotheses) > 0 {
		b.WriteString("negative hypotheses N(π), all false in WFS:\n")
		for _, h := range p.NegHypotheses {
			fmt.Fprintf(&b, "  not %s\n", st.String(h))
		}
	}
	return b.String()
}

// BlockedInstance explains why one candidate derivation of a false atom
// cannot fire: the blocking literal and its truth value.
type BlockedInstance struct {
	Inst    int32
	Blocker atom.AtomID
	// Negative reports the blocker was a negative body atom (true in the
	// model); otherwise it is a positive body atom that is not true.
	Negative     bool
	BlockerTruth ground.Truth
}

// ExplainFalse explains why an atom is false: either it was never derived
// by the bounded chase (no forward proof exists at all), or every ground
// instance deriving it is blocked. The second return distinguishes the
// two cases: false means "not in the universe".
func (m *Model) ExplainFalse(a atom.AtomID) ([]BlockedInstance, bool) {
	l := m.GP.Local(a)
	if l < 0 {
		return nil, false
	}
	var out []BlockedInstance
	for ii := range m.Chase.Instances {
		in := &m.Chase.Instances[ii]
		if in.Head != a {
			continue
		}
		bi := BlockedInstance{Inst: int32(ii), Blocker: atom.NoAtom}
		for _, b := range in.Neg {
			if m.Truth(b) == ground.True {
				bi.Blocker, bi.Negative, bi.BlockerTruth = b, true, ground.True
				break
			}
		}
		if bi.Blocker == atom.NoAtom {
			for _, b := range in.Pos {
				if t := m.Truth(b); t != ground.True {
					bi.Blocker, bi.Negative, bi.BlockerTruth = b, false, t
					break
				}
			}
		}
		out = append(out, bi)
	}
	return out, true
}
