package trace

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSpanIsSafe(t *testing.T) {
	var s *Span
	if s.Enabled() {
		t.Fatal("nil span reports enabled")
	}
	if s.Detailed() {
		t.Fatal("nil span reports detailed")
	}
	if c := s.Child("x"); c != nil {
		t.Fatal("nil span returned non-nil child")
	}
	s.End()
	s.Count("n", 1)
	s.SetCount("n", 2)
	s.AttachTimed("x", time.Millisecond, nil)
	s.Phase("p")() // returned closure must also be callable
	if d := s.Duration(); d != 0 {
		t.Fatalf("nil span duration = %v", d)
	}
	if tr := s.Trace(); tr != nil {
		t.Fatal("nil span produced a trace")
	}
	if s.Name() != "" || s.Counter("n") != 0 {
		t.Fatal("nil span has a name or counters")
	}
	s.Walk(func(*Span) { t.Fatal("nil span walked") })
}

func TestTreeShape(t *testing.T) {
	root := New("query")
	a := root.Child("chase")
	a.Count("instances", 10)
	a.Count("instances", 5)
	a.End()
	b := root.Child("solve")
	b.SetCount("sccs", 7)
	b.Child("condense").End()
	b.End()
	tr := root.Trace()

	if tr.Name != "query" || len(tr.Children) != 2 {
		t.Fatalf("unexpected root: %+v", tr)
	}
	if tr.Children[0].Name != "chase" || tr.Children[0].Counters["instances"] != 15 {
		t.Fatalf("unexpected chase child: %+v", tr.Children[0])
	}
	solve := tr.Find("solve")
	if solve == nil || solve.Counters["sccs"] != 7 {
		t.Fatalf("Find(solve) = %+v", solve)
	}
	if tr.Find("condense") == nil {
		t.Fatal("Find missed grandchild")
	}
	if tr.Find("missing") != nil {
		t.Fatal("Find invented a node")
	}
	// Trace is JSON-serializable with the expected keys.
	raw, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"name"`, `"dur_us"`, `"start_us"`} {
		if !strings.Contains(string(raw), key) {
			t.Fatalf("marshaled trace missing %s: %s", key, raw)
		}
	}
}

func TestChildrenSumWithinWallTime(t *testing.T) {
	root := New("query")
	c1 := root.Child("p1")
	time.Sleep(2 * time.Millisecond)
	c1.End()
	c2 := root.Child("p2")
	time.Sleep(2 * time.Millisecond)
	c2.End()
	tr := root.Trace()
	if sum := tr.SumChildrenUS(); sum > tr.DurUS {
		t.Fatalf("children sum %dus exceeds root %dus", sum, tr.DurUS)
	}
	if tr.DurUS < 4000 {
		t.Fatalf("root duration %dus shorter than slept time", tr.DurUS)
	}
}

func TestDetailInheritance(t *testing.T) {
	if !NewDetailed("r").Child("c").Detailed() {
		t.Fatal("detail not inherited")
	}
	if New("r").Child("c").Detailed() {
		t.Fatal("detail appeared from nowhere")
	}
}

func TestEndIsIdempotent(t *testing.T) {
	s := New("x")
	s.End()
	d := s.Duration()
	time.Sleep(2 * time.Millisecond)
	s.End()
	if got := s.Duration(); got != d {
		t.Fatalf("second End moved duration: %v -> %v", d, got)
	}
}

func TestAttachTimed(t *testing.T) {
	root := New("solve")
	root.AttachTimed("scc-42", 3*time.Millisecond, map[string]int64{"atoms": 9})
	tr := root.Trace()
	n := tr.Find("scc-42")
	if n == nil || n.Counters["atoms"] != 9 {
		t.Fatalf("attached span missing or wrong: %+v", n)
	}
	if n.DurUS < 2900 || n.DurUS > 3500 {
		t.Fatalf("attached duration %dus, want ~3000", n.DurUS)
	}
}

func TestRenderers(t *testing.T) {
	root := New("query")
	c := root.Child("ladder")
	c.Count("atoms", 3)
	c.Child("depth-4").End()
	c.End()
	tr := root.Trace()

	f := tr.Format()
	for _, want := range []string{"query", "ladder", "depth-4", "atoms=3"} {
		if !strings.Contains(f, want) {
			t.Fatalf("Format missing %q:\n%s", want, f)
		}
	}
	if !strings.Contains(f, "  ladder") {
		t.Fatalf("Format not indented:\n%s", f)
	}

	cpt := tr.Compact()
	if !strings.Contains(cpt, "query=") || !strings.Contains(cpt, "[ladder=") {
		t.Fatalf("Compact shape wrong: %s", cpt)
	}
	if strings.Contains(cpt, "\n") {
		t.Fatalf("Compact not one line: %q", cpt)
	}
}

func TestFmtDurUnits(t *testing.T) {
	cases := map[int64]string{
		5:         "5µs",
		1_500:     "1.50ms",
		2_340_000: "2.34s",
	}
	for us, want := range cases {
		if got := fmtDur(us); got != want {
			t.Fatalf("fmtDur(%d) = %q, want %q", us, got, want)
		}
	}
}

// TestConcurrentUse exercises a span tree from many goroutines the way
// the modular solver's worker pool does; run under -race it proves the
// recorder is safe for concurrent children and counters.
func TestConcurrentUse(t *testing.T) {
	root := New("solve")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c := root.Child("comp")
				c.Count("atoms", 1)
				root.Count("total", 1)
				c.End()
			}
		}()
	}
	wg.Wait()
	tr := root.Trace()
	if len(tr.Children) != 800 {
		t.Fatalf("lost children: %d", len(tr.Children))
	}
	if tr.Counters["total"] != 800 {
		t.Fatalf("lost counts: %d", tr.Counters["total"])
	}
}

func TestWalk(t *testing.T) {
	root := New("a")
	root.Child("b").End()
	root.Child("b").End()
	root.End()
	got := map[string]int{}
	root.Walk(func(s *Span) { got[s.Name()]++ })
	if got["a"] != 1 || got["b"] != 2 {
		t.Fatalf("walk visited %v", got)
	}
}
