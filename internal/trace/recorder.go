// Flight recorder: a bounded in-memory ring of completed request
// traces with tail-based sampling. Classification happens after the
// request finishes — which is the point: the interesting traces (errors,
// slow-query breaches, recovery/startup) are only identifiable at the
// tail. Those are always kept, in a FIFO ring holding half the
// capacity; routine traffic is reservoir-sampled (Vitter's Algorithm R)
// into the other half, so the recorder retains a uniform sample of
// normal behavior for baseline comparison without unbounded growth.
//
// The routine-traffic path is engineered for the reject case: the
// reservoir uses skip sampling (Vitter's Algorithm X — the admission
// gap after each accepted offer is drawn once, by inverting the skip
// distribution, instead of running a Bernoulli trial per offer), so a
// rejected Record is one atomic increment plus one atomic load — no
// PRNG draw, no lock, and the span tree is never snapshotted. Only
// admitted traces pay for materialization.
package trace

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// Retention classes, recorded on RequestTrace.Kept and counted in
// RecorderStats.
const (
	KeptError   = "error"   // status >= 500 or an explicit failure
	KeptSlow    = "slow"    // over the slow-query threshold
	KeptPinned  = "pinned"  // explicitly retained (?trace=1, startup recovery)
	KeptSampled = "sampled" // survived the reservoir
)

// RequestTrace is one completed request in the flight recorder: the
// identity and summary fields shown by the /v1/traces index, plus the
// full span tree in the same JSON shape as ?trace=1. Entries are
// immutable once recorded.
type RequestTrace struct {
	TraceID       string     `json:"trace_id"`
	SpanID        string     `json:"span_id,omitempty"`
	ParentID      string     `json:"parent_span_id,omitempty"`
	Route         string     `json:"route"`
	Path          string     `json:"path,omitempty"`
	Session       string     `json:"session,omitempty"`
	Status        int        `json:"status,omitempty"`
	Error         string     `json:"error,omitempty"`
	StartUnixNano int64      `json:"start_unix_nano,omitempty"`
	DurationUS    int64      `json:"dur_us"`
	Kept          string     `json:"kept,omitempty"`
	Trace         *EvalTrace `json:"trace,omitempty"`

	// Span is the request's live root span; Record snapshots it into
	// Trace on admission so rejected requests never pay the snapshot.
	Span *Span `json:"-"`
	// Pinned forces retention regardless of status and duration.
	Pinned bool `json:"-"`
	// Slow marks a slow-query breach observed by the handler (the
	// recorder also applies its own duration threshold).
	Slow bool `json:"-"`
}

// Recorder is the flight recorder. All methods are safe for concurrent
// use and safe on a nil receiver (the disabled recorder).
type Recorder struct {
	keepCap   int
	sampCap   int
	threshold time.Duration

	sampleSeen atomic.Int64 // routine requests offered to the reservoir
	// nextOffer is the sequence number of the next reservoir offer that
	// will be considered for admission; offers below it reject with two
	// atomic operations. Advanced under mu by skip-sampling draws.
	nextOffer atomic.Int64

	mu       sync.Mutex
	kept     []*RequestTrace // FIFO ring: error/slow/pinned
	keptHead int             // next eviction slot once full
	sampled  []*RequestTrace // reservoir of routine traffic
	byID     map[string]*RequestTrace

	recorded map[string]int64 // admissions by class
	evicted  int64
}

// NewRecorder returns a recorder bounded at capacity entries, half
// reserved for kept (error/slow/pinned) traces and half for the
// reservoir sample. Requests at or over slowThreshold are classified
// slow; zero disables the duration check (explicit Slow marks still
// apply).
func NewRecorder(capacity int, slowThreshold time.Duration) *Recorder {
	if capacity < 2 {
		capacity = 2
	}
	keep := capacity / 2
	r := &Recorder{
		keepCap:   keep,
		sampCap:   capacity - keep,
		threshold: slowThreshold,
		byID:      make(map[string]*RequestTrace, capacity),
		recorded:  make(map[string]int64, 4),
	}
	r.nextOffer.Store(1) // consider every offer until the reservoir fills
	return r
}

// Threshold returns the slow-query duration bound the recorder applies.
func (r *Recorder) Threshold() time.Duration {
	if r == nil {
		return 0
	}
	return r.threshold
}

// Capacity returns the total entry bound (0 on a nil recorder).
func (r *Recorder) Capacity() int {
	if r == nil {
		return 0
	}
	return r.keepCap + r.sampCap
}

// Record classifies a completed request and retains or discards it.
// Kept classes (error, slow, pinned) always enter the kept ring,
// evicting its oldest entry when full; everything else is offered to
// the reservoir. rt must not be mutated after the call.
func (r *Recorder) Record(rt *RequestTrace) {
	if r == nil || rt == nil {
		return
	}
	class := KeptSampled
	switch {
	case rt.Pinned:
		class = KeptPinned
	case rt.Status >= 500:
		class = KeptError
	case rt.Slow || (r.threshold > 0 && time.Duration(rt.DurationUS)*time.Microsecond >= r.threshold):
		class = KeptSlow
	}

	var seq int64
	if class == KeptSampled {
		seq = r.sampleSeen.Add(1)
		if seq < r.nextOffer.Load() {
			return // fast reject: two atomics, no PRNG, no lock, no snapshot
		}
	}

	rt.Kept = class
	if rt.Trace == nil && rt.Span != nil {
		rt.Trace = rt.Span.Trace()
	}
	rt.Span = nil

	r.mu.Lock()
	defer r.mu.Unlock()
	if class == KeptSampled {
		if seq < r.nextOffer.Load() {
			return // a concurrent offer won the slot and advanced the skip
		}
		r.admitSampledLocked(rt, seq)
	} else {
		r.admitKeptLocked(rt)
	}
	r.recorded[class]++
	r.byID[rt.TraceID] = rt
}

func (r *Recorder) admitKeptLocked(rt *RequestTrace) {
	if len(r.kept) < r.keepCap {
		r.kept = append(r.kept, rt)
		return
	}
	r.dropLocked(r.kept[r.keptHead])
	r.kept[r.keptHead] = rt
	r.keptHead = (r.keptHead + 1) % r.keepCap
}

// admitSampledLocked admits one considered reservoir offer and draws
// the gap until the next one. While the reservoir is filling, every
// offer is considered; once full, an admitted offer replaces a uniform
// slot and the next consideration point jumps ahead by a skip drawn
// from Algorithm X's gap distribution — exactly Algorithm R's k/n
// admission probabilities, paid only on admissions.
func (r *Recorder) admitSampledLocked(rt *RequestTrace, seq int64) {
	if len(r.sampled) < r.sampCap {
		r.sampled = append(r.sampled, rt)
		if len(r.sampled) == r.sampCap {
			r.nextOffer.Store(seq + 1 + sampleSkip(seq, r.sampCap))
		} else {
			r.nextOffer.Store(seq + 1)
		}
		return
	}
	slot := rand.IntN(len(r.sampled))
	r.dropLocked(r.sampled[slot])
	r.sampled[slot] = rt
	r.nextOffer.Store(seq + 1 + sampleSkip(seq, r.sampCap))
}

// sampleSkip draws how many reservoir offers after seq to reject before
// the next admission, by inverting the gap's survival function
// P(skip > s) = prod_{i=1..s+1} (1 - k/(seq+i)): one uniform draw, then
// one float multiply per skipped offer — amortized O(1) per offer, with
// no per-offer PRNG use on the reject path.
func sampleSkip(seq int64, k int) int64 {
	u := rand.Float64()
	p := 1.0
	var s int64
	for {
		t := float64(seq + s + 1)
		p *= (t - float64(k)) / t
		if p <= u {
			return s
		}
		s++
	}
}

func (r *Recorder) dropLocked(old *RequestTrace) {
	r.evicted++
	// Two entries can share a trace ID (retries, internal routes); only
	// unmap when the index still points at the evicted entry.
	if r.byID[old.TraceID] == old {
		delete(r.byID, old.TraceID)
	}
}

// Get returns the recorded trace with the given trace ID.
func (r *Recorder) Get(traceID string) (*RequestTrace, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rt, ok := r.byID[traceID]
	return rt, ok
}

// Index returns every retained trace, newest first.
func (r *Recorder) Index() []*RequestTrace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]*RequestTrace, 0, len(r.kept)+len(r.sampled))
	out = append(out, r.kept...)
	out = append(out, r.sampled...)
	r.mu.Unlock()
	// Sort by start time descending; insertion order within the rings is
	// not chronological once eviction wraps.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].StartUnixNano > out[j-1].StartUnixNano; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// RecorderStats is the retention telemetry exported as wfsd_trace_* in
// /metrics.
type RecorderStats struct {
	Entries    int
	Capacity   int
	Recorded   map[string]int64 // admissions by class
	Evicted    int64
	SampleSeen int64 // routine requests offered to the reservoir
}

// Stats snapshots the recorder's retention counters.
func (r *Recorder) Stats() RecorderStats {
	if r == nil {
		return RecorderStats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rec := make(map[string]int64, len(r.recorded))
	for k, v := range r.recorded {
		rec[k] = v
	}
	return RecorderStats{
		Entries:    len(r.kept) + len(r.sampled),
		Capacity:   r.keepCap + r.sampCap,
		Recorded:   rec,
		Evicted:    r.evicted,
		SampleSeen: r.sampleSeen.Load(),
	}
}
