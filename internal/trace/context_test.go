package trace

import (
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	c := MintContext()
	if !c.Valid() {
		t.Fatalf("minted context invalid: %+v", c)
	}
	h := c.Traceparent()
	if len(h) != 55 {
		t.Fatalf("traceparent %q: len %d, want 55", h, len(h))
	}
	if h != strings.ToLower(h) {
		t.Fatalf("traceparent %q not lowercase", h)
	}
	got, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected own output", h)
	}
	if got != c {
		t.Fatalf("round trip: got %+v, want %+v", got, c)
	}
}

func TestParseTraceparentValid(t *testing.T) {
	const tid = "4bf92f3577b34da6a3ce929d0e0e4736"
	const sid = "00f067aa0ba902b7"
	cases := []string{
		"00-" + tid + "-" + sid + "-01",
		"00-" + tid + "-" + sid + "-00", // unsampled is still valid
		"  00-" + tid + "-" + sid + "-01  ",
		// Future version with extra fields: accepted, extras ignored.
		"cc-" + tid + "-" + sid + "-01-extra-stuff",
	}
	for _, h := range cases {
		c, ok := ParseTraceparent(h)
		if !ok {
			t.Errorf("ParseTraceparent(%q) = rejected, want accepted", h)
			continue
		}
		if c.TraceIDString() != tid || c.SpanIDString() != sid {
			t.Errorf("ParseTraceparent(%q) = %s/%s, want %s/%s",
				h, c.TraceIDString(), c.SpanIDString(), tid, sid)
		}
	}
}

func TestParseTraceparentMalformed(t *testing.T) {
	const tid = "4bf92f3577b34da6a3ce929d0e0e4736"
	const sid = "00f067aa0ba902b7"
	cases := map[string]string{
		"empty":              "",
		"garbage":            "not-a-traceparent",
		"short":              "00-" + tid[:30] + "-" + sid + "-01",
		"uppercase trace id": "00-" + strings.ToUpper(tid) + "-" + sid + "-01",
		"uppercase version":  "0A-" + tid + "-" + sid + "-01",
		"zero trace id":      "00-00000000000000000000000000000000-" + sid + "-01",
		"zero span id":       "00-" + tid + "-0000000000000000-01",
		"version ff":         "ff-" + tid + "-" + sid + "-01",
		"v00 with suffix":    "00-" + tid + "-" + sid + "-01-rest",
		"bad separators":     "00_" + tid + "_" + sid + "_01",
		"non-hex flags":      "00-" + tid + "-" + sid + "-zz",
		"future no dash":     "cc-" + tid + "-" + sid + "-01extra",
	}
	for name, h := range cases {
		if c, ok := ParseTraceparent(h); ok {
			t.Errorf("%s: ParseTraceparent(%q) accepted as %+v, want rejected", name, h, c)
		}
	}
}

func TestMintContextUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := MintContext().TraceIDString()
		if seen[id] {
			t.Fatalf("duplicate trace ID %s after %d mints", id, i)
		}
		seen[id] = true
	}
}

func TestWithNewSpanKeepsTrace(t *testing.T) {
	c := MintContext()
	d := c.WithNewSpan()
	if d.TraceID != c.TraceID {
		t.Fatalf("WithNewSpan changed trace ID: %s -> %s", c.TraceIDString(), d.TraceIDString())
	}
	if d.SpanID == c.SpanID {
		t.Fatalf("WithNewSpan kept span ID %s", c.SpanIDString())
	}
	if !d.Valid() {
		t.Fatalf("derived context invalid: %+v", d)
	}
}
