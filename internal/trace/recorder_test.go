package trace

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func rt(id string, status int, durUS int64) *RequestTrace {
	return &RequestTrace{TraceID: id, Route: "GET /v1/test", Status: status, DurationUS: durUS}
}

func TestRecorderBoundRespected(t *testing.T) {
	const capacity = 16
	r := NewRecorder(capacity, 10*time.Millisecond)
	for i := 0; i < 100*capacity; i++ {
		status := 200
		switch i % 3 {
		case 1:
			status = 500
		case 2:
			status = 404 // client errors are routine traffic, not kept
		}
		r.Record(rt(fmt.Sprintf("t%04d", i), status, 5))
	}
	st := r.Stats()
	if st.Entries > capacity {
		t.Fatalf("entries = %d, want <= %d", st.Entries, capacity)
	}
	if st.Capacity != capacity {
		t.Fatalf("capacity = %d, want %d", st.Capacity, capacity)
	}
	if got := len(r.Index()); got != st.Entries {
		t.Fatalf("Index len = %d, Stats.Entries = %d", got, st.Entries)
	}
	if st.Evicted == 0 {
		t.Fatal("no evictions recorded under 100x overload")
	}
}

func TestRecorderKeepsSlowAndErrorUnderLoad(t *testing.T) {
	r := NewRecorder(32, 10*time.Millisecond)
	r.Record(rt("err-trace", 500, 5))
	r.Record(rt("slow-trace", 200, 50_000)) // 50ms >= 10ms threshold
	marked := rt("marked-slow", 200, 5)
	marked.Slow = true // handler-observed breach below the duration bound
	r.Record(marked)
	pinned := rt("pinned-trace", 200, 5)
	pinned.Pinned = true
	r.Record(pinned)

	// Flood with routine traffic: reservoir churn must not evict the
	// kept classes.
	for i := 0; i < 10_000; i++ {
		r.Record(rt(fmt.Sprintf("ok%05d", i), 200, 5))
	}

	want := map[string]string{
		"err-trace":    KeptError,
		"slow-trace":   KeptSlow,
		"marked-slow":  KeptSlow,
		"pinned-trace": KeptPinned,
	}
	for id, class := range want {
		got, ok := r.Get(id)
		if !ok {
			t.Errorf("trace %q evicted by routine load", id)
			continue
		}
		if got.Kept != class {
			t.Errorf("trace %q class = %q, want %q", id, got.Kept, class)
		}
	}
	st := r.Stats()
	if st.Recorded[KeptSampled] == 0 {
		t.Error("no sampled admissions under flood")
	}
	if st.SampleSeen < 10_000 {
		t.Errorf("sample seen = %d, want >= 10000", st.SampleSeen)
	}
}

func TestRecorderKeptRingEvictsOldest(t *testing.T) {
	r := NewRecorder(8, 0) // keepCap = 4
	for i := 0; i < 10; i++ {
		r.Record(rt(fmt.Sprintf("e%02d", i), 500, 1))
	}
	if _, ok := r.Get("e00"); ok {
		t.Error("oldest error trace survived past the kept ring bound")
	}
	if _, ok := r.Get("e09"); !ok {
		t.Error("newest error trace missing")
	}
	st := r.Stats()
	if st.Recorded[KeptError] != 10 {
		t.Errorf("error admissions = %d, want 10", st.Recorded[KeptError])
	}
}

func TestRecorderSnapshotsSpanOnAdmission(t *testing.T) {
	r := NewRecorder(8, 0)
	sp := New("request")
	sp.Child("work").End()
	entry := rt("span-trace", 500, 1)
	entry.Span = sp
	r.Record(entry)
	got, ok := r.Get("span-trace")
	if !ok {
		t.Fatal("error-class trace not retained")
	}
	if got.Trace == nil || got.Trace.Find("work") == nil {
		t.Fatalf("span tree not materialized: %+v", got.Trace)
	}
	if got.Span != nil {
		t.Error("live span retained after admission")
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Record(rt("x", 500, 1))
	if _, ok := r.Get("x"); ok {
		t.Error("nil recorder returned a trace")
	}
	if got := r.Index(); got != nil {
		t.Errorf("nil recorder Index = %v", got)
	}
	if st := r.Stats(); st.Capacity != 0 {
		t.Errorf("nil recorder stats = %+v", st)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(64, time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				status := 200
				if i%50 == 0 {
					status = 500
				}
				sp := New("request")
				entry := rt(fmt.Sprintf("g%d-%03d", g, i), status, int64(i))
				entry.Span = sp
				r.Record(entry)
				if i%7 == 0 {
					r.Index()
					r.Get(fmt.Sprintf("g%d-%03d", g, i))
				}
			}
		}(g)
	}
	wg.Wait()
	st := r.Stats()
	if st.Entries > 64 {
		t.Fatalf("entries = %d, want <= 64", st.Entries)
	}
	for _, rec := range r.Index() {
		if rec.Kept == "" {
			t.Fatalf("retained trace %q has no class", rec.TraceID)
		}
	}
}
