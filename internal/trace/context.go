// Request identity: a W3C-trace-context-compatible (trace ID, span ID)
// pair minted per request, propagated via the `traceparent` header, and
// stamped on access-log lines, slow-query lines, error bodies, and the
// flight recorder so every artifact of one request correlates.
//
// Minting is deliberately cheap — no crypto/rand on the hot path. The
// trace ID is a per-process random 64-bit prefix (drawn once at init)
// concatenated with a 64-bit atomic counter; the span ID comes from
// math/rand/v2's per-thread generator. W3C only requires IDs to be
// non-zero and collision-unlikely, which this satisfies at a few
// nanoseconds per request.
package trace

import (
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math/rand/v2"
	"strings"
	"sync/atomic"
	"time"
)

// Context is one request's trace identity in W3C trace-context terms: a
// 128-bit trace ID shared by every participant in the request, the
// 64-bit span ID of this participant, and the trace flags byte (bit 0 =
// sampled).
type Context struct {
	TraceID [16]byte
	SpanID  [8]byte
	Flags   byte
}

var (
	mintPrefix [8]byte       // per-process random trace-ID prefix
	mintCtr    atomic.Uint64 // low half of the trace ID, never reused
)

func init() {
	if _, err := crand.Read(mintPrefix[:]); err != nil {
		// No entropy source: fall back to the clock. Uniqueness within
		// the process still holds via the counter.
		binary.BigEndian.PutUint64(mintPrefix[:], uint64(time.Now().UnixNano()))
	}
	if mintPrefix == ([8]byte{}) {
		mintPrefix[7] = 1
	}
}

// MintContext returns a fresh Context: new trace ID, new span ID,
// sampled flag set. Safe for concurrent use; costs two atomic ops and
// no allocation beyond the returned value.
func MintContext() Context {
	var c Context
	copy(c.TraceID[:8], mintPrefix[:])
	binary.BigEndian.PutUint64(c.TraceID[8:], mintCtr.Add(1))
	c.SpanID = mintSpanID()
	c.Flags = 0x01
	return c
}

func mintSpanID() [8]byte {
	var id [8]byte
	n := rand.Uint64()
	if n == 0 {
		n = 1 // all-zero span IDs are invalid per W3C
	}
	binary.BigEndian.PutUint64(id[:], n)
	return id
}

// WithNewSpan returns a copy of c carrying a fresh span ID — the same
// trace continuing into a new participant (this server, when the caller
// sent a traceparent).
func (c Context) WithNewSpan() Context {
	c.SpanID = mintSpanID()
	return c
}

// Valid reports whether both IDs are non-zero, the W3C definition of a
// usable trace context.
func (c Context) Valid() bool {
	return c.TraceID != ([16]byte{}) && c.SpanID != ([8]byte{})
}

// TraceIDString returns the 32-char lowercase-hex trace ID.
func (c Context) TraceIDString() string { return hex.EncodeToString(c.TraceID[:]) }

// SpanIDString returns the 16-char lowercase-hex span ID.
func (c Context) SpanIDString() string { return hex.EncodeToString(c.SpanID[:]) }

// Traceparent renders the context as a version-00 W3C traceparent
// header value: 00-<trace-id>-<span-id>-<flags>.
func (c Context) Traceparent() string {
	return fmt.Sprintf("00-%s-%s-%02x", c.TraceIDString(), c.SpanIDString(), c.Flags)
}

// ParseTraceparent parses a W3C traceparent header value. It returns
// ok=false — never an error, the caller mints a fresh context instead —
// for anything malformed: wrong length, uppercase hex, all-zero IDs,
// the forbidden version ff, or a version-00 value with trailing data.
// Higher versions are accepted with their extra fields ignored, per the
// spec's forward-compatibility rule.
func ParseTraceparent(h string) (Context, bool) {
	h = strings.TrimSpace(h)
	// version(2) '-' traceid(32) '-' spanid(16) '-' flags(2) = 55 chars.
	if len(h) < 55 {
		return Context{}, false
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return Context{}, false
	}
	version, ok := hexByte(h[0:2])
	if !ok || version == 0xff {
		return Context{}, false
	}
	if version == 0 && len(h) != 55 {
		return Context{}, false
	}
	if len(h) > 55 && h[55] != '-' {
		return Context{}, false
	}
	var c Context
	if !hexDecodeLower(c.TraceID[:], h[3:35]) || !hexDecodeLower(c.SpanID[:], h[36:52]) {
		return Context{}, false
	}
	flags, ok := hexByte(h[53:55])
	if !ok {
		return Context{}, false
	}
	c.Flags = flags
	if !c.Valid() {
		return Context{}, false
	}
	return c, true
}

// hexDecodeLower decodes src into dst, rejecting uppercase digits — the
// W3C grammar requires lowercase hex.
func hexDecodeLower(dst []byte, src string) bool {
	if len(src) != 2*len(dst) {
		return false
	}
	for i := range dst {
		hi, ok1 := hexNibble(src[2*i])
		lo, ok2 := hexNibble(src[2*i+1])
		if !ok1 || !ok2 {
			return false
		}
		dst[i] = hi<<4 | lo
	}
	return true
}

func hexByte(s string) (byte, bool) {
	var b [1]byte
	if !hexDecodeLower(b[:], s) {
		return 0, false
	}
	return b[0], true
}

func hexNibble(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}
