// Package trace is the zero-dependency tracing substrate of the
// evaluation pipeline: span-style phase timings and monotonic counters,
// recorded into a structured phase tree (EvalTrace) that the server
// returns on ?trace=1, the slow-query log renders compactly, and the
// REPL/CLI print after each query.
//
// The design center is the disabled cost. Tracing is threaded through
// the engine as a *Span; a nil *Span is the no-op tracer — every method
// has a nil-receiver fast path, so an untraced evaluation pays exactly
// one nil check per hook and allocates nothing. The hot per-component
// and per-depth instrumentation is additionally gated behind Detailed(),
// so even a recording span only pays for fine-grained work when the
// caller asked for a full phase tree (an explicitly traced query) rather
// than coarse totals (the always-on engine metrics accumulation).
//
// Spans form a tree. Child starts a sub-span; End stops it. A span may
// have children started from multiple goroutines (the modular solver's
// worker pool): the child list is mutex-guarded, and counters use the
// same lock. Phase provides the closure-style hook (start, return the
// stop function) for linear sequences.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Tracer is the minimal hook surface the engine layers see: begin a
// phase (ending it via the returned function) and bump a monotonic
// counter on the current phase. *Span implements it; (*Span)(nil) is the
// no-op implementation — prefer passing a nil *Span over a nil Tracer
// interface, which would panic on use.
type Tracer interface {
	// Phase starts a named phase and returns the function that ends it.
	Phase(name string) func()
	// Count adds delta to the named counter.
	Count(name string, delta int64)
}

// Span is one node of a recorded phase tree. The zero value is not
// useful; obtain roots from New/NewDetailed and children from Child. A
// nil *Span is the disabled tracer: all methods are safe and free.
type Span struct {
	name   string
	start  time.Time
	detail bool

	mu       sync.Mutex
	end      time.Time // zero while running
	children []*Span
	counters map[string]int64
}

var _ Tracer = (*Span)(nil)

// New starts a recording root span. Fine-grained instrumentation
// (per-SCC timings, per-depth chase profiles) stays off; use NewDetailed
// for a full phase tree.
func New(name string) *Span { return &Span{name: name, start: time.Now()} }

// NewDetailed starts a recording root span with fine-grained
// instrumentation enabled (see Detailed).
func NewDetailed(name string) *Span {
	return &Span{name: name, start: time.Now(), detail: true}
}

// Enabled reports whether the span records anything; it is the single
// nil check the disabled hot path pays.
func (s *Span) Enabled() bool { return s != nil }

// Detailed reports whether fine-grained (per-component, per-depth)
// instrumentation should run. Detail is inherited by children.
func (s *Span) Detailed() bool { return s != nil && s.detail }

// Child starts a sub-span. Returns nil when s is nil, so call chains
// stay free when tracing is disabled.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now(), detail: s.detail}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// ChildDetailed starts a sub-span with fine-grained instrumentation
// enabled for its subtree regardless of the parent's detail level. The
// server's ?trace=1 path hangs a detailed evaluation under the coarse
// per-request root span.
func (s *Span) ChildDetailed(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now(), detail: true}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End stops the span. Ending twice keeps the first end time; ending a
// nil span is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

var nop = func() {}

// Phase is the Tracer-interface hook: Child + End as a closure, for
// linear phase sequences that never nest further.
func (s *Span) Phase(name string) func() {
	if s == nil {
		return nop
	}
	c := s.Child(name)
	return c.End
}

// Count adds delta to the named counter of this span.
func (s *Span) Count(name string, delta int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.counters == nil {
		s.counters = make(map[string]int64)
	}
	s.counters[name] += delta
	s.mu.Unlock()
}

// SetCount sets the named counter to v (for gauged values like sizes,
// where the last observation wins).
func (s *Span) SetCount(name string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.counters == nil {
		s.counters = make(map[string]int64)
	}
	s.counters[name] = v
	s.mu.Unlock()
}

// MarkCancelled annotates the span as having been cut short by
// cooperative cancellation (query deadline, client disconnect, manual
// cancel). The flight recorder and /v1/traces surface the counter so a
// truncated span tree is distinguishable from a cheap one.
func (s *Span) MarkCancelled() {
	s.SetCount("cancelled", 1)
}

// AttachTimed records an already-measured child phase (start inferred
// from the given duration ending now is not meaningful, so the child
// carries only the duration). Used by instrumentation that measures with
// bare time.Since in a hot loop and attaches only the survivors (top-k
// slowest components).
func (s *Span) AttachTimed(name string, d time.Duration, counters map[string]int64) {
	if s == nil {
		return
	}
	now := time.Now()
	c := &Span{name: name, start: now.Add(-d), end: now, detail: s.detail, counters: counters}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
}

// Duration returns the span's wall time so far (final once ended); zero
// on a nil span.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	end := s.end
	s.mu.Unlock()
	if end.IsZero() {
		return time.Since(s.start)
	}
	return end.Sub(s.start)
}

// EvalTrace is the serializable phase tree of one evaluation: phase
// name, offset from the root start, wall time, counters, children. All
// times are microseconds, which is the natural resolution for query
// phases that range from sub-millisecond cache hits to multi-second cold
// builds.
type EvalTrace struct {
	Name     string           `json:"name"`
	StartUS  int64            `json:"start_us"`
	DurUS    int64            `json:"dur_us"`
	Counters map[string]int64 `json:"counters,omitempty"`
	Children []*EvalTrace     `json:"children,omitempty"`
}

// Trace ends the span (if still running) and snapshots it into an
// EvalTrace; nil on a nil span.
func (s *Span) Trace() *EvalTrace {
	if s == nil {
		return nil
	}
	s.End()
	return s.trace(s.start)
}

func (s *Span) trace(origin time.Time) *EvalTrace {
	s.mu.Lock()
	end := s.end
	if end.IsZero() {
		end = time.Now()
	}
	t := &EvalTrace{
		Name:    s.name,
		StartUS: s.start.Sub(origin).Microseconds(),
		DurUS:   end.Sub(s.start).Microseconds(),
	}
	if len(s.counters) > 0 {
		t.Counters = make(map[string]int64, len(s.counters))
		for k, v := range s.counters {
			t.Counters[k] = v
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		t.Children = append(t.Children, c.trace(origin))
	}
	return t
}

// Name returns the span's phase name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Counter returns the named counter's value (0 when absent or nil).
func (s *Span) Counter(name string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters[name]
}

// Walk visits the span and every descendant depth-first. Used by the
// engine-metrics accumulator to fold a finished build tree into
// cumulative per-phase counters.
func (s *Span) Walk(fn func(s *Span)) {
	if s == nil {
		return
	}
	fn(s)
	s.mu.Lock()
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		c.Walk(fn)
	}
}

// Format renders the tree as an indented, human-readable listing:
//
//	query                        4.21ms
//	  ladder                     4.10ms
//	    depth-4                  2.96ms  atoms=5121 instances=9804
//
// for the REPL's :trace output and wfsquery -trace.
func (t *EvalTrace) Format() string {
	var b strings.Builder
	t.format(&b, 0)
	return b.String()
}

func (t *EvalTrace) format(b *strings.Builder, depth int) {
	if t == nil {
		return
	}
	indent := strings.Repeat("  ", depth)
	fmt.Fprintf(b, "%-36s %9s", indent+t.Name, fmtDur(t.DurUS))
	if len(t.Counters) > 0 {
		keys := make([]string, 0, len(t.Counters))
		for k := range t.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(b, "  %s=%d", k, t.Counters[k])
		}
	}
	b.WriteByte('\n')
	for _, c := range t.Children {
		c.format(b, depth+1)
	}
}

// Compact renders the tree on one line — name=dur with children in
// brackets — for structured slow-query log lines:
//
//	query=4.2ms[ladder=4.1ms[depth-4=3.0ms depth-6=1.1ms]]
func (t *EvalTrace) Compact() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	t.compact(&b)
	return b.String()
}

func (t *EvalTrace) compact(b *strings.Builder) {
	b.WriteString(t.Name)
	b.WriteByte('=')
	b.WriteString(fmtDur(t.DurUS))
	if len(t.Children) > 0 {
		b.WriteByte('[')
		for i, c := range t.Children {
			if i > 0 {
				b.WriteByte(' ')
			}
			c.compact(b)
		}
		b.WriteByte(']')
	}
}

// fmtDur renders microseconds with adaptive units.
func fmtDur(us int64) string {
	switch {
	case us >= 1_000_000:
		return fmt.Sprintf("%.2fs", float64(us)/1e6)
	case us >= 1_000:
		return fmt.Sprintf("%.2fms", float64(us)/1e3)
	default:
		return fmt.Sprintf("%dµs", us)
	}
}

// SumChildrenUS returns the summed durations of the direct children —
// the quantity the spans-sum-to-wall-time acceptance check compares
// against DurUS.
func (t *EvalTrace) SumChildrenUS() int64 {
	var sum int64
	for _, c := range t.Children {
		sum += c.DurUS
	}
	return sum
}

// Find returns the first node (depth-first, preorder) with the given
// name, or nil.
func (t *EvalTrace) Find(name string) *EvalTrace {
	if t == nil {
		return nil
	}
	if t.Name == name {
		return t
	}
	for _, c := range t.Children {
		if m := c.Find(name); m != nil {
			return m
		}
	}
	return nil
}
