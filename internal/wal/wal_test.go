package wal

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	wfs "repro"
)

// winMove is a program with true, false, and undefined atoms, so the
// cross-checks compare real three-valued state, not just the database.
const winMove = `move(X,Y), not win(Y) -> win(X).
move(a,b). move(b,a). move(b,c).
`

// openLogged opens a manager in dir, loads src as a fresh session named
// name with its initial checkpoint, and wires the commit hook so every
// mutation of the returned system is logged before it commits.
func openLogged(t *testing.T, dir string, opts Options, name, src string) (*Manager, *wfs.System, *SessionLog) {
	t.Helper()
	man, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	sys, err := wfs.Load(src)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	facts, epoch := sys.DumpState()
	l, err := man.Create(name, Checkpoint{Source: src, Options: wfs.Options{}, Epoch: epoch, Facts: facts})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	sys.SetCommitHook(func(e uint64, adds, retracts []wfs.FactRef) error {
		return l.Append(e, adds, retracts)
	})
	return man, sys, l
}

// renderFacts renders fact refs as sorted "pred(a,b)" strings, the
// order-independent comparison form (the database is a multiset, so
// duplicates must survive the sort — hence strings, not a set).
func renderFacts(facts []wfs.FactRef) []string {
	out := make([]string, len(facts))
	for i, f := range facts {
		if len(f.Args) == 0 {
			out[i] = f.Pred
		} else {
			out[i] = f.Pred + "(" + strings.Join(f.Args, ",") + ")"
		}
	}
	sort.Strings(out)
	return out
}

func sortedCopy(xs []string) []string {
	out := append([]string(nil), xs...)
	sort.Strings(out)
	return out
}

// requireSameState asserts two systems agree on epoch, database, and the
// full three-valued model.
func requireSameState(t *testing.T, want, got *wfs.System) {
	t.Helper()
	if we, ge := want.Epoch(), got.Epoch(); we != ge {
		t.Fatalf("epoch: want %d, got %d", we, ge)
	}
	wf, _ := want.DumpState()
	gf, _ := got.DumpState()
	if w, g := renderFacts(wf), renderFacts(gf); !reflect.DeepEqual(w, g) {
		t.Fatalf("database mismatch:\nwant %v\ngot  %v", w, g)
	}
	if w, g := sortedCopy(want.TrueFacts()), sortedCopy(got.TrueFacts()); !reflect.DeepEqual(w, g) {
		t.Fatalf("true facts mismatch:\nwant %v\ngot  %v", w, g)
	}
	if w, g := sortedCopy(want.UndefinedFacts()), sortedCopy(got.UndefinedFacts()); !reflect.DeepEqual(w, g) {
		t.Fatalf("undefined facts mismatch:\nwant %v\ngot  %v", w, g)
	}
}

func TestDeltaRecordRoundTrip(t *testing.T) {
	cases := []struct {
		epoch    uint64
		adds     []wfs.FactRef
		retracts []wfs.FactRef
	}{
		{1, []wfs.FactRef{{Pred: "p", Args: []string{"a", "b"}}}, nil},
		{2, nil, []wfs.FactRef{{Pred: "p", Args: []string{"a", "b"}}}},
		{3, []wfs.FactRef{{Pred: "flag"}}, []wfs.FactRef{{Pred: "q", Args: []string{""}}}},
		{1 << 40, []wfs.FactRef{{Pred: "söme_préd", Args: []string{"välue", "x,y(z)"}}}, nil},
		{5, []wfs.FactRef{
			{Pred: "edge", Args: []string{"a", "b"}},
			{Pred: "edge", Args: []string{"a", "b"}}, // duplicates survive
			{Pred: "n", Args: []string{"1", "2", "3", "4", "5"}},
		}, []wfs.FactRef{{Pred: "edge", Args: []string{"b", "c"}}}},
	}
	for i, c := range cases {
		p := encodeDelta(nil, c.epoch, c.adds, c.retracts)
		d, err := decodeDelta(p)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if d.epoch != c.epoch {
			t.Fatalf("case %d: epoch %d, want %d", i, d.epoch, c.epoch)
		}
		if !reflect.DeepEqual(renderFacts(d.adds), renderFacts(c.adds)) {
			t.Fatalf("case %d: adds %v, want %v", i, d.adds, c.adds)
		}
		if !reflect.DeepEqual(renderFacts(d.retracts), renderFacts(c.retracts)) {
			t.Fatalf("case %d: retracts %v, want %v", i, d.retracts, c.retracts)
		}
	}
}

func TestDecodeDeltaRejectsCorruption(t *testing.T) {
	good := encodeDelta(nil, 7, []wfs.FactRef{{Pred: "p", Args: []string{"a"}}}, nil)
	if _, err := decodeDelta(nil); err == nil {
		t.Error("empty payload: want error")
	}
	if _, err := decodeDelta([]byte{0x7f}); err == nil {
		t.Error("unknown kind byte: want error")
	}
	if _, err := decodeDelta(append(append([]byte(nil), good...), 0x00)); err == nil {
		t.Error("trailing bytes: want error")
	}
	for cut := 1; cut < len(good); cut++ {
		if _, err := decodeDelta(good[:cut]); err == nil {
			t.Errorf("truncation at %d: want error", cut)
		}
	}
}

func TestScanFramesBoundaries(t *testing.T) {
	var buf []byte
	var bounds []int64 // valid truncation points
	bounds = append(bounds, 0)
	for i := 1; i <= 5; i++ {
		buf = appendFrame(buf, encodeDelta(nil, uint64(i), []wfs.FactRef{{Pred: "p", Args: []string{fmt.Sprint(i)}}}, nil))
		bounds = append(bounds, int64(len(buf)))
	}
	for cut := 0; cut <= len(buf); cut++ {
		var n int
		valid, torn, fnErr := scanFrames(buf[:cut], func([]byte) error { n++; return nil })
		if fnErr != nil {
			t.Fatalf("cut %d: fn error %v", cut, fnErr)
		}
		// valid must be the largest record boundary ≤ cut, n its index.
		wantValid, wantN := int64(0), 0
		for i, b := range bounds {
			if b <= int64(cut) {
				wantValid, wantN = b, i
			}
		}
		if valid != wantValid || n != wantN {
			t.Fatalf("cut %d: valid=%d records=%d, want %d/%d", cut, valid, n, wantValid, wantN)
		}
		if wantTorn := int64(cut) != wantValid; torn != wantTorn {
			t.Fatalf("cut %d: torn=%v, want %v", cut, torn, wantTorn)
		}
	}
	// A flipped payload bit is a CRC failure, not just a short read.
	corrupt := append([]byte(nil), buf...)
	corrupt[bounds[2]+frameHeader] ^= 0x01
	valid, torn, _ := scanFrames(corrupt, func([]byte) error { return nil })
	if !torn || valid != bounds[2] {
		t.Fatalf("bit flip: valid=%d torn=%v, want %d/true", valid, torn, bounds[2])
	}
}

func TestAppendRejectsEpochGap(t *testing.T) {
	_, sys, l := openLogged(t, t.TempDir(), Options{}, "s", winMove)
	if err := sys.AddFact("move", "c", "d"); err != nil { // epoch 1, logged
		t.Fatalf("AddFact: %v", err)
	}
	if err := l.Append(5, []wfs.FactRef{{Pred: "move", Args: []string{"x", "y"}}}, nil); err == nil {
		t.Fatal("append with epoch gap: want error")
	}
	if err := l.Append(1, nil, nil); err == nil {
		t.Fatal("append replaying an old epoch: want error")
	}
}

func TestCreateRejectsExistingLog(t *testing.T) {
	dir := t.TempDir()
	man, _, _ := openLogged(t, dir, Options{}, "s", winMove)
	if _, err := man.Create("s", Checkpoint{Source: winMove}); err == nil {
		t.Fatal("Create over an existing log: want error")
	}
}

// TestCrashTruncationSweep simulates a crash at EVERY byte offset of the
// live segment: the truncated prefix must recover to exactly the
// mutations whose records survived whole — torn tails dropped, no
// partial delta ever applied — and the repaired log must equal the
// consistent prefix.
func TestCrashTruncationSweep(t *testing.T) {
	const nMut = 6
	src := "p(x0).\n"
	base := t.TempDir()
	man, sys, _ := openLogged(t, base, Options{}, "s", src)
	for i := 1; i <= nMut; i++ {
		if err := sys.AddFact("p", fmt.Sprintf("x%d", i)); err != nil {
			t.Fatalf("AddFact %d: %v", i, err)
		}
	}
	if err := man.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	sessDir := man.sessionDir("s")
	segs, _, err := listByEpoch(osFS{}, sessDir, segSuffix)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v (%v)", segs, err)
	}
	segData, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	// Record boundaries of the intact log.
	bounds := []int64{0}
	if _, torn, _ := scanFrames(segData, func([]byte) error { return nil }); torn {
		t.Fatal("intact log reports torn")
	}
	for cut := 1; cut <= len(segData); cut++ {
		v, _, _ := scanFrames(segData[:cut], func([]byte) error { return nil })
		if v == int64(cut) {
			bounds = append(bounds, v)
		}
	}
	if len(bounds) != nMut+1 {
		t.Fatalf("found %d record boundaries, want %d", len(bounds)-1, nMut)
	}

	for cut := 0; cut <= len(segData); cut++ {
		crash := t.TempDir()
		crashSess := filepath.Join(crash, "sessions", filepath.Base(sessDir))
		if err := os.MkdirAll(crashSess, 0o755); err != nil {
			t.Fatal(err)
		}
		ents, _ := os.ReadDir(sessDir)
		for _, e := range ents {
			data, err := os.ReadFile(filepath.Join(sessDir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if strings.HasSuffix(e.Name(), segSuffix) {
				data = data[:cut]
			}
			if err := os.WriteFile(filepath.Join(crashSess, e.Name()), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}

		man2, err := Open(crash, Options{})
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		recs, skipped, err := man2.Recover()
		if err != nil || len(skipped) != 0 || len(recs) != 1 {
			t.Fatalf("cut %d: Recover: recs=%d skipped=%v err=%v", cut, len(recs), skipped, err)
		}
		rec := recs[0]

		wantEpoch, wantValid := uint64(0), int64(0)
		for i, b := range bounds {
			if b <= int64(cut) {
				wantEpoch, wantValid = uint64(i), b
			}
		}
		if rec.Sys.Epoch() != wantEpoch {
			t.Fatalf("cut %d: recovered epoch %d, want %d", cut, rec.Sys.Epoch(), wantEpoch)
		}
		if rec.Replayed != int(wantEpoch) {
			t.Fatalf("cut %d: replayed %d, want %d", cut, rec.Replayed, wantEpoch)
		}
		if wantTorn := int64(cut) != wantValid; rec.TornTail != wantTorn {
			t.Fatalf("cut %d: torn=%v, want %v", cut, rec.TornTail, wantTorn)
		}
		// Exactly the facts whose records survived whole — never a
		// partial batch.
		facts, _ := rec.Sys.DumpState()
		want := []string{"p(x0)"}
		for i := uint64(1); i <= wantEpoch; i++ {
			want = append(want, fmt.Sprintf("p(x%d)", i))
		}
		sort.Strings(want)
		if got := renderFacts(facts); !reflect.DeepEqual(got, want) {
			t.Fatalf("cut %d: facts %v, want %v", cut, got, want)
		}
		// The repaired segment is the consistent prefix (or gone).
		if wantValid == 0 {
			if segs, _, _ := listByEpoch(osFS{}, crashSess, segSuffix); len(segs) != 0 {
				t.Fatalf("cut %d: want no segments after repair, got %v", cut, segs)
			}
		} else {
			repaired, err := os.ReadFile(filepath.Join(crashSess, filepath.Base(segs[0])))
			if err != nil || int64(len(repaired)) != wantValid {
				t.Fatalf("cut %d: repaired segment %d bytes, want %d (%v)", cut, len(repaired), wantValid, err)
			}
		}
		// The reopened log accepts the next contiguous epoch.
		rec.Sys.SetCommitHook(func(e uint64, adds, retracts []wfs.FactRef) error {
			return rec.Log.Append(e, adds, retracts)
		})
		if err := rec.Sys.AddFact("p", "post"); err != nil {
			t.Fatalf("cut %d: post-recovery mutation: %v", cut, err)
		}
		man2.Close()
	}
}

// TestCrossCheckRandomScripts drives random add/retract/CSV scripts
// through a logged system, then recovers from the log alone and checks
// the replayed state is identical — database, epoch, and the full
// three-valued model. A mid-script checkpoint exercises rotation and GC
// in the middle of the history.
func TestCrossCheckRandomScripts(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			man, sys, l := openLogged(t, dir, Options{CheckpointRecords: -1, CheckpointBytes: -1}, "x", winMove)

			live := map[string]int{} // move-fact multiset, key "a b"
			for _, k := range []string{"a b", "b a", "b c"} {
				live[k] = 1
			}
			keys := func() []string {
				ks := make([]string, 0, len(live))
				for k := range live {
					ks = append(ks, k)
				}
				sort.Strings(ks)
				return ks
			}
			next := 0
			const ops = 60
			for op := 0; op < ops; op++ {
				switch c := rng.Intn(10); {
				case c < 4: // add a fresh fact
					a, b := fmt.Sprintf("n%d", next), fmt.Sprintf("n%d", next+1)
					next += 2
					if err := sys.AddFact("move", a, b); err != nil {
						t.Fatalf("op %d add: %v", op, err)
					}
					live[a+" "+b]++
				case c < 6: // duplicate an existing fact (multiset)
					ks := keys()
					k := ks[rng.Intn(len(ks))]
					f := strings.Fields(k)
					if err := sys.AddFact("move", f[0], f[1]); err != nil {
						t.Fatalf("op %d dup: %v", op, err)
					}
					live[k]++
				case c < 8: // retract (removes every occurrence)
					if len(live) <= 1 {
						continue
					}
					ks := keys()
					k := ks[rng.Intn(len(ks))]
					f := strings.Fields(k)
					if err := sys.RetractFact("move", f[0], f[1]); err != nil {
						t.Fatalf("op %d retract %s: %v", op, k, err)
					}
					delete(live, k)
				default: // CSV batch
					var rows []string
					for i := 0; i < 1+rng.Intn(3); i++ {
						a, b := fmt.Sprintf("n%d", next), fmt.Sprintf("n%d", next+1)
						next += 2
						rows = append(rows, a+","+b)
						live[a+" "+b]++
					}
					if _, err := sys.LoadCSV("move", strings.NewReader(strings.Join(rows, "\n")+"\n")); err != nil {
						t.Fatalf("op %d csv: %v", op, err)
					}
				}
				if op == ops/2 {
					if err := l.Checkpoint(func() Checkpoint {
						facts, epoch := sys.DumpState()
						return Checkpoint{Source: winMove, Options: wfs.Options{}, Epoch: epoch, Facts: facts}
					}); err != nil {
						t.Fatalf("mid-script checkpoint: %v", err)
					}
				}
			}
			if err := man.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}

			man2, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			recs, skipped, err := man2.Recover()
			if err != nil || len(skipped) != 0 || len(recs) != 1 {
				t.Fatalf("Recover: recs=%d skipped=%v err=%v", len(recs), skipped, err)
			}
			rec := recs[0]
			if rec.TornTail {
				t.Fatal("clean log reported a torn tail")
			}
			requireSameState(t, sys, rec.Sys)
			man2.Close()
		})
	}
}

// TestCheckpointGC: a checkpoint supersedes the rotated-out segments and
// older checkpoints; recovery afterwards replays only the tail.
func TestCheckpointGC(t *testing.T) {
	dir := t.TempDir()
	man, sys, l := openLogged(t, dir, Options{CheckpointRecords: -1, CheckpointBytes: -1}, "s", winMove)
	for i := 0; i < 5; i++ {
		if err := sys.AddFact("move", "c", fmt.Sprintf("d%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	dump := func() Checkpoint {
		facts, epoch := sys.DumpState()
		return Checkpoint{Source: winMove, Options: wfs.Options{}, Epoch: epoch, Facts: facts}
	}
	if err := l.Checkpoint(dump); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	sessDir := man.sessionDir("s")
	if segs, _, _ := listByEpoch(osFS{}, sessDir, segSuffix); len(segs) != 0 {
		t.Fatalf("segments after checkpoint: %v", segs)
	}
	cks, eps, _ := listByEpoch(osFS{}, sessDir, ckptSuffix)
	if len(cks) != 1 || eps[0] != 5 {
		t.Fatalf("checkpoints after GC: %v at %v", cks, eps)
	}
	// Two more mutations land in a fresh segment; recovery replays just 2.
	for i := 5; i < 7; i++ {
		if err := sys.AddFact("move", "c", fmt.Sprintf("d%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	man.Close()
	man2, _ := Open(dir, Options{})
	recs, _, err := man2.Recover()
	if err != nil || len(recs) != 1 {
		t.Fatalf("Recover: %v", err)
	}
	if recs[0].CheckpointEpoch != 5 || recs[0].Replayed != 2 {
		t.Fatalf("ckpt epoch %d replayed %d, want 5/2", recs[0].CheckpointEpoch, recs[0].Replayed)
	}
	requireSameState(t, sys, recs[0].Sys)
	man2.Close()
}

// TestCheckpointFallback: if the newest checkpoint file is corrupt,
// recovery falls back to an older one and replays the longer tail.
func TestCheckpointFallback(t *testing.T) {
	dir := t.TempDir()
	man, sys, _ := openLogged(t, dir, Options{}, "s", winMove)
	for i := 0; i < 3; i++ {
		if err := sys.AddFact("move", "c", fmt.Sprintf("d%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	man.Close()
	// Plant a corrupt "newer" checkpoint, as a torn disk would.
	bad := filepath.Join(man.sessionDir("s"), ckptName(2))
	if err := os.WriteFile(bad, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	man2, _ := Open(dir, Options{})
	recs, skipped, err := man2.Recover()
	if err != nil || len(skipped) != 0 || len(recs) != 1 {
		t.Fatalf("Recover: recs=%d skipped=%v err=%v", len(recs), skipped, err)
	}
	if recs[0].CheckpointEpoch != 0 || recs[0].Replayed != 3 {
		t.Fatalf("fallback: ckpt epoch %d replayed %d, want 0/3", recs[0].CheckpointEpoch, recs[0].Replayed)
	}
	requireSameState(t, sys, recs[0].Sys)
	man2.Close()
}

// TestCleanCloseReplaysNothing: checkpoint-then-close (what the server
// does on graceful shutdown) leaves a log whose recovery replays zero
// records.
func TestCleanCloseReplaysNothing(t *testing.T) {
	dir := t.TempDir()
	man, sys, l := openLogged(t, dir, Options{}, "s", winMove)
	for i := 0; i < 4; i++ {
		if err := sys.AddFact("move", "c", fmt.Sprintf("d%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Checkpoint(func() Checkpoint {
		facts, epoch := sys.DumpState()
		return Checkpoint{Source: winMove, Options: wfs.Options{}, Epoch: epoch, Facts: facts}
	}); err != nil {
		t.Fatalf("final checkpoint: %v", err)
	}
	if err := man.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	man2, _ := Open(dir, Options{})
	recs, _, err := man2.Recover()
	if err != nil || len(recs) != 1 {
		t.Fatalf("Recover: %v", err)
	}
	if recs[0].Replayed != 0 || recs[0].TornTail {
		t.Fatalf("clean restart: replayed %d torn %v, want 0/false", recs[0].Replayed, recs[0].TornTail)
	}
	requireSameState(t, sys, recs[0].Sys)
	man2.Close()
}

func TestManagerRemove(t *testing.T) {
	dir := t.TempDir()
	man, sys, _ := openLogged(t, dir, Options{}, "gone", winMove)
	if err := sys.AddFact("move", "c", "d"); err != nil {
		t.Fatal(err)
	}
	if err := man.Remove("gone"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := os.Stat(man.sessionDir("gone")); !os.IsNotExist(err) {
		t.Fatalf("session dir survives Remove: %v", err)
	}
	// Appends through the stale hook now fail — the mutation is rejected,
	// not silently unlogged.
	if err := sys.AddFact("move", "c", "e"); err == nil {
		t.Fatal("mutation after Remove: want commit-hook error")
	}
	man2, _ := Open(dir, Options{})
	recs, skipped, err := man2.Recover()
	if err != nil || len(recs) != 0 || len(skipped) != 0 {
		t.Fatalf("Recover after Remove: recs=%d skipped=%v err=%v", len(recs), skipped, err)
	}
}

func TestNeedCheckpointThresholds(t *testing.T) {
	dir := t.TempDir()
	_, sys, l := openLogged(t, dir, Options{CheckpointRecords: 3, CheckpointBytes: -1}, "s", winMove)
	for i := 0; i < 2; i++ {
		if err := sys.AddFact("move", "c", fmt.Sprintf("d%d", i)); err != nil {
			t.Fatal(err)
		}
		if l.NeedCheckpoint() {
			t.Fatalf("NeedCheckpoint true after %d records, threshold 3", i+1)
		}
	}
	if err := sys.AddFact("move", "c", "d2"); err != nil {
		t.Fatal(err)
	}
	if !l.NeedCheckpoint() {
		t.Fatal("NeedCheckpoint false after crossing the record threshold")
	}
}

// TestFsyncBucketsMatchCounters pins the histogram array length to the
// exported bucket bounds (+1 overflow slot).
func TestFsyncBucketsMatchCounters(t *testing.T) {
	var m Metrics
	if got, want := len(m.fsyncBuckets), len(FsyncBuckets)+1; got != want {
		t.Fatalf("fsyncBuckets has %d slots, want %d (len(FsyncBuckets)+1)", got, want)
	}
}

// TestMetricsAccounting: appended/checkpoint/replay counters move as the
// log is exercised.
func TestMetricsAccounting(t *testing.T) {
	dir := t.TempDir()
	man, sys, l := openLogged(t, dir, Options{Fsync: true, CheckpointRecords: -1, CheckpointBytes: -1}, "s", winMove)
	for i := 0; i < 3; i++ {
		if err := sys.AddFact("move", "c", fmt.Sprintf("d%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	snap := man.Metrics().Read()
	if snap.AppendedRecords != 3 || snap.AppendedBytes == 0 {
		t.Fatalf("appended: %+v", snap)
	}
	if snap.Fsyncs != 3 {
		t.Fatalf("fsyncs %d, want 3", snap.Fsyncs)
	}
	if snap.Checkpoints != 1 { // the Create-time checkpoint
		t.Fatalf("checkpoints %d, want 1", snap.Checkpoints)
	}
	if err := l.Checkpoint(func() Checkpoint {
		facts, epoch := sys.DumpState()
		return Checkpoint{Source: winMove, Epoch: epoch, Facts: facts}
	}); err != nil {
		t.Fatal(err)
	}
	if got := man.Metrics().Read().Checkpoints; got != 2 {
		t.Fatalf("checkpoints %d, want 2", got)
	}
	man.Close()

	man2, _ := Open(dir, Options{})
	if _, _, err := man2.Recover(); err != nil {
		t.Fatal(err)
	}
	rsnap := man2.Metrics().Read()
	if rsnap.RecoveredSessions != 1 || rsnap.ReplayedRecords != 0 {
		t.Fatalf("recovery metrics: %+v", rsnap)
	}
	man2.Close()
}
