package wal

import (
	"sync/atomic"
	"time"
)

// FsyncBuckets are the fsync-latency histogram upper bounds in seconds.
// Commodity disks land in the 0.1–10 ms decades; the tails catch both
// battery-backed write caches (fast) and saturated devices (slow).
var FsyncBuckets = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.5}

// Metrics is the manager-wide durability counter set, maintained with
// atomics so the /metrics scrape and /v1/stats never block an append.
type Metrics struct {
	appendedRecords atomic.Int64
	appendedBytes   atomic.Int64
	appendErrors    atomic.Int64

	fsyncs       atomic.Int64
	fsyncNS      atomic.Int64
	fsyncBuckets [12]atomic.Int64 // len(FsyncBuckets)+1, last = overflow

	checkpoints        atomic.Int64
	checkpointFailures atomic.Int64

	recoveredSessions atomic.Int64
	replayedRecords   atomic.Int64
	replayNS          atomic.Int64
	tornTails         atomic.Int64
}

// MetricsSnapshot is one consistent-enough read of Metrics (each field
// individually atomic).
type MetricsSnapshot struct {
	AppendedRecords int64 `json:"appended_records"`
	AppendedBytes   int64 `json:"appended_bytes"`
	AppendErrors    int64 `json:"append_errors"`

	Fsyncs       int64   `json:"fsyncs"`
	FsyncNS      int64   `json:"fsync_ns"`
	FsyncBuckets []int64 `json:"fsync_buckets"` // counts per FsyncBuckets bound, +overflow

	Checkpoints        int64 `json:"checkpoints"`
	CheckpointFailures int64 `json:"checkpoint_failures"`

	RecoveredSessions int64 `json:"recovered_sessions"`
	ReplayedRecords   int64 `json:"replayed_records"`
	ReplayNS          int64 `json:"replay_ns"`
	TornTails         int64 `json:"torn_tails"`
}

// Read returns the current counter values.
func (m *Metrics) Read() MetricsSnapshot {
	if m == nil {
		return MetricsSnapshot{}
	}
	s := MetricsSnapshot{
		AppendedRecords:    m.appendedRecords.Load(),
		AppendedBytes:      m.appendedBytes.Load(),
		AppendErrors:       m.appendErrors.Load(),
		Fsyncs:             m.fsyncs.Load(),
		FsyncNS:            m.fsyncNS.Load(),
		Checkpoints:        m.checkpoints.Load(),
		CheckpointFailures: m.checkpointFailures.Load(),
		RecoveredSessions:  m.recoveredSessions.Load(),
		ReplayedRecords:    m.replayedRecords.Load(),
		ReplayNS:           m.replayNS.Load(),
		TornTails:          m.tornTails.Load(),
	}
	s.FsyncBuckets = make([]int64, len(m.fsyncBuckets))
	for i := range m.fsyncBuckets {
		s.FsyncBuckets[i] = m.fsyncBuckets[i].Load()
	}
	return s
}

// observeFsync folds one fsync duration into the histogram.
func (m *Metrics) observeFsync(d time.Duration) {
	m.fsyncs.Add(1)
	m.fsyncNS.Add(d.Nanoseconds())
	secs := d.Seconds()
	for i, ub := range FsyncBuckets {
		if secs <= ub {
			m.fsyncBuckets[i].Add(1)
			return
		}
	}
	m.fsyncBuckets[len(FsyncBuckets)].Add(1)
}
