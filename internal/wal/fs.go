package wal

import (
	"io/fs"
	"os"
)

// FS is the filesystem seam every durability-critical I/O operation in
// the package goes through: segment opens, frame writes, fsyncs,
// checkpoint temp-write/rename, directory syncs, GC removals, and
// recovery reads. Production uses the real OS filesystem (osFS); the
// fault-injection tests substitute an error-injecting implementation to
// drive ENOSPC/EIO through every one of these points and assert the
// log's acked-implies-durable contract survives each of them.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Open(name string) (File, error)
	ReadFile(name string) ([]byte, error)
	ReadDir(name string) ([]fs.DirEntry, error)
	MkdirAll(path string, perm os.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
	RemoveAll(path string) error
	Truncate(name string, size int64) error
	Stat(name string) (fs.FileInfo, error)
}

// File is the open-file surface the log uses: sequential writes, fsync,
// rollback truncation, close.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Truncate(size int64) error
	Close() error
}

// osFS is the production FS: a zero-cost veneer over package os.
type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) RemoveAll(path string) error                  { return os.RemoveAll(path) }
func (osFS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }
func (osFS) Stat(name string) (fs.FileInfo, error)        { return os.Stat(name) }
