package wal

import (
	"encoding/base64"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	wfs "repro"
	"repro/internal/trace"
)

// ErrClosed marks operations against a session log that has been
// closed (shutdown or session deletion). The read-only circuit
// breaker's heal probe distinguishes it (errors.Is) from a disk that is
// still failing: a closed log means stop probing, not keep waiting.
var ErrClosed = errors.New("closed")

// Durability defaults: how much un-checkpointed log a session may
// accumulate before the next mutation triggers a background checkpoint.
const (
	DefaultCheckpointRecords = 1024
	DefaultCheckpointBytes   = 4 << 20
)

// Options configures a Manager. Zero values select the defaults noted on
// each field.
type Options struct {
	// Fsync syncs the live segment after every append, making each
	// acknowledged mutation durable against power loss, not just process
	// death. Off, durability is bounded by the OS page-cache flush
	// interval — recovery correctness (torn-tail handling, prefix
	// consistency) is unaffected either way.
	Fsync bool
	// CheckpointRecords triggers a checkpoint once this many records
	// accumulate since the last one; 0 means DefaultCheckpointRecords,
	// negative disables the record trigger.
	CheckpointRecords int
	// CheckpointBytes triggers a checkpoint once this many log bytes
	// accumulate since the last one; 0 means DefaultCheckpointBytes,
	// negative disables the byte trigger.
	CheckpointBytes int64
	// FS overrides the filesystem all durability I/O goes through; nil
	// means the real OS filesystem. Tests inject failing filesystems to
	// exercise disk-fault handling (see FS).
	FS FS
}

func (o Options) withDefaults() Options {
	switch {
	case o.CheckpointRecords == 0:
		o.CheckpointRecords = DefaultCheckpointRecords
	case o.CheckpointRecords < 0:
		o.CheckpointRecords = 0 // disabled
	}
	switch {
	case o.CheckpointBytes == 0:
		o.CheckpointBytes = DefaultCheckpointBytes
	case o.CheckpointBytes < 0:
		o.CheckpointBytes = 0 // disabled
	}
	if o.FS == nil {
		o.FS = osFS{}
	}
	return o
}

// Manager owns one data directory of per-session logs.
type Manager struct {
	dir  string // <data-dir>/sessions
	opts Options
	met  Metrics

	mu   sync.Mutex
	logs map[string]*SessionLog // by session name
}

// Open prepares a data directory (creating it if needed) and returns its
// manager. Open does not read anything — call Recover to rebuild the
// sessions persisted by a previous process.
func Open(dir string, opts Options) (*Manager, error) {
	opts = opts.withDefaults()
	sessions := filepath.Join(dir, "sessions")
	if err := opts.FS.MkdirAll(sessions, 0o755); err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", dir, err)
	}
	return &Manager{dir: sessions, opts: opts, logs: make(map[string]*SessionLog)}, nil
}

// Metrics returns the manager-wide durability counters.
func (m *Manager) Metrics() *Metrics { return &m.met }

// fsys returns the filesystem all I/O goes through (osFS by default).
func (m *Manager) fsys() FS { return m.opts.FS }

// sessionDir maps a session name to its directory. base64url is
// injective and filesystem-safe for every name the server's session-name
// grammar admits (≤128 bytes, no '/', no control characters).
func (m *Manager) sessionDir(name string) string {
	return filepath.Join(m.dir, base64.RawURLEncoding.EncodeToString([]byte(name)))
}

// Create starts a brand-new session log: its directory plus the initial
// checkpoint (the "source load" record — program text, options, the
// database as loaded, epoch). The checkpoint is durable before Create
// returns, so a crash immediately after session creation recovers the
// session. Fails if a log for the name already exists — including one
// left by a crashed process whose delete never completed, which recovery
// would have resurrected as a live session.
func (m *Manager) Create(name string, ck Checkpoint) (*SessionLog, error) {
	return m.CreateTraced(name, ck, nil)
}

// CreateTraced is Create recording the initial checkpoint write as a
// "wal-checkpoint" child of tr. A nil tr is Create.
func (m *Manager) CreateTraced(name string, ck Checkpoint, tr *trace.Span) (*SessionLog, error) {
	sp := tr.Child("wal-checkpoint")
	defer sp.End()
	sp.SetCount("facts", int64(len(ck.Facts)))
	dir := m.sessionDir(name)
	if _, err := m.fsys().Stat(dir); err == nil {
		return nil, fmt.Errorf("wal: session log for %q already exists", name)
	}
	if err := m.fsys().MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create session %q: %w", name, err)
	}
	ck.Name = name
	ck.WrittenAtUnixNano = time.Now().UnixNano()
	if err := writeCheckpoint(m.fsys(), dir, ck); err != nil {
		m.fsys().RemoveAll(dir)
		return nil, err
	}
	if err := syncDir(m.fsys(), m.dir); err != nil {
		return nil, err
	}
	l := &SessionLog{man: m, dir: dir, name: name, head: ck.Epoch, ckptEpoch: ck.Epoch}
	l.ckptAt.Store(ck.WrittenAtUnixNano)
	m.mu.Lock()
	m.logs[name] = l
	m.mu.Unlock()
	m.met.checkpoints.Add(1)
	return l, nil
}

// Remove closes and deletes a session's log (session deletion made
// durable).
func (m *Manager) Remove(name string) error {
	m.mu.Lock()
	l := m.logs[name]
	delete(m.logs, name)
	m.mu.Unlock()
	if l != nil {
		l.Close()
	}
	if err := m.fsys().RemoveAll(m.sessionDir(name)); err != nil {
		return fmt.Errorf("wal: remove session %q: %w", name, err)
	}
	return syncDir(m.fsys(), m.dir)
}

// Close fsyncs and closes every open session log. Callers that want a
// clean restart to replay zero records write final checkpoints first
// (SessionLog.Checkpoint per session).
func (m *Manager) Close() error {
	m.mu.Lock()
	logs := make([]*SessionLog, 0, len(m.logs))
	for _, l := range m.logs {
		logs = append(logs, l)
	}
	m.logs = make(map[string]*SessionLog)
	m.mu.Unlock()
	var firstErr error
	for _, l := range logs {
		if err := l.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// SessionLog is one session's write-ahead log: an append head over the
// live segment plus checkpoint bookkeeping. Append is called from the
// session's commit hook (so appends are serialized by the system's write
// lock as well as by mu); Checkpoint runs concurrently with appends,
// overlapping the expensive state dump with live traffic.
type SessionLog struct {
	man  *Manager
	dir  string
	name string

	mu        sync.Mutex
	closed    bool
	f         File // live segment, nil when none is open
	segSize   int64
	head      uint64 // last epoch appended (= checkpoint epoch when log is empty)
	sinceRecs int    // records since the last checkpoint
	sinceByte int64  // bytes since the last checkpoint
	ckptEpoch uint64
	payload   []byte // reused record build buffer
	buf       []byte // reused frame build buffer

	ckptAt atomic.Int64 // WrittenAtUnixNano of the newest checkpoint
}

// Name returns the session name the log belongs to.
func (l *SessionLog) Name() string { return l.name }

// LastCheckpoint returns when the newest checkpoint was written (taken
// from the checkpoint itself, so it survives restarts) — the
// "last-checkpoint age" observability signal.
func (l *SessionLog) LastCheckpoint() time.Time {
	return time.Unix(0, l.ckptAt.Load())
}

// Append serializes one committed delta to the live segment — creating a
// fresh segment named by the record's epoch when none is open — and, with
// Options.Fsync, syncs it before returning. Epochs must arrive
// contiguously (each mutation bumps the epoch by exactly one); a gap
// means the caller skipped logging a mutation and is rejected rather than
// persisted as an unreplayable log.
func (l *SessionLog) Append(epoch uint64, adds, retracts []wfs.FactRef) error {
	return l.AppendTraced(epoch, adds, retracts, nil)
}

// AppendTraced is Append recording the durability work as a
// "wal-append" child of tr, with the fsync (when Options.Fsync is on)
// as its own "wal-fsync" child — the span a mutation request's trace
// shows next to the in-memory commit. A nil tr is Append.
func (l *SessionLog) AppendTraced(epoch uint64, adds, retracts []wfs.FactRef, tr *trace.Span) error {
	sp := tr.Child("wal-append")
	defer sp.End()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: session log %q is %w", l.name, ErrClosed)
	}
	if epoch != l.head+1 {
		return fmt.Errorf("wal: session %q: append epoch %d, want %d (gap would corrupt replay)",
			l.name, epoch, l.head+1)
	}
	if l.f == nil {
		path := filepath.Join(l.dir, segName(epoch))
		f, err := l.man.fsys().OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			l.man.met.appendErrors.Add(1)
			return fmt.Errorf("wal: session %q: %w", l.name, err)
		}
		if err := syncDir(l.man.fsys(), l.dir); err != nil {
			f.Close()
			l.man.met.appendErrors.Add(1)
			return err
		}
		l.f, l.segSize = f, 0
	}
	l.payload = encodeDelta(l.payload[:0], epoch, adds, retracts)
	l.buf = appendFrame(l.buf[:0], l.payload)
	frame := l.buf
	if _, err := l.f.Write(frame); err != nil {
		// A partial frame may have landed; roll the file back to the last
		// record boundary so the tail stays parseable.
		l.f.Truncate(l.segSize)
		l.man.met.appendErrors.Add(1)
		return fmt.Errorf("wal: session %q: append: %w", l.name, err)
	}
	if l.man.opts.Fsync {
		fs := sp.Child("wal-fsync")
		start := time.Now()
		err := l.f.Sync()
		fs.End()
		if err != nil {
			l.man.met.appendErrors.Add(1)
			return fmt.Errorf("wal: session %q: fsync: %w", l.name, err)
		}
		l.man.met.observeFsync(time.Since(start))
	}
	sp.SetCount("bytes", int64(len(frame)))
	l.segSize += int64(len(frame))
	l.head = epoch
	l.sinceRecs++
	l.sinceByte += int64(len(frame))
	l.man.met.appendedRecords.Add(1)
	l.man.met.appendedBytes.Add(int64(len(frame)))
	return nil
}

// NeedCheckpoint reports whether the log since the last checkpoint has
// crossed a configured record/byte threshold.
func (l *SessionLog) NeedCheckpoint() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	o := l.man.opts
	return (o.CheckpointRecords > 0 && l.sinceRecs >= o.CheckpointRecords) ||
		(o.CheckpointBytes > 0 && l.sinceByte >= o.CheckpointBytes)
}

// Checkpoint writes a full-state snapshot and garbage-collects the log it
// supersedes. dump is called WITHOUT the log lock held, so a slow state
// dump overlaps live appends; the ordering is:
//
//  1. rotate — close the live segment; appends continue into a fresh one.
//  2. dump() — the caller snapshots (facts, epoch) from the system. Any
//     record appended before the rotation belongs to a mutation that
//     committed before the dump could read the state (the commit hook
//     runs under the system write lock), so the dump's epoch covers every
//     record in the rotated-out segments.
//  3. write the checkpoint atomically, then delete the rotated-out
//     segments and older checkpoints.
//
// A crash between any two steps is safe: the old checkpoint plus the
// complete log always reproduce the state.
func (l *SessionLog) Checkpoint(dump func() Checkpoint) error {
	return l.CheckpointTraced(dump, nil)
}

// CheckpointTraced is Checkpoint recording the rotate / dump / write
// phases as a "wal-checkpoint" child of tr. A nil tr is Checkpoint.
func (l *SessionLog) CheckpointTraced(dump func() Checkpoint, tr *trace.Span) error {
	sp := tr.Child("wal-checkpoint")
	defer sp.End()
	endRotate := sp.Phase("rotate")
	defer endRotate() // idempotent; covers the rotation error returns
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return fmt.Errorf("wal: session log %q is %w", l.name, ErrClosed)
	}
	old, _, err := listByEpoch(l.man.fsys(), l.dir, segSuffix)
	if err != nil {
		l.mu.Unlock()
		return fmt.Errorf("wal: session %q: %w", l.name, err)
	}
	if l.f != nil {
		err = l.f.Sync()
		if cerr := l.f.Close(); err == nil {
			err = cerr
		}
		l.f, l.segSize = nil, 0
		if err != nil {
			l.mu.Unlock()
			l.man.met.checkpointFailures.Add(1)
			return fmt.Errorf("wal: session %q: rotate: %w", l.name, err)
		}
	}
	l.mu.Unlock()
	endRotate()

	endDump := sp.Phase("dump-state")
	ck := dump()
	endDump()
	ck.Name = l.name
	ck.WrittenAtUnixNano = time.Now().UnixNano()
	sp.SetCount("facts", int64(len(ck.Facts)))

	endWrite := sp.Phase("write")
	defer endWrite()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: session log %q is %w", l.name, ErrClosed)
	}
	if err := writeCheckpoint(l.man.fsys(), l.dir, ck); err != nil {
		l.man.met.checkpointFailures.Add(1)
		return err
	}
	// GC: every segment that existed at rotation holds only epochs ≤
	// ck.Epoch; older checkpoints are strictly dominated. A failed
	// removal leaves a dominated file behind — harmless to recovery,
	// which always prefers the newest valid checkpoint.
	for _, p := range old {
		l.man.fsys().Remove(p)
	}
	if cks, eps, err := listByEpoch(l.man.fsys(), l.dir, ckptSuffix); err == nil {
		for i, p := range cks {
			if eps[i] < ck.Epoch {
				l.man.fsys().Remove(p)
			}
		}
	}
	syncDir(l.man.fsys(), l.dir)
	l.ckptEpoch = ck.Epoch
	l.ckptAt.Store(ck.WrittenAtUnixNano)
	l.sinceRecs = 0
	l.sinceByte = 0
	l.man.met.checkpoints.Add(1)
	return nil
}

// Probe verifies the log's directory accepts durable writes again:
// create a scratch file, write, fsync, remove. The read-only circuit
// breaker calls this to decide whether a disk that failed K consecutive
// appends has healed (an admin freed space or remounted the volume)
// before letting mutations through again. The probe file never collides
// with segment or checkpoint names, so a crash mid-probe leaves only an
// ignorable foreign file.
func (l *SessionLog) Probe() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: session log %q is %w", l.name, ErrClosed)
	}
	fsys := l.man.fsys()
	path := filepath.Join(l.dir, "probe.tmp")
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: session %q: probe: %w", l.name, err)
	}
	_, err = f.Write([]byte("probe"))
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	fsys.Remove(path)
	if err != nil {
		return fmt.Errorf("wal: session %q: probe: %w", l.name, err)
	}
	return nil
}

// Close flushes and fsyncs the live segment and stops the log. Further
// Append/Checkpoint calls fail, so a mutation racing a shutdown is
// rejected rather than lost.
func (l *SessionLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	if err != nil {
		return fmt.Errorf("wal: session %q: close: %w", l.name, err)
	}
	return nil
}
