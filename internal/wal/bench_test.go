package wal

import (
	"fmt"
	"testing"

	wfs "repro"
)

// benchSystem loads a small win-move program and returns it plus a
// fresh-fact mutation step: each call applies a single-add delta, the
// shape of a typical wfsd mutation request.
func benchSystem(b *testing.B) (*wfs.System, func(i int) error) {
	b.Helper()
	sys, err := wfs.Load(winMove)
	if err != nil {
		b.Fatal(err)
	}
	return sys, func(i int) error {
		return sys.Apply(wfs.NewDelta().Add("move", "c", fmt.Sprintf("x%d", i)))
	}
}

// BenchmarkWALAppend prices the durability tax on the mutation path:
//
//   - nohook: System.Apply with no WAL attached — the in-memory baseline.
//   - nofsync: every mutation serialized + CRC-framed + written to the
//     live segment before commit, fsync off (crash-safe, not
//     power-loss-safe). The acceptance bar is ≤10% overhead over the full
//     mutation path of BenchmarkDeltaApply; this bench isolates the raw
//     append cost so the overhead claim is auditable.
//   - fsync: the same plus an fsync per mutation — the durable-by-default
//     server configuration, dominated by device sync latency.
func BenchmarkWALAppend(b *testing.B) {
	b.Run("nohook", func(b *testing.B) {
		_, step := benchSystem(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := step(i); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, cfg := range []struct {
		name  string
		fsync bool
	}{{"nofsync", false}, {"fsync", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			man, err := Open(b.TempDir(), Options{
				Fsync:             cfg.fsync,
				CheckpointRecords: -1,
				CheckpointBytes:   -1,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer man.Close()
			sys, step := benchSystem(b)
			facts, epoch := sys.DumpState()
			l, err := man.Create("bench", Checkpoint{Source: winMove, Epoch: epoch, Facts: facts})
			if err != nil {
				b.Fatal(err)
			}
			sys.SetCommitHook(func(e uint64, adds, retracts []wfs.FactRef) error {
				return l.Append(e, adds, retracts)
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := step(i); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRecovery prices a restart: load the checkpoint, replay a
// 1000-record delta tail, and reopen the log for appending. This bounds
// the downtime a crash adds when a session has accumulated a full
// default checkpoint interval of un-checkpointed log.
func BenchmarkRecovery(b *testing.B) {
	const tail = 1000
	dir := b.TempDir()
	man, sys, _ := func() (*Manager, *wfs.System, *SessionLog) {
		man, err := Open(dir, Options{CheckpointRecords: -1, CheckpointBytes: -1})
		if err != nil {
			b.Fatal(err)
		}
		sys, err := wfs.Load(winMove)
		if err != nil {
			b.Fatal(err)
		}
		facts, epoch := sys.DumpState()
		l, err := man.Create("bench", Checkpoint{Source: winMove, Epoch: epoch, Facts: facts})
		if err != nil {
			b.Fatal(err)
		}
		sys.SetCommitHook(func(e uint64, adds, retracts []wfs.FactRef) error {
			return l.Append(e, adds, retracts)
		})
		return man, sys, l
	}()
	for i := 0; i < tail; i++ {
		if err := sys.Apply(wfs.NewDelta().Add("move", "c", fmt.Sprintf("x%d", i))); err != nil {
			b.Fatal(err)
		}
	}
	if err := man.Close(); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := Open(dir, Options{})
		if err != nil {
			b.Fatal(err)
		}
		recs, skipped, err := m.Recover()
		if err != nil || len(skipped) != 0 || len(recs) != 1 || recs[0].Replayed != tail {
			b.Fatalf("recover: recs=%d skipped=%d replayed=%v err=%v", len(recs), len(skipped), recs, err)
		}
		m.Close()
	}
}
