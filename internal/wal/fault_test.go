package wal

import (
	"fmt"
	iofs "io/fs"
	"os"
	"sync"
	"syscall"
	"testing"

	wfs "repro"
)

// faultFS delegates to the real filesystem but fails exactly one I/O
// operation — the failAt-th, counting every FS- and File-level call —
// with the injected error. Counting both layers sweeps a fault across
// every I/O point the log performs: segment open, frame write, file
// fsync, directory open/fsync, checkpoint temp write, rename, GC
// removals, recovery reads, truncations.
type faultFS struct {
	real osFS

	mu     sync.Mutex
	count  int
	failAt int // 1-based operation index to fail; 0 = never
	errInj error
	ops    []string // every operation seen, for sweep sizing and debugging
}

func (f *faultFS) tick(op string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.count++
	f.ops = append(f.ops, op)
	if f.failAt > 0 && f.count == f.failAt {
		return f.errInj
	}
	return nil
}

func (f *faultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err := f.tick("openfile " + name); err != nil {
		return nil, err
	}
	file, err := f.real.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file, name: name}, nil
}

func (f *faultFS) Open(name string) (File, error) {
	if err := f.tick("open " + name); err != nil {
		return nil, err
	}
	file, err := f.real.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file, name: name}, nil
}

func (f *faultFS) ReadFile(name string) ([]byte, error) {
	if err := f.tick("readfile " + name); err != nil {
		return nil, err
	}
	return f.real.ReadFile(name)
}

func (f *faultFS) ReadDir(name string) ([]iofs.DirEntry, error) {
	if err := f.tick("readdir " + name); err != nil {
		return nil, err
	}
	return f.real.ReadDir(name)
}

func (f *faultFS) MkdirAll(path string, perm os.FileMode) error {
	if err := f.tick("mkdirall " + path); err != nil {
		return err
	}
	return f.real.MkdirAll(path, perm)
}

func (f *faultFS) Rename(oldpath, newpath string) error {
	if err := f.tick("rename " + newpath); err != nil {
		return err
	}
	return f.real.Rename(oldpath, newpath)
}

func (f *faultFS) Remove(name string) error {
	if err := f.tick("remove " + name); err != nil {
		return err
	}
	return f.real.Remove(name)
}

func (f *faultFS) RemoveAll(path string) error {
	if err := f.tick("removeall " + path); err != nil {
		return err
	}
	return f.real.RemoveAll(path)
}

func (f *faultFS) Truncate(name string, size int64) error {
	if err := f.tick("truncate " + name); err != nil {
		return err
	}
	return f.real.Truncate(name, size)
}

func (f *faultFS) Stat(name string) (iofs.FileInfo, error) {
	if err := f.tick("stat " + name); err != nil {
		return nil, err
	}
	return f.real.Stat(name)
}

// faultFile counts the per-handle operations through the same counter.
type faultFile struct {
	fs   *faultFS
	f    File
	name string
}

func (w *faultFile) Write(p []byte) (int, error) {
	if err := w.fs.tick("write " + w.name); err != nil {
		return 0, err
	}
	return w.f.Write(p)
}

func (w *faultFile) Sync() error {
	if err := w.fs.tick("fsync " + w.name); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *faultFile) Truncate(size int64) error {
	if err := w.fs.tick("ftruncate " + w.name); err != nil {
		return err
	}
	return w.f.Truncate(size)
}

func (w *faultFile) Close() error {
	// Close is not a fault point: the log treats close errors like sync
	// errors, and injecting them would only re-cover the sync paths.
	return w.f.Close()
}

const faultSrc = "p(a).\n"

// runFaultWorkload drives one session through the log's full I/O
// surface — create (initial checkpoint), appends, a mid-stream
// checkpoint with rotation and GC, more appends, close — under the
// given filesystem. It returns the highest epoch that was ACKED (Append
// returned nil) and the op log. A failed append is retried once at the
// same epoch, modelling the server's behaviour where a rejected
// mutation leaves the epoch unbumped and a later client retries.
func runFaultWorkload(t *testing.T, ffs *faultFS, dir string) (acked uint64, created bool) {
	t.Helper()
	m, err := Open(dir, Options{Fsync: true, CheckpointRecords: -1, CheckpointBytes: -1, FS: ffs})
	if err != nil {
		return 0, false
	}
	defer m.Close()
	l, err := m.Create("s", Checkpoint{Source: faultSrc, Epoch: 0})
	if err != nil {
		return 0, false
	}
	append1 := func(epoch uint64) bool {
		adds := []wfs.FactRef{{Pred: "q", Args: []string{fmt.Sprintf("e%d", epoch)}}}
		if l.Append(epoch, adds, nil) == nil {
			return true
		}
		return l.Append(epoch, adds, nil) == nil // one retry, as a healed disk would see
	}
	facts := []wfs.FactRef(nil)
	for e := uint64(1); e <= 3; e++ {
		if !append1(e) {
			return acked, true
		}
		acked = e
		facts = append(facts, wfs.FactRef{Pred: "q", Args: []string{fmt.Sprintf("e%d", e)}})
	}
	ckFacts := append([]wfs.FactRef(nil), facts...)
	ckEpoch := acked
	l.Checkpoint(func() Checkpoint {
		return Checkpoint{Source: faultSrc, Epoch: ckEpoch, Facts: ckFacts}
	}) // a failed checkpoint must never lose acked state
	for e := acked + 1; e <= 6; e++ {
		if !append1(e) {
			return acked, true
		}
		acked = e
	}
	return acked, true
}

// TestFaultSweep injects ENOSPC and EIO into every single I/O operation
// the append/checkpoint/rotate/GC workload performs, one operation per
// run, and asserts the durability contract each time: after reopening
// the directory with a healthy filesystem, recovery rebuilds a state
// that contains every acked mutation — nothing acknowledged is ever
// lost, no matter which syscall failed. (The converse — a mutation that
// was durably logged but whose ack errored, e.g. a post-write fsync
// failure — may legitimately reappear on recovery, exactly like a
// committed-but-unacknowledged transaction in any WAL system; recovery
// must still be a consistent prefix extension of the acked state.)
func TestFaultSweep(t *testing.T) {
	discover := &faultFS{}
	dir := t.TempDir()
	acked, _ := runFaultWorkload(t, discover, dir)
	if acked != 6 {
		t.Fatalf("clean workload acked %d epochs, want 6", acked)
	}
	total := discover.count
	if total < 20 {
		t.Fatalf("workload performed only %d I/O ops — seam not covering the I/O surface", total)
	}
	for _, inj := range []error{syscall.ENOSPC, syscall.EIO} {
		for k := 1; k <= total; k++ {
			name := fmt.Sprintf("%v-op%02d", inj, k)
			t.Run(name, func(t *testing.T) {
				dir := t.TempDir()
				ffs := &faultFS{failAt: k, errInj: inj}
				acked, created := runFaultWorkload(t, ffs, dir)
				failedOp := ""
				if k <= len(ffs.ops) {
					failedOp = ffs.ops[k-1]
				}

				// Recover with a healthy filesystem, as a restarted
				// process on a healed disk would.
				m2, err := Open(dir, Options{})
				if err != nil {
					t.Fatalf("reopen after fault at %q: %v", failedOp, err)
				}
				defer m2.Close()
				recs, skipped, err := m2.Recover()
				if err != nil {
					t.Fatalf("recover after fault at %q: %v", failedOp, err)
				}
				if !created || acked == 0 {
					// Nothing was ever acked; any recovery outcome that
					// doesn't invent state is fine. A session directory
					// may exist (create's cleanup can itself fail) but
					// must recover to an un-invented prefix.
					for _, r := range recs {
						if got := r.Sys.Epoch(); got > 6 {
							t.Errorf("fault at %q: recovered epoch %d was never attempted", failedOp, got)
						}
					}
					return
				}
				if len(recs) != 1 {
					t.Fatalf("fault at %q: recovered %d sessions (skipped %d), want 1; acked epoch %d",
						failedOp, len(recs), len(skipped), acked)
				}
				rec := recs[0]
				got := rec.Sys.Epoch()
				if got < acked {
					t.Errorf("fault at %q: recovered epoch %d < acked epoch %d — acked mutation lost",
						failedOp, got, acked)
				}
				if got > 6 {
					t.Errorf("fault at %q: recovered epoch %d was never attempted", failedOp, got)
				}
				// The recovered database must be exactly the prefix of
				// the attempted mutations up to the recovered epoch:
				// initial facts none, epoch e added q(e<e>).
				if want := int(got); rec.Sys.NumFacts() != want {
					t.Errorf("fault at %q: recovered %d facts at epoch %d, want %d",
						failedOp, rec.Sys.NumFacts(), got, want)
				}
				for e := uint64(1); e <= got; e++ {
					tv, err := rec.Sys.TruthOf(fmt.Sprintf("q(e%d)", e))
					if err != nil || tv != wfs.True {
						t.Errorf("fault at %q: recovered state missing q(e%d): %v %v", failedOp, e, tv, err)
					}
				}
			})
		}
	}
}

// TestProbe exercises the breaker's heal probe: it fails while the
// directory rejects writes and succeeds once the filesystem heals.
func TestProbe(t *testing.T) {
	dir := t.TempDir()
	ffs := &faultFS{}
	m, err := Open(dir, Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	l, err := m.Create("s", Checkpoint{Source: faultSrc, Epoch: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Probe(); err != nil {
		t.Fatalf("probe on healthy fs: %v", err)
	}
	ffs.mu.Lock()
	ffs.failAt = ffs.count + 1 // next op (the probe's OpenFile) fails
	ffs.errInj = syscall.ENOSPC
	ffs.mu.Unlock()
	if err := l.Probe(); err == nil {
		t.Fatal("probe succeeded on a failing filesystem")
	}
	if err := l.Probe(); err != nil {
		t.Fatalf("probe after heal: %v", err)
	}
}
