// Package wal is wfsd's durability subsystem: a per-session write-ahead
// log of mutation deltas plus periodic full-state snapshot checkpoints,
// and the recovery path that rebuilds every session after a restart.
//
// Layout under the data directory:
//
//	<dir>/sessions/<base64url(name)>/
//	    <epoch-hex-16>.ckpt   checkpoint: program source + options + full
//	                          database + epoch (CRC-framed JSON; the file
//	                          written at session creation is checkpoint 0)
//	    <epoch-hex-16>.wal    segment of delta records, named by the first
//	                          epoch it contains
//
// Every record and checkpoint is framed as [u32 length][u32 CRC-32C]
// [payload]; a torn final record — the signature of a crash mid-write —
// fails the CRC or the length check and is dropped at recovery, never
// half-applied. Deltas append with log-then-commit ordering via
// wfs.System's CommitHook: the record is written (and, with Options.Fsync,
// fsynced) before the in-memory commit, so every acknowledged mutation is
// durable. A checkpoint rotates the live segment, dumps the session state,
// writes the checkpoint atomically (temp file + rename), and garbage-
// collects the segments and checkpoints it supersedes, which bounds both
// disk usage and replay time.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	wfs "repro"
)

// Frame layout: [u32 payload length][u32 CRC-32C of payload][payload],
// both integers little-endian. The CRC covers only the payload; a frame
// whose length field itself is torn fails the bounds checks instead.
const frameHeader = 8

// maxRecordSize rejects absurd length fields when scanning: a corrupt
// length would otherwise read garbage as a giant record. Checkpoints (the
// larger codec users) hold a full database dump, so the cap is generous.
const maxRecordSize = 1 << 30

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendFrame appends one framed payload to dst and returns the extended
// slice.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable))
	return append(dst, payload...)
}

// scanFrames walks the framed records in data, calling fn with each
// payload. It returns the byte offset just past the last frame that was
// both intact and accepted by fn, whether the walk stopped early on a
// torn/corrupt frame (short header, short payload, zero or oversized
// length, CRC mismatch), and fn's error if fn stopped the walk. In every
// early-stop case, valid is a safe truncation point: data[:valid] is a
// whole number of intact records.
func scanFrames(data []byte, fn func(payload []byte) error) (valid int64, torn bool, fnErr error) {
	off := 0
	for off < len(data) {
		if off+frameHeader > len(data) {
			return int64(off), true, nil
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		if n == 0 || n > maxRecordSize || off+frameHeader+n > len(data) {
			return int64(off), true, nil
		}
		sum := binary.LittleEndian.Uint32(data[off+4:])
		payload := data[off+frameHeader : off+frameHeader+n]
		if crc32.Checksum(payload, crcTable) != sum {
			return int64(off), true, nil
		}
		if err := fn(payload); err != nil {
			return int64(off), false, err
		}
		off += frameHeader + n
	}
	return int64(off), false, nil
}

// Record kinds (first payload byte). Only deltas live in segments today;
// the kind byte keeps the format open for e.g. replication watermarks.
const recDelta = byte(1)

// deltaRecord is one committed mutation batch: the epoch it committed at
// and its additions/retractions in wire-stable form.
type deltaRecord struct {
	epoch    uint64
	adds     []wfs.FactRef
	retracts []wfs.FactRef
}

// encodeDelta appends the delta payload (not the frame) to dst:
//
//	kind(1B) | epoch uvarint | adds: count uvarint, facts | retracts: same
//	fact: pred len uvarint + bytes | arg count uvarint | per arg: len + bytes
func encodeDelta(dst []byte, epoch uint64, adds, retracts []wfs.FactRef) []byte {
	dst = append(dst, recDelta)
	dst = binary.AppendUvarint(dst, epoch)
	for _, side := range [2][]wfs.FactRef{adds, retracts} {
		dst = binary.AppendUvarint(dst, uint64(len(side)))
		for _, f := range side {
			dst = binary.AppendUvarint(dst, uint64(len(f.Pred)))
			dst = append(dst, f.Pred...)
			dst = binary.AppendUvarint(dst, uint64(len(f.Args)))
			for _, a := range f.Args {
				dst = binary.AppendUvarint(dst, uint64(len(a)))
				dst = append(dst, a...)
			}
		}
	}
	return dst
}

// decodeDelta parses a delta payload. Any structural violation — wrong
// kind byte, truncated varint or string, trailing bytes — is an error;
// the caller treats it like a CRC failure (stop replay at this record).
func decodeDelta(p []byte) (deltaRecord, error) {
	var rec deltaRecord
	if len(p) == 0 || p[0] != recDelta {
		return rec, fmt.Errorf("wal: not a delta record")
	}
	d := decoder{buf: p[1:]}
	rec.epoch = d.uvarint()
	rec.adds = d.facts()
	rec.retracts = d.facts()
	if d.err != nil {
		return rec, d.err
	}
	if len(d.buf) != 0 {
		return rec, fmt.Errorf("wal: %d trailing bytes after delta record", len(d.buf))
	}
	return rec, nil
}

// decoder is a sticky-error cursor over a delta payload.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = fmt.Errorf("wal: truncated varint in delta record")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)) {
		d.err = fmt.Errorf("wal: truncated string in delta record")
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *decoder) facts() []wfs.FactRef {
	n := d.uvarint()
	if d.err != nil || n == 0 {
		return nil
	}
	if n > uint64(len(d.buf)) { // each fact costs ≥1 byte; caps allocation
		d.err = fmt.Errorf("wal: fact count %d exceeds record size", n)
		return nil
	}
	out := make([]wfs.FactRef, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		f := wfs.FactRef{Pred: d.str()}
		nArgs := d.uvarint()
		if d.err != nil {
			break
		}
		if nArgs > uint64(len(d.buf)) {
			d.err = fmt.Errorf("wal: arg count %d exceeds record size", nArgs)
			break
		}
		if nArgs > 0 {
			f.Args = make([]string, 0, nArgs)
			for j := uint64(0); j < nArgs && d.err == nil; j++ {
				f.Args = append(f.Args, d.str())
			}
		}
		out = append(out, f)
	}
	return out
}
