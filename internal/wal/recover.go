package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	wfs "repro"
	"repro/internal/trace"
)

// Recovered is one session rebuilt from disk: a warm system at the exact
// epoch the previous process last durably committed, plus the reopened
// log positioned to continue appending at the next epoch.
type Recovered struct {
	Name    string
	Source  string
	Options wfs.Options
	Sys     *wfs.System
	Log     *SessionLog

	CheckpointEpoch uint64 // epoch of the checkpoint replay started from
	Replayed        int    // delta records applied after the checkpoint
	TornTail        bool   // a torn/corrupt record was dropped from the log tail
}

// Skipped reports a session directory that could not be recovered (no
// readable checkpoint, or a checkpoint that no longer compiles). The
// directory is left on disk for manual inspection; it does not block
// recovery of the other sessions.
type Skipped struct {
	Dir string
	Err error
}

// Recover rebuilds every session persisted under the data directory:
// load the newest valid checkpoint (falling back to older ones if the
// newest is torn), Restore a system from it, replay the delta tail in
// epoch order, and truncate away any torn final record a crash mid-write
// left behind. Replay stops at the first record that is torn, out of
// sequence, or fails to apply — everything before it is a consistent
// prefix, everything from it on is dropped from the log so the repaired
// log and the recovered state agree exactly.
func (m *Manager) Recover() ([]Recovered, []Skipped, error) {
	return m.RecoverTraced(nil)
}

// RecoverTraced is Recover recording one "recover-session" child span
// per session directory (checkpoint load, restore, replay phases plus
// replayed/torn counters) under tr — the span tree the server pins into
// the flight recorder as the startup trace. A nil tr is Recover.
func (m *Manager) RecoverTraced(tr *trace.Span) ([]Recovered, []Skipped, error) {
	ents, err := m.fsys().ReadDir(m.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: recover: %w", err)
	}
	start := time.Now()
	var out []Recovered
	var skipped []Skipped
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(m.dir, e.Name())
		sp := tr.Child("recover-session")
		rec, err := m.recoverSession(dir, sp)
		if err != nil {
			sp.SetCount("skipped", 1)
			sp.End()
			skipped = append(skipped, Skipped{Dir: dir, Err: err})
			continue
		}
		sp.SetCount("replayed", int64(rec.Replayed))
		if rec.TornTail {
			sp.SetCount("torn_tail", 1)
		}
		sp.End()
		m.mu.Lock()
		m.logs[rec.Name] = rec.Log
		m.mu.Unlock()
		out = append(out, rec)
	}
	m.met.recoveredSessions.Store(int64(len(out)))
	m.met.replayNS.Store(time.Since(start).Nanoseconds())
	return out, skipped, nil
}

// recoverSession rebuilds one session directory, recording its phases
// under tr (nil disables tracing).
func (m *Manager) recoverSession(dir string, tr *trace.Span) (Recovered, error) {
	endLoad := tr.Phase("load-checkpoint")
	ck, err := loadNewestCheckpoint(m.fsys(), dir)
	endLoad()
	if err != nil {
		return Recovered{}, err
	}
	endRestore := tr.Phase("restore")
	sys, err := wfs.Restore(ck.Source, ck.Options, ck.Facts, ck.Epoch)
	endRestore()
	if err != nil {
		return Recovered{}, err
	}
	rec := Recovered{
		Name:            ck.Name,
		Source:          ck.Source,
		Options:         ck.Options,
		Sys:             sys,
		CheckpointEpoch: ck.Epoch,
	}

	endReplay := tr.Phase("replay")
	defer endReplay() // idempotent; covers the replay error returns
	segs, _, err := listByEpoch(m.fsys(), dir, segSuffix)
	if err != nil {
		return Recovered{}, err
	}
	cur := ck.Epoch
	var sinceRecs int
	var sinceBytes int64
	// lastSeg/lastSize track the log's new tail: the last segment that
	// still holds records after repair, and its valid length.
	lastSeg, lastSize := "", int64(0)
	for i, path := range segs {
		data, err := m.fsys().ReadFile(path)
		if err != nil {
			return Recovered{}, err
		}
		if len(data) == 0 {
			// A crash between segment creation and the first write leaves
			// an empty file named for an epoch that has not committed;
			// drop it so a future append can recreate that name.
			if err := m.fsys().Remove(path); err != nil {
				return Recovered{}, err
			}
			continue
		}
		valid, torn, fnErr := scanFrames(data, func(payload []byte) error {
			d, err := decodeDelta(payload)
			if err != nil {
				return err
			}
			if d.epoch <= cur {
				return nil // covered by the checkpoint
			}
			if d.epoch != cur+1 {
				return fmt.Errorf("wal: epoch gap: record %d after %d", d.epoch, cur)
			}
			delta := wfs.NewDelta()
			for _, f := range d.adds {
				delta.Add(f.Pred, f.Args...)
			}
			for _, f := range d.retracts {
				delta.Retract(f.Pred, f.Args...)
			}
			if err := sys.Apply(delta); err != nil {
				return fmt.Errorf("wal: replay epoch %d: %w", d.epoch, err)
			}
			cur = d.epoch
			rec.Replayed++
			sinceRecs++
			return nil
		})
		sinceBytes += valid
		if torn || fnErr != nil {
			// Repair: cut this segment back to the consistent prefix and
			// drop everything after it (later segments are unreachable
			// under the contiguity invariant). The repaired log now ends
			// exactly at the recovered state.
			rec.TornTail = true
			m.met.tornTails.Add(1)
			if valid == 0 {
				if err := m.fsys().Remove(path); err != nil {
					return Recovered{}, err
				}
			} else {
				if err := m.fsys().Truncate(path, valid); err != nil {
					return Recovered{}, err
				}
				lastSeg, lastSize = path, valid
			}
			for _, later := range segs[i+1:] {
				if err := m.fsys().Remove(later); err != nil {
					return Recovered{}, err
				}
			}
			syncDir(m.fsys(), dir)
			break
		}
		if valid > 0 {
			lastSeg, lastSize = path, valid
		}
	}

	endReplay()
	l := &SessionLog{
		man:       m,
		dir:       dir,
		name:      ck.Name,
		head:      cur,
		ckptEpoch: ck.Epoch,
		sinceRecs: sinceRecs,
		sinceByte: sinceBytes,
	}
	l.ckptAt.Store(ck.WrittenAtUnixNano)
	if lastSeg != "" {
		f, err := m.fsys().OpenFile(lastSeg, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return Recovered{}, err
		}
		l.f, l.segSize = f, lastSize
	}
	m.met.replayedRecords.Add(int64(rec.Replayed))
	rec.Log = l
	return rec, nil
}

// loadNewestCheckpoint returns the highest-epoch checkpoint in dir that
// validates, trying older ones when the newest is torn (a crash during a
// checkpoint write can leave a bad newest file only if the rename
// happened; the previous checkpoint is never deleted before the new one
// is durable).
func loadNewestCheckpoint(fsys FS, dir string) (Checkpoint, error) {
	paths, _, err := listByEpoch(fsys, dir, ckptSuffix)
	if err != nil {
		return Checkpoint{}, err
	}
	var lastErr error
	for i := len(paths) - 1; i >= 0; i-- {
		ck, err := readCheckpoint(fsys, paths[i])
		if err == nil {
			return ck, nil
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("wal: no checkpoint found")
	}
	return Checkpoint{}, lastErr
}
