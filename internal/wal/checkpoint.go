package wal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	wfs "repro"
)

// Checkpoint is one full-state snapshot of a session: everything needed
// to rebuild a warm system without the log — the program source and
// engine options (so the session compiles identically), the complete
// database as store-independent facts, and the epoch the dump was taken
// at. Replay then applies only the delta records with epoch > Epoch.
//
// The payload is JSON inside the same CRC frame as log records: a
// checkpoint torn by a crash mid-write fails validation and recovery
// falls back to the previous one (checkpoints are written to a temp file
// and renamed into place, so the previous one is never destroyed first).
type Checkpoint struct {
	Name              string        `json:"name"`
	Source            string        `json:"source"`
	Options           wfs.Options   `json:"options"`
	Epoch             uint64        `json:"epoch"`
	Facts             []wfs.FactRef `json:"facts"`
	WrittenAtUnixNano int64         `json:"written_at_unix_nano"`
}

const (
	segSuffix  = ".wal"
	ckptSuffix = ".ckpt"
	ckptTmp    = "ckpt.tmp"
)

// segName / ckptName render file names whose lexical order is epoch
// order (fixed-width hex).
func segName(firstEpoch uint64) string { return fmt.Sprintf("%016x%s", firstEpoch, segSuffix) }
func ckptName(epoch uint64) string     { return fmt.Sprintf("%016x%s", epoch, ckptSuffix) }

// parseEpoch extracts the epoch from a segment or checkpoint file name.
func parseEpoch(name, suffix string) (uint64, bool) {
	base, ok := strings.CutSuffix(name, suffix)
	if !ok || len(base) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(base, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// writeCheckpoint atomically persists ck into dir: frame the JSON, write
// to a temp file, fsync it, rename to its final epoch-stamped name, and
// fsync the directory so the rename itself is durable.
func writeCheckpoint(fsys FS, dir string, ck Checkpoint) error {
	payload, err := json.Marshal(ck)
	if err != nil {
		return fmt.Errorf("wal: encode checkpoint: %w", err)
	}
	frame := appendFrame(make([]byte, 0, frameHeader+len(payload)), payload)
	tmp := filepath.Join(dir, ckptTmp)
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	// NB: assign to err, never shadow it — a swallowed write error here
	// would rename a torn checkpoint into place and let GC delete the
	// good one it supposedly superseded, losing acked state.
	_, err = f.Write(frame)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	final := filepath.Join(dir, ckptName(ck.Epoch))
	if err := fsys.Rename(tmp, final); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	return syncDir(fsys, dir)
}

// readCheckpoint loads and validates one checkpoint file: exactly one
// intact frame holding well-formed JSON.
func readCheckpoint(fsys FS, path string) (Checkpoint, error) {
	var ck Checkpoint
	data, err := fsys.ReadFile(path)
	if err != nil {
		return ck, err
	}
	var payload []byte
	valid, torn, _ := scanFrames(data, func(p []byte) error {
		if payload != nil {
			return fmt.Errorf("wal: multiple frames in checkpoint %s", filepath.Base(path))
		}
		payload = append([]byte(nil), p...)
		return nil
	})
	if torn || payload == nil || valid != int64(len(data)) {
		return ck, fmt.Errorf("wal: checkpoint %s is torn or corrupt", filepath.Base(path))
	}
	if err := json.Unmarshal(payload, &ck); err != nil {
		return ck, fmt.Errorf("wal: checkpoint %s: %w", filepath.Base(path), err)
	}
	return ck, nil
}

// listByEpoch returns the files in dir with the given suffix, sorted by
// ascending embedded epoch. Foreign files are ignored.
func listByEpoch(fsys FS, dir, suffix string) ([]string, []uint64, error) {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	type item struct {
		name  string
		epoch uint64
	}
	var items []item
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if ep, ok := parseEpoch(e.Name(), suffix); ok {
			items = append(items, item{e.Name(), ep})
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].epoch < items[j].epoch })
	names := make([]string, len(items))
	epochs := make([]uint64, len(items))
	for i, it := range items {
		names[i] = filepath.Join(dir, it.name)
		epochs[i] = it.epoch
	}
	return names, epochs, nil
}

// syncDir fsyncs a directory so entry creations/renames/removals within
// it are durable. A directory that cannot be opened is tolerated (some
// platforms cannot fsync directories at all), but a sync that the
// filesystem actively fails is reported — an injected EIO here must not
// be silently acked as durable.
func syncDir(fsys FS, dir string) error {
	d, err := fsys.Open(dir)
	if err != nil {
		return nil
	}
	err = d.Sync()
	d.Close()
	if err != nil {
		return fmt.Errorf("wal: sync dir %s: %w", dir, err)
	}
	return nil
}
