// Package bench provides the workload generators and the experiment
// harness that regenerate every "table/figure" of the paper — its
// complexity theorems and worked examples (see DESIGN.md §5 for the
// experiment index E1–E9 and EXPERIMENTS.md for recorded results).
package bench

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/dllite"
)

// Example4 is the paper's Example 4 program (surface syntax; the compiler
// applies the functional transformation of Example 4's Σf).
const Example4 = `
r(0,0,1).
p(0,0).
r(X,Y,Z) -> r(X,Z,W).
r(X,Y,Z), p(X,Y), not q(Z) -> p(X,Z).
r(X,Y,Z), not p(X,Y) -> q(Z).
r(X,Y,Z), not p(X,Z) -> s(X).
p(X,Y), not s(X) -> t(X).
`

// WinMoveRule is the classic well-founded negation benchmark rule.
const WinMoveRule = "move(X,Y), not win(Y) -> win(X).\n"

// WinMoveChain generates a win-move game on a path v0 → v1 → … → vn.
func WinMoveChain(n int) string {
	var b strings.Builder
	b.WriteString(WinMoveRule)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "move(v%d, v%d).\n", i, i+1)
	}
	return b.String()
}

// WinMoveCycle generates a win-move game on a cycle of length n (every
// position undefined for even n).
func WinMoveCycle(n int) string {
	var b strings.Builder
	b.WriteString(WinMoveRule)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "move(c%d, c%d).\n", i, (i+1)%n)
	}
	return b.String()
}

// WinMoveRandom generates a win-move game on a random graph with n nodes
// and m edges (deterministic in seed).
func WinMoveRandom(n, m int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	b.WriteString(WinMoveRule)
	for i := 0; i < m; i++ {
		fmt.Fprintf(&b, "move(v%d, v%d).\n", rng.Intn(n), rng.Intn(n))
	}
	return b.String()
}

// WinMoveComponents generates k disjoint win-move chains of length l each:
// a many-component instance where goal-directed checking (E7) touches a
// single component.
func WinMoveComponents(k, l int) string {
	var b strings.Builder
	b.WriteString(WinMoveRule)
	for c := 0; c < k; c++ {
		for i := 0; i < l; i++ {
			fmt.Fprintf(&b, "move(n%d_%d, n%d_%d).\n", c, i, c, i+1)
		}
	}
	return b.String()
}

// ReachChain generates a positive guarded reachability program over a
// chain of n edges (guarded Datalog± without negation, the [1] fragment).
func ReachChain(n int) string {
	var b strings.Builder
	b.WriteString("start(v0).\n")
	b.WriteString("start(X) -> reach(X).\n")
	b.WriteString("reach(X), edge(X,Y) -> reach(Y).\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "edge(v%d, v%d).\n", i, i+1)
	}
	return b.String()
}

// ExpChase generates a positive program whose chase has size 2^(k+1): k
// levels with two existential rules each (a binary tree of nulls). Chase
// size — and hence evaluation time — grows exponentially in the program
// size 2k, the combined-complexity shape of Theorem 13 (E2).
func ExpChase(k int) string {
	var b strings.Builder
	b.WriteString("lvl0(c).\n")
	for i := 0; i < k; i++ {
		fmt.Fprintf(&b, "lvl%d(X) -> lvl%d(Y).\n", i, i+1)
		fmt.Fprintf(&b, "lvl%d(X) -> lvl%d(Z).\n", i, i+1)
	}
	return b.String()
}

// PermFamily generates a positive program over a single arity-w predicate
// whose chase enumerates all w! permutations of the initial tuple (a
// rotation rule plus an adjacent transposition generate the symmetric
// group). Universe growth is superexponential in w — the unbounded-arity
// blow-up shape of Theorem 13 (E3).
func PermFamily(w int) string {
	vars := make([]string, w)
	consts := make([]string, w)
	for i := 0; i < w; i++ {
		vars[i] = fmt.Sprintf("X%d", i+1)
		consts[i] = fmt.Sprintf("c%d", i+1)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "p(%s).\n", strings.Join(consts, ","))
	rot := append(append([]string{}, vars[1:]...), vars[0])
	fmt.Fprintf(&b, "p(%s) -> p(%s).\n", strings.Join(vars, ","), strings.Join(rot, ","))
	if w >= 2 {
		swap := append([]string{}, vars...)
		swap[0], swap[1] = swap[1], swap[0]
		fmt.Fprintf(&b, "p(%s) -> p(%s).\n", strings.Join(vars, ","), strings.Join(swap, ","))
	}
	return b.String()
}

// EmploymentOntology builds the Example 2 DL-Lite_{R,⊓,not} ontology:
//
//	Person ⊓ Employed ⊓ not ∃JobSeekerID ⊑ ∃EmployeeID
//	Person ⊓ not Employed ⊓ not ∃EmployeeID ⊑ ∃JobSeekerID
//	∃EmployeeID⁻ ⊓ not ∃JobSeekerID⁻ ⊑ ValidID
func EmploymentOntology() *dllite.Ontology {
	o := dllite.New()
	o.SubClass(dllite.Exists("EmployeeID"),
		dllite.Pos(dllite.Atomic("Person")),
		dllite.Pos(dllite.Atomic("Employed")),
		dllite.Not(dllite.Exists("JobSeekerID")))
	o.SubClass(dllite.Exists("JobSeekerID"),
		dllite.Pos(dllite.Atomic("Person")),
		dllite.Not(dllite.Atomic("Employed")),
		dllite.Not(dllite.Exists("EmployeeID")))
	o.SubClass(dllite.Atomic("ValidID"),
		dllite.Pos(dllite.ExistsInv("EmployeeID")),
		dllite.Not(dllite.ExistsInv("JobSeekerID")))
	return o
}

// EmploymentFamily returns the Example 2 ontology populated with n
// persons, every third one employed (a data-complexity family mixing
// existentials and negation, E1/E9).
func EmploymentFamily(n int) *dllite.Ontology {
	o := EmploymentOntology()
	for i := 0; i < n; i++ {
		ind := fmt.Sprintf("p%d", i)
		o.AssertConcept("Person", ind)
		if i%3 == 0 {
			o.AssertConcept("Employed", ind)
		}
	}
	return o
}

// LadderFamily generates the adaptive-ladder stress workload: a program
// whose chase does not saturate within the deepening ceiling and whose
// query answer flips at every rung, so adaptive deepening walks the full
// ladder — the worst case for per-rung re-chasing and the best case for
// a resumable chase.
//
// Structure (levels = the deepest predicate chain, m = bulk width):
//
//   - m ternary existential chains b0(s,t,u) → b1 → … grow the derived
//     universe by m atoms (each with a fresh Skolem null) per chase
//     depth: the linear-in-depth bulk that a resumable chase derives and
//     interns once and per-rung re-chasing re-derives per rung.
//   - one unary probe chain a0 → a1 → … measures the frontier: for each
//     level i ≡ 1 (mod 4), the rule a_i(X), not a_{i+2}(X) → g(X) fires
//     exactly when a_i is expanded but a_{i+2} is beyond the depth bound,
//     so g's truth value alternates between consecutive rungs of the
//     default schedule (start 4, step 2).
//   - base(X), not g(X) → flip(X) re-inverts g at forest depth 1, where
//     the query "? flip(X)." can always see it (the guard band hides the
//     frontier itself from query matching, but not from rule bodies).
//
// The answer therefore never meets the stability window and the ladder
// climbs to MaxDepth — with all negation shallow and acyclic, so the WFS
// fixpoint converges in O(1) rounds at every rung and the cost profile
// stays chase-dominated.
func LadderFamily(m, levels int) string {
	var b strings.Builder
	b.WriteString("base(c).\na0(c).\n")
	for j := 0; j < m; j++ {
		fmt.Fprintf(&b, "b0(s%d, t%d, u%d).\n", j, j, j)
	}
	for i := 0; i < levels; i++ {
		fmt.Fprintf(&b, "a%d(X) -> a%d(X).\n", i, i+1)
		fmt.Fprintf(&b, "b%d(X,Y,Z) -> b%d(Y,Z,W).\n", i, i+1)
		if i%4 == 1 && i+2 <= levels {
			fmt.Fprintf(&b, "a%d(X), not a%d(X) -> g(X).\n", i, i+2)
		}
	}
	b.WriteString("base(X), not g(X) -> flip(X).\n")
	return b.String()
}

// UpdateFamily generates the update-heavy workload: a large EDB of k
// disjoint win-move chains of length l, against which a trickle of fact
// additions and retractions mutates one chain at a time. Each delta's
// dependency cone is one component (~l atoms of a k·l universe), so an
// incremental engine — resumed chase, forest-replay retraction,
// warm-started fixpoint — re-derives a vanishing fraction of what an
// invalidate-and-rebuild evaluation recomputes; BenchmarkDeltaApply
// measures exactly this against the committed BENCH_delta.json baseline.
// Chains (rather than cycles) make every retraction flip truth values
// along the whole mutated chain, so the delta path cannot cheat by
// noticing that nothing changed.
func UpdateFamily(k, l int) string { return WinMoveComponents(k, l) }

// StratifiedFamily generates a stratified guarded program with negation
// across strata over n persons (E5): stratum 0 derives employment from
// contracts, stratum 1 derives seekers by negation, stratum 2 benefits.
func StratifiedFamily(n int) string {
	var b strings.Builder
	b.WriteString("contract(X, Y) -> employed(X).\n")
	b.WriteString("person(X), not employed(X) -> seeker(X).\n")
	b.WriteString("seeker(X), not retired(X) -> benefits(X).\n")
	b.WriteString("oldAge(X) -> retired(X).\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "person(p%d).\n", i)
		switch i % 3 {
		case 0:
			fmt.Fprintf(&b, "contract(p%d, c%d).\n", i, i)
		case 1:
			fmt.Fprintf(&b, "oldAge(p%d).\n", i)
		}
	}
	return b.String()
}
