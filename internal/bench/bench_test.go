package bench

import (
	"io"
	"strings"
	"testing"

	"repro/internal/atom"
	"repro/internal/core"
	"repro/internal/ground"
	"repro/internal/term"
)

// TestGeneratorsCompile: every generator must emit valid guarded normal
// Datalog± (generator bugs panic inside compileMust).
func TestGeneratorsCompile(t *testing.T) {
	for name, src := range map[string]string{
		"Example4":          Example4,
		"WinMoveChain":      WinMoveChain(10),
		"WinMoveCycle":      WinMoveCycle(7),
		"WinMoveRandom":     WinMoveRandom(20, 40, 1),
		"WinMoveComponents": WinMoveComponents(3, 4),
		"ReachChain":        ReachChain(10),
		"ExpChase":          ExpChase(4),
		"PermFamily2":       PermFamily(2),
		"PermFamily4":       PermFamily(4),
		"StratifiedFamily":  StratifiedFamily(10),
	} {
		prog, db, _ := compileMust(src)
		if prog == nil {
			t.Errorf("%s produced a nil program", name)
		}
		if name != "Example4" && len(db) == 0 {
			t.Errorf("%s produced an empty database", name)
		}
	}
}

func TestWinMoveChainSemantics(t *testing.T) {
	// On a chain of even length n, v0 alternates: win at odd distance
	// from the dead end.
	prog, db, st := compileMust(WinMoveChain(4))
	m := core.NewEngine(prog, db, core.Options{}).Evaluate()
	wantTrue := map[string]bool{"v1": true, "v3": true} // odd distance from v4
	p, _ := st.LookupPred("win")
	for i := 0; i <= 4; i++ {
		name := "v" + string(rune('0'+i))
		c, ok := st.Terms.LookupConst(name)
		if !ok {
			continue
		}
		a, ok := st.Lookup(p, []term.ID{c})
		got := ground.False
		if ok {
			got = m.Truth(a)
		}
		want := ground.False
		if wantTrue[name] {
			want = ground.True
		}
		if got != want {
			t.Errorf("win(%s) = %v, want %v", name, got, want)
		}
	}
}

func TestWinMoveCycleAllUndefined(t *testing.T) {
	prog, db, _ := compileMust(WinMoveCycle(6))
	m := core.NewEngine(prog, db, core.Options{}).Evaluate()
	if got := m.GM.CountUndefined(); got != 6 {
		t.Errorf("undefined = %d, want 6", got)
	}
}

func TestExpChaseSize(t *testing.T) {
	// ExpChase(k) derives exactly 2^(k+1) - 1 atoms.
	for k := 2; k <= 6; k++ {
		prog, db, _ := compileMust(ExpChase(k))
		m := core.NewEngine(prog, db, core.Options{Depth: k + 2}).Evaluate()
		want := 1<<(k+1) - 1
		if got := m.GP.NumAtoms(); got != want {
			t.Errorf("ExpChase(%d) atoms = %d, want %d", k, got, want)
		}
	}
}

func TestPermFamilySize(t *testing.T) {
	// PermFamily(w) derives exactly w! atoms (all permutations).
	fact := []int{0, 1, 2, 6, 24, 120}
	for w := 2; w <= 5; w++ {
		prog, db, _ := compileMust(PermFamily(w))
		m := core.NewEngine(prog, db, core.Options{Depth: w*w + 2}).Evaluate()
		if got := m.GP.NumAtoms(); got != fact[w] {
			t.Errorf("PermFamily(%d) atoms = %d, want %d", w, got, fact[w])
		}
	}
}

func TestEmploymentFamilyCounts(t *testing.T) {
	st := atom.NewStore(term.NewStore())
	prog, db, err := EmploymentFamily(9).Compile(st)
	if err != nil {
		t.Fatal(err)
	}
	m := core.NewEngine(prog, db, core.Options{}).Evaluate()
	// Of 9 persons, 3 are employed (every third): 3 employee IDs, 6 job
	// seeker IDs, 3 valid IDs.
	if got := countTrueByPred(m, st, "employeeID"); got != 3 {
		t.Errorf("employeeID = %d, want 3", got)
	}
	if got := countTrueByPred(m, st, "jobSeekerID"); got != 6 {
		t.Errorf("jobSeekerID = %d, want 6", got)
	}
	if got := countTrueByPred(m, st, "validID"); got != 3 {
		t.Errorf("validID = %d, want 3", got)
	}
}

func TestStratifiedFamilyIsStratified(t *testing.T) {
	prog, _, _ := compileMust(StratifiedFamily(6))
	if _, ok := prog.Stratify(); !ok {
		t.Errorf("StratifiedFamily is not stratified")
	}
}

func TestWinMoveRandomDeterministic(t *testing.T) {
	if WinMoveRandom(10, 20, 5) != WinMoveRandom(10, 20, 5) {
		t.Errorf("same seed produced different graphs")
	}
	if WinMoveRandom(10, 20, 5) == WinMoveRandom(10, 20, 6) {
		t.Errorf("different seeds produced identical graphs")
	}
}

// TestExperimentsRunQuick smoke-tests every experiment table end to end.
func TestExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweeps are slow")
	}
	var sb strings.Builder
	for _, id := range Experiments {
		sb.Reset()
		if err := Run(id, &sb, true); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		out := sb.String()
		if !strings.Contains(out, "== "+id) || !strings.Contains(out, "claim:") {
			t.Errorf("%s output malformed:\n%s", id, out)
		}
		if strings.Count(out, "\n") < 5 {
			t.Errorf("%s produced no rows:\n%s", id, out)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := Run("E99", io.Discard, true); err == nil {
		t.Errorf("unknown experiment accepted")
	}
}

// TestE5NoMismatches asserts the E5 claim directly: the experiment's
// mismatch column must be all zeros.
func TestE5NoMismatches(t *testing.T) {
	tab := E5StratifiedCoincidence(true)
	for _, row := range tab.Rows {
		if row[2] != "0" || row[3] != "0" {
			t.Errorf("E5 row has mismatches/undefined: %v", row)
		}
	}
}

// TestE6NoDivergence asserts the E6 claim directly.
func TestE6NoDivergence(t *testing.T) {
	tab := E6PositiveCoincidence(true)
	for _, row := range tab.Rows {
		if row[2] != "0" || row[3] != "0" {
			t.Errorf("E6 row diverges from chase: %v", row)
		}
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{ID: "T", Title: "test", Claim: "c", Header: []string{"a", "bb"}}
	tab.AddRow(1, 2.5)
	tab.AddRow("x", "y")
	tab.Note("n1")
	var sb strings.Builder
	tab.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"== T: test", "claim: c", "2.50", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestEmploymentOntologyMatchesPaper(t *testing.T) {
	src, err := EmploymentOntology().ToDatalog()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "not ex_jobSeekerID(X) -> employeeID(X, Z)") {
		t.Errorf("ontology translation drifted:\n%s", src)
	}
}
