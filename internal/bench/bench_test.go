package bench

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"testing"

	"repro/internal/atom"
	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/ground"
	"repro/internal/program"
	"repro/internal/term"
)

// TestGeneratorsCompile: every generator must emit valid guarded normal
// Datalog± (generator bugs panic inside compileMust).
func TestGeneratorsCompile(t *testing.T) {
	for name, src := range map[string]string{
		"Example4":          Example4,
		"WinMoveChain":      WinMoveChain(10),
		"WinMoveCycle":      WinMoveCycle(7),
		"WinMoveRandom":     WinMoveRandom(20, 40, 1),
		"WinMoveComponents": WinMoveComponents(3, 4),
		"ReachChain":        ReachChain(10),
		"UpdateFamily":      UpdateFamily(5, 6),
		"ExpChase":          ExpChase(4),
		"PermFamily2":       PermFamily(2),
		"PermFamily4":       PermFamily(4),
		"StratifiedFamily":  StratifiedFamily(10),
	} {
		prog, db, _ := compileMust(src)
		if prog == nil {
			t.Errorf("%s produced a nil program", name)
		}
		if name != "Example4" && len(db) == 0 {
			t.Errorf("%s produced an empty database", name)
		}
	}
}

func TestWinMoveChainSemantics(t *testing.T) {
	// On a chain of even length n, v0 alternates: win at odd distance
	// from the dead end.
	prog, db, st := compileMust(WinMoveChain(4))
	m := core.NewEngine(prog, db, core.Options{}).Evaluate()
	wantTrue := map[string]bool{"v1": true, "v3": true} // odd distance from v4
	p, _ := st.LookupPred("win")
	for i := 0; i <= 4; i++ {
		name := "v" + string(rune('0'+i))
		c, ok := st.Terms.LookupConst(name)
		if !ok {
			continue
		}
		a, ok := st.Lookup(p, []term.ID{c})
		got := ground.False
		if ok {
			got = m.Truth(a)
		}
		want := ground.False
		if wantTrue[name] {
			want = ground.True
		}
		if got != want {
			t.Errorf("win(%s) = %v, want %v", name, got, want)
		}
	}
}

func TestWinMoveCycleAllUndefined(t *testing.T) {
	prog, db, _ := compileMust(WinMoveCycle(6))
	m := core.NewEngine(prog, db, core.Options{}).Evaluate()
	if got := m.GM.CountUndefined(); got != 6 {
		t.Errorf("undefined = %d, want 6", got)
	}
}

func TestExpChaseSize(t *testing.T) {
	// ExpChase(k) derives exactly 2^(k+1) - 1 atoms.
	for k := 2; k <= 6; k++ {
		prog, db, _ := compileMust(ExpChase(k))
		m := core.NewEngine(prog, db, core.Options{Depth: k + 2}).Evaluate()
		want := 1<<(k+1) - 1
		if got := m.GP.NumAtoms(); got != want {
			t.Errorf("ExpChase(%d) atoms = %d, want %d", k, got, want)
		}
	}
}

func TestPermFamilySize(t *testing.T) {
	// PermFamily(w) derives exactly w! atoms (all permutations).
	fact := []int{0, 1, 2, 6, 24, 120}
	for w := 2; w <= 5; w++ {
		prog, db, _ := compileMust(PermFamily(w))
		m := core.NewEngine(prog, db, core.Options{Depth: w*w + 2}).Evaluate()
		if got := m.GP.NumAtoms(); got != fact[w] {
			t.Errorf("PermFamily(%d) atoms = %d, want %d", w, got, fact[w])
		}
	}
}

func TestEmploymentFamilyCounts(t *testing.T) {
	st := atom.NewStore(term.NewStore())
	prog, db, err := EmploymentFamily(9).Compile(st)
	if err != nil {
		t.Fatal(err)
	}
	m := core.NewEngine(prog, db, core.Options{}).Evaluate()
	// Of 9 persons, 3 are employed (every third): 3 employee IDs, 6 job
	// seeker IDs, 3 valid IDs.
	if got := countTrueByPred(m, st, "employeeID"); got != 3 {
		t.Errorf("employeeID = %d, want 3", got)
	}
	if got := countTrueByPred(m, st, "jobSeekerID"); got != 6 {
		t.Errorf("jobSeekerID = %d, want 6", got)
	}
	if got := countTrueByPred(m, st, "validID"); got != 3 {
		t.Errorf("validID = %d, want 3", got)
	}
}

func TestStratifiedFamilyIsStratified(t *testing.T) {
	prog, _, _ := compileMust(StratifiedFamily(6))
	if _, ok := prog.Stratify(); !ok {
		t.Errorf("StratifiedFamily is not stratified")
	}
}

func TestWinMoveRandomDeterministic(t *testing.T) {
	if WinMoveRandom(10, 20, 5) != WinMoveRandom(10, 20, 5) {
		t.Errorf("same seed produced different graphs")
	}
	if WinMoveRandom(10, 20, 5) == WinMoveRandom(10, 20, 6) {
		t.Errorf("different seeds produced identical graphs")
	}
}

// TestExperimentsRunQuick smoke-tests every experiment table end to end.
func TestExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweeps are slow")
	}
	var sb strings.Builder
	for _, id := range Experiments {
		sb.Reset()
		if err := Run(id, &sb, true); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		out := sb.String()
		if !strings.Contains(out, "== "+id) || !strings.Contains(out, "claim:") {
			t.Errorf("%s output malformed:\n%s", id, out)
		}
		if strings.Count(out, "\n") < 5 {
			t.Errorf("%s produced no rows:\n%s", id, out)
		}
	}
}

// BenchmarkDeltaApply — the delta subsystem's headline number: a trickle
// of single-fact mutations (alternating retractions and re-additions of
// one mid-chain edge per component) against the update-heavy family's
// large EDB, with the model re-evaluated after every mutation.
//
//   - "incremental" is the real path: Engine.ApplyDelta rebases the
//     cached chase (resumed for additions, forest-replayed for
//     retractions), regrounds only what changed, and warm-starts the WFS
//     fixpoint on the mutated component's dependency cone.
//   - "rebuild" reconstructs the invalidate-and-rebuild design: every
//     mutation discards the engine and re-chases, regrounds, and re-runs
//     the fixpoint over the full database.
//
// The acceptance bar is incremental ≥ 2× faster; BENCH_delta.json
// records the committed baseline.
func BenchmarkDeltaApply(b *testing.B) {
	const comps, length = 160, 50
	src := UpdateFamily(comps, length)
	prog, db0, st := compileMust(src)
	moveP, ok := st.LookupPred("move")
	if !ok {
		b.Fatal("no move predicate")
	}
	edge := func(c int) atom.AtomID {
		return st.Atom(moveP, []term.ID{
			st.Terms.Const(fmt.Sprintf("n%d_3", c)),
			st.Terms.Const(fmt.Sprintf("n%d_4", c)),
		})
	}
	// mutate toggles one component's mid-chain edge: out while present,
	// back in while absent — every op is a genuine set-level change.
	mutate := func(db program.Database, removed []bool, i int) program.Database {
		c := i % comps
		a := edge(c)
		defer func() { removed[c] = !removed[c] }()
		if !removed[c] {
			out := make(program.Database, 0, len(db))
			for _, f := range db {
				if f != a {
					out = append(out, f)
				}
			}
			return out
		}
		return append(db[:len(db):len(db)], a)
	}

	b.Run("incremental", func(b *testing.B) {
		eng := core.NewEngine(prog, db0, core.Options{})
		eng.Evaluate()
		db, removed := db0, make([]bool, comps)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			db = mutate(db, removed, i)
			eng.ApplyDelta(db)
			if eng.Evaluate() == nil {
				b.Fatal("no model")
			}
		}
	})

	b.Run("rebuild", func(b *testing.B) {
		db, removed := db0, make([]bool, comps)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			db = mutate(db, removed, i)
			if core.NewEngine(prog, db, core.Options{}).Evaluate() == nil {
				b.Fatal("no model")
			}
		}
	})
}

// TestDeltaApplyBenchWorkloadIsSound: the benchmark's mutation actually
// changes the model (no-op deltas would let the incremental path win
// vacuously), and the incremental engine agrees with a rebuilt one after
// a toggle round-trip.
func TestDeltaApplyBenchWorkloadIsSound(t *testing.T) {
	const comps, length = 4, 8
	prog, db, st := compileMust(UpdateFamily(comps, length))
	moveP, _ := st.LookupPred("move")
	a := st.Atom(moveP, []term.ID{st.Terms.Const("n0_3"), st.Terms.Const("n0_4")})
	eng := core.NewEngine(prog, db, core.Options{})
	m0 := eng.Evaluate()
	winP, _ := st.LookupPred("win")
	probe := st.Atom(winP, []term.ID{st.Terms.Const("n0_3")})
	before := m0.Truth(probe)

	var db1 program.Database
	for _, f := range db {
		if f != a {
			db1 = append(db1, f)
		}
	}
	eng.ApplyDelta(db1)
	m1 := eng.Evaluate()
	if m1.Truth(probe) == before {
		t.Fatalf("retraction did not change win(n0_3) (= %v): benchmark workload is vacuous", before)
	}
	eng.ApplyDelta(append(db1[:len(db1):len(db1)], a))
	m2 := eng.Evaluate()
	scratch := core.NewEngine(prog, append(db1[:len(db1):len(db1)], a), core.Options{}).Evaluate()
	for _, g := range scratch.Chase.Atoms {
		if gv, wv := m2.Truth(g), scratch.Truth(g); gv != wv {
			t.Errorf("truth(%s) = %v, want %v", st.String(g), gv, wv)
		}
	}
}

// TestModularEquivOnFamilies is the workload half of the modular
// cross-check suite (the random-program half lives in internal/ground):
// on the ground program of every benchmark family, the modular SCC-wise
// solve must agree truth-for-truth with each of the four global WFS
// algorithms, sequentially and with a worker pool.
func TestModularEquivOnFamilies(t *testing.T) {
	families := map[string]string{
		"Example4":          Example4,
		"WinMoveChain":      WinMoveChain(24),
		"WinMoveCycle":      WinMoveCycle(12),
		"WinMoveRandom":     WinMoveRandom(30, 60, 7),
		"WinMoveComponents": WinMoveComponents(6, 5),
		"ReachChain":        ReachChain(16),
		"UpdateFamily":      UpdateFamily(8, 10),
		"ExpChase":          ExpChase(5),
		"PermFamily":        PermFamily(4),
		"StratifiedFamily":  StratifiedFamily(30),
		"LadderFamily":      LadderFamily(4, 12),
	}
	if src, err := EmploymentFamily(9).ToDatalog(); err == nil {
		families["EmploymentFamily"] = src
	} else {
		t.Fatalf("employment ontology: %v", err)
	}
	algos := map[string]func(*ground.Program) *ground.Model{
		"alternating-fixpoint": ground.AlternatingFixpoint,
		"unfounded-sets":       ground.UnfoundedIteration,
		"forward-proofs":       ground.ForwardProofIteration,
		"remainder":            ground.Remainder,
	}
	for name, src := range families {
		prog, db, _ := compileMust(src)
		res := chase.Run(prog, db, chase.Options{MaxDepth: core.DefaultDepth, MaxAtoms: 4_000_000})
		gp := ground.FromChase(res)
		for an, algo := range algos {
			want := algo(gp)
			for _, par := range []int{1, 4} {
				got := ground.SolveModular(gp, algo, par)
				if !got.Equal(want) {
					t.Errorf("%s/%s par=%d: modular solve diverges from global", name, an, par)
				}
			}
		}
	}
}

// BenchmarkModularSolve — the modular solver's headline number, measured
// on the ground program alone (no chase, no grounding: exactly the solve
// the engine dispatches per model).
//
//   - UpdateFamily(160, 50) is the worst case for a global fixpoint: 160
//     independent win-move chains, so every global round sweeps ~16k
//     rules to make progress on components that each need ~100 rounds.
//     Its ground dependency graph is acyclic (chains, not cycles), so
//     the modular solve finishes each component in a single definite
//     pass — "global/update" vs "modular/update" is the acceptance
//     comparison (criterion: ≥ 2×; BENCH_modular.json holds the
//     committed baseline), and "modular-seq/update" isolates the
//     decomposition win from the worker pool.
//   - WinMoveCycle(3000) is the worst case for the modular solver: one
//     negation cycle spans every win atom, so decomposition buys nothing
//     and the subprogram extraction is pure overhead (criterion:
//     "modular-seq/cycle" within 10% of "global/cycle").
//   - "condense/update" prices the Tarjan condensation itself (cached on
//     the Program in production, rebuilt fresh here).
func BenchmarkModularSolve(b *testing.B) {
	ground16k := func() *ground.Program {
		prog, db, _ := compileMust(UpdateFamily(160, 50))
		return ground.FromChase(chase.Run(prog, db, chase.Options{MaxDepth: core.DefaultDepth, MaxAtoms: 4_000_000}))
	}
	gpU := ground16k()
	progC, dbC, _ := compileMust(WinMoveCycle(3000))
	gpC := ground.FromChase(chase.Run(progC, dbC, chase.Options{MaxDepth: core.DefaultDepth, MaxAtoms: 4_000_000}))

	b.Run("global/update", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if ground.AlternatingFixpoint(gpU) == nil {
				b.Fatal("no model")
			}
		}
	})
	b.Run("modular/update", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if ground.SolveModular(gpU, ground.AlternatingFixpoint, runtime.GOMAXPROCS(0)) == nil {
				b.Fatal("no model")
			}
		}
	})
	b.Run("modular-seq/update", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if ground.SolveModular(gpU, ground.AlternatingFixpoint, 1) == nil {
				b.Fatal("no model")
			}
		}
	})
	b.Run("condense/update", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if ground.Condense(gpU) == nil {
				b.Fatal("no condensation")
			}
		}
	})
	b.Run("global/cycle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if ground.AlternatingFixpoint(gpC) == nil {
				b.Fatal("no model")
			}
		}
	})
	b.Run("modular-seq/cycle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if ground.SolveModular(gpC, ground.AlternatingFixpoint, 1) == nil {
				b.Fatal("no model")
			}
		}
	})
}

func TestUnknownExperiment(t *testing.T) {
	if err := Run("E99", io.Discard, true); err == nil {
		t.Errorf("unknown experiment accepted")
	}
}

// TestE5NoMismatches asserts the E5 claim directly: the experiment's
// mismatch column must be all zeros.
func TestE5NoMismatches(t *testing.T) {
	tab := E5StratifiedCoincidence(true)
	for _, row := range tab.Rows {
		if row[2] != "0" || row[3] != "0" {
			t.Errorf("E5 row has mismatches/undefined: %v", row)
		}
	}
}

// TestE6NoDivergence asserts the E6 claim directly.
func TestE6NoDivergence(t *testing.T) {
	tab := E6PositiveCoincidence(true)
	for _, row := range tab.Rows {
		if row[2] != "0" || row[3] != "0" {
			t.Errorf("E6 row diverges from chase: %v", row)
		}
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{ID: "T", Title: "test", Claim: "c", Header: []string{"a", "bb"}}
	tab.AddRow(1, 2.5)
	tab.AddRow("x", "y")
	tab.Note("n1")
	var sb strings.Builder
	tab.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"== T: test", "claim: c", "2.50", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestEmploymentOntologyMatchesPaper(t *testing.T) {
	src, err := EmploymentOntology().ToDatalog()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "not ex_jobSeekerID(X) -> employeeID(X, Z)") {
		t.Errorf("ontology translation drifted:\n%s", src)
	}
}
