package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/atom"
	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/ground"
	"repro/internal/program"
	"repro/internal/strat"
	"repro/internal/term"
)

// compileMust compiles source text into a fresh store; the harness treats
// generator bugs as fatal.
func compileMust(src string) (*program.Program, program.Database, *atom.Store) {
	st := atom.NewStore(term.NewStore())
	prog, db, _, err := program.CompileText(src, st)
	if err != nil {
		panic(fmt.Sprintf("bench: generated workload failed to compile: %v", err))
	}
	return prog, db, st
}

func countTrueByPred(m *core.Model, st *atom.Store, pred string) int {
	p, ok := st.LookupPred(pred)
	if !ok {
		return 0
	}
	n := 0
	for i, g := range m.GP.Atoms {
		if st.PredOf(g) == p && m.GM.Truth[i] == ground.True {
			n++
		}
	}
	return n
}

// Experiments lists the available experiment ids in order. E10 and E11 are
// ablations of this implementation's design choices (DESIGN.md §5 note):
// the three equivalent WFS algorithms, and the effect of the goal-directed
// pipeline stages.
var Experiments = []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11"}

// Run executes one experiment and prints its tables. quick shrinks the
// sweeps for use under `go test`.
func Run(id string, w io.Writer, quick bool) error {
	switch id {
	case "E1":
		E1DataComplexity(quick).Fprint(w)
	case "E2":
		E2CombinedComplexity(quick).Fprint(w)
	case "E3":
		E3ArityScaling(quick).Fprint(w)
	case "E4":
		E4TransfiniteIteration(quick).Fprint(w)
	case "E5":
		E5StratifiedCoincidence(quick).Fprint(w)
	case "E6":
		E6PositiveCoincidence(quick).Fprint(w)
	case "E7":
		E7GoalDirected(quick).Fprint(w)
	case "E8":
		E8DepthStabilization().Fprint(w)
	case "E9":
		E9DLLite(quick).Fprint(w)
	case "E10":
		E10AlgorithmAblation(quick).Fprint(w)
	case "E11":
		E11GoalDirectedAblation(quick).Fprint(w)
	default:
		return fmt.Errorf("bench: unknown experiment %q", id)
	}
	return nil
}

// RunAll executes every experiment.
func RunAll(w io.Writer, quick bool) {
	for _, id := range Experiments {
		if err := Run(id, w, quick); err != nil {
			fmt.Fprintln(w, "error:", err)
		}
	}
}

// E1DataComplexity — Theorems 13/14(3): evaluation is polynomial in |D|
// for fixed Σ and Q. Sweeps the win-move random graph and the Example 2
// employment family; time ratios per doubling should approach a small
// constant (low-degree polynomial), far from exponential blow-up.
func E1DataComplexity(quick bool) *Table {
	t := &Table{
		ID:     "E1",
		Title:  "data complexity: time vs |D|, fixed Σ and Q",
		Claim:  "PTIME data complexity (Thm. 13/14: membership and NBCQ answering polynomial in |D|)",
		Header: []string{"workload", "|D|", "atoms", "time", "×prev"},
	}
	sizes := []int{512, 1024, 2048, 4096, 8192}
	if quick {
		sizes = []int{256, 512, 1024}
	}
	var prev time.Duration
	for _, n := range sizes {
		prog, db, _ := compileMust(WinMoveRandom(n, 2*n, 42))
		e := core.NewEngine(prog, db, core.Options{})
		var m *core.Model
		d := Timed(func() { m = e.Evaluate() })
		t.AddRow("win-move", 2*n, m.GP.NumAtoms(), d, Ratio(d, prev))
		prev = d
	}
	prev = 0
	empSizes := []int{300, 600, 1200, 2400}
	if quick {
		empSizes = []int{150, 300, 600}
	}
	for _, n := range empSizes {
		st := atom.NewStore(term.NewStore())
		prog, db, err := EmploymentFamily(n).Compile(st)
		if err != nil {
			panic(err)
		}
		e := core.NewEngine(prog, db, core.Options{})
		var m *core.Model
		d := Timed(func() { m = e.Evaluate() })
		t.AddRow("employment", n, m.GP.NumAtoms(), d, Ratio(d, prev))
		prev = d
	}
	t.Note("×prev ≈ 2 per doubling indicates near-linear growth — consistent with PTIME data complexity")
	return t
}

// E2CombinedComplexity — Theorem 13: with bounded arity the problem is
// EXPTIME-complete in the combined size; the ExpChase family realizes the
// exponential chase growth in |Σ| that drives the upper bound.
func E2CombinedComplexity(quick bool) *Table {
	t := &Table{
		ID:     "E2",
		Title:  "combined complexity: time vs |Σ| (bounded arity)",
		Claim:  "EXPTIME combined complexity for bounded arity (Thm. 13): worst-case cost grows exponentially in |Σ|",
		Header: []string{"k (levels)", "|Σ| rules", "atoms", "time", "×prev"},
	}
	max := 13
	if quick {
		max = 10
	}
	var prev time.Duration
	for k := 4; k <= max; k++ {
		prog, db, _ := compileMust(ExpChase(k))
		e := core.NewEngine(prog, db, core.Options{Depth: k + 2})
		var m *core.Model
		d := Timed(func() { m = e.Evaluate() })
		t.AddRow(k, 2*k, m.GP.NumAtoms(), d, Ratio(d, prev))
		prev = d
	}
	t.Note("atoms double per level (2 extra rules): ×prev ≈ 2 shows the exponential shape in |Σ|")
	return t
}

// E3ArityScaling — Theorem 13: with unbounded arity the problem is
// 2-EXPTIME-complete; the permutation family realizes the superexponential
// universe growth in the arity w that drives the type-space explosion.
func E3ArityScaling(quick bool) *Table {
	t := &Table{
		ID:     "E3",
		Title:  "combined complexity: time vs arity w (unbounded arity)",
		Claim:  "2-EXPTIME combined complexity (Thm. 13): cost grows superexponentially in w",
		Header: []string{"w", "atoms (≈w!)", "time", "×prev"},
	}
	max := 7
	if quick {
		max = 6
	}
	var prev time.Duration
	for w := 2; w <= max; w++ {
		prog, db, _ := compileMust(PermFamily(w))
		e := core.NewEngine(prog, db, core.Options{Depth: w*w + 2, MaxAtoms: 8_000_000})
		var m *core.Model
		d := Timed(func() { m = e.Evaluate() })
		t.AddRow(w, m.GP.NumAtoms(), d, Ratio(d, prev))
		prev = d
	}
	t.Note("growth factor itself grows with w (w! universe): superexponential shape in arity")
	return t
}

// E4TransfiniteIteration — Example 9: WFS(P) = ŴP,ω+2; the fixpoint does
// not close at any finite stage of the infinite program, so on depth-d
// truncations the number of operator rounds grows with d while the
// answers (T(0) true, ¬S(0), Q false, P true) stay fixed.
func E4TransfiniteIteration(quick bool) *Table {
	t := &Table{
		ID:     "E4",
		Title:  "transfinite iteration (Ex. 4/9): rounds vs truncation depth",
		Claim:  "lfp(ŴP) closes only beyond ω on the infinite program: rounds grow unboundedly with depth, answers stable",
		Header: []string{"depth", "atoms", "rounds", "T(0)", "S(0)", "Q(t1)", "P(0,t1)", "time"},
	}
	depths := []int{4, 8, 16, 32, 64}
	if quick {
		depths = []int{4, 8, 16, 32}
	}
	for _, d := range depths {
		prog, db, st := compileMust(Example4)
		e := core.NewEngine(prog, db, core.Options{Depth: d})
		var m *core.Model
		dur := Timed(func() { m = e.Evaluate() })
		truth := func(src string) ground.Truth {
			q, err := program.ParseQuery("? "+src+".", st)
			if err != nil {
				panic(err)
			}
			sub := atom.NewSubst(0)
			return m.Truth(st.Instantiate(q.Pos[0], sub))
		}
		t.AddRow(d, m.GP.NumAtoms(), m.GM.Rounds,
			truth("t(0)"), truth("s(0)"), truth("q(1)"), truth("p(0,1)"), dur)
	}
	t.Note("rounds grow with depth: the finite shadow of ŴP,ω+2 (Ex. 9); truth values do not change")
	return t
}

// E5StratifiedCoincidence — §1: the WFS conservatively extends stratified
// Datalog± [1]: on stratified programs both semantics agree atom-for-atom.
func E5StratifiedCoincidence(quick bool) *Table {
	t := &Table{
		ID:     "E5",
		Title:  "WFS vs stratified baseline on stratified programs",
		Claim:  "on stratified programs the WFS equals the iterated-chase perfect model (§1)",
		Header: []string{"|persons|", "atoms", "mismatches", "undef", "wfs time", "strat time", "overhead"},
	}
	sizes := []int{500, 1000, 2000, 4000}
	if quick {
		sizes = []int{200, 400, 800}
	}
	for _, n := range sizes {
		prog, db, _ := compileMust(StratifiedFamily(n))
		e := core.NewEngine(prog, db, core.Options{})
		var wm *core.Model
		dw := Timed(func() { wm = e.Evaluate() })
		var sm *core.Model
		var err error
		ds := Timed(func() { sm, err = strat.Evaluate(prog, db, 0) })
		if err != nil {
			panic(err)
		}
		mismatch := 0
		for i, g := range wm.GP.Atoms {
			if wm.GM.Truth[i] != sm.GM.TruthOfGlobal(g) {
				mismatch++
			}
		}
		t.AddRow(n, wm.GP.NumAtoms(), mismatch, wm.GM.CountUndefined(), dw, ds, Ratio(dw, ds))
	}
	t.Note("mismatches and undefined counts must be 0; overhead is the price of the alternating fixpoint")
	return t
}

// E6PositiveCoincidence — §1/[2]: on positive programs the WFS-true atoms
// are exactly the chase-derivable atoms and nothing is undefined; the WFS
// engine's overhead over the bare chase is a small constant.
func E6PositiveCoincidence(quick bool) *Table {
	t := &Table{
		ID:     "E6",
		Title:  "WFS vs bare chase on positive guarded Datalog±",
		Claim:  "WFS restricted to positive programs = chase semantics of [1]; small constant overhead",
		Header: []string{"|D|", "atoms", "true≠derived", "undef", "chase time", "wfs time", "overhead"},
	}
	sizes := []int{1000, 2000, 4000, 8000}
	if quick {
		sizes = []int{500, 1000, 2000}
	}
	for _, n := range sizes {
		prog, db, _ := compileMust(ReachChain(n))
		var res *chase.Result
		dc := Timed(func() {
			res = chase.Run(prog, db, chase.Options{MaxDepth: n + 2, MaxAtoms: 8_000_000})
		})
		e := core.NewEngine(prog, db, core.Options{Depth: n + 2, MaxAtoms: 8_000_000})
		var m *core.Model
		dw := Timed(func() { m = e.Evaluate() })
		diff := 0
		for i, g := range m.GP.Atoms {
			derived := res.Derived(g)
			if (m.GM.Truth[i] == ground.True) != derived {
				diff++
			}
		}
		t.AddRow(n, m.GP.NumAtoms(), diff, m.GM.CountUndefined(), dc, dw, Ratio(dw, dc))
	}
	t.Note("true≠derived and undef must be 0 (positive programs are two-valued and chase-determined)")
	return t
}

// E7GoalDirected — §4 WCHECK: membership of a single ground atom is
// decided on the goal's dependency-closed fragment; on many-component
// instances the fragment (and hence the check) is much smaller than the
// saturated fixpoint.
func E7GoalDirected(quick bool) *Table {
	t := &Table{
		ID:     "E7",
		Title:  "goal-directed WCHECK vs full saturation",
		Claim:  "WCHECK decides membership on a goal-local fragment (§4): closure ≪ universe on modular data",
		Header: []string{"components", "universe", "closure", "full fixpoint", "wcheck", "speedup"},
	}
	comps := []int{50, 100, 200, 400}
	if quick {
		comps = []int{25, 50, 100}
	}
	for _, k := range comps {
		prog, db, st := compileMust(WinMoveComponents(k, 30))
		e := core.NewEngine(prog, db, core.Options{})
		m := e.Evaluate() // includes the chase; both sides reuse it
		dFull := Timed(func() { ground.AlternatingFixpoint(m.GP) })
		p, _ := st.LookupPred("win")
		goal := st.Atom(p, []term.ID{st.Terms.Const("n0_0")})
		var stats *core.WCheckStats
		dGoal := Timed(func() { _, stats = m.WCheck(goal) })
		t.AddRow(k, stats.TotalAtoms, stats.ClosureAtoms, dFull, dGoal, Ratio(dFull, dGoal))
	}
	t.Note("speedup grows with the number of components: the fixpoint is confined to the goal's component")
	return t
}

// E8DepthStabilization — Proposition 12: a depth of n·δ suffices for NBCQ
// answering, but δ is astronomical; in practice answers stabilize at tiny
// depths that do not grow with |D| (the data-independence the PTIME bound
// rests on).
func E8DepthStabilization() *Table {
	t := &Table{
		ID:     "E8",
		Title:  "stabilization depth vs the Proposition 12 bound n·δ",
		Claim:  "n·δ suffices (Prop. 12) but is astronomically large; observed stabilization depths are tiny and data-independent",
		Header: []string{"workload", "query", "stable depth", "exact?", "δ (bits)"},
	}
	cases := []struct {
		name, src, query string
	}{
		{"example4", Example4, "? t(X)."},
		{"example4 (neg)", Example4, "? p(0, X), not q(X)."},
		{"win-move chain 50", WinMoveChain(50), "? win(v0)."},
		{"win-move chain 51", WinMoveChain(51), "? win(v0)."},
	}
	for _, c := range cases {
		prog, db, st := compileMust(c.src)
		q, err := program.ParseQuery(c.query, st)
		if err != nil {
			panic(err)
		}
		e := core.NewEngine(prog, db, core.Options{MaxDepth: 64, StabilityWindow: 3})
		_, stats, _ := e.Answer(q)
		delta := core.DeltaForSchema(st)
		t.AddRow(c.name, c.query, stats.FinalDepth, stats.Exact, delta.BitLen())
	}
	t.Note("δ printed as its bit length: 2^bits magnitude — unusably large, while real depths are single/double digit")
	return t
}

// E9DLLite — Example 2: under UNA the WFS derives EmployeeID(a, f(a)),
// JobSeekerID(b, g(b)), and — because f(a) ≠ g(b) — ValidID(f(a)); the
// derivations scale linearly with the ABox.
func E9DLLite(quick bool) *Table {
	t := &Table{
		ID:     "E9",
		Title:  "DL-Lite_{R,⊓,not} employment ontology under WFS+UNA (Ex. 2)",
		Claim:  "standard WFS derives EmployeeID(a,f(a)), JobSeekerID(b,g(b)), ValidID(f(a)) — the UNA makes f(a) ≠ g(b)",
		Header: []string{"persons", "employeeID", "jobSeekerID", "validID", "undef", "time"},
	}
	sizes := []int{3, 30, 300, 3000}
	if quick {
		sizes = []int{3, 30, 300}
	}
	for _, n := range sizes {
		st := atom.NewStore(term.NewStore())
		prog, db, err := EmploymentFamily(n).Compile(st)
		if err != nil {
			panic(err)
		}
		e := core.NewEngine(prog, db, core.Options{})
		var m *core.Model
		d := Timed(func() { m = e.Evaluate() })
		t.AddRow(n,
			countTrueByPred(m, st, "employeeID"),
			countTrueByPred(m, st, "jobSeekerID"),
			countTrueByPred(m, st, "validID"),
			m.GM.CountUndefined(), d)
	}
	t.Note("employed persons get EmployeeIDs, the rest JobSeekerIDs; every EmployeeID null is a ValidID (UNA)")
	return t
}

// E10AlgorithmAblation — design-choice ablation: the four provably
// equivalent WFS algorithms (alternating fixpoint; literal §2.6 WP
// iteration; Definition 7 ŴP iteration; Brass–Dix remainder) on the same
// bounded groundings.
// The alternating fixpoint is the default engine; the table quantifies
// what that choice buys.
func E10AlgorithmAblation(quick bool) *Table {
	t := &Table{
		ID:     "E10",
		Title:  "ablation: WFS algorithm choice (same model, different operators)",
		Claim:  "Theorem 8 / classical equivalences: all three compute WFS(P); cost differs",
		Header: []string{"workload", "atoms", "alternating", "unfounded-sets", "forward-proofs", "remainder", "agree"},
	}
	type wl struct {
		name string
		src  string
		d    int
	}
	n := 1500
	if quick {
		n = 400
	}
	for _, w := range []wl{
		{"win-move random", WinMoveRandom(n, 2*n, 11), 8},
		{"example4 deep", Example4, 32},
		{"stratified", StratifiedFamily(n / 2), 8},
	} {
		prog, db, _ := compileMust(w.src)
		res := chase.Run(prog, db, chase.Options{MaxDepth: w.d, MaxAtoms: 4_000_000})
		gp := ground.FromChase(res)
		var m1, m2, m3, m4 *ground.Model
		d1 := Timed(func() { m1 = ground.AlternatingFixpoint(gp) })
		d2 := Timed(func() { m2 = ground.UnfoundedIteration(gp) })
		d3 := Timed(func() { m3 = ground.ForwardProofIteration(gp) })
		d4 := Timed(func() { m4 = ground.Remainder(gp) })
		agree := m1.Equal(m2) && m1.Equal(m3) && m1.Equal(m4)
		t.AddRow(w.name, gp.NumAtoms(), d1, d2, d3, d4, agree)
	}
	t.Note("agree must be true everywhere; the alternating fixpoint avoids the per-round full-program rescan of the literal WP operator")
	return t
}

// E11GoalDirectedAblation — pipeline-stage ablation for goal-directed
// membership: (a) full saturation, (b) saturated chase + closure-restricted
// fixpoint (Model.WCheck), (c) fully goal-directed — relevance-restricted
// chase + closure fixpoint (WCheckGoalDirected). Isolates where the §4
// goal-locality pays.
func E11GoalDirectedAblation(quick bool) *Table {
	t := &Table{
		ID:     "E11",
		Title:  "ablation: goal-directed pipeline stages (WCHECK realizations)",
		Claim:  "restricting chase AND fixpoint to the goal's relevance closure dominates restricting the fixpoint alone",
		Header: []string{"components", "saturate-all", "closure-fixpoint", "goal-directed", "chased atoms"},
	}
	comps := []int{100, 200, 400}
	if quick {
		comps = []int{50, 100}
	}
	for _, k := range comps {
		// The win/move world (k components) plus a large unrelated world:
		// k·60 seed facts each spawning an existential chain. Predicate-
		// level relevance lets the goal-directed chase skip that world
		// entirely; the atom-level closure then confines the fixpoint to
		// the goal's component.
		var extra strings.Builder
		extra.WriteString("seed(X) -> chainA(X, Y).\nchainA(X, Y) -> chainB(Y, Z).\n")
		for i := 0; i < k*60; i++ {
			fmt.Fprintf(&extra, "seed(s%d).\n", i)
		}
		src := WinMoveComponents(k, 30) + extra.String()
		prog, db, st := compileMust(src)
		goalPred, _ := st.LookupPred("win")
		goal := st.Atom(goalPred, []term.ID{st.Terms.Const("n0_0")})

		e := core.NewEngine(prog, db, core.Options{Depth: 8})
		var m *core.Model
		dFull := Timed(func() { m = e.EvaluateAtDepth(8) })
		var dClosure time.Duration
		dClosure = Timed(func() { m.WCheck(goal) })
		var gs *core.GoalStats
		dGoal := Timed(func() { _, gs = core.WCheckGoalDirected(prog, db, goal, core.Options{Depth: 8}) })
		t.AddRow(k, dFull, dClosure, dGoal, gs.ChasedAtoms)
	}
	t.Note("closure-fixpoint still pays for the full chase up front; goal-directed chases only the goal's predicates")
	return t
}
