package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is an experiment result table in the shape the harness prints and
// EXPERIMENTS.md records.
type Table struct {
	ID     string // experiment id, e.g. "E1"
	Title  string
	Claim  string // the paper claim this table checks
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case time.Duration:
			row[i] = formatDuration(v)
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a free-text note printed under the table.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

func formatDuration(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(w, "   claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		fmt.Fprintf(w, "   %s\n", b.String())
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "   note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Timed runs f and returns its wall-clock duration.
func Timed(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// Ratio returns cur/prev as float (0 when prev is 0).
func Ratio(cur, prev time.Duration) float64 {
	if prev <= 0 {
		return 0
	}
	return float64(cur) / float64(prev)
}
