package strat

import (
	"errors"
	"testing"

	"repro/internal/atom"
	"repro/internal/core"
	"repro/internal/ground"
	"repro/internal/program"
	"repro/internal/term"
)

func compile(t *testing.T, src string) (*program.Program, program.Database, *atom.Store) {
	t.Helper()
	st := atom.NewStore(term.NewStore())
	prog, db, _, err := program.CompileText(src, st)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog, db, st
}

const employment = `
contract(p1, c1). person(p1). person(p2). person(p3). oldAge(p2).
contract(X, Y) -> employed(X).
person(X), not employed(X) -> seeker(X).
seeker(X), not retired(X) -> benefits(X).
oldAge(X) -> retired(X).
`

func TestStratifiedEvaluation(t *testing.T) {
	prog, db, st := compile(t, employment)
	m, err := Evaluate(prog, db, 0)
	if err != nil {
		t.Fatal(err)
	}
	check := func(a string, want ground.Truth) {
		t.Helper()
		q, err := program.ParseQuery("? "+a+".", st)
		if err != nil {
			t.Fatal(err)
		}
		sub := atom.NewSubst(0)
		if got := m.Truth(st.Instantiate(q.Pos[0], sub)); got != want {
			t.Errorf("%s = %v, want %v", a, got, want)
		}
	}
	check("employed(p1)", ground.True)
	check("seeker(p1)", ground.False)
	check("seeker(p2)", ground.True)
	check("benefits(p2)", ground.False) // retired
	check("benefits(p3)", ground.True)
	check("retired(p2)", ground.True)
}

func TestPerfectModelIsTwoValued(t *testing.T) {
	prog, db, _ := compile(t, employment)
	m, err := Evaluate(prog, db, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.GM.CountUndefined() != 0 {
		t.Errorf("perfect model has undefined atoms")
	}
}

func TestCoincidesWithWFS(t *testing.T) {
	prog, db, _ := compile(t, employment)
	sm, err := Evaluate(prog, db, 0)
	if err != nil {
		t.Fatal(err)
	}
	wm := core.NewEngine(prog, db, core.Options{}).Evaluate()
	for i, g := range wm.GP.Atoms {
		if wm.GM.Truth[i] != sm.GM.TruthOfGlobal(g) {
			t.Errorf("disagreement on %s: wfs=%v strat=%v",
				prog.Store.String(g), wm.GM.Truth[i], sm.GM.TruthOfGlobal(g))
		}
	}
}

func TestCoincidesWithWFSUnderExistentials(t *testing.T) {
	// Stratified program with existential heads: the DL-Lite-ish shape.
	src := `
person(a). person(b). vip(a).
person(X) -> owns(X, Y).
owns(X, Y) -> exOwns(X).
person(X), not vip(X) -> standard(X).
`
	prog, db, _ := compile(t, src)
	sm, err := Evaluate(prog, db, 0)
	if err != nil {
		t.Fatal(err)
	}
	wm := core.NewEngine(prog, db, core.Options{}).Evaluate()
	if !wm.Exact || !sm.Exact {
		t.Fatalf("chase should saturate here")
	}
	for i, g := range wm.GP.Atoms {
		if wm.GM.Truth[i] != sm.GM.TruthOfGlobal(g) {
			t.Errorf("disagreement on %s", prog.Store.String(g))
		}
	}
}

func TestNotStratifiedRejected(t *testing.T) {
	prog, db, _ := compile(t, "move(a,b).\nmove(X,Y), not win(Y) -> win(X).")
	if _, err := Evaluate(prog, db, 0); !errors.Is(err, ErrNotStratified) {
		t.Errorf("error = %v, want ErrNotStratified", err)
	}
}
