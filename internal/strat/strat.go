// Package strat implements the stratified-negation baseline semantics for
// guarded Datalog± with negation (Calì–Gottlob–Lukasiewicz [1], discussed
// in §1): the iterated least fixpoint (perfect model) computed bottom-up
// over the bounded chase. On stratified programs the well-founded
// semantics coincides with this model (one of the WFS's defining
// properties, §1), which experiment E5 and the cross-check tests verify;
// on non-stratified programs this baseline is simply inapplicable — the
// gap the paper's WFS fills.
package strat

import (
	"errors"

	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/ground"
	"repro/internal/program"
)

// ErrNotStratified reports that the program has a cycle through negation.
var ErrNotStratified = errors.New("strat: program is not stratified")

// Evaluate computes the perfect model of db under prog at the given chase
// depth. It fails with ErrNotStratified when no stratification exists.
//
// The solve runs on the ground dependency-graph condensation
// (ground.SolveModular) rather than a predicate-level stratum schedule: a
// predicate stratification guarantees the ground program has no negation
// cycle, so every component takes the modular solver's single
// least-fixpoint pass and the evaluation order induced by the
// condensation *is* an (atom-granular) stratification — the iterated
// least fixpoint and the WFS coincide rule-for-rule. This retires the
// previous duplicate machinery (per-atom strata inherited from the
// predicate stratification driving a dedicated iterated solver) in favor
// of the one evaluation path the engine already uses.
func Evaluate(prog *program.Program, db program.Database, depth int) (*core.Model, error) {
	if _, ok := prog.Stratify(); !ok {
		return nil, ErrNotStratified
	}
	if depth <= 0 {
		depth = core.DefaultDepth
	}
	res := chase.Run(prog, db, chase.Options{MaxDepth: depth, MaxAtoms: 4_000_000})
	gp := ground.FromChase(res)
	// The algorithm argument only runs inside negation-cyclic components,
	// of which a stratified program has none; it is the fallback for the
	// degenerate single-component condensation.
	gm := ground.SolveModular(gp, ground.AlternatingFixpoint, 0)
	stats := res.ComputeStats()
	return &core.Model{
		Chase: res,
		GP:    gp,
		GM:    gm,
		Exact: !res.Truncated && stats.MaxDepth < depth,
	}, nil
}
