// Package strat implements the stratified-negation baseline semantics for
// guarded Datalog± with negation (Calì–Gottlob–Lukasiewicz [1], discussed
// in §1): the iterated least fixpoint (perfect model) computed stratum by
// stratum over the bounded chase. On stratified programs the well-founded
// semantics coincides with this model (one of the WFS's defining
// properties, §1), which experiment E5 and the cross-check tests verify;
// on non-stratified programs this baseline is simply inapplicable — the
// gap the paper's WFS fills.
package strat

import (
	"errors"

	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/ground"
	"repro/internal/program"
)

// ErrNotStratified reports that the program has a cycle through negation.
var ErrNotStratified = errors.New("strat: program is not stratified")

// Evaluate computes the perfect model of db under prog at the given chase
// depth. It fails with ErrNotStratified when no stratification exists.
func Evaluate(prog *program.Program, db program.Database, depth int) (*core.Model, error) {
	s, ok := prog.Stratify()
	if !ok {
		return nil, ErrNotStratified
	}
	if depth <= 0 {
		depth = core.DefaultDepth
	}
	res := chase.Run(prog, db, chase.Options{MaxDepth: depth, MaxAtoms: 4_000_000})
	gp := ground.FromChase(res)
	atomStrata := make([]int32, gp.NumAtoms())
	for i, a := range gp.Atoms {
		atomStrata[i] = int32(s.Strata[prog.Store.PredOf(a)])
	}
	gm := ground.Stratified(gp, atomStrata, s.NumStrata)
	stats := res.ComputeStats()
	return &core.Model{
		Chase: res,
		GP:    gp,
		GM:    gm,
		Exact: !res.Truncated && stats.MaxDepth < depth,
	}, nil
}
