// Package program implements guarded normal Datalog± programs: normal
// tuple-generating dependencies (NTGDs, §2.4), their validation
// (guardedness, safety), the functional transformation Σ → Σf that
// Skolemizes existential head variables (§2.4), negative constraints and
// EGDs (the future-work extensions of §5), query compilation (§2.3), and
// stratification analysis used by the stratified baseline.
package program

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/atom"
	"repro/internal/term"
)

// Validation errors reported by Compile, wrapped in *ClauseError.
var (
	// ErrNotGuarded: a rule body has no positive atom containing all
	// universally quantified variables of the rule.
	ErrNotGuarded = errors.New("rule is not guarded")
	// ErrNonGroundFact: a fact contains variables.
	ErrNonGroundFact = errors.New("fact is not ground")
	// ErrUnsafeQuery: a query variable occurs only in negative literals.
	ErrUnsafeQuery = errors.New("query variable occurs only under negation")
	// ErrEmptyBody: a non-fact clause (constraint/EGD) has an empty body.
	ErrEmptyBody = errors.New("clause body is empty")
	// ErrEGDHead: an EGD equates two constants or uses a head variable
	// that does not occur in the body.
	ErrEGDHead = errors.New("invalid EGD head")
)

// ClauseError attaches clause position and text to a validation error.
type ClauseError struct {
	Line   int
	Clause string
	Err    error
}

func (e *ClauseError) Error() string {
	return fmt.Sprintf("line %d: %v: %s", e.Line, e.Err, e.Clause)
}

func (e *ClauseError) Unwrap() error { return e.Err }

// ExistVar records one Skolemized existential head variable: head slot and
// the Skolem functor f_{σ,Z} that fills it.
type ExistVar struct {
	Slot int
	Fn   term.FunctorID
}

// Rule is a compiled normal TGD after the functional transformation: a
// single-atom head whose existential variables are replaced by Skolem
// functors over the rule's universal variables.
type Rule struct {
	Idx      int    // position within the program
	Line     int    // source line (1-based; 0 for synthesized rules)
	Label    string // pretty-printed source form
	Head     atom.Pattern
	PosBody  []atom.Pattern // guard first (Guard == 0 after compilation)
	NegBody  []atom.Pattern
	Guard    int // index into PosBody of the guard atom
	NumVars  int // variable slots (universal then existential)
	VarNames []string
	Exist    []ExistVar // existential head slots with their functors
	Univ     []int      // universal slots in Skolem-argument order
}

// IsFact reports whether the rule has an empty body.
func (r *Rule) IsFact() bool { return len(r.PosBody) == 0 && len(r.NegBody) == 0 }

// GuardAtom returns the guard pattern of the rule.
func (r *Rule) GuardAtom() atom.Pattern { return r.PosBody[r.Guard] }

// Constraint is a negative constraint body -> false (extension, §5).
type Constraint struct {
	Label   string
	PosBody []atom.Pattern
	NegBody []atom.Pattern
	Guard   int
	NumVars int
}

// EGD is an equality-generating dependency body -> s = t (extension, §5).
// Under UNA, an EGD firing on two distinct constants is a hard violation;
// on a null it would require equating terms, which this reproduction
// reports as a violation as well (we implement EGD *checking*, i.e. the
// separability/non-conflicting regime of Calì et al., not null unification).
type EGD struct {
	Label   string
	PosBody []atom.Pattern
	Guard   int
	NumVars int
	Left    atom.PArg
	Right   atom.PArg
}

// Query is a compiled NBCQ (§2.3): positive and negative atom patterns
// over shared variable slots. Equalities from the surface query (§2.1)
// are compiled away by unifying slots; an equality between distinct
// constants makes the query unsatisfiable (Unsat).
type Query struct {
	Label    string
	Pos      []atom.Pattern
	Neg      []atom.Pattern
	NumVars  int
	VarNames []string
	// Unsat marks a query whose equalities are contradictory under UNA
	// (e.g. ? p(X), X = a, X = b). Such a query is False outright.
	Unsat bool
}

// Program is a compiled guarded normal Datalog± program Σf together with
// its extensions.
type Program struct {
	Store       *atom.Store
	Rules       []*Rule
	Constraints []*Constraint
	EGDs        []*EGD

	byGuardPred map[atom.PredID][]*Rule
}

// Database is a set of ground atoms (a database instance for the schema).
type Database []atom.AtomID

// RulesGuardedBy returns the rules whose guard predicate is p.
func (p *Program) RulesGuardedBy(pred atom.PredID) []*Rule { return p.byGuardPred[pred] }

// IsPositive reports whether no rule has negative body atoms (the program
// is a guarded Datalog± program without negation).
func (p *Program) IsPositive() bool {
	for _, r := range p.Rules {
		if len(r.NegBody) > 0 {
			return false
		}
	}
	return true
}

// IsLinear reports whether every rule has exactly one positive body atom
// (the linear Datalog± fragment of [1], a subfragment of guarded with
// lower combined complexity). Negative body atoms are permitted.
func (p *Program) IsLinear() bool {
	for _, r := range p.Rules {
		if len(r.PosBody) != 1 {
			return false
		}
	}
	return true
}

// NumRules returns the number of compiled rules.
func (p *Program) NumRules() int { return len(p.Rules) }

// String lists the compiled rules in source-like form.
func (p *Program) String() string {
	var b strings.Builder
	for _, r := range p.Rules {
		b.WriteString(r.Label)
		b.WriteByte('\n')
	}
	for _, c := range p.Constraints {
		b.WriteString(c.Label)
		b.WriteByte('\n')
	}
	for _, e := range p.EGDs {
		b.WriteString(e.Label)
		b.WriteByte('\n')
	}
	return b.String()
}

// WithStore returns a shallow copy of the program bound to st, sharing
// the (immutable after compilation) rules, constraints, EGDs, and guard
// index. The store must share the ID space the program was compiled
// against — a Clone of it, or an overlay over a frozen clone — so every
// pattern's PredIDs and term IDs stay valid. This is how snapshots
// evaluate one compiled program against many private stores.
func (p *Program) WithStore(st *atom.Store) *Program {
	return &Program{
		Store:       st,
		Rules:       p.Rules,
		Constraints: p.Constraints,
		EGDs:        p.EGDs,
		byGuardPred: p.byGuardPred,
	}
}

// IndexGuards (re)builds the guard-predicate index. Callers constructing
// or restricting programs outside Compile must call it before the chase.
func (p *Program) IndexGuards() { p.indexGuards() }

func (p *Program) indexGuards() {
	p.byGuardPred = make(map[atom.PredID][]*Rule)
	for _, r := range p.Rules {
		if r.IsFact() {
			continue
		}
		g := r.GuardAtom().Pred
		p.byGuardPred[g] = append(p.byGuardPred[g], r)
	}
}

// InstantiateHead interns the ground head atom of r under sub, creating
// Skolem terms for the existential slots. The universal slots referenced
// by r.Univ must all be bound. The substitution is extended with the
// created Skolem terms (callers backtracking over guard matches must undo
// existential slots as well; chase code uses a fresh trail mark).
func (p *Program) InstantiateHead(r *Rule, sub atom.Subst, trail *[]int32) atom.AtomID {
	if len(r.Exist) > 0 {
		skArgs := make([]term.ID, len(r.Univ))
		for i, s := range r.Univ {
			skArgs[i] = sub[s]
		}
		for _, ev := range r.Exist {
			sub[ev.Slot] = p.Store.Terms.Skolem(ev.Fn, skArgs)
			*trail = append(*trail, int32(ev.Slot))
		}
	}
	return p.Store.Instantiate(r.Head, sub)
}
