package program

import "repro/internal/atom"

// Stratification is the result of stratifying a program's predicate
// dependency graph: Strata[p] is the stratum of predicate p (0-based),
// NumStrata the total count.
type Stratification struct {
	Strata    []int
	NumStrata int
}

// Stratify computes a stratification of the program, if one exists
// (paper §1: stratified negation is the weaker semantics that the WFS
// subsumes). A program is stratified iff no cycle in the predicate
// dependency graph passes through a negative edge. The computation uses
// iterative relaxation: stratum(head) ≥ stratum(positive body pred) and
// stratum(head) > stratum(negative body pred); divergence beyond the
// number of predicates certifies a negative cycle.
func (p *Program) Stratify() (*Stratification, bool) {
	n := p.Store.NumPreds()
	strata := make([]int, n)
	// The bound: in a stratified program strata never exceed the number
	// of predicates.
	for iter := 0; ; iter++ {
		changed := false
		for _, r := range p.Rules {
			h := int(r.Head.Pred)
			for _, b := range r.PosBody {
				if strata[h] < strata[b.Pred] {
					strata[h] = strata[b.Pred]
					changed = true
				}
			}
			for _, b := range r.NegBody {
				if strata[h] <= strata[b.Pred] {
					strata[h] = strata[b.Pred] + 1
					changed = true
				}
			}
		}
		if !changed {
			break
		}
		if iter > n+1 {
			return nil, false
		}
		for _, s := range strata {
			if s > n {
				return nil, false
			}
		}
	}
	max := 0
	for _, s := range strata {
		if s > max {
			max = s
		}
	}
	return &Stratification{Strata: strata, NumStrata: max + 1}, true
}

// DependsOnNegatively reports whether predicate q occurs negatively in the
// body of some rule with head predicate p (a direct negative dependency).
func (p *Program) DependsOnNegatively(head, body atom.PredID) bool {
	for _, r := range p.Rules {
		if r.Head.Pred != head {
			continue
		}
		for _, b := range r.NegBody {
			if b.Pred == body {
				return true
			}
		}
	}
	return false
}
