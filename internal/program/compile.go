package program

import (
	"fmt"

	"repro/internal/atom"
	"repro/internal/parser"
	"repro/internal/term"
)

// Compile translates a parsed unit into a compiled program and database.
// Facts (rules with empty bodies and ground heads) become database atoms;
// everything else is validated (guardedness, safety) and Skolemized. The
// returned queries correspond to the unit's '?' statements in order.
func Compile(unit *parser.Unit, st *atom.Store) (*Program, Database, []*Query, error) {
	prog := &Program{Store: st}
	var db Database
	for _, r := range unit.Rules {
		if r.IsFact() {
			a, err := compileFact(r, st)
			if err != nil {
				return nil, nil, nil, err
			}
			db = append(db, a)
			continue
		}
		if err := compileClause(prog, r, st); err != nil {
			return nil, nil, nil, err
		}
	}
	var queries []*Query
	for _, q := range unit.Queries {
		cq, err := CompileQuery(q, st)
		if err != nil {
			return nil, nil, nil, err
		}
		queries = append(queries, cq)
	}
	prog.indexGuards()
	return prog, db, queries, nil
}

// CompileText parses and compiles src in one step.
func CompileText(src string, st *atom.Store) (*Program, Database, []*Query, error) {
	unit, err := parser.Parse(src)
	if err != nil {
		return nil, nil, nil, err
	}
	return Compile(unit, st)
}

func compileFact(r *parser.Rule, st *atom.Store) (atom.AtomID, error) {
	a := r.Head[0]
	p, err := st.Pred(a.Pred, len(a.Args))
	if err != nil {
		return 0, &ClauseError{Line: r.Line, Clause: parser.FormatRule(r), Err: err}
	}
	args := make([]term.ID, len(a.Args))
	for i, t := range a.Args {
		if t.IsVar {
			return 0, &ClauseError{Line: r.Line, Clause: parser.FormatRule(r), Err: ErrNonGroundFact}
		}
		args[i] = st.Terms.Const(t.Name)
	}
	return st.Atom(p, args), nil
}

// varEnv assigns dense slots to variable names in appearance order.
type varEnv struct {
	slots map[string]int
	names []string
}

func newVarEnv() *varEnv { return &varEnv{slots: make(map[string]int)} }

func (e *varEnv) slot(name string) int {
	if s, ok := e.slots[name]; ok {
		return s
	}
	s := len(e.names)
	e.slots[name] = s
	e.names = append(e.names, name)
	return s
}

func (e *varEnv) has(name string) bool {
	_, ok := e.slots[name]
	return ok
}

func compilePattern(a parser.Atom, env *varEnv, st *atom.Store) (atom.Pattern, error) {
	p, err := st.Pred(a.Pred, len(a.Args))
	if err != nil {
		return atom.Pattern{}, err
	}
	args := make([]atom.PArg, len(a.Args))
	for i, t := range a.Args {
		if t.IsVar {
			args[i] = atom.VarArg(env.slot(t.Name))
		} else {
			args[i] = atom.ConstArg(st.Terms.Const(t.Name))
		}
	}
	return atom.Pattern{Pred: p, Args: args}, nil
}

// compileBody compiles body literals, returning positive and negative
// patterns. All body variables receive slots in appearance order.
// Equality literals are only legal in queries, not rule bodies.
func compileBody(body []parser.Literal, env *varEnv, st *atom.Store) (pos, neg []atom.Pattern, err error) {
	for _, l := range body {
		if l.IsEq {
			return nil, nil, fmt.Errorf("equality literals are only allowed in queries")
		}
		pat, err := compilePattern(l.Atom, env, st)
		if err != nil {
			return nil, nil, err
		}
		if l.Negated {
			neg = append(neg, pat)
		} else {
			pos = append(pos, pat)
		}
	}
	return pos, neg, nil
}

// findGuard returns the index of a positive body atom covering all
// universal variable slots 0..numUniv-1, or -1 if none exists.
func findGuard(pos []atom.Pattern, numUniv int) int {
	for i, p := range pos {
		covered := make([]bool, numUniv)
		n := 0
		for _, a := range p.Args {
			if a.IsVar() && int(a.Var) < numUniv && !covered[a.Var] {
				covered[a.Var] = true
				n++
			}
		}
		if n == numUniv {
			return i
		}
	}
	return -1
}

func compileClause(prog *Program, r *parser.Rule, st *atom.Store) error {
	wrap := func(err error) error {
		return &ClauseError{Line: r.Line, Clause: parser.FormatRule(r), Err: err}
	}
	env := newVarEnv()
	pos, neg, err := compileBody(r.Body, env, st)
	if err != nil {
		return wrap(err)
	}
	numUniv := len(env.names)

	switch r.Kind {
	case parser.KindConstraint:
		// Negative constraints are *checked* against the model via
		// conjunctive matching (§5 extension), not chased, so they need
		// no guard — their bodies are NBCQs.
		if len(r.Body) == 0 {
			return wrap(ErrEmptyBody)
		}
		if len(pos) == 0 {
			return wrap(ErrNotGuarded) // need at least one positive atom for range restriction
		}
		prog.Constraints = append(prog.Constraints, &Constraint{
			Label:   parser.FormatRule(r),
			PosBody: pos,
			NegBody: neg,
			Guard:   0,
			NumVars: numUniv,
		})
		return nil

	case parser.KindEGD:
		// EGDs are likewise checked, not chased (the separability regime
		// of Calì et al.); their bodies are CQs and need no guard.
		if len(r.Body) == 0 {
			return wrap(ErrEmptyBody)
		}
		if len(neg) > 0 {
			return wrap(fmt.Errorf("EGD bodies must be positive"))
		}
		g := 0
		toArg := func(t parser.Term) (atom.PArg, error) {
			if t.IsVar {
				if !env.has(t.Name) {
					return atom.PArg{}, ErrEGDHead
				}
				return atom.VarArg(env.slot(t.Name)), nil
			}
			return atom.ConstArg(st.Terms.Const(t.Name)), nil
		}
		l, err := toArg(r.EqLeft)
		if err != nil {
			return wrap(err)
		}
		rt, err := toArg(r.EqRight)
		if err != nil {
			return wrap(err)
		}
		if !l.IsVar() && !rt.IsVar() {
			return wrap(ErrEGDHead)
		}
		prog.EGDs = append(prog.EGDs, &EGD{
			Label:   parser.FormatRule(r),
			PosBody: pos,
			Guard:   g,
			NumVars: numUniv,
			Left:    l,
			Right:   rt,
		})
		return nil
	}

	// Normal TGD. Multi-atom heads are normalized through an auxiliary
	// predicate: body -> ∃Z aux(U,Z);  aux(U,Z) -> A_i.
	heads := r.Head
	if len(heads) > 1 {
		return compileMultiHead(prog, r, st, env, pos, neg, numUniv)
	}
	head, err := compilePattern(heads[0], env, st)
	if err != nil {
		return wrap(err)
	}
	return addRule(prog, st, r.Line, parser.FormatRule(r), env, pos, neg, numUniv, head, wrap)
}

// addRule performs guard selection and Skolemization of head slots beyond
// numUniv, then appends the rule.
func addRule(prog *Program, st *atom.Store, line int, label string, env *varEnv,
	pos, neg []atom.Pattern, numUniv int, head atom.Pattern, wrap func(error) error) error {
	g := findGuard(pos, numUniv)
	if g < 0 {
		return wrap(ErrNotGuarded)
	}
	idx := len(prog.Rules)
	univ := make([]int, numUniv)
	for i := range univ {
		univ[i] = i
	}
	var exist []ExistVar
	seen := make(map[int]bool)
	for _, a := range head.Args {
		if a.IsVar() && int(a.Var) >= numUniv && !seen[int(a.Var)] {
			seen[int(a.Var)] = true
			fn := st.Terms.Functor(fmt.Sprintf("sk%d_%s", idx, env.names[a.Var]), numUniv)
			exist = append(exist, ExistVar{Slot: int(a.Var), Fn: fn})
		}
	}
	// Move the guard to position 0 so chase code can rely on it.
	if g != 0 {
		pos[0], pos[g] = pos[g], pos[0]
		g = 0
	}
	prog.Rules = append(prog.Rules, &Rule{
		Idx:      idx,
		Line:     line,
		Label:    label,
		Head:     head,
		PosBody:  pos,
		NegBody:  neg,
		Guard:    g,
		NumVars:  len(env.names),
		VarNames: append([]string(nil), env.names...),
		Exist:    exist,
		Univ:     univ,
	})
	return nil
}

func compileMultiHead(prog *Program, r *parser.Rule, st *atom.Store, env *varEnv,
	pos, neg []atom.Pattern, numUniv int) error {
	wrap := func(err error) error {
		return &ClauseError{Line: r.Line, Clause: parser.FormatRule(r), Err: err}
	}
	// Head variables: universal ones (already in env) keep their slots;
	// fresh ones are existential.
	headPats := make([]atom.Pattern, len(r.Head))
	for i, h := range r.Head {
		p, err := compilePattern(h, env, st)
		if err != nil {
			return wrap(err)
		}
		headPats[i] = p
	}
	// Universal head slots = slots < numUniv used in any head atom.
	usedUniv := make(map[int]bool)
	existSlots := make(map[int]bool)
	for _, hp := range headPats {
		for _, a := range hp.Args {
			if !a.IsVar() {
				continue
			}
			if int(a.Var) < numUniv {
				usedUniv[int(a.Var)] = true
			} else {
				existSlots[int(a.Var)] = true
			}
		}
	}
	var auxArgs []atom.PArg
	for s := 0; s < len(env.names); s++ {
		if usedUniv[s] || existSlots[s] {
			auxArgs = append(auxArgs, atom.VarArg(s))
		}
	}
	auxName := fmt.Sprintf("aux_h%d", len(prog.Rules))
	auxPred, err := st.Pred(auxName, len(auxArgs))
	if err != nil {
		return wrap(err)
	}
	auxHead := atom.Pattern{Pred: auxPred, Args: auxArgs}
	label := parser.FormatRule(r)
	if err := addRule(prog, st, r.Line, label+"  % [head-normalized: "+auxName+"]",
		env, pos, neg, numUniv, auxHead, wrap); err != nil {
		return err
	}
	// aux(U,Z) -> A_i : all aux args are universal in these rules.
	for i, hp := range headPats {
		env2 := newVarEnv()
		remap := make(map[int]int)
		auxPat := atom.Pattern{Pred: auxPred, Args: make([]atom.PArg, len(auxArgs))}
		for j, a := range auxArgs {
			ns := env2.slot(env.names[a.Var])
			remap[int(a.Var)] = ns
			auxPat.Args[j] = atom.VarArg(ns)
		}
		h2 := atom.Pattern{Pred: hp.Pred, Args: make([]atom.PArg, len(hp.Args))}
		for j, a := range hp.Args {
			if a.IsVar() {
				ns, ok := remap[int(a.Var)]
				if !ok {
					return wrap(fmt.Errorf("internal: head var not in aux atom"))
				}
				h2.Args[j] = atom.VarArg(ns)
			} else {
				h2.Args[j] = a
			}
		}
		lbl := fmt.Sprintf("%s  %% [head-normalized %d/%d]", label, i+1, len(headPats))
		if err := addRule(prog, st, r.Line, lbl, env2, []atom.Pattern{auxPat}, nil, len(env2.names), h2, wrap); err != nil {
			return err
		}
	}
	return nil
}

// CompileQuery compiles a parsed NBCQ, enforcing safety: every variable
// occurring in a negative literal must also occur in a positive literal
// (or be bound through an equality to such a variable or to a constant).
// Equality literals (§2.1) are compiled away by unifying variable slots;
// contradictory constant equalities mark the query Unsat.
func CompileQuery(q *parser.Query, st *atom.Store) (*Query, error) {
	wrap := func(err error) error {
		return &ClauseError{Line: q.Line, Clause: parser.FormatQuery(q), Err: err}
	}
	env := newVarEnv()
	var pos, neg []atom.Pattern
	unsat := false

	// Compile positives first so their variables own the low slots.
	for _, l := range q.Literals {
		if l.IsEq || l.Negated {
			continue
		}
		pat, err := compilePattern(l.Atom, env, st)
		if err != nil {
			return nil, wrap(err)
		}
		pos = append(pos, pat)
	}
	positiveSlots := len(env.names)

	// Union-find over slots with optional constant binding per class.
	parent := make([]int, 0, len(env.names)+4)
	bound := make([]term.ID, 0, cap(parent))
	grow := func() {
		for len(parent) < len(env.names) {
			parent = append(parent, len(parent))
			bound = append(bound, term.None)
		}
	}
	grow()
	var find func(int) int
	find = func(i int) int {
		if parent[i] != i {
			parent[i] = find(parent[i])
		}
		return parent[i]
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		// Keep the smaller root so positive-slot classes stay canonical.
		if ra > rb {
			ra, rb = rb, ra
		}
		parent[rb] = ra
		if bound[rb] != term.None {
			if bound[ra] != term.None && bound[ra] != bound[rb] {
				unsat = true
			}
			if bound[ra] == term.None {
				bound[ra] = bound[rb]
			}
		}
	}
	bindConst := func(slot int, c term.ID) {
		r := find(slot)
		if bound[r] != term.None && bound[r] != c {
			unsat = true
			return
		}
		bound[r] = c
	}

	for _, l := range q.Literals {
		if !l.IsEq {
			continue
		}
		lv, rv := l.EqLeft, l.EqRight
		switch {
		case lv.IsVar && rv.IsVar:
			s1, s2 := env.slot(lv.Name), env.slot(rv.Name)
			grow()
			union(s1, s2)
		case lv.IsVar:
			s := env.slot(lv.Name)
			grow()
			bindConst(s, st.Terms.Const(rv.Name))
		case rv.IsVar:
			s := env.slot(rv.Name)
			grow()
			bindConst(s, st.Terms.Const(lv.Name))
		default:
			if lv.Name != rv.Name {
				unsat = true // distinct constants never equal under UNA
			}
		}
	}

	// Negatives: every variable must resolve to a positive-literal slot
	// class or a constant-bound class.
	for _, l := range q.Literals {
		if l.IsEq || !l.Negated {
			continue
		}
		for _, t := range l.Atom.Args {
			if !t.IsVar {
				continue
			}
			if !env.has(t.Name) {
				return nil, wrap(fmt.Errorf("%w: %s", ErrUnsafeQuery, t.Name))
			}
			s := find(env.slot(t.Name))
			if s >= positiveSlots && bound[s] == term.None {
				return nil, wrap(fmt.Errorf("%w: %s", ErrUnsafeQuery, t.Name))
			}
		}
		pat, err := compilePattern(l.Atom, env, st)
		if err != nil {
			return nil, wrap(err)
		}
		grow()
		neg = append(neg, pat)
	}
	grow()

	// Every equality-only variable class must be constant-bound or reach
	// a positive slot (otherwise the query is unsafe: the variable ranges
	// over the whole universe).
	for s := positiveSlots; s < len(env.names); s++ {
		r := find(s)
		if r >= positiveSlots && bound[r] == term.None {
			return nil, wrap(fmt.Errorf("%w: %s", ErrUnsafeQuery, env.names[s]))
		}
	}

	// Rewrite patterns through the union-find and renumber compactly.
	remap := make([]int, len(env.names))
	for i := range remap {
		remap[i] = -1
	}
	var names []string
	rewrite := func(pats []atom.Pattern) {
		for pi := range pats {
			args := make([]atom.PArg, len(pats[pi].Args))
			for ai, a := range pats[pi].Args {
				if !a.IsVar() {
					args[ai] = a
					continue
				}
				r := find(int(a.Var))
				if c := bound[r]; c != term.None {
					args[ai] = atom.ConstArg(c)
					continue
				}
				if remap[r] < 0 {
					remap[r] = len(names)
					names = append(names, env.names[r])
				}
				args[ai] = atom.VarArg(remap[r])
			}
			pats[pi].Args = args
		}
	}
	rewrite(pos)
	rewrite(neg)

	return &Query{
		Label:    parser.FormatQuery(q),
		Pos:      pos,
		Neg:      neg,
		NumVars:  len(names),
		VarNames: names,
		Unsat:    unsat,
	}, nil
}

// ParseQuery parses and compiles a single NBCQ.
func ParseQuery(src string, st *atom.Store) (*Query, error) {
	pq, err := parser.ParseQueryString(src)
	if err != nil {
		return nil, err
	}
	return CompileQuery(pq, st)
}
