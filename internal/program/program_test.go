package program

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/atom"
	"repro/internal/term"
)

func compile(t *testing.T, src string) (*Program, Database, []*Query, *atom.Store) {
	t.Helper()
	st := atom.NewStore(term.NewStore())
	prog, db, qs, err := CompileText(src, st)
	if err != nil {
		t.Fatalf("CompileText: %v", err)
	}
	return prog, db, qs, st
}

func compileErr(t *testing.T, src string) error {
	t.Helper()
	st := atom.NewStore(term.NewStore())
	_, _, _, err := CompileText(src, st)
	if err == nil {
		t.Fatalf("CompileText(%q) succeeded, want error", src)
	}
	return err
}

func TestFactsGoToDatabase(t *testing.T) {
	prog, db, _, st := compile(t, "p(a). p(b). q(a,b).")
	if len(prog.Rules) != 0 {
		t.Errorf("facts compiled as rules")
	}
	if len(db) != 3 {
		t.Fatalf("database has %d atoms, want 3", len(db))
	}
	if st.String(db[2]) != "q(a,b)" {
		t.Errorf("db[2] = %s", st.String(db[2]))
	}
}

func TestNonGroundFactRejected(t *testing.T) {
	err := compileErr(t, "p(X).")
	if !errors.Is(err, ErrNonGroundFact) {
		t.Errorf("error = %v, want ErrNonGroundFact", err)
	}
}

func TestGuardSelection(t *testing.T) {
	// The guard must contain all universal variables; here only r(X,Y,Z)
	// qualifies and must be moved to position 0.
	prog, _, _, _ := compile(t, "p(X,Y), r(X,Y,Z), not q(Z) -> s(X).")
	r := prog.Rules[0]
	if r.Guard != 0 {
		t.Errorf("guard index = %d, want 0", r.Guard)
	}
	if got := prog.Store.PredName(r.GuardAtom().Pred); got != "r" {
		t.Errorf("guard predicate = %s, want r", got)
	}
}

func TestNotGuardedRejected(t *testing.T) {
	// Classic transitive closure is not guarded.
	err := compileErr(t, "e(X,Y), t(Y,Z) -> t(X,Z).")
	if !errors.Is(err, ErrNotGuarded) {
		t.Errorf("error = %v, want ErrNotGuarded", err)
	}
	var ce *ClauseError
	if !errors.As(err, &ce) || ce.Line != 1 {
		t.Errorf("missing clause position: %v", err)
	}
}

func TestNegativeBodyOnlyRejected(t *testing.T) {
	err := compileErr(t, "not p(X) -> q(X).")
	if !errors.Is(err, ErrNotGuarded) {
		t.Errorf("error = %v, want ErrNotGuarded", err)
	}
}

func TestSkolemizationOfExistentials(t *testing.T) {
	prog, _, _, st := compile(t, "scientist(X) -> isAuthorOf(X, Y).")
	r := prog.Rules[0]
	if len(r.Exist) != 1 {
		t.Fatalf("existential vars = %d, want 1", len(r.Exist))
	}
	if got := st.Terms.FunctorArity(r.Exist[0].Fn); got != 1 {
		t.Errorf("Skolem functor arity = %d, want 1 (one universal var)", got)
	}
	if len(r.Univ) != 1 {
		t.Errorf("universal vars = %d, want 1", len(r.Univ))
	}
}

func TestMultipleExistentialsShareUniversals(t *testing.T) {
	prog, _, _, st := compile(t, "p(X,Y) -> q(X, V, W).")
	r := prog.Rules[0]
	if len(r.Exist) != 2 {
		t.Fatalf("existential vars = %d, want 2", len(r.Exist))
	}
	if r.Exist[0].Fn == r.Exist[1].Fn {
		t.Errorf("distinct existential variables share a Skolem functor")
	}
	for _, ev := range r.Exist {
		if st.Terms.FunctorArity(ev.Fn) != 2 {
			t.Errorf("Skolem arity = %d, want 2", st.Terms.FunctorArity(ev.Fn))
		}
	}
}

func TestInstantiateHeadBuildsSkolemTerms(t *testing.T) {
	prog, _, _, st := compile(t, "p(X) -> q(X, Y).")
	r := prog.Rules[0]
	sub := atom.NewSubst(r.NumVars)
	sub[0] = st.Terms.Const("a")
	var trail []int32
	head := prog.InstantiateHead(r, sub, &trail)
	want := "q(a," + st.Terms.FunctorName(r.Exist[0].Fn) + "(a))"
	if st.String(head) != want {
		t.Errorf("head = %s, want %s", st.String(head), want)
	}
	// Deterministic: same guard binding, same Skolem term.
	sub2 := atom.NewSubst(r.NumVars)
	sub2[0] = st.Terms.Const("a")
	var trail2 []int32
	if head2 := prog.InstantiateHead(r, sub2, &trail2); head2 != head {
		t.Errorf("head instantiation not deterministic")
	}
}

func TestMultiHeadNormalization(t *testing.T) {
	prog, _, _, st := compile(t, "person(X) -> hasID(X, Y), idOf(Y, X).")
	// One aux rule + two projection rules.
	if len(prog.Rules) != 3 {
		t.Fatalf("rules = %d, want 3 (aux + 2 projections)", len(prog.Rules))
	}
	aux := prog.Rules[0]
	if len(aux.Exist) != 1 {
		t.Errorf("aux rule existentials = %d, want 1", len(aux.Exist))
	}
	// Projections are guarded by the aux atom.
	for _, r := range prog.Rules[1:] {
		if got := st.PredName(r.GuardAtom().Pred); !strings.HasPrefix(got, "aux_") {
			t.Errorf("projection guard = %s, want aux_*", got)
		}
		if len(r.Exist) != 0 {
			t.Errorf("projection rule has existentials")
		}
	}
}

func TestConstraintAndEGDCompile(t *testing.T) {
	prog, _, _, _ := compile(t, `
emp(X), not onLeave(X), seeker(X) -> false.
id(X,Y), id(X,Z) -> Y = Z.
id(X,Y) -> Y = fixed.
`)
	if len(prog.Constraints) != 1 || len(prog.EGDs) != 2 {
		t.Fatalf("constraints=%d egds=%d", len(prog.Constraints), len(prog.EGDs))
	}
	c := prog.Constraints[0]
	if len(c.PosBody) != 2 || len(c.NegBody) != 1 {
		t.Errorf("constraint body shape wrong")
	}
	if prog.EGDs[1].Right.IsVar() {
		t.Errorf("EGD constant right-hand side parsed as variable")
	}
}

func TestEGDInvalidHeads(t *testing.T) {
	if err := compileErr(t, "id(X,Y) -> W = Y."); !errors.Is(err, ErrEGDHead) {
		t.Errorf("unbound EGD head var: %v", err)
	}
	if err := compileErr(t, "id(X,Y) -> X = W."); !errors.Is(err, ErrEGDHead) {
		t.Errorf("unbound EGD right-hand side: %v", err)
	}
	if err := compileErr(t, "id(X,Y), not q(X) -> X = Y."); err == nil || errors.Is(err, ErrEGDHead) {
		t.Errorf("negated EGD body: %v", err)
	}
}

func TestQuerySafety(t *testing.T) {
	st := atom.NewStore(term.NewStore())
	if _, err := ParseQuery("? p(X), not q(X, Y).", st); !errors.Is(err, ErrUnsafeQuery) {
		t.Errorf("unsafe query: %v", err)
	}
	q, err := ParseQuery("? p(X), not q(X, X).", st)
	if err != nil {
		t.Fatalf("safe query rejected: %v", err)
	}
	if len(q.Pos) != 1 || len(q.Neg) != 1 || q.NumVars != 1 {
		t.Errorf("query shape wrong: %+v", q)
	}
	// Ground negative literals are safe.
	if _, err := ParseQuery("? p(X), not q(a, b).", st); err != nil {
		t.Errorf("ground negative rejected: %v", err)
	}
}

func TestRulesGuardedByIndex(t *testing.T) {
	prog, _, _, st := compile(t, `
p(X) -> q(X).
p(X), r(X) -> s(X).
r(X) -> q(X).
`)
	p, _ := st.LookupPred("p")
	r, _ := st.LookupPred("r")
	if got := len(prog.RulesGuardedBy(p)); got != 2 {
		t.Errorf("rules guarded by p = %d, want 2", got)
	}
	if got := len(prog.RulesGuardedBy(r)); got != 1 {
		t.Errorf("rules guarded by r = %d, want 1", got)
	}
}

func TestIsPositive(t *testing.T) {
	pos, _, _, _ := compile(t, "p(X) -> q(X).")
	if !pos.IsPositive() {
		t.Errorf("positive program misclassified")
	}
	neg, _, _, _ := compile(t, "p(X), not q(X) -> r(X).")
	if neg.IsPositive() {
		t.Errorf("normal program misclassified as positive")
	}
}

func TestStratify(t *testing.T) {
	strat, _, _, _ := compile(t, `
contract(X, Y) -> employed(X).
person(X), not employed(X) -> seeker(X).
seeker(X), not retired(X) -> benefits(X).
`)
	s, ok := strat.Stratify()
	if !ok {
		t.Fatalf("stratified program not recognized")
	}
	if s.NumStrata < 2 {
		t.Errorf("NumStrata = %d, want ≥ 2", s.NumStrata)
	}
	emp, _ := strat.Store.LookupPred("employed")
	seek, _ := strat.Store.LookupPred("seeker")
	ben, _ := strat.Store.LookupPred("benefits")
	ret, _ := strat.Store.LookupPred("retired")
	// Negative deps are strict (employed < seeker, retired < benefits);
	// the positive dep seeker → benefits is non-strict.
	if !(s.Strata[emp] < s.Strata[seek] && s.Strata[seek] <= s.Strata[ben] && s.Strata[ret] < s.Strata[ben]) {
		t.Errorf("strata order wrong: employed=%d seeker=%d benefits=%d retired=%d",
			s.Strata[emp], s.Strata[seek], s.Strata[ben], s.Strata[ret])
	}
}

func TestStratifyRejectsNegativeCycle(t *testing.T) {
	prog, _, _, _ := compile(t, "move(X,Y), not win(Y) -> win(X).")
	if _, ok := prog.Stratify(); ok {
		t.Errorf("win-move recognized as stratified")
	}
	// Longer negative cycle through two predicates.
	prog2, _, _, _ := compile(t, `
node(X), not p(X) -> q(X).
node(X), not q(X) -> p(X).
`)
	if _, ok := prog2.Stratify(); ok {
		t.Errorf("even cycle through negation recognized as stratified")
	}
}

func TestStratifyPositiveCycleOK(t *testing.T) {
	prog, _, _, _ := compile(t, `
reach(X), edge(X,Y) -> reach(Y).
start(X) -> reach(X).
`)
	if _, ok := prog.Stratify(); !ok {
		t.Errorf("positive recursion misdiagnosed as unstratifiable")
	}
}

func TestDependsOnNegatively(t *testing.T) {
	prog, _, _, st := compile(t, "person(X), not employed(X) -> seeker(X).")
	seeker, _ := st.LookupPred("seeker")
	employed, _ := st.LookupPred("employed")
	person, _ := st.LookupPred("person")
	if !prog.DependsOnNegatively(seeker, employed) {
		t.Errorf("missing negative dependency")
	}
	if prog.DependsOnNegatively(seeker, person) {
		t.Errorf("positive dependency reported as negative")
	}
}

func TestProgramString(t *testing.T) {
	prog, _, _, _ := compile(t, "p(X) -> q(X).\nq(X), p(X) -> false.")
	s := prog.String()
	if !strings.Contains(s, "p(X) -> q(X).") || !strings.Contains(s, "false") {
		t.Errorf("String() missing clauses:\n%s", s)
	}
}

func TestSchemaConflictSurfaces(t *testing.T) {
	err := compileErr(t, "p(a). p(a,b).")
	var ce *ClauseError
	if !errors.As(err, &ce) {
		t.Errorf("arity conflict missing clause context: %v", err)
	}
}

func TestIsLinear(t *testing.T) {
	lin, _, _, _ := compile(t, "p(X) -> q(X).\nq(X), not r(X) -> s(X).")
	if !lin.IsLinear() {
		t.Errorf("linear program misclassified")
	}
	nonlin, _, _, _ := compile(t, "p(X), q(X) -> s(X).")
	if nonlin.IsLinear() {
		t.Errorf("two positive body atoms classified linear")
	}
}
