package delta

import (
	"testing"

	"repro/internal/atom"
	"repro/internal/chase"
	"repro/internal/ground"
	"repro/internal/program"
	"repro/internal/term"
)

func compile(t *testing.T, src string) (*program.Program, program.Database, *atom.Store) {
	t.Helper()
	st := atom.NewStore(term.NewStore())
	prog, db, _, err := program.CompileText(src, st)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog, db, st
}

func fact(t *testing.T, st *atom.Store, pred string, args ...string) atom.AtomID {
	t.Helper()
	p, err := st.Pred(pred, len(args))
	if err != nil {
		t.Fatal(err)
	}
	ts := make([]term.ID, len(args))
	for i, a := range args {
		ts[i] = st.Terms.Const(a)
	}
	return st.Atom(p, ts)
}

func TestDiffIsSetLevel(t *testing.T) {
	oldDB := program.Database{1, 2, 2, 3}
	newDB := program.Database{2, 3, 3, 4, 4}
	added, removed := Diff(oldDB, newDB)
	if len(added) != 1 || added[0] != 4 {
		t.Errorf("added = %v, want [4]", added)
	}
	if len(removed) != 1 || removed[0] != 1 {
		t.Errorf("removed = %v, want [1]", removed)
	}
	// Multiplicity changes alone are no change.
	if a, r := Diff(program.Database{5, 5}, program.Database{5}); len(a)+len(r) != 0 {
		t.Errorf("multiplicity-only diff = %v/%v, want empty", a, r)
	}
}

// TestRebaseMixedMatchesScratch drives a mixed delta (retraction +
// addition in one rebase) and cross-checks the chase universe, grounding,
// and seeds-driven incremental model against from-scratch evaluation.
func TestRebaseMixedMatchesScratch(t *testing.T) {
	prog, db, st := compile(t, `
move(a,b). move(b,c). move(c,d). move(d,e).
move(X,Y), not win(Y) -> win(X).
`)
	copts := chase.Options{MaxDepth: 8, MaxAtoms: 100_000}
	res := chase.Run(prog, db, copts)
	gp := ground.FromChase(res)
	prev := ground.AlternatingFixpoint(gp)

	removedAtom := fact(t, st, "move", "b", "c")
	addedAtom := fact(t, st, "move", "c", "a")
	var newDB program.Database
	for _, f := range db {
		if f != removedAtom {
			newDB = append(newDB, f)
		}
	}
	newDB = append(newDB, addedAtom)

	added, removed := Diff(db, newDB)
	reb, ok := Rebase(res, gp, prog, newDB, added, removed)
	if !ok {
		t.Fatal("Rebase refused a non-truncated chase")
	}
	scratch := chase.Run(prog, newDB, copts)
	if len(reb.Chase.Atoms) != len(scratch.Atoms) || len(reb.Chase.Instances) != len(scratch.Instances) {
		t.Fatalf("rebased chase %d/%d atoms/instances, scratch %d/%d",
			len(reb.Chase.Atoms), len(reb.Chase.Instances), len(scratch.Atoms), len(scratch.Instances))
	}
	gm := ground.IncrementalModel(reb.GP, prev, reb.Seeds, ground.AlternatingFixpoint)
	want := ground.AlternatingFixpoint(ground.FromChase(scratch))
	for _, g := range scratch.Atoms {
		if gv, wv := gm.TruthOfGlobal(g), want.TruthOfGlobal(g); gv != wv {
			t.Errorf("truth(%s) = %v, want %v", st.String(g), gv, wv)
		}
	}
}

// TestRebaseIDBFactAddition: asserting a derived IDB atom as an EDB fact
// must give it a fact rule even though suffix regrounding cannot see it.
func TestRebaseIDBFactAddition(t *testing.T) {
	prog, db, st := compile(t, `
e(a,b). s(a).
s(X) -> r(X).
r(X), e(X,Y) -> r(Y).
not r(X), probe(X) -> lonely(X).
probe(b).
`)
	copts := chase.Options{MaxDepth: 8, MaxAtoms: 100_000}
	res := chase.Run(prog, db, copts)
	gp := ground.FromChase(res)
	prev := ground.AlternatingFixpoint(gp)

	rb := fact(t, st, "r", "b")
	if res.Depth(rb) <= 0 {
		t.Fatalf("r(b) depth = %d, want > 0 (IDB-derived)", res.Depth(rb))
	}
	newDB := append(db[:len(db):len(db)], rb)
	added, removed := Diff(db, newDB)
	reb, ok := Rebase(res, gp, prog, newDB, added, removed)
	if !ok {
		t.Fatal("Rebase refused")
	}
	// The grounding must now hold a bodyless rule for r(b).
	li := reb.GP.Local(rb)
	hasFact := false
	for _, ri := range reb.GP.RulesFor(li) {
		r := &reb.GP.Rules[ri]
		if len(r.Pos) == 0 && len(r.Neg) == 0 {
			hasFact = true
		}
	}
	if !hasFact {
		t.Error("re-asserted IDB atom has no fact rule in the rebased grounding")
	}
	gm := ground.IncrementalModel(reb.GP, prev, reb.Seeds, ground.AlternatingFixpoint)
	scratch := ground.AlternatingFixpoint(ground.FromChase(chase.Run(prog, newDB, copts)))
	for _, g := range reb.Chase.Atoms {
		if gv, wv := gm.TruthOfGlobal(g), scratch.TruthOfGlobal(g); gv != wv {
			t.Errorf("truth(%s) = %v, want %v", st.String(g), gv, wv)
		}
	}
}

func TestRebaseRefusesTruncated(t *testing.T) {
	prog, db, st := compile(t, "seed(c).\nseed(X) -> seed(Y).")
	res := chase.Run(prog, db, chase.Options{MaxDepth: 10, MaxAtoms: 5})
	if !res.Truncated {
		t.Fatal("expected truncation")
	}
	a := fact(t, st, "seed", "d")
	if _, ok := Rebase(res, ground.FromChase(res), prog, append(db, a), []atom.AtomID{a}, nil); ok {
		t.Error("Rebase accepted a truncated chase")
	}
}
