// Package delta is the incremental-update subsystem: it carries a
// finished chase, its grounding, and (through the seeds it reports) the
// WFS model across a database mutation without re-running rule matching
// or full fixpoint evaluation.
//
// The pipeline for one applied delta is
//
//	diff ──▶ retract (DRed replay over the forest)
//	     ──▶ extend  (data-dimension chase continuation)
//	     ──▶ reground (suffix append, or rebuild after a retraction)
//	     ──▶ seeds   (atoms whose ground rule set changed)
//
// with the warm-started WFS fixpoint (ground.IncrementalModel) consuming
// the seeds downstream. Everything here is set-level: the database is a
// multiset at the API layer, but the chase — and therefore everything
// the delta subsystem maintains — only sees which atoms are present.
package delta

import (
	"repro/internal/atom"
	"repro/internal/cancel"
	"repro/internal/chase"
	"repro/internal/ground"
	"repro/internal/program"
	"repro/internal/trace"
)

// Diff computes the set-level difference between two database instances:
// atoms present in newDB but not oldDB (added) and present in oldDB but
// not newDB (removed). Duplicate entries within either database are
// ignored — a fact that merely changed multiplicity is no chase-level
// change at all.
func Diff(oldDB, newDB program.Database) (added, removed []atom.AtomID) {
	oldSet := make(map[atom.AtomID]struct{}, len(oldDB))
	for _, a := range oldDB {
		oldSet[a] = struct{}{}
	}
	newSet := make(map[atom.AtomID]struct{}, len(newDB))
	for _, a := range newDB {
		newSet[a] = struct{}{}
	}
	for a := range newSet {
		if _, ok := oldSet[a]; !ok {
			added = append(added, a)
		}
	}
	for a := range oldSet {
		if _, ok := newSet[a]; !ok {
			removed = append(removed, a)
		}
	}
	return added, removed
}

// Result is a rebased evaluation state: the chase and grounding of the
// mutated database, plus the warm-start seeds — every global atom whose
// ground rule set changed (retracted facts, heads of instances that died
// in the retraction, added facts, and heads of instances the additions
// fired). ground.IncrementalModel re-solves exactly the dependency cone
// of these seeds.
type Result struct {
	Chase *chase.Result
	GP    *ground.Program
	Seeds []atom.AtomID
}

// Rebase carries (res, gp) — a finished chase of res.DB and its grounding
// — onto the mutated database newDB, whose set-level change from res.DB
// is (added, removed), both already interned in res's store (or an
// overlay extending it; prog must be bound to that store). Retractions
// replay the derivation forest (chase.Result.Retract), additions extend
// it (chase.Result.ExtendDB), and the grounding is appended in place for
// pure additions or rebuilt over the surviving chase after a retraction.
//
// ok is false when the state cannot be rebased — a truncated chase, whose
// instance set is incomplete — and the caller must re-evaluate from
// scratch.
func Rebase(res *chase.Result, gp *ground.Program, prog *program.Program,
	newDB program.Database, added, removed []atom.AtomID) (Result, bool) {
	return RebaseTraced(res, gp, prog, newDB, added, removed, nil)
}

// RebaseTraced is Rebase with observability: the overdelete (retract),
// rederive (extend-db), and reground stages become child spans of tr,
// with delta sizes (added/removed facts, dead and refired instances) as
// counters. tr nil degrades to the plain rebase.
func RebaseTraced(res *chase.Result, gp *ground.Program, prog *program.Program,
	newDB program.Database, added, removed []atom.AtomID, tr *trace.Span) (Result, bool) {
	return RebaseCancelTraced(res, gp, prog, newDB, added, removed, nil, tr)
}

// RebaseCancelTraced is RebaseTraced under a cancellation token (nil =
// never cancelled): the token is threaded into the retraction replay and
// the data-dimension chase continuation, and polled between stages. A
// cancelled rebase reports ok=false with an interrupted chase — callers
// on a cancellable path must check the token before falling back to a
// from-scratch rebuild.
func RebaseCancelTraced(res *chase.Result, gp *ground.Program, prog *program.Program,
	newDB program.Database, added, removed []atom.AtomID, tok *cancel.Token, tr *trace.Span) (Result, bool) {
	if res.Truncated {
		return Result{}, false
	}
	tr.SetCount("added_facts", int64(len(added)))
	tr.SetCount("removed_facts", int64(len(removed)))
	seeds := make([]atom.AtomID, 0, len(added)+len(removed))
	cur, curGP := res, gp
	if len(removed) > 0 {
		mid := newDB
		if len(added) > 0 {
			// Intermediate database: the old one minus the removals.
			rm := make(map[atom.AtomID]struct{}, len(removed))
			for _, a := range removed {
				rm[a] = struct{}{}
			}
			mid = make(program.Database, 0, len(res.DB))
			for _, a := range res.DB {
				if _, dead := rm[a]; !dead {
					mid = append(mid, a)
				}
			}
		}
		endRetract := tr.Phase("retract")
		next, dead := cur.RetractCancel(prog, mid, tok)
		endRetract()
		if next == nil || next.Interrupted {
			return Result{}, false
		}
		tr.SetCount("dead_instances", int64(len(dead)))
		for _, ci := range dead {
			seeds = append(seeds, cur.Instances[ci].Head)
		}
		seeds = append(seeds, removed...)
		cur, curGP = next, nil // instance order changed: reground below
	}
	var rederived []atom.AtomID // added atoms the chase had already derived through rules
	if len(added) > 0 {
		for _, a := range added {
			if cur.Depth(a) > 0 {
				rederived = append(rederived, a)
			}
		}
		firstNew := len(cur.Instances)
		endExtend := tr.Phase("extend-db")
		next := cur.ExtendDBCancel(prog, newDB, added, tok)
		endExtend()
		if next == nil || next.Interrupted {
			return Result{}, false
		}
		tr.SetCount("new_instances", int64(len(next.Instances)-firstNew))
		for i := firstNew; i < len(next.Instances); i++ {
			seeds = append(seeds, next.Instances[i].Head)
		}
		seeds = append(seeds, added...)
		cur = next
	}
	endReground := tr.Phase("reground")
	if curGP != nil {
		// Pure addition: the grounding extends by the appended suffix;
		// IDB atoms re-asserted as facts sit before the cursor and need
		// their fact rules injected explicitly.
		curGP = ground.ExtendFromChase(curGP, cur).AppendFacts(rederived)
	} else {
		curGP = ground.FromChase(cur)
	}
	endReground()
	return Result{Chase: cur, GP: curGP, Seeds: seeds}, true
}
