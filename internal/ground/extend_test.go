package ground

import (
	"testing"

	"repro/internal/atom"
	"repro/internal/chase"
	"repro/internal/program"
	"repro/internal/term"
)

const example4Src = `
r(0,0,1).
p(0,0).
r(X,Y,Z) -> r(X,Z,W).
r(X,Y,Z), p(X,Y), not q(Z) -> p(X,Z).
r(X,Y,Z), not p(X,Y) -> q(Z).
r(X,Y,Z), not p(X,Z) -> s(X).
p(X,Y), not s(X) -> t(X).
`

func compileChase(t *testing.T, src string) (*program.Program, program.Database, *atom.Store) {
	t.Helper()
	st := atom.NewStore(term.NewStore())
	prog, db, _, err := program.CompileText(src, st)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog, db, st
}

// TestExtendFromChaseKeepsLocalIDsStable: every atom of the previous
// grounding keeps its local index, and the appended grounding agrees with
// a from-scratch FromChase of the same chase on every global atom's truth.
func TestExtendFromChaseKeepsLocalIDsStable(t *testing.T) {
	prog, db, st := compileChase(t, example4Src)
	res := chase.Run(prog, db, chase.Options{MaxDepth: 3, MaxAtoms: 10_000})
	gp := FromChase(res)

	for _, d := range []int{5, 8} {
		res = res.Extend(prog, d)
		next := ExtendFromChase(gp, res)

		// Local IDs of the previous grounding survive.
		for i, a := range gp.Atoms {
			if got := next.Local(a); got != int32(i) {
				t.Fatalf("depth %d: local(%s) = %d, want %d", d, st.String(a), got, i)
			}
			if next.Atoms[i] != a {
				t.Fatalf("depth %d: Atoms[%d] changed", d, i)
			}
		}
		// The previous grounding itself is untouched.
		if len(gp.Atoms) > len(next.Atoms) || len(gp.Rules) > len(next.Rules) {
			t.Fatalf("depth %d: extension shrank the program", d)
		}

		// Same three-valued model as regrounding from scratch, compared
		// over global atoms (local numbering may differ).
		scratch := FromChase(res)
		mNext := AlternatingFixpoint(next)
		mScratch := AlternatingFixpoint(scratch)
		if len(next.Atoms) != len(scratch.Atoms) {
			t.Fatalf("depth %d: universe %d vs %d", d, len(next.Atoms), len(scratch.Atoms))
		}
		for _, a := range scratch.Atoms {
			if got, want := mNext.TruthOfGlobal(a), mScratch.TruthOfGlobal(a); got != want {
				t.Errorf("depth %d: truth(%s) = %v, want %v", d, st.String(a), got, want)
			}
		}
		gp = next
	}
}

// TestExtendFromChaseDoesNotAliasPrevIndexes: appending rules for an
// atom that already had rules must not write into the previous program's
// index backing arrays.
func TestExtendFromChaseDoesNotAliasPrevIndexes(t *testing.T) {
	prog, db, _ := compileChase(t, example4Src)
	res := chase.Run(prog, db, chase.Options{MaxDepth: 2, MaxAtoms: 10_000})
	gp := FromChase(res)
	before := make([]int, len(gp.Atoms))
	for i := range gp.rulesByHead {
		before[i] = len(gp.rulesByHead[i])
	}
	posBefore := make([]int, len(gp.Atoms))
	for i := range gp.posOcc {
		posBefore[i] = len(gp.posOcc[i])
	}

	ext := ExtendFromChase(gp, res.Extend(prog, 6))
	if len(ext.Rules) <= len(gp.Rules) {
		t.Fatal("extension added no rules; test is vacuous")
	}
	for i := range gp.rulesByHead {
		if len(gp.rulesByHead[i]) != before[i] {
			t.Fatalf("prev rulesByHead[%d] grew", i)
		}
	}
	for i := range gp.posOcc {
		if len(gp.posOcc[i]) != posBefore[i] {
			t.Fatalf("prev posOcc[%d] grew", i)
		}
	}
}

// TestExtendFromChaseFallsBack: a prev not built from a chase (or nil)
// falls back to a full FromChase.
func TestExtendFromChaseFallsBack(t *testing.T) {
	prog, db, _ := compileChase(t, example4Src)
	res := chase.Run(prog, db, chase.Options{MaxDepth: 3, MaxAtoms: 10_000})
	if got := ExtendFromChase(nil, res); len(got.Atoms) != len(FromChase(res).Atoms) {
		t.Error("nil prev did not fall back to FromChase")
	}
	local := New(2, []Rule{{Head: 0, Pos: []int32{1}}})
	if got := ExtendFromChase(local, res); len(got.Atoms) != len(FromChase(res).Atoms) {
		t.Error("purely local prev did not fall back to FromChase")
	}
}
