package ground

// StableModels enumerates all (two-valued) stable models of a small ground
// program by brute force: M is stable iff M equals the least model of the
// Gelfond–Lifschitz reduct P^M. This is exponential and exists purely as a
// test oracle for the approximation property of the WFS (every WFS-true
// atom belongs to every stable model; every WFS-false atom to none).
// The universe must have at most 24 atoms.
func StableModels(p *Program) [][]bool {
	n := p.NumAtoms()
	if n > 24 {
		panic("ground: StableModels is a test oracle for tiny programs only")
	}
	blocked := make([]bool, len(p.Rules))
	counts := make([]int32, len(p.Rules))
	queue := make([]int32, 0, n)
	cand := NewBits(n)
	lm := NewBits(n)

	var out [][]bool
	for mask := 0; mask < 1<<n; mask++ {
		cand.Reset()
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				cand.Set(int32(i))
			}
		}
		p.blockIfNegIn(cand, blocked)
		lm = p.leastModel(blocked, lm, counts, queue)
		if lm.Equal(cand) {
			model := make([]bool, n)
			for i := 0; i < n; i++ {
				model[i] = cand.Get(int32(i))
			}
			out = append(out, model)
		}
	}
	return out
}

// ApproximatesStable checks the WFS approximation property of model m
// against every stable model of p: WFS-true atoms are in all stable
// models, WFS-false atoms in none. It returns true vacuously when p has
// no stable models.
func ApproximatesStable(p *Program, m *Model) bool {
	for _, sm := range StableModels(p) {
		for i, t := range m.Truth {
			if t == True && !sm[i] {
				return false
			}
			if t == False && sm[i] {
				return false
			}
		}
	}
	return true
}
