package ground

import "math/rand"

// RandomProgram generates a random ground normal program over nAtoms atoms
// with nRules rules, each having up to maxPos positive and maxNeg negative
// body atoms, plus nFacts facts. It is used by the property-based tests
// (cross-checking the three WFS algorithms and the stable-model oracle)
// and by the benchmark harness; generation is deterministic in rng.
func RandomProgram(rng *rand.Rand, nAtoms, nRules, maxPos, maxNeg, nFacts int) *Program {
	if nAtoms < 1 {
		nAtoms = 1
	}
	rules := make([]Rule, 0, nRules+nFacts)
	for i := 0; i < nFacts; i++ {
		rules = append(rules, Rule{Head: int32(rng.Intn(nAtoms))})
	}
	for i := 0; i < nRules; i++ {
		r := Rule{Head: int32(rng.Intn(nAtoms))}
		for j := rng.Intn(maxPos + 1); j > 0; j-- {
			r.Pos = append(r.Pos, int32(rng.Intn(nAtoms)))
		}
		for j := rng.Intn(maxNeg + 1); j > 0; j-- {
			r.Neg = append(r.Neg, int32(rng.Intn(nAtoms)))
		}
		rules = append(rules, r)
	}
	return New(nAtoms, rules)
}
