package ground

import (
	"testing"

	"repro/internal/atom"
	"repro/internal/chase"
	"repro/internal/program"
	"repro/internal/term"
)

var solvers = map[string]func(*Program) *Model{
	"alternating":    AlternatingFixpoint,
	"unfounded-sets": UnfoundedIteration,
	"forward-proofs": ForwardProofIteration,
	"remainder":      Remainder,
}

func internFact(t *testing.T, st *atom.Store, pred string, args ...string) atom.AtomID {
	t.Helper()
	p, err := st.Pred(pred, len(args))
	if err != nil {
		t.Fatal(err)
	}
	ts := make([]term.ID, len(args))
	for i, a := range args {
		ts[i] = st.Terms.Const(a)
	}
	return st.Atom(p, ts)
}

// checkSameTruth compares two models over (possibly differently indexed)
// chase groundings on every global atom of either universe.
func checkSameTruth(t *testing.T, st *atom.Store, got, want *Model) {
	t.Helper()
	for _, g := range want.Prog.Atoms {
		if gv, wv := got.TruthOfGlobal(g), want.TruthOfGlobal(g); gv != wv {
			t.Errorf("truth(%s) = %v, want %v", st.String(g), gv, wv)
		}
	}
	for _, g := range got.Prog.Atoms {
		if gv, wv := got.TruthOfGlobal(g), want.TruthOfGlobal(g); gv != wv {
			t.Errorf("truth(%s) = %v, want %v", st.String(g), gv, wv)
		}
	}
}

// TestIncrementalModelAddition: warm-starting over an ExtendFromChase
// suffix agrees with from-scratch solving under all four algorithms.
func TestIncrementalModelAddition(t *testing.T) {
	for name, solve := range solvers {
		t.Run(name, func(t *testing.T) {
			prog, db, st := compileChase(t, `
move(a,b). move(b,c).
move(X,Y), not win(Y) -> win(X).
`)
			opts := chase.Options{MaxDepth: 8, MaxAtoms: 10_000}
			res := chase.Run(prog, db, opts)
			gp := FromChase(res)
			prev := solve(gp)

			added := internFact(t, st, "move", "c", "a")
			db2 := append(db, added)
			res2 := res.ExtendDB(prog, db2, []atom.AtomID{added})
			gp2 := ExtendFromChase(gp, res2)

			seeds := []atom.AtomID{added}
			for i := len(res.Instances); i < len(res2.Instances); i++ {
				seeds = append(seeds, res2.Instances[i].Head)
			}
			got := IncrementalModel(gp2, prev, seeds, solve)
			want := solve(gp2)
			checkSameTruth(t, st, got, want)
		})
	}
}

// TestIncrementalModelRetraction: warm-starting over a replayed
// retraction agrees with from-scratch solving under all four algorithms.
func TestIncrementalModelRetraction(t *testing.T) {
	for name, solve := range solvers {
		t.Run(name, func(t *testing.T) {
			prog, db, st := compileChase(t, `
move(a,b). move(b,c). move(c,a). move(c,d).
p(x). p(y).
move(X,Y), not win(Y) -> win(X).
p(X), not q(X) -> q2(X).
`)
			opts := chase.Options{MaxDepth: 8, MaxAtoms: 10_000}
			res := chase.Run(prog, db, opts)
			gp := FromChase(res)
			prev := solve(gp)

			removed := internFact(t, st, "move", "c", "a")
			var db2 program.Database
			for _, f := range db {
				if f != removed {
					db2 = append(db2, f)
				}
			}
			res2, dead := res.Retract(prog, db2)
			gp2 := FromChase(res2)

			seeds := []atom.AtomID{removed}
			for _, ci := range dead {
				seeds = append(seeds, res.Instances[ci].Head)
			}
			got := IncrementalModel(gp2, prev, seeds, solve)
			want := solve(gp2)
			checkSameTruth(t, st, got, want)
		})
	}
}

// TestIncrementalModelEmptySeeds: with nothing changed, the previous
// truths carry over verbatim.
func TestIncrementalModelEmptySeeds(t *testing.T) {
	prog, db, st := compileChase(t, example4Src)
	res := chase.Run(prog, db, chase.Options{MaxDepth: 5, MaxAtoms: 10_000})
	gp := FromChase(res)
	prev := AlternatingFixpoint(gp)
	got := IncrementalModel(gp, prev, nil, AlternatingFixpoint)
	checkSameTruth(t, st, got, prev)
}

// TestIncrementalModelUndefinedBoundary: an unaffected undefined atom on
// the boundary of the affected cone must stay undefined and propagate
// undefinedness into the re-solved region.
func TestIncrementalModelUndefinedBoundary(t *testing.T) {
	for name, solve := range solvers {
		t.Run(name, func(t *testing.T) {
			// u is undefined via the 2-cycle; c depends on u and on the
			// mutable fact b.
			prog, db, st := compileChase(t, `
m(a,b). m(b,a). base(z).
m(X,Y), not win(Y) -> win(X).
base(X), extra(X), not win(a) -> c(X).
`)
			res := chase.Run(prog, db, chase.Options{MaxDepth: 8, MaxAtoms: 10_000})
			gp := FromChase(res)
			prev := solve(gp)

			added := internFact(t, st, "extra", "z")
			db2 := append(db, added)
			res2 := res.ExtendDB(prog, db2, []atom.AtomID{added})
			gp2 := ExtendFromChase(gp, res2)
			seeds := []atom.AtomID{added}
			for i := len(res.Instances); i < len(res2.Instances); i++ {
				seeds = append(seeds, res2.Instances[i].Head)
			}
			got := IncrementalModel(gp2, prev, seeds, solve)
			want := solve(gp2)
			checkSameTruth(t, st, got, want)
			c := internFact(t, st, "c", "z")
			if tv := got.TruthOfGlobal(c); tv != Undefined {
				t.Errorf("c(z) = %v, want undefined (propagated through boundary)", tv)
			}
		})
	}
}

// TestAppendFacts: asserting an already-derived IDB atom as a fact makes
// it a fact rule without disturbing the previous program.
func TestAppendFacts(t *testing.T) {
	prog, db, st := compileChase(t, `
e(a,b). s(a).
s(X) -> r(X).
r(X), e(X,Y) -> r(Y).
`)
	res := chase.Run(prog, db, chase.Options{MaxDepth: 8, MaxAtoms: 10_000})
	gp := FromChase(res)
	rb := internFact(t, st, "r", "b")
	if gp.Local(rb) < 0 {
		t.Fatal("r(b) not derived")
	}
	prevRules := len(gp.Rules)
	gp2 := gp.AppendFacts([]atom.AtomID{rb})
	if len(gp.Rules) != prevRules {
		t.Fatal("AppendFacts mutated the receiver")
	}
	if len(gp2.Rules) != prevRules+1 {
		t.Fatalf("rules = %d, want %d", len(gp2.Rules), prevRules+1)
	}
	nr := gp2.Rules[prevRules]
	if nr.Head != gp2.Local(rb) || len(nr.Pos) != 0 || len(nr.Neg) != 0 {
		t.Fatalf("appended rule = %+v, want bodyless fact for r(b)", nr)
	}
	found := false
	for _, ri := range gp2.RulesFor(gp2.Local(rb)) {
		if int(ri) == prevRules {
			found = true
		}
	}
	if !found {
		t.Error("appended fact rule missing from the head index")
	}
}
