package ground

// Stratified computes the perfect model of a stratified ground program by
// iterated least models along strata (the semantics of stratified Datalog±
// in Calì–Gottlob–Lukasiewicz [1], which the WFS conservatively extends).
// strata[a] gives the stratum of local atom a (normally inherited from the
// predicate stratification). The result is two-valued: every atom is True
// or False.
func Stratified(p *Program, strata []int32, numStrata int) *Model {
	n := p.NumAtoms()
	m := NewBits(n)
	blocked := make([]bool, len(p.Rules))
	counts := make([]int32, len(p.Rules))
	queue := make([]int32, 0, n)
	cur := NewBits(n)

	for s := 0; s < numStrata; s++ {
		// Usable: rules whose head lives in a stratum ≤ s and whose
		// negative body atoms (all in strictly lower strata for a valid
		// stratification) are false in the accumulated model.
		for ri := range p.Rules {
			r := &p.Rules[ri]
			blocked[ri] = int(strata[r.Head]) > s
			if !blocked[ri] {
				for _, b := range r.Neg {
					if m.Get(b) {
						blocked[ri] = true
						break
					}
				}
			}
		}
		cur = p.leastModel(blocked, cur, counts, queue)
		m, cur = cur, m
	}

	out := &Model{Prog: p, Truth: make([]Truth, n), Rounds: numStrata}
	for i := int32(0); int(i) < n; i++ {
		if m.Get(i) {
			out.Truth[i] = True
		} else {
			out.Truth[i] = False
		}
	}
	return out
}
