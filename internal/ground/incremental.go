// Warm-started WFS evaluation for incremental updates.
//
// The well-founded semantics has the relevance property: the truth value
// of an atom is determined by its dependency cone — the rules for it,
// the rules for their body atoms, and so on. After a delta, therefore,
// only atoms whose cone contains a change can change truth value. Those
// are exactly the atoms reachable from the changed atoms in the forward
// (body → head) direction of the dependency graph, through positive and
// negative occurrences alike.
//
// IncrementalModel exploits this: it closes the changed seeds forward
// into an "affected" set, extracts the affected subprogram with the
// unaffected boundary atoms replaced by their (provably unchanged)
// previous truth values — true boundary atoms become facts, false ones
// vanish, undefined ones are pinned undefined by a self-blocking rule
// u ← not u — solves the subprogram with the configured WFS algorithm,
// and merges the sub-model over the previous one. By the splitting
// theorem for WFS (unaffected atoms form a bottom stratum: none of their
// rules mentions an affected atom, or the head would be affected), the
// merge is the exact well-founded model of the new program; the delta
// cross-check suite verifies this against from-scratch evaluation under
// all four algorithms.
//
// The forward closure runs on the dependency-graph condensation
// (Program.Condensation) rather than atom-by-atom: seeds mark their
// components, marks propagate along the condensation's dependent edges,
// and the affected set is the union of the marked components' atoms.
// The two closures are the same set — an SCC is mutually reachable, so
// forward-reachability from a seed reaches either all of a component or
// none of it — but the component-level walk traverses each dependency
// edge once instead of once per atom occurrence, and the condensation is
// shared with the modular solver that evaluates the subprogram.
package ground

import (
	"repro/internal/atom"
	"repro/internal/cancel"
	"repro/internal/trace"
)

// cancelPollEvery is how many closure-stack pops run between token
// polls during the cone walk — the walk touches each condensation edge
// once, so component granularity would poll too rarely on star-shaped
// graphs and per-pop would poll too often on chains.
const cancelPollEvery = 256

// IncrementalModel computes the well-founded model of gp by warm-starting
// from prev, the model of an earlier revision of the program sharing gp's
// global atom ID space. seeds lists the global atoms whose ground rule
// set changed in the revision (heads of added and deleted rules, added
// and retracted facts); seeds outside gp's universe are ignored (they
// died with their derivations — anything that referenced them is seeded
// through the rules that died). solve runs the configured fixpoint
// algorithm on a (sub)program.
//
// Falls back to solve(gp) when no previous model is available, when the
// programs are not chase-grounded (no global ID space to align on), or
// when the affected cone covers most of the program and solving the
// subprogram would cost as much as solving everything.
func IncrementalModel(gp *Program, prev *Model, seeds []atom.AtomID, solve func(*Program) *Model) *Model {
	return IncrementalModelTraced(gp, prev, seeds, solve, nil)
}

// IncrementalModelTraced is IncrementalModel with observability: cone
// sizes (seeds, affected atoms, universe, subprogram rules) as counters
// on tr and the affected-cone solve as a cone-solve child span. tr nil
// degrades to the plain warm start.
func IncrementalModelTraced(gp *Program, prev *Model, seeds []atom.AtomID, solve func(*Program) *Model, tr *trace.Span) *Model {
	return IncrementalModelCancelTraced(gp, prev, seeds, solve, nil, tr)
}

// IncrementalModelCancelTraced is IncrementalModelTraced under a
// cancellation token (nil = never cancelled): the cone closure polls the
// token per popped component, and an interrupted cone solve (the solve
// closure is expected to carry the same token) propagates Interrupted to
// the merged model.
func IncrementalModelCancelTraced(gp *Program, prev *Model, seeds []atom.AtomID, solve func(*Program) *Model, tok *cancel.Token, tr *trace.Span) *Model {
	tr.SetCount("seeds", int64(len(seeds)))
	if prev == nil || prev.Prog == nil || gp.Atoms == nil || prev.Prog.Atoms == nil {
		end := tr.Phase("cold-solve")
		defer end()
		return solve(gp)
	}
	n := gp.NumAtoms()
	endClosure := tr.Phase("cone-closure")
	cond := gp.closureCondensation()
	affComp := make([]bool, cond.NumComps())
	var stack []int32
	nAff := 0
	mark := func(ci int32) {
		if !affComp[ci] {
			affComp[ci] = true
			nAff += cond.CompSize(ci)
			stack = append(stack, ci)
		}
	}
	for _, g := range seeds {
		if i := gp.Local(g); i >= 0 {
			mark(cond.Comp[i])
		}
	}
	budget := cancelPollEvery
	for len(stack) > 0 {
		if budget--; budget <= 0 {
			budget = cancelPollEvery
			if tok.Cancelled() {
				endClosure()
				return &Model{Prog: gp, Truth: make([]Truth, n), Interrupted: true}
			}
		}
		ci := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, d := range cond.DependentsOf(ci) {
			mark(d)
		}
	}
	endClosure()
	tr.SetCount("affected_atoms", int64(nAff))
	tr.SetCount("universe_atoms", int64(n))
	affected := func(i int32) bool { return affComp[cond.Comp[i]] }
	prevTruth := func(i int32) Truth { return prev.TruthOfGlobal(gp.Atoms[i]) }
	// Merged models report the full program's condensation shape, so the
	// observability stats survive delta applies (the steady-state path of
	// a mutating session) instead of zeroing after the first mutation.
	wrap := func(out []Truth, rounds, workers int) *Model {
		if workers < 1 {
			workers = 1
		}
		return &Model{
			Prog:       gp,
			Truth:      out,
			Rounds:     rounds,
			SCCs:       cond.NumComps(),
			LargestSCC: cond.LargestComp,
			HardSCCs:   cond.NumHard,
			Workers:    workers,
		}
	}
	if nAff == 0 {
		out := make([]Truth, n)
		for i := range out {
			out[i] = prevTruth(int32(i))
		}
		return wrap(out, 0, 1)
	}
	if nAff*4 > n {
		end := tr.Phase("cold-solve")
		defer end()
		return solve(gp)
	}

	// Build the affected subprogram over a dense sub-index. Unaffected
	// body atoms either resolve away (true/false) or enter as boundary
	// atoms pinned undefined.
	subIdx := make(map[int32]int32, nAff)
	var subAtoms []int32 // sub index → gp-local index
	subOf := func(i int32) int32 {
		if si, ok := subIdx[i]; ok {
			return si
		}
		si := int32(len(subAtoms))
		subIdx[i] = si
		subAtoms = append(subAtoms, i)
		return si
	}
	var subRules []Rule
	for a := int32(0); int(a) < n; a++ {
		if !affected(a) {
			continue
		}
		sa := subOf(a)
		for _, ri := range gp.rulesByHead[a] {
			r := &gp.Rules[ri]
			nr := Rule{Head: sa}
			keep := true
			for _, b := range r.Pos {
				if affected(b) {
					nr.Pos = append(nr.Pos, subOf(b))
					continue
				}
				switch prevTruth(b) {
				case True: // satisfied: drop the literal
				case False:
					keep = false
				default: // undefined boundary: keep, pinned below
					nr.Pos = append(nr.Pos, subOf(b))
				}
				if !keep {
					break
				}
			}
			if keep {
				for _, b := range r.Neg {
					if affected(b) {
						nr.Neg = append(nr.Neg, subOf(b))
						continue
					}
					switch prevTruth(b) {
					case True:
						keep = false
					case False: // satisfied: drop the literal
					default:
						nr.Neg = append(nr.Neg, subOf(b))
					}
					if !keep {
						break
					}
				}
			}
			if keep {
				subRules = append(subRules, nr)
			}
		}
	}
	// Pin every unaffected boundary atom to its previous (undefined)
	// truth with u ← not u. True/false boundary atoms never reached
	// subOf, so everything here beyond the affected prefix is undefined.
	for si := int32(0); int(si) < len(subAtoms); si++ {
		if !affected(subAtoms[si]) {
			subRules = append(subRules, Rule{Head: si, Neg: []int32{si}})
		}
	}
	tr.SetCount("sub_rules", int64(len(subRules)))
	endSolve := tr.Phase("cone-solve")
	sm := solve(New(len(subAtoms), subRules))
	endSolve()
	if sm.Interrupted {
		return &Model{Prog: gp, Truth: make([]Truth, n), Interrupted: true}
	}

	out := make([]Truth, n)
	for i := int32(0); int(i) < n; i++ {
		if affected(i) {
			out[i] = sm.Truth[subIdx[i]]
		} else {
			out[i] = prevTruth(i)
		}
	}
	return wrap(out, sm.Rounds, sm.Workers)
}
