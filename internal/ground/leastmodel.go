package ground

// leastModel computes the least model of the positive projection of the
// program restricted to non-blocked rules, using the linear-time counting
// construction. blocked[ri] marks rules excluded by the caller's treatment
// of negative bodies (the Gelfond–Lifschitz reduct or an operator-specific
// filter); negative literals of usable rules are dropped.
//
// The result is written into out (which is reset first) so callers can
// reuse buffers across fixpoint rounds.
func (p *Program) leastModel(blocked []bool, out Bits, counts []int32, queue []int32) Bits {
	out.Reset()
	queue = queue[:0]
	derive := func(a int32) {
		if !out.Get(a) {
			out.Set(a)
			queue = append(queue, a)
		}
	}
	for ri := range p.Rules {
		if blocked[ri] {
			counts[ri] = -1
			continue
		}
		n := int32(len(p.Rules[ri].Pos))
		counts[ri] = n
		if n == 0 {
			derive(p.Rules[ri].Head)
		}
	}
	for len(queue) > 0 {
		a := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, ri := range p.posOcc[a] {
			if counts[ri] < 0 {
				continue
			}
			counts[ri]--
			if counts[ri] == 0 {
				derive(p.Rules[ri].Head)
			}
		}
	}
	return out
}

// blockIfNegIn marks as blocked every rule with a negative body atom inside
// set S (the GL-reduct filter: the rule is deleted when some ¬b fails
// because b ∈ S).
func (p *Program) blockIfNegIn(s Bits, blocked []bool) {
	for ri := range p.Rules {
		blocked[ri] = false
		for _, b := range p.Rules[ri].Neg {
			if s.Get(b) {
				blocked[ri] = true
				break
			}
		}
	}
}

// blockIfNegNotIn marks as blocked every rule having a negative body atom
// outside set N (the ŴP-positive filter: a forward proof may only use rules
// all of whose negative hypotheses are already known false, ¬.N(π) ⊆ I).
func (p *Program) blockIfNegNotIn(n Bits, blocked []bool) {
	for ri := range p.Rules {
		blocked[ri] = false
		for _, b := range p.Rules[ri].Neg {
			if !n.Get(b) {
				blocked[ri] = true
				break
			}
		}
	}
}
