package ground

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/atom"
)

// fourAlgorithms names the independent global WFS implementations the
// modular solver must agree with (and may run inside hard components).
var fourAlgorithms = map[string]func(*Program) *Model{
	"alternating-fixpoint": AlternatingFixpoint,
	"unfounded-sets":       UnfoundedIteration,
	"forward-proofs":       ForwardProofIteration,
	"remainder":            Remainder,
}

func TestCondenseWinMoveChain(t *testing.T) {
	// win-move on a chain v0→v1→v2 with a dead end: atoms 0,1,2 =
	// win(v0..v2); 3,4,5 = move facts. Acyclic: every atom its own
	// component, no negation cycles.
	p := mk(6,
		Rule{Head: 3}, Rule{Head: 4}, Rule{Head: 5},
		Rule{Head: 0, Pos: []int32{3}, Neg: []int32{1}},
		Rule{Head: 1, Pos: []int32{4}, Neg: []int32{2}},
		Rule{Head: 2, Pos: []int32{5}},
	)
	c := p.Condensation()
	if c.NumComps() != 6 {
		t.Fatalf("comps = %d, want 6", c.NumComps())
	}
	if c.NumHard != 0 {
		t.Errorf("hard comps = %d, want 0 (no negation cycle)", c.NumHard)
	}
	if c.LargestComp != 1 {
		t.Errorf("largest = %d, want 1", c.LargestComp)
	}
	// Topological order: dependencies before dependents. win(0) depends
	// (transitively) on everything, so its component comes last among the
	// win atoms.
	if c.Comp[0] < c.Comp[1] || c.Comp[1] < c.Comp[2] {
		t.Errorf("win components out of topological order: %v", c.Comp[:3])
	}
	// Levels: a dependency's level is strictly below its dependent's.
	if !(c.Level[c.Comp[0]] > c.Level[c.Comp[1]] && c.Level[c.Comp[1]] > c.Level[c.Comp[2]]) {
		t.Errorf("levels not strictly increasing toward win(0): %v", c.Level)
	}
}

func TestCondenseCycleIsOneHardComponent(t *testing.T) {
	// win-move on a 3-cycle: one SCC of the three win atoms, with an
	// internal negative edge — a hard component.
	p := mk(6,
		Rule{Head: 3}, Rule{Head: 4}, Rule{Head: 5},
		Rule{Head: 0, Pos: []int32{3}, Neg: []int32{1}},
		Rule{Head: 1, Pos: []int32{4}, Neg: []int32{2}},
		Rule{Head: 2, Pos: []int32{5}, Neg: []int32{0}},
	)
	c := p.Condensation()
	if c.NumComps() != 4 {
		t.Fatalf("comps = %d, want 4 (3 facts + 1 cycle)", c.NumComps())
	}
	if c.NumHard != 1 || c.LargestComp != 3 {
		t.Errorf("hard = %d largest = %d, want 1 and 3", c.NumHard, c.LargestComp)
	}
	if c.Comp[0] != c.Comp[1] || c.Comp[1] != c.Comp[2] {
		t.Errorf("cycle atoms in distinct components: %v", c.Comp[:3])
	}
	m := SolveModular(p, AlternatingFixpoint, 1)
	for a := int32(0); a < 3; a++ {
		if m.Truth[a] != Undefined {
			t.Errorf("win atom %d = %v, want undefined", a, m.Truth[a])
		}
	}
	if m.HardSCCs != 1 || m.SCCs != 4 {
		t.Errorf("model stats SCCs=%d Hard=%d, want 4 and 1", m.SCCs, m.HardSCCs)
	}
}

func TestCondenseDependentsDeduplicated(t *testing.T) {
	// Two rules of the same head both depending on atom 0: atom 0's
	// component must list the head's component once.
	p := mk(2,
		Rule{Head: 0},
		Rule{Head: 1, Pos: []int32{0}},
		Rule{Head: 1, Pos: []int32{0}, Neg: []int32{0}},
	)
	c := p.Condensation()
	if got := len(c.DependentsOf(c.Comp[0])); got != 1 {
		t.Errorf("dependents of atom 0's component = %d, want 1", got)
	}
}

// TestModularUndefinedBoundary pins the boundary treatment: a hard
// component (negation 2-cycle) feeding a cheap chain must propagate
// Undefined through both positive and negative literals, and an
// undefined boundary entering another hard component must be pinned, not
// resolved.
func TestModularUndefinedBoundary(t *testing.T) {
	// 0,1: p ← not q; q ← not p (undefined pair).
	// 2: a ← p (undefined via positive boundary).
	// 3: b ← not p (undefined via negative boundary).
	// 4,5: r ← not s, p; s ← not r (hard comp with undefined boundary).
	// 6,7: t a fact, f ← t (plain true chain, stays two-valued).
	p := mk(8,
		Rule{Head: 0, Neg: []int32{1}},
		Rule{Head: 1, Neg: []int32{0}},
		Rule{Head: 2, Pos: []int32{0}},
		Rule{Head: 3, Neg: []int32{0}},
		Rule{Head: 4, Pos: []int32{0}, Neg: []int32{5}},
		Rule{Head: 5, Neg: []int32{4}},
		Rule{Head: 6},
		Rule{Head: 7, Pos: []int32{6}},
	)
	for name, algo := range fourAlgorithms {
		want := algo(p)
		for _, par := range []int{1, 4} {
			got := SolveModular(p, algo, par)
			if !got.Equal(want) {
				t.Errorf("%s par=%d:\n got %v\nwant %v", name, par, got, want)
			}
		}
	}
	m := SolveModular(p, AlternatingFixpoint, 1)
	for a, want := range []Truth{Undefined, Undefined, Undefined, Undefined, Undefined, Undefined, True, True} {
		if m.Truth[a] != want {
			t.Errorf("atom %d = %v, want %v", a, m.Truth[a], want)
		}
	}
}

// TestModularEquivGlobalRandom is the headline cross-check: on random
// ground programs (the same generator the four global algorithms are
// cross-checked with), the modular solve agrees truth-for-truth with
// every global algorithm, sequentially and with a worker pool.
func TestModularEquivGlobalRandom(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(23))}
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := RandomProgram(rng, 3+rng.Intn(20), 3+rng.Intn(30), 3, 3, rng.Intn(4))
		want := AlternatingFixpoint(p)
		for name, algo := range fourAlgorithms {
			for _, par := range []int{1, 3} {
				got := SolveModular(p, algo, par)
				if !got.Equal(want) {
					t.Logf("seed %d %s par=%d:\n got %v\nwant %v", seed, name, par, got, want)
					return false
				}
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

// TestModularManyComponentsParallel exercises the level-parallel pool on
// a workload with many independent components per level: k disjoint
// win-move chains (all singleton components) plus k independent negation
// 2-cycles (hard components, all on one level).
func TestModularManyComponentsParallel(t *testing.T) {
	const k, l = 37, 9
	var rules []Rule
	n := 0
	atom := func() int32 { n++; return int32(n - 1) }
	for c := 0; c < k; c++ {
		// Chain of l win atoms; the deepest has an unconditioned rule.
		prev := atom()
		rules = append(rules, Rule{Head: prev})
		for i := 1; i < l; i++ {
			a := atom()
			rules = append(rules, Rule{Head: a, Neg: []int32{prev}})
			prev = a
		}
		// One negation 2-cycle.
		x, y := atom(), atom()
		rules = append(rules, Rule{Head: x, Neg: []int32{y}}, Rule{Head: y, Neg: []int32{x}})
	}
	p := New(n, rules)
	want := AlternatingFixpoint(p)
	for _, par := range []int{1, 2, 8} {
		got := SolveModular(p, AlternatingFixpoint, par)
		if !got.Equal(want) {
			t.Fatalf("par=%d diverges from global solve", par)
		}
		if want := k * (l + 1); got.SCCs != want { // l singletons + one 2-cycle per chain
			t.Errorf("par=%d SCCs = %d, want %d", par, got.SCCs, want)
		}
		if got.HardSCCs != k {
			t.Errorf("par=%d hard SCCs = %d, want %d", par, got.HardSCCs, k)
		}
	}
	if got := SolveModular(p, AlternatingFixpoint, 8); got.Workers < 2 {
		t.Errorf("workers = %d, want ≥ 2 with parallelism 8", got.Workers)
	}
	// An absurd (client-reachable) parallelism request is clamped, not
	// allocated: the solve must succeed with a bounded pool.
	if got := SolveModular(p, AlternatingFixpoint, 1<<30); !got.Equal(want) || got.Workers > maxParallelism {
		t.Errorf("clamped solve diverged or overspawned: workers = %d", got.Workers)
	}
}

// TestModularSingleComponentFallback: a program whose dependency graph is
// one SCC must take the direct global-solve path.
func TestModularSingleComponentFallback(t *testing.T) {
	p := mk(2,
		Rule{Head: 0, Neg: []int32{1}},
		Rule{Head: 1, Neg: []int32{0}},
	)
	m := SolveModular(p, AlternatingFixpoint, 4)
	if m.SCCs != 1 || m.Workers != 1 {
		t.Errorf("SCCs=%d Workers=%d, want 1 and 1", m.SCCs, m.Workers)
	}
	if !m.Equal(AlternatingFixpoint(p)) {
		t.Errorf("fallback diverges")
	}
}

// TestModularEmptyAndRulelessAtoms: degenerate shapes must not crash and
// must leave rule-less atoms false.
func TestModularEmptyAndRulelessAtoms(t *testing.T) {
	if m := SolveModular(New(0, nil), AlternatingFixpoint, 2); len(m.Truth) != 0 {
		t.Errorf("empty program produced truths: %v", m.Truth)
	}
	m := SolveModular(New(3, []Rule{{Head: 1}}), AlternatingFixpoint, 2)
	for a, want := range []Truth{False, True, False} {
		if m.Truth[a] != want {
			t.Errorf("atom %d = %v, want %v", a, m.Truth[a], want)
		}
	}
}

// TestModularRoundsGrowWithChainLength: the modular Rounds metric (summed
// per-component rounds along the topological order) must still grow with
// the program's dependency depth — the property the transfinite-iteration
// experiment (E4) measures.
func TestModularRoundsGrowWithChainLength(t *testing.T) {
	build := func(l int) *Program {
		rules := []Rule{{Head: 0}}
		for i := 1; i < l; i++ {
			rules = append(rules, Rule{Head: int32(i), Neg: []int32{int32(i - 1)}})
		}
		return New(l, rules)
	}
	prev := 0
	for _, l := range []int{4, 16, 64} {
		m := SolveModular(build(l), AlternatingFixpoint, 1)
		if m.Rounds <= prev {
			t.Fatalf("rounds did not grow: %d at length %d (prev %d)", m.Rounds, l, prev)
		}
		prev = m.Rounds
	}
}

// TestIncrementalUsesCondensation: the incremental warm-start's affected
// cone (now computed on the condensation) must still match from-scratch
// evaluation after a simulated revision. The revision adds a fact for a
// mid-chain atom; only its dependents may change.
func TestIncrementalUsesCondensation(t *testing.T) {
	// Shared global ID space: atoms 0..n-1 chained win-move style, long
	// enough that the seed's cone stays under the everything-affected
	// fallback and the subprogram merge path runs.
	const n, seed = 40, 35
	mkChain := func(extraFact bool) *Program {
		rules := []Rule{{Head: 0}}
		for i := 1; i < n; i++ {
			rules = append(rules, Rule{Head: int32(i), Neg: []int32{int32(i - 1)}})
		}
		if extraFact {
			rules = append(rules, Rule{Head: seed})
		}
		p := New(n, rules)
		p.Atoms = make([]atom.AtomID, n)
		for i := range p.Atoms {
			p.Atoms[i] = atom.AtomID(i)
		}
		p.localIdx = make([]int32, n)
		for i := range p.localIdx {
			p.localIdx[i] = int32(i)
		}
		return p
	}
	prev := AlternatingFixpoint(mkChain(false))
	prevM := &Model{Prog: mkChain(false), Truth: prev.Truth}
	gp := mkChain(true)
	got := IncrementalModel(gp, prevM, []atom.AtomID{seed}, AlternatingFixpoint)
	want := AlternatingFixpoint(gp)
	for i := range want.Truth {
		if got.Truth[i] != want.Truth[i] {
			t.Errorf("atom %d = %v, want %v", i, got.Truth[i], want.Truth[i])
		}
	}
	// The merged model must report the full program's condensation shape
	// (a mutating session's stats would otherwise zero after the first
	// delta).
	if got.SCCs != n || got.LargestSCC != 1 || got.HardSCCs != 0 || got.Workers < 1 {
		t.Errorf("merged model stats SCCs=%d Largest=%d Hard=%d Workers=%d, want %d/1/0/≥1",
			got.SCCs, got.LargestSCC, got.HardSCCs, got.Workers, n)
	}
}
