package ground

import "math/bits"

// Bits is a fixed-capacity bitset over local atom indexes.
type Bits []uint64

// NewBits returns a bitset able to hold n bits.
func NewBits(n int) Bits { return make(Bits, (n+63)/64) }

// Get reports whether bit i is set.
func (b Bits) Get(i int32) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// Set sets bit i.
func (b Bits) Set(i int32) { b[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (b Bits) Clear(i int32) { b[i>>6] &^= 1 << (uint(i) & 63) }

// Count returns the number of set bits.
func (b Bits) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Equal reports whether b and c hold the same bits (same capacity assumed).
func (b Bits) Equal(c Bits) bool {
	for i := range b {
		if b[i] != c[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of b.
func (b Bits) Clone() Bits {
	c := make(Bits, len(b))
	copy(c, b)
	return c
}

// Reset clears all bits.
func (b Bits) Reset() {
	for i := range b {
		b[i] = 0
	}
}
