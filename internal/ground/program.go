// Package ground implements finite ground normal logic programs (§2.2) and
// the well-founded semantics machinery on them:
//
//   - the van Gelder alternating fixpoint (Γ², the workhorse);
//   - the literal unfounded-set operator iteration WP = TP ∪ ¬.UP (§2.6);
//   - the forward-proof operator ŴP of Definition 7 / Theorem 8;
//   - the Brass–Dix program remainder (residual program);
//   - stratified (perfect-model) evaluation, the baseline semantics of [1];
//   - a brute-force stable-model enumerator used as a test oracle.
//
// The four WFS algorithms are independent implementations that must agree
// (Theorem 8 and the classic equivalences); the test suite enforces this on
// the paper's examples and on randomized programs.
//
// Atoms are dense local indexes; the engine layer maps them to global
// atom.AtomIDs from the chase universe. An atom with no rules (in
// particular a negative body atom never derived by the bounded chase,
// i.e. an atom with no forward proof) is simply false in every semantics
// here, which is exactly the paper's treatment of atoms outside F+(P).
package ground

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/atom"
	"repro/internal/chase"
)

// Truth is a three-valued truth value.
type Truth int8

const (
	// False: the atom's negation is in the well-founded model.
	False Truth = iota
	// Undefined: neither the atom nor its negation is derivable.
	Undefined
	// True: the atom is in the well-founded model.
	True
)

func (t Truth) String() string {
	switch t {
	case False:
		return "false"
	case Undefined:
		return "undefined"
	case True:
		return "true"
	default:
		return fmt.Sprintf("Truth(%d)", int8(t))
	}
}

// Rule is a ground normal rule over local atom indexes. Facts are rules
// with empty bodies.
type Rule struct {
	Head int32
	Pos  []int32
	Neg  []int32
}

// Program is a finite ground normal logic program.
type Program struct {
	// Atoms maps local indexes to global atom IDs; nil for purely local
	// (test-constructed) programs.
	Atoms []atom.AtomID
	Rules []Rule

	// localIdx maps global atom IDs (dense per store) to local indexes,
	// -1 for atoms outside the universe; nil for purely local programs.
	localIdx    []int32
	rulesByHead [][]int32
	posOcc      [][]int32 // per atom: rules with a positive occurrence (with multiplicity)
	negOcc      [][]int32 // per atom: rules with a negative occurrence (with multiplicity)

	// chaseAtoms/chaseInsts record how much of the originating chase
	// Result this program consumed, so ExtendFromChase can reground only
	// the appended suffix of a deeper chase.
	chaseAtoms int
	chaseInsts int

	// cond/condLight cache the dependency-graph condensation (Condense):
	// the modular solver and the incremental warm-start both consume it,
	// and a program shared across snapshot rungs may be condensed from
	// several goroutines. Publication is an atomic pointer rather than a
	// Once so the closure path can observe an already-built full
	// condensation without forcing one; racing builders waste a little
	// work and agree on the survivor.
	cond      atomic.Pointer[Condensation]
	condLight atomic.Pointer[Condensation]
}

// Condensation returns (building on first use) the full condensation of
// the program's atom dependency graph. Safe for concurrent callers; the
// program must not gain rules afterwards (the extension paths build new
// Programs, so this holds by construction).
func (p *Program) Condensation() *Condensation {
	if c := p.cond.Load(); c != nil {
		return c
	}
	c := condense(p, true)
	if !p.cond.CompareAndSwap(nil, c) {
		c = p.cond.Load()
	}
	return c
}

// closureCondensation returns a condensation sufficient for the affected
// cone closure (Comp, component sizes, dependent edges): the full one
// when already built, otherwise a cheaper closure-only build (see
// condense) — the per-delta warm start pays for exactly what it reads.
func (p *Program) closureCondensation() *Condensation {
	if c := p.cond.Load(); c != nil {
		return c
	}
	if c := p.condLight.Load(); c != nil {
		return c
	}
	c := condense(p, false)
	if !p.condLight.CompareAndSwap(nil, c) {
		c = p.condLight.Load()
	}
	return c
}

// NumAtoms returns the universe size.
func (p *Program) NumAtoms() int { return len(p.rulesByHead) }

// RulesFor returns the indexes of rules whose head is atom a.
func (p *Program) RulesFor(a int32) []int32 { return p.rulesByHead[a] }

// New builds a program over n atoms from rules. Rule atom indexes must be
// in [0,n).
func New(n int, rules []Rule) *Program {
	p := &Program{Rules: rules}
	p.index(n)
	return p
}

func (p *Program) index(n int) {
	// Count first, then carve the per-atom sublists out of one flat
	// backing array each: building these indexes is the hot path of
	// (re)grounding — a delta retraction rebuilds them wholesale — and
	// per-atom append-grown slices spend more time in the allocator than
	// in indexing.
	headCnt := make([]int32, n)
	posCnt := make([]int32, n)
	negCnt := make([]int32, n)
	nPos, nNeg := 0, 0
	for ri := range p.Rules {
		r := &p.Rules[ri]
		headCnt[r.Head]++
		for _, b := range r.Pos {
			posCnt[b]++
		}
		nPos += len(r.Pos)
		for _, b := range r.Neg {
			negCnt[b]++
		}
		nNeg += len(r.Neg)
	}
	p.rulesByHead = flatIndex(headCnt, len(p.Rules))
	p.posOcc = flatIndex(posCnt, nPos)
	p.negOcc = flatIndex(negCnt, nNeg)
	for ri := range p.Rules {
		r := &p.Rules[ri]
		p.rulesByHead[r.Head] = append(p.rulesByHead[r.Head], int32(ri))
		for _, b := range r.Pos {
			p.posOcc[b] = append(p.posOcc[b], int32(ri))
		}
		for _, b := range r.Neg {
			p.negOcc[b] = append(p.negOcc[b], int32(ri))
		}
	}
}

// flatIndex returns per-atom sublists sharing one exactly-sized backing
// array: each sublist has length 0 and capacity counts[a], so the fill
// loop's appends land in the arena without allocating, and the filled
// sublists end at len == cap — a later copy-on-append extension
// (extendIndex) can never scribble on a neighbour.
func flatIndex(counts []int32, total int) [][]int32 {
	arena := make([]int32, total)
	out := make([][]int32, len(counts))
	off := 0
	for a, c := range counts {
		out[a] = arena[off : off : off+int(c)]
		off += int(c)
	}
	return out
}

// FromChase converts a bounded chase result into a finite ground normal
// program: the derived universe plus every (necessarily ground) negative
// body atom of an instance, with one rule per instance and one fact per
// depth-0 atom.
func FromChase(res *chase.Result) *Program {
	p := &Program{}
	p.ingest(res)
	p.index(len(p.Atoms))
	return p
}

// ExtendFromChase converts res — a chase.Extend continuation of the
// result prev was built from — into a ground program by regrounding only
// the appended suffix: every atom of prev keeps its local index, and new
// atoms, facts, and rule instances are appended. prev is not mutated (its
// index slices are copied on first append), so a model computed over prev
// keeps serving concurrent readers. Passing a prev that did not come from
// FromChase/ExtendFromChase (or a res that is not an extension of it)
// falls back to a full FromChase.
func ExtendFromChase(prev *Program, res *chase.Result) *Program {
	if prev == nil || prev.localIdx == nil ||
		prev.chaseAtoms > len(res.Atoms) || prev.chaseInsts > len(res.Instances) {
		return FromChase(res)
	}
	newInsts := len(res.Instances) - prev.chaseInsts
	// Clone localIdx directly at the extended store's length so ingest
	// does not immediately regrow (and re-copy) it.
	localIdx := make([]int32, max(res.Prog.Store.Len(), len(prev.localIdx)))
	n := copy(localIdx, prev.localIdx)
	for i := n; i < len(localIdx); i++ {
		localIdx[i] = -1
	}
	p := &Program{
		Atoms:      cloneSlack(prev.Atoms, newInsts),
		Rules:      cloneSlack(prev.Rules, newInsts),
		localIdx:   localIdx,
		chaseAtoms: prev.chaseAtoms,
		chaseInsts: prev.chaseInsts,
	}
	firstNewRule := len(p.Rules)
	p.ingest(res)
	p.extendIndex(prev, firstNewRule)
	return p
}

// AppendFacts returns a program extending p with one fact rule per listed
// global atom, leaving p untouched (shared index slices are copied on
// append, as in ExtendFromChase). The delta layer uses it when a database
// addition re-asserts an atom the chase had already derived through rules:
// the atom sits before ExtendFromChase's regrounding cursor, so the
// suffix-only regrounding cannot see its new depth-0 status.
func (p *Program) AppendFacts(facts []atom.AtomID) *Program {
	if len(facts) == 0 {
		return p
	}
	np := &Program{
		Atoms:      cloneSlack(p.Atoms, len(facts)),
		Rules:      cloneSlack(p.Rules, len(facts)),
		localIdx:   append([]int32(nil), p.localIdx...),
		chaseAtoms: p.chaseAtoms,
		chaseInsts: p.chaseInsts,
	}
	firstNew := len(np.Rules)
	for _, g := range facts {
		for int(g) >= len(np.localIdx) {
			np.localIdx = append(np.localIdx, -1)
		}
		i := np.localIdx[g]
		if i < 0 {
			i = int32(len(np.Atoms))
			np.localIdx[g] = i
			np.Atoms = append(np.Atoms, g)
		}
		np.Rules = append(np.Rules, Rule{Head: i})
	}
	np.extendIndex(p, firstNew)
	return np
}

// cloneSlack copies xs into a fresh slice with spare capacity for the
// expected number of appends, so extension never re-copies the prefix.
func cloneSlack[T any](xs []T, slack int) []T {
	out := make([]T, len(xs), len(xs)+slack+16)
	copy(out, xs)
	return out
}

// ingest appends the not-yet-consumed suffix of res (per the
// chaseAtoms/chaseInsts cursors): fact rules for new depth-0 atoms, then
// one rule per new instance, interning unseen global atoms as fresh local
// indexes.
func (p *Program) ingest(res *chase.Result) {
	if storeLen := res.Prog.Store.Len(); storeLen > len(p.localIdx) {
		nl := make([]int32, storeLen)
		n := copy(nl, p.localIdx)
		for i := n; i < storeLen; i++ {
			nl[i] = -1
		}
		p.localIdx = nl
	}
	idx := func(a atom.AtomID) int32 {
		if i := p.localIdx[a]; i >= 0 {
			return i
		}
		i := int32(len(p.Atoms))
		p.localIdx[a] = i
		p.Atoms = append(p.Atoms, a)
		return i
	}
	// Size everything up front: one backing array per body polarity and
	// exactly-grown Atoms/Rules, instead of per-rule allocations — the
	// wholesale reground after a retraction runs through here.
	facts, nPos, nNeg := 0, 0, 0
	for _, a := range res.Atoms[p.chaseAtoms:] {
		if res.Depth(a) == 0 {
			facts++
		}
	}
	for i := p.chaseInsts; i < len(res.Instances); i++ {
		in := &res.Instances[i]
		nPos += len(in.Pos)
		nNeg += len(in.Neg)
	}
	newInsts := len(res.Instances) - p.chaseInsts
	if want := len(res.Atoms) - p.chaseAtoms; cap(p.Atoms)-len(p.Atoms) < want {
		p.Atoms = cloneSlack(p.Atoms, want)
	}
	if want := facts + newInsts; cap(p.Rules)-len(p.Rules) < want {
		p.Rules = cloneSlack(p.Rules, want)
	}
	posArena := make([]int32, 0, nPos)
	negArena := make([]int32, 0, nNeg)
	for _, a := range res.Atoms[p.chaseAtoms:] {
		if res.Depth(a) == 0 {
			p.Rules = append(p.Rules, Rule{Head: idx(a)})
		}
	}
	for i := p.chaseInsts; i < len(res.Instances); i++ {
		in := &res.Instances[i]
		r := Rule{Head: idx(in.Head)}
		mark := len(posArena)
		for _, b := range in.Pos {
			posArena = append(posArena, idx(b))
		}
		r.Pos = posArena[mark:len(posArena):len(posArena)]
		mark = len(negArena)
		for _, b := range in.Neg {
			negArena = append(negArena, idx(b))
		}
		r.Neg = negArena[mark:len(negArena):len(negArena)]
		p.Rules = append(p.Rules, r)
	}
	p.chaseAtoms = len(res.Atoms)
	p.chaseInsts = len(res.Instances)
}

// extendIndex extends prev's rule indexes with the rules appended from
// firstNewRule on. Inner slices are shared with prev until a new rule
// touches them, then copied — never appended to in place, since prev's
// slices may have spare capacity backing prev's own reads.
func (p *Program) extendIndex(prev *Program, firstNewRule int) {
	n := len(p.Atoms)
	p.rulesByHead = make([][]int32, n)
	copy(p.rulesByHead, prev.rulesByHead)
	p.posOcc = make([][]int32, n)
	copy(p.posOcc, prev.posOcc)
	p.negOcc = make([][]int32, n)
	copy(p.negOcc, prev.negOcc)
	ownedHead := make([]bool, n)
	ownedPos := make([]bool, n)
	ownedNeg := make([]bool, n)
	for ri := firstNewRule; ri < len(p.Rules); ri++ {
		r := &p.Rules[ri]
		if !ownedHead[r.Head] {
			p.rulesByHead[r.Head] = append([]int32(nil), p.rulesByHead[r.Head]...)
			ownedHead[r.Head] = true
		}
		p.rulesByHead[r.Head] = append(p.rulesByHead[r.Head], int32(ri))
		for _, b := range r.Pos {
			if !ownedPos[b] {
				p.posOcc[b] = append([]int32(nil), p.posOcc[b]...)
				ownedPos[b] = true
			}
			p.posOcc[b] = append(p.posOcc[b], int32(ri))
		}
		for _, b := range r.Neg {
			if !ownedNeg[b] {
				p.negOcc[b] = append([]int32(nil), p.negOcc[b]...)
				ownedNeg[b] = true
			}
			p.negOcc[b] = append(p.negOcc[b], int32(ri))
		}
	}
}

// Local returns the local index of global atom a, or -1 if a is not in the
// program's universe.
func (p *Program) Local(a atom.AtomID) int32 {
	if int(a) < len(p.localIdx) {
		return p.localIdx[a]
	}
	return -1
}

// Model is a three-valued interpretation of a program: one Truth per local
// atom. By construction a Model is consistent (§2.2): it cannot contain an
// atom and its negation.
type Model struct {
	Prog  *Program
	Truth []Truth
	// Rounds is the number of outer operator applications the computing
	// algorithm needed (the finite counterpart of the paper's possibly
	// transfinite iteration count, Example 9). A modular solve
	// (SolveModular) reports the sum over components — the sequential
	// composition of the per-component iterations along the topological
	// order, the modular analog of the paper's ordinal stages — so the
	// count still grows with the depth of the (truncated) program.
	Rounds int

	// Modular-evaluation statistics, set by SolveModular (zero when a
	// global algorithm ran directly on the program).
	SCCs       int // dependency-graph components
	LargestSCC int // atoms in the largest component
	HardSCCs   int // components with a negation cycle (full WFS fixpoint)
	Workers    int // peak worker goroutines used by the solve

	// Interrupted reports that a cancellation token stopped the solve
	// before the fixpoint: Truth is a partial assignment and the model
	// must not be used for answering (callers convert it to an error).
	Interrupted bool
}

// TruthOf returns the truth of local atom a.
func (m *Model) TruthOf(a int32) Truth { return m.Truth[a] }

// TruthOfGlobal returns the truth of a global atom: False when outside the
// universe (no forward proof within the bound).
func (m *Model) TruthOfGlobal(a atom.AtomID) Truth {
	if i := m.Prog.Local(a); i >= 0 {
		return m.Truth[i]
	}
	return False
}

// CountTrue returns the number of true atoms.
func (m *Model) CountTrue() int { return m.count(True) }

// CountUndefined returns the number of undefined atoms.
func (m *Model) CountUndefined() int { return m.count(Undefined) }

func (m *Model) count(t Truth) int {
	n := 0
	for _, v := range m.Truth {
		if v == t {
			n++
		}
	}
	return n
}

// Equal reports whether two models over the same program agree everywhere.
func (m *Model) Equal(o *Model) bool {
	if len(m.Truth) != len(o.Truth) {
		return false
	}
	for i := range m.Truth {
		if m.Truth[i] != o.Truth[i] {
			return false
		}
	}
	return true
}

// String renders the model as {a, b, ¬c, u?} style sets for debugging.
func (m *Model) String() string {
	var tr, fa, un []string
	for i, t := range m.Truth {
		name := fmt.Sprintf("a%d", i)
		switch t {
		case True:
			tr = append(tr, name)
		case False:
			fa = append(fa, name)
		default:
			un = append(un, name)
		}
	}
	return fmt.Sprintf("true=%s false=%s undef=%s",
		strings.Join(tr, ","), strings.Join(fa, ","), strings.Join(un, ","))
}
