package ground

// Interp is an explicit three-valued interpretation I ⊆ LitP given as two
// disjoint atom sets, used by the standalone §2.6 operators below.
type Interp struct {
	Pos Bits // atoms true in I
	Neg Bits // atoms false in I
}

// NewInterp returns the empty interpretation over n atoms.
func NewInterp(n int) Interp { return Interp{Pos: NewBits(n), Neg: NewBits(n)} }

// GreatestUnfoundedSet computes UP(I), the greatest unfounded set of p
// relative to I (§2.6): the largest U ⊆ HBP such that for every a ∈ U and
// every rule with head a, either (i) some positive body atom is false in
// I ∪ ¬.U, or (ii) some negative body atom is true in I. It is obtained
// as the complement of the least "founded" set.
func GreatestUnfoundedSet(p *Program, i Interp) Bits {
	n := p.NumAtoms()
	blocked := make([]bool, len(p.Rules))
	for ri := range p.Rules {
		r := &p.Rules[ri]
		for _, b := range r.Neg {
			if i.Pos.Get(b) {
				blocked[ri] = true
				break
			}
		}
		if !blocked[ri] {
			for _, b := range r.Pos {
				if i.Neg.Get(b) {
					blocked[ri] = true
					break
				}
			}
		}
	}
	counts := make([]int32, len(p.Rules))
	queue := make([]int32, 0, n)
	founded := p.leastModel(blocked, NewBits(n), counts, queue)
	u := NewBits(n)
	for a := int32(0); int(a) < n; a++ {
		if !founded.Get(a) {
			u.Set(a)
		}
	}
	return u
}

// ImmediateConsequence computes TP(I) (§2.6): the heads of rules whose
// positive bodies are I-true and negative bodies I-false.
func ImmediateConsequence(p *Program, i Interp) Bits {
	out := NewBits(p.NumAtoms())
	for ri := range p.Rules {
		r := &p.Rules[ri]
		ok := true
		for _, b := range r.Pos {
			if !i.Pos.Get(b) {
				ok = false
				break
			}
		}
		if ok {
			for _, b := range r.Neg {
				if !i.Neg.Get(b) {
					ok = false
					break
				}
			}
		}
		if ok {
			out.Set(r.Head)
		}
	}
	return out
}

// WPStep applies the §2.6 operator once: WP(I) = TP(I) ∪ ¬.UP(I).
func WPStep(p *Program, i Interp) Interp {
	return Interp{Pos: ImmediateConsequence(p, i), Neg: GreatestUnfoundedSet(p, i)}
}
