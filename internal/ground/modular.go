package ground

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cancel"
	"repro/internal/trace"
)

// Modular WFS evaluation (the splitting-theorem architecture).
//
// SolveModular condenses the atom dependency graph into strongly
// connected components (Condense), orders them bottom-up, and solves one
// component at a time with the truths of lower components substituted
// in. By the splitting theorem for the well-founded semantics — the same
// argument IncrementalModel's merge rests on — the concatenation of the
// component solutions is exactly the well-founded model of the whole
// program: the atoms below a component form a bottom stratum none of
// whose rules mentions a higher atom.
//
// Two component kinds, two costs:
//
//   - A component with no internal negative edge (no negation cycle, the
//     overwhelmingly common case) is solved by solveCheap: a "definite"
//     least-fixpoint pass using only rules whose resolved body literals
//     are certainly satisfied, and — only when some rule was blocked by
//     an undefined boundary value — a second "possible" pass granting
//     undefined literals. True = definite, Undefined = possible but not
//     definite, False = the rest. No alternating iteration, no copies.
//
//   - A component with an internal negative edge is extracted into a
//     subprogram over its atoms (boundary atoms resolved to their fixed
//     lower truths; undefined boundaries pinned by u ← not u exactly as
//     in IncrementalModel) and handed to the configured full WFS
//     algorithm, whose fixpoint then iterates over the component alone
//     rather than the entire program.
//
// Components on one topological level never depend on each other, so a
// level is solved concurrently by a bounded worker pool; scratch
// (queues, subprogram buffers) lives per worker and is reused across
// components. The shared truth and rule-counter arrays need no locks:
// rules and atoms partition by component, components on one level are
// claimed by exactly one worker each, and cross-level visibility is
// ordered by the pool's WaitGroup barrier.
// maxParallelism caps the worker pool regardless of the requested
// parallelism: the option is client-reachable through the server's
// session options, and worker scratch is allocated per worker, so an
// absurd request must degrade to a big pool rather than an allocation
// the size of the request.
const maxParallelism = 256

func SolveModular(p *Program, solve func(*Program) *Model, parallelism int) *Model {
	return SolveModularTraced(p, solve, parallelism, nil)
}

// topSlowestSCCs bounds how many per-component timings a detailed trace
// keeps: real condensations have tens of thousands of components, and
// only the slowest few explain where the solve went.
const topSlowestSCCs = 8

// compTimer collects per-component solve timings when a detailed trace
// asks for them. It is shared by all workers of one solve, so observation
// takes a mutex — acceptable because the timer exists only for explicitly
// traced queries, never on the default path (tr nil or not Detailed).
type compTimer struct {
	mu      sync.Mutex
	entries []compEntry
}

type compEntry struct {
	ci    int32
	atoms int
	hard  bool
	d     time.Duration
}

func (t *compTimer) observe(e compEntry) {
	t.mu.Lock()
	t.entries = append(t.entries, e)
	t.mu.Unlock()
}

// attachTop folds the collected timings into tr: the k slowest components
// become child spans named scc-<id> carrying their size.
func (t *compTimer) attachTop(tr *trace.Span, k int) {
	sort.Slice(t.entries, func(i, j int) bool { return t.entries[i].d > t.entries[j].d })
	if len(t.entries) > k {
		t.entries = t.entries[:k]
	}
	for _, e := range t.entries {
		counters := map[string]int64{"atoms": int64(e.atoms)}
		if e.hard {
			counters["hard"] = 1
		}
		tr.AttachTimed(fmt.Sprintf("scc-%d", e.ci), e.d, counters)
	}
}

// timedSolveComp is solveComp plus the optional per-component timing of a
// detailed trace; tm nil is the zero-cost default.
func timedSolveComp(p *Program, cond *Condensation, ci int32,
	truth []Truth, counts []int32, sc *modScratch, solve func(*Program) *Model, tm *compTimer) int {
	if tm == nil {
		return solveComp(p, cond, ci, truth, counts, sc, solve)
	}
	start := time.Now()
	rounds := solveComp(p, cond, ci, truth, counts, sc, solve)
	tm.observe(compEntry{ci: ci, atoms: len(cond.AtomsOf(ci)), hard: cond.NegCycle[ci], d: time.Since(start)})
	return rounds
}

// SolveModularTraced is SolveModular with observability: a condense child
// span, SCC-shape counters on tr, and — only when tr is Detailed — the
// top-k slowest components attached as child spans. tr nil degrades to
// the plain solve.
func SolveModularTraced(p *Program, solve func(*Program) *Model, parallelism int, tr *trace.Span) *Model {
	return SolveModularCancelTraced(p, solve, parallelism, nil, tr)
}

// SolveModularCancelTraced is SolveModularTraced under a cancellation
// token (nil = never cancelled). The token is polled at component
// granularity — the sequential loop, each worker's claim loop, and the
// level barrier — so a cancel stops the solve within one component's
// work; a stopped solve returns with Interrupted set and a partial truth
// assignment that callers must discard.
func SolveModularCancelTraced(p *Program, solve func(*Program) *Model, parallelism int, tok *cancel.Token, tr *trace.Span) *Model {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > maxParallelism {
		parallelism = maxParallelism
	}
	n := p.NumAtoms()
	endCondense := tr.Phase("condense")
	cond := p.Condensation()
	endCondense()
	ncomp := cond.NumComps()
	var tm *compTimer
	if tr.Detailed() {
		tm = &compTimer{}
	}
	tr.SetCount("sccs", int64(ncomp))
	tr.SetCount("largest_scc", int64(cond.LargestComp))
	tr.SetCount("hard_sccs", int64(cond.NumHard))
	if ncomp <= 1 || cond.LargestComp*2 >= n {
		// Degenerate condensation: an empty program, one giant component,
		// or a component spanning at least half the program. Decomposing
		// the rest cannot recoup the subprogram extraction for the big
		// component, so run the algorithm directly — this keeps the
		// modular path within noise of the global solve on
		// single-component workloads (win-move cycles and the like).
		if tok.Cancelled() {
			return &Model{Prog: p, Truth: make([]Truth, n), Interrupted: true,
				SCCs: ncomp, LargestSCC: cond.LargestComp, HardSCCs: cond.NumHard, Workers: 1}
		}
		endSolve := tr.Phase("solve")
		m := solve(p)
		endSolve()
		m.SCCs = ncomp
		m.LargestSCC = cond.LargestComp
		m.HardSCCs = cond.NumHard
		m.Workers = 1
		return m
	}

	m := &Model{
		Prog:       p,
		Truth:      make([]Truth, n),
		SCCs:       ncomp,
		LargestSCC: cond.LargestComp,
		HardSCCs:   cond.NumHard,
		Workers:    1,
	}
	counts := make([]int32, len(p.Rules))

	solveSpan := tr.Child("solve")
	defer func() {
		if tm != nil {
			tm.attachTop(solveSpan, topSlowestSCCs)
		}
		solveSpan.End()
	}()

	if parallelism == 1 {
		// Sequential: component IDs are already a bottom-up order, no
		// levels or barriers needed. The token is polled per component —
		// one atomic load against a component's whole solve.
		sc := &modScratch{}
		rounds := 0
		for ci := int32(0); int(ci) < ncomp; ci++ {
			if tok.Cancelled() {
				m.Interrupted = true
				break
			}
			rounds += timedSolveComp(p, cond, ci, m.Truth, counts, sc, solve, tm)
		}
		m.Rounds = rounds
		tr.SetCount("rounds", int64(rounds))
		return m
	}

	// Persistent worker pool: the pool goroutines are spawned once, on
	// the first multi-component level, and fed one levelWork per level
	// through buffered channels — a condensation's level count tracks
	// the longest derivation chain, so spawning fresh goroutines per
	// level would pay thousands of create/join cycles per solve. The
	// coordinator participates as worker 0 and the WaitGroup is the
	// level barrier: worker truth/counts writes at level k
	// happen-before every level-k+1 read via Done→Wait→send.
	scratches := make([]modScratch, parallelism)
	var rounds atomic.Int64
	type levelWork struct {
		comps []int32
		next  *atomic.Int32
		wg    *sync.WaitGroup
	}
	var feeds []chan levelWork
	defer func() {
		for _, f := range feeds {
			close(f)
		}
	}()
	for lvl := 0; lvl < cond.NumLevels(); lvl++ {
		if tok.Cancelled() {
			// Workers idle between levels (blocked on their feed channel),
			// so stopping at the barrier leaks nothing; the deferred close
			// of the feeds retires them.
			m.Interrupted = true
			break
		}
		comps := cond.CompsAtLevel(lvl)
		if len(comps) == 1 {
			rounds.Add(int64(timedSolveComp(p, cond, comps[0], m.Truth, counts, &scratches[0], solve, tm)))
			continue
		}
		if nw := min(parallelism, len(comps)); nw > m.Workers {
			m.Workers = nw
		}
		if feeds == nil {
			feeds = make([]chan levelWork, parallelism-1)
			for w := range feeds {
				feeds[w] = make(chan levelWork, 1)
				go func(f chan levelWork, sc *modScratch) {
					for lw := range f {
						rounds.Add(int64(runLevel(p, cond, lw.comps, lw.next, m.Truth, counts, sc, solve, tm, tok)))
						lw.wg.Done()
					}
				}(feeds[w], &scratches[w+1])
			}
		}
		var next atomic.Int32
		var wg sync.WaitGroup
		wg.Add(len(feeds))
		lw := levelWork{comps: comps, next: &next, wg: &wg}
		for _, f := range feeds {
			f <- lw
		}
		rounds.Add(int64(runLevel(p, cond, comps, &next, m.Truth, counts, &scratches[0], solve, tm, tok)))
		wg.Wait()
	}
	if !m.Interrupted && tok.Cancelled() {
		// A cancel during the final level left claims unprocessed; the
		// token is sticky, so checking after the barrier is reliable.
		m.Interrupted = true
	}
	m.Rounds = int(rounds.Load())
	tr.SetCount("rounds", int64(m.Rounds))
	tr.SetCount("workers", int64(m.Workers))
	return m
}

// runLevel claims components of one topological level off the shared
// cursor until the level is exhausted (or the token trips), returning
// the rounds spent.
func runLevel(p *Program, cond *Condensation, comps []int32, next *atomic.Int32,
	truth []Truth, counts []int32, sc *modScratch, solve func(*Program) *Model, tm *compTimer, tok *cancel.Token) int {
	rounds := 0
	for {
		if tok.Cancelled() {
			return rounds
		}
		i := int(next.Add(1)) - 1
		if i >= len(comps) {
			return rounds
		}
		rounds += timedSolveComp(p, cond, comps[i], truth, counts, sc, solve, tm)
	}
}

// modScratch is one worker's reusable buffers: the derivation queue of
// the cheap path and the subprogram-building state of the hard path.
// Reuse across components is safe because a component's submodel is
// consumed (truths copied out) before the next component is built.
type modScratch struct {
	queue []int32

	bmap     map[int32]int32 // boundary atom → pinned sub index
	bAtoms   []int32
	subRules []Rule
	posArena []int32
	negArena []int32
}

// solveComp evaluates one component against the already-solved truths of
// its dependencies, writing the component atoms' truths in place, and
// returns the fixpoint rounds it spent.
func solveComp(p *Program, cond *Condensation, ci int32,
	truth []Truth, counts []int32, sc *modScratch, solve func(*Program) *Model) int {
	if cond.NegCycle[ci] {
		return solveHard(p, cond, ci, truth, sc, solve)
	}
	if len(cond.AtomsOf(ci)) == 1 {
		return solveSingleton(p, cond, ci, truth)
	}
	return solveCheap(p, cond, ci, truth, counts, sc)
}

// solveSingleton is solveCheap specialized to one-atom components — the
// overwhelming bulk of real condensations (every EDB fact, every atom on
// an acyclic derivation chain) — with no queue, counters, or closures:
// the atom is True if some rule fires on definitely-satisfied resolved
// literals, Undefined if one fires when undefined literals are granted,
// False otherwise. A positive self-literal (the only possible internal
// edge here; a negative one would make the component hard) can never
// fire first in a least fixpoint over the single atom, so its rule is
// skipped.
func solveSingleton(p *Program, cond *Condensation, ci int32, truth []Truth) int {
	a := cond.AtomsOf(ci)[0]
	possible := false
	for _, ri := range cond.RulesOf(ci) {
		r := &p.Rules[ri]
		definite, ok := true, true
		for _, b := range r.Pos {
			if b == a {
				ok = false // self-positive: unfirable in the least fixpoint
				break
			}
			switch truth[b] {
			case True:
			case Undefined:
				definite = false
			default:
				ok = false
			}
			if !ok {
				break
			}
		}
		if ok {
			for _, b := range r.Neg {
				switch truth[b] {
				case False:
				case Undefined:
					definite = false
				default:
					ok = false
				}
				if !ok {
					break
				}
			}
		}
		if !ok {
			continue
		}
		if definite {
			truth[a] = True
			return 1
		}
		possible = true
	}
	if possible {
		truth[a] = Undefined
	}
	return 1
}

// solveCheap solves a component with no internal negation cycle. Every
// negative body atom of its rules lives in a lower component (an internal
// one would be a negation cycle), so negative literals are constants
// here, and the component's well-founded truths are the definite/possible
// least-fixpoint pair described on SolveModular.
func solveCheap(p *Program, cond *Condensation, ci int32,
	truth []Truth, counts []int32, sc *modScratch) int {
	rules := cond.RulesOf(ci)
	queue := sc.queue[:0]
	derive := func(a int32) {
		if truth[a] != True {
			truth[a] = True
			queue = append(queue, a)
		}
	}
	// Definite pass: a rule fires only when every resolved literal is
	// certainly satisfied (positive boundary True, negative boundary
	// False); internal positive literals count down as usual.
	upperNeeded := false
	for _, ri := range rules {
		r := &p.Rules[ri]
		cnt := int32(0)
		definite, possible := true, true
		for _, b := range r.Pos {
			if cond.Comp[b] == ci {
				cnt++
				continue
			}
			switch truth[b] {
			case True:
			case Undefined:
				definite = false
			default:
				definite, possible = false, false
			}
		}
		if possible {
			for _, b := range r.Neg {
				switch truth[b] {
				case False:
				case Undefined:
					definite = false
				default:
					definite, possible = false, false
				}
			}
		}
		if !definite {
			counts[ri] = -1
			if possible {
				upperNeeded = true
			}
			continue
		}
		counts[ri] = cnt
		if cnt == 0 {
			derive(r.Head)
		}
	}
	for len(queue) > 0 {
		a := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, ri := range p.posOcc[a] {
			if cond.Comp[p.Rules[ri].Head] != ci || counts[ri] < 0 {
				continue
			}
			counts[ri]--
			if counts[ri] == 0 {
				derive(p.Rules[ri].Head)
			}
		}
	}
	sc.queue = queue[:0]
	if !upperNeeded {
		// No rule was blocked by an undefined boundary: the possible pass
		// would derive exactly the definite atoms, so everything not
		// derived is certainly False (its zero value).
		return 1
	}

	// Possible pass: grant undefined boundary literals. Anything
	// derivable here but not definitely derivable is Undefined.
	queue = sc.queue[:0]
	deriveU := func(a int32) {
		if truth[a] == False {
			truth[a] = Undefined
			queue = append(queue, a)
		}
	}
	for _, ri := range rules {
		r := &p.Rules[ri]
		cnt := int32(0)
		possible := true
		for _, b := range r.Pos {
			if cond.Comp[b] == ci {
				cnt++
			} else if truth[b] == False {
				possible = false
				break
			}
		}
		if possible {
			for _, b := range r.Neg {
				if truth[b] == True {
					possible = false
					break
				}
			}
		}
		if !possible {
			counts[ri] = -1
			continue
		}
		counts[ri] = cnt
	}
	// Definitely-true atoms are derivable in the possible pass too; seed
	// them so their occurrences count down, then fire the zero-count
	// rules.
	for _, a := range cond.AtomsOf(ci) {
		if truth[a] == True {
			queue = append(queue, a)
		}
	}
	for _, ri := range rules {
		if counts[ri] == 0 {
			deriveU(p.Rules[ri].Head)
		}
	}
	for len(queue) > 0 {
		a := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, ri := range p.posOcc[a] {
			if cond.Comp[p.Rules[ri].Head] != ci || counts[ri] < 0 {
				continue
			}
			counts[ri]--
			if counts[ri] == 0 {
				deriveU(p.Rules[ri].Head)
			}
		}
	}
	sc.queue = queue[:0]
	return 2
}

// solveHard extracts a negation-cyclic component into a subprogram over
// its atoms — boundary literals resolved against the already-computed
// lower truths, undefined boundaries pinned by u ← not u, exactly the
// IncrementalModel construction — and runs the configured full WFS
// algorithm on it.
func solveHard(p *Program, cond *Condensation, ci int32,
	truth []Truth, sc *modScratch, solve func(*Program) *Model) int {
	atoms := cond.AtomsOf(ci)
	k := int32(len(atoms))
	if sc.bmap == nil {
		sc.bmap = make(map[int32]int32)
	} else {
		clear(sc.bmap)
	}
	sc.bAtoms = sc.bAtoms[:0]
	sc.subRules = sc.subRules[:0]
	sc.posArena = sc.posArena[:0]
	sc.negArena = sc.negArena[:0]
	boundary := func(b int32) int32 {
		si, ok := sc.bmap[b]
		if !ok {
			si = k + int32(len(sc.bAtoms))
			sc.bmap[b] = si
			sc.bAtoms = append(sc.bAtoms, b)
		}
		return si
	}
	for _, ri := range cond.RulesOf(ci) {
		r := &p.Rules[ri]
		nr := Rule{Head: cond.PosInComp[r.Head]}
		keep := true
		posMark := len(sc.posArena)
		for _, b := range r.Pos {
			if cond.Comp[b] == ci {
				sc.posArena = append(sc.posArena, cond.PosInComp[b])
				continue
			}
			switch truth[b] {
			case True: // satisfied: drop the literal
			case False:
				keep = false
			default:
				sc.posArena = append(sc.posArena, boundary(b))
			}
			if !keep {
				break
			}
		}
		negMark := len(sc.negArena)
		if keep {
			for _, b := range r.Neg {
				if cond.Comp[b] == ci {
					sc.negArena = append(sc.negArena, cond.PosInComp[b])
					continue
				}
				switch truth[b] {
				case True:
					keep = false
				case False: // satisfied: drop the literal
				default:
					sc.negArena = append(sc.negArena, boundary(b))
				}
				if !keep {
					break
				}
			}
		}
		if !keep {
			sc.posArena = sc.posArena[:posMark]
			sc.negArena = sc.negArena[:negMark]
			continue
		}
		nr.Pos = sc.posArena[posMark:len(sc.posArena):len(sc.posArena)]
		nr.Neg = sc.negArena[negMark:len(sc.negArena):len(sc.negArena)]
		sc.subRules = append(sc.subRules, nr)
	}
	// Pin each undefined boundary atom to its value with u ← not u.
	for i := range sc.bAtoms {
		si := k + int32(i)
		mark := len(sc.negArena)
		sc.negArena = append(sc.negArena, si)
		sc.subRules = append(sc.subRules, Rule{Head: si, Neg: sc.negArena[mark : mark+1 : mark+1]})
	}
	sm := solve(New(int(k)+len(sc.bAtoms), sc.subRules))
	for i, a := range atoms {
		truth[a] = sm.Truth[i]
	}
	return sm.Rounds
}
