package ground

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// mk builds a program over n atoms with the given rules.
func mk(n int, rules ...Rule) *Program { return New(n, rules) }

func TestPositiveProgramIsLeastModel(t *testing.T) {
	// facts: a0; rules: a1 ← a0; a2 ← a1, a0; a3 ← a4 (unsupported).
	p := mk(5,
		Rule{Head: 0},
		Rule{Head: 1, Pos: []int32{0}},
		Rule{Head: 2, Pos: []int32{1, 0}},
		Rule{Head: 3, Pos: []int32{4}},
	)
	m := AlternatingFixpoint(p)
	want := []Truth{True, True, True, False, False}
	for i, w := range want {
		if m.Truth[i] != w {
			t.Errorf("a%d = %v, want %v", i, m.Truth[i], w)
		}
	}
	if m.CountUndefined() != 0 {
		t.Errorf("positive program has undefined atoms")
	}
}

func TestNegationSimple(t *testing.T) {
	// a0 fact; a1 ← ¬a2; a2 has no rules (false): a1 true.
	p := mk(3,
		Rule{Head: 0},
		Rule{Head: 1, Neg: []int32{2}},
	)
	m := AlternatingFixpoint(p)
	if m.Truth[0] != True || m.Truth[1] != True || m.Truth[2] != False {
		t.Errorf("model = %v", m.Truth)
	}
}

func TestOddLoopUndefined(t *testing.T) {
	// a0 ← ¬a0: undefined.
	p := mk(1, Rule{Head: 0, Neg: []int32{0}})
	m := AlternatingFixpoint(p)
	if m.Truth[0] != Undefined {
		t.Errorf("a0 = %v, want undefined", m.Truth[0])
	}
}

func TestEvenLoopUndefined(t *testing.T) {
	// a0 ← ¬a1; a1 ← ¬a0: both undefined in WFS (two stable models).
	p := mk(2,
		Rule{Head: 0, Neg: []int32{1}},
		Rule{Head: 1, Neg: []int32{0}},
	)
	m := AlternatingFixpoint(p)
	if m.Truth[0] != Undefined || m.Truth[1] != Undefined {
		t.Errorf("model = %v", m.Truth)
	}
	sms := StableModels(p)
	if len(sms) != 2 {
		t.Errorf("stable models = %d, want 2", len(sms))
	}
	if !ApproximatesStable(p, m) {
		t.Errorf("WFS does not approximate the stable models")
	}
}

func TestPositiveLoopFalse(t *testing.T) {
	// a0 ← a1; a1 ← a0: unfounded, both false.
	p := mk(2,
		Rule{Head: 0, Pos: []int32{1}},
		Rule{Head: 1, Pos: []int32{0}},
	)
	m := AlternatingFixpoint(p)
	if m.Truth[0] != False || m.Truth[1] != False {
		t.Errorf("positive loop not unfounded: %v", m.Truth)
	}
}

func TestUnfoundedSetDetectsLoopUnderNegation(t *testing.T) {
	// a0 ← a1, ¬a2; a1 ← a0; a2 fact: everything about the loop false.
	p := mk(3,
		Rule{Head: 0, Pos: []int32{1}, Neg: []int32{2}},
		Rule{Head: 1, Pos: []int32{0}},
		Rule{Head: 2},
	)
	for name, m := range map[string]*Model{
		"alternating": AlternatingFixpoint(p),
		"unfounded":   UnfoundedIteration(p),
		"forward":     ForwardProofIteration(p),
	} {
		if m.Truth[0] != False || m.Truth[1] != False || m.Truth[2] != True {
			t.Errorf("%s: model = %v", name, m.Truth)
		}
	}
}

func TestVanGelderExample(t *testing.T) {
	// The classic: p ← ¬q; q ← ¬p; r ← p; r ← q; s ← r; plus t ← ¬t.
	// p, q, r, s all undefined; t undefined.
	p := mk(5,
		Rule{Head: 0, Neg: []int32{1}},
		Rule{Head: 1, Neg: []int32{0}},
		Rule{Head: 2, Pos: []int32{0}},
		Rule{Head: 2, Pos: []int32{1}},
		Rule{Head: 3, Pos: []int32{2}},
		Rule{Head: 4, Neg: []int32{4}},
	)
	m := AlternatingFixpoint(p)
	for i := 0; i < 5; i++ {
		if m.Truth[i] != Undefined {
			t.Errorf("a%d = %v, want undefined", i, m.Truth[i])
		}
	}
	// r is true in both stable models ({p,r,s},{q,r,s}) but WFS leaves it
	// undefined — the approximation is strict here; ApproximatesStable
	// must still hold.
	if !ApproximatesStable(p, m) {
		t.Errorf("approximation violated")
	}
}

func TestRoundsReported(t *testing.T) {
	p := mk(2, Rule{Head: 0}, Rule{Head: 1, Neg: []int32{0}})
	if m := AlternatingFixpoint(p); m.Rounds < 1 {
		t.Errorf("Rounds = %d", m.Rounds)
	}
}

func TestDuplicateBodyAtoms(t *testing.T) {
	// a1 ← a0, a0 (duplicate positive occurrences must both count down).
	p := mk(2,
		Rule{Head: 0},
		Rule{Head: 1, Pos: []int32{0, 0}},
	)
	m := AlternatingFixpoint(p)
	if m.Truth[1] != True {
		t.Errorf("duplicate body atoms broke the counting fixpoint: %v", m.Truth)
	}
}

func TestModelEqualAndCounts(t *testing.T) {
	p := mk(3, Rule{Head: 0}, Rule{Head: 1, Neg: []int32{1}})
	m1 := AlternatingFixpoint(p)
	m2 := UnfoundedIteration(p)
	if !m1.Equal(m2) {
		t.Fatalf("engines disagree: %v vs %v", m1.Truth, m2.Truth)
	}
	if m1.CountTrue() != 1 || m1.CountUndefined() != 1 {
		t.Errorf("counts wrong: true=%d undef=%d", m1.CountTrue(), m1.CountUndefined())
	}
}

// TestThreeEnginesAgreeRandom is the central cross-check: on randomized
// ground normal programs the alternating fixpoint, the literal WP
// iteration, and the ŴP forward-proof iteration compute the same model
// (Theorem 8 and the classical equivalences).
func TestThreeEnginesAgreeRandom(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(42))}
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := RandomProgram(rng, 3+rng.Intn(12), 3+rng.Intn(25), 3, 3, rng.Intn(3))
		m1 := AlternatingFixpoint(p)
		m2 := UnfoundedIteration(p)
		m3 := ForwardProofIteration(p)
		return m1.Equal(m2) && m1.Equal(m3)
	}, cfg); err != nil {
		t.Error(err)
	}
}

// TestWFSApproximatesStableRandom: on tiny random programs, every
// WFS-true atom is in every stable model and every WFS-false atom in none.
func TestWFSApproximatesStableRandom(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := RandomProgram(rng, 2+rng.Intn(7), 2+rng.Intn(10), 2, 2, rng.Intn(2))
		return ApproximatesStable(p, AlternatingFixpoint(p))
	}, cfg); err != nil {
		t.Error(err)
	}
}

// TestPositiveRandomTwoValued: positive random programs are two-valued
// and their true set is the least model.
func TestPositiveRandomTwoValued(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := RandomProgram(rng, 3+rng.Intn(12), 3+rng.Intn(20), 3, 0, 1+rng.Intn(3))
		m := AlternatingFixpoint(p)
		return m.CountUndefined() == 0
	}, cfg); err != nil {
		t.Error(err)
	}
}

// TestStratifiedCoincidesWithWFSRandom: random stratified programs
// (negation only toward strictly lower atom indexes, positive bodies
// arbitrary... to keep it stratified we order positives too) have a
// two-valued WFS, and the modular condensation solve — the evaluation
// path the strat baseline now builds on — computes exactly it with zero
// hard (negation-cyclic) components.
func TestStratifiedCoincidesWithWFSRandom(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(13))}
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(10)
		var rules []Rule
		for i := 0; i < 3+rng.Intn(15); i++ {
			h := int32(1 + rng.Intn(n-1))
			r := Rule{Head: h}
			for j := rng.Intn(3); j > 0; j-- {
				r.Pos = append(r.Pos, int32(rng.Intn(int(h)+1))) // ≤ h: same stratum ok
			}
			for j := rng.Intn(3); j > 0; j-- {
				r.Neg = append(r.Neg, int32(rng.Intn(int(h)))) // < h: lower stratum
			}
			rules = append(rules, r)
		}
		rules = append(rules, Rule{Head: 0})
		p := New(n, rules)
		wfs := AlternatingFixpoint(p)
		perfect := SolveModular(p, AlternatingFixpoint, 1)
		if wfs.CountUndefined() != 0 || perfect.CountUndefined() != 0 {
			return false
		}
		if perfect.SCCs > 1 && perfect.HardSCCs != 0 {
			return false // stratified ⇒ no negation cycles
		}
		return wfs.Equal(perfect)
	}, cfg); err != nil {
		t.Error(err)
	}
}

// TestConsistencyRandom: the computed model never assigns an atom both
// values — structurally guaranteed for the alternating fixpoint, and the
// unfounded-set engine panics on a TP/UP clash, so surviving the run is
// the assertion.
func TestConsistencyRandom(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(17))}
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := RandomProgram(rng, 3+rng.Intn(10), 3+rng.Intn(20), 3, 3, rng.Intn(3))
		UnfoundedIteration(p) // panics on inconsistency
		// True and undefined partition with false by construction:
		m := AlternatingFixpoint(p)
		return m.CountTrue()+m.CountUndefined() <= p.NumAtoms()
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestStableModelsOracle(t *testing.T) {
	// p ← ¬q; q ← ¬p has exactly the stable models {p} and {q}.
	p := mk(2,
		Rule{Head: 0, Neg: []int32{1}},
		Rule{Head: 1, Neg: []int32{0}},
	)
	sms := StableModels(p)
	if len(sms) != 2 {
		t.Fatalf("stable models = %d, want 2", len(sms))
	}
	// p ← ¬p has none.
	odd := mk(1, Rule{Head: 0, Neg: []int32{0}})
	if sms := StableModels(odd); len(sms) != 0 {
		t.Errorf("odd loop has %d stable models, want 0", len(sms))
	}
	// A definite program has exactly one (its least model).
	def := mk(2, Rule{Head: 0}, Rule{Head: 1, Pos: []int32{0}})
	if sms := StableModels(def); len(sms) != 1 || !sms[0][0] || !sms[0][1] {
		t.Errorf("definite program stable models wrong: %v", sms)
	}
}

func TestStableModelsSizeGuard(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("oversized StableModels call did not panic")
		}
	}()
	StableModels(New(25, nil))
}

func TestBits(t *testing.T) {
	b := NewBits(130)
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if !b.Get(0) || !b.Get(64) || !b.Get(129) || b.Get(1) {
		t.Errorf("bit ops wrong")
	}
	if b.Count() != 3 {
		t.Errorf("Count = %d, want 3", b.Count())
	}
	c := b.Clone()
	if !c.Equal(b) {
		t.Errorf("clone not equal")
	}
	b.Clear(64)
	if b.Get(64) || c.Equal(b) {
		t.Errorf("Clear leaked into clone or failed")
	}
	b.Reset()
	if b.Count() != 0 {
		t.Errorf("Reset failed")
	}
}

func TestTruthString(t *testing.T) {
	if True.String() != "true" || False.String() != "false" || Undefined.String() != "undefined" {
		t.Errorf("Truth strings wrong")
	}
}

// TestRemainderAgreesRandom cross-checks the Brass–Dix remainder against
// the alternating fixpoint on randomized programs.
func TestRemainderAgreesRandom(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(47))}
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := RandomProgram(rng, 3+rng.Intn(12), 3+rng.Intn(25), 3, 3, rng.Intn(3))
		return AlternatingFixpoint(p).Equal(Remainder(p))
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestRemainderByHand(t *testing.T) {
	// a0 fact; a1 ← ¬a2; a2 ← ¬a1 (even loop: undefined);
	// a3 ← a0, ¬a4; a4 no rules (failed): a3 true;
	// a5 ← a6; a6 ← a5 (positive loop: false).
	p := mk(7,
		Rule{Head: 0},
		Rule{Head: 1, Neg: []int32{2}},
		Rule{Head: 2, Neg: []int32{1}},
		Rule{Head: 3, Pos: []int32{0}, Neg: []int32{4}},
		Rule{Head: 5, Pos: []int32{6}},
		Rule{Head: 6, Pos: []int32{5}},
	)
	m := Remainder(p)
	want := []Truth{True, Undefined, Undefined, True, False, False, False}
	for i, w := range want {
		if m.Truth[i] != w {
			t.Errorf("a%d = %v, want %v", i, m.Truth[i], w)
		}
	}
}
