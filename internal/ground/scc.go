package ground

import "sync"

// Condensation of the ground program's atom dependency graph.
//
// The dependency graph has one node per atom and, for every rule, an edge
// from the head to each body atom (positive and negative alike): the head
// depends on its body. Tarjan's algorithm condenses it into strongly
// connected components; because Tarjan emits a component only after every
// component reachable from it, the emission order lists dependencies
// before dependents, so component IDs are already a bottom-up evaluation
// order (the splitting-theorem order SolveModular and IncrementalModel
// rely on).
//
// A component with no internal negative edge cannot lie on a negation
// cycle — a negative edge inside an SCC is on a cycle by definition — so
// its well-founded truths follow from the boundary values in a single
// definite/possible least-fixpoint pair (see solveCheap). Only components
// with an internal negative edge ("hard" components) need a genuine WFS
// fixpoint.
//
// All grouped data (a component's atoms and rules, a component's
// dependents, a level's components) is stored in CSR form — one flat
// pointer-free int32 array plus offsets, read through the *Of accessors —
// rather than as slices of slices: a condensation is rebuilt per
// regrounding (every delta), and tens of thousands of slice headers are
// exactly the allocation and GC-scan load the arena-backed grounding
// paths were built to avoid.
type Condensation struct {
	// Comp maps each atom to its component; components are numbered in
	// topological order, dependencies first.
	Comp []int32
	// PosInComp maps each atom to its position within AtomsOf(Comp[a]):
	// the dense local index the modular solver grounds subprograms with.
	PosInComp []int32
	// NegCycle marks components with an internal negative edge (a rule
	// whose head and some negative body atom share the component).
	NegCycle []bool
	// Level is the topological level: 0 for components with no
	// dependencies, otherwise 1 + the maximum level of any dependency.
	// Components on one level never depend on each other (a dependency
	// forces a strictly smaller level), so a level is a parallel batch.
	Level []int32
	// LargestComp is the size (in atoms) of the largest component.
	LargestComp int
	// NumHard counts components with NegCycle set.
	NumHard int

	atomOff, atomList []int32 // AtomsOf: component → its atoms
	ruleOff, ruleList []int32 // RulesOf: component → rules headed in it
	depOff, depList   []int32 // DependentsOf: component → distinct dependents
	lvlOff, lvlList   []int32 // CompsAtLevel: level → its components
}

// NumComps returns the number of components.
func (c *Condensation) NumComps() int { return len(c.atomOff) - 1 }

// CompSize returns the number of atoms in component ci.
func (c *Condensation) CompSize(ci int32) int {
	return int(c.atomOff[ci+1] - c.atomOff[ci])
}

// NumLevels returns the number of topological levels.
func (c *Condensation) NumLevels() int { return len(c.lvlOff) - 1 }

// AtomsOf lists component ci's atoms, indexed by PosInComp.
func (c *Condensation) AtomsOf(ci int32) []int32 {
	return c.atomList[c.atomOff[ci]:c.atomOff[ci+1]]
}

// RulesOf lists the rules whose head lies in component ci.
func (c *Condensation) RulesOf(ci int32) []int32 {
	return c.ruleList[c.ruleOff[ci]:c.ruleOff[ci+1]]
}

// DependentsOf lists the components depending on ci — the forward edges
// IncrementalModel closes affected seeds through. In a full condensation
// the list is deduplicated and sorted; in a closure-only one
// (Program.closureCondensation) it may repeat a dependent once per
// dependency edge, which the marking BFS consumer absorbs for free.
func (c *Condensation) DependentsOf(ci int32) []int32 {
	return c.depList[c.depOff[ci]:c.depOff[ci+1]]
}

// CompsAtLevel lists the components of one topological level.
func (c *Condensation) CompsAtLevel(l int) []int32 {
	return c.lvlList[c.lvlOff[l]:c.lvlOff[l+1]]
}

// prefixCSR turns per-key counts (in place) into CSR start offsets: on
// return counts[k] is the start offset of key k (usable as the fill
// cursor) and off[k]/off[k+1] bound key k's range. off must have
// len(counts)+1 entries.
func prefixCSR(counts, off []int32) {
	sum := int32(0)
	for k, c := range counts {
		off[k] = sum
		counts[k] = sum
		sum += c
	}
	off[len(counts)] = sum
}

// condScratch is the transient working memory of one Condense call —
// adjacency, Tarjan state, and the dependent-edge buffer — recycled
// through a pool so per-regrounding condensations allocate (and zero)
// only what they retain.
type condScratch struct {
	buf     []int32
	onstack Bits
}

var condScratchPool = sync.Pool{New: func() any { return &condScratch{} }}

// Condense builds the full condensation of p's atom dependency graph. It
// is a pure function of the program; Program.Condensation caches it.
func Condense(p *Program) *Condensation { return condense(p, true) }

// condense builds a condensation. full selects everything the modular
// solver consumes; !full builds only what the incremental closure needs —
// Comp, component sizes, and (possibly duplicated) dependent edges —
// skipping the atom/rule grouping scatters, negation-cycle detection, and
// the level schedule, which roughly halves the per-delta cost.
//
// A condensation is rebuilt for every regrounding — each applied delta —
// so construction is allocation-lean: all transient working memory comes
// from a pooled arena, the retained arrays are carved out of one exactly
// bounded arena, and the dependent edges recorded during the counting
// sweep are scattered from a buffer instead of re-scanning the rules.
func condense(p *Program, full bool) *Condensation {
	n := p.NumAtoms()
	if n == 0 {
		z := []int32{0}
		return &Condensation{atomOff: z, ruleOff: z, depOff: z, lvlOff: []int32{0, 0}}
	}
	nr := len(p.Rules)
	ne := 0
	for ri := range p.Rules {
		ne += len(p.Rules[ri].Pos) + len(p.Rules[ri].Neg)
	}
	// Retained arena (worst-case bounds: ncomp ≤ n, maxLevel+1 ≤ ncomp,
	// dependent edges ≤ ne).
	arenaSize := 9*n + nr + ne + 6
	if !full {
		arenaSize = 3*n + ne + 3 // Comp, atomOff, depOff, depList
	}
	arena := make([]int32, arenaSize)
	take := func(k int) []int32 {
		s := arena[:k:k]
		arena = arena[k:]
		return s
	}
	// Pooled scratch: deg, adj, Tarjan state, dependent-edge buffers.
	sc := condScratchPool.Get().(*condScratch)
	defer condScratchPool.Put(sc)
	if need := 7*n + 1 + 3*ne; cap(sc.buf) < need {
		sc.buf = make([]int32, need)
	}
	stake := func(k int) []int32 {
		s := sc.buf[:k:k]
		sc.buf = sc.buf[k:]
		return s
	}
	bufAll := sc.buf
	defer func() { sc.buf = bufAll }()

	c := &Condensation{Comp: take(n)}
	if full {
		c.PosInComp = take(n)
	}
	deg := stake(n + 1) // CSR adjacency offsets, head → body; deg[a] = start of a
	adj := stake(ne)
	cnt0 := stake(n)
	{
		cnt := cnt0
		for i := range cnt {
			cnt[i] = 0
		}
		for ri := range p.Rules {
			r := &p.Rules[ri]
			cnt[r.Head] += int32(len(r.Pos) + len(r.Neg))
		}
		prefixCSR(cnt, deg)
		for ri := range p.Rules {
			r := &p.Rules[ri]
			h := r.Head
			for _, b := range r.Pos {
				adj[cnt[h]] = b
				cnt[h]++
			}
			for _, b := range r.Neg {
				adj[cnt[h]] = b
				cnt[h]++
			}
		}
	}

	// Iterative Tarjan. index holds 1-based visit numbers (0 = unvisited,
	// so the recycled scratch must be re-zeroed); the DFS spine lives in
	// parallel vStack/eiStack arrays.
	index := stake(n)
	for i := range index {
		index[i] = 0
	}
	low := stake(n)
	stack := stake(n)[:0]
	vStack := stake(n)[:0]
	eiStack := stake(n)[:0]
	if sc.onstack == nil || len(sc.onstack) < (n+63)/64 {
		sc.onstack = NewBits(n)
	} else {
		sc.onstack.Reset()
	}
	onstack := sc.onstack
	next := int32(1)
	ncomp := int32(0)
	for s := 0; s < n; s++ {
		if index[s] != 0 {
			continue
		}
		v0 := int32(s)
		index[v0], low[v0] = next, next
		next++
		stack = append(stack, v0)
		onstack.Set(v0)
		vStack = append(vStack, v0)
		eiStack = append(eiStack, deg[v0])
		for len(vStack) > 0 {
			v := vStack[len(vStack)-1]
			if ei := eiStack[len(eiStack)-1]; ei < deg[v+1] {
				w := adj[ei]
				eiStack[len(eiStack)-1]++
				if index[w] == 0 {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onstack.Set(w)
					vStack = append(vStack, w)
					eiStack = append(eiStack, deg[w])
				} else if onstack.Get(w) && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			vStack = vStack[:len(vStack)-1]
			eiStack = eiStack[:len(eiStack)-1]
			if len(vStack) > 0 {
				if pv := vStack[len(vStack)-1]; low[v] < low[pv] {
					low[pv] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onstack.Clear(w)
					c.Comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
		}
	}

	// Group atoms by component (CSR). Both modes need the component sizes
	// (the incremental closure sizes its affected set by them); only the
	// full build scatters the atom list and positions. low is dead after
	// Tarjan; reuse it as the counts-then-cursor scratch.
	cnt := low[:ncomp]
	for i := range cnt {
		cnt[i] = 0
	}
	for a := 0; a < n; a++ {
		cnt[c.Comp[a]]++
	}
	c.atomOff = take(int(ncomp) + 1)
	if full {
		c.atomList = take(n)
		prefixCSR(cnt, c.atomOff)
		for a := int32(0); int(a) < n; a++ {
			ci := c.Comp[a]
			c.PosInComp[a] = cnt[ci] - c.atomOff[ci]
			c.atomList[cnt[ci]] = a
			cnt[ci]++
		}
	} else {
		prefixCSR(cnt, c.atomOff)
	}
	for ci := int32(0); ci < ncomp; ci++ {
		if sz := c.CompSize(ci); sz > c.LargestComp {
			c.LargestComp = sz
		}
	}

	if !full {
		// Closure-only build: dependent edges in natural rule order,
		// duplicates allowed (the marking BFS dedups for free) — no rule
		// grouping, no level schedule. Negation cycles are still
		// detected (the sweep walks every body atom anyway), so merged
		// incremental models can report the condensation shape.
		c.NegCycle = make([]bool, ncomp)
		depCnt := cnt
		for i := range depCnt {
			depCnt[i] = 0
		}
		depSrc := stake(ne)[:0]
		depDst := stake(ne)[:0]
		for ri := range p.Rules {
			r := &p.Rules[ri]
			ci := c.Comp[r.Head]
			for _, b := range r.Pos {
				if d := c.Comp[b]; d != ci {
					depCnt[d]++
					depSrc = append(depSrc, d)
					depDst = append(depDst, ci)
				}
			}
			for _, b := range r.Neg {
				if d := c.Comp[b]; d != ci {
					depCnt[d]++
					depSrc = append(depSrc, d)
					depDst = append(depDst, ci)
				} else if !c.NegCycle[ci] {
					c.NegCycle[ci] = true
					c.NumHard++
				}
			}
		}
		c.depOff = take(int(ncomp) + 1)
		c.depList = take(len(depSrc))
		prefixCSR(depCnt, c.depOff)
		for k, d := range depSrc {
			c.depList[depCnt[d]] = depDst[k]
			depCnt[d]++
		}
		return c
	}

	// Group rules by head component.
	for i := range cnt {
		cnt[i] = 0
	}
	for ri := range p.Rules {
		cnt[c.Comp[p.Rules[ri].Head]]++
	}
	c.ruleOff = take(int(ncomp) + 1)
	c.ruleList = take(nr)
	prefixCSR(cnt, c.ruleOff)
	for ri := range p.Rules {
		ci := c.Comp[p.Rules[ri].Head]
		c.ruleList[cnt[ci]] = int32(ri)
		cnt[ci]++
	}

	// Negative cycles, topological levels, and deduplicated dependent
	// edges in one sweep over the rules grouped by head component.
	// Components are visited in increasing (topological) order, so Level
	// of every dependency is final when read, and lastDep-based dedup is
	// exact: lastDep[d] can only equal ci while ci's own rules scan. The
	// discovered (dependency, dependent) edges are buffered and scattered
	// afterwards instead of re-scanning the rules.
	c.NegCycle = make([]bool, ncomp)
	c.Level = take(int(ncomp))
	depCnt := cnt // dead again; reuse
	for i := range depCnt {
		depCnt[i] = 0
	}
	lastDep := index[:ncomp] // dead after Tarjan; reuse
	for i := range lastDep {
		lastDep[i] = -1
	}
	depSrc := stake(ne)[:0]
	depDst := stake(ne)[:0]
	maxLevel := int32(0)
	for ci := int32(0); ci < ncomp; ci++ {
		lvl := int32(0)
		dep := func(d int32) {
			if l := c.Level[d] + 1; l > lvl {
				lvl = l
			}
			if lastDep[d] != ci {
				lastDep[d] = ci
				depCnt[d]++
				depSrc = append(depSrc, d)
				depDst = append(depDst, ci)
			}
		}
		for _, ri := range c.RulesOf(ci) {
			r := &p.Rules[ri]
			for _, b := range r.Pos {
				if d := c.Comp[b]; d != ci {
					dep(d)
				}
			}
			for _, b := range r.Neg {
				if d := c.Comp[b]; d != ci {
					dep(d)
				} else {
					c.NegCycle[ci] = true
				}
			}
		}
		c.Level[ci] = lvl
		if lvl > maxLevel {
			maxLevel = lvl
		}
		if c.NegCycle[ci] {
			c.NumHard++
		}
	}
	// Scatter the buffered (dependency, dependent) edges: edges were
	// discovered with the dependent ci increasing, so each component's
	// DependentsOf list comes out sorted.
	c.depOff = take(int(ncomp) + 1)
	c.depList = take(len(depSrc))
	prefixCSR(depCnt, c.depOff)
	for k, d := range depSrc {
		c.depList[depCnt[d]] = depDst[k]
		depCnt[d]++
	}

	lvlCnt := lastDep[:maxLevel+1] // dead again; reuse
	for i := range lvlCnt {
		lvlCnt[i] = 0
	}
	for _, l := range c.Level {
		lvlCnt[l]++
	}
	c.lvlOff = take(int(maxLevel) + 2)
	c.lvlList = take(int(ncomp))
	prefixCSR(lvlCnt, c.lvlOff)
	for ci := int32(0); ci < ncomp; ci++ {
		l := c.Level[ci]
		c.lvlList[lvlCnt[l]] = ci
		lvlCnt[l]++
	}
	return c
}
