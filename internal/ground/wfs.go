package ground

// This file holds the three independent WFS algorithms. All compute the
// same three-valued model (Theorem 8 and the classical equivalences
// between the alternating fixpoint and the unfounded-set characterization,
// van Gelder–Ross–Schlipf [2], Baral–Subrahmanian [7]); the test suite
// cross-checks them.

// AlternatingFixpoint computes the well-founded model via the van Gelder
// alternating fixpoint: with Γ(S) the least model of the GL-reduct w.r.t.
// S, iterate T ← Γ(U), U ← Γ(T) from U = Γ(∅) until both stabilize;
// true = T, false = complement of U, undefined otherwise.
func AlternatingFixpoint(p *Program) *Model {
	n := p.NumAtoms()
	blocked := make([]bool, len(p.Rules))
	counts := make([]int32, len(p.Rules))
	queue := make([]int32, 0, n)

	t := NewBits(n)
	u := NewBits(n)
	tNext := NewBits(n)
	uNext := NewBits(n)

	// U_0 = Γ(∅): everything derivable when every negative literal is
	// granted.
	p.blockIfNegIn(t /* empty */, blocked)
	u = p.leastModel(blocked, u, counts, queue)

	rounds := 1
	for {
		// T_{i+1} = Γ(U_i)
		p.blockIfNegIn(u, blocked)
		tNext = p.leastModel(blocked, tNext, counts, queue)
		// U_{i+1} = Γ(T_{i+1})
		p.blockIfNegIn(tNext, blocked)
		uNext = p.leastModel(blocked, uNext, counts, queue)
		rounds += 2
		if tNext.Equal(t) && uNext.Equal(u) {
			break
		}
		t, tNext = tNext, t
		u, uNext = uNext, u
	}

	m := &Model{Prog: p, Truth: make([]Truth, n), Rounds: rounds}
	for i := int32(0); int(i) < n; i++ {
		switch {
		case t.Get(i):
			m.Truth[i] = True
		case !u.Get(i):
			m.Truth[i] = False
		default:
			m.Truth[i] = Undefined
		}
	}
	return m
}

// UnfoundedIteration computes the well-founded model by literally iterating
// the §2.6 operator WP(I) = TP(I) ∪ ¬.UP(I) from I = ∅, where UP(I) is the
// greatest unfounded set of P relative to I. The greatest unfounded set is
// obtained as the complement of the least "founded" set F: a ∈ F iff some
// rule with head a has every positive body atom not I-false and in F, and
// every negative body atom not I-true.
func UnfoundedIteration(p *Program) *Model {
	n := p.NumAtoms()
	pos := NewBits(n) // atoms true in I
	neg := NewBits(n) // atoms false in I
	posNext := NewBits(n)
	founded := NewBits(n)
	blocked := make([]bool, len(p.Rules))
	counts := make([]int32, len(p.Rules))
	queue := make([]int32, 0, n)

	rounds := 0
	for {
		rounds++
		// TP(I): heads of rules whose positive body is I-true and whose
		// negative body is I-false.
		posNext.Reset()
		for ri := range p.Rules {
			r := &p.Rules[ri]
			ok := true
			for _, b := range r.Pos {
				if !pos.Get(b) {
					ok = false
					break
				}
			}
			if ok {
				for _, b := range r.Neg {
					if !neg.Get(b) {
						ok = false
						break
					}
				}
			}
			if ok {
				posNext.Set(r.Head)
			}
		}
		// UP(I): complement of the least founded set. A rule supports its
		// head iff no positive body atom is I-false or unfounded, and no
		// negative body atom is I-true. Filter rules statically on the
		// I-dependent parts, then close under the positive parts.
		for ri := range p.Rules {
			r := &p.Rules[ri]
			blocked[ri] = false
			for _, b := range r.Neg {
				if pos.Get(b) {
					blocked[ri] = true
					break
				}
			}
			if !blocked[ri] {
				for _, b := range r.Pos {
					if neg.Get(b) {
						blocked[ri] = true
						break
					}
				}
			}
		}
		founded = p.leastModel(blocked, founded, counts, queue)

		// I' = TP(I) ∪ ¬.UP(I). Unfounded = complement of founded.
		changed := false
		for i := int32(0); int(i) < n; i++ {
			if posNext.Get(i) && !pos.Get(i) {
				pos.Set(i)
				changed = true
			}
			if !founded.Get(i) && !neg.Get(i) {
				neg.Set(i)
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	m := &Model{Prog: p, Truth: make([]Truth, n), Rounds: rounds}
	for i := int32(0); int(i) < n; i++ {
		switch {
		case pos.Get(i) && neg.Get(i):
			// Cannot happen for consistent programs; guard loudly.
			panic("ground: WP produced an inconsistent interpretation")
		case pos.Get(i):
			m.Truth[i] = True
		case neg.Get(i):
			m.Truth[i] = False
		default:
			m.Truth[i] = Undefined
		}
	}
	return m
}

// ForwardProofIteration computes the well-founded model by iterating the
// ŴP operator of Definition 7 (Theorem 8: WFS(P) = lfp(ŴP)): relative to
// the current consistent set of literals I,
//
//   - a becomes true if it has a forward proof π with ¬.N(π) ⊆ I, i.e. a is
//     derivable using only rules all of whose negative body atoms are
//     I-false; and
//   - a becomes false if every forward proof of a has a negative hypothesis
//     contradicted by I, i.e. a is not derivable using rules whose negative
//     body atoms avoid the I-true atoms.
//
// On the finite bounded grounding the transfinite iteration of the paper
// (Example 9 reaches ŴP,ω+2) becomes a finite number of rounds that grows
// with the bound — experiment E4 measures exactly this.
func ForwardProofIteration(p *Program) *Model {
	n := p.NumAtoms()
	pos := NewBits(n)
	neg := NewBits(n)
	provable := NewBits(n)
	derivable := NewBits(n)
	blocked := make([]bool, len(p.Rules))
	counts := make([]int32, len(p.Rules))
	queue := make([]int32, 0, n)

	rounds := 0
	for {
		rounds++
		// Positive part: forward proofs with all negative hypotheses in I.
		p.blockIfNegNotIn(neg, blocked)
		provable = p.leastModel(blocked, provable, counts, queue)
		// Negative part: block rules with an I-true negative body atom;
		// whatever remains underivable has every forward proof refuted.
		p.blockIfNegIn(pos, blocked)
		derivable = p.leastModel(blocked, derivable, counts, queue)

		changed := false
		for i := int32(0); int(i) < n; i++ {
			if provable.Get(i) && !pos.Get(i) {
				pos.Set(i)
				changed = true
			}
			if !derivable.Get(i) && !neg.Get(i) {
				neg.Set(i)
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	m := &Model{Prog: p, Truth: make([]Truth, n), Rounds: rounds}
	for i := int32(0); int(i) < n; i++ {
		switch {
		case pos.Get(i):
			m.Truth[i] = True
		case neg.Get(i):
			m.Truth[i] = False
		default:
			m.Truth[i] = Undefined
		}
	}
	return m
}
