package ground

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestGreatestUnfoundedSetByHand verifies UP(I) against the §2.6
// definition on a hand-worked example.
func TestGreatestUnfoundedSetByHand(t *testing.T) {
	// a0 fact; a1 ← a2; a2 ← a1 (positive loop: unfounded);
	// a3 ← ¬a0 (blocked once a0 ∈ I); a4 ← a0 (founded).
	p := mk(5,
		Rule{Head: 0},
		Rule{Head: 1, Pos: []int32{2}},
		Rule{Head: 2, Pos: []int32{1}},
		Rule{Head: 3, Neg: []int32{0}},
		Rule{Head: 4, Pos: []int32{0}},
	)
	// Relative to the empty interpretation the loop is unfounded, a3 is
	// not (its rule is not blocked by ∅), a0/a4 are founded.
	u0 := GreatestUnfoundedSet(p, NewInterp(5))
	for i, want := range []bool{false, true, true, false, false} {
		if u0.Get(int32(i)) != want {
			t.Errorf("U(∅): a%d = %v, want %v", i, u0.Get(int32(i)), want)
		}
	}
	// Relative to I = {a0}: a3's only rule has a negative body atom true
	// in I, so a3 joins the unfounded set.
	i1 := NewInterp(5)
	i1.Pos.Set(0)
	u1 := GreatestUnfoundedSet(p, i1)
	if !u1.Get(3) {
		t.Errorf("U({a0}) misses a3")
	}
	if u1.Get(0) || u1.Get(4) {
		t.Errorf("U({a0}) contains founded atoms")
	}
}

// TestUnfoundedSetIsUnfounded: property — every atom of UP(I) satisfies
// the §2.6 unfoundedness condition literally.
func TestUnfoundedSetIsUnfounded(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(23))}
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		p := RandomProgram(rng, n, 3+rng.Intn(15), 3, 3, rng.Intn(3))
		i := NewInterp(n)
		// Random consistent I.
		for a := int32(0); int(a) < n; a++ {
			switch rng.Intn(3) {
			case 0:
				i.Pos.Set(a)
			case 1:
				i.Neg.Set(a)
			}
		}
		u := GreatestUnfoundedSet(p, i)
		for a := int32(0); int(a) < n; a++ {
			if !u.Get(a) {
				continue
			}
			for _, ri := range p.RulesFor(a) {
				r := &p.Rules[ri]
				ok := false
				for _, b := range r.Pos {
					if i.Neg.Get(b) || u.Get(b) { // (i)
						ok = true
						break
					}
				}
				if !ok {
					for _, b := range r.Neg {
						if i.Pos.Get(b) { // (ii)
							ok = true
							break
						}
					}
				}
				if !ok {
					return false // a rule supports an "unfounded" atom
				}
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

// TestGreatestUnfoundedSetIsGreatest: property — UP(I) contains every
// singleton-testable unfounded atom: no atom outside UP(I) ∪ founded
// support can be added while preserving the condition. We test greatest-
// ness by checking that UP(I) equals the union of all unfounded sets
// found by brute force on tiny programs.
func TestGreatestUnfoundedSetIsGreatest(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(29))}
	isUnfounded := func(p *Program, i Interp, set Bits) bool {
		n := p.NumAtoms()
		for a := int32(0); int(a) < n; a++ {
			if !set.Get(a) {
				continue
			}
			for _, ri := range p.RulesFor(a) {
				r := &p.Rules[ri]
				ok := false
				for _, b := range r.Pos {
					if i.Neg.Get(b) || set.Get(b) {
						ok = true
						break
					}
				}
				if !ok {
					for _, b := range r.Neg {
						if i.Pos.Get(b) {
							ok = true
							break
						}
					}
				}
				if !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6) // tiny: brute force over subsets
		p := RandomProgram(rng, n, 2+rng.Intn(8), 2, 2, rng.Intn(2))
		i := NewInterp(n)
		for a := int32(0); int(a) < n; a++ {
			if rng.Intn(4) == 0 {
				i.Pos.Set(a)
			}
		}
		u := GreatestUnfoundedSet(p, i)
		// Union of all unfounded sets found by brute force.
		union := NewBits(n)
		for mask := 0; mask < 1<<n; mask++ {
			set := NewBits(n)
			for b := 0; b < n; b++ {
				if mask&(1<<b) != 0 {
					set.Set(int32(b))
				}
			}
			if isUnfounded(p, i, set) {
				for b := int32(0); int(b) < n; b++ {
					if set.Get(b) {
						union.Set(b)
					}
				}
			}
		}
		return u.Equal(union)
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestImmediateConsequence(t *testing.T) {
	p := mk(4,
		Rule{Head: 0},
		Rule{Head: 1, Pos: []int32{0}},
		Rule{Head: 2, Pos: []int32{0}, Neg: []int32{3}},
	)
	i := NewInterp(4)
	i.Pos.Set(0)
	tp := ImmediateConsequence(p, i)
	if !tp.Get(0) || !tp.Get(1) {
		t.Errorf("TP misses supported heads")
	}
	if tp.Get(2) {
		t.Errorf("TP fired a rule whose negative body is not yet false")
	}
	i.Neg.Set(3)
	if tp := ImmediateConsequence(p, i); !tp.Get(2) {
		t.Errorf("TP did not fire after ¬a3 established")
	}
}

// TestWPIterationMatchesEngines: iterating WPStep from ∅ converges to the
// same model as the packaged algorithms (it *is* the §2.6 lfp).
func TestWPIterationMatchesEngines(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(31))}
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		p := RandomProgram(rng, n, 3+rng.Intn(12), 2, 2, rng.Intn(3))
		i := NewInterp(n)
		for {
			next := WPStep(p, i)
			if next.Pos.Equal(i.Pos) && next.Neg.Equal(i.Neg) {
				break
			}
			// Accumulate (the iteration is monotone from ∅).
			for a := int32(0); int(a) < n; a++ {
				if next.Pos.Get(a) {
					i.Pos.Set(a)
				}
				if next.Neg.Get(a) {
					i.Neg.Set(a)
				}
			}
		}
		m := AlternatingFixpoint(p)
		for a := int32(0); int(a) < n; a++ {
			var want Truth
			switch {
			case i.Pos.Get(a):
				want = True
			case i.Neg.Get(a):
				want = False
			default:
				want = Undefined
			}
			if m.Truth[a] != want {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}
