package ground

// Remainder computes the well-founded model via the Brass–Dix program
// remainder (residual program): repeatedly simplify the ground program by
//
//   - success      delete a positive body literal whose atom is a fact;
//   - failure      delete a rule with a positive body literal whose atom
//     has no rules left;
//   - positive reduction   delete a negative body literal whose atom has
//     no rules left (it is certainly false);
//   - negative reduction   delete a rule with a negative body literal
//     whose atom is a fact (the literal is certainly false);
//   - loop detection       atoms underivable even in the positive
//     projection of the remaining rules are unfounded: delete every rule
//     positively depending on them (making them rule-less).
//
// At fixpoint, atoms that are facts are true, atoms without rules are
// false, and everything else is undefined. This is the fourth independent
// WFS algorithm of this package (after the alternating fixpoint, the §2.6
// WP iteration, and the Definition 7 ŴP iteration) and is cross-checked
// against them by the property tests.
func Remainder(p *Program) *Model {
	n := p.NumAtoms()
	// Mutable copy of the rules.
	type mrule struct {
		head    int32
		pos     []int32
		neg     []int32
		deleted bool
	}
	rules := make([]mrule, len(p.Rules))
	ruleCount := make([]int32, n) // live rules per head atom
	for ri, r := range p.Rules {
		rules[ri] = mrule{
			head: r.Head,
			pos:  append([]int32(nil), r.Pos...),
			neg:  append([]int32(nil), r.Neg...),
		}
		ruleCount[r.Head]++
	}
	isFact := func(a int32) bool {
		for ri := range rules {
			r := &rules[ri]
			if !r.deleted && r.head == a && len(r.pos) == 0 && len(r.neg) == 0 {
				return true
			}
		}
		return false
	}
	// Cheap incremental fact/failed tracking instead of rescans.
	fact := NewBits(n)
	updateFacts := func() bool {
		changed := false
		for a := int32(0); int(a) < n; a++ {
			if !fact.Get(a) && isFact(a) {
				fact.Set(a)
				changed = true
			}
		}
		return changed
	}
	failed := func(a int32) bool { return ruleCount[a] == 0 }

	deleteRule := func(ri int) {
		if !rules[ri].deleted {
			rules[ri].deleted = true
			ruleCount[rules[ri].head]--
		}
	}

	rounds := 0
	for {
		rounds++
		changed := updateFacts()
		for ri := range rules {
			r := &rules[ri]
			if r.deleted {
				continue
			}
			// Success + failure on positive literals.
			kept := r.pos[:0]
			for _, b := range r.pos {
				switch {
				case fact.Get(b):
					changed = true // drop the satisfied literal
				case failed(b):
					deleteRule(ri)
					changed = true
				default:
					kept = append(kept, b)
				}
				if r.deleted {
					break
				}
			}
			if r.deleted {
				continue
			}
			r.pos = kept
			// Positive + negative reduction on negative literals.
			keptN := r.neg[:0]
			for _, b := range r.neg {
				switch {
				case failed(b):
					changed = true // ¬b certainly holds: drop it
				case fact.Get(b):
					deleteRule(ri)
					changed = true
				default:
					keptN = append(keptN, b)
				}
				if r.deleted {
					break
				}
			}
			if r.deleted {
				continue
			}
			r.neg = keptN
		}
		// Loop detection: least model of the positive projection of the
		// live rules; underivable atoms are unfounded.
		derivable := NewBits(n)
		counts := make([]int32, len(rules))
		var queue []int32
		derive := func(a int32) {
			if !derivable.Get(a) {
				derivable.Set(a)
				queue = append(queue, a)
			}
		}
		posOcc := make(map[int32][]int32)
		for ri := range rules {
			r := &rules[ri]
			if r.deleted {
				counts[ri] = -1
				continue
			}
			counts[ri] = int32(len(r.pos))
			for _, b := range r.pos {
				posOcc[b] = append(posOcc[b], int32(ri))
			}
			if counts[ri] == 0 {
				derive(r.head)
			}
		}
		for len(queue) > 0 {
			a := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, ri := range posOcc[a] {
				if counts[ri] < 0 {
					continue
				}
				counts[ri]--
				if counts[ri] == 0 {
					derive(rules[ri].head)
				}
			}
		}
		for ri := range rules {
			r := &rules[ri]
			if r.deleted {
				continue
			}
			if !derivable.Get(r.head) {
				deleteRule(ri)
				changed = true
				continue
			}
			for _, b := range r.pos {
				if !derivable.Get(b) {
					deleteRule(ri)
					changed = true
					break
				}
			}
		}
		if !changed {
			break
		}
	}

	m := &Model{Prog: p, Truth: make([]Truth, n), Rounds: rounds}
	for a := int32(0); int(a) < n; a++ {
		switch {
		case fact.Get(a):
			m.Truth[a] = True
		case failed(a):
			m.Truth[a] = False
		default:
			m.Truth[a] = Undefined
		}
	}
	return m
}
