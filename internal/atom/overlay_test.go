package atom

import (
	"testing"

	"repro/internal/term"
)

func newFrozenBase(t *testing.T) (*Store, PredID, AtomID) {
	t.Helper()
	s := NewStore(term.NewStore())
	p := s.MustPred("p", 1)
	a := s.Atom(p, []term.ID{s.Terms.Const("a")})
	s.Freeze()
	return s, p, a
}

func TestOverlayLookupAndIntern(t *testing.T) {
	base, p, pa := newFrozenBase(t)
	o := NewOverlay(base)

	// Base atoms resolve without local interning.
	if got := o.Atom(p, []term.ID{o.Terms.Const("a")}); got != pa {
		t.Fatalf("overlay re-intern of base atom = %d, want %d", got, pa)
	}
	if !o.Pristine() {
		t.Fatal("base-resolved lookups should leave the overlay pristine")
	}

	// New atoms land locally with IDs continuing the base space.
	b := o.Terms.Const("b")
	ab := o.Atom(p, []term.ID{b})
	if int(ab) != base.Len() {
		t.Fatalf("overlay atom ID = %d, want %d", ab, base.Len())
	}
	if o.Pristine() {
		t.Fatal("overlay with local atoms reported pristine")
	}
	if o.String(ab) != "p(b)" || o.String(pa) != "p(a)" {
		t.Fatalf("render: %q, %q", o.String(ab), o.String(pa))
	}
	if got, ok := o.Lookup(p, []term.ID{b}); !ok || got != ab {
		t.Fatalf("Lookup local = %d,%v", got, ok)
	}
	// New predicate in the overlay.
	q := o.MustPred("q", 2)
	if int(q) != base.NumPreds() {
		t.Fatalf("overlay pred ID = %d, want %d", q, base.NumPreds())
	}
	if o.PredName(q) != "q" || o.PredArity(q) != 2 {
		t.Fatalf("overlay pred data wrong")
	}
	if o.MaxArity() != 2 {
		t.Fatalf("MaxArity through chain = %d, want 2", o.MaxArity())
	}
	// ByPred concatenates base-first.
	all := o.ByPred(p)
	if len(all) != 2 || all[0] != pa || all[1] != ab {
		t.Fatalf("ByPred = %v", all)
	}
	// The base is untouched.
	if base.Len() != 1 || base.NumPreds() != 1 {
		t.Fatalf("base mutated: %d atoms %d preds", base.Len(), base.NumPreds())
	}
}

func TestOverlayArityMismatchThroughChain(t *testing.T) {
	base, _, _ := newFrozenBase(t)
	o := NewOverlay(base)
	if _, err := o.Pred("p", 3); err == nil {
		t.Fatal("arity mismatch against base predicate not detected")
	}
}

func TestFrozenStorePanicsOnIntern(t *testing.T) {
	base, p, _ := newFrozenBase(t)
	defer func() {
		if recover() == nil {
			t.Fatal("interning into frozen atom store did not panic")
		}
	}()
	// "a" resolves in the base term chain, but the atom p(a) already
	// exists; intern a genuinely new atom to trigger the panic. Since the
	// term store is frozen too, the term intern panics first — either way
	// the mutation is refused.
	base.Atom(p, []term.ID{base.Terms.Const("zzz")})
}

func TestCloneIndependence(t *testing.T) {
	s := NewStore(term.NewStore())
	p := s.MustPred("p", 1)
	a := s.Atom(p, []term.ID{s.Terms.Const("a")})

	c := s.Clone()
	if got := c.Atom(p, []term.ID{c.Terms.Const("a")}); got != a {
		t.Fatalf("clone atom = %d, want %d", got, a)
	}
	// Diverge: new atoms in each do not affect the other.
	s.Atom(p, []term.ID{s.Terms.Const("s-only")})
	c.Atom(p, []term.ID{c.Terms.Const("c-only")})
	if s.Len() != 2 || c.Len() != 2 {
		t.Fatalf("lens after divergence: %d, %d", s.Len(), c.Len())
	}
	if _, ok := c.Terms.LookupConst("s-only"); ok {
		t.Fatal("clone sees original's post-clone constant")
	}
	if _, ok := s.Terms.LookupConst("c-only"); ok {
		t.Fatal("original sees clone's constant")
	}
}

func TestMatchAcrossOverlay(t *testing.T) {
	base, p, pa := newFrozenBase(t)
	o := NewOverlay(base)
	// A pattern holding an overlay-local constant never matches a base
	// atom (the new constant cannot equal any base term).
	pat := Pattern{Pred: p, Args: []PArg{ConstArg(o.Terms.Const("new"))}}
	sub := NewSubst(0)
	var trail []int32
	if o.Match(pat, pa, sub, &trail) {
		t.Fatal("overlay-constant pattern matched a base atom")
	}
	// A variable pattern matches and binds the base term.
	vpat := Pattern{Pred: p, Args: []PArg{VarArg(0)}}
	sub = NewSubst(1)
	if !o.Match(vpat, pa, sub, &trail) {
		t.Fatal("variable pattern failed to match base atom through overlay")
	}
	if o.Terms.Name(sub[0]) != "a" {
		t.Fatalf("bound %q, want a", o.Terms.Name(sub[0]))
	}
}
