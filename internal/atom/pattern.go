package atom

import (
	"fmt"
	"strings"

	"repro/internal/term"
)

// PArg is one argument position of a pattern: either a constant term or a
// variable slot. Rules and queries rename their variables to dense slot
// indexes at compile time, so a substitution is a flat slice.
type PArg struct {
	Var   int32 // variable slot index, or -1 for a constant
	Const term.ID
}

// IsVar reports whether the argument is a variable slot.
func (a PArg) IsVar() bool { return a.Var >= 0 }

// VarArg returns a PArg referring to variable slot v.
func VarArg(v int) PArg { return PArg{Var: int32(v), Const: term.None} }

// ConstArg returns a PArg holding the ground term t.
func ConstArg(t term.ID) PArg { return PArg{Var: -1, Const: t} }

// Pattern is an atom with variables: the body and head atoms of compiled
// rules and queries.
type Pattern struct {
	Pred PredID
	Args []PArg
}

// Vars returns the set of variable slots occurring in the pattern, in
// first-occurrence order.
func (p Pattern) Vars() []int {
	var out []int
	for _, a := range p.Args {
		if !a.IsVar() {
			continue
		}
		seen := false
		for _, v := range out {
			if v == int(a.Var) {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, int(a.Var))
		}
	}
	return out
}

// Subst is a substitution over variable slots; unbound slots hold term.None.
type Subst []term.ID

// NewSubst returns a fresh substitution with n unbound slots.
func NewSubst(n int) Subst {
	s := make(Subst, n)
	for i := range s {
		s[i] = term.None
	}
	return s
}

// Reset unbinds every slot.
func (s Subst) Reset() {
	for i := range s {
		s[i] = term.None
	}
}

// Match attempts to match pattern p against the ground atom a under the
// current substitution, binding unbound slots as needed. Newly bound slots
// are appended to *trail so the caller can backtrack via Undo. Match
// reports whether the match succeeded; on failure the substitution is
// already restored.
func (s *Store) Match(p Pattern, a AtomID, sub Subst, trail *[]int32) bool {
	if s.PredOf(a) != p.Pred {
		return false
	}
	args := s.Args(a)
	mark := len(*trail)
	for i, pa := range p.Args {
		if pa.IsVar() {
			if bound := sub[pa.Var]; bound == term.None {
				sub[pa.Var] = args[i]
				*trail = append(*trail, pa.Var)
			} else if bound != args[i] {
				Undo(sub, trail, mark)
				return false
			}
		} else if pa.Const != args[i] {
			Undo(sub, trail, mark)
			return false
		}
	}
	return true
}

// Undo unbinds every slot recorded in (*trail)[mark:] and truncates the
// trail back to mark.
func Undo(sub Subst, trail *[]int32, mark int) {
	for _, v := range (*trail)[mark:] {
		sub[v] = term.None
	}
	*trail = (*trail)[:mark]
}

// Instantiate interns the ground atom obtained by applying sub to p. All
// variable slots of p must be bound.
func (s *Store) Instantiate(p Pattern, sub Subst) AtomID {
	args := make([]term.ID, len(p.Args))
	for i, pa := range p.Args {
		if pa.IsVar() {
			t := sub[pa.Var]
			if t == term.None {
				panic(fmt.Sprintf("atom: instantiating %s with unbound slot %d", s.PatternString(p), pa.Var))
			}
			args[i] = t
		} else {
			args[i] = pa.Const
		}
	}
	return s.Atom(p.Pred, args)
}

// InstantiateLookup is Instantiate without interning: it returns the
// existing AtomID for the instantiated atom, or (NoAtom, false) if that
// ground atom has never been derived. Used for side-atom membership checks.
func (s *Store) InstantiateLookup(p Pattern, sub Subst) (AtomID, bool) {
	args := make([]term.ID, len(p.Args))
	for i, pa := range p.Args {
		if pa.IsVar() {
			t := sub[pa.Var]
			if t == term.None {
				panic(fmt.Sprintf("atom: instantiating %s with unbound slot %d", s.PatternString(p), pa.Var))
			}
			args[i] = t
		} else {
			args[i] = pa.Const
		}
	}
	return s.Lookup(p.Pred, args)
}

// PatternString renders a pattern with ?n for variable slots (used in
// diagnostics; the parser-level printer renders original variable names).
func (s *Store) PatternString(p Pattern) string {
	var b strings.Builder
	b.WriteString(s.PredName(p.Pred))
	if len(p.Args) == 0 {
		return b.String()
	}
	b.WriteByte('(')
	for i, a := range p.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		if a.IsVar() {
			fmt.Fprintf(&b, "?%d", a.Var)
		} else {
			b.WriteString(s.Terms.String(a.Const))
		}
	}
	b.WriteByte(')')
	return b.String()
}
