package atom

import (
	"testing"

	"repro/internal/term"
)

func newStore() *Store { return NewStore(term.NewStore()) }

func TestPredInterning(t *testing.T) {
	s := newStore()
	p, err := s.Pred("p", 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := s.Pred("p", 2); err != nil || got != p {
		t.Errorf("re-interning predicate changed ID or errored: %v", err)
	}
	if _, err := s.Pred("p", 3); err == nil {
		t.Errorf("arity conflict not reported")
	}
	if s.PredName(p) != "p" || s.PredArity(p) != 2 {
		t.Errorf("predicate metadata wrong")
	}
	if s.NumPreds() != 1 {
		t.Errorf("NumPreds = %d, want 1", s.NumPreds())
	}
}

func TestMaxArity(t *testing.T) {
	s := newStore()
	if s.MaxArity() != 0 {
		t.Errorf("empty store MaxArity = %d", s.MaxArity())
	}
	s.MustPred("p", 2)
	s.MustPred("q", 5)
	s.MustPred("r", 1)
	if s.MaxArity() != 5 {
		t.Errorf("MaxArity = %d, want 5", s.MaxArity())
	}
}

func TestAtomInterning(t *testing.T) {
	s := newStore()
	p := s.MustPred("p", 2)
	a, b := s.Terms.Const("a"), s.Terms.Const("b")
	pab := s.Atom(p, []term.ID{a, b})
	if got := s.Atom(p, []term.ID{a, b}); got != pab {
		t.Errorf("equal atoms interned differently")
	}
	if got := s.Atom(p, []term.ID{b, a}); got == pab {
		t.Errorf("p(a,b) and p(b,a) share an ID")
	}
	if got, ok := s.Lookup(p, []term.ID{a, b}); !ok || got != pab {
		t.Errorf("Lookup failed")
	}
	if _, ok := s.Lookup(p, []term.ID{a, a}); ok {
		t.Errorf("Lookup found a never-interned atom")
	}
	if s.String(pab) != "p(a,b)" {
		t.Errorf("String = %q", s.String(pab))
	}
	// Only p(a,b) and p(b,a) were interned; Lookup does not intern.
	if got := s.ByPred(p); len(got) != 2 {
		t.Errorf("ByPred returned %d atoms, want 2", len(got))
	}
}

func TestAtomArityPanics(t *testing.T) {
	s := newStore()
	p := s.MustPred("p", 2)
	defer func() {
		if recover() == nil {
			t.Errorf("wrong-arity atom did not panic")
		}
	}()
	s.Atom(p, []term.ID{s.Terms.Const("a")})
}

func TestNonGroundAtomPanics(t *testing.T) {
	s := newStore()
	p := s.MustPred("p", 1)
	defer func() {
		if recover() == nil {
			t.Errorf("non-ground atom did not panic")
		}
	}()
	s.Atom(p, []term.ID{s.Terms.Var("X")})
}

func TestDom(t *testing.T) {
	s := newStore()
	p := s.MustPred("p", 3)
	a, b := s.Terms.Const("a"), s.Terms.Const("b")
	at := s.Atom(p, []term.ID{a, b, a})
	dom := s.Dom(at)
	if len(dom) != 2 || dom[0] != a || dom[1] != b {
		t.Errorf("Dom = %v, want [a b]", dom)
	}
}

func TestTermDepth(t *testing.T) {
	s := newStore()
	p := s.MustPred("p", 2)
	f := s.Terms.Functor("f", 1)
	a := s.Terms.Const("a")
	fa := s.Terms.Skolem(f, []term.ID{a})
	ffa := s.Terms.Skolem(f, []term.ID{fa})
	at := s.Atom(p, []term.ID{a, ffa})
	if got := s.TermDepth(at); got != 2 {
		t.Errorf("TermDepth = %d, want 2", got)
	}
}

func TestPropositionalAtom(t *testing.T) {
	s := newStore()
	p := s.MustPred("p", 0)
	at := s.Atom(p, nil)
	if s.String(at) != "p" {
		t.Errorf("String = %q, want p", s.String(at))
	}
}

func TestMatchBindsAndUndoes(t *testing.T) {
	s := newStore()
	p := s.MustPred("p", 3)
	a, b := s.Terms.Const("a"), s.Terms.Const("b")
	pat := Pattern{Pred: p, Args: []PArg{VarArg(0), ConstArg(a), VarArg(1)}}

	ground := s.Atom(p, []term.ID{b, a, b})
	sub := NewSubst(2)
	var trail []int32
	if !s.Match(pat, ground, sub, &trail) {
		t.Fatalf("match failed")
	}
	if sub[0] != b || sub[1] != b {
		t.Errorf("bindings wrong: %v", sub)
	}
	Undo(sub, &trail, 0)
	if sub[0] != term.None || sub[1] != term.None || len(trail) != 0 {
		t.Errorf("Undo did not restore state")
	}

	// Constant mismatch.
	bad := s.Atom(p, []term.ID{b, b, b})
	if s.Match(pat, bad, sub, &trail) {
		t.Errorf("matched despite constant mismatch")
	}
	if sub[0] != term.None || len(trail) != 0 {
		t.Errorf("failed match leaked bindings")
	}
}

func TestMatchRepeatedVariable(t *testing.T) {
	s := newStore()
	p := s.MustPred("p", 2)
	a, b := s.Terms.Const("a"), s.Terms.Const("b")
	pat := Pattern{Pred: p, Args: []PArg{VarArg(0), VarArg(0)}}
	sub := NewSubst(1)
	var trail []int32
	if s.Match(pat, s.Atom(p, []term.ID{a, b}), sub, &trail) {
		t.Errorf("p(X,X) matched p(a,b)")
	}
	if len(trail) != 0 {
		t.Errorf("failed match left trail entries")
	}
	if !s.Match(pat, s.Atom(p, []term.ID{a, a}), sub, &trail) {
		t.Errorf("p(X,X) did not match p(a,a)")
	}
}

func TestMatchRespectsExistingBindings(t *testing.T) {
	s := newStore()
	p := s.MustPred("p", 1)
	a, b := s.Terms.Const("a"), s.Terms.Const("b")
	pat := Pattern{Pred: p, Args: []PArg{VarArg(0)}}
	sub := NewSubst(1)
	sub[0] = b
	var trail []int32
	if s.Match(pat, s.Atom(p, []term.ID{a}), sub, &trail) {
		t.Errorf("match overwrote existing binding")
	}
	if !s.Match(pat, s.Atom(p, []term.ID{b}), sub, &trail) {
		t.Errorf("match failed against compatible binding")
	}
}

func TestMatchWrongPredicate(t *testing.T) {
	s := newStore()
	p := s.MustPred("p", 1)
	q := s.MustPred("q", 1)
	a := s.Terms.Const("a")
	pat := Pattern{Pred: p, Args: []PArg{VarArg(0)}}
	sub := NewSubst(1)
	var trail []int32
	if s.Match(pat, s.Atom(q, []term.ID{a}), sub, &trail) {
		t.Errorf("matched atom of a different predicate")
	}
}

func TestInstantiate(t *testing.T) {
	s := newStore()
	p := s.MustPred("p", 2)
	a, b := s.Terms.Const("a"), s.Terms.Const("b")
	pat := Pattern{Pred: p, Args: []PArg{VarArg(0), ConstArg(b)}}
	sub := NewSubst(1)
	sub[0] = a
	got := s.Instantiate(pat, sub)
	if s.String(got) != "p(a,b)" {
		t.Errorf("Instantiate = %s", s.String(got))
	}
	// InstantiateLookup on a never-interned instance.
	sub[0] = b
	if _, ok := s.InstantiateLookup(pat, sub); ok {
		t.Errorf("InstantiateLookup interned p(b,b)")
	}
}

func TestInstantiateUnboundPanics(t *testing.T) {
	s := newStore()
	p := s.MustPred("p", 1)
	pat := Pattern{Pred: p, Args: []PArg{VarArg(0)}}
	defer func() {
		if recover() == nil {
			t.Errorf("unbound instantiate did not panic")
		}
	}()
	s.Instantiate(pat, NewSubst(1))
}

func TestPatternVars(t *testing.T) {
	s := newStore()
	p := s.MustPred("p", 4)
	a := s.Terms.Const("a")
	pat := Pattern{Pred: p, Args: []PArg{VarArg(1), ConstArg(a), VarArg(0), VarArg(1)}}
	vars := pat.Vars()
	if len(vars) != 2 || vars[0] != 1 || vars[1] != 0 {
		t.Errorf("Vars = %v, want [1 0]", vars)
	}
	if s.PatternString(pat) != "p(?1,a,?0,?1)" {
		t.Errorf("PatternString = %q", s.PatternString(pat))
	}
}
