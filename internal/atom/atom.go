// Package atom implements the relational layer of the system: predicate
// schemas, interned ground atoms, atom patterns with variables, and the
// matching machinery used by the chase and by query evaluation (paper §2.1).
//
// Ground atoms are interned like terms: a ground atom P(t1,…,tn) has a
// unique AtomID within a Store, so atom sets and indexes operate on dense
// integers.
//
// Like term stores, atom stores support Freeze/Clone/NewOverlay (see the
// term package comment): a frozen store serves concurrent readers, and an
// overlay interns new predicates and atoms into a private layer that
// continues the frozen base's ID space. The engine's snapshot machinery
// uses overlays both for per-evaluation chase universes and for per-call
// query interning.
package atom

import (
	"encoding/binary"
	"fmt"
	"maps"
	"strings"

	"repro/internal/term"
)

// PredID identifies a predicate (relation name + arity) within a Store.
type PredID int32

// AtomID identifies an interned ground atom within a Store.
type AtomID int32

// NoAtom is the null atom ID, used as a sentinel.
const NoAtom AtomID = -1

type predData struct {
	name  string
	arity int
}

// Store interns predicates and ground atoms over a term store. A Store is
// not safe for concurrent mutation; a frozen Store is safe for unlimited
// concurrent readers.
type Store struct {
	Terms *term.Store

	preds   []predData // local predicates; global ID = offPreds + index
	predIdx map[string]PredID

	atoms    []atomData // local atoms; global ID = offAtoms + index
	atomIdx  map[string]AtomID
	byPred   map[PredID][]AtomID // locally interned atoms per predicate
	argSpace []term.ID           // flat backing array for local atom args

	// Overlay support (see package comment).
	base     *Store
	offPreds int
	offAtoms int
	frozen   bool
}

type atomData struct {
	pred PredID
	off  int32
	n    int32
}

// NewStore returns an empty root atom store over the given term store.
func NewStore(ts *term.Store) *Store {
	return &Store{
		Terms:   ts,
		predIdx: make(map[string]PredID),
		atomIdx: make(map[string]AtomID),
		byPred:  make(map[PredID][]AtomID),
	}
}

// NewOverlay returns a mutable store layered over base, which must be
// frozen. The overlay owns a term-store overlay over base.Terms, so one
// NewOverlay call yields a complete private interning context sharing the
// base's ID spaces.
func NewOverlay(base *Store) *Store {
	if !base.frozen {
		panic("atom: NewOverlay over an unfrozen base store")
	}
	s := NewStore(term.NewOverlay(base.Terms))
	s.base = base
	s.offPreds = base.NumPreds()
	s.offAtoms = base.Len()
	return s
}

// Clone returns a mutable deep copy of a root store (including its term
// store), preserving all IDs.
func (s *Store) Clone() *Store {
	if s.base != nil {
		panic("atom: Clone of an overlay store")
	}
	byPred := make(map[PredID][]AtomID, len(s.byPred))
	for p, as := range s.byPred {
		byPred[p] = append([]AtomID(nil), as...)
	}
	return &Store{
		Terms:    s.Terms.Clone(),
		preds:    append([]predData(nil), s.preds...),
		predIdx:  maps.Clone(s.predIdx),
		atoms:    append([]atomData(nil), s.atoms...),
		atomIdx:  maps.Clone(s.atomIdx),
		byPred:   byPred,
		argSpace: append([]term.ID(nil), s.argSpace...),
	}
}

// Freeze marks the store (and its term store) immutable: any further
// interning panics. Freeze is idempotent.
func (s *Store) Freeze() {
	s.frozen = true
	s.Terms.Freeze()
}

// Frozen reports whether the store has been frozen.
func (s *Store) Frozen() bool { return s.frozen }

// Pristine reports that this layer has interned nothing of its own: no
// predicates, atoms, terms, or functors beyond its base. A query compiled
// against a pristine overlay references only base IDs and is therefore
// valid against any store sharing that base.
func (s *Store) Pristine() bool {
	return len(s.preds) == 0 && len(s.atoms) == 0 &&
		s.Terms.NumLocal() == 0 && s.Terms.NumLocalFunctors() == 0
}

func (s *Store) mutable() {
	if s.frozen {
		panic("atom: interning into a frozen store (use an overlay)")
	}
}

// pred resolves a predicate ID through the overlay chain.
func (s *Store) pred(p PredID) *predData {
	for int(p) < s.offPreds {
		s = s.base
	}
	return &s.preds[int(p)-s.offPreds]
}

// atom resolves an atom ID through the overlay chain, returning the owning
// layer so args can be read from its argSpace.
func (s *Store) atom(a AtomID) (*Store, *atomData) {
	for int(a) < s.offAtoms {
		s = s.base
	}
	return s, &s.atoms[int(a)-s.offAtoms]
}

// Pred interns the predicate with the given name and arity. Predicates are
// identified by name: re-interning a name with a different arity returns an
// error, since the relational schema fixes one arity per relation name.
func (s *Store) Pred(name string, arity int) (PredID, error) {
	for c := s; c != nil; c = c.base {
		if id, ok := c.predIdx[name]; ok {
			if got := s.pred(id).arity; got != arity {
				return 0, fmt.Errorf("atom: predicate %s used with arity %d, previously %d", name, arity, got)
			}
			return id, nil
		}
	}
	s.mutable()
	id := PredID(s.offPreds + len(s.preds))
	s.preds = append(s.preds, predData{name: name, arity: arity})
	s.predIdx[name] = id
	return id, nil
}

// MustPred is Pred for arities known to be consistent; it panics on schema
// violations and is intended for programmatic construction in tests and
// generators.
func (s *Store) MustPred(name string, arity int) PredID {
	id, err := s.Pred(name, arity)
	if err != nil {
		panic(err)
	}
	return id
}

// LookupPred returns the ID of an already-interned predicate.
func (s *Store) LookupPred(name string) (PredID, bool) {
	for c := s; c != nil; c = c.base {
		if id, ok := c.predIdx[name]; ok {
			return id, true
		}
	}
	return 0, false
}

// PredName returns the relation name of p.
func (s *Store) PredName(p PredID) string { return s.pred(p).name }

// PredArity returns the arity of p.
func (s *Store) PredArity(p PredID) int { return s.pred(p).arity }

// NumPreds reports the number of interned predicates (including the base
// chain).
func (s *Store) NumPreds() int { return s.offPreds + len(s.preds) }

// MaxArity reports the maximum arity over all interned predicates (the w of
// Proposition 12), or 0 if no predicates exist.
func (s *Store) MaxArity() int {
	w := 0
	for c := s; c != nil; c = c.base {
		for i := range c.preds {
			if c.preds[i].arity > w {
				w = c.preds[i].arity
			}
		}
	}
	return w
}

// Atom interns the ground atom p(args...) and returns its ID. All args must
// be ground terms.
func (s *Store) Atom(p PredID, args []term.ID) AtomID {
	if want := s.pred(p).arity; len(args) != want {
		panic(fmt.Sprintf("atom: %s applied to %d args, want %d", s.pred(p).name, len(args), want))
	}
	key := atomKey(p, args)
	for c := s; c != nil; c = c.base {
		if id, ok := c.atomIdx[key]; ok {
			return id
		}
	}
	s.mutable()
	for _, a := range args {
		if !s.Terms.IsGround(a) {
			panic("atom: interning non-ground atom")
		}
	}
	off := int32(len(s.argSpace))
	s.argSpace = append(s.argSpace, args...)
	id := AtomID(s.offAtoms + len(s.atoms))
	s.atoms = append(s.atoms, atomData{pred: p, off: off, n: int32(len(args))})
	s.atomIdx[key] = id
	s.byPred[p] = append(s.byPred[p], id)
	return id
}

// Lookup returns the ID of an already-interned ground atom, if present.
func (s *Store) Lookup(p PredID, args []term.ID) (AtomID, bool) {
	key := atomKey(p, args)
	for c := s; c != nil; c = c.base {
		if id, ok := c.atomIdx[key]; ok {
			return id, true
		}
	}
	return NoAtom, false
}

func atomKey(p PredID, args []term.ID) string {
	buf := make([]byte, 4+4*len(args))
	binary.LittleEndian.PutUint32(buf, uint32(p))
	for i, a := range args {
		binary.LittleEndian.PutUint32(buf[4+4*i:], uint32(a))
	}
	return string(buf)
}

// Len reports the number of interned ground atoms (including the base
// chain).
func (s *Store) Len() int { return s.offAtoms + len(s.atoms) }

// NumLocal reports the atoms interned into this layer alone.
func (s *Store) NumLocal() int { return len(s.atoms) }

// PredOf returns the predicate of atom a.
func (s *Store) PredOf(a AtomID) PredID {
	_, d := s.atom(a)
	return d.pred
}

// Args returns the argument slice of atom a (do not mutate).
func (s *Store) Args(a AtomID) []term.ID {
	owner, d := s.atom(a)
	return owner.argSpace[d.off : d.off+d.n]
}

// ByPred returns all interned atoms with predicate p, in interning order
// per layer, base layers first (do not mutate the per-layer slices). Note
// this includes every atom ever interned, which for engine stores is
// exactly the derived universe.
func (s *Store) ByPred(p PredID) []AtomID {
	if s.base == nil {
		return s.byPred[p]
	}
	base := s.base.ByPred(p)
	local := s.byPred[p]
	if len(local) == 0 {
		return base
	}
	out := make([]AtomID, 0, len(base)+len(local))
	out = append(out, base...)
	return append(out, local...)
}

// Dom returns the set of arguments of atom a (dom(a) in §2.1), with
// duplicates removed, in first-occurrence order.
func (s *Store) Dom(a AtomID) []term.ID {
	args := s.Args(a)
	out := make([]term.ID, 0, len(args))
	for _, t := range args {
		seen := false
		for _, u := range out {
			if u == t {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, t)
		}
	}
	return out
}

// TermDepth returns the maximum Skolem-nesting depth over the arguments of
// atom a; 0 if all arguments are constants.
func (s *Store) TermDepth(a AtomID) int {
	d := 0
	for _, t := range s.Args(a) {
		if td := s.Terms.Depth(t); td > d {
			d = td
		}
	}
	return d
}

// String renders a ground atom as name(arg,…).
func (s *Store) String(a AtomID) string {
	var b strings.Builder
	b.WriteString(s.PredName(s.PredOf(a)))
	args := s.Args(a)
	if len(args) == 0 {
		return b.String()
	}
	b.WriteByte('(')
	for i, t := range args {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s.Terms.String(t))
	}
	b.WriteByte(')')
	return b.String()
}
