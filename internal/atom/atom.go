// Package atom implements the relational layer of the system: predicate
// schemas, interned ground atoms, atom patterns with variables, and the
// matching machinery used by the chase and by query evaluation (paper §2.1).
//
// Ground atoms are interned like terms: a ground atom P(t1,…,tn) has a
// unique AtomID within a Store, so atom sets and indexes operate on dense
// integers.
package atom

import (
	"encoding/binary"
	"fmt"
	"strings"

	"repro/internal/term"
)

// PredID identifies a predicate (relation name + arity) within a Store.
type PredID int32

// AtomID identifies an interned ground atom within a Store.
type AtomID int32

// NoAtom is the null atom ID, used as a sentinel.
const NoAtom AtomID = -1

type predData struct {
	name  string
	arity int
}

// Store interns predicates and ground atoms over a term store. Engines own
// their atom store; it is not safe for concurrent mutation.
type Store struct {
	Terms *term.Store

	preds   []predData
	predIdx map[string]PredID

	atoms    []atomData
	atomIdx  map[string]AtomID
	byPred   [][]AtomID // ground atoms per predicate, in interning order
	argSpace []term.ID  // flat backing array for atom argument slices
}

type atomData struct {
	pred PredID
	off  int32
	n    int32
}

// NewStore returns an empty atom store over the given term store.
func NewStore(ts *term.Store) *Store {
	return &Store{
		Terms:   ts,
		predIdx: make(map[string]PredID),
		atomIdx: make(map[string]AtomID),
	}
}

// Pred interns the predicate with the given name and arity. Predicates are
// identified by name: re-interning a name with a different arity returns an
// error, since the relational schema fixes one arity per relation name.
func (s *Store) Pred(name string, arity int) (PredID, error) {
	if id, ok := s.predIdx[name]; ok {
		if got := s.preds[id].arity; got != arity {
			return 0, fmt.Errorf("atom: predicate %s used with arity %d, previously %d", name, arity, got)
		}
		return id, nil
	}
	id := PredID(len(s.preds))
	s.preds = append(s.preds, predData{name: name, arity: arity})
	s.byPred = append(s.byPred, nil)
	s.predIdx[name] = id
	return id, nil
}

// MustPred is Pred for arities known to be consistent; it panics on schema
// violations and is intended for programmatic construction in tests and
// generators.
func (s *Store) MustPred(name string, arity int) PredID {
	id, err := s.Pred(name, arity)
	if err != nil {
		panic(err)
	}
	return id
}

// LookupPred returns the ID of an already-interned predicate.
func (s *Store) LookupPred(name string) (PredID, bool) {
	id, ok := s.predIdx[name]
	return id, ok
}

// PredName returns the relation name of p.
func (s *Store) PredName(p PredID) string { return s.preds[p].name }

// PredArity returns the arity of p.
func (s *Store) PredArity(p PredID) int { return s.preds[p].arity }

// NumPreds reports the number of interned predicates.
func (s *Store) NumPreds() int { return len(s.preds) }

// MaxArity reports the maximum arity over all interned predicates (the w of
// Proposition 12), or 0 if no predicates exist.
func (s *Store) MaxArity() int {
	w := 0
	for i := range s.preds {
		if s.preds[i].arity > w {
			w = s.preds[i].arity
		}
	}
	return w
}

// Atom interns the ground atom p(args...) and returns its ID. All args must
// be ground terms.
func (s *Store) Atom(p PredID, args []term.ID) AtomID {
	if want := s.preds[p].arity; len(args) != want {
		panic(fmt.Sprintf("atom: %s applied to %d args, want %d", s.preds[p].name, len(args), want))
	}
	key := atomKey(p, args)
	if id, ok := s.atomIdx[key]; ok {
		return id
	}
	for _, a := range args {
		if !s.Terms.IsGround(a) {
			panic("atom: interning non-ground atom")
		}
	}
	off := int32(len(s.argSpace))
	s.argSpace = append(s.argSpace, args...)
	id := AtomID(len(s.atoms))
	s.atoms = append(s.atoms, atomData{pred: p, off: off, n: int32(len(args))})
	s.atomIdx[key] = id
	s.byPred[p] = append(s.byPred[p], id)
	return id
}

// Lookup returns the ID of an already-interned ground atom, if present.
func (s *Store) Lookup(p PredID, args []term.ID) (AtomID, bool) {
	id, ok := s.atomIdx[atomKey(p, args)]
	return id, ok
}

func atomKey(p PredID, args []term.ID) string {
	buf := make([]byte, 4+4*len(args))
	binary.LittleEndian.PutUint32(buf, uint32(p))
	for i, a := range args {
		binary.LittleEndian.PutUint32(buf[4+4*i:], uint32(a))
	}
	return string(buf)
}

// Len reports the number of interned ground atoms.
func (s *Store) Len() int { return len(s.atoms) }

// PredOf returns the predicate of atom a.
func (s *Store) PredOf(a AtomID) PredID { return s.atoms[a].pred }

// Args returns the argument slice of atom a (do not mutate).
func (s *Store) Args(a AtomID) []term.ID {
	d := &s.atoms[a]
	return s.argSpace[d.off : d.off+d.n]
}

// ByPred returns all interned atoms with predicate p, in interning order
// (do not mutate). Note this includes every atom ever interned, which for
// engine stores is exactly the derived universe.
func (s *Store) ByPred(p PredID) []AtomID { return s.byPred[p] }

// Dom returns the set of arguments of atom a (dom(a) in §2.1), with
// duplicates removed, in first-occurrence order.
func (s *Store) Dom(a AtomID) []term.ID {
	args := s.Args(a)
	out := make([]term.ID, 0, len(args))
	for _, t := range args {
		seen := false
		for _, u := range out {
			if u == t {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, t)
		}
	}
	return out
}

// TermDepth returns the maximum Skolem-nesting depth over the arguments of
// atom a; 0 if all arguments are constants.
func (s *Store) TermDepth(a AtomID) int {
	d := 0
	for _, t := range s.Args(a) {
		if td := s.Terms.Depth(t); td > d {
			d = td
		}
	}
	return d
}

// String renders a ground atom as name(arg,…).
func (s *Store) String(a AtomID) string {
	var b strings.Builder
	b.WriteString(s.preds[s.atoms[a].pred].name)
	args := s.Args(a)
	if len(args) == 0 {
		return b.String()
	}
	b.WriteByte('(')
	for i, t := range args {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s.Terms.String(t))
	}
	b.WriteByte(')')
	return b.String()
}
