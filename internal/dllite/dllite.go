// Package dllite implements DL-Lite_{R,⊓,not} ontologies (Example 2, [4])
// and their translation into guarded normal Datalog± programs, so that
// tractable description logics gain nonmonotonic negation under the
// standard WFS with UNA — the application the paper motivates in §1.
//
// Supported axioms:
//
//	B1 ⊓ … ⊓ Bk ⊑ C      concept inclusions, where each Bi is a basic
//	                      concept (A, ∃R, ∃R⁻) or its default negation
//	                      not Bi, and C is a basic concept;
//	R1 ⊑ R2              role inclusions over roles P or P⁻;
//	B1 ⊑ ¬B2             negative inclusions (disjointness), translated
//	                      to negative constraints (extension).
//
// The translation introduces, for every role P used under ∃ in a body
// position, the auxiliary "domain"/"range" predicates realizing ∃P and
// ∃P⁻ as unary atoms (the standard encoding from [4]):
//
//	p(X,Y) -> ex_p(X).      p(X,Y) -> exinv_p(Y).
//
// Concept names and role names are mangled to lower-case-initial predicate
// identifiers (Person → person); see Mangle.
package dllite

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"unicode"
	"unicode/utf8"

	"repro/internal/atom"
	"repro/internal/program"
)

// Role is an atomic role or its inverse.
type Role struct {
	Name    string
	Inverse bool
}

// Inv returns the inverse of r.
func (r Role) Inv() Role { return Role{Name: r.Name, Inverse: !r.Inverse} }

func (r Role) String() string {
	if r.Inverse {
		return r.Name + "⁻"
	}
	return r.Name
}

// BasicKind distinguishes basic concepts.
type BasicKind int

const (
	// KindAtomic is an atomic concept A.
	KindAtomic BasicKind = iota
	// KindExists is an unqualified existential ∃R (or ∃R⁻).
	KindExists
)

// Basic is a basic concept: an atomic concept or ∃R / ∃R⁻.
type Basic struct {
	Kind    BasicKind
	Concept string // KindAtomic
	Role    Role   // KindExists
}

// Atomic returns the atomic concept A.
func Atomic(name string) Basic { return Basic{Kind: KindAtomic, Concept: name} }

// Exists returns ∃R for a role in the forward direction.
func Exists(role string) Basic { return Basic{Kind: KindExists, Role: Role{Name: role}} }

// ExistsInv returns ∃R⁻.
func ExistsInv(role string) Basic {
	return Basic{Kind: KindExists, Role: Role{Name: role, Inverse: true}}
}

func (b Basic) String() string {
	if b.Kind == KindAtomic {
		return b.Concept
	}
	return "∃" + b.Role.String()
}

// Lit is a possibly default-negated basic concept on the left-hand side of
// a concept inclusion.
type Lit struct {
	Basic   Basic
	Negated bool
}

// Pos wraps a basic concept as a positive literal.
func Pos(b Basic) Lit { return Lit{Basic: b} }

// Not wraps a basic concept as a default-negated literal.
func Not(b Basic) Lit { return Lit{Basic: b, Negated: true} }

func (l Lit) String() string {
	if l.Negated {
		return "not " + l.Basic.String()
	}
	return l.Basic.String()
}

// ConceptInclusion is B1 ⊓ … ⊓ Bk ⊑ C.
type ConceptInclusion struct {
	Body []Lit
	Head Basic
}

// RoleInclusion is R1 ⊑ R2.
type RoleInclusion struct {
	Sub, Super Role
}

// NegativeInclusion is B1 ⊑ ¬B2 (disjointness).
type NegativeInclusion struct {
	Left, Right Basic
}

// ConceptAssertion is A(a).
type ConceptAssertion struct {
	Concept    string
	Individual string
}

// RoleAssertion is P(a,b).
type RoleAssertion struct {
	Role string
	A, B string
}

// Ontology is a DL-Lite_{R,⊓,not} TBox + ABox.
type Ontology struct {
	CIs    []ConceptInclusion
	RIs    []RoleInclusion
	NIs    []NegativeInclusion
	Functs []Role // functionality assertions (funct R), (funct R⁻)
	AboxC  []ConceptAssertion
	AboxR  []RoleAssertion
}

// New returns an empty ontology.
func New() *Ontology { return &Ontology{} }

// SubClass adds a concept inclusion with the given body literals and head.
func (o *Ontology) SubClass(head Basic, body ...Lit) *Ontology {
	o.CIs = append(o.CIs, ConceptInclusion{Body: body, Head: head})
	return o
}

// SubRole adds a role inclusion sub ⊑ super.
func (o *Ontology) SubRole(sub, super Role) *Ontology {
	o.RIs = append(o.RIs, RoleInclusion{Sub: sub, Super: super})
	return o
}

// Disjoint adds the negative inclusion left ⊑ ¬right.
func (o *Ontology) Disjoint(left, right Basic) *Ontology {
	o.NIs = append(o.NIs, NegativeInclusion{Left: left, Right: right})
	return o
}

// Functional declares the role functional: (funct R), translated to the
// EGD  r(X,Y), r(X,Z) -> Y = Z  (for inverse roles, on the first
// argument). EGDs are checked against the model under UNA (§5 extension).
func (o *Ontology) Functional(r Role) *Ontology {
	o.Functs = append(o.Functs, r)
	return o
}

// AssertConcept adds A(a) to the ABox.
func (o *Ontology) AssertConcept(concept, individual string) *Ontology {
	o.AboxC = append(o.AboxC, ConceptAssertion{Concept: concept, Individual: individual})
	return o
}

// AssertRole adds P(a,b) to the ABox.
func (o *Ontology) AssertRole(role, a, b string) *Ontology {
	o.AboxR = append(o.AboxR, RoleAssertion{Role: role, A: a, B: b})
	return o
}

// Mangle converts a DL name to a predicate identifier: the first rune is
// lower-cased ("Person" → "person"). Distinct DL names that collide after
// mangling are the caller's responsibility.
func Mangle(name string) string {
	r, size := utf8.DecodeRuneInString(name)
	return string(unicode.ToLower(r)) + name[size:]
}

func exPred(r Role) string {
	if r.Inverse {
		return "exinv_" + Mangle(r.Name)
	}
	return "ex_" + Mangle(r.Name)
}

func roleAtom(r Role, x, y string) string {
	if r.Inverse {
		return fmt.Sprintf("%s(%s, %s)", Mangle(r.Name), y, x)
	}
	return fmt.Sprintf("%s(%s, %s)", Mangle(r.Name), x, y)
}

// ErrNoPositiveBody reports a concept inclusion whose body has no positive
// literal, which cannot be guarded.
var ErrNoPositiveBody = errors.New("dllite: concept inclusion body needs a positive literal (guard)")

// ToDatalog renders the ontology as guarded normal Datalog± source text.
func (o *Ontology) ToDatalog() (string, error) {
	var b strings.Builder
	b.WriteString("% generated from a DL-Lite_{R,⊓,not} ontology\n")

	// Determine which ∃-predicates are needed: every ∃R in a body literal
	// or a negative inclusion requires the auxiliary unary predicate.
	needEx := map[string]bool{}
	noteBasic := func(c Basic) {
		if c.Kind == KindExists {
			needEx[c.Role.Name] = true
		}
	}
	for _, ci := range o.CIs {
		for _, l := range ci.Body {
			noteBasic(l.Basic)
		}
	}
	for _, ni := range o.NIs {
		noteBasic(ni.Left)
		noteBasic(ni.Right)
	}
	var exNames []string
	for name := range needEx {
		exNames = append(exNames, name)
	}
	sort.Strings(exNames)
	for _, name := range exNames {
		fmt.Fprintf(&b, "%s -> %s(X).\n", roleAtom(Role{Name: name}, "X", "Y"), exPred(Role{Name: name}))
		fmt.Fprintf(&b, "%s -> %s(Y).\n", roleAtom(Role{Name: name}, "X", "Y"), exPred(Role{Name: name, Inverse: true}))
	}

	bodyAtom := func(c Basic, v string) string {
		if c.Kind == KindAtomic {
			return fmt.Sprintf("%s(%s)", Mangle(c.Concept), v)
		}
		return fmt.Sprintf("%s(%s)", exPred(c.Role), v)
	}
	headAtom := func(c Basic, v string) string {
		if c.Kind == KindAtomic {
			return fmt.Sprintf("%s(%s)", Mangle(c.Concept), v)
		}
		// ∃R in head position: fresh existential variable.
		return roleAtom(c.Role, v, "Z")
	}

	for _, ci := range o.CIs {
		hasPos := false
		var parts []string
		for _, l := range ci.Body {
			a := bodyAtom(l.Basic, "X")
			if l.Negated {
				parts = append(parts, "not "+a)
			} else {
				parts = append(parts, a)
				hasPos = true
			}
		}
		if !hasPos {
			return "", fmt.Errorf("%w: %v ⊑ %v", ErrNoPositiveBody, ci.Body, ci.Head)
		}
		fmt.Fprintf(&b, "%s -> %s.\n", strings.Join(parts, ", "), headAtom(ci.Head, "X"))
	}
	for _, ri := range o.RIs {
		fmt.Fprintf(&b, "%s -> %s.\n", roleAtom(ri.Sub, "X", "Y"), roleAtom(ri.Super, "X", "Y"))
	}
	for _, ni := range o.NIs {
		fmt.Fprintf(&b, "%s, %s -> false.\n", bodyAtom(ni.Left, "X"), bodyAtom(ni.Right, "X"))
	}
	for _, r := range o.Functs {
		fmt.Fprintf(&b, "%s, %s -> Y = Z.\n", roleAtom(r, "X", "Y"), roleAtom(r, "X", "Z"))
	}
	for _, ca := range o.AboxC {
		fmt.Fprintf(&b, "%s(%s).\n", Mangle(ca.Concept), ca.Individual)
	}
	for _, ra := range o.AboxR {
		fmt.Fprintf(&b, "%s(%s, %s).\n", Mangle(ra.Role), ra.A, ra.B)
	}
	return b.String(), nil
}

// Compile translates and compiles the ontology into a program and database
// over the given store.
func (o *Ontology) Compile(st *atom.Store) (*program.Program, program.Database, error) {
	src, err := o.ToDatalog()
	if err != nil {
		return nil, nil, err
	}
	prog, db, _, err := program.CompileText(src, st)
	if err != nil {
		return nil, nil, fmt.Errorf("dllite: compiling translation: %w", err)
	}
	return prog, db, nil
}
