package dllite

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/atom"
	"repro/internal/core"
	"repro/internal/ground"
	"repro/internal/program"
	"repro/internal/term"
)

// employment builds the paper's Example 2 ontology with its ABox.
func employment() *Ontology {
	o := New()
	o.SubClass(Exists("EmployeeID"),
		Pos(Atomic("Person")), Pos(Atomic("Employed")), Not(Exists("JobSeekerID")))
	o.SubClass(Exists("JobSeekerID"),
		Pos(Atomic("Person")), Not(Atomic("Employed")), Not(Exists("EmployeeID")))
	o.SubClass(Atomic("ValidID"),
		Pos(ExistsInv("EmployeeID")), Not(ExistsInv("JobSeekerID")))
	o.AssertConcept("Person", "a")
	o.AssertConcept("Person", "b")
	o.AssertConcept("Employed", "a")
	return o
}

func evaluate(t *testing.T, o *Ontology) (*core.Model, *atom.Store) {
	t.Helper()
	st := atom.NewStore(term.NewStore())
	prog, db, err := o.Compile(st)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := core.NewEngine(prog, db, core.Options{}).Evaluate()
	return m, st
}

func truthOf(t *testing.T, m *core.Model, st *atom.Store, atomSrc string) ground.Truth {
	t.Helper()
	q, err := program.ParseQuery("? "+atomSrc+".", st)
	if err != nil {
		t.Fatalf("parse %s: %v", atomSrc, err)
	}
	if q.NumVars > 0 {
		// Existentially quantified check: answer the query.
		return m.Answer(q)
	}
	sub := atom.NewSubst(0)
	return m.Truth(st.Instantiate(q.Pos[0], sub))
}

// TestExample2PaperConsequences verifies the exact consequences the paper
// derives in §1: EmployeeID(a, f(a)), JobSeekerID(b, g(b)), and — because
// f(a) ≠ g(b) under UNA — ValidID(f(a)).
func TestExample2PaperConsequences(t *testing.T) {
	m, st := evaluate(t, employment())
	if !m.Exact {
		t.Fatalf("employment chase should saturate")
	}
	for _, q := range []string{
		"employeeID(a, X)",
		"jobSeekerID(b, X)",
		"validID(X)",
	} {
		if got := truthOf(t, m, st, q); got != ground.True {
			t.Errorf("%s = %v, want true", q, got)
		}
	}
	// a is employed: not a job seeker; b is not employed: no employee ID.
	for _, q := range []string{"jobSeekerID(a, X)", "employeeID(b, X)"} {
		if got := truthOf(t, m, st, q); got != ground.False {
			t.Errorf("%s = %v, want false", q, got)
		}
	}
	// The valid ID is exactly the null f(a): the Skolem term from the
	// first concept inclusion applied to a.
	valid, _ := st.LookupPred("validID")
	count := 0
	for _, g := range m.TrueAtoms() {
		if st.PredOf(g) == valid {
			count++
			arg := st.Args(g)[0]
			if st.Terms.Kind(arg) != term.Skolem {
				t.Errorf("validID over a non-null term %s", st.Terms.String(arg))
			}
		}
	}
	if count != 1 {
		t.Errorf("validID count = %d, want 1", count)
	}
}

func TestTranslationShape(t *testing.T) {
	src, err := employment().ToDatalog()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"person(X), employed(X), not ex_jobSeekerID(X) -> employeeID(X, Z).",
		"person(X), not employed(X), not ex_employeeID(X) -> jobSeekerID(X, Z).",
		"exinv_employeeID(X), not exinv_jobSeekerID(X) -> validID(X).",
		"employeeID(X, Y) -> ex_employeeID(X).",
		"employeeID(X, Y) -> exinv_employeeID(Y).",
		"person(a).",
		"employed(a).",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("translation missing %q:\n%s", want, src)
		}
	}
	// Aux rules must not be duplicated.
	if strings.Count(src, "employeeID(X, Y) -> ex_employeeID(X).") != 1 {
		t.Errorf("duplicated aux rule:\n%s", src)
	}
}

func TestRoleInclusionsAndInverse(t *testing.T) {
	o := New()
	o.SubRole(Role{Name: "advises"}, Role{Name: "worksWith"})
	o.SubRole(Role{Name: "advises", Inverse: true}, Role{Name: "advisedBy"})
	o.AssertRole("advises", "t", "a")
	m, st := evaluate(t, o)
	if got := truthOf(t, m, st, "worksWith(t, a)"); got != ground.True {
		t.Errorf("role inclusion failed: %v", got)
	}
	if got := truthOf(t, m, st, "advisedBy(a, t)"); got != ground.True {
		t.Errorf("inverse role inclusion failed: %v", got)
	}
}

func TestDisjointnessBecomesConstraint(t *testing.T) {
	o := New()
	o.Disjoint(Atomic("Cat"), Atomic("Dog"))
	o.AssertConcept("Cat", "rex")
	o.AssertConcept("Dog", "rex")
	st := atom.NewStore(term.NewStore())
	prog, db, err := o.Compile(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Constraints) != 1 {
		t.Fatalf("constraints = %d, want 1", len(prog.Constraints))
	}
	m := core.NewEngine(prog, db, core.Options{}).Evaluate()
	if m.Consistent() {
		t.Errorf("disjointness violation not detected")
	}
}

func TestDisjointnessOverExistentials(t *testing.T) {
	o := New()
	o.Disjoint(Exists("owns"), Atomic("Banned"))
	o.AssertRole("owns", "a", "x")
	o.AssertConcept("Banned", "a")
	st := atom.NewStore(term.NewStore())
	prog, db, err := o.Compile(st)
	if err != nil {
		t.Fatal(err)
	}
	m := core.NewEngine(prog, db, core.Options{}).Evaluate()
	if m.Consistent() {
		t.Errorf("∃owns ⊓ Banned violation not detected")
	}
}

func TestNoPositiveBodyRejected(t *testing.T) {
	o := New()
	o.SubClass(Atomic("Weird"), Not(Atomic("Anything")))
	if _, err := o.ToDatalog(); !errors.Is(err, ErrNoPositiveBody) {
		t.Errorf("error = %v, want ErrNoPositiveBody", err)
	}
}

func TestMangle(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"Person", "person"},
		{"person", "person"},
		{"EmployeeID", "employeeID"},
		{"É", "é"},
	} {
		if got := Mangle(tc.in); got != tc.want {
			t.Errorf("Mangle(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestStringers(t *testing.T) {
	if Exists("R").String() != "∃R" {
		t.Errorf("Exists stringer wrong")
	}
	if ExistsInv("R").String() != "∃R⁻" {
		t.Errorf("ExistsInv stringer wrong")
	}
	if Not(Atomic("A")).String() != "not A" {
		t.Errorf("Lit stringer wrong")
	}
	if (Role{Name: "r", Inverse: true}).Inv() != (Role{Name: "r"}) {
		t.Errorf("Inv wrong")
	}
}

// TestEFWFSContrast reproduces the §1 contrast: under UNA the WFS model is
// total (no undefined atoms) on the employment example, and the valid-ID
// conclusion is reached — the thing EFWFS cannot do.
func TestEFWFSContrast(t *testing.T) {
	m, _ := evaluate(t, employment())
	if m.GM.CountUndefined() != 0 {
		t.Errorf("employment model has undefined atoms")
	}
}

func TestFunctionalRoleEGD(t *testing.T) {
	o := New()
	o.Functional(Role{Name: "hasID"})
	o.AssertRole("hasID", "a", "k1")
	o.AssertRole("hasID", "a", "k2")
	st := atom.NewStore(term.NewStore())
	prog, db, err := o.Compile(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.EGDs) != 1 {
		t.Fatalf("EGDs = %d, want 1", len(prog.EGDs))
	}
	m := core.NewEngine(prog, db, core.Options{}).Evaluate()
	vs := m.CheckConstraints()
	if len(vs) != 1 || vs[0].Kind != "egd" {
		t.Errorf("functionality violation not detected: %+v", vs)
	}
}

func TestFunctionalInverseRole(t *testing.T) {
	o := New()
	o.Functional(Role{Name: "owns", Inverse: true}) // at most one owner
	o.AssertRole("owns", "a", "car")
	o.AssertRole("owns", "b", "car")
	st := atom.NewStore(term.NewStore())
	prog, db, err := o.Compile(st)
	if err != nil {
		t.Fatal(err)
	}
	m := core.NewEngine(prog, db, core.Options{}).Evaluate()
	if len(m.CheckConstraints()) != 1 {
		t.Errorf("inverse functionality violation not detected")
	}
}
