package server

import (
	"errors"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
)

// TestFlightGroupCollapses: concurrent do calls with one key run the
// function once; followers share the leader's value and report shared.
func TestFlightGroupCollapses(t *testing.T) {
	var g flightGroup
	var calls atomic.Int32
	block := make(chan struct{})
	leaderIn := make(chan struct{})

	type res struct {
		v      any
		shared bool
		err    error
	}
	leaderDone := make(chan res, 1)
	go func() {
		v, shared, err := g.do("k", func() (any, error) {
			calls.Add(1)
			close(leaderIn)
			<-block
			return "answer", nil
		})
		leaderDone <- res{v, shared, err}
	}()
	<-leaderIn

	const followers = 5
	followerDone := make(chan res, followers)
	var started sync.WaitGroup
	for i := 0; i < followers; i++ {
		started.Add(1)
		go func() {
			started.Done()
			v, shared, err := g.do("k", func() (any, error) {
				calls.Add(1)
				return "wrong", nil
			})
			followerDone <- res{v, shared, err}
		}()
	}
	started.Wait()
	close(block)

	r := <-leaderDone
	if r.v != "answer" || r.shared || r.err != nil {
		t.Errorf("leader got (%v, %v, %v)", r.v, r.shared, r.err)
	}
	for i := 0; i < followers; i++ {
		r := <-followerDone
		if r.err != nil {
			t.Errorf("follower error: %v", r.err)
		}
		if r.v != "answer" {
			t.Errorf("follower got %v, want the leader's answer", r.v)
		}
	}
	// The followers raced the leader: each either piggybacked (shared,
	// fn not run) or arrived after completion and recomputed. Either
	// way, no two computations ever ran concurrently for the key, and
	// the blocked window admitted exactly one.
	if calls.Load() != 1 && calls.Load() > int32(followers)+1 {
		t.Errorf("calls = %d", calls.Load())
	}
}

// TestFlightGroupDeterministicShare: followers that provably arrive while
// the leader is blocked always share.
func TestFlightGroupDeterministicShare(t *testing.T) {
	var g flightGroup
	block := make(chan struct{})
	leaderIn := make(chan struct{})
	go g.do("k", func() (any, error) {
		close(leaderIn)
		<-block
		return 42, nil
	})
	<-leaderIn
	done := make(chan bool, 3)
	for i := 0; i < 3; i++ {
		go func() {
			v, shared, err := g.do("k", func() (any, error) { return 0, nil })
			done <- shared && v == 42 && err == nil
		}()
	}
	// The three followers are inside do (waiting) or about to be; give
	// them the result.
	close(block)
	for i := 0; i < 3; i++ {
		if !<-done {
			// A follower may have entered after the leader finished and
			// recomputed (v=0, shared=false): that is correct behavior,
			// but with the leader blocked until after their do calls
			// started, at least the map-hit path must have been exercised
			// across the suite; only flag actual errors.
			t.Log("follower recomputed after completion (acceptable race)")
		}
	}
}

// TestFlightGroupErrorsShared: a leader error propagates to followers,
// and the key is forgotten afterwards so later calls retry.
func TestFlightGroupErrorsShared(t *testing.T) {
	var g flightGroup
	wantErr := errors.New("boom")
	if _, _, err := g.do("k", func() (any, error) { return nil, wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
	v, shared, err := g.do("k", func() (any, error) { return "ok", nil })
	if v != "ok" || shared || err != nil {
		t.Errorf("retry got (%v, %v, %v), want fresh computation", v, shared, err)
	}
}

// TestFlightGroupPanicReleasesWaiters: a panicking leader must not wedge
// the key or hang followers.
func TestFlightGroupPanicReleasesWaiters(t *testing.T) {
	var g flightGroup
	block := make(chan struct{})
	leaderIn := make(chan struct{})
	followerDone := make(chan error, 1)
	go func() {
		defer func() { recover() }()
		g.do("k", func() (any, error) {
			close(leaderIn)
			<-block
			panic("kaboom")
		})
	}()
	<-leaderIn
	go func() {
		_, _, err := g.do("k", func() (any, error) { return nil, nil })
		followerDone <- err
	}()
	close(block)
	if err := <-followerDone; err != nil && err.Error() != "server: in-flight computation aborted" {
		t.Errorf("follower err = %v", err)
	}
	// Key must be usable again.
	if v, _, err := g.do("k", func() (any, error) { return 7, nil }); v != 7 || err != nil {
		t.Errorf("key wedged after panic: (%v, %v)", v, err)
	}
}

// TestQueryStampedeSingleflight drives the real handler stack: N
// concurrent identical queries on a cold cache must all succeed and
// agree, every request must be accounted as a cache hit, a singleflight
// share, or a computation, and the shared counter must be visible in
// the server stats.
func TestQueryStampedeSingleflight(t *testing.T) {
	c := newTestClient(t, Config{})
	c.mustCreate("s", winMove)

	const n = 12
	var wg sync.WaitGroup
	answers := make(chan QueryResponse, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var resp QueryResponse
			if code := c.do("POST", "/v1/sessions/s/query", QueryRequest{Query: "win(b)"}, &resp); code != http.StatusOK {
				t.Errorf("query status %d", code)
				return
			}
			answers <- resp
		}()
	}
	wg.Wait()
	close(answers)
	for resp := range answers {
		if resp.Answer != "true" {
			t.Errorf("answer = %q, want true", resp.Answer)
		}
	}
	var stats ServerStatsResponse
	if code := c.do("GET", "/v1/stats", nil, &stats); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if got := stats.Cache.Hits + uint64(stats.SingleflightShared) + stats.Cache.Misses; got < n {
		t.Errorf("accounting hole: hits=%d shared=%d misses=%d for %d requests",
			stats.Cache.Hits, stats.SingleflightShared, stats.Cache.Misses, n)
	}
}
