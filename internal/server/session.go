package server

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	wfs "repro"
	"repro/internal/analysis"
	"repro/internal/trace"
	"repro/internal/wal"
)

// Session is one named, loaded program served by wfsd. The embedded
// wfs.System atomically publishes an immutable current snapshot (see the
// wfs package comment): read endpoints call Sys.Snapshot() and answer
// from it in parallel with no per-session serialization, while writes
// (facts) bump the epoch and invalidate it. The Session layer adds only
// identity and bookkeeping, so a Session may be used from many requests
// at once.
type Session struct {
	Name      string
	CreatedAt time.Time
	Sys       *wfs.System

	// Durability state (nil wlog when the server runs without a data
	// dir). src and opts are retained so checkpoints can persist the
	// exact compilation inputs; ckptBusy single-flights the background
	// checkpointer so a burst of mutations schedules at most one.
	src      string
	opts     wfs.Options
	wlog     *wal.SessionLog
	ckptBusy atomic.Bool
	// breaker trips the session into read-only mode after consecutive
	// WAL append failures (nil = breaker disabled). See readonly.go.
	breaker *breaker

	// id is unique across all sessions ever created in this process,
	// including recreations under a reused name. Cache keys embed it
	// rather than the name, so a delete-and-recreate can never collide
	// with entries of the earlier incarnation (whose epoch also restarts
	// at zero).
	id uint64
}

// ID returns the session's process-unique identity.
func (s *Session) ID() uint64 { return s.id }

var sessionIDs atomic.Uint64

// Registry is the concurrency-safe store of live sessions, bounded to
// maxSessions (0 = unbounded).
type Registry struct {
	mu          sync.RWMutex
	sessions    map[string]*Session
	maxSessions int
	now         func() time.Time // injectable for tests

	// Durability (nil wal = in-memory only): session creation writes the
	// initial checkpoint, every mutation appends to the session's log via
	// a commit hook, and deletion removes the log. Set once by
	// Server.OpenWAL before the listener starts, never mutated after.
	wal    *wal.Manager
	logger *log.Logger

	// Circuit-breaker sizing for per-session read-only protection
	// (breakerThreshold 0 = disabled) and the count of sessions whose
	// breaker is currently open, for the wfsd_wal_readonly gauge. Set
	// once by server.New.
	breakerThreshold int
	probeInterval    time.Duration
	walReadonly      atomic.Int64

	// recorder, when non-nil, receives traces of background durability
	// work (checkpoints) that no HTTP request observes. Set once by
	// server.New.
	recorder *trace.Recorder

	// ckptWG counts in-flight background checkpoints so shutdown (and
	// tests tearing down a data dir) can join them: an unjoined
	// checkpointer would race its segment writes against the final
	// CheckpointAll, or against removal of the directory it writes to.
	ckptWG sync.WaitGroup
}

// NewRegistry returns an empty registry bounded to maxSessions.
func NewRegistry(maxSessions int) *Registry {
	return &Registry{
		sessions:    make(map[string]*Session),
		maxSessions: maxSessions,
		now:         time.Now,
	}
}

// validateName enforces the session-name grammar: non-empty, at most 128
// bytes, and free of control characters and '/' (names appear in URL
// paths and cache-key prefixes).
func validateName(name string) error {
	if name == "" {
		return fmt.Errorf("server: session name must be non-empty")
	}
	if len(name) > 128 {
		return fmt.Errorf("server: session name longer than 128 bytes")
	}
	if name == "." || name == ".." {
		// ServeMux path cleaning would 301-redirect these names' URLs,
		// making the session unreachable and undeletable over HTTP.
		return fmt.Errorf("server: session name %q is reserved", name)
	}
	for _, r := range name {
		if r < 0x20 || r == 0x7f || r == '/' {
			return fmt.Errorf("server: session name contains forbidden character %q", r)
		}
	}
	return nil
}

// ErrSessionExists reports a Create against a name already in use.
type ErrSessionExists struct{ Name string }

func (e *ErrSessionExists) Error() string {
	return fmt.Sprintf("server: session %q already exists", e.Name)
}

// ErrNoSession reports a lookup of an unknown session.
type ErrNoSession struct{ Name string }

func (e *ErrNoSession) Error() string {
	return fmt.Sprintf("server: no session %q", e.Name)
}

// ErrTooManySessions reports that the registry is at capacity.
type ErrTooManySessions struct{ Max int }

func (e *ErrTooManySessions) Error() string {
	return fmt.Sprintf("server: session limit reached (%d)", e.Max)
}

// ErrProgramDiagnostics reports a program rejected at session creation
// for Error-severity static-analysis findings (e.g. a rule over a
// predicate with no facts and no derivation). Diagnostics carries the
// full report, all severities, for the structured 400 body.
type ErrProgramDiagnostics struct{ Diagnostics []analysis.Diagnostic }

func (e *ErrProgramDiagnostics) Error() string {
	nerr := 0
	first := ""
	for _, d := range e.Diagnostics {
		if d.Severity == analysis.Error {
			nerr++
			if first == "" {
				first = d.String()
			}
		}
	}
	return fmt.Sprintf("server: program rejected: %d error diagnostic(s), first: %s", nerr, first)
}

// Create compiles src under opts and registers it under name. Compilation
// runs outside the registry lock so a slow load never blocks lookups; the
// name is reserved first so two racing creates cannot both win.
func (r *Registry) Create(name, src string, opts wfs.Options) (*Session, error) {
	return r.CreateTraced(name, src, opts, nil)
}

// CreateTraced is Create recording the load's phases — parse/compile,
// static analysis, the initial WAL checkpoint — under tr. A nil tr is
// Create.
func (r *Registry) CreateTraced(name, src string, opts wfs.Options, tr *trace.Span) (*Session, error) {
	if err := validateName(name); err != nil {
		return nil, err
	}
	r.mu.Lock()
	if _, ok := r.sessions[name]; ok {
		r.mu.Unlock()
		return nil, &ErrSessionExists{Name: name}
	}
	if r.maxSessions > 0 && len(r.sessions) >= r.maxSessions {
		r.mu.Unlock()
		return nil, &ErrTooManySessions{Max: r.maxSessions}
	}
	r.sessions[name] = nil // reserve
	r.mu.Unlock()

	// Release the reservation unless the session was stored — deferred
	// so even a compiler panic cannot leak an undeletable nil entry.
	var s *Session
	defer func() {
		r.mu.Lock()
		if s == nil {
			delete(r.sessions, name)
		} else {
			r.sessions[name] = s
		}
		r.mu.Unlock()
	}()

	sys, err := wfs.LoadWithOptionsTraced(src, opts, tr)
	if err != nil {
		return nil, err
	}
	// Reject programs with Error-severity analysis findings before any
	// durable state (WAL checkpoint) is created: such a program compiles
	// but contains rules that can never fire — almost always a typo'd
	// predicate — and serving it would silently answer False forever.
	if rep := sys.Analysis(); rep != nil && rep.HasErrors() {
		return nil, &ErrProgramDiagnostics{Diagnostics: rep.Diagnostics}
	}
	sess := &Session{Name: name, CreatedAt: r.now(), Sys: sys, src: src, opts: opts, id: sessionIDs.Add(1)}
	if r.wal != nil {
		// The initial checkpoint IS the durable "source load" record:
		// program text, options, the database as loaded, epoch 0. It is
		// fsynced before the session becomes visible, so a crash right
		// after a 201 recovers the session.
		endDump := tr.Phase("dump-state")
		facts, epoch := sys.DumpState()
		endDump()
		lg, err := r.wal.CreateTraced(name, wal.Checkpoint{
			Source: src, Options: opts, Epoch: epoch, Facts: facts,
		}, tr)
		if err != nil {
			return nil, err
		}
		sess.wlog = lg
		r.attachWAL(sess)
	}
	s = sess
	return s, nil
}

// attachWAL installs the session's commit hook: serialize and (per the
// manager's fsync option) sync every validated mutation batch to the
// session log BEFORE the in-memory commit — a log failure rejects the
// mutation — and schedule a background checkpoint when the un-
// checkpointed log crosses its threshold. Append failures feed the
// session's circuit breaker: after threshold consecutive failures the
// session goes read-only and mutations are refused up front until a
// background probe sees the disk heal (see readonly.go).
func (r *Registry) attachWAL(sess *Session) {
	sess.breaker = r.newBreaker()
	sess.Sys.SetCommitHookTraced(func(epoch uint64, adds, retracts []wfs.FactRef, tr *trace.Span) error {
		if sess.breaker.isOpen() {
			return &ErrWALUnavailable{Name: sess.Name, ReadOnly: true}
		}
		if err := sess.wlog.AppendTraced(epoch, adds, retracts, tr); err != nil {
			if sess.breaker.recordFailure() {
				if r.logger != nil {
					r.logger.Printf("wal: session %q entering read-only mode after %d consecutive append failures: %v",
						sess.Name, sess.breaker.threshold, err)
				}
				go r.probeUntilHealed(sess)
			}
			return &ErrWALUnavailable{Name: sess.Name, Err: err}
		}
		sess.breaker.recordSuccess()
		if sess.wlog.NeedCheckpoint() && sess.ckptBusy.CompareAndSwap(false, true) {
			r.ckptWG.Add(1)
			go func() {
				defer r.ckptWG.Done()
				defer sess.ckptBusy.Store(false)
				// The dump inside blocks on the system read lock until
				// the triggering mutation commits; rotation has already
				// redirected its record into the fresh segment.
				if err := r.checkpoint(sess); err != nil {
					r.logger.Printf("wal: background checkpoint of session %q: %v", sess.Name, err)
				}
			}()
		}
		return nil
	})
}

// checkpoint writes one full-state checkpoint of the session. No HTTP
// request observes this work (it runs in the background), so its trace
// is recorded directly into the flight recorder under an internal
// route; a failed checkpoint records as an error-class trace.
func (r *Registry) checkpoint(sess *Session) error {
	var root *trace.Span
	if r.recorder != nil {
		root = trace.New("checkpoint")
	}
	start := time.Now()
	err := sess.wlog.CheckpointTraced(func() wal.Checkpoint {
		facts, epoch := sess.Sys.DumpState()
		return wal.Checkpoint{Source: sess.src, Options: sess.opts, Epoch: epoch, Facts: facts}
	}, root)
	if r.recorder != nil {
		root.End()
		rt := &trace.RequestTrace{
			TraceID:       trace.MintContext().TraceIDString(),
			Route:         "internal/checkpoint",
			Session:       sess.Name,
			Status:        200,
			StartUnixNano: start.UnixNano(),
			DurationUS:    time.Since(start).Microseconds(),
			Span:          root,
		}
		if err != nil {
			rt.Status = 500
			rt.Error = err.Error()
		}
		r.recorder.Record(rt)
	}
	return err
}

// CheckpointAll writes a final checkpoint for every live session — the
// graceful-shutdown path: after it, a clean restart replays zero records.
func (r *Registry) CheckpointAll() error {
	if r.wal == nil {
		return nil
	}
	var firstErr error
	for _, name := range r.Names() {
		sess, err := r.Get(name)
		if err != nil || sess.wlog == nil {
			continue
		}
		if err := r.checkpoint(sess); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// adopt registers a session recovered from the write-ahead log, applying
// the same name/capacity rules as Create. Called by Server.OpenWAL before
// the listener starts, so there is no create/adopt race in practice; the
// locking makes it safe regardless.
func (r *Registry) adopt(sess *Session) error {
	if err := validateName(sess.Name); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.sessions[sess.Name]; ok {
		return &ErrSessionExists{Name: sess.Name}
	}
	if r.maxSessions > 0 && len(r.sessions) >= r.maxSessions {
		return &ErrTooManySessions{Max: r.maxSessions}
	}
	r.sessions[sess.Name] = sess
	return nil
}

// Get returns the named session.
func (r *Registry) Get(name string) (*Session, error) {
	r.mu.RLock()
	s, ok := r.sessions[name]
	r.mu.RUnlock()
	if !ok || s == nil { // nil: creation still in flight
		return nil, &ErrNoSession{Name: name}
	}
	return s, nil
}

// Delete removes the named session, returning it (nil if absent) so
// callers can purge per-session state keyed by its ID. With durability
// enabled, the session's log directory is removed too (outside the
// registry lock — directory removal is IO), making the deletion survive
// restarts.
func (r *Registry) Delete(name string) *Session {
	r.mu.Lock()
	s, ok := r.sessions[name]
	if !ok || s == nil {
		r.mu.Unlock()
		return nil
	}
	delete(r.sessions, name)
	r.mu.Unlock()
	if s.wlog != nil {
		if err := r.wal.Remove(name); err != nil {
			r.logger.Printf("wal: %v", err)
		}
	}
	return s
}

// Names lists registered sessions in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.sessions))
	for name, s := range r.sessions {
		if s != nil {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Len reports the number of registered sessions (including reservations).
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.sessions)
}
