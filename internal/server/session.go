package server

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	wfs "repro"
)

// Session is one named, loaded program served by wfsd. The embedded
// wfs.System atomically publishes an immutable current snapshot (see the
// wfs package comment): read endpoints call Sys.Snapshot() and answer
// from it in parallel with no per-session serialization, while writes
// (facts) bump the epoch and invalidate it. The Session layer adds only
// identity and bookkeeping, so a Session may be used from many requests
// at once.
type Session struct {
	Name      string
	CreatedAt time.Time
	Sys       *wfs.System

	// id is unique across all sessions ever created in this process,
	// including recreations under a reused name. Cache keys embed it
	// rather than the name, so a delete-and-recreate can never collide
	// with entries of the earlier incarnation (whose epoch also restarts
	// at zero).
	id uint64
}

// ID returns the session's process-unique identity.
func (s *Session) ID() uint64 { return s.id }

var sessionIDs atomic.Uint64

// Registry is the concurrency-safe store of live sessions, bounded to
// maxSessions (0 = unbounded).
type Registry struct {
	mu          sync.RWMutex
	sessions    map[string]*Session
	maxSessions int
	now         func() time.Time // injectable for tests
}

// NewRegistry returns an empty registry bounded to maxSessions.
func NewRegistry(maxSessions int) *Registry {
	return &Registry{
		sessions:    make(map[string]*Session),
		maxSessions: maxSessions,
		now:         time.Now,
	}
}

// validateName enforces the session-name grammar: non-empty, at most 128
// bytes, and free of control characters and '/' (names appear in URL
// paths and cache-key prefixes).
func validateName(name string) error {
	if name == "" {
		return fmt.Errorf("server: session name must be non-empty")
	}
	if len(name) > 128 {
		return fmt.Errorf("server: session name longer than 128 bytes")
	}
	if name == "." || name == ".." {
		// ServeMux path cleaning would 301-redirect these names' URLs,
		// making the session unreachable and undeletable over HTTP.
		return fmt.Errorf("server: session name %q is reserved", name)
	}
	for _, r := range name {
		if r < 0x20 || r == 0x7f || r == '/' {
			return fmt.Errorf("server: session name contains forbidden character %q", r)
		}
	}
	return nil
}

// ErrSessionExists reports a Create against a name already in use.
type ErrSessionExists struct{ Name string }

func (e *ErrSessionExists) Error() string {
	return fmt.Sprintf("server: session %q already exists", e.Name)
}

// ErrNoSession reports a lookup of an unknown session.
type ErrNoSession struct{ Name string }

func (e *ErrNoSession) Error() string {
	return fmt.Sprintf("server: no session %q", e.Name)
}

// ErrTooManySessions reports that the registry is at capacity.
type ErrTooManySessions struct{ Max int }

func (e *ErrTooManySessions) Error() string {
	return fmt.Sprintf("server: session limit reached (%d)", e.Max)
}

// Create compiles src under opts and registers it under name. Compilation
// runs outside the registry lock so a slow load never blocks lookups; the
// name is reserved first so two racing creates cannot both win.
func (r *Registry) Create(name, src string, opts wfs.Options) (*Session, error) {
	if err := validateName(name); err != nil {
		return nil, err
	}
	r.mu.Lock()
	if _, ok := r.sessions[name]; ok {
		r.mu.Unlock()
		return nil, &ErrSessionExists{Name: name}
	}
	if r.maxSessions > 0 && len(r.sessions) >= r.maxSessions {
		r.mu.Unlock()
		return nil, &ErrTooManySessions{Max: r.maxSessions}
	}
	r.sessions[name] = nil // reserve
	r.mu.Unlock()

	// Release the reservation unless the session was stored — deferred
	// so even a compiler panic cannot leak an undeletable nil entry.
	var s *Session
	defer func() {
		r.mu.Lock()
		if s == nil {
			delete(r.sessions, name)
		} else {
			r.sessions[name] = s
		}
		r.mu.Unlock()
	}()

	sys, err := wfs.LoadWithOptions(src, opts)
	if err != nil {
		return nil, err
	}
	s = &Session{Name: name, CreatedAt: r.now(), Sys: sys, id: sessionIDs.Add(1)}
	return s, nil
}

// Get returns the named session.
func (r *Registry) Get(name string) (*Session, error) {
	r.mu.RLock()
	s, ok := r.sessions[name]
	r.mu.RUnlock()
	if !ok || s == nil { // nil: creation still in flight
		return nil, &ErrNoSession{Name: name}
	}
	return s, nil
}

// Delete removes the named session, returning it (nil if absent) so
// callers can purge per-session state keyed by its ID.
func (r *Registry) Delete(name string) *Session {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.sessions[name]
	if !ok || s == nil {
		return nil
	}
	delete(r.sessions, name)
	return s
}

// Names lists registered sessions in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.sessions))
	for name, s := range r.sessions {
		if s != nil {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Len reports the number of registered sessions (including reservations).
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.sessions)
}
