package server

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"time"

	wfs "repro"
	"repro/internal/trace"
)

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleServerStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ServerStatsResponse{
		Sessions:           s.reg.Len(),
		Cache:              s.cache.Stats(),
		SingleflightShared: s.shared.Load(),
		InFlight:           s.limiter.inFlight.Load(),
		Waiting:            s.limiter.waiting.Load(),
		RejectedTimeout:    s.limiter.timeouts.Load(),
		RejectedCanceled:   s.limiter.canceled.Load(),
		MaxConcurrent:      s.cfg.MaxConcurrent,
		MaxQueueWaitMS:     s.cfg.MaxQueueWait.Milliseconds(),
		QueryTimeoutMS:     s.cfg.QueryTimeout.Milliseconds(),
		QueryTimeouts:      s.queryTimeouts.Load(),
		QueryCancels:       s.queryCancels.Load(),
		SlowQueries:        s.slowQueries.Load(),
		UptimeSeconds:      time.Since(s.started).Seconds(),
		WAL:                s.walStats(),
	})
}

func (s *Server) sessionInfo(sess *Session) SessionInfo {
	facts, epoch := sess.Sys.FactsEpoch()
	return SessionInfo{
		Name:      sess.Name,
		CreatedAt: sess.CreatedAt.UTC().Format(time.RFC3339),
		Facts:     facts,
		Epoch:     epoch,
		Queries:   sess.Sys.NumQueries(),
	}
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req CreateSessionRequest
	if err := readJSON(w, r, &req, s.cfg.MaxBodyBytes); err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	opts, err := req.Options.toOptions()
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	sess, err := s.reg.CreateTraced(req.Name, req.Program, opts, requestTrace(r).span())
	if err != nil {
		writeError(w, r, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, CreateSessionResponse{
		SessionInfo: s.sessionInfo(sess),
		Analysis:    analysisDTO(sess.Sys.Analysis(), true),
	})
}

func (s *Server) handleListSessions(w http.ResponseWriter, r *http.Request) {
	resp := SessionListResponse{Sessions: []SessionInfo{}} // JSON: [] not null
	for _, name := range s.reg.Names() {
		if sess, err := s.reg.Get(name); err == nil {
			resp.Sessions = append(resp.Sessions, s.sessionInfo(sess))
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// session resolves the {name} path parameter, writing a 404 on failure.
func (s *Server) session(w http.ResponseWriter, r *http.Request) *Session {
	sess, err := s.reg.Get(r.PathValue("name"))
	if err != nil {
		writeError(w, r, statusFor(err), err)
		return nil
	}
	return sess
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	if sess := s.session(w, r); sess != nil {
		writeJSON(w, http.StatusOK, s.sessionInfo(sess))
	}
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	sess := s.reg.Delete(name)
	if sess == nil {
		writeError(w, r, http.StatusNotFound, &ErrNoSession{Name: name})
		return
	}
	s.cache.DeleteSession(sess.ID())
	w.WriteHeader(http.StatusNoContent)
}

// mutationFacts validates the shared request shape of the facts/retract
// endpoints: a non-empty list of facts, each with a predicate.
func (s *Server) mutationFacts(w http.ResponseWriter, r *http.Request) (*Session, []Fact, bool) {
	sess := s.session(w, r)
	if sess == nil {
		return nil, nil, false
	}
	var req AddFactsRequest
	if err := readJSON(w, r, &req, s.cfg.MaxBodyBytes); err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return nil, nil, false
	}
	if len(req.Facts) == 0 {
		writeError(w, r, http.StatusBadRequest, fmt.Errorf("no facts given"))
		return nil, nil, false
	}
	for _, f := range req.Facts {
		if f.Pred == "" {
			writeError(w, r, http.StatusBadRequest, fmt.Errorf("fact with empty predicate"))
			return nil, nil, false
		}
	}
	return sess, req.Facts, true
}

func (s *Server) handleAddFacts(w http.ResponseWriter, r *http.Request) {
	sess, facts, ok := s.mutationFacts(w, r)
	if !ok {
		return
	}
	d := wfs.NewDelta()
	for _, f := range facts {
		d.Add(f.Pred, f.Args...)
	}
	// One delta: all-or-nothing validation, one epoch bump, and the
	// session's evaluation state rebased instead of discarded. The
	// request's context rides along so a client that disconnects before
	// the WAL append is asked for nothing — once the append acks, the
	// commit always completes regardless.
	root := requestTrace(r).span()
	if err := sess.Sys.ApplyCtxTraced(r.Context(), d, root); err != nil {
		writeError(w, r, mutationStatus(err), fmt.Errorf("%w (nothing applied)", err))
		return
	}
	s.warmAfterMutation(sess, root)
	nFacts, epoch := sess.Sys.FactsEpoch()
	s.cache.PruneStale(sess.ID(), epoch)
	writeJSON(w, http.StatusOK, AddFactsResponse{Added: len(facts), Facts: nFacts, Epoch: epoch})
}

// warmAfterMutation eagerly rebases the session's already-materialized
// evaluation state onto the post-mutation snapshot, under the mutating
// request's span. Two effects: the delta-rebase cost lands in the
// mutation's trace and latency (log-then-commit next to the rebase, per
// the flight-recorder contract) instead of ambushing the next reader,
// and models that were cold stay cold — this never triggers a fresh
// build.
func (s *Server) warmAfterMutation(sess *Session, root *trace.Span) {
	if snap, err := sess.Sys.SnapshotTraced(root); err == nil {
		snap.WarmRebased(root)
	}
}

func (s *Server) handleRetract(w http.ResponseWriter, r *http.Request) {
	sess, facts, ok := s.mutationFacts(w, r)
	if !ok {
		return
	}
	d := wfs.NewDelta()
	for _, f := range facts {
		d.Retract(f.Pred, f.Args...)
	}
	root := requestTrace(r).span()
	if err := sess.Sys.ApplyCtxTraced(r.Context(), d, root); err != nil {
		writeError(w, r, mutationStatus(err), fmt.Errorf("%w (nothing applied)", err))
		return
	}
	s.warmAfterMutation(sess, root)
	nFacts, epoch := sess.Sys.FactsEpoch()
	s.cache.PruneStale(sess.ID(), epoch)
	writeJSON(w, http.StatusOK, RetractResponse{Retracted: len(facts), Facts: nFacts, Epoch: epoch})
}

// cachedQuery wraps the fetch-normalize-lookup-compute-store cycle shared
// by the query-shaped endpoints. compute runs on a cache miss against the
// session's current snapshot: because a snapshot is immutable and carries
// its epoch, the computed answer is always consistent with the cache key —
// no post-compute epoch re-check is needed, and concurrent reads on one
// session share the snapshot instead of serializing behind the system's
// evaluation lock.
//
// Misses are additionally deduplicated through a singleflight group keyed
// by the same cache key: N identical queries arriving while the answer is
// still being computed (the stampede window the LRU cannot cover) wait
// for the one in-flight evaluation instead of computing N times. Shared
// results report cached=true — from the caller's perspective the answer
// came from someone else's computation.
func (s *Server) cachedQuery(sess *Session, kind, norm string, compute func(*wfs.Snapshot) (any, error)) (any, bool, error) {
	snap, err := sess.Sys.Snapshot()
	if err != nil {
		return nil, false, err
	}
	key := answerKey(sess.ID(), snap.Epoch(), kind, norm)
	if v, ok := s.cache.Get(key); ok {
		return v, true, nil
	}
	run := func() (any, error) {
		v, err := compute(snap)
		if err != nil {
			return nil, err
		}
		// Cache only if the session is still the registered one — a
		// concurrent DELETE purges the cache by session ID — and still at
		// the snapshot's epoch: a concurrent mutation prunes the
		// session's stale-epoch entries (PruneStale), and a Put landing
		// after either purge would squat unreachably in the LRU until it
		// ages out. The re-checks shrink that window from the whole
		// evaluation to the instants before Put; the LRU bound handles
		// the residue.
		if cur, err := s.reg.Get(sess.Name); err == nil && cur == sess {
			if _, epoch := sess.Sys.FactsEpoch(); epoch == snap.Epoch() {
				s.cache.Put(key, sess.ID(), snap.Epoch(), v)
			}
		}
		return v, nil
	}
	v, shared, err := s.flight.do(key, run)
	if shared && err != nil && isCancelErr(err) {
		// The leader's evaluation was cancelled by ITS request's
		// deadline or disconnect, not ours — our context may have plenty
		// of time left, and inheriting the leader's death sentence would
		// make one impatient client fail every rider behind it. Retry
		// once outside the group with our own compute (and so our own
		// context); if WE are then too slow, the error is genuinely ours.
		v, err = run()
		shared = false
	}
	if err != nil {
		return nil, false, err
	}
	if shared {
		s.shared.Add(1)
	}
	return v, shared, nil
}

// queryContext derives the evaluation context of a query-shaped
// request: the request's own context — so a disconnected client's
// evaluation is cooperatively cancelled and its limiter slot freed
// within milliseconds — bounded by the configured server-side deadline.
func (s *Server) queryContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.QueryTimeout > 0 {
		return context.WithTimeout(r.Context(), s.cfg.QueryTimeout)
	}
	return r.Context(), func() {}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	sess, q, norm, ok := s.queryInput(w, r, "query")
	if !ok {
		return
	}
	if r.URL.Query().Get("trace") == "1" {
		s.tracedQuery(w, r, sess, q, norm)
		return
	}
	if r.URL.Query().Get("partial") == "1" {
		s.partialQuery(w, r, sess, q, norm)
		return
	}
	ctx, cancel := s.queryContext(r)
	defer cancel()
	ht := requestTrace(r)
	v, cached, err := s.cachedQuery(sess, "answer", norm, func(snap *wfs.Snapshot) (any, error) {
		if s.cfg.SlowQueryThreshold <= 0 && s.recorder == nil {
			ans, stats, err := snap.AnswerCtxStats(ctx, q)
			if err != nil {
				return nil, err
			}
			return QueryResponse{Query: norm, Answer: ans.String(), Stats: answerStatsDTO(stats)}, nil
		}
		// Slow-query logging or the flight recorder armed: run every
		// uncached compute under a coarse span hung off the request's
		// root, so a threshold breach can log where the time went and a
		// retained trace shows the evaluation, not a blank. Coarse
		// tracing skips the per-SCC and per-depth detail, so its cost
		// is a handful of span allocations per build — noise next to an
		// actual build.
		qspan := ht.span().Child("query")
		if qspan == nil {
			qspan = trace.New("query")
		}
		start := time.Now()
		ans, stats, err := snap.AnswerCtxTraced(ctx, q, qspan)
		qspan.End()
		if err != nil {
			return nil, err
		}
		if d := time.Since(start); s.cfg.SlowQueryThreshold > 0 && d >= s.cfg.SlowQueryThreshold {
			ht.markSlow()
			s.logSlow(ht, sess.Name, norm, d, qspan.Trace())
		}
		return QueryResponse{Query: norm, Answer: ans.String(), Stats: answerStatsDTO(stats)}, nil
	})
	if err != nil {
		writeError(w, r, s.queryStatus(err), err)
		return
	}
	resp := v.(QueryResponse)
	resp.Cached = cached
	writeJSON(w, http.StatusOK, resp)
}

// partialQuery serves ?partial=1: graceful degradation under the query
// deadline. An exact answer already in the cache is strictly better
// than any partial one, so the cache is consulted; but the computation
// runs OUTSIDE the singleflight group and a degraded answer is never
// stored — it is sound only for the depth the deadline allowed, and a
// later caller with more time deserves the exact one. When the deadline
// (or a disconnect, though then nobody reads the body) cancels the
// ladder after at least one approximation rung completed, the deepest
// completed rung's answer is served 200 with partial=true and
// stats.exact=false; with no completed rung there is nothing sound to
// say, and the request fails exactly like a non-partial one.
func (s *Server) partialQuery(w http.ResponseWriter, r *http.Request, sess *Session, q *wfs.Query, norm string) {
	ctx, cancel := s.queryContext(r)
	defer cancel()
	ht := requestTrace(r)
	snap, err := sess.Sys.Snapshot()
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	key := answerKey(sess.ID(), snap.Epoch(), "answer", norm)
	if v, ok := s.cache.Get(key); ok {
		resp := v.(QueryResponse)
		resp.Cached = true
		writeJSON(w, http.StatusOK, resp)
		return
	}
	qspan := ht.span().Child("query")
	if qspan == nil {
		qspan = trace.New("query")
	}
	start := time.Now()
	ans, stats, err := snap.AnswerCtxTraced(ctx, q, qspan)
	qspan.End()
	if d := time.Since(start); s.cfg.SlowQueryThreshold > 0 && d >= s.cfg.SlowQueryThreshold {
		ht.markSlow()
		s.logSlow(ht, sess.Name, norm, d, qspan.Trace())
	}
	if err != nil {
		status := s.queryStatus(err) // counts the timeout/cancel even when degrading
		if isCancelErr(err) && stats != nil && len(stats.Depths) > 0 {
			st := answerStatsDTO(stats)
			st.Exact = false
			writeJSON(w, http.StatusOK, QueryResponse{
				Query: norm, Answer: ans.String(), Stats: st, Partial: true,
			})
			return
		}
		writeError(w, r, status, err)
		return
	}
	// Exact answer within the deadline: cache it like the normal path.
	resp := QueryResponse{Query: norm, Answer: ans.String(), Stats: answerStatsDTO(stats)}
	if cur, gerr := s.reg.Get(sess.Name); gerr == nil && cur == sess {
		if _, epoch := sess.Sys.FactsEpoch(); epoch == snap.Epoch() {
			s.cache.Put(key, sess.ID(), snap.Epoch(), resp)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// tracedQuery answers ?trace=1 requests with a detailed evaluation
// trace, bypassing the answer cache and the singleflight group: the
// point of tracing is to observe what this evaluation costs, and a
// cached answer has no evaluation to observe. The response is never
// stored, so the trace-carrying body cannot be replayed to an untraced
// caller. The detailed span tree hangs under the request's root and the
// trace is pinned in the flight recorder, so it stays retrievable at
// /v1/traces/{id} after the response is gone.
func (s *Server) tracedQuery(w http.ResponseWriter, r *http.Request, sess *Session, q *wfs.Query, norm string) {
	ctx, cancel := s.queryContext(r)
	defer cancel()
	ht := requestTrace(r)
	ht.pin()
	snap, err := sess.Sys.Snapshot()
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	qspan := ht.span().ChildDetailed("query")
	if qspan == nil {
		qspan = trace.NewDetailed("query")
	}
	start := time.Now()
	ans, stats, err := snap.AnswerCtxTraced(ctx, q, qspan)
	qspan.End()
	if err != nil {
		writeError(w, r, s.queryStatus(err), err)
		return
	}
	et := qspan.Trace()
	if d := time.Since(start); s.cfg.SlowQueryThreshold > 0 && d >= s.cfg.SlowQueryThreshold {
		ht.markSlow()
		s.logSlow(ht, sess.Name, norm, d, et)
	}
	writeJSON(w, http.StatusOK, QueryResponse{
		Query:   norm,
		Answer:  ans.String(),
		Stats:   answerStatsDTO(stats),
		Trace:   et,
		TraceID: ht.TraceID(),
	})
}

// logSlow emits the structured slow-query line with the compact phase
// breakdown and bumps the counter surfaced in /v1/stats and /metrics.
// The trace_id ties the line to the flight-recorder entry (slow
// breaches are always retained), so the full span tree behind a logged
// line is one GET /v1/traces/{id} away.
func (s *Server) logSlow(ht *reqTrace, session, query string, d time.Duration, et *trace.EvalTrace) {
	s.slowQueries.Add(1)
	s.cfg.Logger.Printf("slow-query trace_id=%s session=%q query=%q dur=%s phases=%s",
		ht.TraceID(), session, query, d.Round(time.Microsecond), et.Compact())
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	sess, q, norm, ok := s.queryInput(w, r, "query")
	if !ok {
		return
	}
	v, cached, err := s.cachedQuery(sess, "select", norm, func(snap *wfs.Snapshot) (any, error) {
		vars, tuples, err := snap.Select(q)
		if err != nil {
			return nil, err
		}
		if vars == nil {
			vars = []string{} // JSON: [] not null (ground query)
		}
		if tuples == nil {
			tuples = [][]string{}
		}
		return SelectResponse{Query: norm, Vars: vars, Tuples: tuples}, nil
	})
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	resp := v.(SelectResponse)
	resp.Cached = cached
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTruth(w http.ResponseWriter, r *http.Request) {
	sess, _, norm, ok := s.queryInput(w, r, "atom")
	if !ok {
		return
	}
	v, cached, err := s.cachedQuery(sess, "truth", norm, func(snap *wfs.Snapshot) (any, error) {
		t, err := snap.TruthOf(norm)
		if err != nil {
			return nil, err
		}
		return TruthResponse{Atom: norm, Truth: t.String()}, nil
	})
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	resp := v.(TruthResponse)
	resp.Cached = cached
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	sess, _, norm, ok := s.queryInput(w, r, "atom")
	if !ok {
		return
	}
	v, cached, err := s.cachedQuery(sess, "explain", norm, func(snap *wfs.Snapshot) (any, error) {
		// Explain distinguishes malformed input (error → 400) from an
		// atom that simply is not true (ok=false → empty proof).
		proof, isTrue, err := snap.Explain(norm)
		if err != nil {
			return nil, err
		}
		return ExplainResponse{Atom: norm, True: isTrue, Proof: proof}, nil
	})
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	resp := v.(ExplainResponse)
	resp.Cached = cached
	writeJSON(w, http.StatusOK, resp)
}

// queryInput decodes the request body of a query-shaped endpoint and
// prepares the query/atom text in the named field exactly once: the
// prepared query serves both as the canonical cache key (q.String()) and,
// for the query-shaped endpoints, as the compiled form answered against
// the snapshot — no re-parse on a cache miss.
func (s *Server) queryInput(w http.ResponseWriter, r *http.Request, field string) (*Session, *wfs.Query, string, bool) {
	sess := s.session(w, r)
	if sess == nil {
		return nil, nil, "", false
	}
	var req QueryRequest
	if err := readJSON(w, r, &req, s.cfg.MaxBodyBytes); err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return nil, nil, "", false
	}
	src := req.Query
	if field == "atom" {
		src = req.Atom
	}
	if src == "" {
		writeError(w, r, http.StatusBadRequest, fmt.Errorf("missing %q field", field))
		return nil, nil, "", false
	}
	q, err := wfs.Prepare(src)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return nil, nil, "", false
	}
	norm := q.String()
	if field == "atom" {
		// Atoms echo back in atom form, not query form ("win(a)", not
		// "? win(a)."). Still canonical, so still a stable cache key.
		norm = strings.TrimSuffix(strings.TrimPrefix(norm, "? "), ".")
	}
	return sess, q, norm, true
}

func (s *Server) handleSessionStats(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	writeJSON(w, http.StatusOK,
		sessionStatsDTO(sess.Name, sess.Sys.Stats(), sess.Sys.Metrics().Read(), sess.Sys.Analysis()))
}
