package server

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	wfs "repro"
)

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleServerStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ServerStatsResponse{
		Sessions:      s.reg.Len(),
		Cache:         s.cache.Stats(),
		InFlight:      s.limiter.inFlight.Load(),
		MaxConcurrent: s.cfg.MaxConcurrent,
		UptimeSeconds: time.Since(s.started).Seconds(),
	})
}

func (s *Server) sessionInfo(sess *Session) SessionInfo {
	facts, epoch := sess.Sys.FactsEpoch()
	return SessionInfo{
		Name:      sess.Name,
		CreatedAt: sess.CreatedAt.UTC().Format(time.RFC3339),
		Facts:     facts,
		Epoch:     epoch,
		Queries:   len(sess.Sys.Queries),
	}
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req CreateSessionRequest
	if err := readJSON(w, r, &req, s.cfg.MaxBodyBytes); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	opts, err := req.Options.toOptions()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sess, err := s.reg.Create(req.Name, req.Program, opts)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, s.sessionInfo(sess))
}

func (s *Server) handleListSessions(w http.ResponseWriter, r *http.Request) {
	resp := SessionListResponse{Sessions: []SessionInfo{}} // JSON: [] not null
	for _, name := range s.reg.Names() {
		if sess, err := s.reg.Get(name); err == nil {
			resp.Sessions = append(resp.Sessions, s.sessionInfo(sess))
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// session resolves the {name} path parameter, writing a 404 on failure.
func (s *Server) session(w http.ResponseWriter, r *http.Request) *Session {
	sess, err := s.reg.Get(r.PathValue("name"))
	if err != nil {
		writeError(w, statusFor(err), err)
		return nil
	}
	return sess
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	if sess := s.session(w, r); sess != nil {
		writeJSON(w, http.StatusOK, s.sessionInfo(sess))
	}
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	sess := s.reg.Delete(name)
	if sess == nil {
		writeError(w, http.StatusNotFound, &ErrNoSession{Name: name})
		return
	}
	s.cache.DeleteSession(sess.ID())
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleAddFacts(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	var req AddFactsRequest
	if err := readJSON(w, r, &req, s.cfg.MaxBodyBytes); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Facts) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("no facts given"))
		return
	}
	for _, f := range req.Facts {
		if f.Pred == "" {
			writeError(w, http.StatusBadRequest, fmt.Errorf("fact with empty predicate"))
			return
		}
	}
	added := 0
	for _, f := range req.Facts {
		if err := sess.Sys.AddFact(f.Pred, f.Args...); err != nil {
			// Earlier facts of the batch are already in; the epoch bump
			// has invalidated cached answers, so report honestly.
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("fact %d (%s/%d): %w (added %d of %d)", added, f.Pred, len(f.Args), err, added, len(req.Facts)))
			return
		}
		added++
	}
	facts, epoch := sess.Sys.FactsEpoch()
	writeJSON(w, http.StatusOK, AddFactsResponse{Added: added, Facts: facts, Epoch: epoch})
}

// cachedQuery wraps the fetch-normalize-lookup-compute-store cycle shared
// by the query-shaped endpoints. compute runs on a cache miss; its result
// is cached only if the session epoch is unchanged afterwards (a
// concurrent fact write between the epoch read and the computation could
// otherwise pin an answer computed against newer facts under the old
// epoch's key).
func (s *Server) cachedQuery(sess *Session, kind, norm string, compute func() (any, error)) (any, bool, error) {
	epoch := sess.Sys.Epoch()
	key := answerKey(sess.ID(), epoch, kind, norm)
	if v, ok := s.cache.Get(key); ok {
		return v, true, nil
	}
	v, err := compute()
	if err != nil {
		return nil, false, err
	}
	// Cache only if the epoch is unchanged AND the session is still the
	// registered one: a concurrent DELETE purges the cache by session ID,
	// and a Put landing after that purge would squat unreachably in the
	// LRU until it ages out. The re-check shrinks that window from the
	// whole evaluation to the instants before Put; the LRU bound handles
	// the residue.
	if sess.Sys.Epoch() == epoch {
		if cur, err := s.reg.Get(sess.Name); err == nil && cur == sess {
			s.cache.Put(key, v)
		}
	}
	return v, false, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	sess, norm, ok := s.queryInput(w, r, "query")
	if !ok {
		return
	}
	v, cached, err := s.cachedQuery(sess, "answer", norm, func() (any, error) {
		ans, stats, err := sess.Sys.AnswerWithStats(norm)
		if err != nil {
			return nil, err
		}
		return QueryResponse{Query: norm, Answer: ans.String(), Stats: answerStatsDTO(stats)}, nil
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp := v.(QueryResponse)
	resp.Cached = cached
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	sess, norm, ok := s.queryInput(w, r, "query")
	if !ok {
		return
	}
	v, cached, err := s.cachedQuery(sess, "select", norm, func() (any, error) {
		vars, tuples, err := sess.Sys.Select(norm)
		if err != nil {
			return nil, err
		}
		if vars == nil {
			vars = []string{} // JSON: [] not null (ground query)
		}
		if tuples == nil {
			tuples = [][]string{}
		}
		return SelectResponse{Query: norm, Vars: vars, Tuples: tuples}, nil
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp := v.(SelectResponse)
	resp.Cached = cached
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTruth(w http.ResponseWriter, r *http.Request) {
	sess, norm, ok := s.queryInput(w, r, "atom")
	if !ok {
		return
	}
	v, cached, err := s.cachedQuery(sess, "truth", norm, func() (any, error) {
		t, err := sess.Sys.TruthOf(norm)
		if err != nil {
			return nil, err
		}
		return TruthResponse{Atom: norm, Truth: t.String()}, nil
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp := v.(TruthResponse)
	resp.Cached = cached
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	sess, norm, ok := s.queryInput(w, r, "atom")
	if !ok {
		return
	}
	// ExplainAtom folds parse errors into "not true"; pre-validate with
	// TruthOf so a malformed atom is a 400, not an empty proof.
	v, cached, err := s.cachedQuery(sess, "explain", norm, func() (any, error) {
		if _, err := sess.Sys.TruthOf(norm); err != nil {
			return nil, err
		}
		proof, isTrue := sess.Sys.ExplainAtom(norm)
		return ExplainResponse{Atom: norm, True: isTrue, Proof: proof}, nil
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp := v.(ExplainResponse)
	resp.Cached = cached
	writeJSON(w, http.StatusOK, resp)
}

// queryInput decodes the request body of a query-shaped endpoint and
// normalizes the query/atom text in the named field, handling errors.
func (s *Server) queryInput(w http.ResponseWriter, r *http.Request, field string) (*Session, string, bool) {
	sess := s.session(w, r)
	if sess == nil {
		return nil, "", false
	}
	var req QueryRequest
	if err := readJSON(w, r, &req, s.cfg.MaxBodyBytes); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return nil, "", false
	}
	src := req.Query
	if field == "atom" {
		src = req.Atom
	}
	if src == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing %q field", field))
		return nil, "", false
	}
	norm, err := wfs.NormalizeQuery(src)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return nil, "", false
	}
	if field == "atom" {
		// Atoms echo back in atom form, not query form ("win(a)", not
		// "? win(a)."). Still canonical, so still a stable cache key.
		norm = strings.TrimSuffix(strings.TrimPrefix(norm, "? "), ".")
	}
	return sess, norm, true
}

func (s *Server) handleSessionStats(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	writeJSON(w, http.StatusOK, sessionStatsDTO(sess.Name, sess.Sys.Stats()))
}
