package server

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/wal"
)

// ErrWALUnavailable reports a mutation rejected because the session's
// write-ahead log could not durably record it: either this append
// failed outright, or the session's circuit breaker is open (read-only
// mode) after repeated failures. Either way the in-memory state is
// intact and reads keep serving — the mutation was refused BEFORE
// commit, never acked-then-lost — so the HTTP mapping is 503: retry
// once the disk heals.
type ErrWALUnavailable struct {
	Name     string
	ReadOnly bool  // rejected by the open breaker, without touching the disk
	Err      error // the underlying append failure (nil when ReadOnly)
}

func (e *ErrWALUnavailable) Error() string {
	if e.ReadOnly {
		return fmt.Sprintf("server: session %q is read-only (write-ahead log failing; probing for recovery)", e.Name)
	}
	return fmt.Sprintf("server: session %q: write-ahead log append failed: %v", e.Name, e.Err)
}

func (e *ErrWALUnavailable) Unwrap() error { return e.Err }

// breaker is a per-session circuit breaker over WAL appends. Closed, it
// only counts consecutive failures; after threshold of them in a row it
// opens and the session goes read-only — mutations are rejected up
// front (503) instead of each one paying a doomed write to a dead disk,
// while reads, which need no log, keep serving. A background probe
// (Registry.probeUntilHealed) then writes a scratch file to the log
// directory every interval and closes the breaker when one succeeds.
//
// A nil *breaker (threshold configured off) is valid and permanently
// closed.
type breaker struct {
	threshold int
	interval  time.Duration
	fails     atomic.Int32 // consecutive append failures
	open      atomic.Bool
	openCount *atomic.Int64 // server-wide open-breaker gauge (wfsd_wal_readonly)
}

func (b *breaker) isOpen() bool { return b != nil && b.open.Load() }

// recordFailure counts one failed append and reports whether THIS call
// tripped the breaker open — the caller starts the probe loop exactly
// once per trip.
func (b *breaker) recordFailure() bool {
	if b == nil {
		return false
	}
	if int(b.fails.Add(1)) < b.threshold {
		return false
	}
	if b.open.CompareAndSwap(false, true) {
		if b.openCount != nil {
			b.openCount.Add(1)
		}
		return true
	}
	return false
}

// recordSuccess resets the consecutive-failure count: only an unbroken
// run of failures may trip the breaker.
func (b *breaker) recordSuccess() {
	if b != nil {
		b.fails.Store(0)
	}
}

// heal closes an open breaker (successful probe, or log gone).
func (b *breaker) heal() {
	if b != nil && b.open.CompareAndSwap(true, false) {
		b.fails.Store(0)
		if b.openCount != nil {
			b.openCount.Add(-1)
		}
	}
}

// newBreaker builds a session's breaker from the registry's sizing; nil
// when the breaker is configured off.
func (r *Registry) newBreaker() *breaker {
	if r.breakerThreshold <= 0 {
		return nil
	}
	interval := r.probeInterval
	if interval <= 0 {
		interval = DefaultWALProbeInterval
	}
	return &breaker{threshold: r.breakerThreshold, interval: interval, openCount: &r.walReadonly}
}

// probeUntilHealed is the open breaker's background loop: probe the
// session's log directory every interval until a probe succeeds (disk
// healed — close the breaker, mutations flow again) or the log is
// closed (shutdown or session deletion — nothing left to heal, but
// close the breaker anyway so the read-only gauge doesn't count a dead
// session forever).
func (r *Registry) probeUntilHealed(sess *Session) {
	for {
		time.Sleep(sess.breaker.interval)
		err := sess.wlog.Probe()
		if err == nil {
			sess.breaker.heal()
			if r.logger != nil {
				r.logger.Printf("wal: session %q log writable again, leaving read-only mode", sess.Name)
			}
			return
		}
		if errors.Is(err, wal.ErrClosed) {
			sess.breaker.heal()
			return
		}
	}
}
