package server

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wal"
)

// endlessChain is a non-terminating guarded program: the existential
// cycle p→s→p chases an unbounded chain, and the win-style negation
// gives w(a) an answer that flips with the chain's parity — the
// adaptive ladder never meets its stability window and climbs until
// something (deadline, budget, MaxDepth) stops it. The resource-
// governance tests run queries over it so that only the mechanism under
// test can end the evaluation.
const endlessChain = `
	p(a).
	p(X) -> s(X,Y).
	s(X,Y) -> p(Y).
	s(X,Y), not w(Y) -> w(X).
`

// endlessOptions keeps the heuristic ladder climbing far past the
// default depth ceiling, one rung at a time. The ceiling is chosen
// unreachable within any deadline these tests use (each rung costs
// ~0.5ms on this program) but small enough that materializing the
// snapshot's rung table stays well under the deadline.
func endlessOptions() *SessionOptions {
	return &SessionOptions{MaxDepth: 1 << 16, AdaptiveStep: 1, NoCertify: true}
}

// rawGet fetches a non-JSON endpoint (e.g. /metrics) as text.
func (c *testClient) rawGet(path string) (int, string) {
	c.t.Helper()
	resp, err := c.srv.Client().Get(c.srv.URL + path)
	if err != nil {
		c.t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatalf("GET %s: read: %v", path, err)
	}
	return resp.StatusCode, string(b)
}

func metricValue(t *testing.T, body, name string) string {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			return rest
		}
	}
	t.Fatalf("metric %s not found in /metrics output", name)
	return ""
}

// TestQueryDeadline504: a query that cannot finish inside the
// server-side deadline fails 504 with the structured error body, and
// the timeout is counted in /v1/stats and /metrics.
func TestQueryDeadline504(t *testing.T) {
	c := newTestClient(t, Config{QueryTimeout: 20 * time.Millisecond})
	code := c.do("POST", "/v1/sessions",
		CreateSessionRequest{Name: "e", Program: endlessChain, Options: endlessOptions()}, nil)
	if code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	var errResp ErrorResponse
	if code := c.do("POST", "/v1/sessions/e/query", QueryRequest{Query: "? w(a)."}, &errResp); code != http.StatusGatewayTimeout {
		t.Fatalf("deadline query: status %d, want 504", code)
	}
	if !strings.Contains(errResp.Error, "deadline") {
		t.Errorf("error body %q does not mention the deadline", errResp.Error)
	}
	if errResp.TraceID == "" {
		t.Errorf("504 body carries no trace_id")
	}

	var stats ServerStatsResponse
	if code := c.do("GET", "/v1/stats", nil, &stats); code != 200 {
		t.Fatalf("stats: status %d", code)
	}
	if stats.QueryTimeouts != 1 {
		t.Errorf("query_timeouts = %d, want 1", stats.QueryTimeouts)
	}
	if stats.QueryTimeoutMS != 20 {
		t.Errorf("query_timeout_ms = %d, want 20", stats.QueryTimeoutMS)
	}
	if _, body := c.rawGet("/metrics"); metricValue(t, body, "wfsd_query_timeouts_total") != "1" {
		t.Errorf("wfsd_query_timeouts_total = %s, want 1", metricValue(t, body, "wfsd_query_timeouts_total"))
	}
}

// TestPartialDegradedAnswer: the same doomed query under ?partial=1
// degrades to the deepest completed rung's answer — 200, partial=true,
// exact=false, at least one completed depth — and the degraded answer
// is never cached (a repeat without ?partial=1 still runs and still
// times out, rather than replaying an inexact cached body).
func TestPartialDegradedAnswer(t *testing.T) {
	c := newTestClient(t, Config{QueryTimeout: 100 * time.Millisecond})
	code := c.do("POST", "/v1/sessions",
		CreateSessionRequest{Name: "e", Program: endlessChain, Options: endlessOptions()}, nil)
	if code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}

	var resp QueryResponse
	if code := c.do("POST", "/v1/sessions/e/query?partial=1", QueryRequest{Query: "? w(a)."}, &resp); code != http.StatusOK {
		t.Fatalf("partial query: status %d, want 200", code)
	}
	if !resp.Partial {
		t.Errorf("partial flag not set: %+v", resp)
	}
	if resp.Stats == nil || resp.Stats.Exact {
		t.Errorf("degraded answer must carry inexact stats, got %+v", resp.Stats)
	}
	if resp.Stats != nil && len(resp.Stats.Depths) == 0 {
		t.Errorf("degraded answer reports no completed rungs")
	}
	if resp.Answer != "true" && resp.Answer != "false" && resp.Answer != "undefined" {
		t.Errorf("degraded answer = %q", resp.Answer)
	}

	// The degraded answer must not have been cached: the exact same
	// query without ?partial=1 must evaluate again and blow the
	// deadline, not serve a 200 from the cache.
	if code := c.do("POST", "/v1/sessions/e/query", QueryRequest{Query: "? w(a)."}, nil); code != http.StatusGatewayTimeout {
		t.Fatalf("repeat without partial: status %d, want 504", code)
	}

	// A query that finishes inside the deadline behaves identically with
	// or without ?partial=1: exact answer, no partial flag, cached for
	// the next caller (partial does not opt out of the cache on success).
	c.mustCreate("w", winMove)
	var exact QueryResponse
	if code := c.do("POST", "/v1/sessions/w/query?partial=1", QueryRequest{Query: "? win(a)."}, &exact); code != http.StatusOK {
		t.Fatalf("fast partial query: status %d", code)
	}
	if exact.Partial || exact.Stats == nil || !exact.Stats.Exact {
		t.Errorf("in-time partial query: %+v, want exact non-partial", exact)
	}
	var again QueryResponse
	if code := c.do("POST", "/v1/sessions/w/query", QueryRequest{Query: "? win(a)."}, &again); code != http.StatusOK || !again.Cached {
		t.Errorf("exact answer computed under partial=1 was not cached: status %d cached=%v", code, again.Cached)
	}
}

// TestBudgetExceeded422: a query whose chase hits the configured
// MaxAtoms valve fails 422 with the structured budget block — the
// request was well-formed, but this program/limit combination cannot
// answer it exactly.
func TestBudgetExceeded422(t *testing.T) {
	c := newTestClient(t, Config{})
	opts := endlessOptions()
	opts.MaxAtoms = 40
	code := c.do("POST", "/v1/sessions",
		CreateSessionRequest{Name: "e", Program: endlessChain, Options: opts}, nil)
	if code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	var errResp ErrorResponse
	if code := c.do("POST", "/v1/sessions/e/query", QueryRequest{Query: "? w(a)."}, &errResp); code != http.StatusUnprocessableEntity {
		t.Fatalf("budget query: status %d, want 422", code)
	}
	if errResp.Budget == nil {
		t.Fatalf("422 body carries no budget block: %+v", errResp)
	}
	if errResp.Budget.Limit != 40 {
		t.Errorf("budget limit = %d, want 40", errResp.Budget.Limit)
	}
	if errResp.Budget.Atoms <= 0 {
		t.Errorf("budget atoms = %d, want > 0", errResp.Budget.Atoms)
	}
	if !strings.Contains(errResp.Error, "budget") && !strings.Contains(errResp.Error, "atom") {
		t.Errorf("error body %q does not describe the budget", errResp.Error)
	}
}

// TestRetryAfterEstimate covers the limiter's drain-rate arithmetic:
// before any observation the configured queue bound is the only honest
// estimate; afterwards the EWMA of slot-hold times scales with queue
// depth and clamps to [1s, 60s].
func TestRetryAfterEstimate(t *testing.T) {
	l := newLimiter(2, 5*time.Second)
	if got := l.retryAfterSeconds(); got != 5 {
		t.Errorf("no samples: Retry-After %d, want 5 (= maxWait)", got)
	}

	l.observeHold(2 * time.Second) // first sample is stored directly
	if got := l.retryAfterSeconds(); got != 2 {
		t.Errorf("idle queue: Retry-After %d, want 2", got)
	}

	l.waiting.Store(5) // 5 waiters over 2 slots: 3 drain rounds
	if got := l.retryAfterSeconds(); got != 6 {
		t.Errorf("queued: Retry-After %d, want 6", got)
	}
	l.waiting.Store(0)

	// EWMA folds new samples at α=1/8: 2s + (10s-2s)/8 = 3s.
	l.observeHold(10 * time.Second)
	if got := time.Duration(l.holdNS.Load()); got != 3*time.Second {
		t.Errorf("EWMA after 10s sample = %v, want 3s", got)
	}

	l.holdNS.Store(int64(10 * time.Minute))
	if got := l.retryAfterSeconds(); got != 60 {
		t.Errorf("clamp: Retry-After %d, want 60", got)
	}
	l.holdNS.Store(int64(time.Millisecond))
	if got := l.retryAfterSeconds(); got != 1 {
		t.Errorf("floor: Retry-After %d, want 1", got)
	}
}

// TestOverloadRetryAfterAndDisconnect exercises the governance paths
// end to end under one saturated slot: a second request queues, times
// out after MaxQueueWait with 429 and a Retry-After header, and the
// slot-holding client's disconnect cooperatively cancels its evaluation
// (counted as a query cancel) instead of pinning the slot forever.
func TestOverloadRetryAfterAndDisconnect(t *testing.T) {
	c := newTestClient(t, Config{MaxConcurrent: 1, MaxQueueWait: 30 * time.Millisecond})
	code := c.do("POST", "/v1/sessions",
		CreateSessionRequest{Name: "e", Program: endlessChain, Options: endlessOptions()}, nil)
	if code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}

	// Occupy the only slot with a never-finishing evaluation we can
	// cancel by hanging up.
	ctx, cancel := context.WithCancel(context.Background())
	holderDone := make(chan struct{})
	go func() {
		defer close(holderDone)
		req, err := http.NewRequestWithContext(ctx, "POST", c.srv.URL+"/v1/sessions/e/query",
			strings.NewReader(`{"query": "? w(a)."}`))
		if err != nil {
			t.Errorf("holder request: %v", err)
			return
		}
		resp, err := c.srv.Client().Do(req)
		if err == nil {
			resp.Body.Close()
		}
		if err == nil || !errors.Is(err, context.Canceled) {
			t.Errorf("holder: err = %v, want context.Canceled", err)
		}
	}()
	time.Sleep(50 * time.Millisecond) // let the holder take the slot

	resp, err := c.srv.Client().Post(c.srv.URL+"/v1/sessions/e/query", "application/json",
		strings.NewReader(`{"query": "? w(a)."}`))
	if err != nil {
		t.Fatalf("queued request: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queued request: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Errorf("429 without Retry-After header")
	}

	// Hang up; the engine must notice within its next cancellation poll
	// and free the slot.
	cancel()
	select {
	case <-holderDone:
	case <-time.After(5 * time.Second):
		t.Fatal("disconnected evaluation did not unwind")
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		var stats ServerStatsResponse
		if code := c.do("GET", "/v1/stats", nil, &stats); code != 200 {
			t.Fatalf("stats: status %d", code)
		}
		if stats.QueryCancels >= 1 && stats.RejectedTimeout == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("counters never settled: %+v", stats)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// flakyFS is a wal.FS whose file writes and syncs fail (ENOSPC-style)
// while the switch is on — the server-level analogue of the wal
// package's exhaustive fault sweep, here driving the read-only circuit
// breaker end to end over HTTP. Metadata operations (open, rename,
// remove, ...) stay healthy so the failure mode is precisely "the disk
// stopped accepting bytes".
type flakyFS struct{ fail atomic.Bool }

type flakyFile struct {
	f  wal.File
	fs *flakyFS
}

var errDiskFull = errors.New("injected: no space left on device")

func (fs *flakyFS) OpenFile(name string, flag int, perm os.FileMode) (wal.File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &flakyFile{f: f, fs: fs}, nil
}

func (fs *flakyFS) Open(name string) (wal.File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return &flakyFile{f: f, fs: fs}, nil
}

func (fs *flakyFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (fs *flakyFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
func (fs *flakyFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (fs *flakyFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (fs *flakyFS) Remove(name string) error                     { return os.Remove(name) }
func (fs *flakyFS) RemoveAll(path string) error                  { return os.RemoveAll(path) }
func (fs *flakyFS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }
func (fs *flakyFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }

func (f *flakyFile) Write(p []byte) (int, error) {
	if f.fs.fail.Load() {
		return 0, errDiskFull
	}
	return f.f.Write(p)
}

func (f *flakyFile) Sync() error {
	if f.fs.fail.Load() {
		return errDiskFull
	}
	return f.f.Sync()
}

func (f *flakyFile) Truncate(size int64) error { return f.f.Truncate(size) }
func (f *flakyFile) Close() error              { return f.f.Close() }

// TestWALBreakerTripAndHeal drives the read-only circuit breaker end to
// end: a disk that stops accepting writes fails mutations 503 and, after
// the configured run of consecutive failures, trips the session into
// read-only mode — further mutations are refused up front, reads keep
// serving, the wfsd_wal_readonly gauge shows 1 — until the background
// probe sees the disk heal and writes flow again.
func TestWALBreakerTripAndHeal(t *testing.T) {
	dir := t.TempDir()
	fsys := &flakyFS{}
	s := New(Config{WALFailureThreshold: 2, WALProbeInterval: 5 * time.Millisecond})
	if _, err := s.OpenWAL(dir, wal.Options{FS: fsys}); err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	c := newTestClientFor(t, s)
	c.mustCreate("w", winMove)

	// Healthy disk: mutations commit and log.
	c.mustAddFact("w", "move", "c", "d")

	// Disk dies. Each append fails (503, append-failure message); the
	// second consecutive failure trips the breaker.
	fsys.fail.Store(true)
	mutate := func() (int, ErrorResponse) {
		var errResp ErrorResponse
		code := c.do("POST", "/v1/sessions/w/facts",
			AddFactsRequest{Facts: []Fact{{Pred: "move", Args: []string{"d", "e"}}}}, &errResp)
		return code, errResp
	}
	for i := 0; i < 2; i++ {
		code, errResp := mutate()
		if code != http.StatusServiceUnavailable {
			t.Fatalf("failing append %d: status %d, want 503", i, code)
		}
		if !strings.Contains(errResp.Error, "append failed") {
			t.Fatalf("failing append %d: %q, want append-failure message", i, errResp.Error)
		}
	}

	// Breaker open: mutations are refused without touching the disk,
	// reads still serve, and the gauge reports one read-only session.
	code, errResp := mutate()
	if code != http.StatusServiceUnavailable || !strings.Contains(errResp.Error, "read-only") {
		t.Fatalf("read-only mutation: status %d error %q, want 503 read-only", code, errResp.Error)
	}
	if got := c.mustTruth("w", "win(c)"); got != "true" {
		t.Errorf("read during read-only mode: win(c) = %s, want true", got)
	}
	var stats ServerStatsResponse
	if code := c.do("GET", "/v1/stats", nil, &stats); code != 200 || stats.WAL == nil || stats.WAL.ReadonlySessions != 1 {
		t.Fatalf("stats during outage: code %d wal %+v, want 1 read-only session", code, stats.WAL)
	}
	if _, body := c.rawGet("/metrics"); metricValue(t, body, "wfsd_wal_readonly") != "1" {
		t.Errorf("wfsd_wal_readonly = %s during outage, want 1", metricValue(t, body, "wfsd_wal_readonly"))
	}

	// Disk heals; the probe closes the breaker and mutations flow again.
	fsys.fail.Store(false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if code, _ := mutate(); code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("session never left read-only mode after the disk healed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, body := c.rawGet("/metrics"); metricValue(t, body, "wfsd_wal_readonly") != "0" {
		t.Errorf("wfsd_wal_readonly = %s after heal, want 0", metricValue(t, body, "wfsd_wal_readonly"))
	}
	// Durability resumed for real: a fresh process over the same dir
	// recovers the committed mutations (not the refused ones).
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, _, st := newDurableClient(t, dir, wal.Options{})
	if st.Sessions != 1 {
		t.Fatalf("recovery after outage: %+v, want 1 session", st)
	}
}

// newTestClientFor wraps an already-configured Server (e.g. one whose
// WAL was opened with an injected filesystem) in a test HTTP client.
func newTestClientFor(t *testing.T, s *Server) *testClient {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return &testClient{t: t, srv: ts}
}
