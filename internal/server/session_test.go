package server

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	wfs "repro"
)

func TestRegistryCRUD(t *testing.T) {
	r := NewRegistry(0)
	s, err := r.Create("a", "p(x).", wfs.Options{})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if s.Name != "a" || s.Sys.NumFacts() != 1 {
		t.Errorf("session = %+v", s)
	}
	if _, err := r.Create("a", "q(y).", wfs.Options{}); err == nil {
		t.Errorf("duplicate Create succeeded")
	} else {
		var exists *ErrSessionExists
		if !errors.As(err, &exists) {
			t.Errorf("duplicate Create error = %T", err)
		}
	}
	got, err := r.Get("a")
	if err != nil || got != s {
		t.Errorf("Get = %v, %v", got, err)
	}
	if _, err := r.Get("nope"); err == nil {
		t.Errorf("Get of unknown session succeeded")
	}
	if names := r.Names(); len(names) != 1 || names[0] != "a" {
		t.Errorf("Names = %v", names)
	}
	if del := r.Delete("a"); del != s {
		t.Errorf("Delete = %v, want the session", del)
	}
	if r.Delete("a") != nil {
		t.Errorf("double Delete reported present")
	}
}

func TestRegistryCompileErrorReleasesName(t *testing.T) {
	r := NewRegistry(1)
	if _, err := r.Create("a", "p(", wfs.Options{}); err == nil {
		t.Fatalf("Create with syntax error succeeded")
	}
	// The failed create must not leak its reservation against the limit.
	if _, err := r.Create("a", "p(x).", wfs.Options{}); err != nil {
		t.Errorf("Create after failed compile: %v", err)
	}
}

func TestRegistryLimit(t *testing.T) {
	r := NewRegistry(2)
	for i := 0; i < 2; i++ {
		if _, err := r.Create(fmt.Sprintf("s%d", i), "p(x).", wfs.Options{}); err != nil {
			t.Fatalf("Create %d: %v", i, err)
		}
	}
	_, err := r.Create("s2", "p(x).", wfs.Options{})
	var full *ErrTooManySessions
	if !errors.As(err, &full) {
		t.Errorf("over-limit Create error = %v", err)
	}
	r.Delete("s0")
	if _, err := r.Create("s2", "p(x).", wfs.Options{}); err != nil {
		t.Errorf("Create after Delete: %v", err)
	}
}

func TestRegistryNameValidation(t *testing.T) {
	r := NewRegistry(0)
	for _, bad := range []string{"", ".", "..", "a/b", "a\nb", "a\x00b", string(make([]byte, 200))} {
		if _, err := r.Create(bad, "p(x).", wfs.Options{}); err == nil {
			t.Errorf("Create(%q) succeeded", bad)
		}
	}
	for _, good := range []string{"a", "my-session.v2", "Ünïcode name"} {
		if _, err := r.Create(good, "p(x).", wfs.Options{}); err != nil {
			t.Errorf("Create(%q): %v", good, err)
		}
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				name := fmt.Sprintf("s%d", i%10)
				switch g % 3 {
				case 0:
					r.Create(name, "p(x).", wfs.Options{})
				case 1:
					if s, err := r.Get(name); err == nil {
						s.Sys.NumFacts()
					}
				default:
					if i%7 == 0 {
						r.Delete(name)
					}
					r.Names()
				}
			}
		}(g)
	}
	wg.Wait()
}
