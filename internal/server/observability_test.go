package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuf is a goroutine-safe log sink: the server logs from request
// goroutines while tests read from the test goroutine.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// waitContains polls the buffer for a substring: the instrument
// middleware logs after the response body has been flushed, so the
// client can observe the response before the line lands.
func waitContains(t *testing.T, buf *syncBuf, want string) string {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		got := buf.String()
		if strings.Contains(got, want) {
			return got
		}
		if time.Now().After(deadline) {
			t.Fatalf("log never contained %q:\n%s", want, got)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestLimiterContention drives the limiter directly: with one slot held,
// a queued request must be rejected 429 after maxWait, a queued request
// whose client hung up must get 503, and the gauges/counters must track
// each outcome.
func TestLimiterContention(t *testing.T) {
	l := newLimiter(1, 30*time.Millisecond)
	entered := make(chan struct{})
	release := make(chan struct{})
	h := l.wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
	}))

	holderDone := make(chan struct{})
	go func() {
		defer close(holderDone)
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
	}()
	<-entered
	if got := l.inFlight.Load(); got != 1 {
		t.Fatalf("in-flight = %d, want 1", got)
	}

	// Queued past maxWait: 429 with Retry-After.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("queued request: status %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 missing Retry-After header")
	}
	if got := l.timeouts.Load(); got != 1 {
		t.Errorf("timeout rejections = %d, want 1", got)
	}

	// Queued with a dead client: 503, counted separately.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil).WithContext(ctx))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("canceled request: status %d, want 503", rec.Code)
	}
	if got := l.canceled.Load(); got != 1 {
		t.Errorf("cancel rejections = %d, want 1", got)
	}

	close(release)
	<-holderDone
	if got, want := l.inFlight.Load(), int64(0); got != want {
		t.Errorf("in-flight after drain = %d, want %d", got, want)
	}
	if got := l.waiting.Load(); got != 0 {
		t.Errorf("waiting after drain = %d, want 0", got)
	}

	// Slot free again: requests pass.
	release = make(chan struct{})
	close(release)
	rec = httptest.NewRecorder()
	l.wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})).
		ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("post-drain request: status %d, want 200", rec.Code)
	}
}

// TestLimiterUnboundedWait verifies maxWait=0 restores the legacy
// behavior: a queued request waits until the slot frees, however long.
func TestLimiterUnboundedWait(t *testing.T) {
	l := newLimiter(1, 0)
	entered := make(chan struct{})
	release := make(chan struct{})
	h := l.wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-entered: // second request: slot obtained after release
		default:
			close(entered)
			<-release
		}
	}))
	go h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
	<-entered
	done := make(chan int, 1)
	go func() {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
		done <- rec.Code
	}()
	// Give the second request time to queue, then free the slot.
	time.Sleep(20 * time.Millisecond)
	close(release)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("unbounded queued request: status %d, want 200", code)
	}
}

func TestRecoverPanics(t *testing.T) {
	buf := &syncBuf{}
	h := recoverPanics(log.New(buf, "", 0), http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "internal error") {
		t.Errorf("500 body = %q, want internal error", rec.Body.String())
	}
	if !strings.Contains(buf.String(), "boom") {
		t.Errorf("panic value not logged: %q", buf.String())
	}
}

// TestMetricsEndpoint scrapes /metrics after real traffic and checks the
// exposition covers every advertised area: per-route request metrics
// (labeled by mux pattern, not raw path), cache and singleflight
// counters, limiter gauges, and per-session engine counters.
func TestMetricsEndpoint(t *testing.T) {
	c := newTestClient(t, Config{})
	c.mustCreate("w", winMove)
	var qr QueryResponse
	if code := c.do("POST", "/v1/sessions/w/query", QueryRequest{Query: "win(b)"}, &qr); code != 200 {
		t.Fatalf("query: status %d", code)
	}
	if code := c.do("POST", "/v1/sessions/w/query", QueryRequest{Query: "win(b)"}, &qr); code != 200 || !qr.Cached {
		t.Fatalf("repeat query: status %d cached %v, want cache hit", code, qr.Cached)
	}

	resp, err := http.Get(c.srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q, want Prometheus text 0.0.4", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	for _, want := range []string{
		// Request metrics labeled by registered route pattern.
		`wfsd_http_requests_total{route="POST /v1/sessions/{name}/query",code="200"} 2`,
		`wfsd_http_request_duration_seconds_bucket{route="POST /v1/sessions/{name}/query",le="+Inf"} 2`,
		`wfsd_http_request_duration_seconds_count{route="POST /v1/sessions/{name}/query"} 2`,
		`wfsd_http_requests_total{route="POST /v1/sessions",code="201"} 1`,
		// Cache and singleflight.
		"wfsd_answer_cache_hits_total 1",
		"wfsd_answer_cache_misses_total 1",
		"wfsd_answer_cache_capacity",
		"wfsd_singleflight_shared_total",
		// Limiter saturation.
		"wfsd_limiter_in_flight",
		"wfsd_limiter_waiting 0",
		fmt.Sprintf("wfsd_limiter_max_concurrent %d", DefaultMaxConcurrent),
		`wfsd_limiter_rejected_total{reason="timeout"} 0`,
		`wfsd_limiter_rejected_total{reason="canceled"} 0`,
		// Per-session engine counters (the query built at least one rung).
		`wfsd_session_facts{session="w"} 3`,
		`wfsd_session_builds_total{session="w"}`,
		`wfsd_session_phase_seconds_total{session="w",phase="solve"}`,
		`wfsd_session_chase_atoms{session="w"}`,
		"wfsd_sessions 1",
		"wfsd_uptime_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if strings.Contains(body, "/v1/sessions/w/") {
		t.Error("scrape leaks raw request paths into route labels")
	}
	// Every family emitted has HELP/TYPE headers.
	if strings.Count(body, "# HELP ") != strings.Count(body, "# TYPE ") {
		t.Error("unbalanced HELP/TYPE headers")
	}
	if t.Failed() {
		t.Logf("scrape body:\n%s", body)
	}
}

// TestQueryTrace exercises ?trace=1: the response carries a phase tree
// rooted at the query whose children sum to no more than the root's
// wall time, traced responses bypass the cache, and untraced responses
// carry no trace.
func TestQueryTrace(t *testing.T) {
	c := newTestClient(t, Config{})
	c.mustCreate("w", winMove)

	var qr QueryResponse
	if code := c.do("POST", "/v1/sessions/w/query?trace=1", QueryRequest{Query: "win(b)"}, &qr); code != 200 {
		t.Fatalf("traced query: status %d", code)
	}
	if qr.Answer != "true" {
		t.Fatalf("answer = %q, want true", qr.Answer)
	}
	et := qr.Trace
	if et == nil {
		t.Fatal("traced response has no trace")
	}
	if et.Name != "query" || et.DurUS <= 0 {
		t.Fatalf("trace root = %+v, want named query with positive duration", et)
	}
	if sum := et.SumChildrenUS(); sum > et.DurUS {
		t.Errorf("children sum %dus exceeds root %dus", sum, et.DurUS)
	}
	ladder := et.Find("ladder")
	if ladder == nil {
		t.Fatalf("trace has no ladder phase:\n%s", et.Format())
	}
	foundDepth := false
	for _, ch := range ladder.Children {
		if strings.HasPrefix(ch.Name, "depth-") {
			foundDepth = true
			if sum := ch.SumChildrenUS(); sum > ch.DurUS {
				t.Errorf("depth children sum %dus exceeds span %dus", sum, ch.DurUS)
			}
		}
	}
	if !foundDepth {
		t.Errorf("ladder has no depth spans:\n%s", et.Format())
	}

	// A second traced query is still evaluated, not served from cache.
	if code := c.do("POST", "/v1/sessions/w/query?trace=1", QueryRequest{Query: "win(b)"}, &qr); code != 200 || qr.Cached || qr.Trace == nil {
		t.Fatalf("second traced query: status %d cached %v trace %v", code, qr.Cached, qr.Trace != nil)
	}

	// Untraced responses never carry a trace.
	var plain QueryResponse
	if code := c.do("POST", "/v1/sessions/w/query", QueryRequest{Query: "win(b)"}, &plain); code != 200 || plain.Trace != nil {
		t.Fatalf("untraced query: status %d trace %v, want none", code, plain.Trace)
	}
}

// TestConcurrentTracedQueries mixes traced queries, untraced queries,
// and writes; under -race it proves the span recorder and the metrics
// paths are safe with the server's real concurrency.
func TestConcurrentTracedQueries(t *testing.T) {
	c := newTestClient(t, Config{MaxConcurrent: 8})
	c.mustCreate("w", winMove)

	const goroutines = 8
	const iters = 6
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*iters)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch {
				case g == 0 && i%3 == 2:
					var fr AddFactsResponse
					code := c.do("POST", "/v1/sessions/w/facts", AddFactsRequest{
						Facts: []Fact{{Pred: "move", Args: []string{fmt.Sprintf("t%d", i), "c"}}},
					}, &fr)
					if code != 200 {
						errs <- fmt.Errorf("goroutine %d: add fact status %d", g, code)
					}
				case g%2 == 0:
					var qr QueryResponse
					code := c.do("POST", "/v1/sessions/w/query?trace=1", QueryRequest{Query: "win(b)"}, &qr)
					if code != 200 || qr.Trace == nil {
						errs <- fmt.Errorf("goroutine %d: traced query status %d trace %v", g, code, qr.Trace != nil)
					}
				default:
					var qr QueryResponse
					code := c.do("POST", "/v1/sessions/w/query", QueryRequest{Query: "win(b)"}, &qr)
					if code != 200 {
						errs <- fmt.Errorf("goroutine %d: query status %d", g, code)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// The scrape itself must survive concurrent history.
	resp, err := http.Get(c.srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("post-load scrape: status %d", resp.StatusCode)
	}
}

// TestSlowQueryLog arms a 1ns threshold so every uncached query counts
// as slow, and checks the structured line carries the phase breakdown.
func TestSlowQueryLog(t *testing.T) {
	buf := &syncBuf{}
	c := newTestClient(t, Config{
		SlowQueryThreshold: time.Nanosecond,
		Logger:             log.New(buf, "", 0),
	})
	c.mustCreate("w", winMove)
	var qr QueryResponse
	if code := c.do("POST", "/v1/sessions/w/query", QueryRequest{Query: "win(b)"}, &qr); code != 200 {
		t.Fatalf("query: status %d", code)
	}
	line := waitContains(t, buf, "slow-query")
	for _, want := range []string{`session="w"`, `query="? win(b)."`, "dur=", "phases=", "ladder="} {
		if !strings.Contains(line, want) {
			t.Errorf("slow-query line missing %q:\n%s", want, line)
		}
	}
	// A cache hit computes nothing and must not log again.
	before := strings.Count(buf.String(), "slow-query")
	if code := c.do("POST", "/v1/sessions/w/query", QueryRequest{Query: "win(b)"}, &qr); code != 200 || !qr.Cached {
		t.Fatalf("repeat query: status %d cached %v", code, qr.Cached)
	}
	if after := strings.Count(buf.String(), "slow-query"); after != before {
		t.Errorf("cache hit logged a slow query: %d -> %d", before, after)
	}

	var ss ServerStatsResponse
	c.do("GET", "/v1/stats", nil, &ss)
	if ss.SlowQueries < 1 {
		t.Errorf("stats slow_queries = %d, want >= 1", ss.SlowQueries)
	}
}

// TestAccessLog checks the structured access-log line: method, the
// registered route pattern (bounded cardinality), raw path, status,
// duration, and the session name pulled from the path.
func TestAccessLog(t *testing.T) {
	buf := &syncBuf{}
	c := newTestClient(t, Config{AccessLogger: log.New(buf, "", 0)})
	c.mustCreate("w", winMove)
	var qr QueryResponse
	if code := c.do("POST", "/v1/sessions/w/query", QueryRequest{Query: "win(b)"}, &qr); code != 200 {
		t.Fatalf("query: status %d", code)
	}
	got := waitContains(t, buf, `route="POST /v1/sessions/{name}/query"`)
	for _, want := range []string{
		"method=POST",
		`path="/v1/sessions/w/query"`,
		"status=200",
		"dur=",
		`session="w"`,
		`route="POST /v1/sessions" path="/v1/sessions" status=201`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("access log missing %q:\n%s", want, got)
		}
	}
}

// TestServerStatsLimiterFields checks the /v1/stats additions surface
// the limiter configuration and saturation counters.
func TestServerStatsLimiterFields(t *testing.T) {
	c := newTestClient(t, Config{MaxConcurrent: 3, MaxQueueWait: 2 * time.Second})
	var ss ServerStatsResponse
	if code := c.do("GET", "/v1/stats", nil, &ss); code != 200 {
		t.Fatalf("stats: status %d", code)
	}
	if ss.MaxConcurrent != 3 || ss.MaxQueueWaitMS != 2000 {
		t.Errorf("limiter config = max %d wait %dms, want 3/2000", ss.MaxConcurrent, ss.MaxQueueWaitMS)
	}
	if ss.Waiting != 0 || ss.RejectedTimeout != 0 || ss.RejectedCanceled != 0 {
		t.Errorf("idle limiter reports saturation: %+v", ss)
	}
}

// TestSessionStatsEngineCounters checks /v1/sessions/{name}/stats now
// carries the engine's lifetime build counters.
func TestSessionStatsEngineCounters(t *testing.T) {
	c := newTestClient(t, Config{})
	c.mustCreate("w", winMove)
	var qr QueryResponse
	if code := c.do("POST", "/v1/sessions/w/query", QueryRequest{Query: "win(b)"}, &qr); code != 200 {
		t.Fatalf("query: status %d", code)
	}
	var st SessionStatsResponse
	if code := c.do("GET", "/v1/sessions/w/stats", nil, &st); code != 200 {
		t.Fatalf("session stats: status %d", code)
	}
	if st.Engine.Builds < 1 {
		t.Errorf("engine builds = %d, want >= 1", st.Engine.Builds)
	}
	if st.Engine.SolveNS <= 0 {
		t.Errorf("engine solve_ns = %d, want > 0", st.Engine.SolveNS)
	}
	if st.Engine.ChaseAtoms <= 0 {
		t.Errorf("engine chase_atoms = %d, want > 0", st.Engine.ChaseAtoms)
	}
}
