package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/wal"
)

// newDurableClient builds a server with durability enabled under dir and
// returns the client, the server (for Close / stats access), and what
// startup recovery did. The httptest listener is cleaned up by t; the
// Server itself is NOT closed automatically — crash tests abandon it.
func newDurableClient(t *testing.T, dir string, wopts wal.Options) (*testClient, *Server, RecoveryStats) {
	t.Helper()
	s := New(Config{})
	st, err := s.OpenWAL(dir, wopts)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	// Crash tests abandon the server without Close, but its background
	// checkpointers must still be joined before t.TempDir's RemoveAll —
	// an in-flight checkpoint writing into the dir races the cleanup.
	// Joining writes nothing, so the crash semantics (no final
	// checkpoint) are preserved.
	t.Cleanup(s.reg.ckptWG.Wait)
	return &testClient{t: t, srv: ts}, s, st
}

func (c *testClient) mustAddFact(name, pred string, args ...string) AddFactsResponse {
	c.t.Helper()
	var out AddFactsResponse
	code := c.do("POST", "/v1/sessions/"+name+"/facts",
		AddFactsRequest{Facts: []Fact{{Pred: pred, Args: args}}}, &out)
	if code != http.StatusOK {
		c.t.Fatalf("add fact %s%v: status %d", pred, args, code)
	}
	return out
}

func (c *testClient) mustTruth(name, atom string) string {
	c.t.Helper()
	var tr TruthResponse
	if code := c.do("POST", "/v1/sessions/"+name+"/truth", QueryRequest{Atom: atom}, &tr); code != http.StatusOK {
		c.t.Fatalf("truth %s: status %d", atom, code)
	}
	return tr.Truth
}

// TestDurabilityCrashRestart simulates a crash (the server is abandoned
// without Close, so no final checkpoint is written) and checks a new
// process over the same data dir recovers every session to the exact
// pre-crash epoch, database, and semantics.
func TestDurabilityCrashRestart(t *testing.T) {
	dir := t.TempDir()
	c1, _, st := newDurableClient(t, dir, wal.Options{})
	if st.Sessions != 0 {
		t.Fatalf("fresh dir recovered %d sessions", st.Sessions)
	}
	c1.mustCreate("w", winMove)
	c1.mustCreate("a", authorship)
	// Mutate "w": the killer move. Before: win(b)=true, win(c)=false.
	// After move(c,d): win(c)=true, win(b)=undefined.
	res := c1.mustAddFact("w", "move", "c", "d")
	if res.Epoch != 1 {
		t.Fatalf("epoch after mutation: %d, want 1", res.Epoch)
	}
	if got := c1.mustTruth("w", "win(c)"); got != "true" {
		t.Fatalf("pre-crash win(c) = %s, want true", got)
	}
	// Crash: no srv1.Close(), no checkpoint beyond the creation-time one.

	c2, _, st2 := newDurableClient(t, dir, wal.Options{})
	if st2.Sessions != 2 || st2.Skipped != 0 {
		t.Fatalf("recovery: %+v, want 2 sessions 0 skipped", st2)
	}
	if st2.ReplayedRecords != 1 {
		t.Fatalf("replayed %d records, want 1", st2.ReplayedRecords)
	}
	var info SessionInfo
	if code := c2.do("GET", "/v1/sessions/w", nil, &info); code != http.StatusOK {
		t.Fatalf("get recovered session: status %d", code)
	}
	if info.Epoch != 1 || info.Facts != 4 {
		t.Fatalf("recovered session: epoch %d facts %d, want 1/4", info.Epoch, info.Facts)
	}
	for atom, want := range map[string]string{
		"win(c)": "true",
		"win(b)": "undefined",
	} {
		if got := c2.mustTruth("w", atom); got != want {
			t.Errorf("recovered truth of %s = %s, want %s", atom, got, want)
		}
	}
	// The recovered session keeps logging: mutate, crash again, recover.
	c2.mustAddFact("w", "move", "d", "e")
	_, _, st3 := newDurableClient(t, dir, wal.Options{})
	if st3.Sessions != 2 || st3.ReplayedRecords != 2 {
		t.Fatalf("second recovery: %+v, want 2 sessions, 2 replayed", st3)
	}
}

// TestCleanShutdownReplaysZero: Server.Close writes final checkpoints, so
// the next startup replays no records (the ISSUE's clean-restart bar).
func TestCleanShutdownReplaysZero(t *testing.T) {
	dir := t.TempDir()
	c1, srv1, _ := newDurableClient(t, dir, wal.Options{})
	c1.mustCreate("w", winMove)
	for _, arg := range []string{"d", "e", "f"} {
		c1.mustAddFact("w", "move", "c", arg)
	}
	if err := srv1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	c2, _, st := newDurableClient(t, dir, wal.Options{})
	if st.Sessions != 1 || st.ReplayedRecords != 0 || st.TornTails != 0 {
		t.Fatalf("after clean shutdown: %+v, want 1 session, 0 replayed, 0 torn", st)
	}
	var info SessionInfo
	if code := c2.do("GET", "/v1/sessions/w", nil, &info); code != http.StatusOK || info.Epoch != 3 {
		t.Fatalf("recovered session: code %d epoch %d, want 200/3", code, info.Epoch)
	}
}

// TestDeleteRemovesLog: deleting a session deletes its durable state —
// it must NOT resurrect on restart.
func TestDeleteRemovesLog(t *testing.T) {
	dir := t.TempDir()
	c1, _, _ := newDurableClient(t, dir, wal.Options{})
	c1.mustCreate("doomed", winMove)
	c1.mustAddFact("doomed", "move", "c", "d")
	if code := c1.do("DELETE", "/v1/sessions/doomed", nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: status %d", code)
	}
	// The name is immediately reusable with a fresh log.
	c1.mustCreate("doomed", authorship)

	c2, _, st := newDurableClient(t, dir, wal.Options{})
	if st.Sessions != 1 {
		t.Fatalf("recovered %d sessions, want only the recreated one", st.Sessions)
	}
	var info SessionInfo
	if code := c2.do("GET", "/v1/sessions/doomed", nil, &info); code != http.StatusOK {
		t.Fatalf("get recreated session: status %d", code)
	}
	if info.Epoch != 0 {
		t.Fatalf("recreated session inherited epoch %d from the deleted one", info.Epoch)
	}
}

// TestWALObservability: /v1/stats carries the durability block and
// /metrics the wfsd_wal_* families, with counters that actually moved.
func TestWALObservability(t *testing.T) {
	dir := t.TempDir()
	c, _, _ := newDurableClient(t, dir, wal.Options{Fsync: true})
	c.mustCreate("w", winMove)
	c.mustAddFact("w", "move", "c", "d")
	c.mustAddFact("w", "move", "c", "e")

	var st ServerStatsResponse
	if code := c.do("GET", "/v1/stats", nil, &st); code != http.StatusOK {
		t.Fatalf("/v1/stats: status %d", code)
	}
	if st.WAL == nil {
		t.Fatal("/v1/stats: no wal block with durability enabled")
	}
	if st.WAL.AppendedRecords != 2 || st.WAL.AppendedBytes == 0 {
		t.Errorf("wal stats appended: %+v", st.WAL)
	}
	if st.WAL.Fsyncs != 2 || st.WAL.FsyncTotalMS <= 0 {
		t.Errorf("wal stats fsync: fsyncs=%d total_ms=%v", st.WAL.Fsyncs, st.WAL.FsyncTotalMS)
	}
	if st.WAL.Checkpoints != 1 { // the creation-time checkpoint
		t.Errorf("wal stats checkpoints = %d, want 1", st.WAL.Checkpoints)
	}
	if n := len(st.WAL.FsyncHistogram); n != len(wal.FsyncBuckets)+1 {
		t.Errorf("fsync histogram has %d buckets, want %d", n, len(wal.FsyncBuckets)+1)
	}
	var total int64
	for _, b := range st.WAL.FsyncHistogram {
		total += b.Count
	}
	if total != st.WAL.Fsyncs {
		t.Errorf("fsync histogram sums to %d, want %d", total, st.WAL.Fsyncs)
	}

	req, _ := http.NewRequest("GET", c.srv.URL+"/metrics", nil)
	resp, err := c.srv.Client().Do(req)
	if err != nil {
		t.Fatalf("/metrics: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read /metrics: %v", err)
	}
	body := string(raw)
	for _, family := range []string{
		"wfsd_wal_appended_records_total 2",
		"wfsd_wal_appended_bytes_total",
		"wfsd_wal_fsync_duration_seconds_count 2",
		"wfsd_wal_fsync_duration_seconds_bucket{le=\"+Inf\"} 2",
		"wfsd_wal_checkpoints_total 1",
		"wfsd_wal_torn_tails_total 0",
		"wfsd_wal_last_checkpoint_age_seconds{session=\"w\"}",
	} {
		if !strings.Contains(body, family) {
			t.Errorf("/metrics missing %q", family)
		}
	}

	// A server without a data dir has no wal block and no wal families.
	cPlain := newTestClient(t, Config{})
	var stPlain ServerStatsResponse
	cPlain.do("GET", "/v1/stats", nil, &stPlain)
	if stPlain.WAL != nil {
		t.Error("in-memory server reports a wal block")
	}
}

// TestBackgroundCheckpoint: crossing the record threshold schedules an
// async checkpoint that truncates the replay tail for the next restart.
func TestBackgroundCheckpoint(t *testing.T) {
	dir := t.TempDir()
	c, srv, _ := newDurableClient(t, dir, wal.Options{CheckpointRecords: 2, CheckpointBytes: -1})
	c.mustCreate("w", winMove)
	args := []string{"d", "e", "f", "g"}
	for _, a := range args {
		c.mustAddFact("w", "move", "c", a)
	}
	// Creation wrote checkpoint #1; the threshold crossings schedule more
	// in the background. Poll — the checkpointer is async by design.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if srv.wal.Metrics().Read().Checkpoints >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no background checkpoint after %d mutations with threshold 2", len(args))
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Quiesce, then crash-restart: the checkpoint must have shortened the
	// replay tail below the full mutation count, without losing state.
	_, _, st := newDurableClient(t, dir, wal.Options{})
	if st.Sessions != 1 {
		t.Fatalf("recovered %d sessions, want 1", st.Sessions)
	}
	if st.ReplayedRecords >= len(args) {
		t.Errorf("replayed %d records, want fewer than %d after a checkpoint", st.ReplayedRecords, len(args))
	}
}
