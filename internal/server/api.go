// Package server implements wfsd's HTTP/JSON serving layer over the WFS
// engine: a registry of named loaded programs ("sessions"), an LRU answer
// cache keyed by (session, epoch, normalized query), bounded request
// concurrency, and handlers for program loading, incremental fact
// assertion, NBCQ answering, non-Boolean selection, ground-atom
// truth/explanation, and statistics. See DESIGN.md §Server.
//
// API summary (all request/response bodies JSON):
//
//	GET    /v1/healthz                     liveness
//	GET    /v1/stats                       server-wide stats
//	GET    /metrics                        Prometheus text metrics
//	GET    /v1/sessions                    list sessions
//	POST   /v1/sessions                    create session {name, program, options?}
//	GET    /v1/sessions/{name}             session info
//	DELETE /v1/sessions/{name}             delete session
//	POST   /v1/sessions/{name}/facts      add facts {facts: [{pred, args}]} (atomic batch)
//	POST   /v1/sessions/{name}/retract    retract facts {facts: [{pred, args}]} (atomic batch)
//	POST   /v1/sessions/{name}/query      NBCQ answer {query}; ?trace=1 adds an evaluation trace
//	POST   /v1/sessions/{name}/select     non-Boolean select {query}
//	POST   /v1/sessions/{name}/truth      ground-atom truth {atom}
//	POST   /v1/sessions/{name}/explain    forward proof {atom}
//	GET    /v1/sessions/{name}/stats      engine/model stats
//	GET    /v1/traces                      flight-recorder index (retained request traces)
//	GET    /v1/traces/{id}                full recorded trace by trace ID
package server

import (
	"fmt"

	wfs "repro"
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/trace"
)

// SessionOptions is the JSON surface of core.Options. Zero/absent fields
// select engine defaults.
type SessionOptions struct {
	Depth           int    `json:"depth,omitempty"`
	MaxAtoms        int    `json:"max_atoms,omitempty"`
	Algorithm       string `json:"algorithm,omitempty"` // alternating-fixpoint | unfounded-sets | forward-proofs | remainder
	Parallelism     int    `json:"parallelism,omitempty"`
	AdaptiveStart   int    `json:"adaptive_start,omitempty"`
	AdaptiveStep    int    `json:"adaptive_step,omitempty"`
	StabilityWindow int    `json:"stability_window,omitempty"`
	MaxDepth        int    `json:"max_depth,omitempty"`
	GuardBand       int    `json:"guard_band,omitempty"`
	// NoCertify keeps the heuristic adaptive ladder even when static
	// analysis certifies a chase depth bound (see wfs.Options.NoCertify).
	NoCertify bool `json:"no_certify,omitempty"`
}

// toOptions translates the JSON options into engine options.
func (o *SessionOptions) toOptions() (wfs.Options, error) {
	if o == nil {
		return wfs.Options{}, nil
	}
	opts := wfs.Options{
		Depth:           o.Depth,
		MaxAtoms:        o.MaxAtoms,
		Parallelism:     o.Parallelism,
		AdaptiveStart:   o.AdaptiveStart,
		AdaptiveStep:    o.AdaptiveStep,
		StabilityWindow: o.StabilityWindow,
		MaxDepth:        o.MaxDepth,
		GuardBand:       o.GuardBand,
		NoCertify:       o.NoCertify,
	}
	switch o.Algorithm {
	case "", "alternating-fixpoint":
		opts.Algorithm = core.AltFixpoint
	case "unfounded-sets":
		opts.Algorithm = core.UnfoundedSets
	case "forward-proofs":
		opts.Algorithm = core.ForwardProofs
	case "remainder":
		opts.Algorithm = core.Remainder
	default:
		return wfs.Options{}, fmt.Errorf("unknown algorithm %q", o.Algorithm)
	}
	return opts, nil
}

// CreateSessionRequest loads a program under a name.
type CreateSessionRequest struct {
	Name    string          `json:"name"`
	Program string          `json:"program"`
	Options *SessionOptions `json:"options,omitempty"`
}

// SessionInfo describes a live session.
type SessionInfo struct {
	Name      string `json:"name"`
	CreatedAt string `json:"created_at"` // RFC 3339
	Facts     int    `json:"facts"`
	Epoch     uint64 `json:"epoch"`
	Queries   int    `json:"embedded_queries"`
}

// AnalysisInfo is the JSON summary of the load-time static-analysis
// report (wfs.System.Analysis): termination classification, the
// certified chase depth bound (0 = no certificate), and the diagnostic
// tally. Diagnostics carries the Warning-and-above findings in create
// responses; Info findings are available through wfslint.
type AnalysisInfo struct {
	Classes        []string              `json:"classes,omitempty"`
	Terminates     bool                  `json:"terminates"`
	CertifiedDepth int                   `json:"certified_depth,omitempty"`
	Stratified     bool                  `json:"stratified"`
	Errors         int                   `json:"errors"`
	Warnings       int                   `json:"warnings"`
	Infos          int                   `json:"infos"`
	Diagnostics    []analysis.Diagnostic `json:"diagnostics,omitempty"`
}

// analysisDTO summarizes a report; withDiags attaches the Warning-and-
// above diagnostics (Error findings never reach a stored session — they
// are rejected at create — but Restore'd sessions may carry them).
func analysisDTO(rep *analysis.Report, withDiags bool) *AnalysisInfo {
	if rep == nil {
		return nil
	}
	nerr, nwarn, ninfo := rep.Counts()
	out := &AnalysisInfo{
		Classes:    rep.Classes,
		Terminates: rep.Terminates,
		Stratified: rep.Stratified,
		Errors:     nerr,
		Warnings:   nwarn,
		Infos:      ninfo,
	}
	if rep.Certificate != nil {
		out.CertifiedDepth = rep.Certificate.DepthBound
	}
	if withDiags {
		for _, d := range rep.Diagnostics {
			if d.Severity >= analysis.Warning {
				out.Diagnostics = append(out.Diagnostics, d)
			}
		}
	}
	return out
}

// CreateSessionResponse is the 201 body of session creation: the session
// info plus the static-analysis summary with any warnings.
type CreateSessionResponse struct {
	SessionInfo
	Analysis *AnalysisInfo `json:"analysis,omitempty"`
}

// SessionListResponse lists live sessions.
type SessionListResponse struct {
	Sessions []SessionInfo `json:"sessions"`
}

// Fact is one ground fact pred(args...).
type Fact struct {
	Pred string   `json:"pred"`
	Args []string `json:"args"`
}

// AddFactsRequest asserts (facts endpoint) or retracts (retract
// endpoint) a batch of facts in a session. Either way the batch applies
// as one atomic delta: all-or-nothing validation, one epoch bump.
type AddFactsRequest struct {
	Facts []Fact `json:"facts"`
}

// AddFactsResponse reports the post-write database state.
type AddFactsResponse struct {
	Added int    `json:"added"`
	Facts int    `json:"facts"`
	Epoch uint64 `json:"epoch"`
}

// RetractResponse reports the post-retraction database state.
type RetractResponse struct {
	Retracted int    `json:"retracted"`
	Facts     int    `json:"facts"`
	Epoch     uint64 `json:"epoch"`
}

// QueryRequest answers an NBCQ (query) or evaluates a ground atom (atom),
// depending on the endpoint.
type QueryRequest struct {
	Query string `json:"query,omitempty"`
	Atom  string `json:"atom,omitempty"`
}

// AnswerStats mirrors core.AnswerStats in JSON form.
type AnswerStats struct {
	Depths     []int    `json:"depths"`
	Answers    []string `json:"answers"`
	FinalDepth int      `json:"final_depth"`
	Exact      bool     `json:"exact"`
	Stable     bool     `json:"stable"`
}

func answerStatsDTO(s *core.AnswerStats) *AnswerStats {
	if s == nil {
		return nil
	}
	out := &AnswerStats{
		Depths:     s.Depths,
		FinalDepth: s.FinalDepth,
		Exact:      s.Exact,
		Stable:     s.Stable,
	}
	for _, a := range s.Answers {
		out.Answers = append(out.Answers, a.String())
	}
	return out
}

// QueryResponse is the answer to an NBCQ. Trace is present only when
// the request asked for one (?trace=1); traced responses bypass the
// answer cache. TraceID accompanies the trace — the same evaluation is
// pinned in the flight recorder and retrievable later at
// GET /v1/traces/{trace_id}.
type QueryResponse struct {
	Query  string       `json:"query"` // normalized form
	Answer string       `json:"answer"`
	Cached bool         `json:"cached"`
	Stats  *AnswerStats `json:"stats,omitempty"`
	// Partial marks a gracefully degraded answer: the evaluation hit its
	// deadline, the client asked for ?partial=1, and Answer is the
	// deepest COMPLETED approximation rung's answer — sound for that
	// depth but not proven stable (Stats.Exact is false). Partial
	// answers are never cached.
	Partial bool             `json:"partial,omitempty"`
	Trace   *trace.EvalTrace `json:"trace,omitempty"`
	TraceID string           `json:"trace_id,omitempty"`
}

// SelectResponse is the certain-answer relation of a non-Boolean query.
type SelectResponse struct {
	Query  string     `json:"query"` // normalized form
	Vars   []string   `json:"vars"`
	Tuples [][]string `json:"tuples"`
	Cached bool       `json:"cached"`
}

// TruthResponse is the three-valued truth of a ground atom.
type TruthResponse struct {
	Atom   string `json:"atom"`
	Truth  string `json:"truth"`
	Cached bool   `json:"cached"`
}

// ExplainResponse is a rendered forward proof of a true ground atom.
type ExplainResponse struct {
	Atom   string `json:"atom"`
	True   bool   `json:"true"`
	Proof  string `json:"proof,omitempty"`
	Cached bool   `json:"cached"`
}

// ModelStats mirrors core.ModelStats in JSON form.
type ModelStats struct {
	Depth           int  `json:"depth"`
	MaxDepthReached int  `json:"max_depth_reached"`
	Exact           bool `json:"exact"`
	Truncated       bool `json:"truncated"`
	UsableDepth     int  `json:"usable_depth"`
	ChaseAtoms      int  `json:"chase_atoms"`
	ChaseInstances  int  `json:"chase_instances"`
	TrueAtoms       int  `json:"true_atoms"`
	UndefinedAtoms  int  `json:"undefined_atoms"`
	FalseAtoms      int  `json:"false_atoms"`

	// Modular-evaluation shape: dependency-graph SCC count, largest
	// component size, components that needed the full WFS fixpoint
	// (internal negation cycle), and peak solver workers.
	SCCCount     int `json:"scc_count"`
	LargestSCC   int `json:"largest_scc"`
	HardSCCs     int `json:"hard_sccs"`
	SolveWorkers int `json:"solve_workers"`
}

// SessionStatsResponse reports engine/model statistics for one session.
// Engine carries the system's lifetime build counters (cumulative phase
// times, build/rebase counts) alongside the current model's shape.
type SessionStatsResponse struct {
	Name       string                    `json:"name"`
	Facts      int                       `json:"facts"`
	Epoch      uint64                    `json:"epoch"`
	Algorithm  string                    `json:"algorithm"`
	Stratified bool                      `json:"stratified"`
	DeltaBound string                    `json:"delta_bound"`
	DeltaBits  int                       `json:"delta_bits"`
	Analysis   *AnalysisInfo             `json:"analysis,omitempty"`
	Model      ModelStats                `json:"model"`
	Engine     wfs.EngineMetricsSnapshot `json:"engine"`
}

func sessionStatsDTO(name string, st wfs.Stats, em wfs.EngineMetricsSnapshot, rep *analysis.Report) SessionStatsResponse {
	return SessionStatsResponse{
		Name:       name,
		Facts:      st.Facts,
		Epoch:      st.Epoch,
		Algorithm:  st.Algorithm,
		Stratified: st.Stratified,
		DeltaBound: st.DeltaBound,
		DeltaBits:  st.DeltaBits,
		Analysis:   analysisDTO(rep, false),
		Engine:     em,
		Model: ModelStats{
			Depth:           st.Model.Depth,
			MaxDepthReached: st.Model.MaxDepthReached,
			Exact:           st.Model.Exact,
			Truncated:       st.Model.Truncated,
			UsableDepth:     st.Model.UsableDepth,
			ChaseAtoms:      st.Model.ChaseAtoms,
			ChaseInstances:  st.Model.ChaseInstances,
			TrueAtoms:       st.Model.TrueAtoms,
			UndefinedAtoms:  st.Model.UndefinedAtoms,
			FalseAtoms:      st.Model.FalseAtoms,
			SCCCount:        st.Model.SCCs,
			LargestSCC:      st.Model.LargestSCC,
			HardSCCs:        st.Model.HardSCCs,
			SolveWorkers:    st.Model.SolveWorkers,
		},
	}
}

// ServerStatsResponse reports server-wide statistics.
type ServerStatsResponse struct {
	Sessions int        `json:"sessions"`
	Cache    CacheStats `json:"cache"`
	// SingleflightShared counts answers served from another request's
	// in-flight computation (the stampede window between a cache miss
	// and the leader's Put).
	SingleflightShared int64 `json:"singleflight_shared"`
	InFlight           int64 `json:"in_flight"`
	// Limiter saturation: requests queued for a slot right now, and
	// cumulative rejections (429 after MaxQueueWait, 503 when the
	// client hung up while queued).
	Waiting          int64 `json:"waiting"`
	RejectedTimeout  int64 `json:"rejected_timeout"`
	RejectedCanceled int64 `json:"rejected_canceled"`
	MaxConcurrent    int   `json:"max_concurrent"`
	MaxQueueWaitMS   int64 `json:"max_queue_wait_ms"` // 0 = unbounded
	// Query governance: the configured server-side deadline (0 = none)
	// and how many queries hit it (504 or degraded ?partial=1 200) or
	// lost their client mid-evaluation (503).
	QueryTimeoutMS int64   `json:"query_timeout_ms"`
	QueryTimeouts  int64   `json:"query_timeouts"`
	QueryCancels   int64   `json:"query_cancels"`
	SlowQueries    int64   `json:"slow_queries"`
	UptimeSeconds  float64 `json:"uptime_seconds"`
	// WAL reports durability state; absent when the server runs without
	// a data directory.
	WAL *WALStats `json:"wal,omitempty"`
}

// WALBucket is one fsync-latency histogram bucket; LESeconds -1 marks
// the overflow bucket.
type WALBucket struct {
	LESeconds float64 `json:"le_seconds"`
	Count     int64   `json:"count"`
}

// WALStats reports the write-ahead-log/checkpoint subsystem: append and
// fsync volume on the mutation path, checkpoint activity, and what
// startup recovery replayed.
type WALStats struct {
	AppendedRecords    int64       `json:"appended_records"`
	AppendedBytes      int64       `json:"appended_bytes"`
	AppendErrors       int64       `json:"append_errors"`
	Fsyncs             int64       `json:"fsyncs"`
	FsyncTotalMS       float64     `json:"fsync_total_ms"`
	FsyncHistogram     []WALBucket `json:"fsync_histogram"`
	Checkpoints        int64       `json:"checkpoints"`
	CheckpointFailures int64       `json:"checkpoint_failures"`
	// OldestCheckpointAgeSeconds is the age of the most-overdue session
	// checkpoint — an upper bound on how much replay a crash right now
	// would cost.
	OldestCheckpointAgeSeconds float64 `json:"oldest_checkpoint_age_seconds"`
	RecoveredSessions          int     `json:"recovered_sessions"`
	ReplayedRecords            int     `json:"replayed_records"`
	ReplayDurationMS           float64 `json:"replay_duration_ms"`
	TornTails                  int64   `json:"torn_tails"`
	// ReadonlySessions counts sessions whose WAL circuit breaker is
	// currently open: their mutations 503 while a background probe waits
	// for the disk to heal.
	ReadonlySessions int64 `json:"readonly_sessions"`
}

// ErrorResponse is the uniform error body. Diagnostics is present only
// when a program was rejected at session creation for Error-severity
// static-analysis findings; it then carries the full structured report
// (all severities) so clients can render line-accurate messages.
// TraceID is the request's trace identity (also on the X-Trace-Id
// response header and the access-log line) so a failure report can cite
// one identifier that correlates every artifact of the request.
type ErrorResponse struct {
	Error       string                `json:"error"`
	TraceID     string                `json:"trace_id,omitempty"`
	Diagnostics []analysis.Diagnostic `json:"diagnostics,omitempty"`
	// Budget is present on 422 atom-budget rejections: how many atoms
	// the chase had derived when it hit the configured MaxAtoms cap.
	// Raise max_atoms (or lower depth) and retry.
	Budget *BudgetInfo `json:"budget,omitempty"`
}

// BudgetInfo is the structured payload of an atom-budget rejection.
type BudgetInfo struct {
	Atoms int `json:"atoms"`
	Limit int `json:"limit"`
}

// TraceSummary is one flight-recorder entry in the GET /v1/traces
// index: identity, route, outcome, and why it was retained (Kept is
// "error", "slow", "pinned", or "sampled").
type TraceSummary struct {
	TraceID string  `json:"trace_id"`
	Route   string  `json:"route"`
	Path    string  `json:"path,omitempty"`
	Session string  `json:"session,omitempty"`
	Status  int     `json:"status"`
	Kept    string  `json:"kept"`
	Error   string  `json:"error,omitempty"`
	Start   string  `json:"start"` // RFC 3339 with nanoseconds
	DurMS   float64 `json:"dur_ms"`
}

// TraceIndexResponse is the GET /v1/traces body: retained traces,
// newest first, plus the recorder's occupancy and bound.
type TraceIndexResponse struct {
	Traces   []TraceSummary `json:"traces"`
	Entries  int            `json:"entries"`
	Capacity int            `json:"capacity"`
}
