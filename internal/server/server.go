package server

import (
	"io"
	"log"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/trace"
	"repro/internal/wal"
)

// Config sizes the serving layer. Zero values select the defaults noted
// on each field.
type Config struct {
	// MaxSessions bounds the registry; 0 means DefaultMaxSessions,
	// negative means unbounded.
	MaxSessions int
	// CacheSize bounds the answer cache in entries; 0 means
	// DefaultCacheSize, negative disables caching.
	CacheSize int
	// MaxConcurrent bounds in-flight requests; 0 means
	// DefaultMaxConcurrent, negative means unlimited.
	MaxConcurrent int
	// MaxBodyBytes bounds request bodies; non-positive means
	// DefaultMaxBodyBytes (unlike the sibling fields, there is no
	// unlimited mode — an unbounded body is a trivial DoS).
	MaxBodyBytes int64
	// MaxQueueWait bounds how long a request may queue for a limiter
	// slot before a 429; 0 means DefaultMaxQueueWait, negative means
	// wait as long as the client does (the pre-bounded behavior).
	MaxQueueWait time.Duration
	// SlowQueryThreshold gates the slow-query log: uncached queries
	// slower than this log one structured line with the phase
	// breakdown. 0 disables. The flight recorder also classifies
	// requests over this threshold as slow (always retained).
	SlowQueryThreshold time.Duration
	// TraceBufferSize bounds the flight recorder (completed request
	// traces retained for /v1/traces) in entries; 0 means
	// DefaultTraceBufferSize, negative disables the recorder (requests
	// still carry trace IDs, but no traces are retained).
	TraceBufferSize int
	// QueryTimeout bounds each uncached query evaluation with a
	// server-side deadline: a query still running when it expires is
	// cooperatively cancelled (its limiter slot and goroutines released
	// within milliseconds) and answered 504, or — when the client opted
	// in with ?partial=1 — degraded to the deepest completed rung's
	// answer marked inexact. 0 disables the server-side deadline; the
	// client's own disconnect always cancels regardless.
	QueryTimeout time.Duration
	// WALFailureThreshold is how many CONSECUTIVE WAL append failures
	// trip a session's circuit breaker into read-only mode (mutations
	// 503, reads keep serving, a background probe heals the breaker when
	// the disk recovers); 0 means DefaultWALFailureThreshold, negative
	// disables the breaker.
	WALFailureThreshold int
	// WALProbeInterval is how often a read-only session probes its log
	// directory for healing; non-positive means DefaultWALProbeInterval.
	WALProbeInterval time.Duration
	// Logger receives panic and lifecycle logs; nil discards them.
	Logger *log.Logger
	// AccessLogger receives one structured line per request; nil
	// disables access logging.
	AccessLogger *log.Logger
}

// Serving-layer defaults.
const (
	DefaultMaxSessions     = 1024
	DefaultCacheSize       = 4096
	DefaultMaxConcurrent   = 64
	DefaultMaxBodyBytes    = 8 << 20 // 8 MiB: program text can be sizeable
	DefaultMaxQueueWait    = 5 * time.Second
	DefaultTraceBufferSize = 512
	// DefaultWALFailureThreshold trips a session read-only after this
	// many consecutive append failures: one failure is often a blip (a
	// transient EIO the client retries through); three in a row is a
	// full disk or a dead volume, and continuing to accept mutations
	// would reject every one while hammering the device.
	DefaultWALFailureThreshold = 3
	DefaultWALProbeInterval    = 2 * time.Second
)

func (c Config) withDefaults() Config {
	switch {
	case c.MaxSessions == 0:
		c.MaxSessions = DefaultMaxSessions
	case c.MaxSessions < 0:
		c.MaxSessions = 0 // registry: 0 = unbounded
	}
	switch {
	case c.CacheSize == 0:
		c.CacheSize = DefaultCacheSize
	case c.CacheSize < 0:
		c.CacheSize = 0 // cache: 0 = disabled
	}
	switch {
	case c.MaxConcurrent == 0:
		c.MaxConcurrent = DefaultMaxConcurrent
	case c.MaxConcurrent < 0:
		c.MaxConcurrent = 0 // limiter: 0 = unlimited
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	switch {
	case c.MaxQueueWait == 0:
		c.MaxQueueWait = DefaultMaxQueueWait
	case c.MaxQueueWait < 0:
		c.MaxQueueWait = 0 // limiter: 0 = wait unbounded
	}
	switch {
	case c.TraceBufferSize == 0:
		c.TraceBufferSize = DefaultTraceBufferSize
	case c.TraceBufferSize < 0:
		c.TraceBufferSize = 0 // recorder: 0 = disabled
	}
	switch {
	case c.WALFailureThreshold == 0:
		c.WALFailureThreshold = DefaultWALFailureThreshold
	case c.WALFailureThreshold < 0:
		c.WALFailureThreshold = 0 // breaker: 0 = disabled
	}
	if c.WALProbeInterval <= 0 {
		c.WALProbeInterval = DefaultWALProbeInterval
	}
	if c.QueryTimeout < 0 {
		c.QueryTimeout = 0 // 0 = no server-side deadline
	}
	if c.Logger == nil {
		c.Logger = log.New(io.Discard, "", 0)
	}
	return c
}

// Server is the wfsd serving layer: session registry + answer cache +
// request limiter, exposed as an http.Handler.
type Server struct {
	cfg         Config
	reg         *Registry
	cache       *Cache
	flight      flightGroup  // collapses concurrent identical computations
	shared      atomic.Int64 // results served from an in-flight computation
	slowQueries atomic.Int64 // uncached queries over SlowQueryThreshold
	limiter     *limiter
	httpMetrics *httpMetrics

	// Resource-governance outcome counters, surfaced in /v1/stats and
	// /metrics: queries that hit the server-side deadline (504, or a
	// degraded 200 under ?partial=1) and queries whose client
	// disconnected mid-evaluation (503).
	queryTimeouts atomic.Int64
	queryCancels  atomic.Int64
	recorder      *trace.Recorder // flight recorder; nil = disabled
	started       time.Time

	// Durability (nil = in-memory only); set by OpenWAL before the
	// listener starts. recovery records what startup replay did, for
	// /v1/stats and /metrics.
	wal      *wal.Manager
	recovery RecoveryStats
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		reg:         NewRegistry(cfg.MaxSessions),
		cache:       NewCache(cfg.CacheSize),
		limiter:     newLimiter(cfg.MaxConcurrent, cfg.MaxQueueWait),
		httpMetrics: newHTTPMetrics(),
		started:     time.Now(),
	}
	if cfg.TraceBufferSize > 0 {
		s.recorder = trace.NewRecorder(cfg.TraceBufferSize, cfg.SlowQueryThreshold)
	}
	// Background work (checkpoints) records its traces too.
	s.reg.recorder = s.recorder
	// Circuit-breaker sizing for sessions that gain a WAL later
	// (OpenWAL recovery and every subsequent create).
	s.reg.breakerThreshold = cfg.WALFailureThreshold
	s.reg.probeInterval = cfg.WALProbeInterval
	return s
}

// Registry exposes the session registry (for preloading at startup).
func (s *Server) Registry() *Registry { return s.reg }

// RecoveryStats summarizes what OpenWAL's startup recovery did.
type RecoveryStats struct {
	Sessions        int           // sessions rebuilt from disk
	Skipped         int           // unrecoverable session directories (left on disk)
	ReplayedRecords int           // delta records applied across all sessions
	TornTails       int           // sessions whose log tail was repaired
	Duration        time.Duration // total recover-and-rebuild time
}

// OpenWAL enables durability: every session gains a write-ahead log of
// its mutation deltas plus periodic snapshot checkpoints under dir, and
// the sessions persisted by a previous process are recovered into the
// registry — warm systems at the exact epoch last durably committed.
// Must be called before the server starts handling requests.
func (s *Server) OpenWAL(dir string, wopts wal.Options) (RecoveryStats, error) {
	m, err := wal.Open(dir, wopts)
	if err != nil {
		return RecoveryStats{}, err
	}
	// Startup recovery is traced like a request and pinned into the
	// flight recorder: "why did restart take 40 seconds" is answered by
	// GET /v1/traces after the fact, per-session replay spans included.
	var root *trace.Span
	if s.recorder != nil {
		root = trace.New("startup-recovery")
	}
	start := time.Now()
	recs, skipped, err := m.RecoverTraced(root)
	if err != nil {
		return RecoveryStats{}, err
	}
	s.wal = m
	s.reg.wal = m
	s.reg.logger = s.cfg.Logger
	st := RecoveryStats{Skipped: len(skipped)}
	for _, sk := range skipped {
		s.cfg.Logger.Printf("wal: skipping unrecoverable session dir %s: %v", sk.Dir, sk.Err)
	}
	for _, rec := range recs {
		sess := &Session{
			Name:      rec.Name,
			CreatedAt: time.Now(),
			Sys:       rec.Sys,
			src:       rec.Source,
			opts:      rec.Options,
			wlog:      rec.Log,
			id:        sessionIDs.Add(1),
		}
		if err := s.reg.adopt(sess); err != nil {
			s.cfg.Logger.Printf("wal: cannot adopt recovered session %q: %v", rec.Name, err)
			st.Skipped++
			continue
		}
		s.reg.attachWAL(sess)
		st.Sessions++
		st.ReplayedRecords += rec.Replayed
		if rec.TornTail {
			st.TornTails++
		}
	}
	st.Duration = time.Since(start)
	s.recovery = st
	if s.recorder != nil {
		root.End()
		s.recorder.Record(&trace.RequestTrace{
			TraceID:       trace.MintContext().TraceIDString(),
			Route:         "internal/startup-recovery",
			Status:        http.StatusOK,
			StartUnixNano: start.UnixNano(),
			DurationUS:    st.Duration.Microseconds(),
			Span:          root,
			Pinned:        true,
		})
	}
	return st, nil
}

// Close flushes durability state for a graceful shutdown: a final
// checkpoint per session (so a clean restart replays zero records), then
// fsync-and-close of every open segment. No-op without OpenWAL. Call
// after the HTTP listener has drained — mutations racing Close are
// rejected by the closed log rather than lost.
func (s *Server) Close() error {
	if s.wal == nil {
		return nil
	}
	// Join in-flight background checkpoints first: the final
	// CheckpointAll must be the last writer, not race a threshold-
	// triggered one still running. No new ones start — the listener has
	// drained, and checkpoints are only scheduled by mutation commits.
	s.reg.ckptWG.Wait()
	err := s.reg.CheckpointAll()
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	return err
}

// walStats renders the durability block of /v1/stats (nil when the
// server runs without a data dir).
func (s *Server) walStats() *WALStats {
	if s.wal == nil {
		return nil
	}
	m := s.wal.Metrics().Read()
	ws := &WALStats{
		AppendedRecords:    m.AppendedRecords,
		AppendedBytes:      m.AppendedBytes,
		AppendErrors:       m.AppendErrors,
		Fsyncs:             m.Fsyncs,
		FsyncTotalMS:       float64(m.FsyncNS) / 1e6,
		Checkpoints:        m.Checkpoints,
		CheckpointFailures: m.CheckpointFailures,
		RecoveredSessions:  s.recovery.Sessions,
		ReplayedRecords:    s.recovery.ReplayedRecords,
		ReplayDurationMS:   float64(s.recovery.Duration.Nanoseconds()) / 1e6,
		TornTails:          m.TornTails,
		ReadonlySessions:   s.reg.walReadonly.Load(),
	}
	for i, ub := range wal.FsyncBuckets {
		ws.FsyncHistogram = append(ws.FsyncHistogram, WALBucket{LESeconds: ub, Count: m.FsyncBuckets[i]})
	}
	ws.FsyncHistogram = append(ws.FsyncHistogram, WALBucket{LESeconds: -1, Count: m.FsyncBuckets[len(wal.FsyncBuckets)]})
	// Oldest (= most overdue) checkpoint across sessions: the headline
	// "how much replay would a crash right now cost" signal.
	for _, name := range s.reg.Names() {
		if sess, err := s.reg.Get(name); err == nil && sess.wlog != nil {
			if age := time.Since(sess.wlog.LastCheckpoint()).Seconds(); age > ws.OldestCheckpointAgeSeconds {
				ws.OldestCheckpointAgeSeconds = age
			}
		}
	}
	return ws
}

// Handler returns the fully-wired HTTP handler: routes inside panic
// recovery inside the concurrency limiter, with request metrics and
// access logging outermost so they also see limiter rejections and
// recovered panics as the status codes clients got. /v1/healthz,
// /v1/stats, and /metrics bypass the limiter so liveness probes and
// observability keep answering while every slot is occupied by slow
// evaluations (a saturated-but-healthy server must not be restarted by
// its orchestrator, and saturation is exactly when scrapes matter).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/sessions", s.handleListSessions)
	mux.HandleFunc("POST /v1/sessions", s.handleCreateSession)
	mux.HandleFunc("GET /v1/sessions/{name}", s.handleGetSession)
	mux.HandleFunc("DELETE /v1/sessions/{name}", s.handleDeleteSession)
	mux.HandleFunc("POST /v1/sessions/{name}/facts", s.handleAddFacts)
	mux.HandleFunc("POST /v1/sessions/{name}/retract", s.handleRetract)
	mux.HandleFunc("POST /v1/sessions/{name}/query", s.handleQuery)
	mux.HandleFunc("POST /v1/sessions/{name}/select", s.handleSelect)
	mux.HandleFunc("POST /v1/sessions/{name}/truth", s.handleTruth)
	mux.HandleFunc("POST /v1/sessions/{name}/explain", s.handleExplain)
	mux.HandleFunc("GET /v1/sessions/{name}/stats", s.handleSessionStats)
	limited := s.limiter.wrap(mux)

	root := http.NewServeMux()
	root.HandleFunc("GET /v1/healthz", s.handleHealthz)
	root.HandleFunc("GET /v1/stats", s.handleServerStats)
	root.HandleFunc("GET /v1/traces", s.handleTraceIndex)
	root.HandleFunc("GET /v1/traces/{id}", s.handleTraceGet)
	root.HandleFunc("GET /metrics", s.handleMetrics)
	root.Handle("/", limited)

	// routeOf resolves the registered mux pattern for metric labels:
	// the outer middleware runs before either mux has matched, so look
	// the pattern up the way ServeMux itself will. Requests falling
	// through root's "/" are resolved against the inner route table.
	routeOf := func(r *http.Request) string {
		if _, pat := root.Handler(r); pat != "" && pat != "/" {
			return pat
		}
		if _, pat := mux.Handler(r); pat != "" {
			return pat
		}
		return "unmatched"
	}
	return s.instrument(routeOf, recoverPanics(s.cfg.Logger, root))
}
