package server

import (
	"container/list"
	"strconv"
	"strings"
	"sync"
)

// Cache is a mutex-guarded LRU answer cache. Keys embed the owning
// session's process-unique ID and database epoch (see answerKey), so a
// fact write — which bumps the epoch — implicitly invalidates every
// cached answer for that session: post-write lookups construct keys the
// cache has never seen, and the stale entries age out of the LRU. Keying
// by ID rather than name means a session deleted and recreated under the
// same name (whose epoch restarts at zero) can never hit the earlier
// incarnation's entries. Deleting a session purges its entries eagerly
// via DeleteSession.
//
// A Cache with capacity 0 is valid and caches nothing.
type Cache struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List               // front = most recently used
	items  map[string]*list.Element // key → element whose Value is *cacheEntry
	hits   uint64
	misses uint64
}

type cacheEntry struct {
	key string
	// session and epoch duplicate the key's first two components in
	// parsed form, so the scan-shaped operations (PruneStale,
	// DeleteSession) compare integers instead of parsing every key.
	session uint64
	epoch   uint64
	val     any
}

// NewCache returns an LRU cache bounded to capacity entries.
func NewCache(capacity int) *Cache {
	if capacity < 0 {
		capacity = 0
	}
	return &Cache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// keySep separates the key components; none of them can contain it
// (IDs and epochs render as digits, kinds are fixed literals, and the
// normalized query text cannot contain a NUL).
const keySep = "\x00"

// answerKey builds a cache key scoped to a session (by process-unique
// ID) at a database epoch. kind distinguishes endpoint result types
// ("answer", "select", …) and norm is the normalized query text.
func answerKey(sessionID, epoch uint64, kind, norm string) string {
	var b strings.Builder
	b.Grow(len(kind) + len(norm) + 44)
	b.WriteString(strconv.FormatUint(sessionID, 10))
	b.WriteString(keySep)
	b.WriteString(strconv.FormatUint(epoch, 10))
	b.WriteString(keySep)
	b.WriteString(kind)
	b.WriteString(keySep)
	b.WriteString(norm)
	return b.String()
}

// Get returns the cached value for key, marking it most recently used.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).val, true
	}
	c.misses++
	return nil, false
}

// Put inserts or refreshes key — which must have been built by answerKey
// from the given session ID and epoch — evicting the least recently used
// entry when over capacity.
func (c *Cache) Put(key string, sessionID, epoch uint64, val any) {
	if c.cap == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, session: sessionID, epoch: epoch, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// PruneStale drops every entry belonging to the session whose epoch
// component is below currentEpoch, returning how many were removed. A
// mutation bumps the session's epoch, so its older-epoch entries can
// never be hit again (lookups build keys at the current epoch); without
// pruning they would squat in the LRU until capacity pressure ages them
// out, displacing live entries of other sessions. The mutation handlers
// call this after every applied delta.
// The scan is bounded by the cache capacity and compares the parsed
// session/epoch fields carried on each entry — no key parsing.
func (c *Cache) PruneStale(sessionID, currentEpoch uint64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for key, el := range c.items {
		e := el.Value.(*cacheEntry)
		if e.session != sessionID || e.epoch >= currentEpoch {
			continue
		}
		c.ll.Remove(el)
		delete(c.items, key)
		n++
	}
	return n
}

// DeleteSession drops every entry belonging to the session with the
// given ID, returning how many were removed.
func (c *Cache) DeleteSession(sessionID uint64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for key, el := range c.items {
		if el.Value.(*cacheEntry).session == sessionID {
			c.ll.Remove(el)
			delete(c.items, key)
			n++
		}
	}
	return n
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Entries  int    `json:"entries"`
	Capacity int    `json:"capacity"`
}

// Stats snapshots hit/miss counters and occupancy.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: c.ll.Len(), Capacity: c.cap}
}
