package server

import (
	"container/list"
	"strconv"
	"strings"
	"sync"
)

// Cache is a mutex-guarded LRU answer cache. Keys embed the owning
// session's process-unique ID and database epoch (see answerKey), so a
// fact write — which bumps the epoch — implicitly invalidates every
// cached answer for that session: post-write lookups construct keys the
// cache has never seen, and the stale entries age out of the LRU. Keying
// by ID rather than name means a session deleted and recreated under the
// same name (whose epoch restarts at zero) can never hit the earlier
// incarnation's entries. Deleting a session purges its entries eagerly
// via DeleteSession.
//
// A Cache with capacity 0 is valid and caches nothing.
type Cache struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List               // front = most recently used
	items  map[string]*list.Element // key → element whose Value is *cacheEntry
	hits   uint64
	misses uint64
}

type cacheEntry struct {
	key string
	val any
}

// NewCache returns an LRU cache bounded to capacity entries.
func NewCache(capacity int) *Cache {
	if capacity < 0 {
		capacity = 0
	}
	return &Cache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// keySep separates the key components; none of them can contain it
// (IDs and epochs render as digits, kinds are fixed literals, and the
// normalized query text cannot contain a NUL).
const keySep = "\x00"

// answerKey builds a cache key scoped to a session (by process-unique
// ID) at a database epoch. kind distinguishes endpoint result types
// ("answer", "select", …) and norm is the normalized query text.
func answerKey(sessionID, epoch uint64, kind, norm string) string {
	var b strings.Builder
	b.Grow(len(kind) + len(norm) + 44)
	b.WriteString(strconv.FormatUint(sessionID, 10))
	b.WriteString(keySep)
	b.WriteString(strconv.FormatUint(epoch, 10))
	b.WriteString(keySep)
	b.WriteString(kind)
	b.WriteString(keySep)
	b.WriteString(norm)
	return b.String()
}

// Get returns the cached value for key, marking it most recently used.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).val, true
	}
	c.misses++
	return nil, false
}

// Put inserts or refreshes key, evicting the least recently used entry
// when over capacity.
func (c *Cache) Put(key string, val any) {
	if c.cap == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// DeleteSession drops every entry belonging to the session with the
// given ID, returning how many were removed.
func (c *Cache) DeleteSession(sessionID uint64) int {
	prefix := strconv.FormatUint(sessionID, 10) + keySep
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for key, el := range c.items {
		if strings.HasPrefix(key, prefix) {
			c.ll.Remove(el)
			delete(c.items, key)
			n++
		}
	}
	return n
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Entries  int    `json:"entries"`
	Capacity int    `json:"capacity"`
}

// Stats snapshots hit/miss counters and occupancy.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: c.ll.Len(), Capacity: c.cap}
}
