package server

import (
	"fmt"
	"sync"
)

// flightGroup collapses concurrent computations of the same answer-cache
// key into one (cache-stampede protection): when N identical queries
// land on one snapshot at once — the LRU cache is cold for that key
// until the first of them finishes — the first caller computes and the
// other N−1 wait for its result instead of redundantly evaluating the
// same query N times. Keys are the answerKey strings, so "identical"
// already means same session incarnation, same epoch, same normalized
// query.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{} // closed when val/err are final
	val  any
	err  error
}

// do returns fn's result for key, running fn at most once across all
// concurrent callers with that key. shared reports that the result was
// computed by another in-flight caller. Errors are shared too: the
// followers were about to run the identical computation, so they would
// have failed identically. The key is forgotten once the call finishes —
// later callers recompute (normally they instead hit the LRU cache the
// leader populated).
func (g *flightGroup) do(key string, fn func() (any, error)) (v any, shared bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, true, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	completed := false
	defer func() {
		if !completed {
			// fn panicked: the panic propagates to the leader (and the
			// server's recovery middleware), but waiters must neither
			// hang nor observe a zero value as a genuine answer.
			c.err = fmt.Errorf("server: in-flight computation aborted")
		}
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(c.done)
	}()
	c.val, c.err = fn()
	completed = true
	return c.val, false, c.err
}
