package server

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	// "b" is now least recently used; inserting "c" evicts it.
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Errorf("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Errorf("a evicted despite recent use")
	}
	if _, ok := c.Get("c"); !ok {
		t.Errorf("c missing")
	}
	st := c.Stats()
	if st.Entries != 2 || st.Capacity != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.Hits != 3 || st.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 3/1", st.Hits, st.Misses)
	}
}

func TestCachePutRefreshes(t *testing.T) {
	c := NewCache(2)
	c.Put("k", "old")
	c.Put("k", "new")
	if v, _ := c.Get("k"); v != "new" {
		t.Errorf("Get(k) = %v, want new", v)
	}
	if n := c.Stats().Entries; n != 1 {
		t.Errorf("entries = %d, want 1 (refresh, not duplicate)", n)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(0)
	c.Put("k", 1)
	if _, ok := c.Get("k"); ok {
		t.Errorf("disabled cache stored an entry")
	}
}

func TestCacheDeleteSession(t *testing.T) {
	c := NewCache(16)
	c.Put(answerKey(11, 1, "answer", "? p(a)."), 1)
	c.Put(answerKey(11, 2, "select", "? p(X)."), 2)
	c.Put(answerKey(2, 1, "answer", "? p(a)."), 3)
	// A session whose rendered ID prefixes another (1 vs 11) must not
	// purge its neighbor.
	c.Put(answerKey(1, 1, "answer", "? p(a)."), 4)
	if n := c.DeleteSession(11); n != 2 {
		t.Errorf("DeleteSession(11) = %d, want 2", n)
	}
	if _, ok := c.Get(answerKey(2, 1, "answer", "? p(a).")); !ok {
		t.Errorf("session 2 entry purged")
	}
	if _, ok := c.Get(answerKey(1, 1, "answer", "? p(a).")); !ok {
		t.Errorf("prefix-ID session 1 purged by DeleteSession(11)")
	}
	if n := c.Stats().Entries; n != 2 {
		t.Errorf("entries = %d, want 2", n)
	}
}

func TestCacheKeySeparation(t *testing.T) {
	// Distinct (session, epoch, kind, query) must never collide, even
	// when digits could regroup across the ID/epoch boundary.
	keys := map[string]bool{
		answerKey(1, 1, "answer", "? p(a)."):  true,
		answerKey(1, 2, "answer", "? p(a)."):  true,
		answerKey(1, 1, "select", "? p(a)."):  true,
		answerKey(1, 1, "answer", "? p(b)."):  true,
		answerKey(2, 1, "answer", "? p(a)."):  true,
		answerKey(1, 12, "answer", "? p(a)."): true,
		answerKey(11, 2, "answer", "? p(a)."): true,
	}
	if len(keys) != 7 {
		t.Errorf("key collision: only %d distinct keys", len(keys))
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%32)
				c.Put(key, i)
				c.Get(key)
				if i%50 == 0 {
					c.DeleteSession(uint64(g)) // prefix churn
					c.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
}
