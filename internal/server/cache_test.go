package server

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("a", 0, 0, 1)
	c.Put("b", 0, 0, 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	// "b" is now least recently used; inserting "c" evicts it.
	c.Put("c", 0, 0, 3)
	if _, ok := c.Get("b"); ok {
		t.Errorf("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Errorf("a evicted despite recent use")
	}
	if _, ok := c.Get("c"); !ok {
		t.Errorf("c missing")
	}
	st := c.Stats()
	if st.Entries != 2 || st.Capacity != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.Hits != 3 || st.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 3/1", st.Hits, st.Misses)
	}
}

func TestCachePutRefreshes(t *testing.T) {
	c := NewCache(2)
	c.Put("k", 0, 0, "old")
	c.Put("k", 0, 0, "new")
	if v, _ := c.Get("k"); v != "new" {
		t.Errorf("Get(k) = %v, want new", v)
	}
	if n := c.Stats().Entries; n != 1 {
		t.Errorf("entries = %d, want 1 (refresh, not duplicate)", n)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(0)
	c.Put("k", 0, 0, 1)
	if _, ok := c.Get("k"); ok {
		t.Errorf("disabled cache stored an entry")
	}
}

func TestCacheDeleteSession(t *testing.T) {
	c := NewCache(16)
	c.Put(answerKey(11, 1, "answer", "? p(a)."), 11, 1, 1)
	c.Put(answerKey(11, 2, "select", "? p(X)."), 11, 2, 2)
	c.Put(answerKey(2, 1, "answer", "? p(a)."), 2, 1, 3)
	// A session whose rendered ID prefixes another (1 vs 11) must not
	// purge its neighbor.
	c.Put(answerKey(1, 1, "answer", "? p(a)."), 1, 1, 4)
	if n := c.DeleteSession(11); n != 2 {
		t.Errorf("DeleteSession(11) = %d, want 2", n)
	}
	if _, ok := c.Get(answerKey(2, 1, "answer", "? p(a).")); !ok {
		t.Errorf("session 2 entry purged")
	}
	if _, ok := c.Get(answerKey(1, 1, "answer", "? p(a).")); !ok {
		t.Errorf("prefix-ID session 1 purged by DeleteSession(11)")
	}
	if n := c.Stats().Entries; n != 2 {
		t.Errorf("entries = %d, want 2", n)
	}
}

func TestCacheKeySeparation(t *testing.T) {
	// Distinct (session, epoch, kind, query) must never collide, even
	// when digits could regroup across the ID/epoch boundary.
	keys := map[string]bool{
		answerKey(1, 1, "answer", "? p(a)."):  true,
		answerKey(1, 2, "answer", "? p(a)."):  true,
		answerKey(1, 1, "select", "? p(a)."):  true,
		answerKey(1, 1, "answer", "? p(b)."):  true,
		answerKey(2, 1, "answer", "? p(a)."):  true,
		answerKey(1, 12, "answer", "? p(a)."): true,
		answerKey(11, 2, "answer", "? p(a)."): true,
	}
	if len(keys) != 7 {
		t.Errorf("key collision: only %d distinct keys", len(keys))
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%32)
				c.Put(key, uint64(g), 1, i)
				c.Get(key)
				if i%50 == 0 {
					c.DeleteSession(uint64(g)) // prefix churn
					c.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestCachePruneStale(t *testing.T) {
	c := NewCache(16)
	// Session 1 entries at epochs 0 and 1; session 2 entry at epoch 0.
	c.Put(answerKey(1, 0, "answer", "? p(a)."), 1, 0, "v0")
	c.Put(answerKey(1, 0, "select", "? p(X)."), 1, 0, "v1")
	c.Put(answerKey(1, 1, "answer", "? p(a)."), 1, 1, "v2")
	c.Put(answerKey(2, 0, "answer", "? q(a)."), 2, 0, "v3")

	if n := c.PruneStale(1, 1); n != 2 {
		t.Errorf("PruneStale removed %d entries, want 2", n)
	}
	if _, ok := c.Get(answerKey(1, 0, "answer", "? p(a).")); ok {
		t.Error("stale epoch-0 entry survived")
	}
	if _, ok := c.Get(answerKey(1, 1, "answer", "? p(a).")); !ok {
		t.Error("current-epoch entry pruned")
	}
	if _, ok := c.Get(answerKey(2, 0, "answer", "? q(a).")); !ok {
		t.Error("other session's entry pruned")
	}
	// Idempotent and bounded to the session.
	if n := c.PruneStale(1, 1); n != 0 {
		t.Errorf("second prune removed %d entries, want 0", n)
	}
	if n := c.PruneStale(99, 100); n != 0 {
		t.Errorf("unknown session prune removed %d entries, want 0", n)
	}
}
