package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync/atomic"
)

// limiter bounds in-flight requests with a counting semaphore. Requests
// beyond the bound wait until a slot frees or the client gives up (context
// cancellation), so a burst degrades to queueing rather than unbounded
// engine concurrency.
type limiter struct {
	slots    chan struct{} // nil = unlimited
	inFlight atomic.Int64
}

func newLimiter(max int) *limiter {
	l := &limiter{}
	if max > 0 {
		l.slots = make(chan struct{}, max)
	}
	return l
}

func (l *limiter) wrap(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if l.slots != nil {
			select {
			case l.slots <- struct{}{}:
				defer func() { <-l.slots }()
			case <-r.Context().Done():
				writeError(w, http.StatusServiceUnavailable, fmt.Errorf("server busy: %w", r.Context().Err()))
				return
			}
		}
		l.inFlight.Add(1)
		defer l.inFlight.Add(-1)
		h.ServeHTTP(w, r)
	})
}

// recoverPanics converts a handler panic into a 500 instead of killing the
// connection, and logs it.
func recoverPanics(logger *log.Logger, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				if logger != nil {
					logger.Printf("panic serving %s %s: %v", r.Method, r.URL.Path, v)
				}
				writeError(w, http.StatusInternalServerError, fmt.Errorf("internal error"))
			}
		}()
		h.ServeHTTP(w, r)
	})
}

// writeJSON writes v as a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // nothing to do about a broken connection
}

// writeError writes the uniform JSON error body.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// readJSON decodes the request body into v, bounded to maxBytes, and
// rejects trailing garbage and unknown fields (catching typo'd keys that
// would otherwise silently select defaults).
func readJSON(w http.ResponseWriter, r *http.Request, v any, maxBytes int64) error {
	body := http.MaxBytesReader(w, r.Body, maxBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit)
		}
		return fmt.Errorf("invalid JSON body: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("invalid JSON body: trailing data")
	}
	_, _ = io.Copy(io.Discard, body)
	return nil
}

// statusFor maps registry and validation errors to HTTP status codes.
func statusFor(err error) int {
	var exists *ErrSessionExists
	var missing *ErrNoSession
	var full *ErrTooManySessions
	switch {
	case errors.As(err, &missing):
		return http.StatusNotFound
	case errors.As(err, &exists):
		return http.StatusConflict
	case errors.As(err, &full):
		return http.StatusTooManyRequests
	default:
		return http.StatusBadRequest
	}
}
