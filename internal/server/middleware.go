package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	wfs "repro"
)

// limiter bounds in-flight requests with a counting semaphore. Requests
// beyond the bound queue for a bounded wait (maxWait), after which they
// are rejected with 429 — unbounded queueing just trades engine overload
// for goroutine/memory overload while every waiter's client times out
// anyway. A client that gives up first (context cancellation) gets 503.
// Saturation is observable: in-flight and queued-waiter gauges plus
// rejection counters, surfaced in /v1/stats and /metrics.
type limiter struct {
	slots   chan struct{} // nil = unlimited
	maxWait time.Duration // 0 = wait unbounded (legacy behavior)

	inFlight atomic.Int64
	waiting  atomic.Int64 // requests queued for a slot right now
	timeouts atomic.Int64 // rejected 429 after maxWait
	canceled atomic.Int64 // client gave up while queued (503)

	// holdNS is an exponentially-weighted moving average of how long a
	// request holds its slot, in nanoseconds, fed on every release. It
	// drives the Retry-After estimate on 429s: how long until a slot
	// actually frees, instead of a hardcoded guess.
	holdNS atomic.Int64
}

func newLimiter(max int, maxWait time.Duration) *limiter {
	l := &limiter{maxWait: maxWait}
	if max > 0 {
		l.slots = make(chan struct{}, max)
	}
	return l
}

func (l *limiter) wrap(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if l.slots != nil {
			select {
			case l.slots <- struct{}{}: // uncontended fast path
			default:
				if !l.awaitSlot(w, r) {
					return
				}
			}
			start := time.Now()
			defer func() {
				l.observeHold(time.Since(start))
				<-l.slots
			}()
		}
		l.inFlight.Add(1)
		defer l.inFlight.Add(-1)
		h.ServeHTTP(w, r)
	})
}

// observeHold folds one slot-hold duration into the drain-rate EWMA
// (α = 1/8: smooth enough to ride out one slow outlier, fresh enough to
// track a load shift within a dozen requests). The load–store race
// between concurrent releases can only drop an update, never corrupt
// the value — fine for an estimate.
func (l *limiter) observeHold(d time.Duration) {
	old := l.holdNS.Load()
	if old == 0 {
		l.holdNS.Store(int64(d))
		return
	}
	l.holdNS.Store(old + (int64(d)-old)/8)
}

// retryAfterSeconds estimates when a rejected client should come back:
// every queued request ahead of it plus its own must wait for slots to
// drain at the observed per-slot hold time. Before any request has
// completed there is no observation, so fall back to the configured
// queue bound (the server just declared it could not free a slot within
// maxWait — "retry in 1s" would be a lie). Clamped to [1s, 60s].
func (l *limiter) retryAfterSeconds() int {
	hold := time.Duration(l.holdNS.Load())
	est := l.maxWait
	if hold > 0 {
		slots := int64(cap(l.slots))
		est = hold * time.Duration(l.waiting.Load()/slots+1)
	}
	secs := int(math.Ceil(est.Seconds()))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// awaitSlot queues for a semaphore slot, reporting whether one was
// acquired; on timeout or client cancellation the rejection response has
// already been written.
func (l *limiter) awaitSlot(w http.ResponseWriter, r *http.Request) bool {
	l.waiting.Add(1)
	defer l.waiting.Add(-1)
	var timeout <-chan time.Time
	if l.maxWait > 0 {
		t := time.NewTimer(l.maxWait)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case l.slots <- struct{}{}:
		return true
	case <-timeout:
		l.timeouts.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(l.retryAfterSeconds()))
		writeError(w, r, http.StatusTooManyRequests,
			fmt.Errorf("server busy: no capacity within %v", l.maxWait))
		return false
	case <-r.Context().Done():
		l.canceled.Add(1)
		writeError(w, r, http.StatusServiceUnavailable, fmt.Errorf("server busy: %w", r.Context().Err()))
		return false
	}
}

// recoverPanics converts a handler panic into a 500 instead of killing the
// connection, and logs it.
func recoverPanics(logger *log.Logger, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				if logger != nil {
					logger.Printf("panic serving %s %s trace_id=%s: %v",
						r.Method, r.URL.Path, requestTrace(r).TraceID(), v)
				}
				writeError(w, r, http.StatusInternalServerError, fmt.Errorf("internal error"))
			}
		}()
		h.ServeHTTP(w, r)
	})
}

// writeJSON writes v as a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // nothing to do about a broken connection
}

// writeError writes the uniform JSON error body — stamped with the
// request's trace_id so the caller can quote it when reporting the
// failure — attaching structured diagnostics when the failure is a
// static-analysis rejection. The error is also noted on the request's
// trace holder for the flight recorder.
func writeError(w http.ResponseWriter, r *http.Request, status int, err error) {
	resp := ErrorResponse{Error: err.Error()}
	if ht := requestTrace(r); ht != nil {
		resp.TraceID = ht.TraceID()
		ht.setError(err.Error())
	}
	var diag *ErrProgramDiagnostics
	if errors.As(err, &diag) {
		resp.Diagnostics = diag.Diagnostics
	}
	var budget *wfs.ErrBudgetExceeded
	if errors.As(err, &budget) {
		resp.Budget = &BudgetInfo{Atoms: budget.Atoms, Limit: budget.Limit}
	}
	writeJSON(w, status, resp)
}

// readJSON decodes the request body into v, bounded to maxBytes, and
// rejects trailing garbage and unknown fields (catching typo'd keys that
// would otherwise silently select defaults).
func readJSON(w http.ResponseWriter, r *http.Request, v any, maxBytes int64) error {
	body := http.MaxBytesReader(w, r.Body, maxBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit)
		}
		return fmt.Errorf("invalid JSON body: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("invalid JSON body: trailing data")
	}
	_, _ = io.Copy(io.Discard, body)
	return nil
}

// statusFor maps registry and validation errors to HTTP status codes.
func statusFor(err error) int {
	var exists *ErrSessionExists
	var missing *ErrNoSession
	var full *ErrTooManySessions
	switch {
	case errors.As(err, &missing):
		return http.StatusNotFound
	case errors.As(err, &exists):
		return http.StatusConflict
	case errors.As(err, &full):
		return http.StatusTooManyRequests
	default:
		return http.StatusBadRequest
	}
}

// isCancelErr reports a cancellation-class evaluation error: the
// engine's cooperative cancellation surfaces the context cause
// (DeadlineExceeded for a blown deadline, Canceled for a disconnect).
func isCancelErr(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

// queryStatus maps a query-evaluation error to its HTTP status, bumping
// the governance counters: a blown server-side deadline is 504 (the
// gateway to the engine timed out, the request was well-formed), a
// client that hung up mid-evaluation is 503 (nothing useful can be
// written, but the status labels the access log and metrics), and an
// exceeded atom budget is 422 (the query was understood but this
// program/limit combination cannot answer it exactly — a structured
// budget block rides along in the body). Everything else stays 400.
func (s *Server) queryStatus(err error) int {
	var budget *wfs.ErrBudgetExceeded
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.queryTimeouts.Add(1)
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		s.queryCancels.Add(1)
		return http.StatusServiceUnavailable
	case errors.As(err, &budget):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusBadRequest
	}
}

// mutationStatus maps a facts/retract failure: a WAL that cannot accept
// the append (failing disk or open read-only breaker) is 503 — the
// request was valid, the service degraded, retry later — as is a client
// that disconnected before commit; validation failures stay 400.
func mutationStatus(err error) int {
	var walErr *ErrWALUnavailable
	if errors.As(err, &walErr) || isCancelErr(err) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}
