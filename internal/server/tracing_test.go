package server

import (
	"bytes"
	"encoding/json"
	"log"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/wal"
)

var hexTraceID = regexp.MustCompile(`^[0-9a-f]{32}$`)

// doHdr issues a JSON request with extra headers and returns the response
// (body consumed into out when non-nil).
func (c *testClient) doHdr(method, path string, hdr map[string]string, body, out any) *http.Response {
	c.t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			c.t.Fatalf("marshal request: %v", err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, c.srv.URL+path, rd)
	if err != nil {
		c.t.Fatalf("new request: %v", err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := c.srv.Client().Do(req)
	if err != nil {
		c.t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			c.t.Fatalf("%s %s: decode: %v", method, path, err)
		}
	}
	return resp
}

// TestTraceparentContinuation: a well-formed incoming traceparent is
// continued — same trace ID on the response headers, a fresh span ID —
// and the identity is stamped on the error body too.
func TestTraceparentContinuation(t *testing.T) {
	c := newTestClient(t, Config{})
	const upstream = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"

	resp := c.doHdr("GET", "/v1/healthz", map[string]string{"traceparent": upstream}, nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("X-Trace-Id = %q, want the upstream trace ID", got)
	}
	tp := resp.Header.Get("Traceparent")
	tc, ok := trace.ParseTraceparent(tp)
	if !ok {
		t.Fatalf("response Traceparent %q does not parse", tp)
	}
	if tc.TraceIDString() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("response trace ID = %s, want continuation", tc.TraceIDString())
	}
	if tc.SpanIDString() == "00f067aa0ba902b7" {
		t.Errorf("response span ID equals the upstream span ID; want a fresh one")
	}
}

// TestMalformedTraceparentNever500: malformed headers mint a fresh
// identity and the request succeeds — a bad header is never an error.
func TestMalformedTraceparentNever500(t *testing.T) {
	c := newTestClient(t, Config{})
	for _, h := range []string{
		"",
		"garbage",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7", // missing flags
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace ID
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", // uppercase
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // forbidden version
	} {
		resp := c.doHdr("GET", "/v1/healthz", map[string]string{"traceparent": h}, nil, nil)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("traceparent %q: status %d, want 200", h, resp.StatusCode)
		}
		id := resp.Header.Get("X-Trace-Id")
		if !hexTraceID.MatchString(id) || id == "00000000000000000000000000000000" {
			t.Errorf("traceparent %q: fresh trace ID %q invalid", h, id)
		}
		if id == "4bf92f3577b34da6a3ce929d0e0e4736" {
			t.Errorf("traceparent %q: malformed header was continued", h)
		}
	}
}

// TestErrorBodyCarriesTraceID: the uniform error body cites the same
// trace_id the response headers carry.
func TestErrorBodyCarriesTraceID(t *testing.T) {
	c := newTestClient(t, Config{})
	var er ErrorResponse
	resp := c.doHdr("GET", "/v1/sessions/nope", nil, nil, &er)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	if er.TraceID == "" || er.TraceID != resp.Header.Get("X-Trace-Id") {
		t.Errorf("error body trace_id %q != header %q", er.TraceID, resp.Header.Get("X-Trace-Id"))
	}
}

// TestTraceRecorderEndpoints: a ?trace=1 query is pinned in the flight
// recorder; the index lists it and /v1/traces/{id} returns the full
// span tree with the detailed evaluation under the request root.
func TestTraceRecorderEndpoints(t *testing.T) {
	c := newTestClient(t, Config{})
	c.mustCreate("w", winMove)

	var qr QueryResponse
	if code := c.do("POST", "/v1/sessions/w/query?trace=1", QueryRequest{Query: "? win(b)."}, &qr); code != 200 {
		t.Fatalf("traced query: status %d", code)
	}
	if qr.Trace == nil {
		t.Fatal("traced query returned no trace")
	}
	if !hexTraceID.MatchString(qr.TraceID) {
		t.Fatalf("traced query trace_id %q invalid", qr.TraceID)
	}

	var idx TraceIndexResponse
	if code := c.do("GET", "/v1/traces", nil, &idx); code != 200 {
		t.Fatalf("trace index: status %d", code)
	}
	if idx.Capacity == 0 || idx.Entries == 0 {
		t.Fatalf("trace index = %+v, want non-empty recorder", idx)
	}
	found := false
	for _, s := range idx.Traces {
		if s.TraceID == qr.TraceID {
			found = true
			if s.Kept != trace.KeptPinned {
				t.Errorf("traced query kept=%q, want %q", s.Kept, trace.KeptPinned)
			}
			if s.Session != "w" {
				t.Errorf("traced query session=%q, want w", s.Session)
			}
		}
	}
	if !found {
		t.Fatalf("trace %s not in index %+v", qr.TraceID, idx.Traces)
	}

	var rt trace.RequestTrace
	if code := c.do("GET", "/v1/traces/"+qr.TraceID, nil, &rt); code != 200 {
		t.Fatalf("trace get: status %d", code)
	}
	if rt.Trace == nil || rt.Trace.Find("query") == nil {
		t.Errorf("recorded trace has no query span: %+v", rt.Trace)
	}
	if code := c.do("GET", "/v1/traces/ffffffffffffffffffffffffffffffff", nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown trace: status %d, want 404", code)
	}
}

// TestTraceEndpointsDisabled: TraceBufferSize < 0 turns the recorder
// off — /v1/traces 404s, but trace identities and ?trace=1 keep working.
func TestTraceEndpointsDisabled(t *testing.T) {
	c := newTestClient(t, Config{TraceBufferSize: -1})
	c.mustCreate("w", winMove)
	if code := c.do("GET", "/v1/traces", nil, nil); code != http.StatusNotFound {
		t.Errorf("trace index with recorder disabled: status %d, want 404", code)
	}
	var qr QueryResponse
	if code := c.do("POST", "/v1/sessions/w/query?trace=1", QueryRequest{Query: "? win(b)."}, &qr); code != 200 || qr.Trace == nil {
		t.Errorf("?trace=1 with recorder disabled: status %d trace %v, want inline trace", code, qr.Trace)
	}
	resp := c.doHdr("GET", "/v1/healthz", nil, nil, nil)
	if id := resp.Header.Get("X-Trace-Id"); !hexTraceID.MatchString(id) {
		t.Errorf("trace identity missing with recorder disabled: %q", id)
	}
}

// TestMutationTraceStitchesWALAndRebase is the acceptance flow: a
// mutation request against a durable server yields, via
// GET /v1/traces/{id}, one stitched span tree containing the WAL
// append/fsync and the delta-rebase, under the trace ID the caller
// chose — and the access-log line carries the same trace_id.
func TestMutationTraceStitchesWALAndRebase(t *testing.T) {
	buf := &syncBuf{}
	s := New(Config{AccessLogger: log.New(buf, "", 0)})
	if _, err := s.OpenWAL(t.TempDir(), wal.Options{Fsync: true}); err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	c := &testClient{t: t, srv: ts}

	c.mustCreate("w", winMove)
	// Materialize the base evaluation so the mutation has rebase sources.
	if code := c.do("POST", "/v1/sessions/w/query", QueryRequest{Query: "? win(b)."}, nil); code != 200 {
		t.Fatalf("warm query: status %d", code)
	}

	const upstream = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	const wantID = "4bf92f3577b34da6a3ce929d0e0e4736"
	resp := c.doHdr("POST", "/v1/sessions/w/facts", map[string]string{"traceparent": upstream},
		AddFactsRequest{Facts: []Fact{{Pred: "move", Args: []string{"c", "d"}}}}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutation: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != wantID {
		t.Fatalf("mutation trace ID %q, want %q", got, wantID)
	}

	var rt trace.RequestTrace
	if code := c.do("GET", "/v1/traces/"+wantID, nil, &rt); code != 200 {
		t.Fatalf("trace get: status %d", code)
	}
	if rt.Trace == nil {
		t.Fatal("mutation trace has no span tree")
	}
	for _, span := range []string{"apply", "wal-append", "wal-fsync", "delta-rebase"} {
		if rt.Trace.Find(span) == nil {
			t.Errorf("mutation trace missing %q span:\n%s", span, rt.Trace.Format())
		}
	}
	// The WAL spans must sit under the mutation's apply, not float free:
	// log-then-commit timing next to the rebase is the point.
	if ap := rt.Trace.Find("apply"); ap == nil || ap.Find("wal-append") == nil {
		t.Errorf("wal-append not nested under apply:\n%s", rt.Trace.Format())
	}

	got := waitContains(t, buf, "trace_id="+wantID)
	line := ""
	for _, l := range strings.Split(got, "\n") {
		if strings.Contains(l, "trace_id="+wantID) {
			line = l
		}
	}
	if !strings.Contains(line, "/v1/sessions/{name}/facts") || !strings.Contains(line, `session="w"`) {
		t.Errorf("access-log line %q lacks route/session", line)
	}

	// The startup-recovery trace of a later process is pinned too.
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestStartupRecoveryTracePinned: recovering a durable directory at
// startup records a pinned internal trace with the replay span tree.
func TestStartupRecoveryTracePinned(t *testing.T) {
	dir := t.TempDir()
	c1, _, _ := newDurableClient(t, dir, wal.Options{})
	c1.mustCreate("w", winMove)
	c1.mustAddFact("w", "move", "c", "d") // leave a record to replay

	c2, s2, st := newDurableClient(t, dir, wal.Options{})
	if st.Sessions != 1 {
		t.Fatalf("recovered %d sessions, want 1", st.Sessions)
	}
	defer s2.Close()
	var idx TraceIndexResponse
	if code := c2.do("GET", "/v1/traces", nil, &idx); code != 200 {
		t.Fatalf("trace index: status %d", code)
	}
	var rec *TraceSummary
	for i := range idx.Traces {
		if idx.Traces[i].Route == "internal/startup-recovery" {
			rec = &idx.Traces[i]
		}
	}
	if rec == nil {
		t.Fatalf("no startup-recovery trace in %+v", idx.Traces)
	}
	if rec.Kept != trace.KeptPinned {
		t.Errorf("startup-recovery kept=%q, want pinned", rec.Kept)
	}
	var rt trace.RequestTrace
	if code := c2.do("GET", "/v1/traces/"+rec.TraceID, nil, &rt); code != 200 {
		t.Fatalf("trace get: status %d", code)
	}
	if rt.Trace == nil || rt.Trace.Find("recover-session") == nil || rt.Trace.Find("replay") == nil {
		t.Errorf("recovery trace missing recover-session/replay spans:\n%s", rt.Trace.Format())
	}
}

// TestSlowQueryTraceRetained: a slow-query breach is logged with its
// trace_id and the trace survives in the recorder as slow-class.
func TestSlowQueryTraceRetained(t *testing.T) {
	buf := &syncBuf{}
	c := newTestClient(t, Config{
		SlowQueryThreshold: 1, // nanosecond: everything uncached breaches
		Logger:             log.New(buf, "", 0),
	})
	c.mustCreate("w", winMove)
	if code := c.do("POST", "/v1/sessions/w/query", QueryRequest{Query: "? win(b)."}, nil); code != 200 {
		t.Fatalf("query: status %d", code)
	}
	got := waitContains(t, buf, "slow-query trace_id=")
	m := regexp.MustCompile(`slow-query trace_id=([0-9a-f]{32})`).FindStringSubmatch(got)
	if m == nil {
		t.Fatalf("slow-query line has no trace_id: %q", got)
	}
	var rt trace.RequestTrace
	if code := c.do("GET", "/v1/traces/"+m[1], nil, &rt); code != 200 {
		t.Fatalf("slow trace %s not retrievable: status %d", m[1], code)
	}
	if rt.Kept != trace.KeptSlow {
		t.Errorf("slow query kept=%q, want slow", rt.Kept)
	}
	if rt.Trace == nil || rt.Trace.Find("query") == nil {
		t.Errorf("slow trace has no query span:\n%s", rt.Trace.Format())
	}
}

// promNameRE matches metric and label identifiers.
var promNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// parsePromLine validates one sample line of the text exposition format
// 0.0.4: name, optional {label="value",...} with escape handling, and a
// float value (possibly +Inf/NaN). Returns the metric name.
func parsePromLine(t *testing.T, line string) string {
	t.Helper()
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		t.Fatalf("sample line %q has no value", line)
	}
	name := line[:i]
	if !promNameRE.MatchString(name) {
		t.Fatalf("invalid metric name %q in %q", name, line)
	}
	rest := line[i:]
	if rest[0] == '{' {
		// Scan label pairs respecting quoted values (which may contain
		// '{', '}', and escaped quotes — route labels do).
		j := 1
		for {
			k := j
			for k < len(rest) && rest[k] != '=' {
				k++
			}
			if k >= len(rest) || !promNameRE.MatchString(rest[j:k]) {
				t.Fatalf("bad label name in %q", line)
			}
			if k+1 >= len(rest) || rest[k+1] != '"' {
				t.Fatalf("unquoted label value in %q", line)
			}
			j = k + 2
			for j < len(rest) && rest[j] != '"' {
				if rest[j] == '\\' {
					j++
				}
				j++
			}
			if j >= len(rest) {
				t.Fatalf("unterminated label value in %q", line)
			}
			j++
			if j < len(rest) && rest[j] == ',' {
				j++
				continue
			}
			break
		}
		if j >= len(rest) || rest[j] != '}' {
			t.Fatalf("unterminated label set in %q", line)
		}
		rest = rest[j+1:]
	}
	if len(rest) == 0 || rest[0] != ' ' {
		t.Fatalf("no space before value in %q", line)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		t.Fatalf("sample line %q has %d value fields, want value [timestamp]", line, len(fields))
	}
	if _, err := strconv.ParseFloat(fields[0], 64); err != nil {
		t.Fatalf("sample line %q: value %q: %v", line, fields[0], err)
	}
	return name
}

// TestMetricsPrometheusFormat drives traffic (so per-route, WAL, trace,
// session, and runtime families all emit) and then validates every line
// of GET /metrics as Prometheus text exposition format 0.0.4.
func TestMetricsPrometheusFormat(t *testing.T) {
	buf := &syncBuf{}
	s := New(Config{Logger: log.New(buf, "", 0)})
	if _, err := s.OpenWAL(t.TempDir(), wal.Options{}); err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	defer s.Close()
	c := &testClient{t: t, srv: ts}
	c.mustCreate("w", winMove)
	c.do("POST", "/v1/sessions/w/query", QueryRequest{Query: "? win(b)."}, nil)
	c.mustAddFact("w", "move", "c", "d")
	c.do("GET", "/v1/sessions/nope", nil, nil) // a 404 for status variety

	resp := c.doHdr("GET", "/metrics", nil, nil, nil)
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want text 0.0.4", ct)
	}
	req, _ := http.NewRequest("GET", c.srv.URL+"/metrics", nil)
	r2, err := c.srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	var body bytes.Buffer
	if _, err := body.ReadFrom(r2.Body); err != nil {
		t.Fatal(err)
	}

	typed := map[string]string{} // family -> TYPE
	seen := map[string]bool{}    // sample names observed
	for ln, line := range strings.Split(body.String(), "\n") {
		switch {
		case line == "":
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || !promNameRE.MatchString(parts[0]) {
				t.Fatalf("line %d: bad HELP %q", ln+1, line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 || !promNameRE.MatchString(parts[0]) {
				t.Fatalf("line %d: bad TYPE %q", ln+1, line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown metric type %q", ln+1, parts[1])
			}
			if _, dup := typed[parts[0]]; dup {
				t.Fatalf("line %d: duplicate TYPE for %q", ln+1, parts[0])
			}
			typed[parts[0]] = parts[1]
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: malformed comment %q", ln+1, line)
		default:
			seen[parsePromLine(t, line)] = true
		}
	}
	// Every sample must belong to a declared family (histogram samples
	// use the _bucket/_sum/_count suffixes of their family name).
	for name := range seen {
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if trimmed := strings.TrimSuffix(name, suf); trimmed != name && typed[trimmed] == "histogram" {
				base = trimmed
			}
		}
		if _, ok := typed[base]; !ok {
			t.Errorf("sample %q has no TYPE declaration", name)
		}
	}
	for _, want := range []string{
		"wfsd_http_requests_total", "go_goroutines", "go_gc_pause_seconds",
		"wfsd_trace_entries", "wfsd_trace_recorded_total",
		"wfsd_wal_appended_records_total", "wfsd_session_facts",
	} {
		if _, ok := typed[want]; !ok {
			t.Errorf("metrics output missing family %q", want)
		}
	}
}
