package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// testClient wraps an httptest server with JSON request helpers.
type testClient struct {
	t   *testing.T
	srv *httptest.Server
}

func newTestClient(t *testing.T, cfg Config) *testClient {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return &testClient{t: t, srv: ts}
}

// do issues a JSON request and decodes the response body into out (unless
// nil), returning the status code.
func (c *testClient) do(method, path string, body, out any) int {
	c.t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			c.t.Fatalf("marshal request: %v", err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.srv.URL+path, rd)
	if err != nil {
		c.t.Fatalf("new request: %v", err)
	}
	resp, err := c.srv.Client().Do(req)
	if err != nil {
		c.t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatalf("read response: %v", err)
	}
	if out != nil && len(raw) > 0 {
		if err := json.Unmarshal(raw, out); err != nil {
			c.t.Fatalf("%s %s: decode %q: %v", method, path, raw, err)
		}
	}
	return resp.StatusCode
}

func (c *testClient) mustCreate(name, program string) {
	c.t.Helper()
	code := c.do("POST", "/v1/sessions", CreateSessionRequest{Name: name, Program: program}, nil)
	if code != http.StatusCreated {
		c.t.Fatalf("create session %q: status %d", name, code)
	}
}

const winMove = `
	move(a,b). move(b,a). move(b,c).
	move(X,Y), not win(Y) -> win(X).
`

const authorship = `
	scientist(john).
	conferencePaper(pods13).
	scientist(X) -> isAuthorOf(X, Y).
	conferencePaper(X) -> article(X).
`

func TestSessionLifecycle(t *testing.T) {
	c := newTestClient(t, Config{})

	// Empty registry.
	var list SessionListResponse
	if code := c.do("GET", "/v1/sessions", nil, &list); code != 200 || len(list.Sessions) != 0 {
		t.Fatalf("initial list: code %d, sessions %v", code, list.Sessions)
	}

	// Create, duplicate create, get, delete, get-after-delete.
	var info SessionInfo
	if code := c.do("POST", "/v1/sessions", CreateSessionRequest{Name: "w", Program: winMove}, &info); code != 201 {
		t.Fatalf("create: status %d", code)
	}
	if info.Name != "w" || info.Facts != 3 {
		t.Errorf("create info = %+v, want name w with 3 facts", info)
	}
	if code := c.do("POST", "/v1/sessions", CreateSessionRequest{Name: "w", Program: winMove}, nil); code != http.StatusConflict {
		t.Errorf("duplicate create: status %d, want 409", code)
	}
	if code := c.do("GET", "/v1/sessions/w", nil, &info); code != 200 || info.Name != "w" {
		t.Errorf("get: status %d info %+v", code, info)
	}
	if code := c.do("DELETE", "/v1/sessions/w", nil, nil); code != http.StatusNoContent {
		t.Errorf("delete: status %d, want 204", code)
	}
	if code := c.do("GET", "/v1/sessions/w", nil, nil); code != http.StatusNotFound {
		t.Errorf("get after delete: status %d, want 404", code)
	}
	if code := c.do("DELETE", "/v1/sessions/w", nil, nil); code != http.StatusNotFound {
		t.Errorf("double delete: status %d, want 404", code)
	}
}

func TestSessionLimitAndValidation(t *testing.T) {
	c := newTestClient(t, Config{MaxSessions: 1})
	if code := c.do("POST", "/v1/sessions", CreateSessionRequest{Name: "", Program: "p(a)."}, nil); code != http.StatusBadRequest {
		t.Errorf("empty name: status %d, want 400", code)
	}
	if code := c.do("POST", "/v1/sessions", CreateSessionRequest{Name: "x", Program: "p(a"}, nil); code != http.StatusBadRequest {
		t.Errorf("syntax error program: status %d, want 400", code)
	}
	// A failed compile releases its name reservation, so the slot is free.
	c.mustCreate("only", "p(a).")
	if code := c.do("POST", "/v1/sessions", CreateSessionRequest{Name: "two", Program: "q(b)."}, nil); code != http.StatusTooManyRequests {
		t.Errorf("over limit: status %d, want 429", code)
	}
}

func TestQueryEndpoints(t *testing.T) {
	c := newTestClient(t, Config{})
	c.mustCreate("w", winMove)

	// NBCQ answering: win(c) is false (c has no moves), win(b) true,
	// win(a)/win(b) cycle a-b is resolved by b->c.
	var qr QueryResponse
	if code := c.do("POST", "/v1/sessions/w/query", QueryRequest{Query: "win(b)"}, &qr); code != 200 {
		t.Fatalf("query: status %d", code)
	}
	if qr.Answer != "true" {
		t.Errorf("win(b) = %s, want true", qr.Answer)
	}
	if qr.Stats == nil || len(qr.Stats.Depths) == 0 {
		t.Errorf("query stats missing: %+v", qr.Stats)
	}
	if qr.Query != "? win(b)." {
		t.Errorf("normalized query = %q", qr.Query)
	}

	// Non-Boolean select.
	var sr SelectResponse
	if code := c.do("POST", "/v1/sessions/w/select", QueryRequest{Query: "? win(X)."}, &sr); code != 200 {
		t.Fatalf("select: status %d", code)
	}
	if len(sr.Vars) != 1 || sr.Vars[0] != "X" {
		t.Errorf("select vars = %v", sr.Vars)
	}
	want := [][]string{{"b"}}
	if fmt.Sprint(sr.Tuples) != fmt.Sprint(want) {
		t.Errorf("select tuples = %v, want %v", sr.Tuples, want)
	}

	// Ground-atom truth: the a<->b cycle without escape would be
	// undefined, but b->c (win over the dead-end c... c has no move, so
	// win(b) true via c, win(a) false? a->b with win(b) true blocks;
	// a has only move a->b). Check all three.
	for atom, want := range map[string]string{
		"win(b)": "true",
		"win(c)": "false",
	} {
		var tr TruthResponse
		if code := c.do("POST", "/v1/sessions/w/truth", QueryRequest{Atom: atom}, &tr); code != 200 {
			t.Fatalf("truth %s: status %d", atom, code)
		}
		if tr.Truth != want {
			t.Errorf("truth of %s = %s, want %s", atom, tr.Truth, want)
		}
	}

	// Explain a true atom.
	var er ExplainResponse
	if code := c.do("POST", "/v1/sessions/w/explain", QueryRequest{Atom: "move(a,b)"}, &er); code != 200 {
		t.Fatalf("explain: status %d", code)
	}
	if !er.True || er.Proof == "" {
		t.Errorf("explain move(a,b): %+v, want a proof", er)
	}

	// Error paths.
	if code := c.do("POST", "/v1/sessions/w/query", QueryRequest{}, nil); code != 400 {
		t.Errorf("missing query: status %d, want 400", code)
	}
	if code := c.do("POST", "/v1/sessions/w/query", QueryRequest{Query: "win("}, nil); code != 400 {
		t.Errorf("malformed query: status %d, want 400", code)
	}
	if code := c.do("POST", "/v1/sessions/w/truth", QueryRequest{Atom: "win(X)"}, nil); code != 400 {
		t.Errorf("non-ground truth atom: status %d, want 400", code)
	}
	if code := c.do("POST", "/v1/sessions/nope/query", QueryRequest{Query: "win(b)"}, nil); code != 404 {
		t.Errorf("unknown session: status %d, want 404", code)
	}
}

func TestFactsInvalidateCache(t *testing.T) {
	c := newTestClient(t, Config{})
	c.mustCreate("s", authorship)

	// First ask: miss; second ask: hit.
	var q1, q2 QueryResponse
	c.do("POST", "/v1/sessions/s/query", QueryRequest{Query: "article(p1)"}, &q1)
	if q1.Cached {
		t.Errorf("first query unexpectedly cached")
	}
	if q1.Answer != "false" {
		t.Errorf("article(p1) = %s, want false (p1 unknown)", q1.Answer)
	}
	// Whitespace/punctuation variants normalize to the same key.
	c.do("POST", "/v1/sessions/s/query", QueryRequest{Query: "  article( p1 ) ."}, &q2)
	if !q2.Cached {
		t.Errorf("repeat query not served from cache")
	}
	if q2.Answer != q1.Answer {
		t.Errorf("cached answer %s != original %s", q2.Answer, q1.Answer)
	}

	// Adding a fact bumps the epoch and invalidates.
	var fr AddFactsResponse
	if code := c.do("POST", "/v1/sessions/s/facts", AddFactsRequest{Facts: []Fact{{Pred: "conferencePaper", Args: []string{"p1"}}}}, &fr); code != 200 {
		t.Fatalf("add facts: status %d", code)
	}
	if fr.Added != 1 || fr.Epoch == 0 {
		t.Errorf("add facts response: %+v", fr)
	}
	var q3 QueryResponse
	c.do("POST", "/v1/sessions/s/query", QueryRequest{Query: "article(p1)"}, &q3)
	if q3.Cached {
		t.Errorf("post-write query served stale cache entry")
	}
	if q3.Answer != "true" {
		t.Errorf("article(p1) after insert = %s, want true", q3.Answer)
	}

	// The stats endpoint shows the cache traffic.
	var ss ServerStatsResponse
	c.do("GET", "/v1/stats", nil, &ss)
	if ss.Cache.Hits == 0 {
		t.Errorf("server stats show no cache hits: %+v", ss.Cache)
	}
	if ss.Sessions != 1 {
		t.Errorf("server stats sessions = %d, want 1", ss.Sessions)
	}

	// Arity mismatch on a later fact of a batch is a 400.
	if code := c.do("POST", "/v1/sessions/s/facts", AddFactsRequest{Facts: []Fact{
		{Pred: "scientist", Args: []string{"ada"}},
		{Pred: "scientist", Args: []string{"too", "many"}},
	}}, nil); code != 400 {
		t.Errorf("arity mismatch batch: status %d, want 400", code)
	}
}

func TestRecreatedSessionDoesNotInheritCache(t *testing.T) {
	c := newTestClient(t, Config{})
	c.mustCreate("s", "p(a).")
	var q1 QueryResponse
	c.do("POST", "/v1/sessions/s/query", QueryRequest{Query: "p(a)"}, &q1)
	if q1.Answer != "true" {
		t.Fatalf("p(a) = %s, want true", q1.Answer)
	}
	if code := c.do("DELETE", "/v1/sessions/s", nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: status %d", code)
	}
	// Recreate under the same name with a program where p(a) is false.
	// The new session restarts at epoch 0, which must not alias the old
	// incarnation's cache entries.
	c.mustCreate("s", "q(b).")
	var q2 QueryResponse
	c.do("POST", "/v1/sessions/s/query", QueryRequest{Query: "p(a)"}, &q2)
	if q2.Cached {
		t.Errorf("recreated session served the old incarnation's cache entry")
	}
	if q2.Answer != "false" {
		t.Errorf("p(a) in recreated session = %s, want false", q2.Answer)
	}
}

func TestSessionStats(t *testing.T) {
	c := newTestClient(t, Config{})
	c.mustCreate("s", authorship)
	// Force evaluation through a query first.
	c.do("POST", "/v1/sessions/s/query", QueryRequest{Query: "isAuthorOf(john, X)"}, nil)

	var st SessionStatsResponse
	if code := c.do("GET", "/v1/sessions/s/stats", nil, &st); code != 200 {
		t.Fatalf("session stats: status %d", code)
	}
	if st.Name != "s" || st.Facts != 2 {
		t.Errorf("stats identity: %+v", st)
	}
	if !st.Stratified {
		t.Errorf("authorship program should be stratified")
	}
	if st.Algorithm != "alternating-fixpoint" {
		t.Errorf("algorithm = %q", st.Algorithm)
	}
	if st.DeltaBound == "" || st.DeltaBits == 0 {
		t.Errorf("δ bound missing: %+v", st)
	}
	if st.Model.ChaseAtoms == 0 || st.Model.TrueAtoms == 0 {
		t.Errorf("model stats empty: %+v", st.Model)
	}
	if st.Model.MaxDepthReached <= 0 {
		t.Errorf("depth reached = %d, want > 0 (existential rule fires)", st.Model.MaxDepthReached)
	}
}

func TestSessionOptions(t *testing.T) {
	c := newTestClient(t, Config{})
	req := CreateSessionRequest{
		Name:    "r",
		Program: winMove,
		// NoCertify: win-move certifies at depth 1, which would clamp the
		// explicit Depth below; this test checks option passthrough.
		Options: &SessionOptions{Algorithm: "remainder", Depth: 4, NoCertify: true},
	}
	if code := c.do("POST", "/v1/sessions", req, nil); code != 201 {
		t.Fatalf("create with options: status %d", code)
	}
	var st SessionStatsResponse
	c.do("GET", "/v1/sessions/r/stats", nil, &st)
	if st.Algorithm != "remainder" {
		t.Errorf("algorithm = %q, want remainder", st.Algorithm)
	}
	if st.Model.Depth != 4 {
		t.Errorf("depth = %d, want 4", st.Model.Depth)
	}

	req.Name = "bad"
	req.Options = &SessionOptions{Algorithm: "quantum"}
	if code := c.do("POST", "/v1/sessions", req, nil); code != 400 {
		t.Errorf("unknown algorithm: status %d, want 400", code)
	}
}

// TestConcurrentClients is the acceptance scenario: ≥8 goroutines hammer
// one session with a mix of NBCQ answering, Select, truth lookups and
// occasional fact writes, under -race via CI.
func TestConcurrentClients(t *testing.T) {
	c := newTestClient(t, Config{MaxConcurrent: 16})
	c.mustCreate("w", winMove)

	const goroutines = 12
	const iters = 15
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*iters)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch {
				case g == 0 && i%5 == 4:
					// One writer thread occasionally asserts a new edge.
					var fr AddFactsResponse
					code := c.do("POST", "/v1/sessions/w/facts", AddFactsRequest{
						Facts: []Fact{{Pred: "move", Args: []string{fmt.Sprintf("n%d", i), "c"}}},
					}, &fr)
					if code != 200 {
						errs <- fmt.Errorf("goroutine %d: add fact status %d", g, code)
					}
				case g%3 == 1:
					var sr SelectResponse
					code := c.do("POST", "/v1/sessions/w/select", QueryRequest{Query: "win(X)"}, &sr)
					if code != 200 {
						errs <- fmt.Errorf("goroutine %d: select status %d", g, code)
					} else if len(sr.Vars) != 1 {
						errs <- fmt.Errorf("goroutine %d: select vars %v", g, sr.Vars)
					}
				case g%3 == 2:
					var tr TruthResponse
					code := c.do("POST", "/v1/sessions/w/truth", QueryRequest{Atom: "win(c)"}, &tr)
					if code != 200 {
						errs <- fmt.Errorf("goroutine %d: truth status %d", g, code)
					}
				default:
					var qr QueryResponse
					code := c.do("POST", "/v1/sessions/w/query", QueryRequest{Query: "win(b)"}, &qr)
					if code != 200 {
						errs <- fmt.Errorf("goroutine %d: query status %d", g, code)
					} else if qr.Answer != "true" {
						// win(b) stays true under every added n*->c edge.
						errs <- fmt.Errorf("goroutine %d: win(b) = %s", g, qr.Answer)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The repeated identical queries must have produced cache hits.
	var ss ServerStatsResponse
	c.do("GET", "/v1/stats", nil, &ss)
	if ss.Cache.Hits == 0 {
		t.Errorf("no cache hits after %d repeated queries: %+v", goroutines*iters, ss.Cache)
	}
}

func TestRequestLimits(t *testing.T) {
	c := newTestClient(t, Config{MaxBodyBytes: 256})
	big := strings.Repeat("p(a). ", 200)
	code := c.do("POST", "/v1/sessions", CreateSessionRequest{Name: "big", Program: big}, nil)
	if code != http.StatusBadRequest {
		t.Errorf("oversized body: status %d, want 400", code)
	}
	// Unknown JSON fields are rejected, catching typo'd option keys.
	req, _ := http.NewRequest("POST", c.srv.URL+"/v1/sessions",
		strings.NewReader(`{"name":"x","programme":"p(a)."}`))
	resp, err := c.srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("unknown field: status %d, want 400", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	c := newTestClient(t, Config{})
	var out map[string]string
	if code := c.do("GET", "/v1/healthz", nil, &out); code != 200 || out["status"] != "ok" {
		t.Errorf("healthz: code %d body %v", code, out)
	}
}

// TestAddFactsAtomicBatch: a batch with one invalid fact applies nothing
// — database size and epoch are unchanged, and cached answers stay valid.
func TestAddFactsAtomicBatch(t *testing.T) {
	c := newTestClient(t, Config{})
	c.mustCreate("s", "move(a,b). move(b,a). move(b,c).\nmove(X,Y), not win(Y) -> win(X).")
	var before SessionInfo
	c.do("GET", "/v1/sessions/s", nil, &before)

	if code := c.do("POST", "/v1/sessions/s/facts", AddFactsRequest{Facts: []Fact{
		{Pred: "move", Args: []string{"c", "d"}},
		{Pred: "move", Args: []string{"wrong-arity"}},
	}}, nil); code != 400 {
		t.Fatalf("invalid batch: status %d, want 400", code)
	}
	var after SessionInfo
	c.do("GET", "/v1/sessions/s", nil, &after)
	if after.Facts != before.Facts || after.Epoch != before.Epoch {
		t.Errorf("failed batch mutated session: before %+v after %+v", before, after)
	}
	// win(c) must still be false: move(c,d) did not land.
	var q QueryResponse
	c.do("POST", "/v1/sessions/s/query", QueryRequest{Query: "win(c)"}, &q)
	if q.Answer != "false" {
		t.Errorf("win(c) = %s, want false after rejected batch", q.Answer)
	}
}

// TestRetractEndpoint drives the retraction round-trip over HTTP,
// including the all-or-nothing failure mode.
func TestRetractEndpoint(t *testing.T) {
	c := newTestClient(t, Config{})
	c.mustCreate("s", "move(a,b). move(b,a). move(b,c).\nmove(X,Y), not win(Y) -> win(X).")

	var q QueryResponse
	c.do("POST", "/v1/sessions/s/query", QueryRequest{Query: "win(b)"}, &q)
	if q.Answer != "true" {
		t.Fatalf("win(b) = %s, want true", q.Answer)
	}

	var rr RetractResponse
	if code := c.do("POST", "/v1/sessions/s/retract", AddFactsRequest{Facts: []Fact{
		{Pred: "move", Args: []string{"b", "c"}},
	}}, &rr); code != 200 {
		t.Fatalf("retract: status %d", code)
	}
	if rr.Retracted != 1 || rr.Facts != 2 || rr.Epoch == 0 {
		t.Errorf("retract response: %+v", rr)
	}
	c.do("POST", "/v1/sessions/s/query", QueryRequest{Query: "win(b)"}, &q)
	if q.Answer != "undefined" {
		t.Errorf("win(b) after retraction = %s, want undefined (a↔b draw)", q.Answer)
	}

	// Retracting a non-database fact rejects the whole batch.
	if code := c.do("POST", "/v1/sessions/s/retract", AddFactsRequest{Facts: []Fact{
		{Pred: "move", Args: []string{"a", "b"}},
		{Pred: "move", Args: []string{"z", "z"}},
	}}, nil); code != 400 {
		t.Fatalf("invalid retract batch: status %d, want 400", code)
	}
	var info SessionInfo
	c.do("GET", "/v1/sessions/s", nil, &info)
	if info.Facts != 2 {
		t.Errorf("facts = %d, want 2 (failed retract must not apply)", info.Facts)
	}
	// Empty and unknown-session requests.
	if code := c.do("POST", "/v1/sessions/s/retract", AddFactsRequest{}, nil); code != 400 {
		t.Errorf("empty retract: status %d, want 400", code)
	}
	if code := c.do("POST", "/v1/sessions/nope/retract", AddFactsRequest{Facts: []Fact{
		{Pred: "p", Args: []string{"a"}},
	}}, nil); code != 404 {
		t.Errorf("unknown session retract: status %d, want 404", code)
	}
}

// TestMutationPrunesStaleCacheEntries: a mutation evicts the session's
// now-unreachable old-epoch answers instead of leaving them to rot until
// LRU eviction.
func TestMutationPrunesStaleCacheEntries(t *testing.T) {
	c := newTestClient(t, Config{})
	c.mustCreate("s", "p(a).\np(X) -> q(X).")
	// Populate the cache at epoch 0.
	for _, query := range []string{"q(a)", "p(a)", "q(zz)"} {
		c.do("POST", "/v1/sessions/s/query", QueryRequest{Query: query}, nil)
	}
	var ss ServerStatsResponse
	c.do("GET", "/v1/stats", nil, &ss)
	if ss.Cache.Entries != 3 {
		t.Fatalf("cache entries = %d, want 3", ss.Cache.Entries)
	}
	// A mutation bumps the epoch: every epoch-0 entry must be pruned.
	if code := c.do("POST", "/v1/sessions/s/facts", AddFactsRequest{Facts: []Fact{
		{Pred: "p", Args: []string{"b"}},
	}}, nil); code != 200 {
		t.Fatalf("add fact failed")
	}
	c.do("GET", "/v1/stats", nil, &ss)
	if ss.Cache.Entries != 0 {
		t.Errorf("cache entries after mutation = %d, want 0 (stale epochs pruned)", ss.Cache.Entries)
	}
}

// TestCreateRejectsAnalysisErrors: a program whose rule references a
// predicate with no facts and no derivation compiles, but analysis flags
// it as an Error — creation must 400 with the structured diagnostics,
// and no session may be left behind.
func TestCreateRejectsAnalysisErrors(t *testing.T) {
	c := newTestClient(t, Config{})
	broken := `
		scientist(john).
		conferencePaper(X) -> article(X).
	`
	var er ErrorResponse
	code := c.do("POST", "/v1/sessions", CreateSessionRequest{Name: "b", Program: broken}, &er)
	if code != http.StatusBadRequest {
		t.Fatalf("create: status %d, want 400", code)
	}
	if len(er.Diagnostics) == 0 {
		t.Fatalf("400 body carries no diagnostics: %+v", er)
	}
	found := false
	for _, d := range er.Diagnostics {
		if d.Code == "unsatisfiable-rule" && strings.Contains(d.Message, "conferencePaper") {
			found = true
		}
	}
	if !found {
		t.Errorf("diagnostics lack the unsatisfiable-rule finding: %+v", er.Diagnostics)
	}
	if !strings.Contains(er.Error, "error diagnostic") {
		t.Errorf("error message not descriptive: %q", er.Error)
	}
	// The rejected name is free for reuse.
	if code := c.do("GET", "/v1/sessions/b", nil, nil); code != http.StatusNotFound {
		t.Errorf("rejected session visible: status %d", code)
	}
	c.mustCreate("b", winMove)
}

// TestCreateReturnsAnalysisSummary: a healthy program's 201 carries the
// analysis block (classes, certificate, counts), and warnings ride along
// without failing the create.
func TestCreateReturnsAnalysisSummary(t *testing.T) {
	c := newTestClient(t, Config{})

	var resp CreateSessionResponse
	code := c.do("POST", "/v1/sessions", CreateSessionRequest{Name: "w", Program: winMove}, &resp)
	if code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	a := resp.Analysis
	if a == nil {
		t.Fatal("201 body lacks analysis block")
	}
	if a.CertifiedDepth != 1 || !a.Terminates {
		t.Errorf("win-move should certify at depth 1: %+v", a)
	}
	if a.Errors != 0 || len(a.Diagnostics) != 0 {
		t.Errorf("unexpected diagnostics: %+v", a)
	}

	// vacuous negation: warning in the body, create still succeeds.
	warny := `
		a(1).
		a(X), not ghost(X) -> b(X).
	`
	var wr CreateSessionResponse
	if code := c.do("POST", "/v1/sessions", CreateSessionRequest{Name: "v", Program: warny}, &wr); code != http.StatusCreated {
		t.Fatalf("warning program rejected: status %d", code)
	}
	if wr.Analysis == nil || wr.Analysis.Warnings != 1 || len(wr.Analysis.Diagnostics) != 1 {
		t.Fatalf("warnings missing from create body: %+v", wr.Analysis)
	}
	if wr.Analysis.Diagnostics[0].Code != "vacuous-negation" {
		t.Errorf("diagnostic = %+v", wr.Analysis.Diagnostics[0])
	}

	// The stats endpoint repeats the summary (without diagnostics).
	var st SessionStatsResponse
	c.do("GET", "/v1/sessions/w/stats", nil, &st)
	if st.Analysis == nil || st.Analysis.CertifiedDepth != 1 {
		t.Errorf("stats analysis block = %+v", st.Analysis)
	}
	if len(st.Analysis.Diagnostics) != 0 {
		t.Errorf("stats should summarize, not list diagnostics: %+v", st.Analysis)
	}
}
