package server

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime/metrics"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/trace"
	"repro/internal/wal"
)

// This file is wfsd's zero-dependency metrics surface: per-route request
// latency histograms and status counters collected by the instrument
// middleware, rendered together with cache/limiter/session gauges as
// Prometheus text exposition format 0.0.4 on GET /metrics. Everything a
// scrape reads is either an atomic or held under the single httpMetrics
// mutex; nothing on this path takes a session's evaluation lock or
// forces a model build.

// latencyBuckets are the histogram upper bounds in seconds. Queries
// range from sub-millisecond cache hits to multi-second cold builds, so
// the buckets span four decades.
var latencyBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5}

// routeStats accumulates one route's observations. Guarded by
// httpMetrics.mu — route cardinality is tiny (the fixed route table), so
// a single mutex beats per-route sharding in everything but benchmarks
// nobody runs.
type routeStats struct {
	statuses map[int]int64 // requests by HTTP status code
	buckets  []int64       // cumulative-style counts are computed at render
	sum      float64       // total seconds
	count    int64
}

// httpMetrics is the per-route request latency/status collector.
type httpMetrics struct {
	mu     sync.Mutex
	routes map[string]*routeStats
}

func newHTTPMetrics() *httpMetrics {
	return &httpMetrics{routes: make(map[string]*routeStats)}
}

func (m *httpMetrics) observe(route string, status int, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rs := m.routes[route]
	if rs == nil {
		rs = &routeStats{
			statuses: make(map[int]int64),
			buckets:  make([]int64, len(latencyBuckets)),
		}
		m.routes[route] = rs
	}
	rs.statuses[status]++
	rs.sum += seconds
	rs.count++
	for i, ub := range latencyBuckets {
		if seconds <= ub {
			rs.buckets[i]++
			break // non-cumulative per-bucket count; summed at render
		}
	}
}

// statusRecorder captures the status code a handler writes so the
// instrument middleware can label its observations.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// instrument wraps h with request observability: per-route latency and
// status metrics, the request's trace identity (parsed from an incoming
// traceparent or minted fresh, echoed back as traceparent/X-Trace-Id
// response headers), the flight-recorder feed, and (when
// cfg.AccessLogger is set) one structured access-log line per request.
// routeOf resolves the registered mux pattern for labeling, keeping
// metric cardinality bounded by the route table rather than by raw
// request paths.
func (s *Server) instrument(routeOf func(*http.Request) string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route := routeOf(r)
		tctx, parent := incomingContext(r)
		ht := &reqTrace{ctx: tctx, parent: parent}
		if s.recorder != nil {
			// The root span only exists when something retains it; with
			// the recorder disabled requests keep the nil no-op tracer.
			ht.root = trace.New(route)
		}
		r = r.WithContext(context.WithValue(r.Context(), traceCtxKey{}, ht))
		w.Header().Set("Traceparent", tctx.Traceparent())
		w.Header().Set("X-Trace-Id", tctx.TraceIDString())

		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		h.ServeHTTP(rec, r)
		dur := time.Since(start)
		if rec.status == 0 {
			rec.status = http.StatusOK // handler wrote nothing: implicit 200
		}
		s.httpMetrics.observe(route, rec.status, dur.Seconds())
		session := sessionFromPath(r.URL.Path)
		if s.recorder != nil {
			ht.root.End()
			slow, pinned := ht.flags()
			s.recorder.Record(&trace.RequestTrace{
				TraceID:       tctx.TraceIDString(),
				SpanID:        tctx.SpanIDString(),
				ParentID:      parent,
				Route:         route,
				Path:          r.URL.Path,
				Session:       session,
				Status:        rec.status,
				Error:         ht.errorMsg(),
				StartUnixNano: start.UnixNano(),
				DurationUS:    dur.Microseconds(),
				Span:          ht.root,
				Slow:          slow,
				Pinned:        pinned,
			})
		}
		if s.cfg.AccessLogger != nil {
			line := fmt.Sprintf("method=%s route=%q path=%q status=%d dur=%s trace_id=%s",
				r.Method, route, r.URL.Path, rec.status, dur.Round(time.Microsecond),
				tctx.TraceIDString())
			if session != "" {
				line += " session=" + strconv.Quote(session)
			}
			s.cfg.AccessLogger.Print(line)
		}
	})
}

// sessionFromPath extracts the session name from /v1/sessions/{name}/...
// paths for access-log enrichment (the outer middleware runs before mux
// matching, so r.PathValue is not yet populated).
func sessionFromPath(path string) string {
	const prefix = "/v1/sessions/"
	rest, ok := strings.CutPrefix(path, prefix)
	if !ok || rest == "" {
		return ""
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

// promWriter accumulates one Prometheus text-format scrape. Families are
// emitted with # HELP / # TYPE headers in the order written.
type promWriter struct {
	b strings.Builder
}

func (p *promWriter) family(name, help, typ string) {
	fmt.Fprintf(&p.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p *promWriter) sample(name, labels string, v float64) {
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(&p.b, "%s%s %s\n", name, labels, formatFloat(v))
}

func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promLabel renders one escaped label pair per the exposition format
// (backslash, quote, and newline escaped inside quoted values).
func promLabel(key, val string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return key + `="` + r.Replace(val) + `"`
}

// handleMetrics serves the scrape. It bypasses the limiter (a saturated
// server must remain scrapeable — that is when the metrics matter most)
// and reads only atomics and registry snapshots, never a session's
// evaluation state.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	p := &promWriter{}

	// Per-route HTTP request metrics.
	s.httpMetrics.mu.Lock()
	routes := make([]string, 0, len(s.httpMetrics.routes))
	for route := range s.httpMetrics.routes {
		routes = append(routes, route)
	}
	sort.Strings(routes)
	p.family("wfsd_http_requests_total", "HTTP requests by route and status code.", "counter")
	for _, route := range routes {
		rs := s.httpMetrics.routes[route]
		codes := make([]int, 0, len(rs.statuses))
		for c := range rs.statuses {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			p.sample("wfsd_http_requests_total",
				promLabel("route", route)+","+promLabel("code", strconv.Itoa(c)),
				float64(rs.statuses[c]))
		}
	}
	p.family("wfsd_http_request_duration_seconds", "HTTP request latency by route.", "histogram")
	for _, route := range routes {
		rs := s.httpMetrics.routes[route]
		cum := int64(0)
		for i, ub := range latencyBuckets {
			cum += rs.buckets[i]
			p.sample("wfsd_http_request_duration_seconds_bucket",
				promLabel("route", route)+","+promLabel("le", formatFloat(ub)), float64(cum))
		}
		p.sample("wfsd_http_request_duration_seconds_bucket",
			promLabel("route", route)+","+promLabel("le", "+Inf"), float64(rs.count))
		p.sample("wfsd_http_request_duration_seconds_sum", promLabel("route", route), rs.sum)
		p.sample("wfsd_http_request_duration_seconds_count", promLabel("route", route), float64(rs.count))
	}
	s.httpMetrics.mu.Unlock()

	// Answer cache and singleflight.
	cs := s.cache.Stats()
	p.family("wfsd_answer_cache_hits_total", "Answer cache hits.", "counter")
	p.sample("wfsd_answer_cache_hits_total", "", float64(cs.Hits))
	p.family("wfsd_answer_cache_misses_total", "Answer cache misses.", "counter")
	p.sample("wfsd_answer_cache_misses_total", "", float64(cs.Misses))
	p.family("wfsd_answer_cache_entries", "Answer cache current entries.", "gauge")
	p.sample("wfsd_answer_cache_entries", "", float64(cs.Entries))
	p.family("wfsd_answer_cache_capacity", "Answer cache capacity in entries.", "gauge")
	p.sample("wfsd_answer_cache_capacity", "", float64(cs.Capacity))
	p.family("wfsd_singleflight_shared_total", "Answers served from another request's in-flight computation.", "counter")
	p.sample("wfsd_singleflight_shared_total", "", float64(s.shared.Load()))

	// Limiter saturation.
	p.family("wfsd_limiter_in_flight", "Requests currently executing.", "gauge")
	p.sample("wfsd_limiter_in_flight", "", float64(s.limiter.inFlight.Load()))
	p.family("wfsd_limiter_waiting", "Requests queued for a concurrency slot.", "gauge")
	p.sample("wfsd_limiter_waiting", "", float64(s.limiter.waiting.Load()))
	p.family("wfsd_limiter_max_concurrent", "Concurrency limit (0 = unlimited).", "gauge")
	p.sample("wfsd_limiter_max_concurrent", "", float64(s.cfg.MaxConcurrent))
	p.family("wfsd_limiter_rejected_total", "Requests rejected while queued, by reason.", "counter")
	p.sample("wfsd_limiter_rejected_total", promLabel("reason", "timeout"), float64(s.limiter.timeouts.Load()))
	p.sample("wfsd_limiter_rejected_total", promLabel("reason", "canceled"), float64(s.limiter.canceled.Load()))

	// Server-level gauges.
	p.family("wfsd_sessions", "Live sessions.", "gauge")
	p.sample("wfsd_sessions", "", float64(s.reg.Len()))
	p.family("wfsd_slow_queries_total", "Uncached queries slower than the slow-query threshold.", "counter")
	p.sample("wfsd_slow_queries_total", "", float64(s.slowQueries.Load()))
	p.family("wfsd_query_timeouts_total", "Queries cancelled by the server-side deadline (504, or degraded 200 under ?partial=1).", "counter")
	p.sample("wfsd_query_timeouts_total", "", float64(s.queryTimeouts.Load()))
	p.family("wfsd_query_cancels_total", "Queries cancelled by client disconnect mid-evaluation.", "counter")
	p.sample("wfsd_query_cancels_total", "", float64(s.queryCancels.Load()))
	p.family("wfsd_uptime_seconds", "Seconds since server start.", "gauge")
	p.sample("wfsd_uptime_seconds", "", time.Since(s.started).Seconds())

	s.writeTraceMetrics(p)
	s.writeWALMetrics(p)
	s.writeSessionMetrics(p)
	writeRuntimeMetrics(p)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = io.WriteString(w, p.b.String())
}

// writeTraceMetrics emits the flight recorder's retention telemetry:
// how many traces were admitted by class, how many entries are held
// against capacity, and the eviction churn — the numbers that say
// whether an interesting trace is still retrievable.
func (s *Server) writeTraceMetrics(p *promWriter) {
	if s.recorder == nil {
		return
	}
	st := s.recorder.Stats()
	p.family("wfsd_trace_entries", "Request traces currently retained by the flight recorder.", "gauge")
	p.sample("wfsd_trace_entries", "", float64(st.Entries))
	p.family("wfsd_trace_capacity", "Flight recorder capacity in traces.", "gauge")
	p.sample("wfsd_trace_capacity", "", float64(st.Capacity))
	p.family("wfsd_trace_recorded_total", "Request traces admitted to the flight recorder, by retention class.", "counter")
	for _, class := range []string{trace.KeptError, trace.KeptSlow, trace.KeptPinned, trace.KeptSampled} {
		p.sample("wfsd_trace_recorded_total", promLabel("class", class), float64(st.Recorded[class]))
	}
	p.family("wfsd_trace_sampled_seen_total", "Routine requests offered to the trace reservoir (admitted or not).", "counter")
	p.sample("wfsd_trace_sampled_seen_total", "", float64(st.SampleSeen))
	p.family("wfsd_trace_evicted_total", "Request traces evicted from the flight recorder.", "counter")
	p.sample("wfsd_trace_evicted_total", "", float64(st.Evicted))
}

// writeRuntimeMetrics emits Go process health from runtime/metrics:
// goroutine count, heap gauges, and the GC pause histogram. The
// histogram sum is approximated from bucket midpoints (runtime/metrics
// exposes counts and boundaries, not an exact sum), which is the usual
// convention for re-exported runtime histograms.
func writeRuntimeMetrics(p *promWriter) {
	samples := []metrics.Sample{
		{Name: "/sched/goroutines:goroutines"},
		{Name: "/memory/classes/heap/objects:bytes"},
		{Name: "/gc/heap/goal:bytes"},
		{Name: "/gc/heap/allocs:bytes"},
		{Name: "/gc/pauses:seconds"},
	}
	metrics.Read(samples)

	emitGauge := func(i int, name, help, typ string) {
		if samples[i].Value.Kind() != metrics.KindUint64 {
			return
		}
		p.family(name, help, typ)
		p.sample(name, "", float64(samples[i].Value.Uint64()))
	}
	emitGauge(0, "go_goroutines", "Goroutines that currently exist.", "gauge")
	emitGauge(1, "go_heap_live_bytes", "Bytes occupied by live heap objects.", "gauge")
	emitGauge(2, "go_heap_goal_bytes", "Heap size target of the next GC cycle.", "gauge")
	emitGauge(3, "go_alloc_bytes_total", "Cumulative bytes allocated on the heap.", "counter")

	if samples[4].Value.Kind() != metrics.KindFloat64Histogram {
		return
	}
	// The runtime histogram has hundreds of fine-grained buckets; fold it
	// into a handful of scrape-friendly bounds.
	bounds := []float64{1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1}
	folded := make([]uint64, len(bounds))
	h := samples[4].Value.Float64Histogram()
	var count uint64
	var sum float64
	for i, c := range h.Counts {
		count += c
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		// Approximate each bucket's mass by its midpoint; clamp the
		// infinite edge buckets to their finite bound.
		mid := (lo + hi) / 2
		switch {
		case math.IsInf(lo, -1):
			mid = hi
		case math.IsInf(hi, 1):
			mid = lo
		}
		sum += float64(c) * mid
		for j, ub := range bounds {
			if hi <= ub {
				folded[j] += c
				break
			}
		}
	}
	p.family("go_gc_pause_seconds", "Stop-the-world GC pause latency.", "histogram")
	var cum uint64
	for j, ub := range bounds {
		cum += folded[j]
		p.sample("go_gc_pause_seconds_bucket", promLabel("le", formatFloat(ub)), float64(cum))
	}
	p.sample("go_gc_pause_seconds_bucket", promLabel("le", "+Inf"), float64(count))
	p.sample("go_gc_pause_seconds_sum", "", sum)
	p.sample("go_gc_pause_seconds_count", "", float64(count))
}

// writeWALMetrics emits the durability families. All counters are
// atomics on the wal.Metrics set; nothing here touches a session log's
// lock, so a scrape never stalls behind an fsync.
func (s *Server) writeWALMetrics(p *promWriter) {
	if s.wal == nil {
		return
	}
	m := s.wal.Metrics().Read()
	p.family("wfsd_wal_appended_records_total", "Delta records appended to the write-ahead log.", "counter")
	p.sample("wfsd_wal_appended_records_total", "", float64(m.AppendedRecords))
	p.family("wfsd_wal_appended_bytes_total", "Bytes appended to the write-ahead log.", "counter")
	p.sample("wfsd_wal_appended_bytes_total", "", float64(m.AppendedBytes))
	p.family("wfsd_wal_append_errors_total", "Mutations rejected because their WAL append failed.", "counter")
	p.sample("wfsd_wal_append_errors_total", "", float64(m.AppendErrors))

	p.family("wfsd_wal_fsync_duration_seconds", "WAL fsync latency on the mutation path.", "histogram")
	cum := int64(0)
	for i, ub := range wal.FsyncBuckets {
		cum += m.FsyncBuckets[i]
		p.sample("wfsd_wal_fsync_duration_seconds_bucket", promLabel("le", formatFloat(ub)), float64(cum))
	}
	p.sample("wfsd_wal_fsync_duration_seconds_bucket", promLabel("le", "+Inf"), float64(m.Fsyncs))
	p.sample("wfsd_wal_fsync_duration_seconds_sum", "", float64(m.FsyncNS)/1e9)
	p.sample("wfsd_wal_fsync_duration_seconds_count", "", float64(m.Fsyncs))

	p.family("wfsd_wal_checkpoints_total", "Snapshot checkpoints written (including initial per-session ones).", "counter")
	p.sample("wfsd_wal_checkpoints_total", "", float64(m.Checkpoints))
	p.family("wfsd_wal_checkpoint_failures_total", "Checkpoint attempts that failed.", "counter")
	p.sample("wfsd_wal_checkpoint_failures_total", "", float64(m.CheckpointFailures))

	p.family("wfsd_wal_recovered_sessions", "Sessions rebuilt from the log at startup.", "gauge")
	p.sample("wfsd_wal_recovered_sessions", "", float64(s.recovery.Sessions))
	p.family("wfsd_wal_replayed_records_total", "Delta records replayed during startup recovery.", "counter")
	p.sample("wfsd_wal_replayed_records_total", "", float64(s.recovery.ReplayedRecords))
	p.family("wfsd_wal_replay_duration_seconds", "Startup recovery duration (checkpoint load + replay).", "gauge")
	p.sample("wfsd_wal_replay_duration_seconds", "", s.recovery.Duration.Seconds())
	p.family("wfsd_wal_torn_tails_total", "Torn/corrupt log tails dropped during recovery.", "counter")
	p.sample("wfsd_wal_torn_tails_total", "", float64(m.TornTails))
	p.family("wfsd_wal_readonly", "Sessions currently read-only (WAL circuit breaker open).", "gauge")
	p.sample("wfsd_wal_readonly", "", float64(s.reg.walReadonly.Load()))

	p.family("wfsd_wal_last_checkpoint_age_seconds", "Seconds since each session's newest checkpoint.", "gauge")
	for _, name := range s.reg.Names() {
		if sess, err := s.reg.Get(name); err == nil && sess.wlog != nil {
			p.sample("wfsd_wal_last_checkpoint_age_seconds", promLabel("session", name),
				time.Since(sess.wlog.LastCheckpoint()).Seconds())
		}
	}
}

// writeSessionMetrics emits per-session engine counters. Reads go through
// FactsEpoch and EngineMetrics only — both atomic-backed — so a scrape
// never forces evaluation or blocks behind one.
func (s *Server) writeSessionMetrics(p *promWriter) {
	type sessRow struct {
		name  string
		facts int
		epoch uint64
		em    engineMetricsRow
	}
	var rows []sessRow
	for _, name := range s.reg.Names() {
		sess, err := s.reg.Get(name)
		if err != nil {
			continue
		}
		facts, epoch := sess.Sys.FactsEpoch()
		em := sess.Sys.Metrics().Read()
		rows = append(rows, sessRow{name, facts, epoch, engineMetricsRow{
			builds: em.Builds, rebases: em.Rebases,
			chaseS: float64(em.ChaseNS) / 1e9, groundS: float64(em.GroundNS) / 1e9,
			condenseS: float64(em.CondenseNS) / 1e9, solveS: float64(em.SolveNS) / 1e9,
			chaseAtoms: em.ChaseAtoms, chaseInstances: em.ChaseInstances,
		}})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })

	emit := func(name, help, typ string, value func(sessRow) float64) {
		p.family(name, help, typ)
		for _, row := range rows {
			p.sample(name, promLabel("session", row.name), value(row))
		}
	}
	emit("wfsd_session_facts", "Database facts per session.", "gauge",
		func(r sessRow) float64 { return float64(r.facts) })
	emit("wfsd_session_epoch", "Database epoch per session.", "counter",
		func(r sessRow) float64 { return float64(r.epoch) })
	emit("wfsd_session_builds_total", "Model builds per session.", "counter",
		func(r sessRow) float64 { return float64(r.em.builds) })
	emit("wfsd_session_rebases_total", "Model builds served by delta-rebase per session.", "counter",
		func(r sessRow) float64 { return float64(r.em.rebases) })
	emit("wfsd_session_chase_atoms", "Latest build's chase universe size per session.", "gauge",
		func(r sessRow) float64 { return float64(r.em.chaseAtoms) })
	emit("wfsd_session_chase_instances", "Latest build's fired chase instances per session.", "gauge",
		func(r sessRow) float64 { return float64(r.em.chaseInstances) })

	p.family("wfsd_session_phase_seconds_total", "Cumulative build time per session by pipeline phase.", "counter")
	for _, row := range rows {
		for _, ph := range []struct {
			phase string
			secs  float64
		}{
			{"chase", row.em.chaseS}, {"ground", row.em.groundS},
			{"condense", row.em.condenseS}, {"solve", row.em.solveS},
		} {
			p.sample("wfsd_session_phase_seconds_total",
				promLabel("session", row.name)+","+promLabel("phase", ph.phase), ph.secs)
		}
	}
}

// engineMetricsRow is a flattened EngineMetricsSnapshot for emission.
type engineMetricsRow struct {
	builds, rebases, chaseAtoms, chaseInstances int64
	chaseS, groundS, condenseS, solveS          float64
}
