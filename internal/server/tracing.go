// Request-scoped tracing: every request gets a trace.Context (parsed
// from an incoming W3C traceparent header or minted fresh) and a root
// span, carried through the handler via the request context. The same
// trace_id appears on the response headers, the access-log line, the
// slow-query line, error bodies, and the flight-recorder entry, so one
// identifier correlates every artifact of a request. Completed requests
// feed the flight recorder (trace.Recorder), browsable at /v1/traces.
package server

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/trace"
)

type traceCtxKey struct{}

// reqTrace is the per-request tracing holder the instrument middleware
// plants in the request context: the request's identity, its root span,
// and the tail-classification flags handlers set along the way.
type reqTrace struct {
	ctx    trace.Context // this server's context (fresh span ID)
	parent string        // upstream span ID when the caller sent a traceparent
	root   *trace.Span

	mu     sync.Mutex
	errMsg string
	slow   bool
	pinned bool
}

// requestTrace returns the request's tracing holder, nil when the
// request did not pass through the instrument middleware (direct
// handler invocation in tests).
func requestTrace(r *http.Request) *reqTrace {
	ht, _ := r.Context().Value(traceCtxKey{}).(*reqTrace)
	return ht
}

// span returns the request's root span (nil-safe: nil holder means
// tracing is simply off for the call, which every span method accepts).
func (h *reqTrace) span() *trace.Span {
	if h == nil {
		return nil
	}
	return h.root
}

// TraceID returns the request's hex trace ID ("" on a nil holder).
func (h *reqTrace) TraceID() string {
	if h == nil {
		return ""
	}
	return h.ctx.TraceIDString()
}

func (h *reqTrace) setError(msg string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.errMsg = msg
	h.mu.Unlock()
}

func (h *reqTrace) errorMsg() string {
	if h == nil {
		return ""
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.errMsg
}

// markSlow tags the request as a slow-query breach so the flight
// recorder keeps it regardless of reservoir odds.
func (h *reqTrace) markSlow() {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.slow = true
	h.mu.Unlock()
}

// pin forces retention (?trace=1 — the caller explicitly asked for this
// trace, so it must be retrievable afterwards).
func (h *reqTrace) pin() {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.pinned = true
	h.mu.Unlock()
}

func (h *reqTrace) flags() (slow, pinned bool) {
	if h == nil {
		return false, false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.slow, h.pinned
}

// incomingContext resolves the request's trace identity: continue the
// caller's trace when it sent a well-formed traceparent (same trace ID,
// fresh span ID), mint a fresh context otherwise. Malformed headers are
// never an error — the request proceeds under a new identity.
func incomingContext(r *http.Request) (tc trace.Context, parentSpan string) {
	if up, ok := trace.ParseTraceparent(r.Header.Get("traceparent")); ok {
		return up.WithNewSpan(), up.SpanIDString()
	}
	return trace.MintContext(), ""
}

// handleTraceIndex serves GET /v1/traces: the flight recorder's
// retained traces, newest first, as summaries.
func (s *Server) handleTraceIndex(w http.ResponseWriter, r *http.Request) {
	if s.recorder == nil {
		writeError(w, r, http.StatusNotFound, fmt.Errorf("flight recorder disabled (TraceBufferSize < 0)"))
		return
	}
	st := s.recorder.Stats()
	entries := s.recorder.Index()
	resp := TraceIndexResponse{
		Traces:   make([]TraceSummary, 0, len(entries)),
		Entries:  st.Entries,
		Capacity: st.Capacity,
	}
	for _, rt := range entries {
		resp.Traces = append(resp.Traces, TraceSummary{
			TraceID: rt.TraceID,
			Route:   rt.Route,
			Path:    rt.Path,
			Session: rt.Session,
			Status:  rt.Status,
			Kept:    rt.Kept,
			Error:   rt.Error,
			Start:   time.Unix(0, rt.StartUnixNano).UTC().Format(time.RFC3339Nano),
			DurMS:   float64(rt.DurationUS) / 1e3,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleTraceGet serves GET /v1/traces/{id}: the full recorded request
// trace, span tree in the same JSON shape as ?trace=1.
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	if s.recorder == nil {
		writeError(w, r, http.StatusNotFound, fmt.Errorf("flight recorder disabled (TraceBufferSize < 0)"))
		return
	}
	id := r.PathValue("id")
	rt, ok := s.recorder.Get(id)
	if !ok {
		writeError(w, r, http.StatusNotFound, fmt.Errorf("no recorded trace %q (evicted or never retained)", id))
		return
	}
	writeJSON(w, http.StatusOK, rt)
}
