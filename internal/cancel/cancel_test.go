package cancel

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilTokenNeverCancelled(t *testing.T) {
	var tok *Token
	if tok.Cancelled() {
		t.Fatal("nil token reported cancelled")
	}
	if tok.Err() != nil || tok.Cause() != nil {
		t.Fatal("nil token reported a cause")
	}
	tok.Cancel(errors.New("x")) // must not panic
}

func TestForBackgroundIsNil(t *testing.T) {
	if For(context.Background()) != nil {
		t.Fatal("For(Background) should be nil — uncancellable")
	}
	if For(nil) != nil {
		t.Fatal("For(nil) should be nil")
	}
}

func TestManualCancel(t *testing.T) {
	tok := New()
	if tok.Cancelled() {
		t.Fatal("fresh token cancelled")
	}
	cause := errors.New("boom")
	tok.Cancel(cause)
	if !tok.Cancelled() {
		t.Fatal("token not cancelled after Cancel")
	}
	if !errors.Is(tok.Cause(), cause) {
		t.Fatalf("cause = %v, want %v", tok.Cause(), cause)
	}
	// First cause is sticky.
	tok.Cancel(errors.New("later"))
	if !errors.Is(tok.Cause(), cause) {
		t.Fatalf("cause overwritten: %v", tok.Cause())
	}
}

func TestManualCancelNilCause(t *testing.T) {
	tok := New()
	tok.Cancel(nil)
	if !errors.Is(tok.Err(), context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", tok.Err())
	}
}

func TestContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	tok := For(ctx)
	if tok == nil {
		t.Fatal("For returned nil for a cancellable context")
	}
	if tok.Cancelled() {
		t.Fatal("cancelled before deadline")
	}
	<-ctx.Done()
	if !tok.Cancelled() {
		t.Fatal("not cancelled after deadline")
	}
	if !errors.Is(tok.Cause(), context.DeadlineExceeded) {
		t.Fatalf("cause = %v, want DeadlineExceeded", tok.Cause())
	}
}

func TestContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	tok := For(ctx)
	cancel()
	if !tok.Cancelled() {
		t.Fatal("not cancelled after context cancel")
	}
	if !errors.Is(tok.Err(), context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", tok.Err())
	}
}

func TestConcurrentChecks(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	tok := For(ctx)
	stop := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			for {
				select {
				case <-stop:
					return
				default:
					tok.Cancelled()
					tok.Cause()
				}
			}
		}()
	}
	time.Sleep(2 * time.Millisecond)
	cancel()
	if !tok.Cancelled() {
		t.Fatal("not cancelled")
	}
	close(stop)
}
