// Package cancel provides the engine's cooperative cancellation token: a
// cheap, goroutine-free bridge from context.Context into the hot
// evaluation loops (chase expansion, modular solve, incremental rebase,
// the adaptive ladder).
//
// The design constraint is the check cost, not the cancel cost. The warm
// snapshot answer path runs in a few hundred nanoseconds, so the token
// must be checkable for approximately one predicted branch: Cancelled()
// first loads a sticky atomic flag (the only cost on the non-cancelled
// fast path once tripped state is in cache) and only then polls the
// context's Done channel with a non-blocking select — the closed check
// is lock-free, unlike ctx.Err(), which takes the context's mutex and
// collapses under concurrent polling of one shared context. No watcher
// goroutine is ever spawned — a goroutine per query would cost
// microseconds on a nanosecond path and would need its own lifecycle
// management. For the same reason tokens are pooled: For/Release
// recycle them, because even one 48-byte allocation is a measurable
// share of a warm answer.
//
// A nil *Token is valid everywhere and never cancelled, so evaluation
// code checks `tok.Cancelled()` unconditionally and callers that don't
// want cancellation pass nil.
package cancel

import (
	"context"
	"sync"
	"sync/atomic"
)

// Token is a cooperative cancellation flag shared by one evaluation and
// everything it fans out to (solver workers, chase continuations, ladder
// rungs). It trips at most once and stays tripped (until Release).
type Token struct {
	// done, when non-nil, is an external cancellation signal (normally
	// ctx.Done()). Polled non-blockingly only until tripped.
	done <-chan struct{}
	// ctx, when non-nil, supplies the cause once done is closed
	// (ctx.Err()). Consulted only after the select observes the close —
	// storing the context itself instead of a ctx.Err method value
	// avoids a second allocation per For.
	ctx context.Context

	tripped atomic.Bool
	cause   atomic.Pointer[error]
}

// New returns a manually-cancellable token not bound to any context.
func New() *Token { return &Token{} }

// pool recycles tokens between evaluations: a warm snapshot answer runs
// in a few hundred nanoseconds, so even the single 48-byte For
// allocation shows up as measurable tax on that path. Tokens only enter
// the pool through an explicit Release by a caller that can vouch no
// reference survived its evaluation.
var pool = sync.Pool{New: func() any { return new(Token) }}

// For returns a token that trips when ctx is cancelled, or nil when ctx
// can never be cancelled (context.Background and friends) — the nil
// token keeps the fully-uncancellable path at its original cost.
func For(ctx context.Context) *Token {
	if ctx == nil {
		return nil
	}
	done := ctx.Done()
	if done == nil {
		return nil
	}
	t := pool.Get().(*Token)
	t.done, t.ctx = done, ctx
	return t
}

// Release resets the token and returns it to the allocation pool. Only
// the owner of the evaluation may call it, and only once everything the
// evaluation fanned out to (solver workers, rung builds) has been
// joined: evaluation state MAY keep dangling *Token pointers afterwards
// (a cached chase result retains the Options it ran under) but must
// never dereference them once construction finished — Release is what
// makes that invariant load-bearing. Safe on a nil token.
func (t *Token) Release() {
	if t == nil {
		return
	}
	t.done, t.ctx = nil, nil
	if t.tripped.Load() { // skip two atomic stores on the common untripped path
		t.tripped.Store(false)
		t.cause.Store(nil)
	}
	pool.Put(t)
}

// Cancel trips the token with the given cause. The first cause wins;
// later calls are no-ops. A nil token ignores the call.
func (t *Token) Cancel(cause error) {
	if t == nil {
		return
	}
	if cause == nil {
		cause = context.Canceled
	}
	t.cause.CompareAndSwap(nil, &cause)
	t.tripped.Store(true)
}

// Cancelled reports whether the token has tripped, polling the bound
// context if any. Safe on a nil token (always false). This is the hot-
// loop check: one atomic load, then one non-blocking select.
func (t *Token) Cancelled() bool {
	if t == nil {
		return false
	}
	if t.tripped.Load() {
		return true
	}
	if t.done != nil {
		select {
		case <-t.done:
			var cause error = context.Canceled
			if t.ctx != nil {
				if e := t.ctx.Err(); e != nil {
					cause = e
				}
			}
			t.cause.CompareAndSwap(nil, &cause)
			t.tripped.Store(true)
			return true
		default:
		}
	}
	return false
}

// Cause returns why the token tripped: context.DeadlineExceeded,
// context.Canceled, or the manual Cancel cause. It returns nil when the
// token has not tripped (or is nil).
func (t *Token) Cause() error {
	if t == nil {
		return nil
	}
	if p := t.cause.Load(); p != nil {
		return *p
	}
	if t.tripped.Load() {
		return context.Canceled
	}
	return nil
}

// Err is Cause after forcing a poll: it reports the cancellation cause
// if the token is (or has just become) cancelled, nil otherwise.
func (t *Token) Err() error {
	if t == nil || !t.Cancelled() {
		return nil
	}
	return t.Cause()
}
