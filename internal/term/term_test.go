package term

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstInterning(t *testing.T) {
	s := NewStore()
	a := s.Const("a")
	b := s.Const("b")
	if a == b {
		t.Fatalf("distinct constants interned to the same ID")
	}
	if got := s.Const("a"); got != a {
		t.Errorf("re-interning a constant produced a new ID")
	}
	if s.Kind(a) != Const || s.Name(a) != "a" {
		t.Errorf("constant metadata wrong: kind=%v name=%q", s.Kind(a), s.Name(a))
	}
	if s.Depth(a) != 0 {
		t.Errorf("constant depth = %d, want 0", s.Depth(a))
	}
	if !s.IsGround(a) {
		t.Errorf("constant not ground")
	}
}

func TestVarInterning(t *testing.T) {
	s := NewStore()
	x := s.Var("X")
	if got := s.Var("X"); got != x {
		t.Errorf("re-interning a variable produced a new ID")
	}
	if s.Kind(x) != Var {
		t.Errorf("kind = %v, want Var", s.Kind(x))
	}
	if s.IsGround(x) {
		t.Errorf("variable reported ground")
	}
	// A variable named like a constant is a distinct term.
	if c := s.Const("X"); c == x {
		t.Errorf("constant and variable with the same spelling share an ID")
	}
}

func TestSkolemInterningAndDepth(t *testing.T) {
	s := NewStore()
	f := s.Functor("f", 2)
	g := s.Functor("g", 1)
	a, b := s.Const("a"), s.Const("b")

	fab := s.Skolem(f, []ID{a, b})
	if got := s.Skolem(f, []ID{a, b}); got != fab {
		t.Errorf("structurally equal Skolem terms interned differently")
	}
	if got := s.Skolem(f, []ID{b, a}); got == fab {
		t.Errorf("f(a,b) and f(b,a) interned to the same ID")
	}
	gfab := s.Skolem(g, []ID{fab})
	if s.Depth(fab) != 1 || s.Depth(gfab) != 2 {
		t.Errorf("depths: f(a,b)=%d g(f(a,b))=%d, want 1, 2", s.Depth(fab), s.Depth(gfab))
	}
	if s.SkolemFunctor(gfab) != g || len(s.SkolemArgs(gfab)) != 1 {
		t.Errorf("skolem metadata wrong")
	}
	if s.String(gfab) != "g(f(a,b))" {
		t.Errorf("String = %q, want g(f(a,b))", s.String(gfab))
	}
}

func TestFunctorArityEnforced(t *testing.T) {
	s := NewStore()
	f := s.Functor("f", 2)
	defer func() {
		if recover() == nil {
			t.Errorf("wrong-arity Skolem application did not panic")
		}
	}()
	s.Skolem(f, []ID{s.Const("a")})
}

func TestFunctorRedeclareArityPanics(t *testing.T) {
	s := NewStore()
	s.Functor("f", 2)
	defer func() {
		if recover() == nil {
			t.Errorf("functor arity re-declaration did not panic")
		}
	}()
	s.Functor("f", 3)
}

func TestSkolemWithVariablePanics(t *testing.T) {
	s := NewStore()
	f := s.Functor("f", 1)
	x := s.Var("X")
	defer func() {
		if recover() == nil {
			t.Errorf("Skolem over a variable did not panic")
		}
	}()
	s.Skolem(f, []ID{x})
}

// TestCompareOrder checks the §2.1 order: constants lexicographic, all
// nulls after all constants, nulls ordered structurally.
func TestCompareOrder(t *testing.T) {
	s := NewStore()
	a, b := s.Const("a"), s.Const("b")
	f := s.Functor("f", 1)
	g := s.Functor("g", 1)
	fa := s.Skolem(f, []ID{a})
	fb := s.Skolem(f, []ID{b})
	ga := s.Skolem(g, []ID{a})

	ordered := []ID{a, b, fa, fb, ga}
	for i := range ordered {
		for j := range ordered {
			got := s.Compare(ordered[i], ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%s, %s) = %d, want %d",
					s.String(ordered[i]), s.String(ordered[j]), got, want)
			}
		}
	}
}

func TestSortUsesOrder(t *testing.T) {
	s := NewStore()
	f := s.Functor("f", 1)
	z := s.Const("z")
	fa := s.Skolem(f, []ID{z})
	a := s.Const("a")
	ts := []ID{fa, z, a}
	s.Sort(ts)
	if ts[0] != a || ts[1] != z || ts[2] != fa {
		t.Errorf("Sort order wrong: %v", ts)
	}
}

// Property: interning is injective on structure — two random term trees
// get the same ID iff they are structurally identical.
func TestInterningInjective(t *testing.T) {
	s := NewStore()
	fs := []FunctorID{s.Functor("f", 1), s.Functor("g", 2)}
	consts := []ID{s.Const("a"), s.Const("b"), s.Const("c")}
	rng := rand.New(rand.NewSource(1))

	var build func(depth int) (ID, string)
	build = func(depth int) (ID, string) {
		if depth == 0 || rng.Intn(2) == 0 {
			c := consts[rng.Intn(len(consts))]
			return c, s.Name(c)
		}
		if rng.Intn(2) == 0 {
			a, sa := build(depth - 1)
			return s.Skolem(fs[0], []ID{a}), "f(" + sa + ")"
		}
		a, sa := build(depth - 1)
		b, sb := build(depth - 1)
		return s.Skolem(fs[1], []ID{a, b}), "g(" + sa + "," + sb + ")"
	}

	seen := map[string]ID{}
	for i := 0; i < 2000; i++ {
		id, repr := build(4)
		if prev, ok := seen[repr]; ok && prev != id {
			t.Fatalf("structure %q interned to two IDs", repr)
		}
		seen[repr] = id
		if s.String(id) != repr {
			t.Fatalf("String(%d) = %q, want %q", id, s.String(id), repr)
		}
	}
}

// Property: Compare is a strict weak order compatible with equality of IDs.
func TestCompareProperties(t *testing.T) {
	s := NewStore()
	f := s.Functor("f", 1)
	pool := []ID{s.Const("a"), s.Const("b"), s.Const("c")}
	for i := 0; i < 8; i++ {
		pool = append(pool, s.Skolem(f, []ID{pool[i]}))
	}
	pick := func(r *rand.Rand) ID { return pool[r.Intn(len(pool))] }

	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(7))}
	// Antisymmetry + reflexivity.
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x, y := pick(r), pick(r)
		cxy, cyx := s.Compare(x, y), s.Compare(y, x)
		if x == y {
			return cxy == 0
		}
		return cxy == -cyx && cxy != 0
	}, cfg); err != nil {
		t.Error(err)
	}
	// Transitivity.
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x, y, z := pick(r), pick(r), pick(r)
		if s.Compare(x, y) <= 0 && s.Compare(y, z) <= 0 {
			return s.Compare(x, z) <= 0
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestLookupConst(t *testing.T) {
	s := NewStore()
	if _, ok := s.LookupConst("nope"); ok {
		t.Errorf("LookupConst found a constant in an empty store")
	}
	a := s.Const("a")
	got, ok := s.LookupConst("a")
	if !ok || got != a {
		t.Errorf("LookupConst = %v,%v want %v,true", got, ok, a)
	}
}

func TestLenCounts(t *testing.T) {
	s := NewStore()
	s.Const("a")
	s.Var("X")
	f := s.Functor("f", 1)
	s.Skolem(f, []ID{s.Const("a")})
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
	if s.NumFunctors() != 1 {
		t.Errorf("NumFunctors = %d, want 1", s.NumFunctors())
	}
	if s.FunctorName(f) != "f" || s.FunctorArity(f) != 1 {
		t.Errorf("functor metadata wrong")
	}
}
