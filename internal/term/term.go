// Package term implements the term universe of guarded normal Datalog±
// under the unique name assumption (UNA): data constants from ∆, variables
// from V, and labelled nulls from ∆N represented as ground Skolem terms
// f_{σ,Z}(t1,…,tk) produced by the functional transformation of a program
// (paper §2.1, §2.4).
//
// All terms are interned in a Store: two structurally equal terms always
// receive the same ID, so term equality is integer equality. This is what
// realizes the UNA over the Skolemized Herbrand universe: distinct constants
// are distinct values, and a Skolem term equals another term only if they
// are syntactically identical.
//
// # Freezing and overlays
//
// Stores are append-only, which makes an immutability discipline cheap:
// Freeze marks a store read-only (any further interning panics), Clone
// copies a root store preserving every ID, and NewOverlay layers a fresh
// mutable store over a frozen base. An overlay continues the base's ID
// space: lookups resolve through the base chain, and new terms get IDs
// starting at the base's Len. This is how snapshots answer queries without
// mutating shared state — query-time interning lands in a small per-call
// overlay while the frozen base serves unlimited concurrent readers.
package term

import (
	"encoding/binary"
	"fmt"
	"maps"
	"sort"
	"strings"
)

// ID identifies an interned term within a Store.
type ID int32

// None is the null term ID, used as a sentinel.
const None ID = -1

// FunctorID identifies an interned Skolem functor within a Store.
type FunctorID int32

// Kind classifies a term.
type Kind int8

const (
	// Const is a data constant from ∆.
	Const Kind = iota
	// Var is a variable from V (only appears in rules and queries).
	Var
	// Skolem is a ground Skolem term from ∆N (a labelled null).
	Skolem
)

func (k Kind) String() string {
	switch k {
	case Const:
		return "const"
	case Var:
		return "var"
	case Skolem:
		return "skolem"
	default:
		return fmt.Sprintf("Kind(%d)", int8(k))
	}
}

type termData struct {
	kind  Kind
	name  string    // constant or variable name; empty for Skolem terms
	fn    FunctorID // Skolem functor; -1 otherwise
	args  []ID      // Skolem arguments; nil otherwise
	depth int32     // nesting depth: 0 for constants/variables
}

type functorData struct {
	name  string
	arity int
}

// Store interns terms and Skolem functors. The zero value is not usable;
// create stores with NewStore (a root store) or NewOverlay (a mutable
// layer over a frozen base). A Store is not safe for concurrent mutation;
// a frozen Store is safe for unlimited concurrent readers.
type Store struct {
	terms    []termData // local terms; global ID = off + local index
	functors []functorData

	constIdx   map[string]ID
	varIdx     map[string]ID
	skolemIdx  map[string]ID // key: packed functor + arg IDs
	functorIdx map[string]FunctorID

	// Overlay support: base is the frozen store underneath (nil for root
	// stores); off/offFn are the number of terms/functors in the base
	// chain, i.e. the first locally owned ID.
	base   *Store
	off    int
	offFn  int
	frozen bool
}

// NewStore returns an empty root term store.
func NewStore() *Store {
	return &Store{
		constIdx:   make(map[string]ID),
		varIdx:     make(map[string]ID),
		skolemIdx:  make(map[string]ID),
		functorIdx: make(map[string]FunctorID),
	}
}

// NewOverlay returns a mutable store layered over base, which must be
// frozen. The overlay shares the base's ID space: every base ID resolves
// identically, and newly interned terms receive IDs from base.Len()
// upward. Overlays may themselves be frozen and used as bases.
func NewOverlay(base *Store) *Store {
	if !base.frozen {
		panic("term: NewOverlay over an unfrozen base store")
	}
	s := NewStore()
	s.base = base
	s.off = base.Len()
	s.offFn = base.NumFunctors()
	return s
}

// Clone returns a mutable deep copy of a root store, preserving all IDs.
// Interning into the clone and the original diverge from the copy point;
// IDs interned before the clone remain valid in both.
func (s *Store) Clone() *Store {
	if s.base != nil {
		panic("term: Clone of an overlay store")
	}
	return &Store{
		terms:      append([]termData(nil), s.terms...),
		functors:   append([]functorData(nil), s.functors...),
		constIdx:   maps.Clone(s.constIdx),
		varIdx:     maps.Clone(s.varIdx),
		skolemIdx:  maps.Clone(s.skolemIdx),
		functorIdx: maps.Clone(s.functorIdx),
	}
}

// Freeze marks the store immutable: any further interning panics. Freeze
// is idempotent. A frozen store is safe for concurrent readers and may
// serve as the base of overlays.
func (s *Store) Freeze() { s.frozen = true }

// Frozen reports whether the store has been frozen.
func (s *Store) Frozen() bool { return s.frozen }

func (s *Store) mutable() {
	if s.frozen {
		panic("term: interning into a frozen store (use an overlay)")
	}
}

// data resolves a term ID through the overlay chain.
func (s *Store) data(t ID) *termData {
	for int(t) < s.off {
		s = s.base
	}
	return &s.terms[int(t)-s.off]
}

// functor resolves a functor ID through the overlay chain.
func (s *Store) functor(f FunctorID) *functorData {
	for int(f) < s.offFn {
		s = s.base
	}
	return &s.functors[int(f)-s.offFn]
}

// Len reports the number of interned terms (including the base chain).
func (s *Store) Len() int { return s.off + len(s.terms) }

// NumLocal reports the number of terms interned into this layer alone,
// excluding any base. For root stores NumLocal equals Len.
func (s *Store) NumLocal() int { return len(s.terms) }

// NumFunctors reports the number of interned Skolem functors (including
// the base chain).
func (s *Store) NumFunctors() int { return s.offFn + len(s.functors) }

// NumLocalFunctors reports the functors interned into this layer alone.
func (s *Store) NumLocalFunctors() int { return len(s.functors) }

// Const interns the data constant with the given name and returns its ID.
func (s *Store) Const(name string) ID {
	for c := s; c != nil; c = c.base {
		if id, ok := c.constIdx[name]; ok {
			return id
		}
	}
	s.mutable()
	id := ID(s.off + len(s.terms))
	s.terms = append(s.terms, termData{kind: Const, name: name, fn: -1})
	s.constIdx[name] = id
	return id
}

// Var interns the variable with the given name and returns its ID.
// Variables live in the same ID space as other terms so substitutions can
// be expressed as term-to-term maps.
func (s *Store) Var(name string) ID {
	for c := s; c != nil; c = c.base {
		if id, ok := c.varIdx[name]; ok {
			return id
		}
	}
	s.mutable()
	id := ID(s.off + len(s.terms))
	s.terms = append(s.terms, termData{kind: Var, name: name, fn: -1})
	s.varIdx[name] = id
	return id
}

// Functor interns a Skolem functor f_{σ,Z} by name with a fixed arity.
// Re-interning an existing name with a different arity is a programming
// error and panics: functor identity includes its arity by construction.
func (s *Store) Functor(name string, arity int) FunctorID {
	for c := s; c != nil; c = c.base {
		if id, ok := c.functorIdx[name]; ok {
			if got := s.FunctorArity(id); got != arity {
				panic(fmt.Sprintf("term: functor %q re-declared with arity %d (was %d)", name, arity, got))
			}
			return id
		}
	}
	s.mutable()
	id := FunctorID(s.offFn + len(s.functors))
	s.functors = append(s.functors, functorData{name: name, arity: arity})
	s.functorIdx[name] = id
	return id
}

// FunctorName returns the name of an interned functor.
func (s *Store) FunctorName(f FunctorID) string { return s.functor(f).name }

// FunctorArity returns the arity of an interned functor.
func (s *Store) FunctorArity(f FunctorID) int { return s.functor(f).arity }

// Skolem interns the ground Skolem term f(args...) and returns its ID.
// All argument terms must be ground (constants or Skolem terms).
func (s *Store) Skolem(f FunctorID, args []ID) ID {
	if want := s.FunctorArity(f); len(args) != want {
		panic(fmt.Sprintf("term: functor %q applied to %d args, want %d", s.FunctorName(f), len(args), want))
	}
	key := skolemKey(f, args)
	for c := s; c != nil; c = c.base {
		if id, ok := c.skolemIdx[key]; ok {
			return id
		}
	}
	s.mutable()
	depth := int32(0)
	for _, a := range args {
		td := s.data(a)
		if td.kind == Var {
			panic("term: Skolem term with variable argument")
		}
		if td.depth >= depth {
			depth = td.depth + 1
		}
	}
	if depth == 0 {
		depth = 1 // nullary Skolem terms still sit above the constants
	}
	own := make([]ID, len(args))
	copy(own, args)
	id := ID(s.off + len(s.terms))
	s.terms = append(s.terms, termData{kind: Skolem, fn: f, args: own, depth: depth})
	s.skolemIdx[key] = id
	return id
}

func skolemKey(f FunctorID, args []ID) string {
	buf := make([]byte, 4+4*len(args))
	binary.LittleEndian.PutUint32(buf, uint32(f))
	for i, a := range args {
		binary.LittleEndian.PutUint32(buf[4+4*i:], uint32(a))
	}
	return string(buf)
}

// Kind returns the kind of t.
func (s *Store) Kind(t ID) Kind { return s.data(t).kind }

// IsGround reports whether t contains no variables. Constants and Skolem
// terms are always ground (Skolem arguments are ground by construction).
func (s *Store) IsGround(t ID) bool { return s.data(t).kind != Var }

// Name returns the name of a constant or variable, or "" for Skolem terms.
func (s *Store) Name(t ID) string { return s.data(t).name }

// SkolemFunctor returns the functor of a Skolem term, or -1 otherwise.
func (s *Store) SkolemFunctor(t ID) FunctorID { return s.data(t).fn }

// SkolemArgs returns the argument slice of a Skolem term (do not mutate),
// or nil otherwise.
func (s *Store) SkolemArgs(t ID) []ID { return s.data(t).args }

// Depth returns the Skolem-nesting depth of t: 0 for constants and
// variables, 1+max(arg depths) for Skolem terms.
func (s *Store) Depth(t ID) int { return int(s.data(t).depth) }

// LookupConst returns the ID of an already-interned constant.
func (s *Store) LookupConst(name string) (ID, bool) {
	for c := s; c != nil; c = c.base {
		if id, ok := c.constIdx[name]; ok {
			return id, true
		}
	}
	return None, false
}

// Compare orders two ground terms per §2.1: a lexicographic order on
// ∆ ∪ ∆N in which every labelled null follows all constants. Constants are
// ordered by name; Skolem terms by functor name, then recursively by
// arguments. Compare returns -1, 0, or +1.
func (s *Store) Compare(a, b ID) int {
	if a == b {
		return 0
	}
	ta, tb := s.data(a), s.data(b)
	if ta.kind != tb.kind {
		// Constants precede Skolem terms (nulls follow all of ∆).
		if ta.kind == Const {
			return -1
		}
		return 1
	}
	switch ta.kind {
	case Const, Var:
		return strings.Compare(ta.name, tb.name)
	default: // Skolem
		fa, fb := s.FunctorName(ta.fn), s.FunctorName(tb.fn)
		if c := strings.Compare(fa, fb); c != 0 {
			return c
		}
		if c := len(ta.args) - len(tb.args); c != 0 {
			if c < 0 {
				return -1
			}
			return 1
		}
		for i := range ta.args {
			if c := s.Compare(ta.args[i], tb.args[i]); c != 0 {
				return c
			}
		}
		return 0
	}
}

// Sort sorts a slice of ground term IDs in the §2.1 order.
func (s *Store) Sort(ts []ID) {
	sort.Slice(ts, func(i, j int) bool { return s.Compare(ts[i], ts[j]) < 0 })
}

// String renders a term. Constants and variables print their name; Skolem
// terms print functor(args...).
func (s *Store) String(t ID) string {
	td := s.data(t)
	switch td.kind {
	case Const, Var:
		return td.name
	default:
		var b strings.Builder
		b.WriteString(s.FunctorName(td.fn))
		b.WriteByte('(')
		for i, a := range td.args {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(s.String(a))
		}
		b.WriteByte(')')
		return b.String()
	}
}
