package term

import "testing"

func TestFreezePanicsOnIntern(t *testing.T) {
	s := NewStore()
	s.Const("a")
	s.Freeze()
	defer func() {
		if recover() == nil {
			t.Fatal("interning into a frozen store did not panic")
		}
	}()
	s.Const("b")
}

func TestCloneSharesIDsAndDiverges(t *testing.T) {
	s := NewStore()
	a := s.Const("a")
	f := s.Functor("f", 1)
	sk := s.Skolem(f, []ID{a})

	c := s.Clone()
	if got := c.Const("a"); got != a {
		t.Fatalf("clone Const(a) = %d, want %d", got, a)
	}
	if got := c.Skolem(f, []ID{a}); got != sk {
		t.Fatalf("clone Skolem = %d, want %d", got, sk)
	}
	// Divergence: both allocate the same next ID independently.
	b1 := s.Const("b")
	c1 := c.Const("c")
	if b1 != c1 {
		t.Fatalf("divergent interning allocated %d vs %d, want same next ID", b1, c1)
	}
	if s.String(b1) != "b" || c.String(c1) != "c" {
		t.Fatalf("clone and original confused: %q vs %q", s.String(b1), c.String(c1))
	}
}

func TestOverlayResolvesBaseAndInternsLocally(t *testing.T) {
	base := NewStore()
	a := base.Const("a")
	f := base.Functor("f", 1)
	sk := base.Skolem(f, []ID{a})
	base.Freeze()

	o := NewOverlay(base)
	if got := o.Const("a"); got != a {
		t.Fatalf("overlay Const(a) = %d, want base ID %d", got, a)
	}
	if got := o.Skolem(f, []ID{a}); got != sk {
		t.Fatalf("overlay Skolem = %d, want base ID %d", got, sk)
	}
	if o.NumLocal() != 0 {
		t.Fatalf("base-resolved lookups interned locally: NumLocal=%d", o.NumLocal())
	}
	b := o.Const("b")
	if int(b) != base.Len() {
		t.Fatalf("overlay ID = %d, want %d (continuing base space)", b, base.Len())
	}
	if o.Kind(b) != Const || o.Name(b) != "b" {
		t.Fatalf("overlay term wrong: kind=%v name=%q", o.Kind(b), o.Name(b))
	}
	// Base reads still work through the overlay.
	if o.String(sk) != "f(a)" {
		t.Fatalf("overlay render of base skolem = %q", o.String(sk))
	}
	// Nested skolem over mixed base/overlay args.
	sk2 := o.Skolem(f, []ID{b})
	if o.Depth(sk2) != 1 || o.String(sk2) != "f(b)" {
		t.Fatalf("overlay skolem: depth=%d render=%q", o.Depth(sk2), o.String(sk2))
	}
	// The base is untouched: still just a and f(a).
	if base.Len() != 2 {
		t.Fatalf("base grew to %d terms", base.Len())
	}
	if base.NumLocal() != base.Len() {
		t.Fatalf("root store NumLocal %d != Len %d", base.NumLocal(), base.Len())
	}
}

func TestOverlayChains(t *testing.T) {
	base := NewStore()
	a := base.Const("a")
	base.Freeze()

	mid := NewOverlay(base)
	b := mid.Const("b")
	mid.Freeze()

	top := NewOverlay(mid)
	if got := top.Const("a"); got != a {
		t.Fatalf("chain lookup of a = %d, want %d", got, a)
	}
	if got := top.Const("b"); got != b {
		t.Fatalf("chain lookup of b = %d, want %d", got, b)
	}
	c := top.Const("c")
	if int(c) != 2 {
		t.Fatalf("top ID = %d, want 2", c)
	}
	if top.Compare(a, b) >= 0 || top.Compare(b, c) >= 0 {
		t.Fatal("chain compare broken")
	}
	if id, ok := top.LookupConst("b"); !ok || id != b {
		t.Fatalf("LookupConst(b) = %d,%v", id, ok)
	}
	if _, ok := top.LookupConst("zzz"); ok {
		t.Fatal("LookupConst found a never-interned constant")
	}
}

func TestOverlayOverUnfrozenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewOverlay over unfrozen base did not panic")
		}
	}()
	NewOverlay(NewStore())
}
