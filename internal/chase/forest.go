package chase

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/atom"
)

// ForestNode is a node of the explicit guarded chase forest F+(P). As in
// the paper, distinct nodes may carry the same label (Example 6: S(0)
// labels infinitely many nodes).
type ForestNode struct {
	Atom     atom.AtomID
	Parent   int32 // -1 for roots
	Depth    int32
	Inst     int32 // index into Result.Instances; -1 for roots
	Children []int32
}

// Forest is the materialized node-level view of a chase result, bounded by
// depth and node caps.
type Forest struct {
	Res       *Result
	Nodes     []ForestNode
	Roots     []int32
	Truncated bool // hit the node cap
}

// BuildForest materializes the chase forest up to the given depth (at most
// the chase's own depth bound) and node cap (0 = 1e6).
func (r *Result) BuildForest(maxDepth, maxNodes int) *Forest {
	if maxNodes <= 0 {
		maxNodes = 1_000_000
	}
	if maxDepth > r.Opts.MaxDepth {
		maxDepth = r.Opts.MaxDepth
	}
	f := &Forest{Res: r}
	var queue []int32
	for _, a := range r.DB {
		id := int32(len(f.Nodes))
		f.Nodes = append(f.Nodes, ForestNode{Atom: a, Parent: -1, Inst: -1})
		f.Roots = append(f.Roots, id)
		queue = append(queue, id)
	}
	// The same atom labels many forest nodes (Example 6: unboundedly
	// many), so materialize each atom's guarded-instance list once.
	byGuard := make(map[atom.AtomID][]int32)
	instancesOf := func(a atom.AtomID) []int32 {
		if ii, ok := byGuard[a]; ok {
			return ii
		}
		ii := r.InstancesByGuard(a)
		byGuard[a] = ii
		return ii
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		n := f.Nodes[id]
		if int(n.Depth) >= maxDepth {
			continue
		}
		for _, ii := range instancesOf(n.Atom) {
			if len(f.Nodes) >= maxNodes {
				f.Truncated = true
				return f
			}
			child := int32(len(f.Nodes))
			f.Nodes = append(f.Nodes, ForestNode{
				Atom:   r.Instances[ii].Head,
				Parent: id,
				Depth:  n.Depth + 1,
				Inst:   ii,
			})
			f.Nodes[id].Children = append(f.Nodes[id].Children, child)
			queue = append(queue, child)
		}
	}
	return f
}

// NodesLabeled returns the node ids labeled by atom a.
func (f *Forest) NodesLabeled(a atom.AtomID) []int32 {
	var out []int32
	for i := range f.Nodes {
		if f.Nodes[i].Atom == a {
			out = append(out, int32(i))
		}
	}
	return out
}

// Dump renders the forest as an indented tree, children ordered by label
// for determinism.
func (f *Forest) Dump() string {
	st := f.Res.Prog.Store
	var b strings.Builder
	var rec func(id int32, indent int)
	rec = func(id int32, indent int) {
		n := &f.Nodes[id]
		fmt.Fprintf(&b, "%s%s", strings.Repeat("  ", indent), st.String(n.Atom))
		if n.Inst >= 0 {
			fmt.Fprintf(&b, "   [rule %d]", f.Res.Instances[n.Inst].Rule.Idx)
		}
		b.WriteByte('\n')
		kids := append([]int32(nil), n.Children...)
		sort.Slice(kids, func(i, j int) bool {
			return st.String(f.Nodes[kids[i]].Atom) < st.String(f.Nodes[kids[j]].Atom)
		})
		for _, c := range kids {
			rec(c, indent+1)
		}
	}
	roots := append([]int32(nil), f.Roots...)
	sort.Slice(roots, func(i, j int) bool {
		return st.String(f.Nodes[roots[i]].Atom) < st.String(f.Nodes[roots[j]].Atom)
	})
	for _, r := range roots {
		rec(r, 0)
	}
	return b.String()
}
