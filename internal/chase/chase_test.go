package chase

import (
	"strings"
	"testing"

	"repro/internal/atom"
	"repro/internal/program"
	"repro/internal/term"
)

func compile(t *testing.T, src string) (*program.Program, program.Database, *atom.Store) {
	t.Helper()
	st := atom.NewStore(term.NewStore())
	prog, db, _, err := program.CompileText(src, st)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog, db, st
}

const example4 = `
r(0,0,1).
p(0,0).
r(X,Y,Z) -> r(X,Z,W).
r(X,Y,Z), p(X,Y), not q(Z) -> p(X,Z).
r(X,Y,Z), not p(X,Y) -> q(Z).
r(X,Y,Z), not p(X,Z) -> s(X).
p(X,Y), not s(X) -> t(X).
`

func TestChaseDerivesExample6Universe(t *testing.T) {
	prog, db, st := compile(t, example4)
	res := Run(prog, db, Options{MaxDepth: 3, MaxAtoms: 10_000})

	// Example 6's F+(P) to depth 3 contains the R-chain, P-chain, the
	// Q atoms, S(0), and T(0).
	want := []string{
		"r(0,0,1)", "p(0,0)",
		"p(0,1)", "q(1)", "s(0)", "t(0)",
	}
	derived := map[string]bool{}
	for _, a := range res.Atoms {
		derived[st.String(a)] = true
	}
	for _, w := range want {
		if !derived[w] {
			t.Errorf("atom %s not derived; universe: %v", w, keys(derived))
		}
	}
	// Atoms beyond the depth bound must not appear: the chain member at
	// depth 4 is absent.
	stats := res.ComputeStats()
	if stats.MaxDepth > 3 {
		t.Errorf("MaxDepth = %d, want ≤ 3", stats.MaxDepth)
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestDepthsAndLevels(t *testing.T) {
	prog, db, st := compile(t, example4)
	res := Run(prog, db, Options{MaxDepth: 4, MaxAtoms: 10_000})

	c0 := st.Terms.Const("0")
	c1 := st.Terms.Const("1")
	rp, _ := st.LookupPred("r")
	pp, _ := st.LookupPred("p")

	r001, _ := st.Lookup(rp, []term.ID{c0, c0, c1})
	if res.Depth(r001) != 0 || res.Level(r001) != 0 {
		t.Errorf("database atom depth/level = %d/%d, want 0/0",
			res.Depth(r001), res.Level(r001))
	}
	p01, ok := st.Lookup(pp, []term.ID{c0, c1})
	if !ok || !res.Derived(p01) {
		t.Fatalf("p(0,1) not derived")
	}
	if res.Depth(p01) != 1 {
		t.Errorf("depth(p(0,1)) = %d, want 1", res.Depth(p01))
	}
}

func TestInstanceExtraction(t *testing.T) {
	prog, db, st := compile(t, example4)
	res := Run(prog, db, Options{MaxDepth: 2, MaxAtoms: 10_000})

	// Each instance must be guarded by its first positive atom and be
	// fully ground.
	for i := range res.Instances {
		in := &res.Instances[i]
		if in.Guard() != in.Pos[0] {
			t.Fatalf("instance guard mismatch")
		}
		if len(in.Pos) != len(in.Rule.PosBody) || len(in.Neg) != len(in.Rule.NegBody) {
			t.Errorf("instance body sizes do not match rule %d", in.Rule.Idx)
		}
	}
	// The rule p(X,Y), not s(X) -> t(X) instance from p(0,0) must carry
	// the negative body atom s(0).
	sp, _ := st.LookupPred("s")
	tp, _ := st.LookupPred("t")
	c0 := st.Terms.Const("0")
	s0, _ := st.Lookup(sp, []term.ID{c0})
	t0, _ := st.Lookup(tp, []term.ID{c0})
	found := false
	for i := range res.Instances {
		in := &res.Instances[i]
		if in.Head == t0 && len(in.Neg) == 1 && in.Neg[0] == s0 {
			found = true
		}
	}
	if !found {
		t.Errorf("t(0) instance with negative hypothesis s(0) missing")
	}
}

func TestInstanceDeduplication(t *testing.T) {
	// Two facts guard the same rule; every (rule, guard atom) pair fires
	// exactly once even though s(0) labels several forest nodes.
	prog, db, _ := compile(t, example4)
	res := Run(prog, db, Options{MaxDepth: 6, MaxAtoms: 10_000})
	seen := map[[2]int32]bool{}
	for i := range res.Instances {
		in := &res.Instances[i]
		key := [2]int32{int32(in.Rule.Idx), int32(in.Guard())}
		if seen[key] {
			t.Fatalf("duplicate instance for rule %d guard %d", in.Rule.Idx, in.Guard())
		}
		seen[key] = true
	}
}

func TestSideAtomWaiting(t *testing.T) {
	// The side atom q(a) for the second rule only appears after rule 1
	// fires, so the (rule, guard) application must be retried: this
	// exercises the waiter queue.
	src := `
base(a).
base(X) -> q(X).
base(X), q(X) -> r(X).
`
	prog, db, st := compile(t, src)
	res := Run(prog, db, Options{MaxDepth: 4, MaxAtoms: 1000})
	rp, _ := st.LookupPred("r")
	ca := st.Terms.Const("a")
	ra, ok := st.Lookup(rp, []term.ID{ca})
	if !ok || !res.Derived(ra) {
		t.Fatalf("r(a) not derived despite side atom becoming available")
	}
}

func TestSideAtomNeverAvailable(t *testing.T) {
	src := `
base(a).
base(X), missing(X) -> r(X).
missing(b).
`
	prog, db, st := compile(t, src)
	res := Run(prog, db, Options{MaxDepth: 4, MaxAtoms: 1000})
	rp, _ := st.LookupPred("r")
	ca := st.Terms.Const("a")
	if a, ok := st.Lookup(rp, []term.ID{ca}); ok && res.Derived(a) {
		t.Errorf("r(a) derived despite missing(a) being absent")
	}
}

func TestMaxAtomsTruncation(t *testing.T) {
	prog, db, _ := compile(t, "seed(c).\nseed(X) -> seed(Y).")
	res := Run(prog, db, Options{MaxDepth: 1 << 20, MaxAtoms: 50})
	if !res.Truncated {
		t.Errorf("truncation flag not set")
	}
	if len(res.Atoms) > 60 {
		t.Errorf("chase overshot the atom cap: %d", len(res.Atoms))
	}
}

func TestChaseSaturatesOnFiniteProgram(t *testing.T) {
	prog, db, _ := compile(t, `
edge(a,b). edge(b,c). start(a).
start(X) -> reach(X).
reach(X), edge(X,Y) -> reach(Y).
`)
	res := Run(prog, db, Options{MaxDepth: 100, MaxAtoms: 10_000})
	stats := res.ComputeStats()
	if stats.Truncated {
		t.Errorf("finite chase truncated")
	}
	if stats.MaxDepth >= 100 {
		t.Errorf("finite chase hit the depth cap")
	}
	if stats.Atoms != 6 { // 3 facts + reach(a), reach(b), reach(c)
		t.Errorf("atoms = %d, want 6", stats.Atoms)
	}
}

func TestConstantsInRuleBodies(t *testing.T) {
	prog, db, st := compile(t, `
p(a, b). p(b, c).
p(a, X) -> special(X).
`)
	res := Run(prog, db, Options{MaxDepth: 3, MaxAtoms: 100})
	sp, _ := st.LookupPred("special")
	cb := st.Terms.Const("b")
	cc := st.Terms.Const("c")
	if a, ok := st.Lookup(sp, []term.ID{cb}); !ok || !res.Derived(a) {
		t.Errorf("special(b) not derived")
	}
	if a, ok := st.Lookup(sp, []term.ID{cc}); ok && res.Derived(a) {
		t.Errorf("special(c) derived despite guard constant mismatch")
	}
}

func TestForestMatchesExample6Shape(t *testing.T) {
	prog, db, _ := compile(t, example4)
	res := Run(prog, db, Options{MaxDepth: 3, MaxAtoms: 10_000})
	f := res.BuildForest(3, 1000)

	// Two roots: r(0,0,1) and p(0,0).
	if len(f.Roots) != 2 {
		t.Fatalf("roots = %d, want 2", len(f.Roots))
	}
	dump := f.Dump()
	// Example 6's figure: infinitely many S(0)-labeled nodes — at least
	// 3 within depth 3 — and T(0) both under p(0,0) and under p(0,1).
	if got := strings.Count(dump, "s(0)"); got < 3 {
		t.Errorf("forest shows %d s(0) nodes, want ≥ 3\n%s", got, dump)
	}
	if got := strings.Count(dump, "t(0)"); got < 2 {
		t.Errorf("forest shows %d t(0) nodes, want ≥ 2\n%s", got, dump)
	}
}

func TestForestNodeCap(t *testing.T) {
	prog, db, _ := compile(t, example4)
	res := Run(prog, db, Options{MaxDepth: 6, MaxAtoms: 10_000})
	f := res.BuildForest(6, 10)
	if !f.Truncated {
		t.Errorf("node cap not reported")
	}
	if len(f.Nodes) > 10 {
		t.Errorf("forest exceeded node cap: %d", len(f.Nodes))
	}
}

func TestNodesLabeled(t *testing.T) {
	prog, db, st := compile(t, example4)
	res := Run(prog, db, Options{MaxDepth: 3, MaxAtoms: 10_000})
	f := res.BuildForest(3, 1000)
	sp, _ := st.LookupPred("s")
	c0 := st.Terms.Const("0")
	s0, _ := st.Lookup(sp, []term.ID{c0})
	if got := len(f.NodesLabeled(s0)); got < 3 {
		t.Errorf("NodesLabeled(s(0)) = %d, want ≥ 3", got)
	}
}

// extendEqualsRun asserts that res (an Extend chain result) and a
// from-scratch Run at the same depth agree on the derived universe (with
// minimal depths) and on the deduplicated instance set.
func extendEqualsRun(t *testing.T, st *atom.Store, res, scratch *Result) {
	t.Helper()
	if len(res.Atoms) != len(scratch.Atoms) {
		t.Fatalf("universe size: extended %d, scratch %d", len(res.Atoms), len(scratch.Atoms))
	}
	for _, a := range scratch.Atoms {
		if !res.Derived(a) {
			t.Errorf("extended chase missing %s", st.String(a))
		} else if res.Depth(a) != scratch.Depth(a) {
			t.Errorf("depth(%s): extended %d, scratch %d",
				st.String(a), res.Depth(a), scratch.Depth(a))
		}
	}
	if len(res.Instances) != len(scratch.Instances) {
		t.Fatalf("instances: extended %d, scratch %d", len(res.Instances), len(scratch.Instances))
	}
	want := map[[2]int32]bool{}
	for i := range scratch.Instances {
		in := &scratch.Instances[i]
		want[[2]int32{int32(in.Rule.Idx), int32(in.Guard())}] = true
	}
	for i := range res.Instances {
		in := &res.Instances[i]
		if !want[[2]int32{int32(in.Rule.Idx), int32(in.Guard())}] {
			t.Errorf("extended chase has extra instance rule=%d guard=%s",
				in.Rule.Idx, st.String(in.Guard()))
		}
	}
}

func TestExtendMatchesRun(t *testing.T) {
	prog, db, st := compile(t, example4)
	res := Run(prog, db, Options{MaxDepth: 2, MaxAtoms: 10_000})
	for _, d := range []int{4, 6, 9} {
		res = res.Extend(prog, d)
		if res.Opts.MaxDepth != d {
			t.Fatalf("extended MaxDepth = %d, want %d", res.Opts.MaxDepth, d)
		}
		scratch := Run(prog, db, Options{MaxDepth: d, MaxAtoms: 10_000})
		extendEqualsRun(t, st, res, scratch)
	}
}

func TestExtendDoesNotMutateOriginal(t *testing.T) {
	prog, db, _ := compile(t, example4)
	res := Run(prog, db, Options{MaxDepth: 3, MaxAtoms: 10_000})
	atoms, insts := len(res.Atoms), len(res.Instances)
	depths := make([]int, atoms)
	for i, a := range res.Atoms {
		depths[i] = res.Depth(a)
	}
	ext := res.Extend(prog, 6)
	if ext == res {
		t.Fatal("Extend to a deeper bound returned the receiver")
	}
	if len(res.Atoms) != atoms || len(res.Instances) != insts {
		t.Fatalf("original grew: %d atoms %d instances", len(res.Atoms), len(res.Instances))
	}
	for i, a := range res.Atoms {
		if res.Depth(a) != depths[i] {
			t.Errorf("original depth of atom %d changed", a)
		}
	}
	if len(ext.Atoms) <= atoms {
		t.Errorf("extension derived nothing beyond depth 3")
	}
	if res.Opts.MaxDepth != 3 {
		t.Errorf("original depth bound changed to %d", res.Opts.MaxDepth)
	}
}

func TestExtendNoopAtSameOrShallowerDepth(t *testing.T) {
	prog, db, _ := compile(t, example4)
	res := Run(prog, db, Options{MaxDepth: 4, MaxAtoms: 10_000})
	if got := res.Extend(prog, 4); got != res {
		t.Error("Extend to the current depth did not return the receiver")
	}
	if got := res.Extend(prog, 2); got != res {
		t.Error("Extend to a shallower depth did not return the receiver")
	}
}

// TestExtendWakesParkedWaiters: a side atom becomes available only in the
// deeper extension, so an instance parked during the first run must fire
// during Extend — including the depth-decrease cascade it triggers.
func TestExtendWakesParkedWaiters(t *testing.T) {
	src := `
base(a).
d0(a).
d0(X) -> d1(X).
d1(X) -> d2(X).
d2(X) -> d3(X).
base(X), d3(X) -> late(X).
late(X) -> deep(X).
`
	prog, db, st := compile(t, src)
	res := Run(prog, db, Options{MaxDepth: 2, MaxAtoms: 1000})
	lp, _ := st.LookupPred("late")
	ca := st.Terms.Const("a")
	if a, ok := st.Lookup(lp, []term.ID{ca}); ok && res.Derived(a) {
		t.Fatalf("late(a) derived before its side atom d3(a) exists")
	}
	ext := res.Extend(prog, 6)
	scratch := Run(prog, db, Options{MaxDepth: 6, MaxAtoms: 1000})
	extendEqualsRun(t, st, ext, scratch)
	la, ok := st.Lookup(lp, []term.ID{ca})
	if !ok || !ext.Derived(la) {
		t.Fatalf("late(a) not derived after extension woke the parked waiter")
	}
	// late(a) hangs under the depth-0 guard base(a): depth 1 despite
	// firing last.
	if d := ext.Depth(la); d != 1 {
		t.Errorf("depth(late(a)) = %d, want 1", d)
	}
}

func TestExtendSaturatedChaseIsFree(t *testing.T) {
	prog, db, _ := compile(t, `
edge(a,b). edge(b,c). start(a).
start(X) -> reach(X).
reach(X), edge(X,Y) -> reach(Y).
`)
	res := Run(prog, db, Options{MaxDepth: 50, MaxAtoms: 10_000})
	ext := res.Extend(prog, 100)
	if len(ext.Atoms) != len(res.Atoms) || len(ext.Instances) != len(res.Instances) {
		t.Errorf("saturated extension changed the universe")
	}
	if ext.ComputeStats().MaxDepth != res.ComputeStats().MaxDepth {
		t.Errorf("saturated extension changed the depth profile")
	}
}

func TestComputeStatsCached(t *testing.T) {
	prog, db, _ := compile(t, example4)
	res := Run(prog, db, Options{MaxDepth: 4, MaxAtoms: 10_000})
	if res.stats == nil {
		t.Fatal("Run did not populate the stats cache")
	}
	s1, s2 := res.ComputeStats(), res.ComputeStats()
	if s1 != s2 {
		t.Errorf("cached stats differ: %+v vs %+v", s1, s2)
	}
	ext := res.Extend(prog, 6)
	if ext.stats == nil {
		t.Fatal("Extend did not populate the stats cache")
	}
	if ext.ComputeStats().Atoms <= s1.Atoms {
		t.Errorf("extended stats not recomputed: %+v", ext.ComputeStats())
	}
}

func TestStatsString(t *testing.T) {
	prog, db, _ := compile(t, "p(a).")
	res := Run(prog, db, Options{MaxDepth: 2})
	if s := res.ComputeStats().String(); !strings.Contains(s, "atoms=1") {
		t.Errorf("stats string: %s", s)
	}
}

// TestLevelExceedsDepth: a node's derivation level (when it enters F_i,
// §2.5) can exceed its forest depth (distance from a root) when a side
// atom becomes available late — the distinction Example 9 turns on
// (levelP(v) "is in general different from the depth of v").
func TestLevelExceedsDepth(t *testing.T) {
	src := `
a(x).
d0(x).
d0(X) -> d1(X).
d1(X) -> d2(X).
d2(X) -> d3(X).
a(X), d3(X) -> e(X).
`
	prog, db, st := compile(t, src)
	res := Run(prog, db, Options{MaxDepth: 8, MaxAtoms: 1000})
	ep, _ := st.LookupPred("e")
	cx := st.Terms.Const("x")
	ex, ok := st.Lookup(ep, []term.ID{cx})
	if !ok || !res.Derived(ex) {
		t.Fatalf("e(x) not derived")
	}
	// e(x) hangs under the guard a(x) (depth 0), so its depth is 1 — but
	// it can only fire after d3(x) (level 3), so its level is 4.
	if d := res.Depth(ex); d != 1 {
		t.Errorf("depth(e(x)) = %d, want 1", d)
	}
	if l := res.Level(ex); l != 4 {
		t.Errorf("level(e(x)) = %d, want 4", l)
	}
}
