package chase

// Data-dimension continuations of a finished chase: the guarded chase is
// monotone in the database (chase(D') ⊆ chase(D) for D' ⊆ D, and every
// rule firing over D remains a firing over D ∪ ∆), so
//
//   - additions (ExtendDB) resume the existing chase exactly the way
//     Extend resumes it in depth — new EDB atoms seed fresh frontier work
//     against the carried-over forest, waking parked waiters and
//     cascading depth decreases, while everything already derived stays
//     derived; and
//   - retractions (Retract) re-derive the surviving chase DRed-style by
//     replaying the receiver's own instance forest from the shrunken
//     database: instances are re-fired (or not) by the ordinary
//     derive/expand/park machinery, but against the recorded ground
//     instances instead of matching rules against the store — no
//     substitution matching, no interning, pure integer work. Instances
//     that fail to re-fire are exactly the DRed overdeletion that
//     rederivation could not rescue.
//
// Both operations leave the receiver untouched, like Extend, so models
// already built over it keep serving concurrent readers.

import (
	"repro/internal/atom"
	"repro/internal/cancel"
	"repro/internal/program"
)

// ExtendDB returns a new Result that continues this chase after the
// database grew to newDB: the atoms of added (the set-level growth, each
// already interned in the store) are derived at depth 0 and expanded
// against the carried-over forest, firing only the rule instances the new
// facts enable. prog must share r's compiled rules and an ID space
// extending r's store (see Extend). r itself is not mutated.
//
// An added atom may already be in the derived universe (an IDB atom now
// asserted as a fact): its depth drops to 0 and the decrease cascades.
// Returns nil when r is truncated — MaxAtoms exhaustion left frontier
// atoms unexpanded, so the continuation cannot know what a from-scratch
// chase of the grown database would derive; callers must rebuild.
func (r *Result) ExtendDB(prog *program.Program, newDB program.Database, added []atom.AtomID) *Result {
	return r.ExtendDBCancel(prog, newDB, added, nil)
}

// ExtendDBCancel is ExtendDB under a cancellation token (nil = never
// cancelled); a cancelled continuation returns with Interrupted set.
func (r *Result) ExtendDBCancel(prog *program.Program, newDB program.Database, added []atom.AtomID, tok *cancel.Token) *Result {
	if r.Truncated {
		return nil
	}
	opts := r.Opts
	opts.Cancel = tok
	nr := r.cloneForContinuation(prog, opts)
	nr.DB = newDB
	for _, a := range added {
		nr.derive(a, 0, 0)
	}
	nr.run()
	nr.finish()
	return nr
}

// replayState drives Retract's re-derivation: src supplies the candidate
// instances (indexed by guard through src's own intrusive lists), fired
// records which candidates re-fired, and parked holds candidates waiting
// on a not-yet-rederived side atom (the replay analogue of waiters; a
// candidate is parked on at most one atom at a time).
type replayState struct {
	src    *Result
	fired  []bool
	parked map[atom.AtomID][]int32
}

// tryReplay re-fires candidate instance ci of the replay source if all its
// positive side atoms are rederived, parking it on the first missing one
// otherwise — the replay counterpart of tryApply, sharing its at-most-one-
// pending-path invariant via the fired flags.
func (r *Result) tryReplay(ci int32) {
	rep := r.replay
	if rep.fired[ci] {
		return
	}
	in := &rep.src.Instances[ci]
	g := in.Pos[0]
	maxLevel := r.level[g]
	for _, sa := range in.Pos[1:] {
		r.ensure(sa)
		if r.depth[sa] < 0 {
			rep.parked[sa] = append(rep.parked[sa], ci)
			return
		}
		if r.level[sa] > maxLevel {
			maxLevel = r.level[sa]
		}
	}
	for _, na := range in.Neg {
		r.ensure(na)
	}
	r.ensure(in.Head)
	rep.fired[ci] = true
	ii := int32(len(r.Instances))
	// Pos/Neg slices are shared with the (immutable) source instance.
	r.Instances = append(r.Instances, Instance{Rule: in.Rule, Head: in.Head, Pos: in.Pos, Neg: in.Neg})
	r.nextInst = append(r.nextInst, r.firstInst[g])
	r.firstInst[g] = ii
	r.derive(in.Head, r.depth[g]+1, maxLevel+1)
}

// Retract returns a new Result chasing the shrunken database newDB (a
// subset of r.DB at the set level) by replaying r's own instances — see
// the file comment — together with the indexes (into r.Instances) of the
// instances that did not survive, for warm-starting the WFS fixpoint
// downstream. Returns (nil, nil) when r is truncated, in which case the
// instance set is incomplete and the caller must re-chase from scratch.
//
// Soundness: by monotonicity every instance of chase(newDB) is an
// instance of chase(r.DB) with the identical head (Skolem terms are
// functional in the guard binding), so replaying r's instances under the
// ordinary depth/expansion discipline computes exactly the from-scratch
// chase of newDB — the cross-check suite enforces this.
func (r *Result) Retract(prog *program.Program, newDB program.Database) (*Result, []int32) {
	return r.RetractCancel(prog, newDB, nil)
}

// RetractCancel is Retract under a cancellation token (nil = never
// cancelled); a cancelled replay returns with Interrupted set.
func (r *Result) RetractCancel(prog *program.Program, newDB program.Database, tok *cancel.Token) (*Result, []int32) {
	if r.Truncated {
		return nil, nil
	}
	opts := r.Opts
	opts.Cancel = tok
	// Preallocate the bookkeeping at the source's sizes: the survivors
	// are a subset, so nothing here regrows mid-replay.
	nr := &Result{
		Prog:      prog,
		DB:        newDB,
		Opts:      opts,
		Atoms:     make([]atom.AtomID, 0, len(r.Atoms)),
		Instances: make([]Instance, 0, len(r.Instances)),
		depth:     make([]int32, 0, len(r.depth)),
		level:     make([]int32, 0, len(r.level)),
		firstInst: make([]int32, 0, len(r.firstInst)),
		nextInst:  make([]int32, 0, len(r.nextInst)),
		queue:     make([]atom.AtomID, 0, 64),
		queued:    make([]bool, 0, len(r.queued)),
		expanded:  make([]bool, 0, len(r.expanded)),
		waiters:   make(map[atom.AtomID][]waiter),
		replay: &replayState{
			src:    r,
			fired:  make([]bool, len(r.Instances)),
			parked: make(map[atom.AtomID][]int32),
		},
	}
	for _, a := range newDB {
		nr.derive(a, 0, 0)
	}
	for _, rule := range prog.Rules {
		if rule.IsFact() && len(rule.Exist) == 0 {
			sub := atom.NewSubst(rule.NumVars)
			nr.derive(prog.Store.Instantiate(rule.Head, sub), 0, 0)
		}
	}
	nr.run()
	rep := nr.replay
	nr.replay = nil
	// Carry parked work forward so later continuations (ExtendDB, Extend)
	// can resume it:
	//  - candidates still parked on a missing side atom become ordinary
	//    (rule, guard) waiters — their guard re-expanded, so only a wake
	//    can complete them;
	//  - the source's own parked waiters survive verbatim when their guard
	//    is still expanded (their side atom was underived in the larger
	//    universe, hence underived here too). Waiters whose guard died or
	//    fell to the frontier are dropped: a future re-derivation or
	//    deepening re-expands that guard through the normal rule matching,
	//    which re-parks or fires the pair.
	for sa, cis := range rep.parked {
		for _, ci := range cis {
			in := &r.Instances[ci]
			nr.waiters[sa] = append(nr.waiters[sa], waiter{rule: in.Rule, guard: in.Pos[0]})
		}
	}
	for sa, ws := range r.waiters {
		for _, w := range ws {
			if nr.Derived(w.guard) && nr.expanded[w.guard] {
				nr.waiters[sa] = append(nr.waiters[sa], w)
			}
		}
	}
	nr.finish()
	var dead []int32
	for ci, ok := range rep.fired {
		if !ok {
			dead = append(dead, int32(ci))
		}
	}
	return nr, dead
}
